package vnettracer

import (
	"errors"
	"fmt"
	"sort"

	"vnettracer/internal/control"
	"vnettracer/internal/metrics"
	"vnettracer/internal/tracedb"
)

// Session is a complete in-process tracer deployment: a dispatcher, a
// collector over a fresh trace database, and one agent per monitored
// machine. It is the programmatic equivalent of running the vnettracer
// CLI's dispatcher, agents, and collector against a set of machines.
type Session struct {
	db         *tracedb.DB
	collector  *control.Collector
	dispatcher *control.Dispatcher
	supervisor *control.Supervisor
	agents     map[string]*control.Agent
	labels     map[string]uint32
}

// NewSession creates an empty session with default in-memory storage.
func NewSession() *Session { return NewSessionWith(StoreConfig{}) }

// NewSessionWith creates an empty session whose trace database uses the
// given segment-store configuration (segment size, spill directory,
// retention budget).
func NewSessionWith(cfg StoreConfig) *Session {
	db := tracedb.NewWith(cfg)
	disp := control.NewDispatcher()
	sup := control.NewSupervisor(disp)
	// The collector's heartbeat ledger doubles as the supervisor's epoch
	// observer: a restarted agent announces its new lease through its
	// first heartbeat and gets its tracepoints re-pushed.
	sup.SetLedger(db)
	return &Session{
		db:         db,
		collector:  control.NewCollector(db),
		dispatcher: disp,
		supervisor: sup,
		agents:     make(map[string]*control.Agent),
		labels:     make(map[string]uint32),
	}
}

// DB returns the session's trace database.
func (s *Session) DB() *DB { return s.db }

// StorageStats returns the trace database's aggregate segment-store
// accounting (resident vs spilled bytes, compression ratio, evictions).
func (s *Session) StorageStats() StorageStats { return s.db.StorageTotals() }

// Dispatcher returns the session's control dispatcher.
func (s *Session) Dispatcher() *Dispatcher { return s.dispatcher }

// Collector returns the session's raw data collector.
func (s *Session) Collector() *Collector { return s.collector }

// Supervisor returns the session's control-plane supervisor: the
// desired-state layer that retries failed pushes and re-provisions
// restarted agents.
func (s *Session) Supervisor() *control.Supervisor { return s.supervisor }

// Supervise runs one supervision pass at the given time: failed pushes
// past their backoff deadline are retried, and agents observed at a new
// epoch (restarted) get their full desired state re-pushed. Call it
// periodically (e.g. from an engine timer).
func (s *Session) Supervise(nowNs int64) { s.supervisor.Tick(nowNs) }

// AddMachine registers a machine under a new agent named after its node.
func (s *Session) AddMachine(m *Machine) (*Agent, error) {
	name := m.Node.Name
	if _, dup := s.agents[name]; dup {
		return nil, fmt.Errorf("vnettracer: machine %q already in session", name)
	}
	agent := control.NewAgent(name, m, s.collector)
	if err := s.dispatcher.Register(name, agent); err != nil {
		return nil, err
	}
	agent.SetEpoch(s.dispatcher.Epoch(name))
	s.agents[name] = agent
	return agent, nil
}

// RestartAgent models an agent-process restart: the machine gets a fresh
// agent with the next epoch lease, the dispatcher's roster points at it,
// and the next supervision pass re-pushes the desired state so its
// tracepoints re-attach. The previous agent object (the "zombie") is
// returned: anything it still ships carries the old epoch and is fenced
// by the collector.
func (s *Session) RestartAgent(machine string) (*Agent, *Agent, error) {
	old, ok := s.agents[machine]
	if !ok {
		return nil, nil, fmt.Errorf("vnettracer: machine %q not in session", machine)
	}
	old.StopFlushing()
	agent := control.NewAgent(machine, old.Machine(), s.collector)
	agent.SetEpoch(s.dispatcher.Reregister(machine, agent))
	s.agents[machine] = agent
	return agent, old, nil
}

// nowNs reads a machine's simulated clock for supervision bookkeeping
// (retry deadlines); unknown machines read as time zero.
func (s *Session) nowNs(machine string) int64 {
	if a, ok := s.agents[machine]; ok {
		return a.Machine().Node.Clock.NowNs()
	}
	return 0
}

// Agent returns a machine's agent by node name.
func (s *Session) Agent(machine string) (*Agent, bool) {
	a, ok := s.agents[machine]
	return a, ok
}

// Install pushes a full trace spec to a machine's agent, allocating a TPID
// if the spec has none and creating the record table when the spec records.
// It returns the spec's TPID.
func (s *Session) Install(machine string, spec TraceSpec) (uint32, error) {
	if spec.TPID == 0 {
		spec.TPID = s.dispatcher.AllocTPID(spec.Name)
	}
	s.labels[spec.Name] = spec.TPID
	for _, a := range spec.Actions {
		if a == ActionRecord {
			if _, err := s.db.CreateTable(spec.TPID, spec.Name); err != nil {
				return 0, err
			}
			break
		}
	}
	if err := s.supervisor.Desire(machine, ControlPackage{Install: []TraceSpec{spec}}, s.nowNs(machine)); err != nil {
		return 0, err
	}
	return spec.TPID, nil
}

// InstallRecord is shorthand for installing a record-action script under a
// label.
func (s *Session) InstallRecord(machine, label string, at AttachPoint, filter Filter) (uint32, error) {
	return s.Install(machine, TraceSpec{
		Name:    label,
		Attach:  at,
		Filter:  filter,
		Actions: []Action{ActionRecord},
	})
}

// Uninstall removes a script from a machine at runtime: the label leaves
// the supervisor's desired state and the reduced state is re-pushed.
func (s *Session) Uninstall(machine, label string) error {
	if desired, ok := s.supervisor.Desired(machine); ok {
		for _, spec := range desired.Install {
			if spec.Name == label {
				return s.supervisor.Desire(machine,
					ControlPackage{Uninstall: []string{label}}, s.nowNs(machine))
			}
		}
	}
	return fmt.Errorf("vnettracer: machine %q has no script %q installed", machine, label)
}

// agentNames returns the registered machine names in sorted order so
// flush timers and error lists are deterministic across runs.
func (s *Session) agentNames() []string {
	names := make([]string, 0, len(s.agents))
	for name := range s.agents {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// StartFlushing arms periodic ring-buffer flushes on every agent.
func (s *Session) StartFlushing(intervalNs int64) {
	for _, name := range s.agentNames() {
		s.agents[name].StartFlushing(intervalNs)
	}
}

// Flush drains every agent's ring buffer to the collector. Every agent is
// flushed even if some fail; failures come back joined. Records from a
// failed flush stay in that agent's delivery spool for retry.
func (s *Session) Flush() error {
	var errs []error
	for _, name := range s.agentNames() {
		if err := s.agents[name].Flush(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Table returns the record table behind a script label.
func (s *Session) Table(label string) (*Table, error) {
	tpid, ok := s.labels[label]
	if !ok {
		return nil, fmt.Errorf("vnettracer: unknown script label %q", label)
	}
	t, ok := s.db.Table(tpid)
	if !ok {
		return nil, fmt.Errorf("vnettracer: no table for %q", label)
	}
	return t, nil
}

// ScanTable streams a label's records in insertion order without copying
// the table; fn returns false to stop early. Inserts arriving concurrently
// are not blocked and not visited.
func (s *Session) ScanTable(label string, fn func(Record) bool) error {
	t, err := s.Table(label)
	if err != nil {
		return err
	}
	t.Scan(fn)
	return nil
}

// Throughput computes one-pass throughput over a label's table (the
// paper's sum(S_i - S_ID) / (T_N - T_1)).
func (s *Session) Throughput(label string) (float64, error) {
	t, err := s.Table(label)
	if err != nil {
		return 0, err
	}
	return metrics.ThroughputOf(t)
}

// PerFlowThroughput computes one-pass per-flow throughput over a label's
// table.
func (s *Session) PerFlowThroughput(label string) ([]metrics.FlowStats, error) {
	t, err := s.Table(label)
	if err != nil {
		return nil, err
	}
	return metrics.PerFlowThroughputOf(t), nil
}

// SetSkew records a clock-offset correction (e.g. from Cristian's
// algorithm) for a label's tracepoint; subsequent analyses align its
// timestamps.
func (s *Session) SetSkew(label string, skewNs int64) error {
	tpid, ok := s.labels[label]
	if !ok {
		return fmt.Errorf("vnettracer: unknown script label %q", label)
	}
	s.db.SetSkew(tpid, skewNs)
	return nil
}

// Decompose splits end-to-end latency across a path of script labels,
// returning one segment per consecutive pair (the paper's latency
// decomposition). Tables are skew-aligned before joining.
func (s *Session) Decompose(labels ...string) ([]metrics.Segment, error) {
	tables := make([]*Table, 0, len(labels))
	for _, l := range labels {
		t, err := s.Table(l)
		if err != nil {
			return nil, err
		}
		tables = append(tables, t)
	}
	return metrics.Decompose(tables)
}

// Script returns an installed script's compiled form (for reading its
// counter and histogram maps).
func (s *Session) Script(machine, label string) (*Compiled, bool) {
	a, ok := s.agents[machine]
	if !ok {
		return nil, false
	}
	return a.Script(label)
}
