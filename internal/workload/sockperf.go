// Package workload implements the traffic generators the paper evaluates
// with: Sockperf (UDP ping-pong latency), iPerf (rate-controlled or
// saturating streams), Netperf TCP_STREAM (windowed bulk transfer), and a
// CloudSuite Data Caching style memcached client/server.
//
// Workloads run on kernel.Node sockets, so every packet they produce flows
// through the simulated stacks and devices — and therefore past every
// attached trace script.
package workload

import (
	"encoding/binary"
	"fmt"

	"vnettracer/internal/kernel"
	"vnettracer/internal/vnet"
)

// SockperfServer echoes every UDP request back to its sender, as the
// sockperf ping-pong server does.
type SockperfServer struct {
	sock *kernel.Socket
	// Echoed counts replies sent.
	Echoed uint64
}

// StartSockperfServer binds the echo server. Each echo fires the
// application-level uprobe site "uprobe:sockperf:echo".
func StartSockperfServer(n *kernel.Node, local kernel.SockAddr) (*SockperfServer, error) {
	s := &SockperfServer{}
	sock, err := n.Open(vnet.ProtoUDP, local, func(p *vnet.Packet) {
		n.Probes.Fire(&kernel.ProbeCtx{
			Site: kernel.UprobeSite("sockperf", "echo"), Pkt: p, TimeNs: n.Clock.NowNs(),
		})
		flow := p.Flow()
		reply := kernel.SockAddr{IP: flow.Src, Port: flow.SrcPort}
		if _, err := s.sock.SendBytes(reply, p.Payload); err == nil {
			s.Echoed++
		}
	})
	if err != nil {
		return nil, fmt.Errorf("workload: sockperf server: %w", err)
	}
	s.sock = sock
	return s, nil
}

// SockperfClient sends fixed-size UDP pings at a fixed interval and records
// application-level round-trip times, reporting latency as RTT/2 exactly as
// sockperf's ping-pong mode does.
type SockperfClient struct {
	node     *kernel.Node
	sock     *kernel.Socket
	dst      kernel.SockAddr
	size     int
	interval int64

	pending map[uint64]int64
	nextSeq uint64

	// RTTs holds one round-trip time per answered ping, in send order.
	RTTs []int64
	// Sent and Received count pings.
	Sent     uint64
	Received uint64
}

// NewSockperfClient binds a client socket. size must be at least 8 bytes
// (the ping sequence number rides in the payload, as sockperf embeds its
// own metadata).
func NewSockperfClient(n *kernel.Node, local, dst kernel.SockAddr, size int, intervalNs int64) (*SockperfClient, error) {
	if size < 8 {
		return nil, fmt.Errorf("workload: sockperf payload %d < 8", size)
	}
	c := &SockperfClient{
		node:     n,
		dst:      dst,
		size:     size,
		interval: intervalNs,
		pending:  make(map[uint64]int64),
	}
	sock, err := n.Open(vnet.ProtoUDP, local, c.onReply)
	if err != nil {
		return nil, fmt.Errorf("workload: sockperf client: %w", err)
	}
	c.sock = sock
	return c, nil
}

func (c *SockperfClient) onReply(p *vnet.Packet) {
	c.node.Probes.Fire(&kernel.ProbeCtx{
		Site: kernel.UprobeSite("sockperf", "recv_reply"), Pkt: p, TimeNs: c.node.Clock.NowNs(),
	})
	if len(p.Payload) < 8 {
		return
	}
	seq := binary.LittleEndian.Uint64(p.Payload)
	sent, ok := c.pending[seq]
	if !ok {
		return
	}
	delete(c.pending, seq)
	c.Received++
	c.RTTs = append(c.RTTs, c.node.Engine().Now()-sent)
}

// Run schedules count pings starting now.
func (c *SockperfClient) Run(count int) {
	eng := c.node.Engine()
	for i := 0; i < count; i++ {
		at := int64(i) * c.interval
		eng.Schedule(at, c.sendOne)
	}
}

func (c *SockperfClient) sendOne() {
	payload := make([]byte, c.size)
	binary.LittleEndian.PutUint64(payload, c.nextSeq)
	c.pending[c.nextSeq] = c.node.Engine().Now()
	c.nextSeq++
	if _, err := c.sock.SendBytes(c.dst, payload); err == nil {
		c.Sent++
	}
}

// Latencies returns one-way latencies (RTT/2), sockperf's reported metric.
func (c *SockperfClient) Latencies() []int64 {
	out := make([]int64, len(c.RTTs))
	for i, r := range c.RTTs {
		out[i] = r / 2
	}
	return out
}

// LossRate reports the fraction of unanswered pings.
func (c *SockperfClient) LossRate() float64 {
	if c.Sent == 0 {
		return 0
	}
	return float64(c.Sent-c.Received) / float64(c.Sent)
}
