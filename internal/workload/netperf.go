package workload

import (
	"encoding/binary"
	"fmt"

	"vnettracer/internal/kernel"
	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

// NetperfServer is a TCP_STREAM sink: it counts received segment bytes and
// acknowledges each segment so the sender's window advances.
type NetperfServer struct {
	sock *kernel.Socket

	Segments uint64
	Bytes    uint64
	firstNs  int64
	lastNs   int64
}

// ackSize is the wire payload of an acknowledgment segment.
const ackSize = 8

// StartNetperfServer binds the sink.
func StartNetperfServer(n *kernel.Node, local kernel.SockAddr) (*NetperfServer, error) {
	s := &NetperfServer{firstNs: -1}
	sock, err := n.Open(vnet.ProtoTCP, local, func(p *vnet.Packet) {
		now := n.Engine().Now()
		if s.firstNs < 0 {
			s.firstNs = now
		}
		s.lastNs = now
		s.Segments++
		s.Bytes += uint64(len(p.Payload))
		// Acknowledge: echo the segment sequence number.
		flow := p.Flow()
		ack := make([]byte, ackSize)
		binary.LittleEndian.PutUint64(ack, p.Seq)
		s.sock.SendBytes(kernel.SockAddr{IP: flow.Src, Port: flow.SrcPort}, ack)
	})
	if err != nil {
		return nil, fmt.Errorf("workload: netperf server: %w", err)
	}
	s.sock = sock
	return s, nil
}

// ThroughputBps reports goodput over the receive interval.
func (s *NetperfServer) ThroughputBps() float64 {
	if s.Segments < 2 || s.lastNs <= s.firstNs {
		return 0
	}
	return float64(s.Bytes) * 8 * float64(sim.Second) / float64(s.lastNs-s.firstNs)
}

// NetperfClient drives a TCP_STREAM bulk transfer with a fixed window of
// unacknowledged segments: each acknowledgment releases the next segment,
// so throughput adapts to path capacity and round-trip time like a real
// TCP sender in steady state.
type NetperfClient struct {
	node    *kernel.Node
	sock    *kernel.Socket
	dst     kernel.SockAddr
	segSize int
	window  int

	inFlight int
	total    int
	sent     int

	Acked uint64
	// Done is invoked once every segment is acknowledged.
	Done func()
}

// NewNetperfClient binds a client sending segSize-byte segments with the
// given window.
func NewNetperfClient(n *kernel.Node, local, dst kernel.SockAddr, segSize, window int) (*NetperfClient, error) {
	if segSize <= 0 || window <= 0 {
		return nil, fmt.Errorf("workload: netperf: bad segSize=%d window=%d", segSize, window)
	}
	c := &NetperfClient{node: n, dst: dst, segSize: segSize, window: window}
	sock, err := n.Open(vnet.ProtoTCP, local, c.onAck)
	if err != nil {
		return nil, fmt.Errorf("workload: netperf client: %w", err)
	}
	c.sock = sock
	return c, nil
}

func (c *NetperfClient) onAck(p *vnet.Packet) {
	if len(p.Payload) < ackSize {
		return
	}
	c.Acked++
	c.inFlight--
	if c.sent < c.total {
		c.sendOne()
	} else if c.inFlight == 0 && c.Done != nil {
		c.Done()
	}
}

// Run transfers total segments starting now.
func (c *NetperfClient) Run(total int) {
	c.total = total
	burst := c.window
	if burst > total {
		burst = total
	}
	for i := 0; i < burst; i++ {
		c.sendOne()
	}
}

func (c *NetperfClient) sendOne() {
	if _, err := c.sock.Send(c.dst, c.segSize); err == nil {
		c.sent++
		c.inFlight++
	}
}
