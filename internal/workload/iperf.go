package workload

import (
	"fmt"

	"vnettracer/internal/kernel"
	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

// IPerfServer counts received bytes at a UDP sink and reports achieved
// throughput.
type IPerfServer struct {
	sock *kernel.Socket

	Packets uint64
	Bytes   uint64
	firstNs int64
	lastNs  int64
}

// StartIPerfServer binds a counting sink.
func StartIPerfServer(n *kernel.Node, local kernel.SockAddr) (*IPerfServer, error) {
	s := &IPerfServer{firstNs: -1}
	sock, err := n.Open(vnet.ProtoUDP, local, func(p *vnet.Packet) {
		now := n.Engine().Now()
		if s.firstNs < 0 {
			s.firstNs = now
		}
		s.lastNs = now
		s.Packets++
		s.Bytes += uint64(len(p.Payload))
	})
	if err != nil {
		return nil, fmt.Errorf("workload: iperf server: %w", err)
	}
	s.sock = sock
	return s, nil
}

// ThroughputBps returns the achieved application-level throughput.
func (s *IPerfServer) ThroughputBps() float64 {
	if s.Packets < 2 || s.lastNs <= s.firstNs {
		return 0
	}
	return float64(s.Bytes) * 8 * float64(sim.Second) / float64(s.lastNs-s.firstNs)
}

// IPerfClient sends fixed-size UDP datagrams at a target bit rate.
type IPerfClient struct {
	node *kernel.Node
	sock *kernel.Socket
	dst  kernel.SockAddr
	size int

	Sent uint64
}

// NewIPerfClient binds a client socket sending size-byte datagrams.
func NewIPerfClient(n *kernel.Node, local, dst kernel.SockAddr, size int) (*IPerfClient, error) {
	c := &IPerfClient{node: n, dst: dst, size: size}
	sock, err := n.Open(vnet.ProtoUDP, local, nil)
	if err != nil {
		return nil, fmt.Errorf("workload: iperf client: %w", err)
	}
	c.sock = sock
	return c, nil
}

// RunRate schedules transmission at rateBps for durationNs, starting now.
// Inter-packet gaps carry ±20% jitter from the node's seeded random
// stream: real senders are never perfectly periodic, and exact periodicity
// resonates pathologically with queue service times.
func (c *IPerfClient) RunRate(rateBps int64, durationNs int64) {
	if rateBps <= 0 {
		return
	}
	interval := int64(c.size) * 8 * int64(sim.Second) / rateBps
	if interval <= 0 {
		interval = 1
	}
	rng := c.node.Rand()
	eng := c.node.Engine()
	var tick func()
	start := eng.Now()
	tick = func() {
		if eng.Now()-start >= durationNs {
			return
		}
		if _, err := c.sock.Send(c.dst, c.size); err == nil {
			c.Sent++
		}
		gap := interval + rng.Int63n(interval*2/5+1) - interval/5
		if gap <= 0 {
			gap = 1
		}
		eng.Schedule(gap, tick)
	}
	eng.Schedule(0, tick)
}
