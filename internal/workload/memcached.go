package workload

import (
	"encoding/binary"
	"fmt"

	"vnettracer/internal/kernel"
	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

// Request opcodes for the memcached-style protocol.
const (
	opGet uint8 = 1
	opSet uint8 = 2
)

// MemcachedServer answers GET requests with valueSize-byte responses and
// SET requests with small acknowledgments, modelling the CloudSuite Data
// Caching server (a Memcached instance replaying a Twitter dataset).
type MemcachedServer struct {
	sock      *kernel.Socket
	valueSize int

	Gets uint64
	Sets uint64
}

// StartMemcachedServer binds the server. valueSize is the GET response
// payload.
func StartMemcachedServer(n *kernel.Node, local kernel.SockAddr, valueSize int) (*MemcachedServer, error) {
	s := &MemcachedServer{valueSize: valueSize}
	sock, err := n.Open(vnet.ProtoUDP, local, func(p *vnet.Packet) {
		if len(p.Payload) < 9 {
			return
		}
		flow := p.Flow()
		reply := kernel.SockAddr{IP: flow.Src, Port: flow.SrcPort}
		size := 16 // SET ack
		switch p.Payload[8] {
		case opGet:
			s.Gets++
			size = s.valueSize
		case opSet:
			s.Sets++
		default:
			return
		}
		out := make([]byte, size)
		copy(out, p.Payload[:8]) // echo the request id
		s.sock.SendBytes(reply, out)
	})
	if err != nil {
		return nil, fmt.Errorf("workload: memcached server: %w", err)
	}
	s.sock = sock
	return s, nil
}

// MemcachedClient issues GET/SET requests from several worker connections
// at a fixed aggregate request rate, as the paper configures Data Caching:
// "4 worker threads executing 20 connections ... ratio of GET/SET requests
// was configured as 4:1 ... fixed request rate as 5000 rps".
type MemcachedClient struct {
	node    *kernel.Node
	socks   []*kernel.Socket
	dst     kernel.SockAddr
	getFrac int // GETs per (getFrac+1) requests

	pending map[uint64]int64
	nextID  uint64
	nextSock int

	// Latencies holds request-response times in issue order.
	Latencies []int64
	Issued    uint64
	Answered  uint64
}

// NewMemcachedClient binds conns client sockets on ports basePort..;
// getFrac of 4 yields the 4:1 GET/SET mix.
func NewMemcachedClient(n *kernel.Node, localIP vnet.IPv4, basePort uint16, conns int, dst kernel.SockAddr, getFrac int) (*MemcachedClient, error) {
	if conns <= 0 {
		return nil, fmt.Errorf("workload: memcached: conns must be positive")
	}
	if getFrac <= 0 {
		getFrac = 4
	}
	c := &MemcachedClient{
		node:    n,
		dst:     dst,
		getFrac: getFrac,
		pending: make(map[uint64]int64),
	}
	for i := 0; i < conns; i++ {
		sock, err := n.Open(vnet.ProtoUDP, kernel.SockAddr{IP: localIP, Port: basePort + uint16(i)}, c.onReply)
		if err != nil {
			return nil, fmt.Errorf("workload: memcached client conn %d: %w", i, err)
		}
		c.socks = append(c.socks, sock)
	}
	return c, nil
}

func (c *MemcachedClient) onReply(p *vnet.Packet) {
	if len(p.Payload) < 8 {
		return
	}
	id := binary.LittleEndian.Uint64(p.Payload)
	sent, ok := c.pending[id]
	if !ok {
		return
	}
	delete(c.pending, id)
	c.Answered++
	c.Latencies = append(c.Latencies, c.node.Engine().Now()-sent)
}

// Run issues requests at rate requests-per-second for durationNs,
// round-robining across connections.
func (c *MemcachedClient) Run(rps int64, durationNs int64) {
	if rps <= 0 {
		return
	}
	interval := int64(sim.Second) / rps
	if interval <= 0 {
		interval = 1
	}
	eng := c.node.Engine()
	n := int(durationNs / interval)
	for i := 0; i < n; i++ {
		eng.Schedule(int64(i)*interval, c.issueOne)
	}
}

func (c *MemcachedClient) issueOne() {
	id := c.nextID
	c.nextID++
	op := opGet
	if id%(uint64(c.getFrac)+1) == uint64(c.getFrac) {
		op = opSet
	}
	size := 40 // GET request: key
	if op == opSet {
		size = 140 // SET request: key + value
	}
	payload := make([]byte, size)
	binary.LittleEndian.PutUint64(payload, id)
	payload[8] = op
	sock := c.socks[c.nextSock]
	c.nextSock = (c.nextSock + 1) % len(c.socks)
	c.pending[id] = c.node.Engine().Now()
	if _, err := sock.SendBytes(c.dst, payload); err == nil {
		c.Issued++
	}
}
