package workload

import (
	"testing"

	"vnettracer/internal/kernel"
	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

// twoNodes wires two nodes back to back through links with the given
// bandwidth and delay.
func twoNodes(t *testing.T, bps, delayNs int64) (*sim.Engine, *kernel.Node, *kernel.Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	a := kernel.NewNode(eng, kernel.NodeConfig{Name: "a", NumCPU: 2, Seed: 1})
	b := kernel.NewNode(eng, kernel.NodeConfig{Name: "b", NumCPU: 2, Seed: 2})
	ab := vnet.NewLink(eng, bps, delayNs, func(p *vnet.Packet) { b.DeliverLocal(p) })
	ba := vnet.NewLink(eng, bps, delayNs, func(p *vnet.Packet) { a.DeliverLocal(p) })
	a.Egress = ab.Send
	b.Egress = ba.Send
	return eng, a, b
}

const (
	ipA = vnet.IPv4(0x0a000001)
	ipB = vnet.IPv4(0x0a000002)
)

func TestSockperfPingPong(t *testing.T) {
	eng, a, b := twoNodes(t, 1_000_000_000, 10*int64(sim.Microsecond))
	if _, err := StartSockperfServer(b, kernel.SockAddr{IP: ipB, Port: 11111}); err != nil {
		t.Fatal(err)
	}
	cli, err := NewSockperfClient(a, kernel.SockAddr{IP: ipA, Port: 40000},
		kernel.SockAddr{IP: ipB, Port: 11111}, 56, int64(sim.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	cli.Run(100)
	eng.Run(200 * int64(sim.Millisecond))
	if cli.Sent != 100 || cli.Received != 100 {
		t.Fatalf("sent=%d received=%d", cli.Sent, cli.Received)
	}
	if cli.LossRate() != 0 {
		t.Fatalf("loss = %f", cli.LossRate())
	}
	lats := cli.Latencies()
	if len(lats) != 100 {
		t.Fatalf("latencies = %d", len(lats))
	}
	// One-way >= propagation + stack costs.
	for _, l := range lats {
		if l < 10*int64(sim.Microsecond) {
			t.Fatalf("latency %dns below propagation delay", l)
		}
	}
}

func TestSockperfMinPayload(t *testing.T) {
	eng, a, _ := twoNodes(t, 0, 0)
	_ = eng
	if _, err := NewSockperfClient(a, kernel.SockAddr{IP: ipA, Port: 40000},
		kernel.SockAddr{IP: ipB, Port: 1}, 4, 1); err == nil {
		t.Fatal("payload below 8 bytes accepted")
	}
}

func TestIPerfRateControl(t *testing.T) {
	eng, a, b := twoNodes(t, 10_000_000_000, 1000)
	srv, err := StartIPerfServer(b, kernel.SockAddr{IP: ipB, Port: 5001})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewIPerfClient(a, kernel.SockAddr{IP: ipA, Port: 40001}, kernel.SockAddr{IP: ipB, Port: 5001}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	const rate = 100_000_000 // 100 Mbps
	cli.RunRate(rate, int64(sim.Second))
	eng.Run(2 * int64(sim.Second))
	got := srv.ThroughputBps()
	if got < rate*85/100 || got > rate*115/100 {
		t.Fatalf("throughput = %.0f, want ~%d", got, rate)
	}
}

func TestIPerfBoundedByLink(t *testing.T) {
	// Client pushes 100 Mbps into a 10 Mbps link; the server cannot see
	// more than the wire allows (packets queue in the link serializer).
	eng, a, b := twoNodes(t, 10_000_000, 1000)
	srv, err := StartIPerfServer(b, kernel.SockAddr{IP: ipB, Port: 5001})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewIPerfClient(a, kernel.SockAddr{IP: ipA, Port: 40001}, kernel.SockAddr{IP: ipB, Port: 5001}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	cli.RunRate(100_000_000, int64(sim.Second)/10)
	eng.RunUntilIdle()
	got := srv.ThroughputBps()
	if got > 12_000_000 {
		t.Fatalf("throughput %.0f exceeds link capacity", got)
	}
}

func TestNetperfWindowedTransfer(t *testing.T) {
	eng, a, b := twoNodes(t, 1_000_000_000, 50*int64(sim.Microsecond))
	srv, err := StartNetperfServer(b, kernel.SockAddr{IP: ipB, Port: 12865})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewNetperfClient(a, kernel.SockAddr{IP: ipA, Port: 40002},
		kernel.SockAddr{IP: ipB, Port: 12865}, 1448, 32)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	cli.Done = func() { done = true }
	cli.Run(500)
	eng.Run(10 * int64(sim.Second))
	if !done {
		t.Fatalf("transfer incomplete: acked=%d", cli.Acked)
	}
	if srv.Segments != 500 || cli.Acked != 500 {
		t.Fatalf("segments=%d acked=%d", srv.Segments, cli.Acked)
	}
	if srv.ThroughputBps() <= 0 {
		t.Fatal("no throughput measured")
	}
}

func TestNetperfThroughputScalesWithWindow(t *testing.T) {
	run := func(window int) float64 {
		eng, a, b := twoNodes(t, 10_000_000_000, 100*int64(sim.Microsecond))
		srv, err := StartNetperfServer(b, kernel.SockAddr{IP: ipB, Port: 12865})
		if err != nil {
			t.Fatal(err)
		}
		cli, err := NewNetperfClient(a, kernel.SockAddr{IP: ipA, Port: 40002},
			kernel.SockAddr{IP: ipB, Port: 12865}, 1448, window)
		if err != nil {
			t.Fatal(err)
		}
		cli.Run(2000)
		eng.Run(20 * int64(sim.Second))
		return srv.ThroughputBps()
	}
	small := run(1)
	large := run(64)
	if large < small*4 {
		t.Fatalf("window scaling: w=1 %.0f vs w=64 %.0f", small, large)
	}
}

func TestNetperfRejectsBadParams(t *testing.T) {
	_, a, _ := twoNodes(t, 0, 0)
	if _, err := NewNetperfClient(a, kernel.SockAddr{IP: ipA, Port: 1}, kernel.SockAddr{}, 0, 5); err == nil {
		t.Fatal("zero segment size accepted")
	}
	if _, err := NewNetperfClient(a, kernel.SockAddr{IP: ipA, Port: 2}, kernel.SockAddr{}, 100, 0); err == nil {
		t.Fatal("zero window accepted")
	}
}

func TestMemcachedMixAndLatency(t *testing.T) {
	eng, a, b := twoNodes(t, 1_000_000_000, 20*int64(sim.Microsecond))
	srv, err := StartMemcachedServer(b, kernel.SockAddr{IP: ipB, Port: 11211}, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewMemcachedClient(a, ipA, 42000, 20, kernel.SockAddr{IP: ipB, Port: 11211}, 4)
	if err != nil {
		t.Fatal(err)
	}
	cli.Run(5000, int64(sim.Second))
	eng.Run(2 * int64(sim.Second))
	if cli.Issued != 5000 {
		t.Fatalf("issued = %d", cli.Issued)
	}
	if cli.Answered != cli.Issued {
		t.Fatalf("answered %d of %d", cli.Answered, cli.Issued)
	}
	// 4:1 GET/SET mix.
	if srv.Gets != 4000 || srv.Sets != 1000 {
		t.Fatalf("gets=%d sets=%d, want 4000/1000", srv.Gets, srv.Sets)
	}
	if len(cli.Latencies) != 5000 {
		t.Fatalf("latencies = %d", len(cli.Latencies))
	}
	for _, l := range cli.Latencies {
		if l < 40*int64(sim.Microsecond) {
			t.Fatalf("latency %dns below 2x propagation", l)
		}
	}
}

func TestMemcachedBadConfig(t *testing.T) {
	_, a, _ := twoNodes(t, 0, 0)
	if _, err := NewMemcachedClient(a, ipA, 1000, 0, kernel.SockAddr{}, 4); err == nil {
		t.Fatal("zero conns accepted")
	}
}
