package ovs

import (
	"testing"

	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

func pkt(src, dst vnet.IPv4, sport, dport uint16) *vnet.Packet {
	return &vnet.Packet{
		IP:  vnet.IPv4Header{Protocol: vnet.ProtoUDP, Src: src, Dst: dst, TTL: 64},
		UDP: &vnet.UDPHeader{SrcPort: sport, DstPort: dport},
		Eth: vnet.EthernetHeader{EtherType: vnet.EtherTypeIPv4},
	}
}

func newBridge(t *testing.T, cfg Config) (*sim.Engine, *Bridge) {
	t.Helper()
	eng := sim.NewEngine(1)
	return eng, New(eng, cfg)
}

func TestBridgeSwitchesByRoute(t *testing.T) {
	eng, b := newBridge(t, DefaultConfig("br0"))
	in, err := b.AddPort("vnet0", 1, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := b.AddPort("vnet2", 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var got []*vnet.Packet
	out.SetOut(func(p *vnet.Packet) { got = append(got, p) })
	if err := b.AddRoute(3, "vnet2"); err != nil {
		t.Fatal(err)
	}
	in.In.Receive(pkt(1, 3, 1000, 2000))
	eng.RunUntilIdle()
	if len(got) != 1 {
		t.Fatalf("delivered %d, want 1", len(got))
	}
	if b.Stats().Switched != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestBridgeDuplicatePortRejected(t *testing.T) {
	_, b := newBridge(t, DefaultConfig("br0"))
	if _, err := b.AddPort("vnet0", 1, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddPort("vnet0", 2, nil, nil); err == nil {
		t.Fatal("duplicate port accepted")
	}
}

func TestBridgeRouteToUnknownPortRejected(t *testing.T) {
	_, b := newBridge(t, DefaultConfig("br0"))
	if err := b.AddRoute(1, "nope"); err == nil {
		t.Fatal("route to unknown port accepted")
	}
}

func TestBridgeNoRouteDrops(t *testing.T) {
	eng, b := newBridge(t, DefaultConfig("br0"))
	in, _ := b.AddPort("vnet0", 1, nil, nil)
	in.In.Receive(pkt(1, 99, 1000, 2000))
	eng.RunUntilIdle()
	if b.Stats().DroppedNoRoute != 1 {
		t.Fatalf("stats = %+v", b.Stats())
	}
}

func TestFlowCacheMissOnlyOnFirstPacket(t *testing.T) {
	eng, b := newBridge(t, DefaultConfig("br0"))
	in, _ := b.AddPort("vnet0", 1, nil, nil)
	out, _ := b.AddPort("vnet2", 2, nil, nil)
	out.SetOut(func(*vnet.Packet) {})
	b.AddRoute(3, "vnet2")
	for i := 0; i < 10; i++ {
		in.In.Receive(pkt(1, 3, 1000, 2000))
	}
	eng.RunUntilIdle()
	if b.Stats().FlowMisses != 1 {
		t.Fatalf("FlowMisses = %d, want 1", b.Stats().FlowMisses)
	}
	// A different flow misses again.
	in.In.Receive(pkt(1, 3, 1001, 2000))
	eng.RunUntilIdle()
	if b.Stats().FlowMisses != 2 {
		t.Fatalf("FlowMisses = %d, want 2", b.Stats().FlowMisses)
	}
}

func TestCrossPortSwitchingPenalty(t *testing.T) {
	// Same total packet count, one port vs alternating ports: the
	// alternating case must take longer (Case II vs Case III).
	run := func(alternate bool) int64 {
		cfg := DefaultConfig("br0")
		cfg.FlowMissNs = 0 // isolate the port-switch effect
		eng, b := newBridge(t, cfg)
		in0, _ := b.AddPort("vnet0", 1, nil, nil)
		in1, _ := b.AddPort("vnet1", 2, nil, nil)
		out, _ := b.AddPort("vnet2", 3, nil, nil)
		var last int64
		out.SetOut(func(*vnet.Packet) { last = eng.Now() })
		b.AddRoute(3, "vnet2")
		for i := 0; i < 100; i++ {
			src := in0
			sport := uint16(1000)
			if alternate && i%2 == 1 {
				src = in1
				sport = 1001
			}
			src.In.Receive(pkt(1, 3, sport, 2000))
		}
		eng.RunUntilIdle()
		return last
	}
	single := run(false)
	alternating := run(true)
	if alternating <= single {
		t.Fatalf("alternating ports (%d ns) not slower than single port (%d ns)", alternating, single)
	}
}

func TestIngressPolicingDropsExcess(t *testing.T) {
	eng, b := newBridge(t, DefaultConfig("br0"))
	// Tiny policer: a couple of packets pass, the rest drop at ingress.
	in, _ := b.AddPort("vnet0", 1, vnet.NewTokenBucket(100, 2), nil)
	out, _ := b.AddPort("vnet2", 2, nil, nil)
	delivered := 0
	out.SetOut(func(*vnet.Packet) { delivered++ })
	b.AddRoute(3, "vnet2")
	for i := 0; i < 50; i++ {
		p := pkt(1, 3, 1000, 2000)
		p.Payload = make([]byte, 100)
		in.In.Receive(p)
	}
	eng.RunUntilIdle()
	if in.In.Stats().DroppedPolice == 0 {
		t.Fatal("policer never dropped")
	}
	if delivered == 0 {
		t.Fatal("policer dropped everything including the burst")
	}
	if uint64(delivered)+in.In.Stats().DroppedPolice != 50 {
		t.Fatalf("accounting: delivered=%d dropped=%d", delivered, in.In.Stats().DroppedPolice)
	}
}

func TestFabricQueueOverflow(t *testing.T) {
	cfg := DefaultConfig("br0")
	cfg.FabricQueueCap = 4
	cfg.FabricBaseNs = 1000000 // slow fabric
	eng, b := newBridge(t, cfg)
	in, _ := b.AddPort("vnet0", 1, nil, nil)
	out, _ := b.AddPort("vnet2", 2, nil, nil)
	out.SetOut(func(*vnet.Packet) {})
	b.AddRoute(3, "vnet2")
	for i := 0; i < 50; i++ {
		in.In.Receive(pkt(1, 3, 1000, 2000))
	}
	eng.RunUntilIdle()
	if b.Stats().DroppedFabric == 0 {
		t.Fatal("fabric queue never overflowed")
	}
}

func TestQueueingDelayGrowsWithLoad(t *testing.T) {
	// Measure the last-packet completion time at two load levels; the
	// saturated case must show superlinear growth in per-packet delay.
	run := func(n int) int64 {
		cfg := DefaultConfig("br0")
		cfg.FlowMissNs = 0
		eng, b := newBridge(t, cfg)
		in, _ := b.AddPort("vnet0", 1, nil, nil)
		out, _ := b.AddPort("vnet2", 2, nil, nil)
		var last int64
		out.SetOut(func(*vnet.Packet) { last = eng.Now() })
		b.AddRoute(3, "vnet2")
		for i := 0; i < n; i++ {
			in.In.Receive(pkt(1, 3, 1000, 2000))
		}
		eng.RunUntilIdle()
		return last
	}
	t10 := run(10)
	t100 := run(100)
	if t100 < t10*9 {
		t.Fatalf("no queueing: t10=%d t100=%d", t10, t100)
	}
}

func TestTraceHookAttachAtPort(t *testing.T) {
	eng, b := newBridge(t, DefaultConfig("br0"))
	in, _ := b.AddPort("vnet0", 1, nil, nil)
	out, _ := b.AddPort("vnet2", 2, nil, nil)
	out.SetOut(func(*vnet.Packet) {})
	b.AddRoute(3, "vnet2")
	seen := 0
	detach := in.In.AttachHook(vnet.Ingress, func(p *vnet.Packet, d vnet.Direction) int64 {
		seen++
		return 0
	})
	defer detach()
	in.In.Receive(pkt(1, 3, 1000, 2000))
	eng.RunUntilIdle()
	if seen != 1 {
		t.Fatalf("hook saw %d packets", seen)
	}
}
