// Package ovs models an Open vSwitch bridge: ingress ports with bounded
// queues and optional policing/shaping, a shared switching fabric with
// finite capacity, a flow cache with slow-path misses, and static IP
// routes. Two delays dominate under load, exactly as the paper's case
// study I decomposes them: queueing delay at a saturated ingress port, and
// processing delay when the fabric alternates between flows arriving on
// different ingress ports.
package ovs

import (
	"fmt"

	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

// Config tunes the bridge's cost model.
type Config struct {
	Name string
	// PortProcNs is the per-packet cost at an ingress port.
	PortProcNs int64
	// PortQueueCap bounds each ingress queue in packets.
	PortQueueCap int
	// FabricBaseNs is the fabric's per-packet switching cost.
	FabricBaseNs int64
	// PortSwitchNs is the additional cost when the fabric serves a packet
	// from a different ingress port than the previous one (flow context
	// switching across ports, the Case III / III+ delay).
	PortSwitchNs int64
	// FlowMissNs is the slow-path cost on a flow-cache miss.
	FlowMissNs int64
	// FabricQueueCap bounds the fabric queue; 0 = unbounded.
	FabricQueueCap int
}

// DefaultConfig returns the cost model used by the paper-reproduction
// testbeds.
func DefaultConfig(name string) Config {
	return Config{
		Name:         name,
		PortProcNs:   500,
		PortQueueCap: 512,
		FabricBaseNs: 1200,
		PortSwitchNs: 2500,
		FlowMissNs:   50000,
		FabricQueueCap: 4096,
	}
}

// Stats aggregates bridge counters.
type Stats struct {
	Switched    uint64
	FlowMisses  uint64
	PortSwitches uint64
	DroppedFabric uint64
	DroppedNoRoute uint64
}

// Bridge is an Open vSwitch instance.
type Bridge struct {
	eng   *sim.Engine
	cfg   Config
	ports map[string]*Port

	queue    []fabricItem
	busy     bool
	lastPort string
	// recentPorts is a sliding window of recently served ingress ports;
	// the cross-port penalty scales with how many distinct ports contend,
	// modelling flow-cache and batching disruption as flows from more
	// ingress ports interleave (the paper's Case III -> III+ growth).
	recentPorts [16]string
	recentIdx   int

	flowCache map[vnet.FiveTuple]string
	routes    map[vnet.IPv4]string

	stats Stats
}

type fabricItem struct {
	port string
	pkt  *vnet.Packet
}

// Port is one bridge port: an ingress queueing device (where trace hooks
// and policers attach) plus an egress delivery function toward the
// attached VM, container, or uplink.
type Port struct {
	Name string
	In   *vnet.NetDev
	out  func(p *vnet.Packet)
}

// SetOut rewires where packets switched to this port are delivered.
func (p *Port) SetOut(out func(pkt *vnet.Packet)) { p.out = out }

// New creates a bridge.
func New(eng *sim.Engine, cfg Config) *Bridge {
	if cfg.Name == "" {
		cfg.Name = "ovs-br0"
	}
	return &Bridge{
		eng:       eng,
		cfg:       cfg,
		ports:     make(map[string]*Port),
		flowCache: make(map[vnet.FiveTuple]string),
		routes:    make(map[vnet.IPv4]string),
	}
}

// Name returns the bridge name.
func (b *Bridge) Name() string { return b.cfg.Name }

// Stats returns a snapshot of bridge counters.
func (b *Bridge) Stats() Stats { return b.stats }

// AddPort creates a port. ifindex feeds trace contexts; policer may be
// nil; shaperFor, when non-nil, classifies arriving packets into HTB
// classes for QoS shaping (the paper's alternative to policing). The
// returned port's In device is the attach point for both packets and trace
// hooks.
func (b *Bridge) AddPort(name string, ifindex int, policer *vnet.TokenBucket, shaperFor func(*vnet.Packet) *vnet.HTBClass) (*Port, error) {
	if _, dup := b.ports[name]; dup {
		return nil, fmt.Errorf("ovs: port %q already exists on %s", name, b.cfg.Name)
	}
	p := &Port{Name: name}
	p.In = vnet.NewNetDev(b.eng, vnet.NetDevConfig{
		Name:      name,
		Ifindex:   ifindex,
		ProcNs:    func(*vnet.Packet) int64 { return b.cfg.PortProcNs },
		QueueCap:  b.cfg.PortQueueCap,
		Policer:   policer,
		ShaperFor: shaperFor,
		Out:       func(pkt *vnet.Packet) { b.fabricEnqueue(name, pkt) },
	})
	b.ports[name] = p
	return p, nil
}

// Port returns a port by name.
func (b *Bridge) Port(name string) (*Port, bool) {
	p, ok := b.ports[name]
	return p, ok
}

// AddRoute directs packets for ip out of the named port.
func (b *Bridge) AddRoute(ip vnet.IPv4, portName string) error {
	if _, ok := b.ports[portName]; !ok {
		return fmt.Errorf("ovs: route to unknown port %q", portName)
	}
	b.routes[ip] = portName
	return nil
}

func (b *Bridge) fabricEnqueue(port string, pkt *vnet.Packet) {
	if b.cfg.FabricQueueCap > 0 && len(b.queue) >= b.cfg.FabricQueueCap {
		b.stats.DroppedFabric++
		return
	}
	b.queue = append(b.queue, fabricItem{port: port, pkt: pkt})
	b.maybeServe()
}

func (b *Bridge) maybeServe() {
	if b.busy || len(b.queue) == 0 {
		return
	}
	b.busy = true
	item := b.queue[0]
	b.queue = b.queue[1:]

	cost := b.cfg.FabricBaseNs
	if b.lastPort != "" && b.lastPort != item.port {
		cost += b.cfg.PortSwitchNs * int64(b.distinctRecent()-1)
		b.stats.PortSwitches++
	}
	b.lastPort = item.port
	b.recentPorts[b.recentIdx] = item.port
	b.recentIdx = (b.recentIdx + 1) % len(b.recentPorts)

	flow := item.pkt.Flow()
	outPort, cached := b.flowCache[flow]
	if !cached {
		cost += b.cfg.FlowMissNs
		b.stats.FlowMisses++
		outPort = b.routes[flow.Dst]
		if outPort != "" {
			b.flowCache[flow] = outPort
		}
	}

	b.eng.Schedule(cost, func() {
		b.deliver(outPort, item.pkt)
		b.busy = false
		b.maybeServe()
	})
}

// distinctRecent counts distinct ingress ports in the recent-service
// window (at least 1 once anything has been served).
func (b *Bridge) distinctRecent() int {
	n := 0
	for i, p := range b.recentPorts {
		if p == "" {
			continue
		}
		dup := false
		for _, q := range b.recentPorts[:i] {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

func (b *Bridge) deliver(portName string, pkt *vnet.Packet) {
	p, ok := b.ports[portName]
	if !ok || p.out == nil {
		b.stats.DroppedNoRoute++
		return
	}
	b.stats.Switched++
	p.out(pkt)
}
