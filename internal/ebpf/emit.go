package ebpf

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// The emitter turns the optimized IR into a single web of specialized Go
// closures: every op closure calls the next one, block terminators call
// directly into their successor block's chain (blocks are emitted in
// reverse index order, so successors always exist first), and an
// unconditional fallthrough costs nothing at all — the predecessor's last
// op simply continues into the successor's chain. Executing a program is
// one closure call; there is no dispatch loop, no pc bookkeeping, and no
// per-insn budget check (lowering rejects back edges, so each block runs
// at most once and total work is bounded by MaxInsns at load time). Ops
// whose bounds the verifier proved index the stack and ctx buffers
// directly; everything else keeps the interpreter's fully checked
// helpers, so the tiers cannot disagree on observable behavior.

// blockFn is one link in a compiled closure chain: it performs its
// operation and calls straight into the rest of the program. A nil error
// return means the chain ran to an exit with the result in R0.
type blockFn func(m *vm) error

// optProg is a program compiled by the optimized tier: the entry block's
// closure chain, which links through every reachable block. cache is a
// single-slot vm reservoir in front of the shared vmPool — the common
// case of one goroutine tracing packets back to back trades sync.Pool's
// pin/unpin for one uncontended atomic swap per run.
type optProg struct {
	entry blockFn
	cache atomic.Pointer[vm]
}

func wrapInsn(err error, pc int) error {
	return fmt.Errorf("%w at insn %d", err, pc)
}

// emitProgram compiles an optimized irProg into one closure web. Blocks
// are emitted from the last index backward so every terminator can
// capture its successors' already-built chains; each block's chain starts
// with a closure charging its bytecode instruction count to ExecStats.
func emitProgram(p *irProg) (*optProg, error) {
	chains := make([]blockFn, len(p.blocks))
	for i := len(p.blocks) - 1; i >= 0; i-- {
		blk := &p.blocks[i]
		fn, err := emitBlock(blk, p.maps, chains)
		if err != nil {
			return nil, err
		}
		n, inner := blk.insns, fn
		chains[i] = func(m *vm) error {
			m.stats.Insns += n
			return inner(m)
		}
	}
	return &optProg{entry: chains[0]}, nil
}

func emitBlock(blk *irBlock, maps []Map, chains []blockFn) (blockFn, error) {
	fn, err := emitTerm(&blk.term, chains)
	if err != nil {
		return nil, err
	}
	for i := len(blk.ops) - 1; i >= 0; i-- {
		fn, err = emitOp(&blk.ops[i], maps, fn)
		if err != nil {
			return nil, err
		}
	}
	return fn, nil
}

// emitOp compiles one IR operation into a closure that performs it and
// continues with next.
func emitOp(op *irInsn, maps []Map, next blockFn) (blockFn, error) {
	switch op.kind {
	case irMovImm:
		dst, v := op.dst, uint64(op.imm)
		return func(m *vm) error {
			m.regs[dst] = v
			return next(m)
		}, nil

	case irMovReg:
		dst, src := op.dst, op.src
		return func(m *vm) error {
			m.regs[dst] = m.regs[src]
			return next(m)
		}, nil

	case irALU:
		return emitALU(op, next), nil

	case irLoadCtx:
		dst, off := op.dst, op.off
		switch op.size {
		case 1:
			return func(m *vm) error {
				m.regs[dst] = uint64(m.ctx[off])
				return next(m)
			}, nil
		case 2:
			return func(m *vm) error {
				m.regs[dst] = uint64(binary.LittleEndian.Uint16(m.ctx[off:]))
				return next(m)
			}, nil
		case 4:
			return func(m *vm) error {
				m.regs[dst] = uint64(binary.LittleEndian.Uint32(m.ctx[off:]))
				return next(m)
			}, nil
		case 8:
			return func(m *vm) error {
				m.regs[dst] = binary.LittleEndian.Uint64(m.ctx[off:])
				return next(m)
			}, nil
		}
		return nil, fmt.Errorf("%w: ctx load size %d", errLower, op.size)

	case irLoadStack:
		dst, off := op.dst, op.off
		switch op.size {
		case 1:
			return func(m *vm) error {
				m.regs[dst] = uint64(m.stack[off])
				return next(m)
			}, nil
		case 2:
			return func(m *vm) error {
				m.regs[dst] = uint64(binary.LittleEndian.Uint16(m.stack[off:]))
				return next(m)
			}, nil
		case 4:
			return func(m *vm) error {
				m.regs[dst] = uint64(binary.LittleEndian.Uint32(m.stack[off:]))
				return next(m)
			}, nil
		case 8:
			return func(m *vm) error {
				m.regs[dst] = binary.LittleEndian.Uint64(m.stack[off:])
				return next(m)
			}, nil
		}
		return nil, fmt.Errorf("%w: stack load size %d", errLower, op.size)

	case irLoadDyn:
		dst, src, off, size, pc := op.dst, op.src, op.off, op.size, op.origPC
		return func(m *vm) error {
			v, err := m.load(m.regs[src]+uint64(off), size)
			if err != nil {
				return wrapInsn(err, pc)
			}
			m.regs[dst] = v
			return next(m)
		}, nil

	case irStoreStack:
		src, off := op.src, op.off
		switch op.size {
		case 1:
			return func(m *vm) error {
				m.stack[off] = byte(m.regs[src])
				return next(m)
			}, nil
		case 2:
			return func(m *vm) error {
				binary.LittleEndian.PutUint16(m.stack[off:], uint16(m.regs[src]))
				return next(m)
			}, nil
		case 4:
			return func(m *vm) error {
				binary.LittleEndian.PutUint32(m.stack[off:], uint32(m.regs[src]))
				return next(m)
			}, nil
		case 8:
			return func(m *vm) error {
				binary.LittleEndian.PutUint64(m.stack[off:], m.regs[src])
				return next(m)
			}, nil
		}
		return nil, fmt.Errorf("%w: stack store size %d", errLower, op.size)

	case irStoreStackImm:
		off := op.off
		switch op.size {
		case 1:
			v := byte(uint64(op.imm))
			return func(m *vm) error {
				m.stack[off] = v
				return next(m)
			}, nil
		case 2:
			v := uint16(uint64(op.imm))
			return func(m *vm) error {
				binary.LittleEndian.PutUint16(m.stack[off:], v)
				return next(m)
			}, nil
		case 4:
			v := uint32(uint64(op.imm))
			return func(m *vm) error {
				binary.LittleEndian.PutUint32(m.stack[off:], v)
				return next(m)
			}, nil
		case 8:
			v := uint64(op.imm)
			return func(m *vm) error {
				binary.LittleEndian.PutUint64(m.stack[off:], v)
				return next(m)
			}, nil
		}
		return nil, fmt.Errorf("%w: stack store size %d", errLower, op.size)

	case irStoreDyn:
		dst, src, off, size, pc := op.dst, op.src, op.off, op.size, op.origPC
		return func(m *vm) error {
			if err := m.store(m.regs[dst]+uint64(off), size, m.regs[src]); err != nil {
				return wrapInsn(err, pc)
			}
			return next(m)
		}, nil

	case irStoreDynImm:
		dst, off, size, v, pc := op.dst, op.off, op.size, uint64(op.imm), op.origPC
		return func(m *vm) error {
			if err := m.store(m.regs[dst]+uint64(off), size, v); err != nil {
				return wrapInsn(err, pc)
			}
			return next(m)
		}, nil

	case irCopyCtxStack:
		return emitCopyCtxStack(op, next)

	case irCopyBatch:
		ops := op.batch
		for i := range ops {
			if ops[i].code == mcGeneric && (!validSize(ops[i].ls) || !validSize(ops[i].ss)) {
				return nil, fmt.Errorf("%w: batch copy sizes %d/%d", errLower, ops[i].ls, ops[i].ss)
			}
		}
		return func(m *vm) error {
			ctx := m.ctx
			for i := range ops {
				o := &ops[i]
				switch o.code {
				case mcCopy44:
					binary.LittleEndian.PutUint32(m.stack[o.so:], binary.LittleEndian.Uint32(ctx[o.co:]))
				case mcCopy88:
					binary.LittleEndian.PutUint64(m.stack[o.so:], binary.LittleEndian.Uint64(ctx[o.co:]))
				case mcCopy42:
					binary.LittleEndian.PutUint16(m.stack[o.so:], uint16(binary.LittleEndian.Uint32(ctx[o.co:])))
				case mcCopy41:
					m.stack[o.so] = byte(binary.LittleEndian.Uint32(ctx[o.co:]))
				case mcImm8:
					m.stack[o.so] = byte(o.imm)
				case mcImm16:
					binary.LittleEndian.PutUint16(m.stack[o.so:], uint16(o.imm))
				case mcImm32:
					binary.LittleEndian.PutUint32(m.stack[o.so:], uint32(o.imm))
				case mcImm64:
					binary.LittleEndian.PutUint64(m.stack[o.so:], o.imm)
				default:
					storeLE(m.stack[:], o.so, o.ss, loadLE(ctx, o.co, o.ls))
				}
			}
			return next(m)
		}, nil

	case irHelper:
		id, pc := op.helper, op.origPC
		return func(m *vm) error {
			if err := m.call(id); err != nil {
				return wrapInsn(err, pc)
			}
			return next(m)
		}, nil

	case irKtime:
		return func(m *vm) error {
			m.stats.HelperCalls++
			m.regs[R0] = m.env.KtimeNs()
			return next(m)
		}, nil

	case irSmpID:
		return func(m *vm) error {
			m.stats.HelperCalls++
			m.regs[R0] = uint64(m.env.SMPProcessorID())
			return next(m)
		}, nil

	case irPrandom:
		return func(m *vm) error {
			m.stats.HelperCalls++
			m.regs[R0] = uint64(m.env.PrandomU32())
			return next(m)
		}, nil

	case irPerfEmitStack:
		lo, hi := op.off, op.off+op.size
		return func(m *vm) error {
			m.stats.HelperCalls++
			data := m.stack[lo:hi]
			m.stats.PerfBytes += len(data)
			if m.env.PerfEventOutput(data) {
				m.regs[R0] = 0
			} else {
				m.regs[R0] = ^uint64(0) - 104 // -ENOBUFS
			}
			return next(m)
		}, nil

	case irMapLookupStack:
		mp, lo, hi := maps[op.mapIdx], op.off, op.off+op.size
		return func(m *vm) error {
			m.stats.HelperCalls++
			// The key slice is read within the call and never retained, so
			// passing VM stack memory directly avoids the per-call copy.
			val, ok := mp.Lookup(m.stack[lo:hi])
			if !ok {
				m.regs[R0] = 0
				return next(m)
			}
			m.regions = append(m.regions, val)
			m.regs[R0] = m.ptr(len(m.regions)-1, 0)
			return next(m)
		}, nil

	case irMapUpdateStack:
		mp := maps[op.mapIdx]
		k0, k1 := op.off, op.off+op.size
		v0, v1 := op.valOff, op.valOff+int64(mp.ValueSize())
		flags := op.flags
		return func(m *vm) error {
			m.stats.HelperCalls++
			if err := mp.Update(m.stack[k0:k1], m.stack[v0:v1], flags); err != nil {
				m.regs[R0] = ^uint64(0)
			} else {
				m.regs[R0] = 0
			}
			return next(m)
		}, nil

	case irMapDeleteStack:
		mp, lo, hi := maps[op.mapIdx], op.off, op.off+op.size
		return func(m *vm) error {
			m.stats.HelperCalls++
			if err := mp.Delete(m.stack[lo:hi]); err != nil {
				m.regs[R0] = ^uint64(0)
			} else {
				m.regs[R0] = 0
			}
			return next(m)
		}, nil

	case irMapIncStack:
		// The map implementation is known at compile time, so each form
		// binds its fast path directly: no type switch, no key copy, no
		// allocation on the aggregating hot path. Delta comes from R3 at
		// runtime (it is often a packet length, not a constant).
		k0, k1, valOff := op.off, op.off+op.size, op.valOff
		switch t := maps[op.mapIdx].(type) {
		case *HashMap:
			return func(m *vm) error {
				m.stats.HelperCalls++
				if t.Inc(m.stack[k0:k1], valOff, m.regs[R3]) {
					m.regs[R0] = 0
				} else {
					m.regs[R0] = ^uint64(0)
				}
				return next(m)
			}, nil
		case *ArrayMap:
			return func(m *vm) error {
				m.stats.HelperCalls++
				ok := false
				if idx, okIdx := t.index(m.stack[k0:k1]); okIdx {
					ok = t.IncSlot(idx, valOff, m.regs[R3])
				}
				if ok {
					m.regs[R0] = 0
				} else {
					m.regs[R0] = ^uint64(0)
				}
				return next(m)
			}, nil
		case *PerCPUArray:
			return func(m *vm) error {
				m.stats.HelperCalls++
				ok := false
				if idx, okIdx := t.index(m.stack[k0:k1]); okIdx {
					ok = t.IncSlotCPU(idx, int(m.env.SMPProcessorID()), valOff, m.regs[R3])
				}
				if ok {
					m.regs[R0] = 0
				} else {
					m.regs[R0] = ^uint64(0)
				}
				return next(m)
			}, nil
		}
		mp := maps[op.mapIdx]
		return func(m *vm) error {
			m.stats.HelperCalls++
			if m.mapInc(mp, m.stack[k0:k1], valOff, m.regs[R3]) {
				m.regs[R0] = 0
			} else {
				m.regs[R0] = ^uint64(0)
			}
			return next(m)
		}, nil

	case irHistObserve:
		switch t := maps[op.mapIdx].(type) {
		case *ArrayMap:
			maxE := t.MaxEntries()
			return func(m *vm) error {
				m.stats.HelperCalls++
				b := histBucket(m.regs[R2], maxE)
				if t.IncSlot(b, 0, 1) {
					m.regs[R0] = uint64(b)
				} else {
					m.regs[R0] = ^uint64(0)
				}
				return next(m)
			}, nil
		case *PerCPUArray:
			maxE := t.MaxEntries()
			return func(m *vm) error {
				m.stats.HelperCalls++
				b := histBucket(m.regs[R2], maxE)
				if t.IncSlotCPU(b, int(m.env.SMPProcessorID()), 0, 1) {
					m.regs[R0] = uint64(b)
				} else {
					m.regs[R0] = ^uint64(0)
				}
				return next(m)
			}, nil
		}
		mp := maps[op.mapIdx]
		return func(m *vm) error {
			m.stats.HelperCalls++
			b := histBucket(m.regs[R2], mp.MaxEntries())
			if m.histInc(mp, b) {
				m.regs[R0] = uint64(b)
			} else {
				m.regs[R0] = ^uint64(0)
			}
			return next(m)
		}, nil
	}
	return nil, fmt.Errorf("%w: ir op %d", errLower, op.kind)
}

// emitALU specializes the hot 64-bit forms; everything else goes through
// aluOp, mirroring the interpreter's truncation and div/mod semantics.
func emitALU(op *irInsn, next blockFn) blockFn {
	dst, src := op.dst, op.src
	if op.is64 && !op.useReg {
		imm := uint64(op.imm)
		switch op.aluOp {
		case ALUAdd:
			return func(m *vm) error {
				m.regs[dst] += imm
				return next(m)
			}
		case ALUSub:
			return func(m *vm) error {
				m.regs[dst] -= imm
				return next(m)
			}
		case ALUAnd:
			return func(m *vm) error {
				m.regs[dst] &= imm
				return next(m)
			}
		case ALUOr:
			return func(m *vm) error {
				m.regs[dst] |= imm
				return next(m)
			}
		case ALUXor:
			return func(m *vm) error {
				m.regs[dst] ^= imm
				return next(m)
			}
		case ALUMul:
			return func(m *vm) error {
				m.regs[dst] *= imm
				return next(m)
			}
		case ALULsh:
			sh := imm & 63
			return func(m *vm) error {
				m.regs[dst] <<= sh
				return next(m)
			}
		case ALURsh:
			sh := imm & 63
			return func(m *vm) error {
				m.regs[dst] >>= sh
				return next(m)
			}
		}
	}
	if op.is64 && op.useReg {
		switch op.aluOp {
		case ALUAdd:
			return func(m *vm) error {
				m.regs[dst] += m.regs[src]
				return next(m)
			}
		case ALUSub:
			return func(m *vm) error {
				m.regs[dst] -= m.regs[src]
				return next(m)
			}
		case ALUAnd:
			return func(m *vm) error {
				m.regs[dst] &= m.regs[src]
				return next(m)
			}
		case ALUOr:
			return func(m *vm) error {
				m.regs[dst] |= m.regs[src]
				return next(m)
			}
		case ALUXor:
			return func(m *vm) error {
				m.regs[dst] ^= m.regs[src]
				return next(m)
			}
		}
	}
	if !op.is64 && op.useReg && op.aluOp == ALUMov {
		return func(m *vm) error {
			m.regs[dst] = uint64(uint32(m.regs[src]))
			return next(m)
		}
	}
	aop, is64, useReg, imm, pc := op.aluOp, op.is64, op.useReg, uint64(op.imm), op.origPC
	return func(m *vm) error {
		s := imm
		if useReg {
			s = m.regs[src]
		}
		d := m.regs[dst]
		if !is64 {
			s = uint64(uint32(s))
			d = uint64(uint32(d))
		}
		res, err := aluOp(aop, d, s, is64)
		if err != nil {
			return wrapInsn(err, pc)
		}
		if !is64 {
			res = uint64(uint32(res))
		}
		m.regs[dst] = res
		return next(m)
	}
}

// emitCopyCtxStack compiles the fused ctx-to-stack copy. The common
// record-script shapes get dedicated closures; remaining width pairs use
// a generic load-then-truncate form.
func emitCopyCtxStack(op *irInsn, next blockFn) (blockFn, error) {
	co, so := op.ctxOff, op.off
	switch {
	case op.loadSize == 4 && op.size == 4:
		return func(m *vm) error {
			binary.LittleEndian.PutUint32(m.stack[so:], binary.LittleEndian.Uint32(m.ctx[co:]))
			return next(m)
		}, nil
	case op.loadSize == 8 && op.size == 8:
		return func(m *vm) error {
			binary.LittleEndian.PutUint64(m.stack[so:], binary.LittleEndian.Uint64(m.ctx[co:]))
			return next(m)
		}, nil
	case op.loadSize == 4 && op.size == 2:
		return func(m *vm) error {
			binary.LittleEndian.PutUint16(m.stack[so:], uint16(binary.LittleEndian.Uint32(m.ctx[co:])))
			return next(m)
		}, nil
	case op.loadSize == 4 && op.size == 1:
		return func(m *vm) error {
			m.stack[so] = byte(binary.LittleEndian.Uint32(m.ctx[co:]))
			return next(m)
		}, nil
	case op.loadSize == 2 && op.size == 2:
		return func(m *vm) error {
			binary.LittleEndian.PutUint16(m.stack[so:], binary.LittleEndian.Uint16(m.ctx[co:]))
			return next(m)
		}, nil
	case op.loadSize == 1 && op.size == 1:
		return func(m *vm) error {
			m.stack[so] = m.ctx[co]
			return next(m)
		}, nil
	}
	ls, ss := op.loadSize, op.size
	if !validSize(ls) || !validSize(ss) {
		return nil, fmt.Errorf("%w: copy sizes %d/%d", errLower, ls, ss)
	}
	return func(m *vm) error {
		v := loadLE(m.ctx, co, ls)
		storeLE(m.stack[:], so, ss, v)
		return next(m)
	}, nil
}

func validSize(n int64) bool { return n == 1 || n == 2 || n == 4 || n == 8 }

func loadLE(mem []byte, off, size int64) uint64 {
	switch size {
	case 1:
		return uint64(mem[off])
	case 2:
		return uint64(binary.LittleEndian.Uint16(mem[off:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(mem[off:]))
	default:
		return binary.LittleEndian.Uint64(mem[off:])
	}
}

func storeLE(mem []byte, off, size int64, v uint64) {
	switch size {
	case 1:
		mem[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(mem[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(mem[off:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(mem[off:], v)
	}
}

// emitTerm compiles a block terminator into a closure that continues
// directly into the successor chain. The fused 32-bit ctx compare (the
// filter-check shape) gets branch-specific closures; other branches
// evaluate through jmpCond exactly like the interpreter. An unconditional
// jump IS the successor chain — zero runtime cost.
func emitTerm(t *irTerm, chains []blockFn) (blockFn, error) {
	succ := func(i int) (blockFn, error) {
		if i < 0 || i >= len(chains) || chains[i] == nil {
			return nil, fmt.Errorf("%w: unemitted successor block %d", errLower, i)
		}
		return chains[i], nil
	}
	switch t.kind {
	case termExit:
		return func(m *vm) error { return nil }, nil

	case termJump:
		return succ(t.taken)

	case termBranch:
		taken, err := succ(t.taken)
		if err != nil {
			return nil, err
		}
		fall, err := succ(t.fall)
		if err != nil {
			return nil, err
		}
		if t.ctxFused && !t.useReg && !t.is64 {
			co, k := t.ctxOff, uint32(uint64(t.imm))
			switch t.op {
			case JmpEq:
				return func(m *vm) error {
					if binary.LittleEndian.Uint32(m.ctx[co:]) == k {
						return taken(m)
					}
					return fall(m)
				}, nil
			case JmpNe:
				return func(m *vm) error {
					if binary.LittleEndian.Uint32(m.ctx[co:]) != k {
						return taken(m)
					}
					return fall(m)
				}, nil
			case JmpGt:
				return func(m *vm) error {
					if binary.LittleEndian.Uint32(m.ctx[co:]) > k {
						return taken(m)
					}
					return fall(m)
				}, nil
			case JmpLt:
				return func(m *vm) error {
					if binary.LittleEndian.Uint32(m.ctx[co:]) < k {
						return taken(m)
					}
					return fall(m)
				}, nil
			case JmpSet:
				return func(m *vm) error {
					if binary.LittleEndian.Uint32(m.ctx[co:])&k != 0 {
						return taken(m)
					}
					return fall(m)
				}, nil
			}
		}
		if t.ctxFused {
			co := t.ctxOff
			op, is64, useReg, src, imm, pc := t.op, t.is64, t.useReg, t.src, uint64(t.imm), t.origPC
			return func(m *vm) error {
				s := imm
				if useReg {
					s = m.regs[src]
				}
				d := uint64(binary.LittleEndian.Uint32(m.ctx[co:]))
				if !is64 {
					s = uint64(uint32(s))
				}
				take, err := jmpCond(op, d, s, is64)
				if err != nil {
					return wrapInsn(err, pc)
				}
				if take {
					return taken(m)
				}
				return fall(m)
			}, nil
		}
		op, is64, useReg, dst, src, imm, pc := t.op, t.is64, t.useReg, t.dst, t.src, uint64(t.imm), t.origPC
		return func(m *vm) error {
			s := imm
			if useReg {
				s = m.regs[src]
			}
			d := m.regs[dst]
			if !is64 {
				s = uint64(uint32(s))
				d = uint64(uint32(d))
			}
			take, err := jmpCond(op, d, s, is64)
			if err != nil {
				return wrapInsn(err, pc)
			}
			if take {
				return taken(m)
			}
			return fall(m)
		}, nil
	}
	return nil, fmt.Errorf("%w: terminator %d", errLower, t.kind)
}

// runOptimized executes a compiled program: one call into the entry
// chain. Instruction counts are charged per block by each block's charge
// closure. There is no step-budget check: lowering rejects back edges, so
// every block executes at most once and total work is bounded by the
// verifier's MaxInsns — the budget is unreachable by construction.
func runOptimized(p *optProg, maps []Map, ctx []byte, env Env) (uint64, ExecStats, error) {
	m := p.cache.Swap(nil)
	if m == nil {
		m = vmPool.Get().(*vm)
	}
	initVM(m, maps, ctx, env)

	err := p.entry(m)
	r0, stats := m.regs[R0], m.stats

	resetVM(m)
	if !p.cache.CompareAndSwap(nil, m) {
		vmPool.Put(m)
	}
	if err != nil {
		return 0, stats, err
	}
	return r0, stats, nil
}
