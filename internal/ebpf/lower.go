package ebpf

import (
	"fmt"
	"sort"
)

// errLower aborts lowering; Load falls back to the threaded tier. For a
// verified program this never fires — every case it guards is already
// rejected by checkStructure — but lowering is also exercised directly by
// tests on hand-built programs, so it stays defensive.
var errLower = fmt.Errorf("ebpf: program not lowerable")

// lowerProgram translates bytecode into the basic-block IR, resolving
// addressing against the verifier facts. facts may be nil (tests), in
// which case every memory access and argument-taking helper keeps its
// fully checked dynamic form and all instructions are assumed reachable.
// With real facts, instructions the verifier never explored (dead code
// after an exit or behind a statically decided branch) are skipped: the
// verifier proved nothing about them, and they can never execute.
func lowerProgram(insns []Insn, maps []Map, facts *progFacts) (*irProg, error) {
	if len(insns) == 0 {
		return nil, fmt.Errorf("%w: empty", errLower)
	}

	reach := make([]bool, len(insns))
	if facts != nil && len(facts.reach) == len(insns) {
		copy(reach, facts.reach)
	} else {
		for i := range reach {
			reach[i] = true
		}
	}
	if !reach[0] {
		return nil, fmt.Errorf("%w: entry unreachable", errLower)
	}

	starts, err := blockStarts(insns, reach)
	if err != nil {
		return nil, err
	}
	blockIdx := make(map[int]int, len(starts))
	for i, pc := range starts {
		blockIdx[pc] = i
	}

	p := &irProg{blocks: make([]irBlock, len(starts)), maps: maps}
	for bi, startPC := range starts {
		endPC := len(insns)
		if bi+1 < len(starts) {
			endPC = starts[bi+1]
		}
		blk, err := lowerBlock(insns, startPC, endPC, blockIdx, reach, maps, facts)
		if err != nil {
			return nil, err
		}
		p.blocks[bi] = blk
	}
	return p, nil
}

// blockStarts returns the sorted instruction indices that begin basic
// blocks: the entry, every reachable jump target, and every reachable
// fall-through successor of a branch, exit, or unconditional jump.
// Unreachable instructions are never parsed and never become blocks.
func blockStarts(insns []Insn, reach []bool) ([]int, error) {
	set := map[int]bool{0: true}
	for i := 0; i < len(insns); i++ {
		if !reach[i] {
			continue
		}
		in := insns[i]
		if in.IsWide() {
			if i+1 >= len(insns) {
				return nil, fmt.Errorf("%w: truncated wide insn at %d", errLower, i)
			}
			i++
			continue
		}
		cls := in.Class()
		if cls != ClassJMP && cls != ClassJMP32 {
			continue
		}
		op := in.Op & 0xf0
		switch op {
		case JmpCall:
			continue
		case JmpExit:
			if i+1 < len(insns) && reach[i+1] {
				set[i+1] = true
			}
			continue
		}
		t := i + 1 + int(in.Off)
		if t < 0 || t >= len(insns) {
			return nil, fmt.Errorf("%w: jump target %d out of range", errLower, t)
		}
		if t <= i {
			return nil, fmt.Errorf("%w: back edge %d -> %d", errLower, i, t)
		}
		if reach[t] {
			set[t] = true
		}
		if i+1 < len(insns) && reach[i+1] {
			set[i+1] = true
		}
	}
	starts := make([]int, 0, len(set))
	for pc := range set {
		starts = append(starts, pc)
	}
	sort.Ints(starts)
	return starts, nil
}

func lowerBlock(insns []Insn, startPC, endPC int, blockIdx map[int]int, reach []bool, maps []Map, facts *progFacts) (irBlock, error) {
	var blk irBlock
	succ := func(pc int) (int, error) {
		bi, ok := blockIdx[pc]
		if !ok {
			return 0, fmt.Errorf("%w: successor %d is not a block start", errLower, pc)
		}
		return bi, nil
	}

	pc := startPC
	for pc < endPC {
		in := insns[pc]
		blk.insns++

		switch {
		case in.IsWide():
			var v uint64
			if in.Src == PseudoMapFD {
				v = mapHandleBase | uint64(uint32(in.Imm))
			} else {
				v = uint64(uint32(insns[pc+1].Imm))<<32 | uint64(uint32(in.Imm))
			}
			blk.ops = append(blk.ops, irInsn{kind: irMovImm, dst: in.Dst, imm: int64(v), origPC: pc})
			pc += 2
			continue

		case in.Class() == ClassALU64 || in.Class() == ClassALU:
			blk.ops = append(blk.ops, lowerALU(in, pc))
			pc++
			continue

		case in.Class() == ClassLDX:
			size := sizeBytes(in.Op & 0x18)
			op := irInsn{kind: irLoadDyn, dst: in.Dst, src: in.Src, off: int64(in.Off), size: size, origPC: pc}
			if f := memFactAt(facts, pc); f != nil {
				switch f.kind {
				case kindCtx:
					op = irInsn{kind: irLoadCtx, dst: in.Dst, off: f.off + int64(in.Off), size: size, origPC: pc}
				case kindStack:
					op = irInsn{kind: irLoadStack, dst: in.Dst, off: f.off + int64(in.Off), size: size, origPC: pc}
				}
			}
			blk.ops = append(blk.ops, op)
			pc++
			continue

		case in.Class() == ClassSTX:
			size := sizeBytes(in.Op & 0x18)
			op := irInsn{kind: irStoreDyn, dst: in.Dst, src: in.Src, off: int64(in.Off), size: size, origPC: pc}
			if f := memFactAt(facts, pc); f != nil && f.kind == kindStack {
				op = irInsn{kind: irStoreStack, src: in.Src, off: f.off + int64(in.Off), size: size, origPC: pc}
			}
			blk.ops = append(blk.ops, op)
			pc++
			continue

		case in.Class() == ClassST:
			size := sizeBytes(in.Op & 0x18)
			imm := int64(in.Imm)
			op := irInsn{kind: irStoreDynImm, dst: in.Dst, off: int64(in.Off), size: size, imm: imm, origPC: pc}
			if f := memFactAt(facts, pc); f != nil && f.kind == kindStack {
				op = irInsn{kind: irStoreStackImm, off: f.off + int64(in.Off), size: size, imm: imm, origPC: pc}
			}
			blk.ops = append(blk.ops, op)
			pc++
			continue

		case in.Class() == ClassJMP || in.Class() == ClassJMP32:
			op := in.Op & 0xf0
			switch op {
			case JmpExit:
				blk.term = irTerm{kind: termExit, origPC: pc}
				return blk, nil
			case JmpCall:
				blk.ops = append(blk.ops, lowerCall(in, pc, maps, facts))
				pc++
				continue
			case JmpA:
				t, err := succ(pc + 1 + int(in.Off))
				if err != nil {
					return blk, err
				}
				blk.term = irTerm{kind: termJump, taken: t, origPC: pc}
				return blk, nil
			default:
				tpc, fpc := pc+1+int(in.Off), pc+1
				// Defensive: today's verifier explores both arms of every
				// branch it reaches, so both successors of a reachable
				// branch are reachable. Should it ever prune statically
				// decided branches, the unexplored arm is proven dead on
				// every path and the branch lowers to the jump it always
				// takes.
				if fpc >= len(insns) || !reach[fpc] {
					t, err := succ(tpc)
					if err != nil {
						return blk, err
					}
					blk.term = irTerm{kind: termJump, taken: t, origPC: pc}
					return blk, nil
				}
				if !reach[tpc] {
					t, err := succ(fpc)
					if err != nil {
						return blk, err
					}
					blk.term = irTerm{kind: termJump, taken: t, origPC: pc}
					return blk, nil
				}
				taken, err := succ(tpc)
				if err != nil {
					return blk, err
				}
				fall, err := succ(fpc)
				if err != nil {
					return blk, err
				}
				blk.term = irTerm{
					kind:   termBranch,
					op:     op,
					is64:   in.Class() == ClassJMP,
					useReg: in.Op&0x08 == SrcX,
					dst:    in.Dst,
					src:    in.Src,
					imm:    int64(in.Imm),
					taken:  taken,
					fall:   fall,
					origPC: pc,
				}
				return blk, nil
			}

		default:
			return blk, fmt.Errorf("%w: op=%#x at %d", errLower, in.Op, pc)
		}
	}

	// The block ran into the next block's start: synthesize a fallthrough
	// jump (no bytecode instruction corresponds to it, so insns is not
	// incremented).
	t, err := succ(endPC)
	if err != nil {
		return blk, err
	}
	blk.term = irTerm{kind: termJump, taken: t, origPC: endPC}
	return blk, nil
}

func memFactAt(facts *progFacts, pc int) *memFact {
	if facts == nil || pc >= len(facts.mem) {
		return nil
	}
	f := &facts.mem[pc]
	if !f.seen || !f.ok {
		return nil
	}
	return f
}

func callFactAt(facts *progFacts, pc int) *callFact {
	if facts == nil || pc >= len(facts.call) {
		return nil
	}
	f := &facts.call[pc]
	if !f.seen || !f.ok {
		return nil
	}
	return f
}

func lowerALU(in Insn, pc int) irInsn {
	op := in.Op & 0xf0
	is64 := in.Class() == ClassALU64
	useReg := in.Op&0x08 == SrcX
	if op == ALUMov {
		if !useReg {
			v := uint64(int64(in.Imm))
			if !is64 {
				v = uint64(uint32(v))
			}
			return irInsn{kind: irMovImm, dst: in.Dst, imm: int64(v), origPC: pc}
		}
		if is64 {
			return irInsn{kind: irMovReg, dst: in.Dst, src: in.Src, origPC: pc}
		}
	}
	return irInsn{
		kind:   irALU,
		aluOp:  op,
		is64:   is64,
		useReg: useReg,
		dst:    in.Dst,
		src:    in.Src,
		imm:    int64(in.Imm),
		origPC: pc,
	}
}

// lowerCall inlines a helper when the verifier facts pin its arguments
// down; otherwise it keeps the generic vm.call path, which is
// bit-identical to the interpreter.
func lowerCall(in Insn, pc int, maps []Map, facts *progFacts) irInsn {
	id := HelperID(in.Imm)
	generic := irInsn{kind: irHelper, helper: id, origPC: pc}
	switch id {
	case HelperKtimeGetNs:
		return irInsn{kind: irKtime, origPC: pc}
	case HelperGetSmpProcessorID:
		return irInsn{kind: irSmpID, origPC: pc}
	case HelperGetPrandomU32:
		return irInsn{kind: irPrandom, origPC: pc}
	}
	f := callFactAt(facts, pc)
	if f == nil {
		return generic
	}
	stackArg := func(i int) (int64, bool) {
		a := f.args[i]
		return a.off, a.kind == kindStack
	}
	mapArg := func(i int) (int, bool) {
		a := f.args[i]
		if a.kind != kindMapPtr || a.mapIdx < 0 || a.mapIdx >= len(maps) {
			return 0, false
		}
		return a.mapIdx, true
	}
	constArg := func(i int) (int64, bool) {
		a := f.args[i]
		return a.val, a.kind == kindScalar && a.known
	}
	switch id {
	case HelperPerfEventOutput:
		// r1=ctx, r2=flags, r3=data ptr, r4=size. The proof already
		// bounds [off, off+size) within the initialized stack.
		off, okOff := stackArg(2)
		size, okSize := constArg(3)
		if okOff && okSize && size >= 0 && off >= 0 && off+size <= StackSize {
			return irInsn{kind: irPerfEmitStack, off: off, size: size, origPC: pc}
		}
	case HelperMapLookupElem:
		idx, okMap := mapArg(0)
		off, okKey := stackArg(1)
		if okMap && okKey {
			ks := int64(maps[idx].KeySize())
			if off >= 0 && off+ks <= StackSize {
				return irInsn{kind: irMapLookupStack, mapIdx: idx, off: off, size: ks, origPC: pc}
			}
		}
	case HelperMapDeleteElem:
		idx, okMap := mapArg(0)
		off, okKey := stackArg(1)
		if okMap && okKey {
			ks := int64(maps[idx].KeySize())
			if off >= 0 && off+ks <= StackSize {
				return irInsn{kind: irMapDeleteStack, mapIdx: idx, off: off, size: ks, origPC: pc}
			}
		}
	case HelperMapUpdateElem:
		idx, okMap := mapArg(0)
		keyOff, okKey := stackArg(1)
		valOff, okVal := stackArg(2)
		flags, okFlags := constArg(3)
		if okMap && okKey && okVal && okFlags {
			ks := int64(maps[idx].KeySize())
			vs := int64(maps[idx].ValueSize())
			if keyOff >= 0 && keyOff+ks <= StackSize && valOff >= 0 && valOff+vs <= StackSize {
				return irInsn{kind: irMapUpdateStack, mapIdx: idx, off: keyOff, size: ks,
					valOff: valOff, flags: uint64(flags), origPC: pc}
			}
		}
	case HelperMapIncElem:
		// r1=map, r2=key ptr, r3=delta (runtime), r4=value offset (const).
		idx, okMap := mapArg(0)
		keyOff, okKey := stackArg(1)
		valOff, okOff := constArg(3)
		if okMap && okKey && okOff {
			ks := int64(maps[idx].KeySize())
			if keyOff >= 0 && keyOff+ks <= StackSize &&
				valOff >= 0 && valOff+8 <= int64(maps[idx].ValueSize()) {
				return irInsn{kind: irMapIncStack, mapIdx: idx, off: keyOff, size: ks,
					valOff: valOff, origPC: pc}
			}
		}
	case HelperHistObserve:
		// r1=map, r2=sample (runtime). The map pointer is the only static
		// argument, so inlining needs nothing from the stack.
		if idx, okMap := mapArg(0); okMap {
			return irInsn{kind: irHistObserve, mapIdx: idx, origPC: pc}
		}
	}
	return generic
}
