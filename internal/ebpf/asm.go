package ebpf

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses a textual eBPF program into instructions. The syntax is a
// small, line-oriented assembly close to kernel verifier output:
//
//	; filter UDP packets to port 9000 and record a timestamp
//	        ldxw  r2, [r1+32]        ; ip_proto
//	        jne   r2, 17, out
//	        ldxw  r2, [r1+28]        ; dst_port
//	        jne   r2, 9000, out
//	        call  ktime_get_ns
//	        stxdw [r10-8], r0
//	out:    mov   r0, 0
//	        exit
//
// Lines may carry `;` or `#` comments. Labels are identifiers followed by a
// colon, either alone on a line or prefixing an instruction. Map references
// (`ld_map_fd r1, flows`) resolve through the maps argument; the returned
// map table lists them in first-use order, matching the LoadMapFD indices
// in the instruction stream.
func Assemble(src string, maps map[string]Map) ([]Insn, []Map, error) {
	a := &assembler{b: NewBuilder(), named: maps}
	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.line(line); err != nil {
			return nil, nil, fmt.Errorf("ebpf: asm line %d: %w", lineNo+1, err)
		}
	}
	return a.b.Program()
}

// MustAssemble is Assemble for tests and examples with known-good sources;
// it panics on error.
func MustAssemble(src string, maps map[string]Map) ([]Insn, []Map) {
	insns, table, err := Assemble(src, maps)
	if err != nil {
		panic(err)
	}
	return insns, table
}

type assembler struct {
	b     *Builder
	named map[string]Map
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		return s[:i]
	}
	return s
}

func (a *assembler) line(line string) error {
	// Leading label(s).
	for {
		i := strings.Index(line, ":")
		if i < 0 {
			break
		}
		head := strings.TrimSpace(line[:i])
		if !isIdent(head) {
			break
		}
		a.b.Label(head)
		line = strings.TrimSpace(line[i+1:])
	}
	if line == "" {
		return nil
	}
	fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
	op := strings.ToLower(fields[0])
	args := fields[1:]
	return a.insn(op, args)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		case r == '.':
		default:
			return false
		}
	}
	return true
}

var aluOps = map[string]uint8{
	"add": ALUAdd, "sub": ALUSub, "mul": ALUMul, "div": ALUDiv,
	"or": ALUOr, "and": ALUAnd, "lsh": ALULsh, "rsh": ALURsh,
	"mod": ALUMod, "xor": ALUXor, "mov": ALUMov, "arsh": ALUArsh,
}

var jmpOps = map[string]uint8{
	"jeq": JmpEq, "jne": JmpNe, "jgt": JmpGt, "jge": JmpGe,
	"jlt": JmpLt, "jle": JmpLe, "jsgt": JmpSGt, "jsge": JmpSGe,
	"jslt": JmpSLt, "jsle": JmpSLe, "jset": JmpSet,
}

var memSizes = map[string]uint8{"b": SizeB, "h": SizeH, "w": SizeW, "dw": SizeDW}

func (a *assembler) insn(op string, args []string) error {
	// ALU, with optional "32" suffix.
	base := strings.TrimSuffix(op, "32")
	if code, ok := aluOps[base]; ok {
		class := ClassALU64
		if strings.HasSuffix(op, "32") {
			class = ClassALU
		}
		if len(args) != 2 {
			return fmt.Errorf("%s needs 2 operands", op)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if src, err := parseReg(args[1]); err == nil {
			a.b.Emit(Insn{Op: class | SrcX | code, Dst: dst, Src: src})
			return nil
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		a.b.Emit(Insn{Op: class | SrcK | code, Dst: dst, Imm: imm})
		return nil
	}
	if op == "neg" || op == "neg32" {
		if len(args) != 1 {
			return fmt.Errorf("%s needs 1 operand", op)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		class := ClassALU64
		if op == "neg32" {
			class = ClassALU
		}
		a.b.Emit(Insn{Op: class | ALUNeg, Dst: dst})
		return nil
	}

	// Conditional jumps.
	if code, ok := jmpOps[base]; ok && !strings.HasSuffix(op, "32") {
		if len(args) != 3 {
			return fmt.Errorf("%s needs dst, src|imm, label", op)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		label := args[2]
		if src, err := parseReg(args[1]); err == nil {
			a.b.JumpRegTo(code, dst, src, label)
			return nil
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		a.b.JumpImmTo(code, dst, imm, label)
		return nil
	}

	switch {
	case op == "ja":
		if len(args) != 1 {
			return fmt.Errorf("ja needs a label")
		}
		a.b.JaTo(args[0])
		return nil

	case op == "exit":
		a.b.ExitInsn()
		return nil

	case op == "call":
		if len(args) != 1 {
			return fmt.Errorf("call needs a helper")
		}
		if n, err := strconv.Atoi(args[0]); err == nil {
			a.b.Call(HelperID(n))
			return nil
		}
		for id, proto := range helperProtos {
			if proto.name == args[0] {
				a.b.Call(id)
				return nil
			}
		}
		return fmt.Errorf("unknown helper %q", args[0])

	case op == "ld_imm64":
		if len(args) != 2 {
			return fmt.Errorf("ld_imm64 needs reg, imm")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		v, err := strconv.ParseInt(args[1], 0, 64)
		if err != nil {
			return fmt.Errorf("bad imm64 %q: %v", args[1], err)
		}
		a.b.LoadImm64(dst, v)
		return nil

	case op == "ld_map_fd":
		if len(args) != 2 {
			return fmt.Errorf("ld_map_fd needs reg, mapname")
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		m, ok := a.named[args[1]]
		if !ok {
			return fmt.Errorf("unknown map %q", args[1])
		}
		a.b.LoadMapFD(dst, m)
		return nil

	case strings.HasPrefix(op, "ldx"):
		size, ok := memSizes[op[3:]]
		if !ok || len(args) != 2 {
			return fmt.Errorf("bad load %q", op)
		}
		dst, err := parseReg(args[0])
		if err != nil {
			return err
		}
		src, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		a.b.Load(dst, src, off, size)
		return nil

	case strings.HasPrefix(op, "stx"):
		size, ok := memSizes[op[3:]]
		if !ok || len(args) != 2 {
			return fmt.Errorf("bad store %q", op)
		}
		dst, off, err := parseMem(args[0])
		if err != nil {
			return err
		}
		src, err := parseReg(args[1])
		if err != nil {
			return err
		}
		a.b.Store(dst, off, src, size)
		return nil

	case strings.HasPrefix(op, "st"):
		size, ok := memSizes[op[2:]]
		if !ok || len(args) != 2 {
			return fmt.Errorf("bad store %q", op)
		}
		dst, off, err := parseMem(args[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		a.b.Emit(StoreImm(dst, off, imm, size))
		return nil
	}
	return fmt.Errorf("unknown mnemonic %q", op)
}

func parseReg(s string) (Reg, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return Reg(n), nil
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -1<<31 || v > 1<<31-1 {
		return 0, fmt.Errorf("immediate %q exceeds 32 bits (use ld_imm64)", s)
	}
	return int32(v), nil
}

// parseMem parses "[rN+off]" or "[rN-off]" or "[rN]".
func parseMem(s string) (Reg, int16, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sign := int64(1)
	regPart, offPart := inner, ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		if inner[i] == '-' {
			sign = -1
		}
		regPart, offPart = inner[:i], inner[i+1:]
	}
	reg, err := parseReg(strings.TrimSpace(regPart))
	if err != nil {
		return 0, 0, err
	}
	var off int64
	if offPart != "" {
		off, err = strconv.ParseInt(strings.TrimSpace(offPart), 0, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad offset in %q", s)
		}
	}
	off *= sign
	if off != int64(int16(off)) {
		return 0, 0, fmt.Errorf("offset in %q exceeds int16", s)
	}
	return reg, int16(off), nil
}
