package ebpf

// Optimization passes over the lowered IR. All passes preserve the
// observable semantics of the interpreter for verified programs: R0 at
// exit, helper side effects (map state, perf/printk output) and their
// order, and ExecStats counts. Register writes that no verified program
// can observe (values the verifier proves are never read again, such as
// helper argument staging that inlining made redundant) are fair game.

// optimize runs the pass pipeline in place.
func optimize(p *irProg) {
	for i := range p.blocks {
		constPropBlock(&p.blocks[i])
	}
	liveOut := deadWriteElim(p)
	for i := range p.blocks {
		fuseBlock(&p.blocks[i], liveOut[i])
		batchBlock(&p.blocks[i])
	}
}

// constPropBlock tracks registers holding compile-time constants within a
// block and folds ALU results, register copies, and store sources that
// the constants decide. Folding uses aluOp itself, so 32-bit truncation
// and div/mod-by-zero semantics stay bit-identical to the interpreter.
func constPropBlock(blk *irBlock) {
	var known regMask
	var vals [NumRegs]uint64

	setKnown := func(r Reg, v uint64) { known.add(r); vals[r] = v }
	clobber := func(r Reg) { known.remove(r) }

	for i := range blk.ops {
		op := &blk.ops[i]
		switch op.kind {
		case irMovImm:
			setKnown(op.dst, uint64(op.imm))
		case irMovReg:
			if known.has(op.src) {
				*op = irInsn{kind: irMovImm, dst: op.dst, imm: int64(vals[op.src]), origPC: op.origPC}
				setKnown(op.dst, uint64(op.imm))
			} else {
				clobber(op.dst)
			}
		case irALU:
			s, sOK := uint64(op.imm), true
			if op.useReg {
				s, sOK = vals[op.src], known.has(op.src)
			}
			d, dOK := vals[op.dst], known.has(op.dst)
			if op.aluOp == ALUMov {
				d, dOK = 0, true // mov does not read dst
			}
			if sOK && dOK {
				if !op.is64 {
					s, d = uint64(uint32(s)), uint64(uint32(d))
				}
				if res, err := aluOp(op.aluOp, d, s, op.is64); err == nil {
					if !op.is64 {
						res = uint64(uint32(res))
					}
					*op = irInsn{kind: irMovImm, dst: op.dst, imm: int64(res), origPC: op.origPC}
					setKnown(op.dst, res)
					continue
				}
			}
			clobber(op.dst)
		case irStoreStack:
			if known.has(op.src) {
				*op = irInsn{kind: irStoreStackImm, off: op.off, size: op.size,
					imm: int64(vals[op.src]), origPC: op.origPC}
			}
		case irLoadCtx, irLoadStack, irLoadDyn:
			clobber(op.dst)
		case irHelper:
			// Generic calls poison R1-R5 and set R0 at runtime.
			for r := R0; r <= R5; r++ {
				clobber(r)
			}
		case irKtime, irSmpID, irPrandom, irPerfEmitStack,
			irMapLookupStack, irMapUpdateStack, irMapDeleteStack,
			irMapIncStack, irHistObserve:
			// Inlined helpers write only R0 at runtime.
			clobber(R0)
		}
	}
}

// opUses returns the registers an operation reads at runtime.
func opUses(op *irInsn) regMask {
	var u regMask
	switch op.kind {
	case irMovReg:
		u.add(op.src)
	case irALU:
		if op.aluOp != ALUMov {
			u.add(op.dst) // read-modify-write
		}
		if op.useReg {
			u.add(op.src)
		}
	case irLoadDyn:
		u.add(op.src)
	case irStoreStack:
		u.add(op.src)
	case irStoreDyn:
		u.add(op.dst)
		u.add(op.src)
	case irStoreDynImm:
		u.add(op.dst)
	case irHelper:
		// Conservative: a generic helper may read any argument register.
		for r := R1; r <= R5; r++ {
			u.add(r)
		}
	case irMapIncStack:
		u.add(R3) // delta
	case irHistObserve:
		u.add(R2) // sample
	}
	return u
}

// opDefs returns the registers an operation writes at runtime.
func opDefs(op *irInsn) regMask {
	var d regMask
	switch op.kind {
	case irMovImm, irMovReg, irALU, irLoadCtx, irLoadStack, irLoadDyn:
		d.add(op.dst)
	case irHelper:
		for r := R0; r <= R5; r++ {
			d.add(r)
		}
	case irKtime, irSmpID, irPrandom, irPerfEmitStack,
		irMapLookupStack, irMapUpdateStack, irMapDeleteStack,
		irMapIncStack, irHistObserve:
		d.add(R0)
	}
	return d
}

// pure reports whether an operation has no effect beyond its register
// def: no memory write, no helper side effect, no possible fault. Only
// pure ops may be deleted when their def is dead. Proved-bounds loads are
// pure; dynamic loads can fault and must stay.
func pure(op *irInsn) bool {
	switch op.kind {
	case irMovImm, irMovReg, irALU, irLoadCtx, irLoadStack:
		return true
	}
	return false
}

func termUses(t *irTerm) regMask {
	var u regMask
	switch t.kind {
	case termExit:
		u.add(R0)
	case termBranch:
		if !t.ctxFused {
			u.add(t.dst)
		}
		if t.useReg {
			u.add(t.src)
		}
	}
	return u
}

// deadWriteElim runs backward liveness over the block DAG and deletes
// pure operations whose destination register is provably never read
// again. Because every edge points to a higher block index (no back
// edges), one reverse pass computes exact liveness. It returns each
// block's live-out set for the fusion pass.
func deadWriteElim(p *irProg) []regMask {
	n := len(p.blocks)
	liveIn := make([]regMask, n)
	liveOut := make([]regMask, n)

	for bi := n - 1; bi >= 0; bi-- {
		blk := &p.blocks[bi]
		var out regMask
		switch blk.term.kind {
		case termJump:
			out = liveIn[blk.term.taken]
		case termBranch:
			out = liveIn[blk.term.taken] | liveIn[blk.term.fall]
		}
		liveOut[bi] = out

		live := out | termUses(&blk.term)
		kept := blk.ops[:0]
		// Walk backward, deleting dead pure defs; surviving ops update
		// the live set. Deletion is done by compacting in reverse.
		deleted := make([]bool, len(blk.ops))
		for i := len(blk.ops) - 1; i >= 0; i-- {
			op := &blk.ops[i]
			defs := opDefs(op)
			if pure(op) && live&defs == 0 {
				deleted[i] = true
				continue
			}
			live &^= defs
			live |= opUses(op)
		}
		for i := range blk.ops {
			if !deleted[i] {
				kept = append(kept, blk.ops[i])
			}
		}
		blk.ops = kept
		liveIn[bi] = live
	}
	return liveOut
}

// fuseBlock runs peepholes that need liveness: a proved ctx load feeding
// an adjacent proved stack store collapses into one copy op when the
// intermediate register dies at the store, and a trailing 32-bit ctx
// load feeding the block's branch folds into the terminator (the filter
// shape: "jump out unless ctx field == K").
func fuseBlock(blk *irBlock, liveOut regMask) {
	// liveAfter[i] = registers live immediately after ops[i].
	liveAfter := make([]regMask, len(blk.ops))
	live := liveOut | termUses(&blk.term)
	for i := len(blk.ops) - 1; i >= 0; i-- {
		liveAfter[i] = live
		op := &blk.ops[i]
		live &^= opDefs(op)
		live |= opUses(op)
	}

	// Branch fusion first: it removes the final op.
	if t := &blk.term; t.kind == termBranch && !t.ctxFused && len(blk.ops) > 0 {
		last := len(blk.ops) - 1
		op := &blk.ops[last]
		usesDst := t.useReg && t.src == t.dst
		if op.kind == irLoadCtx && op.size == 4 && op.dst == t.dst &&
			!usesDst && !liveOut.has(t.dst) {
			t.ctxFused = true
			t.ctxOff = op.off
			blk.ops = blk.ops[:last]
			liveAfter = liveAfter[:last]
		}
	}

	fused := make([]irInsn, 0, len(blk.ops))
	for i := 0; i < len(blk.ops); i++ {
		op := blk.ops[i]
		if op.kind == irLoadCtx && i+1 < len(blk.ops) {
			st := blk.ops[i+1]
			if st.kind == irStoreStack && st.src == op.dst && !liveAfter[i+1].has(op.dst) {
				fused = append(fused, irInsn{
					kind:     irCopyCtxStack,
					off:      st.off,
					size:     st.size,
					ctxOff:   op.off,
					loadSize: op.size,
					origPC:   op.origPC,
				})
				i++
				continue
			}
		}
		fused = append(fused, op)
	}
	blk.ops = fused
}

// batchable converts a fused copy or constant store into a batch
// descriptor.
func batchable(op *irInsn) (memCopy, bool) {
	switch op.kind {
	case irCopyCtxStack:
		switch {
		case op.loadSize == 4 && op.size == 4:
			return memCopy{code: mcCopy44, co: op.ctxOff, so: op.off}, true
		case op.loadSize == 8 && op.size == 8:
			return memCopy{code: mcCopy88, co: op.ctxOff, so: op.off}, true
		case op.loadSize == 4 && op.size == 2:
			return memCopy{code: mcCopy42, co: op.ctxOff, so: op.off}, true
		case op.loadSize == 4 && op.size == 1:
			return memCopy{code: mcCopy41, co: op.ctxOff, so: op.off}, true
		}
		return memCopy{code: mcGeneric, co: op.ctxOff, so: op.off, ls: op.loadSize, ss: op.size}, true
	case irStoreStackImm:
		switch op.size {
		case 1:
			return memCopy{code: mcImm8, so: op.off, imm: uint64(op.imm)}, true
		case 2:
			return memCopy{code: mcImm16, so: op.off, imm: uint64(op.imm)}, true
		case 4:
			return memCopy{code: mcImm32, so: op.off, imm: uint64(op.imm)}, true
		case 8:
			return memCopy{code: mcImm64, so: op.off, imm: uint64(op.imm)}, true
		}
	}
	return memCopy{}, false
}

// mergeCopies widens two consecutive descriptors into one when they write
// adjacent stack bytes (and, for copies, read adjacent ctx bytes). The
// two stores are back to back, so one combined little-endian write is
// observably identical.
func mergeCopies(a, b memCopy) (memCopy, bool) {
	switch {
	case a.code == mcCopy44 && b.code == mcCopy44 &&
		b.co == a.co+4 && b.so == a.so+4:
		return memCopy{code: mcCopy88, co: a.co, so: a.so}, true
	case a.code == mcImm32 && b.code == mcImm32 && b.so == a.so+4:
		return memCopy{code: mcImm64, so: a.so, imm: uint64(uint32(a.imm)) | b.imm<<32}, true
	case a.code == mcImm16 && b.code == mcImm16 && b.so == a.so+2:
		return memCopy{code: mcImm32, so: a.so, imm: uint64(uint16(a.imm)) | b.imm<<16}, true
	case a.code == mcImm8 && b.code == mcImm8 && b.so == a.so+1:
		return memCopy{code: mcImm16, so: a.so, imm: uint64(uint8(a.imm)) | b.imm<<8}, true
	}
	return memCopy{}, false
}

// batchBlock collapses maximal runs of fused copies and constant stores
// (length >= 2) into single irCopyBatch ops so the whole record build
// executes inside one closure.
func batchBlock(blk *irBlock) {
	out := make([]irInsn, 0, len(blk.ops))
	for i := 0; i < len(blk.ops); i++ {
		mc, ok := batchable(&blk.ops[i])
		if !ok {
			out = append(out, blk.ops[i])
			continue
		}
		run := []memCopy{mc}
		origPC := blk.ops[i].origPC
		j := i + 1
		for j < len(blk.ops) {
			next, ok := batchable(&blk.ops[j])
			if !ok {
				break
			}
			if merged, ok := mergeCopies(run[len(run)-1], next); ok {
				run[len(run)-1] = merged
			} else {
				run = append(run, next)
			}
			j++
		}
		if j == i+1 {
			// A lone copy keeps its dedicated closure.
			out = append(out, blk.ops[i])
			continue
		}
		out = append(out, irInsn{kind: irCopyBatch, batch: run, origPC: origPC})
		i = j - 1
	}
	blk.ops = out
}
