package ebpf

// HelperID identifies a kernel helper callable from eBPF programs. The
// numbering follows the Linux UAPI where a counterpart exists.
type HelperID int32

// Supported helpers.
const (
	// HelperMapLookupElem: r1=map, r2=key ptr. Returns value ptr or NULL.
	HelperMapLookupElem HelperID = 1
	// HelperMapUpdateElem: r1=map, r2=key ptr, r3=value ptr, r4=flags.
	HelperMapUpdateElem HelperID = 2
	// HelperMapDeleteElem: r1=map, r2=key ptr.
	HelperMapDeleteElem HelperID = 3
	// HelperKtimeGetNs returns CLOCK_MONOTONIC in nanoseconds (paper
	// Section III-B: the nanosecond clock trace scripts read).
	HelperKtimeGetNs HelperID = 5
	// HelperTracePrintk: r1=stack ptr to message bytes, r2=len. Debugging.
	HelperTracePrintk HelperID = 6
	// HelperGetPrandomU32 returns a pseudo-random 32-bit value; used to
	// draw trace IDs.
	HelperGetPrandomU32 HelperID = 7
	// HelperGetSmpProcessorID returns the executing CPU, used by the
	// softirq-distribution scripts of case study III.
	HelperGetSmpProcessorID HelperID = 8
	// HelperPerfEventOutput: r1=ctx, r2=flags, r3=data ptr, r4=size.
	// Emits a raw trace record to the per-program ring buffer (the
	// paper's kernel memory buffer mmap'd to /proc).
	HelperPerfEventOutput HelperID = 25

	// The aggregation fast paths below have no Linux UAPI counterpart;
	// their ids sit far outside the kernel's helper range.

	// HelperMapIncElem: r1=map, r2=key ptr, r3=delta, r4=byte offset into
	// the value (must be a known constant). Atomically adds delta to the
	// little-endian u64 at value[off], creating a zeroed entry in hash
	// maps when absent — the bpf_map_inc-style fetch-add that replaces the
	// lookup/add/update round trip in aggregating trace scripts. Returns 0
	// on success, -1 on failure.
	HelperMapIncElem HelperID = 200
	// HelperHistObserve: r1=map (4-byte keys, values >= 8 bytes),
	// r2=sample. Increments the sample's log2 bucket: bucket 0 holds
	// zero, bucket b >= 1 holds [2^(b-1), 2^b), and the map's last slot
	// absorbs everything beyond it. Returns the bucket index.
	HelperHistObserve HelperID = 201
)

// Env supplies the ambient kernel facilities helpers need. Each simulated
// node binds its own Env (its clock, CPU id, RNG, and trace ring buffer).
type Env interface {
	// KtimeNs reads the node's CLOCK_MONOTONIC.
	KtimeNs() uint64
	// SMPProcessorID returns the CPU the program executes on.
	SMPProcessorID() uint32
	// PrandomU32 returns a pseudo-random value.
	PrandomU32() uint32
	// PerfEventOutput delivers a raw record emitted by the program. The
	// slice aliases VM memory and is valid only for the duration of the
	// call — implementations must copy (or serialize into their buffer)
	// before returning, never retain it. It returns false when the buffer
	// is full and the record was dropped.
	PerfEventOutput(data []byte) bool
	// TracePrintk receives debug output.
	TracePrintk(msg string)
}

// argKind describes what a helper expects in an argument register; the
// verifier checks these statically.
type argKind int

const (
	argNone argKind = iota
	argScalar
	argCtx
	argMapPtr
	argStackPtr // pointer into stack or a map value, readable
	argSize     // scalar, bounds the preceding pointer
	argConst    // scalar whose exact value the verifier must know
)

type helperProto struct {
	name string
	args []argKind
	// returnsMapValue: r0 becomes a map-value-or-null pointer.
	returnsMapValue bool
}

// helperProtos drives verifier checking of call sites. A helper absent from
// this table is rejected at load time.
var helperProtos = map[HelperID]helperProto{
	HelperMapLookupElem: {
		name:            "map_lookup_elem",
		args:            []argKind{argMapPtr, argStackPtr},
		returnsMapValue: true,
	},
	HelperMapUpdateElem: {
		name: "map_update_elem",
		args: []argKind{argMapPtr, argStackPtr, argStackPtr, argScalar},
	},
	HelperMapDeleteElem: {
		name: "map_delete_elem",
		args: []argKind{argMapPtr, argStackPtr},
	},
	HelperKtimeGetNs: {
		name: "ktime_get_ns",
	},
	HelperTracePrintk: {
		name: "trace_printk",
		args: []argKind{argStackPtr, argSize},
	},
	HelperGetPrandomU32: {
		name: "get_prandom_u32",
	},
	HelperGetSmpProcessorID: {
		name: "get_smp_processor_id",
	},
	HelperPerfEventOutput: {
		name: "perf_event_output",
		args: []argKind{argCtx, argScalar, argStackPtr, argSize},
	},
	HelperMapIncElem: {
		name: "map_inc_elem",
		args: []argKind{argMapPtr, argStackPtr, argScalar, argConst},
	},
	HelperHistObserve: {
		name: "hist_observe",
		args: []argKind{argMapPtr, argScalar},
	},
}

// HelperName returns the symbolic name for id, or an empty string when the
// helper is unknown.
func HelperName(id HelperID) string {
	return helperProtos[id].name
}
