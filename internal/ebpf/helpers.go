package ebpf

// HelperID identifies a kernel helper callable from eBPF programs. The
// numbering follows the Linux UAPI where a counterpart exists.
type HelperID int32

// Supported helpers.
const (
	// HelperMapLookupElem: r1=map, r2=key ptr. Returns value ptr or NULL.
	HelperMapLookupElem HelperID = 1
	// HelperMapUpdateElem: r1=map, r2=key ptr, r3=value ptr, r4=flags.
	HelperMapUpdateElem HelperID = 2
	// HelperMapDeleteElem: r1=map, r2=key ptr.
	HelperMapDeleteElem HelperID = 3
	// HelperKtimeGetNs returns CLOCK_MONOTONIC in nanoseconds (paper
	// Section III-B: the nanosecond clock trace scripts read).
	HelperKtimeGetNs HelperID = 5
	// HelperTracePrintk: r1=stack ptr to message bytes, r2=len. Debugging.
	HelperTracePrintk HelperID = 6
	// HelperGetPrandomU32 returns a pseudo-random 32-bit value; used to
	// draw trace IDs.
	HelperGetPrandomU32 HelperID = 7
	// HelperGetSmpProcessorID returns the executing CPU, used by the
	// softirq-distribution scripts of case study III.
	HelperGetSmpProcessorID HelperID = 8
	// HelperPerfEventOutput: r1=ctx, r2=flags, r3=data ptr, r4=size.
	// Emits a raw trace record to the per-program ring buffer (the
	// paper's kernel memory buffer mmap'd to /proc).
	HelperPerfEventOutput HelperID = 25
)

// Env supplies the ambient kernel facilities helpers need. Each simulated
// node binds its own Env (its clock, CPU id, RNG, and trace ring buffer).
type Env interface {
	// KtimeNs reads the node's CLOCK_MONOTONIC.
	KtimeNs() uint64
	// SMPProcessorID returns the CPU the program executes on.
	SMPProcessorID() uint32
	// PrandomU32 returns a pseudo-random value.
	PrandomU32() uint32
	// PerfEventOutput delivers a raw record emitted by the program. The
	// slice aliases VM memory and is valid only for the duration of the
	// call — implementations must copy (or serialize into their buffer)
	// before returning, never retain it. It returns false when the buffer
	// is full and the record was dropped.
	PerfEventOutput(data []byte) bool
	// TracePrintk receives debug output.
	TracePrintk(msg string)
}

// argKind describes what a helper expects in an argument register; the
// verifier checks these statically.
type argKind int

const (
	argNone argKind = iota
	argScalar
	argCtx
	argMapPtr
	argStackPtr // pointer into stack or a map value, readable
	argSize     // scalar, bounds the preceding pointer
)

type helperProto struct {
	name string
	args []argKind
	// returnsMapValue: r0 becomes a map-value-or-null pointer.
	returnsMapValue bool
}

// helperProtos drives verifier checking of call sites. A helper absent from
// this table is rejected at load time.
var helperProtos = map[HelperID]helperProto{
	HelperMapLookupElem: {
		name:            "map_lookup_elem",
		args:            []argKind{argMapPtr, argStackPtr},
		returnsMapValue: true,
	},
	HelperMapUpdateElem: {
		name: "map_update_elem",
		args: []argKind{argMapPtr, argStackPtr, argStackPtr, argScalar},
	},
	HelperMapDeleteElem: {
		name: "map_delete_elem",
		args: []argKind{argMapPtr, argStackPtr},
	},
	HelperKtimeGetNs: {
		name: "ktime_get_ns",
	},
	HelperTracePrintk: {
		name: "trace_printk",
		args: []argKind{argStackPtr, argSize},
	},
	HelperGetPrandomU32: {
		name: "get_prandom_u32",
	},
	HelperGetSmpProcessorID: {
		name: "get_smp_processor_id",
	},
	HelperPerfEventOutput: {
		name: "perf_event_output",
		args: []argKind{argCtx, argScalar, argStackPtr, argSize},
	},
}

// HelperName returns the symbolic name for id, or an empty string when the
// helper is unknown.
func HelperName(id HelperID) string {
	return helperProtos[id].name
}
