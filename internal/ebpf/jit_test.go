package ebpf

import (
	"math/rand"
	"testing"
)

// TestJITMatchesInterpreter is the differential property: for every
// verified random program and random context, the threaded-code engine and
// the interpreter must produce the same R0, the same instruction count,
// and the same side effects.
func TestJITMatchesInterpreter(t *testing.T) {
	const ctxSize = 64
	rng := rand.New(rand.NewSource(9))
	m, err := NewHashMap(4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	maps := []Map{m}

	accepted := 0
	for tried := 0; tried < 20000 && accepted < 400; tried++ {
		insns := randomProgram(rng)
		if Verify(insns, maps, ctxSize) != nil {
			continue
		}
		accepted++
		prog, err := Load(ProgramSpec{
			Name: "diff", Type: ProgTypeKprobe, Insns: insns, Maps: maps, CtxSize: ctxSize,
		})
		if err != nil {
			t.Fatalf("load verified program: %v", err)
		}
		ctx := make([]byte, ctxSize)
		rng.Read(ctx)
		envA := &testEnv{time: 42}
		envB := &testEnv{time: 42}
		r0a, statsA, errA := prog.Run(ctx, envA)
		r0b, statsB, errB := prog.RunInterpreted(ctx, envB)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("error divergence: jit=%v interp=%v\n%s", errA, errB, dump(insns))
		}
		if r0a != r0b {
			t.Fatalf("r0 divergence: jit=%#x interp=%#x\n%s", r0a, r0b, dump(insns))
		}
		if statsA.Insns != statsB.Insns || statsA.HelperCalls != statsB.HelperCalls {
			t.Fatalf("stats divergence: jit=%+v interp=%+v\n%s", statsA, statsB, dump(insns))
		}
	}
	if accepted < 50 {
		t.Fatalf("only %d programs verified", accepted)
	}
}

// TestJITSideEffectsMatch runs a stateful program (map updates + perf
// output) through both engines and compares observable state.
func TestJITSideEffectsMatch(t *testing.T) {
	run := func(exec func(p *Program, ctx []byte, env Env) (uint64, ExecStats, error)) ([][]byte, uint64) {
		m, err := NewHashMap(4, 8, 16)
		if err != nil {
			t.Fatal(err)
		}
		src := `
			mov r6, r1
			ldxw r2, [r6+0]
			stxw [r10-4], r2
			ld_map_fd r1, counts
			mov r2, r10
			add r2, -4
			call map_lookup_elem
			jne r0, 0, found
			stdw [r10-16], 1
			ld_map_fd r1, counts
			mov r2, r10
			add r2, -4
			mov r3, r10
			add r3, -16
			mov r4, 0
			call map_update_elem
			ja emit
		found:
			ldxdw r3, [r0+0]
			add r3, 1
			stxdw [r0+0], r3
		emit:
			stdw [r10-8], 7
			mov r1, r6
			mov r2, 0
			mov r3, r10
			add r3, -8
			mov r4, 8
			call perf_event_output
			mov r0, 0
			exit
		`
		insns, table := MustAssemble(src, map[string]Map{"counts": m})
		p, err := Load(ProgramSpec{Name: "fx", Type: ProgTypeKprobe, Insns: insns, Maps: table, CtxSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		env := &testEnv{}
		ctx := []byte{9, 0, 0, 0, 0, 0, 0, 0}
		for i := 0; i < 5; i++ {
			if _, _, err := exec(p, ctx, env); err != nil {
				t.Fatal(err)
			}
		}
		v, _ := m.Lookup([]byte{9, 0, 0, 0})
		var count uint64
		for i := 7; i >= 0; i-- {
			count = count<<8 | uint64(v[i])
		}
		return env.perf, count
	}
	perfJ, countJ := run(func(p *Program, ctx []byte, env Env) (uint64, ExecStats, error) {
		return p.Run(ctx, env)
	})
	perfI, countI := run(func(p *Program, ctx []byte, env Env) (uint64, ExecStats, error) {
		return p.RunInterpreted(ctx, env)
	})
	if countJ != 5 || countI != 5 {
		t.Fatalf("counts: jit=%d interp=%d", countJ, countI)
	}
	if len(perfJ) != len(perfI) || len(perfJ) != 5 {
		t.Fatalf("perf records: jit=%d interp=%d", len(perfJ), len(perfI))
	}
}

func BenchmarkJITvsInterpreter(b *testing.B) {
	insns, _ := MustAssemble(`
		mov r6, r1
		ldxw r2, [r6+28]
		jne r2, 17, out
		ldxw r2, [r6+24]
		jne r2, 9000, out
		call ktime_get_ns
		stxdw [r10-16], r0
		ldxw r2, [r6+0]
		stxdw [r10-8], r2
		mov r1, r6
		mov r2, 0
		mov r3, r10
		add r3, -16
		mov r4, 16
		call perf_event_output
	out:
		mov r0, 0
		exit
	`, nil)
	p, err := Load(ProgramSpec{Name: "b", Type: ProgTypeKprobe, Insns: insns, CtxSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	ctx := make([]byte, 64)
	ctx[28] = 17
	ctx[24] = 0x28
	ctx[25] = 0x23 // 9000 LE
	env := &testEnv{perfCap: 1}
	env.perf = append(env.perf, nil) // keep the buffer "full": drop fast path

	b.Run("jit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.Run(ctx, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("interpreter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := p.RunInterpreted(ctx, env); err != nil {
				b.Fatal(err)
			}
		}
	})
}
