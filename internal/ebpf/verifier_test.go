package ebpf

import (
	"errors"
	"testing"
)

// rejects asserts that the given instructions fail verification with the
// sentinel error.
func rejects(t *testing.T, insns []Insn, maps []Map, want error) {
	t.Helper()
	err := Verify(insns, maps, 64)
	if err == nil {
		t.Fatal("verifier accepted unsafe program")
	}
	if want != nil && !errors.Is(err, want) {
		t.Fatalf("error = %v, want %v", err, want)
	}
}

func TestVerifyRejectsEmptyProgram(t *testing.T) {
	rejects(t, nil, nil, ErrEmptyProg)
}

func TestVerifyRejectsOversizedProgram(t *testing.T) {
	insns := make([]Insn, MaxInsns+1)
	for i := range insns {
		insns[i] = Mov64Imm(R0, 0)
	}
	insns[len(insns)-1] = Exit()
	rejects(t, insns, nil, ErrProgTooLarge)
}

func TestVerifyAcceptsMaxSizeProgram(t *testing.T) {
	insns := make([]Insn, MaxInsns)
	for i := range insns {
		insns[i] = Mov64Imm(R0, 0)
	}
	insns[len(insns)-1] = Exit()
	if err := Verify(insns, nil, 64); err != nil {
		t.Fatalf("4096-instruction program rejected: %v", err)
	}
}

func TestVerifyRejectsBackEdge(t *testing.T) {
	// A loop: jump back to instruction 0.
	insns := []Insn{
		Mov64Imm(R0, 0),
		JumpImm(JmpEq, R0, 1, -2),
		Exit(),
	}
	rejects(t, insns, nil, ErrBackEdge)
}

func TestVerifyRejectsSelfLoopJa(t *testing.T) {
	insns := []Insn{
		Ja(-1),
		Exit(),
	}
	rejects(t, insns, nil, ErrBackEdge)
}

func TestVerifyRejectsJumpOutOfRange(t *testing.T) {
	insns := []Insn{
		JumpImm(JmpEq, R1, 0, 100),
		Exit(),
	}
	rejects(t, insns, nil, ErrBadJumpTarget)
}

func TestVerifyRejectsFallOffEnd(t *testing.T) {
	insns := []Insn{
		Mov64Imm(R0, 0),
	}
	rejects(t, insns, nil, ErrFallthrough)
}

func TestVerifyRejectsUninitializedRegisterRead(t *testing.T) {
	insns := []Insn{
		Mov64Reg(R0, R5), // r5 never written
		Exit(),
	}
	rejects(t, insns, nil, ErrUninitRead)
}

func TestVerifyRejectsUninitializedR0AtExit(t *testing.T) {
	insns := []Insn{
		Exit(),
	}
	rejects(t, insns, nil, ErrUninitRead)
}

func TestVerifyRejectsUninitializedStackRead(t *testing.T) {
	insns := []Insn{
		LoadMem(R0, R10, -8, SizeDW),
		Exit(),
	}
	rejects(t, insns, nil, ErrUninitStack)
}

func TestVerifyRejectsStackOutOfBounds(t *testing.T) {
	insns := []Insn{
		StoreMem(R10, -520, R1, SizeDW), // below the 512-byte stack
		Mov64Imm(R0, 0),
		Exit(),
	}
	rejects(t, insns, nil, ErrBadMemAccess)

	insns = []Insn{
		Mov64Imm(R2, 1),
		StoreMem(R10, 0, R2, SizeDW), // at/above frame pointer
		Mov64Imm(R0, 0),
		Exit(),
	}
	if err := Verify(insns, nil, 64); err == nil {
		t.Fatal("store at FP accepted")
	}
}

func TestVerifyRejectsCtxOutOfBounds(t *testing.T) {
	insns := []Insn{
		LoadMem(R0, R1, 64, SizeW), // ctx is 64 bytes
		Exit(),
	}
	rejects(t, insns, nil, ErrBadMemAccess)
}

func TestVerifyRejectsMisalignedCtxAccess(t *testing.T) {
	insns := []Insn{
		LoadMem(R0, R1, 2, SizeW),
		Exit(),
	}
	rejects(t, insns, nil, ErrBadMemAccess)
}

func TestVerifyRejectsCtxWrite(t *testing.T) {
	insns := []Insn{
		Mov64Imm(R2, 1),
		StoreMem(R1, 0, R2, SizeW),
		Mov64Imm(R0, 0),
		Exit(),
	}
	rejects(t, insns, nil, ErrBadMemAccess)
}

func TestVerifyRejectsFramePointerWrite(t *testing.T) {
	insns := []Insn{
		Mov64Imm(R10, 0),
		Exit(),
	}
	rejects(t, insns, nil, ErrFramePointerRW)
}

func TestVerifyRejectsDivByConstantZero(t *testing.T) {
	insns := []Insn{
		Mov64Imm(R0, 10),
		ALU64Imm(ALUDiv, R0, 0),
		Exit(),
	}
	rejects(t, insns, nil, ErrDivByZero)
}

func TestVerifyRejectsOversizedShift(t *testing.T) {
	insns := []Insn{
		Mov64Imm(R0, 1),
		ALU64Imm(ALULsh, R0, 64),
		Exit(),
	}
	rejects(t, insns, nil, ErrBadShift)
}

func TestVerifyRejectsUnknownHelper(t *testing.T) {
	insns := []Insn{
		Call(9999),
		Exit(),
	}
	rejects(t, insns, nil, ErrBadHelper)
}

func TestVerifyRejectsBadMapReference(t *testing.T) {
	pair := LoadMapFD(R1, 3) // no maps supplied
	insns := []Insn{
		pair[0], pair[1],
		Mov64Imm(R0, 0),
		Exit(),
	}
	rejects(t, insns, nil, ErrBadMapRef)
}

func TestVerifyRejectsUncheckedMapValueDeref(t *testing.T) {
	m, err := NewHashMap(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pair := LoadMapFD(R1, 0)
	insns := []Insn{
		Mov64Imm(R2, 0),
		StoreMem(R10, -4, R2, SizeW),
		pair[0], pair[1],
		Mov64Reg(R2, R10),
		ALU64Imm(ALUAdd, R2, -4),
		Call(HelperMapLookupElem),
		LoadMem(R0, R0, 0, SizeDW), // deref without NULL check
		Exit(),
	}
	rejects(t, insns, []Map{m}, ErrBadMemAccess)
}

func TestVerifyAcceptsCheckedMapValueDeref(t *testing.T) {
	m, err := NewHashMap(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pair := LoadMapFD(R1, 0)
	insns := []Insn{
		Mov64Imm(R2, 0),
		StoreMem(R10, -4, R2, SizeW),
		pair[0], pair[1],
		Mov64Reg(R2, R10),
		ALU64Imm(ALUAdd, R2, -4),
		Call(HelperMapLookupElem),
		JumpImm(JmpEq, R0, 0, 2),
		LoadMem(R0, R0, 0, SizeDW),
		Exit(),
		Mov64Imm(R0, 0),
		Exit(),
	}
	if err := Verify(insns, []Map{m}, 64); err != nil {
		t.Fatalf("checked deref rejected: %v", err)
	}
}

func TestVerifyRejectsMapValueOutOfBounds(t *testing.T) {
	m, err := NewHashMap(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pair := LoadMapFD(R1, 0)
	insns := []Insn{
		Mov64Imm(R2, 0),
		StoreMem(R10, -4, R2, SizeW),
		pair[0], pair[1],
		Mov64Reg(R2, R10),
		ALU64Imm(ALUAdd, R2, -4),
		Call(HelperMapLookupElem),
		JumpImm(JmpEq, R0, 0, 2),
		LoadMem(R0, R0, 8, SizeDW), // value is 8 bytes; [8:16) is OOB
		Exit(),
		Mov64Imm(R0, 0),
		Exit(),
	}
	rejects(t, insns, []Map{m}, ErrBadMemAccess)
}

func TestVerifyRejectsHelperArgTypeMismatch(t *testing.T) {
	m, err := NewHashMap(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	// map_lookup_elem with a scalar where the key pointer belongs.
	pair := LoadMapFD(R1, 0)
	insns := []Insn{
		pair[0], pair[1],
		Mov64Imm(R2, 1234),
		Call(HelperMapLookupElem),
		Mov64Imm(R0, 0),
		Exit(),
	}
	rejects(t, insns, []Map{m}, ErrBadHelperArg)
}

func TestVerifyRejectsUninitializedHelperKey(t *testing.T) {
	m, err := NewHashMap(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	pair := LoadMapFD(R1, 0)
	insns := []Insn{
		pair[0], pair[1],
		Mov64Reg(R2, R10),
		ALU64Imm(ALUAdd, R2, -4), // key bytes never written
		Call(HelperMapLookupElem),
		Mov64Imm(R0, 0),
		Exit(),
	}
	rejects(t, insns, []Map{m}, ErrBadHelperArg)
}

func TestVerifyRejectsUnknownSizeForPerfOutput(t *testing.T) {
	// Size register is a runtime value, not a constant: must be rejected.
	insns := []Insn{
		Mov64Imm(R2, 1),
		StoreMem(R10, -8, R2, SizeDW),
		LoadMem(R4, R10, -8, SizeDW), // r4 = runtime scalar
		Mov64Imm(R2, 0),
		Mov64Reg(R3, R10),
		ALU64Imm(ALUAdd, R3, -8),
		Call(HelperPerfEventOutput),
		Mov64Imm(R0, 0),
		Exit(),
	}
	rejects(t, insns, nil, ErrBadHelperArg)
}

func TestVerifyRejectsPointerArithmetic(t *testing.T) {
	insns := []Insn{
		ALU64Reg(ALUMul, R1, R1), // multiply the ctx pointer
		Mov64Imm(R0, 0),
		Exit(),
	}
	rejects(t, insns, nil, ErrPointerArith)

	insns = []Insn{
		Mov64Reg(R2, R10),
		ALU64Reg(ALUAdd, R2, R1), // pointer + pointer
		Mov64Imm(R0, 0),
		Exit(),
	}
	rejects(t, insns, nil, ErrPointerArith)
}

func TestVerifyRejectsUnknownScalarAddedToPointer(t *testing.T) {
	insns := []Insn{
		LoadMem(R2, R1, 0, SizeW), // runtime scalar
		Mov64Reg(R3, R10),
		ALU64Reg(ALUAdd, R3, R2), // fp + unknown
		Mov64Imm(R0, 0),
		Exit(),
	}
	rejects(t, insns, nil, ErrPointerArith)
}

func TestVerifyRejectsJumpIntoWideInsn(t *testing.T) {
	pair := LoadImm64(R0, 1)
	insns := []Insn{
		JumpImm(JmpEq, R1, 0, 1), // lands on second slot of the wide insn
		pair[0], pair[1],
		Exit(),
	}
	// R1 is ctx (pointer comparison also rejected); craft with a scalar.
	insns = []Insn{
		Mov64Imm(R2, 0),
		JumpImm(JmpEq, R2, 0, 1),
		pair[0], pair[1],
		Exit(),
	}
	rejects(t, insns, nil, ErrBadJumpTarget)
}

func TestVerifyRejectsTruncatedWideInsn(t *testing.T) {
	pair := LoadImm64(R0, 1)
	insns := []Insn{pair[0]}
	rejects(t, insns, nil, ErrBadWideInsn)
}

func TestVerifyBranchesTrackStackIndependently(t *testing.T) {
	// Initialize the stack slot on only one branch; the read after the
	// join must be rejected because the other path leaves it uninit.
	insns := []Insn{
		LoadMem(R2, R1, 0, SizeW),
		JumpImm(JmpEq, R2, 0, 2), // skip the store when ctx word is 0
		Mov64Imm(R3, 1),
		StoreMem(R10, -8, R3, SizeDW),
		LoadMem(R0, R10, -8, SizeDW), // join: unsafe on the taken path
		Exit(),
	}
	rejects(t, insns, nil, ErrUninitStack)
}

func TestVerifyAcceptsBothBranchesInitialized(t *testing.T) {
	insns := []Insn{
		LoadMem(R2, R1, 0, SizeW),
		Mov64Imm(R3, 7),
		JumpImm(JmpEq, R2, 0, 2),
		StoreMem(R10, -8, R3, SizeDW),
		Ja(1),
		StoreMem(R10, -8, R3, SizeDW),
		LoadMem(R0, R10, -8, SizeDW),
		Exit(),
	}
	if err := Verify(insns, nil, 64); err != nil {
		t.Fatalf("both-branch init rejected: %v", err)
	}
}

func TestVerifierPathExplosionBounded(t *testing.T) {
	// A ladder of N independent branches creates 2^N paths; the verifier
	// must give up with ErrTooComplex rather than hang.
	var insns []Insn
	insns = append(insns, LoadMem(R2, R1, 0, SizeW))
	for i := 0; i < 40; i++ {
		insns = append(insns,
			JumpImm(JmpEq, R2, int32(i), 1),
			Mov64Imm(R3, int32(i)),
		)
	}
	insns = append(insns, Mov64Imm(R0, 0), Exit())
	err := Verify(insns, nil, 64)
	if err == nil {
		t.Skip("verifier explored all paths within budget")
	}
	if !errors.Is(err, ErrTooComplex) {
		t.Fatalf("error = %v, want ErrTooComplex", err)
	}
}
