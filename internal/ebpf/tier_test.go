package ebpf

import (
	"errors"
	"testing"
)

// --- Tier selection -------------------------------------------------------

func mustLoad(t *testing.T, insns []Insn, maps []Map) *Program {
	t.Helper()
	p, err := Load(ProgramSpec{Name: t.Name(), Type: ProgTypeKprobe, Insns: insns, Maps: maps, CtxSize: 64})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

func trivialInsns() []Insn {
	return []Insn{Mov64Imm(R0, 42), Exit()}
}

func TestTierDefaultsToOptimized(t *testing.T) {
	p := mustLoad(t, trivialInsns(), nil)
	if p.Tier() != TierOptimized {
		t.Fatalf("default tier = %v, want %v", p.Tier(), TierOptimized)
	}
}

func TestTierEnvForcing(t *testing.T) {
	cases := []struct {
		val  string
		want Tier
	}{
		{"interp", TierInterpreter},
		{"interpreter", TierInterpreter},
		{"threaded", TierThreaded},
		{"jit", TierThreaded},
		{"opt", TierOptimized},
		{"optimized", TierOptimized},
		{"bogus", TierOptimized}, // unknown values are ignored
		{"", TierOptimized},
	}
	for _, tc := range cases {
		t.Run(tc.val, func(t *testing.T) {
			t.Setenv(tierEnvVar, tc.val)
			p := mustLoad(t, trivialInsns(), nil)
			if p.Tier() != tc.want {
				t.Fatalf("%s=%q: tier = %v, want %v", tierEnvVar, tc.val, p.Tier(), tc.want)
			}
			r0, _, err := p.Run(make([]byte, 64), &testEnv{})
			if err != nil || r0 != 42 {
				t.Fatalf("forced run: r0=%d err=%v", r0, err)
			}
		})
	}
}

// TestUnreachableTailStillLowers pins the fuzz-found case where the
// verifier accepts dead code after exit (it proves nothing about it) and
// lowering must skip it rather than decline the optimized tier.
func TestUnreachableTailStillLowers(t *testing.T) {
	insns := []Insn{
		Mov64Imm(R0, 7),
		Exit(),
		LoadMem(R3, R4, 100, SizeB), // unreachable garbage: uninit regs, wild offset
	}
	p := mustLoad(t, insns, nil)
	if p.Tier() != TierOptimized {
		t.Fatalf("tier = %v, want %v", p.Tier(), TierOptimized)
	}
	r0, _, err := p.Run(make([]byte, 64), &testEnv{})
	if err != nil || r0 != 7 {
		t.Fatalf("run: r0=%d err=%v", r0, err)
	}
}

// TestJumpGapStillLowers covers the other reachability shape: dead code
// sitting between an unconditional jump and its target, which the
// verifier skips over without proving anything about it.
func TestJumpGapStillLowers(t *testing.T) {
	insns := []Insn{
		Mov64Imm(R0, 3),
		Ja(1),            // skips insn 2
		Mov64Reg(R0, R9), // unreachable: would be an uninit read
		Exit(),
	}
	p := mustLoad(t, insns, nil)
	if p.Tier() != TierOptimized {
		t.Fatalf("tier = %v, want %v", p.Tier(), TierOptimized)
	}
	for name, run := range map[string]func([]byte, Env) (uint64, ExecStats, error){
		"interp": p.RunInterpreted, "threaded": p.RunThreaded, "optimized": p.RunOptimized,
	} {
		r0, _, err := run(make([]byte, 64), &testEnv{})
		if err != nil || r0 != 3 {
			t.Fatalf("%s: r0=%d err=%v", name, r0, err)
		}
	}
}

// --- Error chain identity -------------------------------------------------
//
// Verified programs never fault at runtime, so the error paths are only
// reachable through the engine internals on unverified instruction
// streams. These are regression tests for the %s→%w wrapping fix: the
// sentinel identity must survive each engine's "at insn" context wrapping
// so callers can dispatch on errors.Is.

// faultingEngines runs unverified insns through all three engines'
// internals (the optimized tier via nil-facts lowering, which keeps every
// access fully checked) and returns the per-engine errors.
func faultingEngines(t *testing.T, insns []Insn, wantOptimized bool) map[string]error {
	t.Helper()
	errs := map[string]error{}
	ctx := make([]byte, 64)

	_, _, err := run(insns, nil, ctx, &testEnv{})
	errs["interp"] = err

	steps, cerr := compile(insns)
	if cerr != nil {
		t.Fatalf("compile: %v", cerr)
	}
	_, _, err = runCompiled(steps, nil, ctx, &testEnv{})
	errs["threaded"] = err

	ir, lerr := lowerProgram(insns, nil, nil)
	if lerr != nil {
		if wantOptimized {
			t.Fatalf("lower: %v", lerr)
		}
		return errs
	}
	optimize(ir)
	opt, eerr := emitProgram(ir)
	if eerr != nil {
		t.Fatalf("emit: %v", eerr)
	}
	_, _, err = runOptimized(opt, nil, ctx, &testEnv{})
	errs["optimized"] = err
	return errs
}

func TestErrorChainMemFault(t *testing.T) {
	// Dereference a scalar: every engine must fault with ErrRuntimeMem.
	insns := []Insn{
		Mov64Imm(R1, 0x1234),
		LoadMem(R0, R1, 0, SizeW),
		Exit(),
	}
	for name, err := range faultingEngines(t, insns, true) {
		if !errors.Is(err, ErrRuntimeMem) {
			t.Errorf("%s: err %v does not wrap ErrRuntimeMem", name, err)
		}
	}
}

func TestErrorChainStepBudget(t *testing.T) {
	// A self-loop exhausts the instruction budget. Lowering rejects back
	// edges, so only the looping engines reach the budget error.
	insns := []Insn{
		Mov64Imm(R0, 0),
		Ja(-1),
		Exit(),
	}
	errs := faultingEngines(t, insns, false)
	for _, name := range []string{"interp", "threaded"} {
		if !errors.Is(errs[name], ErrRuntimeSteps) {
			t.Errorf("%s: err %v does not wrap ErrRuntimeSteps", name, errs[name])
		}
	}
	if _, ok := errs["optimized"]; ok {
		t.Error("optimized tier lowered a back edge")
	}
}

func TestErrorChainBadHelper(t *testing.T) {
	insns := []Insn{
		Call(HelperID(99)),
		Mov64Imm(R0, 0),
		Exit(),
	}
	for name, err := range faultingEngines(t, insns, true) {
		if !errors.Is(err, ErrBadHelper) {
			t.Errorf("%s: err %v does not wrap ErrBadHelper", name, err)
		}
	}
}

func TestErrorChainBadMapRef(t *testing.T) {
	// A map handle pointing past the program's map table.
	fd := LoadMapFD(R1, 3) // only map indices < len(maps)=0 exist
	insns := append(fd[:],
		Mov64Reg(R2, R10),
		ALU64Imm(ALUAdd, R2, -4),
		Call(HelperMapLookupElem),
		Mov64Imm(R0, 0),
		Exit(),
	)
	for name, err := range faultingEngines(t, insns, true) {
		if !errors.Is(err, ErrBadMapRef) {
			t.Errorf("%s: err %v does not wrap ErrBadMapRef", name, err)
		}
	}
}

// --- ExecStats parity -----------------------------------------------------

// runAllTiers executes a loaded program on each engine with its own
// deterministic env and returns the results keyed by tier name.
type tierRun struct {
	r0    uint64
	stats ExecStats
	env   *testEnv
}

func runAllTiers(t *testing.T, p *Program, ctx []byte) map[string]tierRun {
	t.Helper()
	if p.Tier() != TierOptimized {
		t.Fatalf("program did not lower: tier %v", p.Tier())
	}
	out := map[string]tierRun{}
	for name, run := range map[string]func([]byte, Env) (uint64, ExecStats, error){
		"interp": p.RunInterpreted, "threaded": p.RunThreaded, "optimized": p.RunOptimized,
	} {
		env := &testEnv{time: 99, cpu: 1, perfCap: 0}
		r0, stats, err := run(ctx, env)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = tierRun{r0: r0, stats: stats, env: env}
	}
	return out
}

func assertTierParity(t *testing.T, runs map[string]tierRun) {
	t.Helper()
	ref := runs["interp"]
	for _, name := range []string{"threaded", "optimized"} {
		got := runs[name]
		if got.r0 != ref.r0 {
			t.Errorf("%s: r0 = %#x, interp %#x", name, got.r0, ref.r0)
		}
		if got.stats != ref.stats {
			t.Errorf("%s: stats = %+v, interp %+v", name, got.stats, ref.stats)
		}
		if len(got.env.perf) != len(ref.env.perf) {
			t.Errorf("%s: %d perf events, interp %d", name, len(got.env.perf), len(ref.env.perf))
		}
	}
}

func TestStatsParityWideInsns(t *testing.T) {
	var insns []Insn
	for i := 0; i < 5; i++ {
		w := LoadImm64(Reg(R1+Reg(i)), 0x1_0000_0000+int64(i))
		insns = append(insns, w[:]...)
	}
	insns = append(insns, Mov64Reg(R0, R5), Exit())
	p := mustLoad(t, insns, nil)
	runs := runAllTiers(t, p, make([]byte, 64))
	assertTierParity(t, runs)
	// A wide instruction counts once, like the other tiers' dispatch.
	if want := 5 + 2; runs["optimized"].stats.Insns != want {
		t.Errorf("Insns = %d, want %d", runs["optimized"].stats.Insns, want)
	}
}

func TestStatsParityHelperHeavy(t *testing.T) {
	insns := []Insn{
		Call(HelperKtimeGetNs),
		Mov64Reg(R6, R0),
		Call(HelperGetSmpProcessorID),
		ALU64Reg(ALUAdd, R6, R0),
		Call(HelperGetPrandomU32),
		ALU64Reg(ALUAdd, R6, R0),
		Call(HelperKtimeGetNs),
		ALU64Reg(ALUAdd, R6, R0),
		Mov64Reg(R0, R6),
		Exit(),
	}
	p := mustLoad(t, insns, nil)
	runs := runAllTiers(t, p, make([]byte, 64))
	assertTierParity(t, runs)
	if runs["optimized"].stats.HelperCalls != 4 {
		t.Errorf("HelperCalls = %d, want 4", runs["optimized"].stats.HelperCalls)
	}
}

func TestStatsParityPerfEmit(t *testing.T) {
	insns := []Insn{
		StoreImm(R10, -8, 0x11223344, SizeDW),
		Mov64Reg(R3, R10),
		ALU64Imm(ALUAdd, R3, -8),
		Mov64Imm(R4, 8),
		Mov64Imm(R2, 0),
		Call(HelperPerfEventOutput),
		Mov64Imm(R0, 0),
		Exit(),
	}
	p := mustLoad(t, insns, nil)
	runs := runAllTiers(t, p, make([]byte, 64))
	assertTierParity(t, runs)
	opt := runs["optimized"]
	if opt.stats.PerfBytes != 8 || len(opt.env.perf) != 1 {
		t.Errorf("PerfBytes=%d perf events=%d, want 8 and 1", opt.stats.PerfBytes, len(opt.env.perf))
	}
}

func TestStatsParityStepLimitEdge(t *testing.T) {
	// A straight line of exactly MaxInsns instructions: the largest
	// program the verifier accepts must complete on every tier with an
	// identical count.
	insns := make([]Insn, 0, MaxInsns)
	for i := 0; i < MaxInsns-2; i++ {
		insns = append(insns, Mov64Imm(R0, int32(i)))
	}
	insns = append(insns, ALU64Imm(ALUAdd, R0, 1), Exit())
	p := mustLoad(t, insns, nil)
	runs := runAllTiers(t, p, make([]byte, 64))
	assertTierParity(t, runs)
	if runs["optimized"].stats.Insns != MaxInsns {
		t.Errorf("Insns = %d, want %d", runs["optimized"].stats.Insns, MaxInsns)
	}
}

func TestStatsParityBranchBothPaths(t *testing.T) {
	insns := []Insn{
		LoadMem(R2, R1, 0, SizeW),
		JumpImm(JmpEq, R2, 5, 2),
		Mov64Imm(R0, 100),
		Exit(),
		Mov64Imm(R0, 200),
		Exit(),
	}
	p := mustLoad(t, insns, nil)
	for _, first := range []byte{0, 5} {
		ctx := make([]byte, 64)
		ctx[0] = first
		runs := runAllTiers(t, p, ctx)
		assertTierParity(t, runs)
		want := uint64(100)
		if first == 5 {
			want = 200
		}
		if runs["optimized"].r0 != want {
			t.Errorf("ctx[0]=%d: r0 = %d, want %d", first, runs["optimized"].r0, want)
		}
	}
}

// --- Optimization pass unit tests ----------------------------------------

// lowerVerified runs the real pipeline (verify for facts, lower,
// optimize) and returns the IR for structural assertions.
func lowerVerified(t *testing.T, insns []Insn, maps []Map) *irProg {
	t.Helper()
	facts, err := verifyProgram(insns, maps, 64)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	ir, err := lowerProgram(insns, maps, facts)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	optimize(ir)
	return ir
}

func TestOptConstFolding(t *testing.T) {
	ir := lowerVerified(t, []Insn{
		Mov64Imm(R0, 2),
		ALU64Imm(ALUAdd, R0, 3),
		ALU64Imm(ALUMul, R0, 10),
		Exit(),
	}, nil)
	ops := ir.blocks[0].ops
	if len(ops) != 1 || ops[0].kind != irMovImm || ops[0].imm != 50 {
		t.Fatalf("constant chain did not fold to one mov: %+v", ops)
	}
}

func TestOptDeadWriteElim(t *testing.T) {
	ir := lowerVerified(t, []Insn{
		Mov64Imm(R3, 7), // dead: R3 is never read
		Mov64Imm(R0, 1),
		Exit(),
	}, nil)
	for _, op := range ir.blocks[0].ops {
		if op.dst == R3 {
			t.Fatalf("dead write to r3 survived: %+v", ir.blocks[0].ops)
		}
	}
}

func TestOptKeepsDynLoadWithDeadDst(t *testing.T) {
	// With nil facts the load stays dynamic; it may fault, so DSE must
	// keep it even though R2 is dead.
	insns := []Insn{
		Mov64Imm(R1, 0x1234),
		LoadMem(R2, R1, 0, SizeDW),
		Mov64Imm(R0, 1),
		Exit(),
	}
	ir, err := lowerProgram(insns, nil, nil)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	optimize(ir)
	found := false
	for _, op := range ir.blocks[0].ops {
		if op.kind == irLoadDyn {
			found = true
		}
	}
	if !found {
		t.Fatalf("faulting dynamic load was deleted: %+v", ir.blocks[0].ops)
	}
}

func TestOptCopyBatchMerging(t *testing.T) {
	// Two adjacent 4-byte ctx→stack copies merge into one 8-byte batch
	// descriptor (the record-build shape).
	ir := lowerVerified(t, []Insn{
		LoadMem(R2, R1, 0, SizeW),
		StoreMem(R10, -16, R2, SizeW),
		LoadMem(R2, R1, 4, SizeW),
		StoreMem(R10, -12, R2, SizeW),
		Mov64Imm(R0, 0),
		Exit(),
	}, nil)
	ops := ir.blocks[0].ops
	var batch *irInsn
	for i := range ops {
		if ops[i].kind == irCopyBatch {
			batch = &ops[i]
		}
	}
	if batch == nil {
		t.Fatalf("no irCopyBatch emitted: %+v", ops)
	}
	if len(batch.batch) != 1 || batch.batch[0].code != mcCopy88 {
		t.Fatalf("adjacent copies did not merge to one 8-byte descriptor: %+v", batch.batch)
	}
}

func TestOptBranchFusion(t *testing.T) {
	// The filter shape: a 32-bit ctx load consumed only by the branch
	// folds into the terminator.
	ir := lowerVerified(t, []Insn{
		LoadMem(R2, R1, 8, SizeW),
		JumpImm(JmpEq, R2, 17, 2),
		Mov64Imm(R0, 0),
		Exit(),
		Mov64Imm(R0, 1),
		Exit(),
	}, nil)
	blk := ir.blocks[0]
	if !blk.term.ctxFused || blk.term.ctxOff != 8 {
		t.Fatalf("branch did not fuse ctx load: term %+v ops %+v", blk.term, blk.ops)
	}
	if len(blk.ops) != 0 {
		t.Fatalf("fused load should leave no ops: %+v", blk.ops)
	}
}
