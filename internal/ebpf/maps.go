package ebpf

import (
	"errors"
	"fmt"
	"sync"
)

// MapType enumerates the supported eBPF map types.
type MapType int

// Supported map types. The paper's trace scripts use hash maps for per-flow
// state, arrays for counters and histograms, and per-CPU arrays for
// softirq/CPU accounting (case study III).
const (
	MapTypeHash MapType = iota + 1
	MapTypeArray
	MapTypePerCPUArray
)

func (t MapType) String() string {
	switch t {
	case MapTypeHash:
		return "hash"
	case MapTypeArray:
		return "array"
	case MapTypePerCPUArray:
		return "percpu_array"
	}
	return fmt.Sprintf("maptype(%d)", int(t))
}

// Update flags, mirroring BPF_ANY / BPF_NOEXIST / BPF_EXIST.
const (
	UpdateAny     uint64 = 0
	UpdateNoExist uint64 = 1
	UpdateExist   uint64 = 2
)

// Map errors.
var (
	ErrKeySize    = errors.New("ebpf: wrong key size")
	ErrValueSize  = errors.New("ebpf: wrong value size")
	ErrMapFull    = errors.New("ebpf: map is full")
	ErrNoEntry    = errors.New("ebpf: no such entry")
	ErrEntryExist = errors.New("ebpf: entry already exists")
	ErrBadFlags   = errors.New("ebpf: invalid update flags")
	ErrOutOfRange = errors.New("ebpf: array index out of range")
)

// Map is the interface all map types implement. Lookup returns the map's
// internal value buffer: writes through the returned slice mutate the map,
// exactly as writes through a value pointer do in the kernel. All map
// operations are safe for concurrent use, since trace programs on different
// simulated CPUs and the userspace agent may touch a map concurrently.
type Map interface {
	Type() MapType
	KeySize() int
	ValueSize() int
	MaxEntries() int
	Lookup(key []byte) ([]byte, bool)
	Update(key, value []byte, flags uint64) error
	Delete(key []byte) error
	// ForEach iterates over a snapshot of entries. The callback receives
	// copies; mutating them does not affect the map.
	ForEach(fn func(key, value []byte))
	// Len returns the number of live entries.
	Len() int
}

// HashMap is a fixed-capacity hash map keyed by opaque bytes.
type HashMap struct {
	mu         sync.Mutex
	keySize    int
	valueSize  int
	maxEntries int
	entries    map[string][]byte
}

var _ Map = (*HashMap)(nil)

// NewHashMap returns a hash map with the given key/value sizes and entry
// capacity.
func NewHashMap(keySize, valueSize, maxEntries int) (*HashMap, error) {
	if keySize <= 0 || valueSize <= 0 || maxEntries <= 0 {
		return nil, fmt.Errorf("ebpf: invalid hash map geometry key=%d value=%d max=%d",
			keySize, valueSize, maxEntries)
	}
	return &HashMap{
		keySize:    keySize,
		valueSize:  valueSize,
		maxEntries: maxEntries,
		entries:    make(map[string][]byte, maxEntries),
	}, nil
}

// Type implements Map.
func (m *HashMap) Type() MapType { return MapTypeHash }

// KeySize implements Map.
func (m *HashMap) KeySize() int { return m.keySize }

// ValueSize implements Map.
func (m *HashMap) ValueSize() int { return m.valueSize }

// MaxEntries implements Map.
func (m *HashMap) MaxEntries() int { return m.maxEntries }

// Len implements Map.
func (m *HashMap) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Lookup implements Map.
func (m *HashMap) Lookup(key []byte) ([]byte, bool) {
	if len(key) != m.keySize {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.entries[string(key)]
	return v, ok
}

// Update implements Map.
func (m *HashMap) Update(key, value []byte, flags uint64) error {
	if len(key) != m.keySize {
		return fmt.Errorf("%w: got %d want %d", ErrKeySize, len(key), m.keySize)
	}
	if len(value) != m.valueSize {
		return fmt.Errorf("%w: got %d want %d", ErrValueSize, len(value), m.valueSize)
	}
	if flags > UpdateExist {
		return ErrBadFlags
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := string(key)
	existing, ok := m.entries[k]
	switch flags {
	case UpdateNoExist:
		if ok {
			return ErrEntryExist
		}
	case UpdateExist:
		if !ok {
			return ErrNoEntry
		}
	}
	if ok {
		copy(existing, value)
		return nil
	}
	if len(m.entries) >= m.maxEntries {
		return ErrMapFull
	}
	buf := make([]byte, m.valueSize)
	copy(buf, value)
	m.entries[k] = buf
	return nil
}

// Delete implements Map.
func (m *HashMap) Delete(key []byte) error {
	if len(key) != m.keySize {
		return fmt.Errorf("%w: got %d want %d", ErrKeySize, len(key), m.keySize)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := string(key)
	if _, ok := m.entries[k]; !ok {
		return ErrNoEntry
	}
	delete(m.entries, k)
	return nil
}

// ForEach implements Map.
func (m *HashMap) ForEach(fn func(key, value []byte)) {
	m.mu.Lock()
	snapshot := make(map[string][]byte, len(m.entries))
	for k, v := range m.entries {
		c := make([]byte, len(v))
		copy(c, v)
		snapshot[k] = c
	}
	m.mu.Unlock()
	for k, v := range snapshot {
		fn([]byte(k), v)
	}
}

// ArrayMap is a fixed-size array of values indexed by a 4-byte
// little-endian key. All slots exist from creation, as in the kernel.
type ArrayMap struct {
	mu        sync.Mutex
	valueSize int
	values    [][]byte
}

var _ Map = (*ArrayMap)(nil)

// NewArrayMap returns an array map with maxEntries preallocated slots.
func NewArrayMap(valueSize, maxEntries int) (*ArrayMap, error) {
	if valueSize <= 0 || maxEntries <= 0 {
		return nil, fmt.Errorf("ebpf: invalid array map geometry value=%d max=%d", valueSize, maxEntries)
	}
	values := make([][]byte, maxEntries)
	for i := range values {
		values[i] = make([]byte, valueSize)
	}
	return &ArrayMap{valueSize: valueSize, values: values}, nil
}

// Type implements Map.
func (m *ArrayMap) Type() MapType { return MapTypeArray }

// KeySize implements Map. Array maps always use 4-byte keys.
func (m *ArrayMap) KeySize() int { return 4 }

// ValueSize implements Map.
func (m *ArrayMap) ValueSize() int { return m.valueSize }

// MaxEntries implements Map.
func (m *ArrayMap) MaxEntries() int { return len(m.values) }

// Len implements Map. Every slot of an array map is always live.
func (m *ArrayMap) Len() int { return len(m.values) }

func (m *ArrayMap) index(key []byte) (int, bool) {
	if len(key) != 4 {
		return 0, false
	}
	idx := int(uint32(key[0]) | uint32(key[1])<<8 | uint32(key[2])<<16 | uint32(key[3])<<24)
	if idx < 0 || idx >= len(m.values) {
		return 0, false
	}
	return idx, true
}

// Lookup implements Map.
func (m *ArrayMap) Lookup(key []byte) ([]byte, bool) {
	idx, ok := m.index(key)
	if !ok {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.values[idx], true
}

// Update implements Map.
func (m *ArrayMap) Update(key, value []byte, flags uint64) error {
	if len(value) != m.valueSize {
		return fmt.Errorf("%w: got %d want %d", ErrValueSize, len(value), m.valueSize)
	}
	if flags == UpdateNoExist {
		// Array entries always exist.
		return ErrEntryExist
	}
	if flags > UpdateExist {
		return ErrBadFlags
	}
	idx, ok := m.index(key)
	if !ok {
		return ErrOutOfRange
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.values[idx], value)
	return nil
}

// Delete implements Map. Array map entries cannot be deleted.
func (m *ArrayMap) Delete(key []byte) error {
	if _, ok := m.index(key); !ok {
		return ErrOutOfRange
	}
	return errors.New("ebpf: array map entries cannot be deleted")
}

// ForEach implements Map.
func (m *ArrayMap) ForEach(fn func(key, value []byte)) {
	m.mu.Lock()
	snapshot := make([][]byte, len(m.values))
	for i, v := range m.values {
		c := make([]byte, len(v))
		copy(c, v)
		snapshot[i] = c
	}
	m.mu.Unlock()
	for i, v := range snapshot {
		key := []byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)}
		fn(key, v)
	}
}

// PerCPUArray stores one value slot per (index, cpu) pair. Programs access
// the slot for the CPU they execute on; userspace reads all CPUs' slots.
type PerCPUArray struct {
	mu        sync.Mutex
	valueSize int
	numCPU    int
	// values[idx][cpu]
	values [][][]byte
	// cur selects the CPU whose slot Lookup returns; the interpreter sets
	// it to the executing CPU before each run.
	cur int
}

var _ Map = (*PerCPUArray)(nil)

// NewPerCPUArray returns a per-CPU array with maxEntries slots replicated
// across numCPU CPUs.
func NewPerCPUArray(valueSize, maxEntries, numCPU int) (*PerCPUArray, error) {
	if valueSize <= 0 || maxEntries <= 0 || numCPU <= 0 {
		return nil, fmt.Errorf("ebpf: invalid percpu array geometry value=%d max=%d cpus=%d",
			valueSize, maxEntries, numCPU)
	}
	values := make([][][]byte, maxEntries)
	for i := range values {
		values[i] = make([][]byte, numCPU)
		for c := range values[i] {
			values[i][c] = make([]byte, valueSize)
		}
	}
	return &PerCPUArray{valueSize: valueSize, numCPU: numCPU, values: values}, nil
}

// Type implements Map.
func (m *PerCPUArray) Type() MapType { return MapTypePerCPUArray }

// KeySize implements Map.
func (m *PerCPUArray) KeySize() int { return 4 }

// ValueSize implements Map.
func (m *PerCPUArray) ValueSize() int { return m.valueSize }

// MaxEntries implements Map.
func (m *PerCPUArray) MaxEntries() int { return len(m.values) }

// Len implements Map.
func (m *PerCPUArray) Len() int { return len(m.values) }

// NumCPU returns the number of per-entry CPU slots.
func (m *PerCPUArray) NumCPU() int { return m.numCPU }

// SetCurrentCPU selects which CPU's slot subsequent Lookup calls return.
// The interpreter calls this with the executing CPU id.
func (m *PerCPUArray) SetCurrentCPU(cpu int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cpu >= 0 && cpu < m.numCPU {
		m.cur = cpu
	}
}

func (m *PerCPUArray) index(key []byte) (int, bool) {
	if len(key) != 4 {
		return 0, false
	}
	idx := int(uint32(key[0]) | uint32(key[1])<<8 | uint32(key[2])<<16 | uint32(key[3])<<24)
	if idx < 0 || idx >= len(m.values) {
		return 0, false
	}
	return idx, true
}

// Lookup implements Map, returning the current CPU's slot.
func (m *PerCPUArray) Lookup(key []byte) ([]byte, bool) {
	idx, ok := m.index(key)
	if !ok {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.values[idx][m.cur], true
}

// LookupCPU returns the slot for a specific CPU; used by userspace readers.
func (m *PerCPUArray) LookupCPU(key []byte, cpu int) ([]byte, bool) {
	idx, ok := m.index(key)
	if !ok || cpu < 0 || cpu >= m.numCPU {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]byte, m.valueSize)
	copy(out, m.values[idx][cpu])
	return out, true
}

// Update implements Map, writing the current CPU's slot.
func (m *PerCPUArray) Update(key, value []byte, flags uint64) error {
	if len(value) != m.valueSize {
		return fmt.Errorf("%w: got %d want %d", ErrValueSize, len(value), m.valueSize)
	}
	if flags == UpdateNoExist {
		return ErrEntryExist
	}
	if flags > UpdateExist {
		return ErrBadFlags
	}
	idx, ok := m.index(key)
	if !ok {
		return ErrOutOfRange
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.values[idx][m.cur], value)
	return nil
}

// Delete implements Map.
func (m *PerCPUArray) Delete(key []byte) error {
	if _, ok := m.index(key); !ok {
		return ErrOutOfRange
	}
	return errors.New("ebpf: percpu array entries cannot be deleted")
}

// ForEach implements Map, visiting the current CPU's slots.
func (m *PerCPUArray) ForEach(fn func(key, value []byte)) {
	m.mu.Lock()
	cur := m.cur
	snapshot := make([][]byte, len(m.values))
	for i := range m.values {
		c := make([]byte, m.valueSize)
		copy(c, m.values[i][cur])
		snapshot[i] = c
	}
	m.mu.Unlock()
	for i, v := range snapshot {
		key := []byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)}
		fn(key, v)
	}
}
