package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// MapType enumerates the supported eBPF map types.
type MapType int

// Supported map types. The paper's trace scripts use hash maps for per-flow
// state, arrays for counters and histograms, and per-CPU arrays for
// softirq/CPU accounting (case study III).
const (
	MapTypeHash MapType = iota + 1
	MapTypeArray
	MapTypePerCPUArray
)

func (t MapType) String() string {
	switch t {
	case MapTypeHash:
		return "hash"
	case MapTypeArray:
		return "array"
	case MapTypePerCPUArray:
		return "percpu_array"
	}
	return fmt.Sprintf("maptype(%d)", int(t))
}

// Update flags, mirroring BPF_ANY / BPF_NOEXIST / BPF_EXIST.
const (
	UpdateAny     uint64 = 0
	UpdateNoExist uint64 = 1
	UpdateExist   uint64 = 2
)

// Map errors.
var (
	ErrKeySize    = errors.New("ebpf: wrong key size")
	ErrValueSize  = errors.New("ebpf: wrong value size")
	ErrMapFull    = errors.New("ebpf: map is full")
	ErrNoEntry    = errors.New("ebpf: no such entry")
	ErrEntryExist = errors.New("ebpf: entry already exists")
	ErrBadFlags   = errors.New("ebpf: invalid update flags")
	ErrOutOfRange = errors.New("ebpf: array index out of range")
)

// Map is the interface all map types implement. Lookup returns the map's
// internal value buffer: writes through the returned slice mutate the map,
// exactly as writes through a value pointer do in the kernel. All map
// operations are safe for concurrent use, since trace programs on different
// simulated CPUs and the userspace agent may touch a map concurrently.
type Map interface {
	Type() MapType
	KeySize() int
	ValueSize() int
	MaxEntries() int
	Lookup(key []byte) ([]byte, bool)
	Update(key, value []byte, flags uint64) error
	Delete(key []byte) error
	// ForEach iterates over a snapshot of entries. The callback receives
	// copies; mutating them does not affect the map.
	ForEach(fn func(key, value []byte))
	// Len returns the number of live entries.
	Len() int
}

// HashMap is a fixed-capacity hash map keyed by opaque bytes.
type HashMap struct {
	mu         sync.Mutex
	keySize    int
	valueSize  int
	maxEntries int
	entries    map[string][]byte
}

var _ Map = (*HashMap)(nil)

// NewHashMap returns a hash map with the given key/value sizes and entry
// capacity.
func NewHashMap(keySize, valueSize, maxEntries int) (*HashMap, error) {
	if keySize <= 0 || valueSize <= 0 || maxEntries <= 0 {
		return nil, fmt.Errorf("ebpf: invalid hash map geometry key=%d value=%d max=%d",
			keySize, valueSize, maxEntries)
	}
	return &HashMap{
		keySize:    keySize,
		valueSize:  valueSize,
		maxEntries: maxEntries,
		entries:    make(map[string][]byte, maxEntries),
	}, nil
}

// Type implements Map.
func (m *HashMap) Type() MapType { return MapTypeHash }

// KeySize implements Map.
func (m *HashMap) KeySize() int { return m.keySize }

// ValueSize implements Map.
func (m *HashMap) ValueSize() int { return m.valueSize }

// MaxEntries implements Map.
func (m *HashMap) MaxEntries() int { return m.maxEntries }

// Len implements Map.
func (m *HashMap) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Lookup implements Map.
func (m *HashMap) Lookup(key []byte) ([]byte, bool) {
	if len(key) != m.keySize {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.entries[string(key)]
	return v, ok
}

// Update implements Map.
func (m *HashMap) Update(key, value []byte, flags uint64) error {
	if len(key) != m.keySize {
		return fmt.Errorf("%w: got %d want %d", ErrKeySize, len(key), m.keySize)
	}
	if len(value) != m.valueSize {
		return fmt.Errorf("%w: got %d want %d", ErrValueSize, len(value), m.valueSize)
	}
	if flags > UpdateExist {
		return ErrBadFlags
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := string(key)
	existing, ok := m.entries[k]
	switch flags {
	case UpdateNoExist:
		if ok {
			return ErrEntryExist
		}
	case UpdateExist:
		if !ok {
			return ErrNoEntry
		}
	}
	if ok {
		copy(existing, value)
		return nil
	}
	if len(m.entries) >= m.maxEntries {
		return ErrMapFull
	}
	buf := make([]byte, m.valueSize)
	copy(buf, value)
	m.entries[k] = buf
	return nil
}

// Delete implements Map.
func (m *HashMap) Delete(key []byte) error {
	if len(key) != m.keySize {
		return fmt.Errorf("%w: got %d want %d", ErrKeySize, len(key), m.keySize)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	k := string(key)
	if _, ok := m.entries[k]; !ok {
		return ErrNoEntry
	}
	delete(m.entries, k)
	return nil
}

// ForEach implements Map.
func (m *HashMap) ForEach(fn func(key, value []byte)) {
	m.mu.Lock()
	snapshot := make(map[string][]byte, len(m.entries))
	for k, v := range m.entries {
		c := make([]byte, len(v))
		copy(c, v)
		snapshot[k] = c
	}
	m.mu.Unlock()
	for k, v := range snapshot {
		fn([]byte(k), v)
	}
}

// Inc atomically adds delta to the little-endian u64 at value[off] for
// key, creating a zeroed entry when the key is absent — the map_inc_elem
// aggregation fast path: one lock round trip instead of a lookup/update
// pair, and no allocation once the entry exists. It reports whether the
// add was applied; a wrong key size, an offset overrunning the value, or
// a full map leave the map untouched.
func (m *HashMap) Inc(key []byte, off int64, delta uint64) bool {
	if len(key) != m.keySize || off < 0 || off+8 > int64(m.valueSize) {
		return false
	}
	m.mu.Lock()
	v, ok := m.entries[string(key)]
	if !ok {
		if len(m.entries) >= m.maxEntries {
			m.mu.Unlock()
			return false
		}
		v = make([]byte, m.valueSize)
		m.entries[string(key)] = v
	}
	binary.LittleEndian.PutUint64(v[off:], binary.LittleEndian.Uint64(v[off:])+delta)
	m.mu.Unlock()
	return true
}

// Drain removes every entry and hands each (key, value) pair to fn.
// Entry ownership transfers out in one critical section, so a count
// accumulated concurrently lands either in this drain or in the map
// afterwards — never lost, never double-counted. The agent's aggregate
// flush loop uses this as its snapshot-and-reset primitive.
func (m *HashMap) Drain(fn func(key, value []byte)) {
	m.mu.Lock()
	stolen := m.entries
	m.entries = make(map[string][]byte, len(stolen))
	m.mu.Unlock()
	for k, v := range stolen {
		fn([]byte(k), v)
	}
}

// ArrayMap is a fixed-size array of values indexed by a 4-byte
// little-endian key. All slots exist from creation, as in the kernel.
type ArrayMap struct {
	mu        sync.Mutex
	valueSize int
	values    [][]byte
}

var _ Map = (*ArrayMap)(nil)

// NewArrayMap returns an array map with maxEntries preallocated slots.
func NewArrayMap(valueSize, maxEntries int) (*ArrayMap, error) {
	if valueSize <= 0 || maxEntries <= 0 {
		return nil, fmt.Errorf("ebpf: invalid array map geometry value=%d max=%d", valueSize, maxEntries)
	}
	values := make([][]byte, maxEntries)
	for i := range values {
		values[i] = make([]byte, valueSize)
	}
	return &ArrayMap{valueSize: valueSize, values: values}, nil
}

// Type implements Map.
func (m *ArrayMap) Type() MapType { return MapTypeArray }

// KeySize implements Map. Array maps always use 4-byte keys.
func (m *ArrayMap) KeySize() int { return 4 }

// ValueSize implements Map.
func (m *ArrayMap) ValueSize() int { return m.valueSize }

// MaxEntries implements Map.
func (m *ArrayMap) MaxEntries() int { return len(m.values) }

// Len implements Map. Every slot of an array map is always live.
func (m *ArrayMap) Len() int { return len(m.values) }

func (m *ArrayMap) index(key []byte) (int, bool) {
	if len(key) != 4 {
		return 0, false
	}
	idx := int(uint32(key[0]) | uint32(key[1])<<8 | uint32(key[2])<<16 | uint32(key[3])<<24)
	if idx < 0 || idx >= len(m.values) {
		return 0, false
	}
	return idx, true
}

// Lookup implements Map.
func (m *ArrayMap) Lookup(key []byte) ([]byte, bool) {
	idx, ok := m.index(key)
	if !ok {
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.values[idx], true
}

// Update implements Map.
func (m *ArrayMap) Update(key, value []byte, flags uint64) error {
	if len(value) != m.valueSize {
		return fmt.Errorf("%w: got %d want %d", ErrValueSize, len(value), m.valueSize)
	}
	if flags == UpdateNoExist {
		// Array entries always exist.
		return ErrEntryExist
	}
	if flags > UpdateExist {
		return ErrBadFlags
	}
	idx, ok := m.index(key)
	if !ok {
		return ErrOutOfRange
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.values[idx], value)
	return nil
}

// Delete implements Map. Array map entries cannot be deleted.
func (m *ArrayMap) Delete(key []byte) error {
	if _, ok := m.index(key); !ok {
		return ErrOutOfRange
	}
	return errors.New("ebpf: array map entries cannot be deleted")
}

// IncSlot adds delta to the little-endian u64 at value[off] of slot idx:
// the map_inc_elem fast path for counter and histogram arrays, skipping
// the key decode that Lookup/Update pay.
func (m *ArrayMap) IncSlot(idx int, off int64, delta uint64) bool {
	if idx < 0 || idx >= len(m.values) || off < 0 || off+8 > int64(m.valueSize) {
		return false
	}
	m.mu.Lock()
	v := m.values[idx]
	binary.LittleEndian.PutUint64(v[off:], binary.LittleEndian.Uint64(v[off:])+delta)
	m.mu.Unlock()
	return true
}

// DrainU64 appends the leading u64 of every slot to dst and zeroes the
// slot in the same critical section, so concurrent increments land
// either in this drain or the next — the agent's snapshot-and-reset for
// counter and histogram arrays. Maps with values narrower than 8 bytes
// are returned unchanged.
func (m *ArrayMap) DrainU64(dst []uint64) []uint64 {
	if m.valueSize < 8 {
		return dst
	}
	m.mu.Lock()
	for _, v := range m.values {
		dst = append(dst, binary.LittleEndian.Uint64(v))
		for i := range v {
			v[i] = 0
		}
	}
	m.mu.Unlock()
	return dst
}

// ForEach implements Map.
func (m *ArrayMap) ForEach(fn func(key, value []byte)) {
	m.mu.Lock()
	snapshot := make([][]byte, len(m.values))
	for i, v := range m.values {
		c := make([]byte, len(v))
		copy(c, v)
		snapshot[i] = c
	}
	m.mu.Unlock()
	for i, v := range snapshot {
		key := []byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)}
		fn(key, v)
	}
}

// PerCPUArray stores one value slot per (index, cpu) pair. Programs access
// the slot for the CPU they execute on; userspace reads all CPUs' slots.
// Slot contents are guarded per CPU: operations that know their CPU
// (IncSlotCPU, LookupCPU, drains) take only that CPU's lock, so probe
// invocations on different simulated CPUs never contend with each other.
type PerCPUArray struct {
	// mu guards cur; slot contents for CPU c are guarded by locks[c].
	mu        sync.Mutex
	valueSize int
	numCPU    int
	// values[idx][cpu]
	values [][][]byte
	locks  []sync.Mutex
	// cur selects the CPU whose slot Lookup returns; the interpreter sets
	// it to the executing CPU before each run.
	cur int
}

var _ Map = (*PerCPUArray)(nil)

// NewPerCPUArray returns a per-CPU array with maxEntries slots replicated
// across numCPU CPUs.
func NewPerCPUArray(valueSize, maxEntries, numCPU int) (*PerCPUArray, error) {
	if valueSize <= 0 || maxEntries <= 0 || numCPU <= 0 {
		return nil, fmt.Errorf("ebpf: invalid percpu array geometry value=%d max=%d cpus=%d",
			valueSize, maxEntries, numCPU)
	}
	values := make([][][]byte, maxEntries)
	for i := range values {
		values[i] = make([][]byte, numCPU)
		for c := range values[i] {
			values[i][c] = make([]byte, valueSize)
		}
	}
	return &PerCPUArray{
		valueSize: valueSize,
		numCPU:    numCPU,
		values:    values,
		locks:     make([]sync.Mutex, numCPU),
	}, nil
}

// Type implements Map.
func (m *PerCPUArray) Type() MapType { return MapTypePerCPUArray }

// KeySize implements Map.
func (m *PerCPUArray) KeySize() int { return 4 }

// ValueSize implements Map.
func (m *PerCPUArray) ValueSize() int { return m.valueSize }

// MaxEntries implements Map.
func (m *PerCPUArray) MaxEntries() int { return len(m.values) }

// Len implements Map.
func (m *PerCPUArray) Len() int { return len(m.values) }

// NumCPU returns the number of per-entry CPU slots.
func (m *PerCPUArray) NumCPU() int { return m.numCPU }

// SetCurrentCPU selects which CPU's slot subsequent Lookup calls return.
// The interpreter calls this with the executing CPU id.
func (m *PerCPUArray) SetCurrentCPU(cpu int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if cpu >= 0 && cpu < m.numCPU {
		m.cur = cpu
	}
}

func (m *PerCPUArray) index(key []byte) (int, bool) {
	if len(key) != 4 {
		return 0, false
	}
	idx := int(uint32(key[0]) | uint32(key[1])<<8 | uint32(key[2])<<16 | uint32(key[3])<<24)
	if idx < 0 || idx >= len(m.values) {
		return 0, false
	}
	return idx, true
}

// Lookup implements Map, returning the current CPU's slot.
func (m *PerCPUArray) Lookup(key []byte) ([]byte, bool) {
	idx, ok := m.index(key)
	if !ok {
		return nil, false
	}
	m.mu.Lock()
	cur := m.cur
	m.mu.Unlock()
	return m.values[idx][cur], true
}

// LookupCPU returns the slot for a specific CPU; used by userspace readers.
func (m *PerCPUArray) LookupCPU(key []byte, cpu int) ([]byte, bool) {
	idx, ok := m.index(key)
	if !ok || cpu < 0 || cpu >= m.numCPU {
		return nil, false
	}
	m.locks[cpu].Lock()
	defer m.locks[cpu].Unlock()
	out := make([]byte, m.valueSize)
	copy(out, m.values[idx][cpu])
	return out, true
}

// Update implements Map, writing the current CPU's slot.
func (m *PerCPUArray) Update(key, value []byte, flags uint64) error {
	if len(value) != m.valueSize {
		return fmt.Errorf("%w: got %d want %d", ErrValueSize, len(value), m.valueSize)
	}
	if flags == UpdateNoExist {
		return ErrEntryExist
	}
	if flags > UpdateExist {
		return ErrBadFlags
	}
	idx, ok := m.index(key)
	if !ok {
		return ErrOutOfRange
	}
	m.mu.Lock()
	cur := m.cur
	m.mu.Unlock()
	m.locks[cur].Lock()
	defer m.locks[cur].Unlock()
	copy(m.values[idx][cur], value)
	return nil
}

// IncSlotCPU adds delta to the little-endian u64 at value[off] of slot
// idx on the given CPU — the map_inc_elem fast path for per-CPU maps.
// Only the target CPU's lock is taken, so concurrent probe invocations
// on different simulated CPUs proceed without contention. Out-of-range
// CPUs wrap, matching the per-CPU ring-buffer convention.
func (m *PerCPUArray) IncSlotCPU(idx, cpu int, off int64, delta uint64) bool {
	if idx < 0 || idx >= len(m.values) || off < 0 || off+8 > int64(m.valueSize) {
		return false
	}
	if cpu < 0 || cpu >= m.numCPU {
		cpu %= m.numCPU
		if cpu < 0 {
			cpu += m.numCPU
		}
	}
	l := &m.locks[cpu]
	l.Lock()
	v := m.values[idx][cpu]
	binary.LittleEndian.PutUint64(v[off:], binary.LittleEndian.Uint64(v[off:])+delta)
	l.Unlock()
	return true
}

// DrainU64CPUs appends the leading u64 of slot idx for every CPU to dst,
// zeroing each in its own critical section — the agent's
// snapshot-and-reset for per-CPU counters. Values narrower than 8 bytes
// or an out-of-range idx return dst unchanged.
func (m *PerCPUArray) DrainU64CPUs(idx int, dst []uint64) []uint64 {
	if idx < 0 || idx >= len(m.values) || m.valueSize < 8 {
		return dst
	}
	for c := 0; c < m.numCPU; c++ {
		m.locks[c].Lock()
		v := m.values[idx][c]
		dst = append(dst, binary.LittleEndian.Uint64(v))
		for i := range v {
			v[i] = 0
		}
		m.locks[c].Unlock()
	}
	return dst
}

// Delete implements Map.
func (m *PerCPUArray) Delete(key []byte) error {
	if _, ok := m.index(key); !ok {
		return ErrOutOfRange
	}
	return errors.New("ebpf: percpu array entries cannot be deleted")
}

// ForEach implements Map, visiting the current CPU's slots.
func (m *PerCPUArray) ForEach(fn func(key, value []byte)) {
	m.mu.Lock()
	cur := m.cur
	m.mu.Unlock()
	m.locks[cur].Lock()
	snapshot := make([][]byte, len(m.values))
	for i := range m.values {
		c := make([]byte, m.valueSize)
		copy(c, m.values[i][cur])
		snapshot[i] = c
	}
	m.locks[cur].Unlock()
	for i, v := range snapshot {
		key := []byte{byte(i), byte(i >> 8), byte(i >> 16), byte(i >> 24)}
		fn(key, v)
	}
}
