package ebpf

import (
	"errors"
	"fmt"
)

// Builder assembles instruction streams with symbolic jump labels and map
// references. The trace-script compiler (internal/script) targets this API.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	insns  []Insn
	labels map[string]int
	fixups []fixup
	maps   []Map
	mapIdx map[Map]int
	errs   []error
}

type fixup struct {
	insn  int
	label string
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		mapIdx: make(map[Map]int),
	}
}

// Len returns the number of instruction slots emitted so far.
func (b *Builder) Len() int { return len(b.insns) }

// Emit appends raw instructions.
func (b *Builder) Emit(ins ...Insn) *Builder {
	b.insns = append(b.insns, ins...)
	return b
}

// Label defines name at the current position. Defining the same label twice
// is an error reported by Program.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("ebpf: duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.insns)
	return b
}

// JumpImmTo emits a conditional jump on an immediate operand targeting a
// label.
func (b *Builder) JumpImmTo(op uint8, dst Reg, imm int32, label string) *Builder {
	b.fixups = append(b.fixups, fixup{insn: len(b.insns), label: label})
	b.insns = append(b.insns, Insn{Op: ClassJMP | SrcK | op, Dst: dst, Imm: imm})
	return b
}

// Jump32ImmTo emits a JMP32-class conditional jump (comparing the low 32
// bits, unsigned) on an immediate operand targeting a label. Use this to
// compare 32-bit context fields against constants whose top bit may be set
// (IP addresses), where JMP64's sign-extended immediate would never match.
func (b *Builder) Jump32ImmTo(op uint8, dst Reg, imm int32, label string) *Builder {
	b.fixups = append(b.fixups, fixup{insn: len(b.insns), label: label})
	b.insns = append(b.insns, Insn{Op: ClassJMP32 | SrcK | op, Dst: dst, Imm: imm})
	return b
}

// JumpRegTo emits a conditional jump on a register operand targeting a
// label.
func (b *Builder) JumpRegTo(op uint8, dst, src Reg, label string) *Builder {
	b.fixups = append(b.fixups, fixup{insn: len(b.insns), label: label})
	b.insns = append(b.insns, Insn{Op: ClassJMP | SrcX | op, Dst: dst, Src: src})
	return b
}

// JaTo emits an unconditional jump targeting a label.
func (b *Builder) JaTo(label string) *Builder {
	b.fixups = append(b.fixups, fixup{insn: len(b.insns), label: label})
	b.insns = append(b.insns, Insn{Op: ClassJMP | JmpA})
	return b
}

// LoadMapFD emits the two-slot pseudo-instruction that loads a handle for m
// into dst, interning m in the program's map table.
func (b *Builder) LoadMapFD(dst Reg, m Map) *Builder {
	idx, ok := b.mapIdx[m]
	if !ok {
		idx = len(b.maps)
		b.maps = append(b.maps, m)
		b.mapIdx[m] = idx
	}
	pair := LoadMapFD(dst, int32(idx))
	b.insns = append(b.insns, pair[0], pair[1])
	return b
}

// LoadImm64 emits the two-slot 64-bit immediate load.
func (b *Builder) LoadImm64(dst Reg, v int64) *Builder {
	pair := LoadImm64(dst, v)
	b.insns = append(b.insns, pair[0], pair[1])
	return b
}

// Mov, MovImm, ALUImm, ALUReg, Load, Store, StoreImmB, Call and ExitInsn are
// fluent wrappers over the constructors in insn.go.

// Mov copies src to dst.
func (b *Builder) Mov(dst, src Reg) *Builder { return b.Emit(Mov64Reg(dst, src)) }

// MovImm loads a sign-extended 32-bit immediate.
func (b *Builder) MovImm(dst Reg, imm int32) *Builder { return b.Emit(Mov64Imm(dst, imm)) }

// ALUImm applies op with an immediate operand.
func (b *Builder) ALUImm(op uint8, dst Reg, imm int32) *Builder { return b.Emit(ALU64Imm(op, dst, imm)) }

// ALUReg applies op with a register operand.
func (b *Builder) ALUReg(op uint8, dst, src Reg) *Builder { return b.Emit(ALU64Reg(op, dst, src)) }

// Load emits a memory load of the given size.
func (b *Builder) Load(dst, src Reg, off int16, size uint8) *Builder {
	return b.Emit(LoadMem(dst, src, off, size))
}

// Store emits a memory store of the given size.
func (b *Builder) Store(dst Reg, off int16, src Reg, size uint8) *Builder {
	return b.Emit(StoreMem(dst, off, src, size))
}

// Call emits a helper call.
func (b *Builder) Call(id HelperID) *Builder { return b.Emit(Call(id)) }

// ExitInsn emits an exit instruction.
func (b *Builder) ExitInsn() *Builder { return b.Emit(Exit()) }

// Program resolves labels and returns the instruction stream and map table.
func (b *Builder) Program() ([]Insn, []Map, error) {
	if len(b.errs) > 0 {
		return nil, nil, errors.Join(b.errs...)
	}
	insns := make([]Insn, len(b.insns))
	copy(insns, b.insns)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, nil, fmt.Errorf("ebpf: undefined label %q", f.label)
		}
		off := target - f.insn - 1
		if off != int(int16(off)) {
			return nil, nil, fmt.Errorf("ebpf: jump to %q out of int16 range", f.label)
		}
		insns[f.insn].Off = int16(off)
	}
	maps := make([]Map, len(b.maps))
	copy(maps, b.maps)
	return insns, maps, nil
}
