package ebpf

// This file defines the small SSA-ish intermediate representation behind
// the optimized execution tier. Verified bytecode is lowered (lower.go)
// into basic blocks of irInsns whose addressing has been resolved against
// the facts the verifier proved: a load whose base pointer is known to be
// the context or a fixed stack slot carries an absolute region offset and
// needs no runtime bounds check, while anything the proof could not pin
// down keeps the fully checked dynamic form. Optimization passes (opt.go)
// fold constants, propagate copies, delete dead register writes, and fuse
// common shapes (ctx-load + stack-store copies, ctx-load + branch
// filters). The emitter (emit.go) then turns each basic block into one
// chain of specialized Go closures.

// irKind discriminates IR operations.
type irKind uint8

const (
	// irMovImm sets dst to a 64-bit constant (also covers ld_imm64 and
	// ld_map_fd, whose handle encoding is a compile-time constant).
	irMovImm irKind = iota
	// irMovReg copies src into dst.
	irMovReg
	// irALU is a generic ALU op evaluated through aluOp, bit-identical
	// to the interpreter.
	irALU
	// irLoadCtx loads size bytes from ctx[off] into dst, bounds proven.
	irLoadCtx
	// irLoadStack loads size bytes from stack[off] into dst, bounds
	// proven.
	irLoadStack
	// irLoadDyn is the fully checked load via a pointer register.
	irLoadDyn
	// irStoreStack stores size bytes of src at stack[off], bounds proven.
	irStoreStack
	// irStoreStackImm stores size bytes of a constant at stack[off].
	irStoreStackImm
	// irStoreDyn is the fully checked store via a pointer register.
	irStoreDyn
	// irStoreDynImm is the fully checked constant store.
	irStoreDynImm
	// irCopyCtxStack fuses a ctx load with the stack store that consumed
	// it: stack[off:off+size] = ctx[ctxOff:ctxOff+loadSize] (truncating
	// when size < loadSize). The intermediate register is gone.
	irCopyCtxStack
	// irHelper is a generic helper call through vm.call — full
	// interpreter semantics including caller-saved register poisoning.
	irHelper
	// irKtime, irSmpID, irPrandom inline the zero-argument helpers.
	irKtime
	irSmpID
	irPrandom
	// irPerfEmitStack inlines perf_event_output of a proved stack range:
	// the four argument registers are statically dead.
	irPerfEmitStack
	// irMapLookupStack inlines map_lookup_elem with the key at a proved
	// stack offset, passing a stack slice directly (no key copy).
	irMapLookupStack
	// irMapUpdateStack inlines map_update_elem with key/value at proved
	// stack offsets and constant flags.
	irMapUpdateStack
	// irMapDeleteStack inlines map_delete_elem with the key at a proved
	// stack offset.
	irMapDeleteStack
	// irMapIncStack inlines map_inc_elem with the key at a proved stack
	// offset and a verified constant value offset: one locked fetch-add
	// on the addressed counter lane, delta read from R3 at runtime.
	irMapIncStack
	// irHistObserve inlines hist_observe: a log2-bucket increment for
	// the sample in R2.
	irHistObserve
	// irCopyBatch executes a run of fused ctx-to-stack copies and constant
	// stack stores (the record-build shape) in one closure, driven by a
	// descriptor list instead of one closure per store.
	irCopyBatch
)

// memCopy is one descriptor in an irCopyBatch. code selects the
// specialized form; mcGeneric falls back to width-switched load/store.
type memCopy struct {
	code   uint8
	co, so int64  // ctx source / stack destination offsets
	imm    uint64 // constant stores
	ls, ss int64  // mcGeneric widths
}

// memCopy codes.
const (
	mcCopy44 uint8 = iota // stack u32 = ctx u32
	mcCopy88              // stack u64 = ctx u64
	mcCopy42              // stack u16 = trunc(ctx u32)
	mcCopy41              // stack u8  = trunc(ctx u32)
	mcImm8
	mcImm16
	mcImm32
	mcImm64
	mcGeneric
)

// irInsn is one IR operation. Field use depends on kind; origPC is the
// bytecode index it was lowered from, kept for error context.
type irInsn struct {
	kind     irKind
	aluOp    uint8 // irALU: operation bits
	is64     bool  // irALU: 64- vs 32-bit
	useReg   bool  // irALU: register vs immediate source
	dst, src Reg
	imm      int64 // constants; irALU immediate (pre-sign-extended)
	off      int64 // absolute region offset (static ops) or displacement (dyn ops)
	ctxOff   int64 // irCopyCtxStack: source ctx offset
	size     int64 // access width in bytes
	loadSize int64 // irCopyCtxStack: source width (>= size)
	mapIdx   int   // inlined map ops
	valOff   int64 // irMapUpdateStack: value stack offset
	flags    uint64
	helper   HelperID
	batch    []memCopy // irCopyBatch descriptors
	origPC   int
}

// irTermKind discriminates block terminators.
type irTermKind uint8

const (
	// termExit ends the program with R0 as the result.
	termExit irTermKind = iota
	// termJump transfers to block taken unconditionally (explicit ja or
	// a synthesized fallthrough into a jump target).
	termJump
	// termBranch is a conditional jump evaluated via jmpCond.
	termBranch
)

// irTerm ends a basic block. For termBranch, the left operand is either
// register dst or — when ctxFused — a 32-bit ctx load at ctxOff whose
// register became dead (the filter-check shape).
type irTerm struct {
	kind        irTermKind
	op          uint8 // jump operation bits
	is64        bool  // JMP vs JMP32 comparison width
	useReg      bool
	dst, src    Reg
	imm         int64 // pre-sign-extended immediate operand
	ctxFused    bool
	ctxOff      int64
	taken, fall int // successor block indices
	origPC      int
}

// irBlock is a straight-line run of operations plus a terminator. insns
// counts the original bytecode instructions the block covers (wide loads
// count one, matching ExecStats.Insns in the other tiers); the count is
// charged on block entry.
type irBlock struct {
	ops   []irInsn
	term  irTerm
	insns int
}

// irProg is a lowered program: blocks indexed densely, entry at block 0.
// All control-flow edges point to higher block indices (the verifier
// rejects back edges), which the optimizer's single-pass liveness
// analysis relies on.
type irProg struct {
	blocks []irBlock
	maps   []Map
}

// regMask is a register bit set used by liveness analysis.
type regMask uint16

func (m regMask) has(r Reg) bool   { return m&(1<<r) != 0 }
func (m *regMask) add(r Reg)       { *m |= 1 << r }
func (m *regMask) remove(r Reg)    { *m &^= 1 << r }
