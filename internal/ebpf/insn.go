// Package ebpf implements a register-accurate model of the extended
// Berkeley Packet Filter virtual machine that vNetTracer's trace scripts
// compile to: the instruction set, a static verifier enforcing the same
// safety rules the paper relies on (program size limit, no back edges,
// initialized registers, bounded memory access), hash/array/per-CPU maps,
// the helper-call surface (bpf_ktime_get_ns, map operations,
// bpf_perf_event_output, ...), an interpreter, a text assembler and a
// programmatic builder.
//
// Trace scripts in this repository are genuinely compiled to this bytecode,
// verified, and interpreted once per matching packet, so the paper's
// programmability constraints and per-event costs are structural rather
// than asserted.
package ebpf

import "fmt"

// Reg identifies one of the eleven eBPF registers.
type Reg uint8

// Register assignments follow the kernel ABI: R0 holds return values, R1-R5
// are helper/function arguments (caller-saved), R6-R9 are callee-saved, and
// R10 is the read-only frame pointer.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10

	// NumRegs is the register-file size.
	NumRegs = 11
)

// Instruction classes (low three opcode bits).
const (
	ClassLD  uint8 = 0x00
	ClassLDX uint8 = 0x01
	ClassST  uint8 = 0x02
	ClassSTX uint8 = 0x03
	ClassALU uint8 = 0x04
	ClassJMP uint8 = 0x05
	// ClassJMP32 compares on the low 32 bits.
	ClassJMP32 uint8 = 0x06
	ClassALU64 uint8 = 0x07
)

// Size field for memory instructions.
const (
	SizeW  uint8 = 0x00 // 4 bytes
	SizeH  uint8 = 0x08 // 2 bytes
	SizeB  uint8 = 0x10 // 1 byte
	SizeDW uint8 = 0x18 // 8 bytes
)

// Mode field for load/store instructions.
const (
	ModeIMM uint8 = 0x00
	ModeMEM uint8 = 0x60
)

// Source field: K uses the immediate, X uses the source register.
const (
	SrcK uint8 = 0x00
	SrcX uint8 = 0x08
)

// ALU operations (high four opcode bits).
const (
	ALUAdd  uint8 = 0x00
	ALUSub  uint8 = 0x10
	ALUMul  uint8 = 0x20
	ALUDiv  uint8 = 0x30
	ALUOr   uint8 = 0x40
	ALUAnd  uint8 = 0x50
	ALULsh  uint8 = 0x60
	ALURsh  uint8 = 0x70
	ALUNeg  uint8 = 0x80
	ALUMod  uint8 = 0x90
	ALUXor  uint8 = 0xa0
	ALUMov  uint8 = 0xb0
	ALUArsh uint8 = 0xc0
)

// Jump operations (high four opcode bits).
const (
	JmpA    uint8 = 0x00
	JmpEq   uint8 = 0x10
	JmpGt   uint8 = 0x20
	JmpGe   uint8 = 0x30
	JmpSet  uint8 = 0x40
	JmpNe   uint8 = 0x50
	JmpSGt  uint8 = 0x60
	JmpSGe  uint8 = 0x70
	JmpCall uint8 = 0x80
	JmpExit uint8 = 0x90
	JmpLt   uint8 = 0xa0
	JmpLe   uint8 = 0xb0
	JmpSLt  uint8 = 0xc0
	JmpSLe  uint8 = 0xd0
)

// PseudoMapFD in the Src field of an LD_DW instruction marks the immediate
// as a map handle rather than a literal, mirroring BPF_PSEUDO_MAP_FD.
const PseudoMapFD Reg = 1

// Insn is a single eBPF instruction. A 64-bit immediate load (LdImm64 and
// LoadMapFD) occupies two instruction slots: the second slot carries the
// high 32 bits in Imm and must otherwise be zero.
type Insn struct {
	Op  uint8
	Dst Reg
	Src Reg
	Off int16
	Imm int32
}

// Class returns the instruction class bits.
func (i Insn) Class() uint8 { return i.Op & 0x07 }

// IsWide reports whether the instruction is the first half of a two-slot
// 64-bit immediate load.
func (i Insn) IsWide() bool {
	return i.Op == ClassLD|ModeIMM|SizeDW
}

// String renders the instruction approximately in kernel verifier syntax.
func (i Insn) String() string {
	switch i.Class() {
	case ClassALU, ClassALU64:
		suffix := ""
		if i.Class() == ClassALU {
			suffix = "32"
		}
		if i.Op&0x08 == SrcX {
			return fmt.Sprintf("%s%s r%d, r%d", aluName(i.Op&0xf0), suffix, i.Dst, i.Src)
		}
		return fmt.Sprintf("%s%s r%d, %d", aluName(i.Op&0xf0), suffix, i.Dst, i.Imm)
	case ClassJMP, ClassJMP32:
		op := i.Op & 0xf0
		switch op {
		case JmpA:
			return fmt.Sprintf("ja +%d", i.Off)
		case JmpCall:
			return fmt.Sprintf("call %d", i.Imm)
		case JmpExit:
			return "exit"
		}
		if i.Op&0x08 == SrcX {
			return fmt.Sprintf("%s r%d, r%d, +%d", jmpName(op), i.Dst, i.Src, i.Off)
		}
		return fmt.Sprintf("%s r%d, %d, +%d", jmpName(op), i.Dst, i.Imm, i.Off)
	case ClassLDX:
		return fmt.Sprintf("ldx%s r%d, [r%d%+d]", sizeName(i.Op&0x18), i.Dst, i.Src, i.Off)
	case ClassSTX:
		return fmt.Sprintf("stx%s [r%d%+d], r%d", sizeName(i.Op&0x18), i.Dst, i.Off, i.Src)
	case ClassST:
		return fmt.Sprintf("st%s [r%d%+d], %d", sizeName(i.Op&0x18), i.Dst, i.Off, i.Imm)
	case ClassLD:
		if i.IsWide() {
			if i.Src == PseudoMapFD {
				return fmt.Sprintf("ld_map_fd r%d, %d", i.Dst, i.Imm)
			}
			return fmt.Sprintf("ld_imm64 r%d, %d(lo)", i.Dst, i.Imm)
		}
	}
	return fmt.Sprintf("insn{op=%#x dst=r%d src=r%d off=%d imm=%d}", i.Op, i.Dst, i.Src, i.Off, i.Imm)
}

func aluName(op uint8) string {
	switch op {
	case ALUAdd:
		return "add"
	case ALUSub:
		return "sub"
	case ALUMul:
		return "mul"
	case ALUDiv:
		return "div"
	case ALUOr:
		return "or"
	case ALUAnd:
		return "and"
	case ALULsh:
		return "lsh"
	case ALURsh:
		return "rsh"
	case ALUNeg:
		return "neg"
	case ALUMod:
		return "mod"
	case ALUXor:
		return "xor"
	case ALUMov:
		return "mov"
	case ALUArsh:
		return "arsh"
	}
	return fmt.Sprintf("alu%#x", op)
}

func jmpName(op uint8) string {
	switch op {
	case JmpEq:
		return "jeq"
	case JmpGt:
		return "jgt"
	case JmpGe:
		return "jge"
	case JmpSet:
		return "jset"
	case JmpNe:
		return "jne"
	case JmpSGt:
		return "jsgt"
	case JmpSGe:
		return "jsge"
	case JmpLt:
		return "jlt"
	case JmpLe:
		return "jle"
	case JmpSLt:
		return "jslt"
	case JmpSLe:
		return "jsle"
	}
	return fmt.Sprintf("jmp%#x", op)
}

func sizeName(sz uint8) string {
	switch sz {
	case SizeW:
		return "w"
	case SizeH:
		return "h"
	case SizeB:
		return "b"
	case SizeDW:
		return "dw"
	}
	return "?"
}

// sizeBytes returns the access width in bytes for a size field.
func sizeBytes(sz uint8) int64 {
	switch sz {
	case SizeB:
		return 1
	case SizeH:
		return 2
	case SizeW:
		return 4
	case SizeDW:
		return 8
	}
	return 0
}

// Convenience constructors, used by the script compiler and tests.

// Mov64Imm loads a 32-bit immediate (sign-extended) into dst.
func Mov64Imm(dst Reg, imm int32) Insn {
	return Insn{Op: ClassALU64 | SrcK | ALUMov, Dst: dst, Imm: imm}
}

// Mov64Reg copies src into dst.
func Mov64Reg(dst, src Reg) Insn {
	return Insn{Op: ClassALU64 | SrcX | ALUMov, Dst: dst, Src: src}
}

// ALU64Imm applies op (e.g. ALUAdd) with an immediate operand.
func ALU64Imm(op uint8, dst Reg, imm int32) Insn {
	return Insn{Op: ClassALU64 | SrcK | op, Dst: dst, Imm: imm}
}

// ALU64Reg applies op with a register operand.
func ALU64Reg(op uint8, dst, src Reg) Insn {
	return Insn{Op: ClassALU64 | SrcX | op, Dst: dst, Src: src}
}

// LoadMem loads size bytes from [src+off] into dst.
func LoadMem(dst, src Reg, off int16, size uint8) Insn {
	return Insn{Op: ClassLDX | ModeMEM | size, Dst: dst, Src: src, Off: off}
}

// StoreMem stores size bytes from src into [dst+off].
func StoreMem(dst Reg, off int16, src Reg, size uint8) Insn {
	return Insn{Op: ClassSTX | ModeMEM | size, Dst: dst, Src: src, Off: off}
}

// StoreImm stores size bytes of imm into [dst+off].
func StoreImm(dst Reg, off int16, imm int32, size uint8) Insn {
	return Insn{Op: ClassST | ModeMEM | size, Dst: dst, Imm: imm, Off: off}
}

// JumpImm compares dst against an immediate and jumps off instructions
// forward when the condition holds.
func JumpImm(op uint8, dst Reg, imm int32, off int16) Insn {
	return Insn{Op: ClassJMP | SrcK | op, Dst: dst, Imm: imm, Off: off}
}

// JumpReg compares dst against src.
func JumpReg(op uint8, dst, src Reg, off int16) Insn {
	return Insn{Op: ClassJMP | SrcX | op, Dst: dst, Src: src, Off: off}
}

// Ja jumps unconditionally off instructions forward.
func Ja(off int16) Insn { return Insn{Op: ClassJMP | JmpA, Off: off} }

// Call invokes helper function id.
func Call(id HelperID) Insn {
	return Insn{Op: ClassJMP | JmpCall, Imm: int32(id)}
}

// Exit returns from the program with R0 as the result.
func Exit() Insn { return Insn{Op: ClassJMP | JmpExit} }

// LoadImm64 produces the two-slot instruction pair loading a full 64-bit
// immediate into dst.
func LoadImm64(dst Reg, v int64) [2]Insn {
	return [2]Insn{
		{Op: ClassLD | ModeIMM | SizeDW, Dst: dst, Imm: int32(uint32(uint64(v)))},
		{Imm: int32(uint32(uint64(v) >> 32))},
	}
}

// LoadMapFD produces the two-slot pseudo-instruction pair that places map
// handle fd in dst.
func LoadMapFD(dst Reg, fd int32) [2]Insn {
	return [2]Insn{
		{Op: ClassLD | ModeIMM | SizeDW, Dst: dst, Src: PseudoMapFD, Imm: fd},
		{},
	}
}
