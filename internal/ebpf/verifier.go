package ebpf

import (
	"errors"
	"fmt"
)

// Verifier limits, matching the constraints the paper cites in Section II:
// programs are capped at 4k instructions and must be loop-free.
const (
	// MaxInsns is the maximum program length (the paper's "at most 4k
	// instructions" limit).
	MaxInsns = 4096
	// StackSize is the per-program stack, in bytes.
	StackSize = 512
	// maxVerifierStates bounds path exploration, mirroring the kernel's
	// complexity limit.
	maxVerifierStates = 1 << 20
)

// Verification errors.
var (
	ErrProgTooLarge   = errors.New("ebpf: program exceeds 4096 instructions")
	ErrEmptyProg      = errors.New("ebpf: empty program")
	ErrBackEdge       = errors.New("ebpf: back-edge (loop) detected")
	ErrBadJumpTarget  = errors.New("ebpf: jump out of range")
	ErrUninitRead     = errors.New("ebpf: read of uninitialized register")
	ErrUninitStack    = errors.New("ebpf: read of uninitialized stack")
	ErrBadMemAccess   = errors.New("ebpf: invalid memory access")
	ErrBadOpcode      = errors.New("ebpf: unknown or unsupported opcode")
	ErrBadHelper      = errors.New("ebpf: unknown helper")
	ErrBadHelperArg   = errors.New("ebpf: helper argument type mismatch")
	ErrFramePointerRW = errors.New("ebpf: frame pointer is read-only")
	ErrDivByZero      = errors.New("ebpf: division by constant zero")
	ErrBadShift       = errors.New("ebpf: shift amount out of range")
	ErrBadMapRef      = errors.New("ebpf: map reference out of range")
	ErrFallthrough    = errors.New("ebpf: program may fall off the end")
	ErrTooComplex     = errors.New("ebpf: program too complex to verify")
	ErrBadWideInsn    = errors.New("ebpf: malformed 64-bit immediate load")
	ErrPointerArith   = errors.New("ebpf: invalid pointer arithmetic")
)

// regKind is the abstract type of a register during verification.
type regKind uint8

const (
	kindUninit regKind = iota
	kindScalar
	kindCtx       // pointer to the program context
	kindFP        // frame pointer (stack base + StackSize)
	kindStack     // pointer into the stack, offset known
	kindMapPtr    // const pointer to a map
	kindMapValNul // pointer to map value, possibly NULL
	kindMapVal    // pointer to map value, non-NULL
)

func (k regKind) String() string {
	switch k {
	case kindUninit:
		return "uninit"
	case kindScalar:
		return "scalar"
	case kindCtx:
		return "ctx"
	case kindFP:
		return "fp"
	case kindStack:
		return "stack_ptr"
	case kindMapPtr:
		return "map_ptr"
	case kindMapValNul:
		return "map_value_or_null"
	case kindMapVal:
		return "map_value"
	}
	return "?"
}

// regState is the verifier's knowledge about one register.
type regState struct {
	kind regKind
	// off is the pointer offset for kindStack / kindMapVal / kindMapValNul
	// (bytes from the region base; stack offsets count from the bottom of
	// the stack, so FP has off = StackSize).
	off int64
	// mapIdx selects the referenced map for map pointer kinds.
	mapIdx int
	// known marks a scalar whose exact value is tracked (needed for
	// helper size arguments and pointer arithmetic).
	known bool
	val   int64
}

// vState is a full verifier state at one program point.
type vState struct {
	pc    int
	regs  [NumRegs]regState
	stack [StackSize]bool // byte-granular initialization
}

func (s *vState) clone() *vState {
	c := *s
	return &c
}

// memFact is what the verifier proved about one memory-access
// instruction's base pointer, merged over every path that reaches it. The
// optimized compilation tier uses these facts to resolve addresses at
// compile time and elide the runtime bounds checks the proof makes
// redundant; a fact that differs between paths degrades to !ok and the
// instruction falls back to the fully checked path.
type memFact struct {
	seen   bool
	ok     bool
	kind   regKind // kindCtx, kindStack (FP normalized), or kindMapVal
	off    int64   // base pointer offset within its region, before Insn.Off
	mapIdx int
}

// callFact is the proved state of the argument registers R1-R5 at a call
// site, again merged over all paths. When ok, the optimized tier may
// inline the helper with statically resolved arguments.
type callFact struct {
	seen bool
	ok   bool
	args [5]regState // R1..R5
}

// progFacts carries the verifier's per-instruction proof artifacts out of
// verification so later compilation stages can reuse them.
type progFacts struct {
	mem  []memFact
	call []callFact
	// reach marks the instructions the verifier actually explored. The
	// verifier tolerates unreachable code after an exit or a statically
	// decided branch (it proves nothing about it), so lowering must skip
	// those instructions rather than try to compile them.
	reach []bool
}

func newProgFacts(n int) *progFacts {
	return &progFacts{mem: make([]memFact, n), call: make([]callFact, n), reach: make([]bool, n)}
}

func (f *progFacts) markReach(pc int) {
	if f != nil && pc < len(f.reach) {
		f.reach[pc] = true
	}
}

// normReg canonicalizes a register state for fact merging: the frame
// pointer is just a stack pointer at StackSize, and fields that do not
// apply to a kind are zeroed so equality is structural.
func normReg(rs regState) regState {
	if rs.kind == kindFP {
		return regState{kind: kindStack, off: StackSize}
	}
	switch rs.kind {
	case kindScalar:
		if !rs.known {
			return regState{kind: kindScalar}
		}
		return regState{kind: kindScalar, known: true, val: rs.val}
	case kindCtx, kindStack:
		return regState{kind: rs.kind, off: rs.off}
	case kindMapPtr, kindMapVal, kindMapValNul:
		return regState{kind: rs.kind, off: rs.off, mapIdx: rs.mapIdx}
	}
	return regState{kind: rs.kind}
}

func (f *progFacts) noteMem(pc int, rs regState) {
	if f == nil {
		return
	}
	n := normReg(rs)
	m := &f.mem[pc]
	if !m.seen {
		*m = memFact{seen: true, ok: true, kind: n.kind, off: n.off, mapIdx: n.mapIdx}
		return
	}
	if m.ok && (m.kind != n.kind || m.off != n.off || m.mapIdx != n.mapIdx) {
		m.ok = false
	}
}

// noteCall merges the states of the nargs argument registers the helper
// consumes; registers beyond the prototype are ignored so stale values in
// unused argument slots cannot degrade the fact.
func (f *progFacts) noteCall(pc, nargs int, regs *[NumRegs]regState) {
	if f == nil {
		return
	}
	c := &f.call[pc]
	if !c.seen {
		c.seen, c.ok = true, true
		for i := 0; i < nargs; i++ {
			c.args[i] = normReg(regs[R1+Reg(i)])
		}
		return
	}
	if !c.ok {
		return
	}
	for i := 0; i < nargs; i++ {
		if c.args[i] != normReg(regs[R1+Reg(i)]) {
			c.ok = false
			return
		}
	}
}

// Verify statically checks the program against the supplied maps and
// context size. On success the program is safe to interpret: every memory
// access is in bounds, every register is written before read, control flow
// is a DAG reaching exit, and every helper call is well-typed.
func Verify(insns []Insn, maps []Map, ctxSize int) error {
	_, err := verifyProgram(insns, maps, ctxSize)
	return err
}

// verifyProgram runs verification and returns the proof facts the
// optimized compilation tier consumes.
func verifyProgram(insns []Insn, maps []Map, ctxSize int) (*progFacts, error) {
	if len(insns) == 0 {
		return nil, ErrEmptyProg
	}
	if len(insns) > MaxInsns {
		return nil, fmt.Errorf("%w: %d instructions", ErrProgTooLarge, len(insns))
	}
	if err := checkStructure(insns); err != nil {
		return nil, err
	}
	facts := newProgFacts(len(insns))
	v := &verifier{insns: insns, maps: maps, ctxSize: int64(ctxSize), facts: facts}
	init := &vState{}
	init.regs[R1] = regState{kind: kindCtx}
	init.regs[R10] = regState{kind: kindFP, off: StackSize}
	if err := v.explore(init); err != nil {
		return nil, err
	}
	return facts, nil
}

// checkStructure validates opcodes, jump targets, the absence of back
// edges, and wide-instruction pairing before the abstract interpretation.
func checkStructure(insns []Insn) error {
	wideSecond := make([]bool, len(insns))
	for i := 0; i < len(insns); i++ {
		in := insns[i]
		if in.IsWide() {
			if i+1 >= len(insns) {
				return fmt.Errorf("%w: truncated at %d", ErrBadWideInsn, i)
			}
			next := insns[i+1]
			if next.Op != 0 || next.Dst != 0 || next.Src != 0 || next.Off != 0 {
				return fmt.Errorf("%w: bad second slot at %d", ErrBadWideInsn, i+1)
			}
			wideSecond[i+1] = true
			i++
			continue
		}
		switch in.Class() {
		case ClassALU, ClassALU64, ClassLDX, ClassSTX, ClassST:
			// Checked in detail during exploration.
		case ClassJMP, ClassJMP32:
			op := in.Op & 0xf0
			if op == JmpCall || op == JmpExit {
				continue
			}
			target := i + 1 + int(in.Off)
			if target < 0 || target >= len(insns) {
				return fmt.Errorf("%w: insn %d -> %d", ErrBadJumpTarget, i, target)
			}
			if target <= i {
				return fmt.Errorf("%w: insn %d -> %d", ErrBackEdge, i, target)
			}
		case ClassLD:
			return fmt.Errorf("%w: op=%#x at %d", ErrBadOpcode, in.Op, i)
		default:
			return fmt.Errorf("%w: op=%#x at %d", ErrBadOpcode, in.Op, i)
		}
	}
	// No jump may land on the second slot of a wide instruction.
	for i, in := range insns {
		if in.Class() != ClassJMP && in.Class() != ClassJMP32 {
			continue
		}
		op := in.Op & 0xf0
		if op == JmpCall || op == JmpExit {
			continue
		}
		if t := i + 1 + int(in.Off); t < len(insns) && wideSecond[t] {
			return fmt.Errorf("%w: jump into wide insn at %d", ErrBadJumpTarget, t)
		}
	}
	return nil
}

type verifier struct {
	insns   []Insn
	maps    []Map
	ctxSize int64
	states  int
	facts   *progFacts
}

// explore walks every control-flow path from st. Because checkStructure
// forbids back edges the walk terminates; maxVerifierStates bounds
// pathological branching.
func (v *verifier) explore(st *vState) error {
	for {
		v.states++
		if v.states > maxVerifierStates {
			return ErrTooComplex
		}
		if st.pc >= len(v.insns) {
			return fmt.Errorf("%w: pc=%d", ErrFallthrough, st.pc)
		}
		in := v.insns[st.pc]
		v.facts.markReach(st.pc)

		switch {
		case in.IsWide():
			if err := v.checkWide(st, in); err != nil {
				return err
			}
			v.facts.markReach(st.pc + 1)
			st.pc += 2
			continue
		case in.Class() == ClassALU || in.Class() == ClassALU64:
			if err := v.checkALU(st, in); err != nil {
				return err
			}
			st.pc++
			continue
		case in.Class() == ClassLDX:
			if err := v.checkLoad(st, in); err != nil {
				return err
			}
			st.pc++
			continue
		case in.Class() == ClassSTX || in.Class() == ClassST:
			if err := v.checkStore(st, in); err != nil {
				return err
			}
			st.pc++
			continue
		case in.Class() == ClassJMP || in.Class() == ClassJMP32:
			op := in.Op & 0xf0
			switch op {
			case JmpExit:
				if st.regs[R0].kind == kindUninit {
					return fmt.Errorf("%w: r0 at exit (insn %d)", ErrUninitRead, st.pc)
				}
				return nil
			case JmpCall:
				if err := v.checkCall(st, in); err != nil {
					return err
				}
				st.pc++
				continue
			case JmpA:
				st.pc += 1 + int(in.Off)
				continue
			default:
				taken, fall, err := v.checkBranch(st, in)
				if err != nil {
					return err
				}
				if taken != nil {
					taken.pc = st.pc + 1 + int(in.Off)
					if err := v.explore(taken); err != nil {
						return err
					}
				}
				if fall == nil {
					return nil
				}
				st = fall
				st.pc++
				continue
			}
		default:
			return fmt.Errorf("%w: op=%#x at %d", ErrBadOpcode, in.Op, st.pc)
		}
	}
}

func (v *verifier) checkWide(st *vState, in Insn) error {
	if in.Dst >= R10 {
		return fmt.Errorf("%w: insn %d", ErrFramePointerRW, st.pc)
	}
	if in.Src == PseudoMapFD {
		idx := int(in.Imm)
		if idx < 0 || idx >= len(v.maps) {
			return fmt.Errorf("%w: map %d of %d (insn %d)", ErrBadMapRef, idx, len(v.maps), st.pc)
		}
		st.regs[in.Dst] = regState{kind: kindMapPtr, mapIdx: idx}
		return nil
	}
	lo := uint64(uint32(in.Imm))
	hi := uint64(uint32(v.insns[st.pc+1].Imm))
	st.regs[in.Dst] = regState{kind: kindScalar, known: true, val: int64(hi<<32 | lo)}
	return nil
}

func (v *verifier) checkALU(st *vState, in Insn) error {
	if in.Dst == R10 {
		return fmt.Errorf("%w: insn %d", ErrFramePointerRW, st.pc)
	}
	if in.Dst >= NumRegs || in.Src >= NumRegs {
		return fmt.Errorf("%w: bad register (insn %d)", ErrBadOpcode, st.pc)
	}
	op := in.Op & 0xf0
	useReg := in.Op&0x08 == SrcX
	is64 := in.Class() == ClassALU64

	// Source operand.
	var src regState
	if useReg {
		src = st.regs[in.Src]
		if src.kind == kindUninit {
			return fmt.Errorf("%w: r%d (insn %d)", ErrUninitRead, in.Src, st.pc)
		}
	} else {
		src = regState{kind: kindScalar, known: true, val: int64(in.Imm)}
	}

	dst := st.regs[in.Dst]

	if op == ALUMov {
		if !is64 && src.kind != kindScalar {
			// mov32 truncates pointers; treat the result as scalar.
			st.regs[in.Dst] = regState{kind: kindScalar}
			return nil
		}
		st.regs[in.Dst] = src
		if src.kind == kindFP {
			// A copy of FP is a stack pointer at the same offset.
			st.regs[in.Dst] = regState{kind: kindStack, off: src.off}
		}
		return nil
	}
	if op == ALUNeg {
		if dst.kind != kindScalar {
			return fmt.Errorf("%w: neg on %s (insn %d)", ErrPointerArith, dst.kind, st.pc)
		}
		if dst.known {
			st.regs[in.Dst] = regState{kind: kindScalar, known: true, val: -dst.val}
		} else {
			st.regs[in.Dst] = regState{kind: kindScalar}
		}
		return nil
	}

	if dst.kind == kindUninit {
		return fmt.Errorf("%w: r%d (insn %d)", ErrUninitRead, in.Dst, st.pc)
	}

	// Pointer arithmetic: only ADD/SUB of a known scalar onto a pointer.
	if isPointerKind(dst.kind) {
		if op != ALUAdd && op != ALUSub {
			return fmt.Errorf("%w: %s on %s (insn %d)", ErrPointerArith, aluName(op), dst.kind, st.pc)
		}
		if !is64 {
			return fmt.Errorf("%w: 32-bit arith on %s (insn %d)", ErrPointerArith, dst.kind, st.pc)
		}
		if src.kind != kindScalar || !src.known {
			return fmt.Errorf("%w: unknown offset added to %s (insn %d)", ErrPointerArith, dst.kind, st.pc)
		}
		delta := src.val
		if op == ALUSub {
			delta = -delta
		}
		out := dst
		if out.kind == kindFP {
			out.kind = kindStack
		}
		out.off += delta
		st.regs[in.Dst] = out
		return nil
	}
	if isPointerKind(src.kind) {
		return fmt.Errorf("%w: pointer as ALU source (insn %d)", ErrPointerArith, st.pc)
	}

	// Scalar-scalar ALU.
	switch op {
	case ALUDiv, ALUMod:
		if !useReg && in.Imm == 0 {
			return fmt.Errorf("%w: insn %d", ErrDivByZero, st.pc)
		}
	case ALULsh, ALURsh, ALUArsh:
		limit := int32(64)
		if !is64 {
			limit = 32
		}
		if !useReg && (in.Imm < 0 || in.Imm >= limit) {
			return fmt.Errorf("%w: %d (insn %d)", ErrBadShift, in.Imm, st.pc)
		}
	case ALUAdd, ALUSub, ALUMul, ALUOr, ALUAnd, ALUXor:
	default:
		return fmt.Errorf("%w: alu op %#x (insn %d)", ErrBadOpcode, op, st.pc)
	}

	out := regState{kind: kindScalar}
	if dst.known && src.known && is64 {
		if val, ok := constFold(op, dst.val, src.val); ok {
			out.known = true
			out.val = val
		}
	}
	st.regs[in.Dst] = out
	return nil
}

func constFold(op uint8, a, b int64) (int64, bool) {
	switch op {
	case ALUAdd:
		return a + b, true
	case ALUSub:
		return a - b, true
	case ALUMul:
		return a * b, true
	case ALUOr:
		return a | b, true
	case ALUAnd:
		return a & b, true
	case ALUXor:
		return a ^ b, true
	case ALULsh:
		if uint64(b) < 64 {
			return int64(uint64(a) << uint64(b)), true
		}
	case ALURsh:
		if uint64(b) < 64 {
			return int64(uint64(a) >> uint64(b)), true
		}
	case ALUDiv:
		if b != 0 {
			return int64(uint64(a) / uint64(b)), true
		}
	case ALUMod:
		if b != 0 {
			return int64(uint64(a) % uint64(b)), true
		}
	}
	return 0, false
}

func isPointerKind(k regKind) bool {
	switch k {
	case kindCtx, kindFP, kindStack, kindMapPtr, kindMapVal, kindMapValNul:
		return true
	}
	return false
}

func (v *verifier) checkLoad(st *vState, in Insn) error {
	if in.Op&0x60 != ModeMEM {
		return fmt.Errorf("%w: ldx mode %#x (insn %d)", ErrBadOpcode, in.Op&0x60, st.pc)
	}
	if in.Dst == R10 {
		return fmt.Errorf("%w: insn %d", ErrFramePointerRW, st.pc)
	}
	if in.Dst >= NumRegs || in.Src >= NumRegs {
		return fmt.Errorf("%w: bad register (insn %d)", ErrBadOpcode, st.pc)
	}
	size := sizeBytes(in.Op & 0x18)
	src := st.regs[in.Src]
	switch src.kind {
	case kindCtx:
		off := src.off + int64(in.Off)
		if off < 0 || off+size > v.ctxSize {
			return fmt.Errorf("%w: ctx[%d:%d) of %d (insn %d)", ErrBadMemAccess, off, off+size, v.ctxSize, st.pc)
		}
		if off%size != 0 {
			return fmt.Errorf("%w: misaligned ctx access at %d (insn %d)", ErrBadMemAccess, off, st.pc)
		}
	case kindFP, kindStack:
		base := src.off
		if src.kind == kindFP {
			base = StackSize
		}
		off := base + int64(in.Off)
		if off < 0 || off+size > StackSize {
			return fmt.Errorf("%w: stack[%d:%d) (insn %d)", ErrBadMemAccess, off, off+size, st.pc)
		}
		for i := off; i < off+size; i++ {
			if !st.stack[i] {
				return fmt.Errorf("%w: byte %d (insn %d)", ErrUninitStack, i, st.pc)
			}
		}
	case kindMapVal:
		vs := int64(v.maps[src.mapIdx].ValueSize())
		off := src.off + int64(in.Off)
		if off < 0 || off+size > vs {
			return fmt.Errorf("%w: map value[%d:%d) of %d (insn %d)", ErrBadMemAccess, off, off+size, vs, st.pc)
		}
	case kindMapValNul:
		return fmt.Errorf("%w: map value may be NULL, check it first (insn %d)", ErrBadMemAccess, st.pc)
	default:
		return fmt.Errorf("%w: load via %s (insn %d)", ErrBadMemAccess, src.kind, st.pc)
	}
	v.facts.noteMem(st.pc, src)
	st.regs[in.Dst] = regState{kind: kindScalar}
	return nil
}

func (v *verifier) checkStore(st *vState, in Insn) error {
	if in.Op&0x60 != ModeMEM {
		return fmt.Errorf("%w: st mode %#x (insn %d)", ErrBadOpcode, in.Op&0x60, st.pc)
	}
	if in.Dst >= NumRegs || in.Src >= NumRegs {
		return fmt.Errorf("%w: bad register (insn %d)", ErrBadOpcode, st.pc)
	}
	size := sizeBytes(in.Op & 0x18)
	if in.Class() == ClassSTX {
		src := st.regs[in.Src]
		if src.kind == kindUninit {
			return fmt.Errorf("%w: r%d (insn %d)", ErrUninitRead, in.Src, st.pc)
		}
		if isPointerKind(src.kind) && size != 8 {
			return fmt.Errorf("%w: partial pointer spill (insn %d)", ErrBadMemAccess, st.pc)
		}
	}
	dst := st.regs[in.Dst]
	switch dst.kind {
	case kindFP, kindStack:
		base := dst.off
		if dst.kind == kindFP {
			base = StackSize
		}
		off := base + int64(in.Off)
		if off < 0 || off+size > StackSize {
			return fmt.Errorf("%w: stack[%d:%d) (insn %d)", ErrBadMemAccess, off, off+size, st.pc)
		}
		for i := off; i < off+size; i++ {
			st.stack[i] = true
		}
	case kindMapVal:
		vs := int64(v.maps[dst.mapIdx].ValueSize())
		off := dst.off + int64(in.Off)
		if off < 0 || off+size > vs {
			return fmt.Errorf("%w: map value[%d:%d) of %d (insn %d)", ErrBadMemAccess, off, off+size, vs, st.pc)
		}
	case kindMapValNul:
		return fmt.Errorf("%w: map value may be NULL, check it first (insn %d)", ErrBadMemAccess, st.pc)
	case kindCtx:
		return fmt.Errorf("%w: context is read-only for trace programs (insn %d)", ErrBadMemAccess, st.pc)
	default:
		return fmt.Errorf("%w: store via %s (insn %d)", ErrBadMemAccess, dst.kind, st.pc)
	}
	v.facts.noteMem(st.pc, dst)
	return nil
}

// checkCall validates a helper call against its prototype and applies the
// call's effect on registers (R1-R5 clobbered, R0 set).
func (v *verifier) checkCall(st *vState, in Insn) error {
	proto, ok := helperProtos[HelperID(in.Imm)]
	if !ok {
		return fmt.Errorf("%w: id %d (insn %d)", ErrBadHelper, in.Imm, st.pc)
	}
	var callMapIdx = -1
	for i, kind := range proto.args {
		reg := R1 + Reg(i)
		rs := st.regs[reg]
		switch kind {
		case argScalar:
			if rs.kind != kindScalar {
				return fmt.Errorf("%w: %s arg%d is %s, want scalar (insn %d)",
					ErrBadHelperArg, proto.name, i+1, rs.kind, st.pc)
			}
		case argCtx:
			if rs.kind != kindCtx {
				return fmt.Errorf("%w: %s arg%d is %s, want ctx (insn %d)",
					ErrBadHelperArg, proto.name, i+1, rs.kind, st.pc)
			}
		case argMapPtr:
			if rs.kind != kindMapPtr {
				return fmt.Errorf("%w: %s arg%d is %s, want map (insn %d)",
					ErrBadHelperArg, proto.name, i+1, rs.kind, st.pc)
			}
			callMapIdx = rs.mapIdx
		case argStackPtr:
			if rs.kind != kindStack && rs.kind != kindFP && rs.kind != kindMapVal {
				return fmt.Errorf("%w: %s arg%d is %s, want stack/map-value ptr (insn %d)",
					ErrBadHelperArg, proto.name, i+1, rs.kind, st.pc)
			}
			// Determine the byte span this pointer must cover.
			span, err := v.helperSpan(st, HelperID(in.Imm), i, callMapIdx)
			if err != nil {
				return fmt.Errorf("%w (insn %d)", err, st.pc)
			}
			if err := v.checkSpan(st, rs, span); err != nil {
				return fmt.Errorf("%w: %s arg%d: %v (insn %d)", ErrBadHelperArg, proto.name, i+1, err, st.pc)
			}
		case argSize:
			if rs.kind != kindScalar || !rs.known {
				return fmt.Errorf("%w: %s arg%d must be a known-constant size (insn %d)",
					ErrBadHelperArg, proto.name, i+1, st.pc)
			}
		case argConst:
			if rs.kind != kindScalar || !rs.known {
				return fmt.Errorf("%w: %s arg%d must be a known constant (insn %d)",
					ErrBadHelperArg, proto.name, i+1, st.pc)
			}
		}
	}
	if err := v.checkHelperGeometry(st, HelperID(in.Imm), callMapIdx); err != nil {
		return fmt.Errorf("%w (insn %d)", err, st.pc)
	}
	v.facts.noteCall(st.pc, len(proto.args), &st.regs)
	// Clobber caller-saved registers.
	for r := R1; r <= R5; r++ {
		st.regs[r] = regState{}
	}
	if proto.returnsMapValue {
		st.regs[R0] = regState{kind: kindMapValNul, mapIdx: callMapIdx}
	} else {
		st.regs[R0] = regState{kind: kindScalar}
	}
	return nil
}

// checkHelperGeometry applies helper-specific constraints the generic
// argument kinds cannot express: the aggregation helpers address a fixed
// 8-byte lane inside map values, so the lane must fit.
func (v *verifier) checkHelperGeometry(st *vState, id HelperID, mapIdx int) error {
	switch id {
	case HelperMapIncElem:
		if mapIdx < 0 {
			return ErrBadHelperArg
		}
		off := st.regs[R4].val
		vs := int64(v.maps[mapIdx].ValueSize())
		if off < 0 || off+8 > vs {
			return fmt.Errorf("%w: map_inc_elem counter [%d:%d) outside value of %d bytes",
				ErrBadHelperArg, off, off+8, vs)
		}
	case HelperHistObserve:
		if mapIdx < 0 {
			return ErrBadHelperArg
		}
		m := v.maps[mapIdx]
		if m.KeySize() != 4 || m.ValueSize() < 8 {
			return fmt.Errorf("%w: hist_observe needs 4-byte keys and >=8-byte values, map has %d/%d",
				ErrBadHelperArg, m.KeySize(), m.ValueSize())
		}
	}
	return nil
}

// helperSpan computes how many bytes a pointer argument must cover.
func (v *verifier) helperSpan(st *vState, id HelperID, argIdx, mapIdx int) (int64, error) {
	switch id {
	case HelperMapLookupElem, HelperMapDeleteElem, HelperMapIncElem:
		if mapIdx < 0 {
			return 0, ErrBadHelperArg
		}
		return int64(v.maps[mapIdx].KeySize()), nil
	case HelperMapUpdateElem:
		if mapIdx < 0 {
			return 0, ErrBadHelperArg
		}
		if argIdx == 1 { // key
			return int64(v.maps[mapIdx].KeySize()), nil
		}
		return int64(v.maps[mapIdx].ValueSize()), nil
	case HelperTracePrintk, HelperPerfEventOutput:
		// The size register follows the pointer register.
		sz := st.regs[R1+Reg(argIdx+1)]
		if sz.kind != kindScalar || !sz.known {
			return 0, fmt.Errorf("%w: size must be a known constant", ErrBadHelperArg)
		}
		if sz.val < 0 || sz.val > StackSize {
			return 0, fmt.Errorf("%w: size %d out of range", ErrBadHelperArg, sz.val)
		}
		return sz.val, nil
	}
	return 0, fmt.Errorf("%w: id %d", ErrBadHelper, id)
}

// checkSpan verifies the [ptr, ptr+span) range is in bounds and, for stack
// memory, fully initialized.
func (v *verifier) checkSpan(st *vState, rs regState, span int64) error {
	switch rs.kind {
	case kindFP, kindStack:
		base := rs.off
		if rs.kind == kindFP {
			base = StackSize
		}
		if base < 0 || base+span > StackSize {
			return fmt.Errorf("stack[%d:%d) out of bounds", base, base+span)
		}
		for i := base; i < base+span; i++ {
			if !st.stack[i] {
				return fmt.Errorf("%w at byte %d", ErrUninitStack, i)
			}
		}
	case kindMapVal:
		vs := int64(v.maps[rs.mapIdx].ValueSize())
		if rs.off < 0 || rs.off+span > vs {
			return fmt.Errorf("map value[%d:%d) of %d out of bounds", rs.off, rs.off+span, vs)
		}
	default:
		return fmt.Errorf("bad pointer kind %s", rs.kind)
	}
	return nil
}

// checkBranch validates a conditional jump and returns the states for the
// taken and fall-through edges (either may be nil when the branch is
// statically decided by a NULL check refinement).
func (v *verifier) checkBranch(st *vState, in Insn) (taken, fall *vState, err error) {
	if in.Dst >= NumRegs || in.Src >= NumRegs {
		return nil, nil, fmt.Errorf("%w: bad register (insn %d)", ErrBadOpcode, st.pc)
	}
	op := in.Op & 0xf0
	useReg := in.Op&0x08 == SrcX
	dst := st.regs[in.Dst]
	if dst.kind == kindUninit {
		return nil, nil, fmt.Errorf("%w: r%d (insn %d)", ErrUninitRead, in.Dst, st.pc)
	}
	if useReg {
		if st.regs[in.Src].kind == kindUninit {
			return nil, nil, fmt.Errorf("%w: r%d (insn %d)", ErrUninitRead, in.Src, st.pc)
		}
	}

	taken = st.clone()
	fall = st.clone()

	// NULL-check refinement for map values: after "jeq rX, 0" the
	// fall-through branch has a valid pointer; after "jne rX, 0" the taken
	// branch does.
	if dst.kind == kindMapValNul && !useReg && in.Imm == 0 {
		switch op {
		case JmpEq:
			fall.regs[in.Dst].kind = kindMapVal
			taken.regs[in.Dst] = regState{kind: kindScalar, known: true, val: 0}
			return taken, fall, nil
		case JmpNe:
			taken.regs[in.Dst].kind = kindMapVal
			fall.regs[in.Dst] = regState{kind: kindScalar, known: true, val: 0}
			return taken, fall, nil
		}
	}
	if isPointerKind(dst.kind) && dst.kind != kindMapValNul {
		// Comparing pointers to scalars is meaningless for trace scripts;
		// reject to keep the model simple and safe.
		return nil, nil, fmt.Errorf("%w: comparison on %s (insn %d)", ErrPointerArith, dst.kind, st.pc)
	}
	switch op {
	case JmpEq, JmpNe, JmpGt, JmpGe, JmpLt, JmpLe, JmpSGt, JmpSGe, JmpSLt, JmpSLe, JmpSet:
	default:
		return nil, nil, fmt.Errorf("%w: jmp op %#x (insn %d)", ErrBadOpcode, op, st.pc)
	}
	return taken, fall, nil
}
