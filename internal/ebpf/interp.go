package ebpf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

// Interpreter runtime errors. A verified program should never trigger the
// memory errors; they remain as defense in depth.
var (
	ErrRuntimeMem   = errors.New("ebpf: runtime memory fault")
	ErrRuntimeSteps = errors.New("ebpf: instruction budget exceeded")
	ErrNotLoaded    = errors.New("ebpf: program not loaded")
)

// Pointer encoding used by the interpreter: the high 32 bits select a
// memory region (stack, context, or a map value registered during the run)
// and the low 32 bits are a byte offset into it. Map handles use a disjoint
// prefix. Region 0 is reserved so that NULL stays invalid.
const (
	regionShift   = 32
	mapHandleBase = uint64(0xEBBF_0000) << regionShift
)

// ExecStats reports the cost of one program execution; the simulated kernel
// converts it into nanoseconds of CPU time charged to the node.
type ExecStats struct {
	// Insns is the number of bytecode instructions executed.
	Insns int
	// HelperCalls is the number of helper invocations.
	HelperCalls int
	// PerfBytes counts bytes emitted through perf_event_output.
	PerfBytes int
}

// vm is the per-execution machine state.
type vm struct {
	regs    [NumRegs]uint64
	stack   [StackSize]byte
	regions [][]byte // regions[0] = stack, regions[1] = ctx, rest = map values
	ctx     []byte   // alias of regions[1]; the optimized tier's fast ctx path
	maps    []Map
	env     Env
	stats   ExecStats
}

func (m *vm) ptr(region int, off uint32) uint64 {
	return uint64(region+1)<<regionShift | uint64(off)
}

// resolve translates an encoded pointer into a region slice and offset.
func (m *vm) resolve(p uint64, size int64) ([]byte, int64, error) {
	region := int(p>>regionShift) - 1
	off := int64(uint32(p))
	if region < 0 || region >= len(m.regions) {
		return nil, 0, fmt.Errorf("%w: bad region in pointer %#x", ErrRuntimeMem, p)
	}
	mem := m.regions[region]
	if off < 0 || off+size > int64(len(mem)) {
		return nil, 0, fmt.Errorf("%w: [%d:%d) of %d", ErrRuntimeMem, off, off+size, len(mem))
	}
	return mem, off, nil
}

func (m *vm) load(p uint64, size int64) (uint64, error) {
	mem, off, err := m.resolve(p, size)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint64(mem[off]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(mem[off:])), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(mem[off:])), nil
	case 8:
		return binary.LittleEndian.Uint64(mem[off:]), nil
	}
	return 0, fmt.Errorf("%w: bad size %d", ErrRuntimeMem, size)
}

func (m *vm) store(p uint64, size int64, v uint64) error {
	mem, off, err := m.resolve(p, size)
	if err != nil {
		return err
	}
	switch size {
	case 1:
		mem[off] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(mem[off:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(mem[off:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(mem[off:], v)
	default:
		return fmt.Errorf("%w: bad size %d", ErrRuntimeMem, size)
	}
	return nil
}

// readBytes copies n bytes starting at pointer p.
func (m *vm) readBytes(p uint64, n int64) ([]byte, error) {
	mem, off, err := m.resolve(p, n)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, mem[off:off+n])
	return out, nil
}

// vmPool recycles execution state across runs: a program executes once
// per traced packet, and the verifier's no-read-before-write guarantees
// make zeroing between runs unnecessary.
var vmPool = sync.Pool{New: func() any { return new(vm) }}

// initVM prepares a recycled vm for one execution.
func initVM(m *vm, maps []Map, ctx []byte, env Env) {
	m.maps = maps
	m.env = env
	m.stats = ExecStats{}
	if m.regions == nil {
		m.regions = make([][]byte, 2, 8)
	}
	m.regions = m.regions[:2]
	m.regions[0] = m.stack[:]
	m.regions[1] = ctx
	m.ctx = ctx
	m.regs[R1] = m.ptr(1, 0) // ctx pointer
	m.regs[R10] = m.ptr(0, StackSize)

	// Bind per-CPU maps to the executing CPU. The CPU id is only fetched
	// when a per-CPU map is actually present.
	cpu := -1
	for _, mp := range maps {
		if pc, ok := mp.(*PerCPUArray); ok {
			if cpu < 0 {
				cpu = int(env.SMPProcessorID())
			}
			pc.SetCurrentCPU(cpu)
		}
	}
}

// resetVM drops references that would pin caller memory across reuse.
func resetVM(m *vm) {
	m.maps = nil
	m.env = nil
	m.regions = m.regions[:2]
	m.regions[1] = nil
	m.ctx = nil
}

// getVM prepares a pooled vm for one execution.
func getVM(maps []Map, ctx []byte, env Env) *vm {
	m := vmPool.Get().(*vm)
	initVM(m, maps, ctx, env)
	return m
}

// putVM returns a vm to the pool, dropping references that would pin
// caller memory.
func putVM(m *vm) {
	resetVM(m)
	vmPool.Put(m)
}

// run executes the program. ctx is the read-mostly context buffer; env
// provides helper facilities.
func run(insns []Insn, maps []Map, ctx []byte, env Env) (uint64, ExecStats, error) {
	m := getVM(maps, ctx, env)
	defer putVM(m)

	pc := 0
	steps := 0
	for {
		if pc < 0 || pc >= len(insns) {
			return 0, m.stats, fmt.Errorf("%w: pc=%d", ErrRuntimeMem, pc)
		}
		steps++
		if steps > MaxInsns+2 {
			return 0, m.stats, ErrRuntimeSteps
		}
		in := insns[pc]
		m.stats.Insns++

		switch {
		case in.IsWide():
			if pc+1 >= len(insns) {
				return 0, m.stats, fmt.Errorf("%w: truncated wide insn", ErrRuntimeMem)
			}
			if in.Src == PseudoMapFD {
				m.regs[in.Dst] = mapHandleBase | uint64(uint32(in.Imm))
			} else {
				lo := uint64(uint32(in.Imm))
				hi := uint64(uint32(insns[pc+1].Imm))
				m.regs[in.Dst] = hi<<32 | lo
			}
			pc += 2
			continue

		case in.Class() == ClassALU64 || in.Class() == ClassALU:
			var src uint64
			if in.Op&0x08 == SrcX {
				src = m.regs[in.Src]
			} else {
				src = uint64(int64(in.Imm)) // sign-extend
			}
			dst := m.regs[in.Dst]
			is64 := in.Class() == ClassALU64
			if !is64 {
				src = uint64(uint32(src))
				dst = uint64(uint32(dst))
			}
			res, err := aluOp(in.Op&0xf0, dst, src, is64)
			if err != nil {
				return 0, m.stats, fmt.Errorf("%w at insn %d", err, pc)
			}
			if !is64 {
				res = uint64(uint32(res))
			}
			m.regs[in.Dst] = res
			pc++
			continue

		case in.Class() == ClassLDX:
			size := sizeBytes(in.Op & 0x18)
			v, err := m.load(m.regs[in.Src]+uint64(int64(in.Off)), size)
			if err != nil {
				return 0, m.stats, fmt.Errorf("%w at insn %d", err, pc)
			}
			m.regs[in.Dst] = v
			pc++
			continue

		case in.Class() == ClassSTX:
			size := sizeBytes(in.Op & 0x18)
			if err := m.store(m.regs[in.Dst]+uint64(int64(in.Off)), size, m.regs[in.Src]); err != nil {
				return 0, m.stats, fmt.Errorf("%w at insn %d", err, pc)
			}
			pc++
			continue

		case in.Class() == ClassST:
			size := sizeBytes(in.Op & 0x18)
			if err := m.store(m.regs[in.Dst]+uint64(int64(in.Off)), size, uint64(int64(in.Imm))); err != nil {
				return 0, m.stats, fmt.Errorf("%w at insn %d", err, pc)
			}
			pc++
			continue

		case in.Class() == ClassJMP || in.Class() == ClassJMP32:
			op := in.Op & 0xf0
			switch op {
			case JmpExit:
				return m.regs[R0], m.stats, nil
			case JmpCall:
				if err := m.call(HelperID(in.Imm)); err != nil {
					return 0, m.stats, fmt.Errorf("%w at insn %d", err, pc)
				}
				pc++
				continue
			case JmpA:
				pc += 1 + int(in.Off)
				continue
			}
			var src uint64
			if in.Op&0x08 == SrcX {
				src = m.regs[in.Src]
			} else {
				src = uint64(int64(in.Imm))
			}
			dst := m.regs[in.Dst]
			if in.Class() == ClassJMP32 {
				src = uint64(uint32(src))
				dst = uint64(uint32(dst))
			}
			take, err := jmpCond(op, dst, src, in.Class() == ClassJMP)
			if err != nil {
				return 0, m.stats, fmt.Errorf("%w at insn %d", err, pc)
			}
			if take {
				pc += 1 + int(in.Off)
			} else {
				pc++
			}
			continue

		default:
			return 0, m.stats, fmt.Errorf("%w: op=%#x at insn %d", ErrBadOpcode, in.Op, pc)
		}
	}
}

func aluOp(op uint8, dst, src uint64, is64 bool) (uint64, error) {
	switch op {
	case ALUAdd:
		return dst + src, nil
	case ALUSub:
		return dst - src, nil
	case ALUMul:
		return dst * src, nil
	case ALUDiv:
		if src == 0 {
			return 0, nil // kernel semantics: div by zero yields 0
		}
		return dst / src, nil
	case ALUMod:
		if src == 0 {
			return dst, nil // kernel semantics: mod by zero keeps dst
		}
		return dst % src, nil
	case ALUOr:
		return dst | src, nil
	case ALUAnd:
		return dst & src, nil
	case ALUXor:
		return dst ^ src, nil
	case ALULsh:
		return dst << maskShift(src, is64), nil
	case ALURsh:
		return dst >> maskShift(src, is64), nil
	case ALUArsh:
		if is64 {
			return uint64(int64(dst) >> maskShift(src, is64)), nil
		}
		return uint64(uint32(int32(uint32(dst)) >> maskShift(src, is64))), nil
	case ALUNeg:
		return uint64(-int64(dst)), nil
	case ALUMov:
		return src, nil
	}
	return 0, fmt.Errorf("%w: alu op %#x", ErrBadOpcode, op)
}

func maskShift(s uint64, is64 bool) uint64 {
	if is64 {
		return s & 63
	}
	return s & 31
}

func jmpCond(op uint8, dst, src uint64, is64 bool) (bool, error) {
	sd, ss := int64(dst), int64(src)
	if !is64 {
		sd, ss = int64(int32(uint32(dst))), int64(int32(uint32(src)))
	}
	switch op {
	case JmpEq:
		return dst == src, nil
	case JmpNe:
		return dst != src, nil
	case JmpGt:
		return dst > src, nil
	case JmpGe:
		return dst >= src, nil
	case JmpLt:
		return dst < src, nil
	case JmpLe:
		return dst <= src, nil
	case JmpSet:
		return dst&src != 0, nil
	case JmpSGt:
		return sd > ss, nil
	case JmpSGe:
		return sd >= ss, nil
	case JmpSLt:
		return sd < ss, nil
	case JmpSLe:
		return sd <= ss, nil
	}
	return false, fmt.Errorf("%w: jmp op %#x", ErrBadOpcode, op)
}

// call dispatches a helper invocation.
func (m *vm) call(id HelperID) error {
	m.stats.HelperCalls++
	switch id {
	case HelperKtimeGetNs:
		m.regs[R0] = m.env.KtimeNs()
	case HelperGetSmpProcessorID:
		m.regs[R0] = uint64(m.env.SMPProcessorID())
	case HelperGetPrandomU32:
		m.regs[R0] = uint64(m.env.PrandomU32())
	case HelperMapLookupElem:
		mp, err := m.mapArg(m.regs[R1])
		if err != nil {
			return err
		}
		key, err := m.readBytes(m.regs[R2], int64(mp.KeySize()))
		if err != nil {
			return err
		}
		val, ok := mp.Lookup(key)
		if !ok {
			m.regs[R0] = 0
			break
		}
		m.regions = append(m.regions, val)
		m.regs[R0] = m.ptr(len(m.regions)-1, 0)
	case HelperMapUpdateElem:
		mp, err := m.mapArg(m.regs[R1])
		if err != nil {
			return err
		}
		key, err := m.readBytes(m.regs[R2], int64(mp.KeySize()))
		if err != nil {
			return err
		}
		val, err := m.readBytes(m.regs[R3], int64(mp.ValueSize()))
		if err != nil {
			return err
		}
		if err := mp.Update(key, val, m.regs[R4]); err != nil {
			m.regs[R0] = ^uint64(0)
		} else {
			m.regs[R0] = 0
		}
	case HelperMapDeleteElem:
		mp, err := m.mapArg(m.regs[R1])
		if err != nil {
			return err
		}
		key, err := m.readBytes(m.regs[R2], int64(mp.KeySize()))
		if err != nil {
			return err
		}
		if err := mp.Delete(key); err != nil {
			m.regs[R0] = ^uint64(0)
		} else {
			m.regs[R0] = 0
		}
	case HelperPerfEventOutput:
		// Pass a view of VM memory straight to the sink — no copy, no
		// allocation. The Env contract makes the slice call-scoped, so
		// recycling this vm (vmPool) cannot corrupt retained records.
		n := int64(m.regs[R4])
		mem, off, err := m.resolve(m.regs[R3], n)
		if err != nil {
			return err
		}
		data := mem[off : off+n]
		m.stats.PerfBytes += len(data)
		if m.env.PerfEventOutput(data) {
			m.regs[R0] = 0
		} else {
			m.regs[R0] = ^uint64(0) - 104 // -ENOBUFS
		}
	case HelperTracePrintk:
		n := int64(m.regs[R2])
		data, err := m.readBytes(m.regs[R1], n)
		if err != nil {
			return err
		}
		m.env.TracePrintk(string(data))
		m.regs[R0] = uint64(len(data))
	case HelperMapIncElem:
		mp, err := m.mapArg(m.regs[R1])
		if err != nil {
			return err
		}
		ks := int64(mp.KeySize())
		mem, off, err := m.resolve(m.regs[R2], ks)
		if err != nil {
			return err
		}
		// The key slice aliases VM memory; Inc reads it within the call
		// and never retains it, so no copy is needed.
		if m.mapInc(mp, mem[off:off+ks], int64(m.regs[R4]), m.regs[R3]) {
			m.regs[R0] = 0
		} else {
			m.regs[R0] = ^uint64(0)
		}
	case HelperHistObserve:
		mp, err := m.mapArg(m.regs[R1])
		if err != nil {
			return err
		}
		b := histBucket(m.regs[R2], mp.MaxEntries())
		if m.histInc(mp, b) {
			m.regs[R0] = uint64(b)
		} else {
			m.regs[R0] = ^uint64(0)
		}
	default:
		return fmt.Errorf("%w: id %d", ErrBadHelper, id)
	}
	// Caller-saved registers are clobbered; poison them so verified
	// programs cannot rely on stale values surviving a call.
	for r := R1; r <= R5; r++ {
		m.regs[r] = 0xdead_beef_dead_beef
	}
	return nil
}

// histBucket maps a sample to its log2 bucket: bucket 0 holds zero,
// bucket b >= 1 holds [2^(b-1), 2^b), and the map's last slot absorbs
// everything beyond it. Every execution tier routes through this one
// function so the tiers cannot disagree on bucket boundaries.
func histBucket(v uint64, maxEntries int) int {
	b := bits.Len64(v)
	if b >= maxEntries {
		b = maxEntries - 1
	}
	return b
}

// mapInc dispatches the map_inc_elem fast path per map type. The per-CPU
// form indexes the executing CPU's slots directly — no shared current-CPU
// state — so concurrent probes on different simulated CPUs never contend.
func (m *vm) mapInc(mp Map, key []byte, off int64, delta uint64) bool {
	switch t := mp.(type) {
	case *HashMap:
		return t.Inc(key, off, delta)
	case *ArrayMap:
		idx, ok := t.index(key)
		if !ok {
			return false
		}
		return t.IncSlot(idx, off, delta)
	case *PerCPUArray:
		idx, ok := t.index(key)
		if !ok {
			return false
		}
		return t.IncSlotCPU(idx, int(m.env.SMPProcessorID()), off, delta)
	}
	return false
}

// histInc bumps histogram bucket b by one.
func (m *vm) histInc(mp Map, b int) bool {
	switch t := mp.(type) {
	case *ArrayMap:
		return t.IncSlot(b, 0, 1)
	case *PerCPUArray:
		return t.IncSlotCPU(b, int(m.env.SMPProcessorID()), 0, 1)
	case *HashMap:
		var key [4]byte
		binary.LittleEndian.PutUint32(key[:], uint32(b))
		return t.Inc(key[:], 0, 1)
	}
	return false
}

func (m *vm) mapArg(handle uint64) (Map, error) {
	if handle&^uint64(0xFFFF_FFFF) != mapHandleBase {
		return nil, fmt.Errorf("%w: not a map handle: %#x", ErrRuntimeMem, handle)
	}
	idx := int(uint32(handle))
	if idx < 0 || idx >= len(m.maps) {
		return nil, fmt.Errorf("%w: map index %d", ErrBadMapRef, idx)
	}
	return m.maps[idx], nil
}
