package ebpf

import (
	"fmt"
)

// ProgType declares where a program may attach; it mirrors the paper's
// Section III-B attach surface (kprobes, kretprobes, kernel tracepoints,
// network devices / raw sockets).
type ProgType int

// Program types.
const (
	ProgTypeKprobe ProgType = iota + 1
	ProgTypeKretprobe
	ProgTypeTracepoint
	ProgTypeSocketFilter
)

func (t ProgType) String() string {
	switch t {
	case ProgTypeKprobe:
		return "kprobe"
	case ProgTypeKretprobe:
		return "kretprobe"
	case ProgTypeTracepoint:
		return "tracepoint"
	case ProgTypeSocketFilter:
		return "socket_filter"
	}
	return fmt.Sprintf("progtype(%d)", int(t))
}

// ProgramSpec is the unverified description of an eBPF program: its
// instructions, the maps its LoadMapFD pseudo-instructions reference by
// index, and the size of the context structure it will receive.
type ProgramSpec struct {
	Name    string
	Type    ProgType
	Insns   []Insn
	Maps    []Map
	CtxSize int
}

// Program is a verified, executable program. Obtain one via Load. Programs
// execute through threaded code compiled at load time (the JIT analogue);
// RunInterpreted keeps the plain interpreter available for differential
// testing and ablation.
type Program struct {
	name    string
	typ     ProgType
	insns   []Insn
	maps    []Map
	ctxSize int
	steps   []step
}

// Load verifies the spec and returns an executable program. Instruction
// and map slices are copied, so later mutation of the spec does not affect
// the loaded program.
func Load(spec ProgramSpec) (*Program, error) {
	if spec.CtxSize <= 0 {
		return nil, fmt.Errorf("ebpf: load %q: context size must be positive, got %d", spec.Name, spec.CtxSize)
	}
	insns := make([]Insn, len(spec.Insns))
	copy(insns, spec.Insns)
	maps := make([]Map, len(spec.Maps))
	copy(maps, spec.Maps)
	if err := Verify(insns, maps, spec.CtxSize); err != nil {
		return nil, fmt.Errorf("ebpf: load %q: %w", spec.Name, err)
	}
	steps, err := compile(insns)
	if err != nil {
		return nil, fmt.Errorf("ebpf: load %q: jit: %w", spec.Name, err)
	}
	return &Program{
		name:    spec.Name,
		typ:     spec.Type,
		insns:   insns,
		maps:    maps,
		ctxSize: spec.CtxSize,
		steps:   steps,
	}, nil
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// Type returns the attach type.
func (p *Program) Type() ProgType { return p.typ }

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.insns) }

// Maps returns the program's map table. The slice is a copy; the maps
// themselves are shared, which is how userspace reads program state.
func (p *Program) Maps() []Map {
	out := make([]Map, len(p.maps))
	copy(out, p.maps)
	return out
}

// CtxSize returns the expected context size in bytes.
func (p *Program) CtxSize() int { return p.ctxSize }

// Run executes the program's threaded code over ctx with env supplying
// helpers. It returns the program's R0 and execution statistics. ctx must
// be exactly CtxSize bytes.
func (p *Program) Run(ctx []byte, env Env) (uint64, ExecStats, error) {
	if p == nil || len(p.insns) == 0 {
		return 0, ExecStats{}, ErrNotLoaded
	}
	if len(ctx) != p.ctxSize {
		return 0, ExecStats{}, fmt.Errorf("ebpf: run %q: ctx is %d bytes, want %d", p.name, len(ctx), p.ctxSize)
	}
	r0, stats, err := runCompiled(p.steps, p.maps, ctx, env)
	if err != nil {
		return 0, stats, fmt.Errorf("ebpf: run %q: %w", p.name, err)
	}
	return r0, stats, nil
}

// RunInterpreted executes the program through the plain instruction
// interpreter. Results are identical to Run; this exists for differential
// testing and for benchmarking the JIT's benefit.
func (p *Program) RunInterpreted(ctx []byte, env Env) (uint64, ExecStats, error) {
	if p == nil || len(p.insns) == 0 {
		return 0, ExecStats{}, ErrNotLoaded
	}
	if len(ctx) != p.ctxSize {
		return 0, ExecStats{}, fmt.Errorf("ebpf: run %q: ctx is %d bytes, want %d", p.name, len(ctx), p.ctxSize)
	}
	r0, stats, err := run(p.insns, p.maps, ctx, env)
	if err != nil {
		return 0, stats, fmt.Errorf("ebpf: run %q: %w", p.name, err)
	}
	return r0, stats, nil
}
