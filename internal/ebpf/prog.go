package ebpf

import (
	"fmt"
	"os"
)

// ProgType declares where a program may attach; it mirrors the paper's
// Section III-B attach surface (kprobes, kretprobes, kernel tracepoints,
// network devices / raw sockets).
type ProgType int

// Program types.
const (
	ProgTypeKprobe ProgType = iota + 1
	ProgTypeKretprobe
	ProgTypeTracepoint
	ProgTypeSocketFilter
)

func (t ProgType) String() string {
	switch t {
	case ProgTypeKprobe:
		return "kprobe"
	case ProgTypeKretprobe:
		return "kretprobe"
	case ProgTypeTracepoint:
		return "tracepoint"
	case ProgTypeSocketFilter:
		return "socket_filter"
	}
	return fmt.Sprintf("progtype(%d)", int(t))
}

// ProgramSpec is the unverified description of an eBPF program: its
// instructions, the maps its LoadMapFD pseudo-instructions reference by
// index, and the size of the context structure it will receive.
type ProgramSpec struct {
	Name    string
	Type    ProgType
	Insns   []Insn
	Maps    []Map
	CtxSize int
}

// Tier identifies an execution engine for a loaded program.
type Tier uint8

// Execution tiers, from slowest to fastest. Every loaded program can run
// on the interpreter and the threaded tier; the optimized tier exists only
// when lowering through the IR succeeded (it does for all verifier-accepted
// programs, but Load degrades gracefully rather than failing).
const (
	TierInterpreter Tier = iota
	TierThreaded
	TierOptimized
)

func (t Tier) String() string {
	switch t {
	case TierInterpreter:
		return "interpreter"
	case TierThreaded:
		return "threaded"
	case TierOptimized:
		return "optimized"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// tierEnvVar forces Program.Run onto a specific tier for debugging and
// ablation: "interp", "threaded", or "opt". Unknown values are ignored;
// forcing "opt" on a program whose lowering failed keeps the threaded
// tier.
const tierEnvVar = "VNT_EBPF_TIER"

// Program is a verified, executable program. Obtain one via Load. Run
// dispatches to the fastest available tier (see Tier); RunInterpreted,
// RunThreaded, and RunOptimized pin a specific engine for differential
// testing and ablation.
type Program struct {
	name    string
	typ     ProgType
	insns   []Insn
	maps    []Map
	ctxSize int
	steps   []step
	opt     *optProg
	tier    Tier
}

// Load verifies the spec and returns an executable program. Instruction
// and map slices are copied, so later mutation of the spec does not affect
// the loaded program. Alongside the threaded code, Load lowers the program
// through the optimizing IR using the facts the verifier proved; if any
// stage declines, the program silently keeps the threaded tier.
func Load(spec ProgramSpec) (*Program, error) {
	if spec.CtxSize <= 0 {
		return nil, fmt.Errorf("ebpf: load %q: context size must be positive, got %d", spec.Name, spec.CtxSize)
	}
	insns := make([]Insn, len(spec.Insns))
	copy(insns, spec.Insns)
	maps := make([]Map, len(spec.Maps))
	copy(maps, spec.Maps)
	facts, err := verifyProgram(insns, maps, spec.CtxSize)
	if err != nil {
		return nil, fmt.Errorf("ebpf: load %q: %w", spec.Name, err)
	}
	steps, err := compile(insns)
	if err != nil {
		return nil, fmt.Errorf("ebpf: load %q: jit: %w", spec.Name, err)
	}
	p := &Program{
		name:    spec.Name,
		typ:     spec.Type,
		insns:   insns,
		maps:    maps,
		ctxSize: spec.CtxSize,
		steps:   steps,
		tier:    TierThreaded,
	}
	if ir, err := lowerProgram(insns, maps, facts); err == nil {
		optimize(ir)
		if opt, err := emitProgram(ir); err == nil {
			p.opt = opt
			p.tier = TierOptimized
		}
	}
	switch os.Getenv(tierEnvVar) {
	case "interp", "interpreter":
		p.tier = TierInterpreter
	case "threaded", "jit":
		p.tier = TierThreaded
	case "opt", "optimized":
		if p.opt != nil {
			p.tier = TierOptimized
		}
	}
	return p, nil
}

// Name returns the program name.
func (p *Program) Name() string { return p.name }

// Type returns the attach type.
func (p *Program) Type() ProgType { return p.typ }

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.insns) }

// Maps returns the program's map table. The slice is a copy; the maps
// themselves are shared, which is how userspace reads program state.
func (p *Program) Maps() []Map {
	out := make([]Map, len(p.maps))
	copy(out, p.maps)
	return out
}

// CtxSize returns the expected context size in bytes.
func (p *Program) CtxSize() int { return p.ctxSize }

// Tier reports the engine Run dispatches to.
func (p *Program) Tier() Tier {
	if p == nil {
		return TierInterpreter
	}
	return p.tier
}

func (p *Program) checkRun(ctx []byte) error {
	if p == nil || len(p.insns) == 0 {
		return ErrNotLoaded
	}
	if len(ctx) != p.ctxSize {
		return fmt.Errorf("ebpf: run %q: ctx is %d bytes, want %d", p.name, len(ctx), p.ctxSize)
	}
	return nil
}

// Run executes the program on its selected tier over ctx with env
// supplying helpers. It returns the program's R0 and execution
// statistics. ctx must be exactly CtxSize bytes. All tiers produce
// bit-identical results (enforced by differential property and fuzz
// tests); the tier only changes execution cost.
func (p *Program) Run(ctx []byte, env Env) (uint64, ExecStats, error) {
	if err := p.checkRun(ctx); err != nil {
		return 0, ExecStats{}, err
	}
	var (
		r0    uint64
		stats ExecStats
		err   error
	)
	switch {
	case p.tier == TierOptimized && p.opt != nil:
		r0, stats, err = runOptimized(p.opt, p.maps, ctx, env)
	case p.tier == TierInterpreter:
		r0, stats, err = run(p.insns, p.maps, ctx, env)
	default:
		r0, stats, err = runCompiled(p.steps, p.maps, ctx, env)
	}
	if err != nil {
		return 0, stats, fmt.Errorf("ebpf: run %q: %w", p.name, err)
	}
	return r0, stats, nil
}

// RunInterpreted executes the program through the plain instruction
// interpreter. Results are identical to Run; this exists for differential
// testing and for benchmarking the compiled tiers' benefit.
func (p *Program) RunInterpreted(ctx []byte, env Env) (uint64, ExecStats, error) {
	if err := p.checkRun(ctx); err != nil {
		return 0, ExecStats{}, err
	}
	r0, stats, err := run(p.insns, p.maps, ctx, env)
	if err != nil {
		return 0, stats, fmt.Errorf("ebpf: run %q: %w", p.name, err)
	}
	return r0, stats, nil
}

// RunThreaded executes the program through the threaded-code tier
// regardless of the selected tier.
func (p *Program) RunThreaded(ctx []byte, env Env) (uint64, ExecStats, error) {
	if err := p.checkRun(ctx); err != nil {
		return 0, ExecStats{}, err
	}
	r0, stats, err := runCompiled(p.steps, p.maps, ctx, env)
	if err != nil {
		return 0, stats, fmt.Errorf("ebpf: run %q: %w", p.name, err)
	}
	return r0, stats, nil
}

// RunOptimized executes the program through the optimized tier. It fails
// with ErrNotLoaded if lowering was declined at load time; callers doing
// differential testing should check Tier first.
func (p *Program) RunOptimized(ctx []byte, env Env) (uint64, ExecStats, error) {
	if err := p.checkRun(ctx); err != nil {
		return 0, ExecStats{}, err
	}
	if p.opt == nil {
		return 0, ExecStats{}, fmt.Errorf("%w: no optimized tier for %q", ErrNotLoaded, p.name)
	}
	r0, stats, err := runOptimized(p.opt, p.maps, ctx, env)
	if err != nil {
		return 0, stats, fmt.Errorf("ebpf: run %q: %w", p.name, err)
	}
	return r0, stats, nil
}
