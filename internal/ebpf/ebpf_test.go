package ebpf

import (
	"encoding/binary"
	"testing"
)

// testEnv is a deterministic Env for interpreter tests.
type testEnv struct {
	time    uint64
	cpu     uint32
	rand    uint32
	perf    [][]byte
	printk  []string
	perfCap int // 0 = unlimited
}

func (e *testEnv) KtimeNs() uint64        { return e.time }
func (e *testEnv) SMPProcessorID() uint32 { return e.cpu }
func (e *testEnv) PrandomU32() uint32     { e.rand++; return e.rand }
func (e *testEnv) PerfEventOutput(data []byte) bool {
	if e.perfCap > 0 && len(e.perf) >= e.perfCap {
		return false
	}
	// data is call-scoped (it aliases VM memory); retain a copy.
	e.perf = append(e.perf, append([]byte(nil), data...))
	return true
}
func (e *testEnv) TracePrintk(msg string) { e.printk = append(e.printk, msg) }

// loadAsm assembles, loads and returns a program, failing the test on error.
func loadAsm(t *testing.T, src string, maps map[string]Map, ctxSize int) *Program {
	t.Helper()
	insns, table, err := Assemble(src, maps)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	p, err := Load(ProgramSpec{Name: t.Name(), Type: ProgTypeSocketFilter, Insns: insns, Maps: table, CtxSize: ctxSize})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return p
}

func runProg(t *testing.T, p *Program, ctx []byte, env Env) uint64 {
	t.Helper()
	if env == nil {
		env = &testEnv{}
	}
	r0, _, err := p.Run(ctx, env)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return r0
}

func TestReturnConstant(t *testing.T) {
	p := loadAsm(t, `
		mov r0, 42
		exit
	`, nil, 8)
	if got := runProg(t, p, make([]byte, 8), nil); got != 42 {
		t.Fatalf("r0 = %d, want 42", got)
	}
}

func TestALUArithmetic(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want uint64
	}{
		{"add", "mov r0, 7\nadd r0, 5\nexit", 12},
		{"sub", "mov r0, 7\nsub r0, 5\nexit", 2},
		{"mul", "mov r0, 7\nmul r0, 5\nexit", 35},
		{"div", "mov r0, 35\ndiv r0, 5\nexit", 7},
		{"mod", "mov r0, 38\nmod r0, 5\nexit", 3},
		{"or", "mov r0, 0x0f\nor r0, 0xf0\nexit", 0xff},
		{"and", "mov r0, 0xff\nand r0, 0x0f\nexit", 0x0f},
		{"xor", "mov r0, 0xff\nxor r0, 0x0f\nexit", 0xf0},
		{"lsh", "mov r0, 1\nlsh r0, 8\nexit", 256},
		{"rsh", "mov r0, 256\nrsh r0, 4\nexit", 16},
		{"neg", "mov r0, 5\nneg r0\nexit", ^uint64(0) - 4},
		{"reg operand", "mov r0, 6\nmov r2, 7\nmul r0, r2\nexit", 42},
		{"sign-extended imm", "mov r0, -1\nexit", ^uint64(0)},
		{"arsh", "mov r0, -16\narsh r0, 2\nexit", ^uint64(0) - 3}, // -4
		{"mov32 truncates", "ld_imm64 r0, 0x1_0000_0001\nmov32 r0, r0\nexit", 1},
		{"add32 wraps", "ld_imm64 r0, 0xffffffff\nadd32 r0, 1\nexit", 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := loadAsm(t, tc.src, nil, 8)
			if got := runProg(t, p, make([]byte, 8), nil); got != tc.want {
				t.Fatalf("r0 = %#x, want %#x", got, tc.want)
			}
		})
	}
}

func TestDivModByZeroRegister(t *testing.T) {
	// Division by a zero register yields 0; modulo keeps the dividend
	// (kernel runtime-patching semantics).
	p := loadAsm(t, `
		mov r0, 42
		mov r2, 0
		div r0, r2
		exit
	`, nil, 8)
	if got := runProg(t, p, make([]byte, 8), nil); got != 0 {
		t.Fatalf("div by zero: r0 = %d, want 0", got)
	}
	p = loadAsm(t, `
		mov r0, 42
		mov r2, 0
		mod r0, r2
		exit
	`, nil, 8)
	if got := runProg(t, p, make([]byte, 8), nil); got != 42 {
		t.Fatalf("mod by zero: r0 = %d, want 42", got)
	}
}

func TestLoadFromContext(t *testing.T) {
	ctx := make([]byte, 16)
	binary.LittleEndian.PutUint32(ctx[4:], 0xcafe)
	binary.LittleEndian.PutUint64(ctx[8:], 0x1122334455667788)
	p := loadAsm(t, `
		ldxw r0, [r1+4]
		exit
	`, nil, 16)
	if got := runProg(t, p, ctx, nil); got != 0xcafe {
		t.Fatalf("ctx word = %#x, want 0xcafe", got)
	}
	p = loadAsm(t, `
		ldxdw r0, [r1+8]
		exit
	`, nil, 16)
	if got := runProg(t, p, ctx, nil); got != 0x1122334455667788 {
		t.Fatalf("ctx dword = %#x", got)
	}
}

func TestStackStoreLoad(t *testing.T) {
	p := loadAsm(t, `
		mov r2, 0x1234
		stxdw [r10-8], r2
		ldxdw r0, [r10-8]
		exit
	`, nil, 8)
	if got := runProg(t, p, make([]byte, 8), nil); got != 0x1234 {
		t.Fatalf("stack round-trip = %#x, want 0x1234", got)
	}
}

func TestStoreImmediateSizes(t *testing.T) {
	p := loadAsm(t, `
		stdw [r10-8], 0
		stb [r10-8], 0xab
		sth [r10-6], 0xcdef
		stw [r10-4], 0x12345678
		ldxdw r0, [r10-8]
		exit
	`, nil, 8)
	got := runProg(t, p, make([]byte, 8), nil)
	want := uint64(0x12345678)<<32 | uint64(0xcdef)<<16 | 0xab
	if got != want {
		t.Fatalf("packed stack = %#x, want %#x", got, want)
	}
}

func TestConditionalBranches(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want uint64
	}{
		{"jeq taken", "mov r2, 5\njeq r2, 5, yes\nmov r0, 0\nexit\nyes: mov r0, 1\nexit", 1},
		{"jeq not taken", "mov r2, 4\njeq r2, 5, yes\nmov r0, 0\nexit\nyes: mov r0, 1\nexit", 0},
		{"jgt unsigned", "mov r2, -1\njgt r2, 5, yes\nmov r0, 0\nexit\nyes: mov r0, 1\nexit", 1},
		{"jsgt signed", "mov r2, -1\njsgt r2, 5, yes\nmov r0, 0\nexit\nyes: mov r0, 1\nexit", 0},
		{"jlt", "mov r2, 3\njlt r2, 5, yes\nmov r0, 0\nexit\nyes: mov r0, 1\nexit", 1},
		{"jset", "mov r2, 6\njset r2, 2, yes\nmov r0, 0\nexit\nyes: mov r0, 1\nexit", 1},
		{"jne reg", "mov r2, 3\nmov r3, 4\njne r2, r3, yes\nmov r0, 0\nexit\nyes: mov r0, 1\nexit", 1},
		{"ja", "ja skip\nskip: mov r0, 9\nexit", 9},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			p := loadAsm(t, tc.src, nil, 8)
			if got := runProg(t, p, make([]byte, 8), nil); got != tc.want {
				t.Fatalf("r0 = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestKtimeHelper(t *testing.T) {
	p := loadAsm(t, `
		call ktime_get_ns
		exit
	`, nil, 8)
	env := &testEnv{time: 123456789}
	if got := runProg(t, p, make([]byte, 8), env); got != 123456789 {
		t.Fatalf("ktime = %d", got)
	}
}

func TestSmpProcessorIDHelper(t *testing.T) {
	p := loadAsm(t, `
		call get_smp_processor_id
		exit
	`, nil, 8)
	env := &testEnv{cpu: 7}
	if got := runProg(t, p, make([]byte, 8), env); got != 7 {
		t.Fatalf("cpu = %d, want 7", got)
	}
}

func TestPerfEventOutput(t *testing.T) {
	// Store the timestamp and packet length on the stack and emit them.
	// The context pointer is saved in callee-saved r6 across helper calls,
	// as in real eBPF programs.
	p := loadAsm(t, `
		mov r6, r1
		call ktime_get_ns
		stxdw [r10-16], r0
		ldxw r2, [r6+0]
		stxdw [r10-8], r2
		mov r1, r6
		mov r2, 0
		mov r3, r10
		add r3, -16
		mov r4, 16
		call perf_event_output
		exit
	`, nil, 8)
	ctx := make([]byte, 8)
	binary.LittleEndian.PutUint32(ctx, 1500)
	env := &testEnv{time: 42}
	if got := runProg(t, p, ctx, env); got != 0 {
		t.Fatalf("perf_event_output returned %d", int64(got))
	}
	if len(env.perf) != 1 || len(env.perf[0]) != 16 {
		t.Fatalf("perf records = %v", env.perf)
	}
	if ts := binary.LittleEndian.Uint64(env.perf[0]); ts != 42 {
		t.Fatalf("record ts = %d", ts)
	}
	if l := binary.LittleEndian.Uint64(env.perf[0][8:]); l != 1500 {
		t.Fatalf("record len = %d", l)
	}
}

func TestPerfEventOutputDropReturnsENOBUFS(t *testing.T) {
	p := loadAsm(t, `
		stdw [r10-8], 1
		mov r2, 0
		mov r3, r10
		add r3, -8
		mov r4, 8
		call perf_event_output
		exit
	`, nil, 8)
	env := &testEnv{perfCap: -1}
	env.perfCap = 0 // unlimited per our helper; set cap explicitly below
	env = &testEnv{perfCap: 1}
	env.perf = append(env.perf, []byte{0}) // already full
	got := runProg(t, p, make([]byte, 8), env)
	if int64(got) != -105 {
		t.Fatalf("r0 = %d, want -105 (ENOBUFS)", int64(got))
	}
}

func TestTracePrintk(t *testing.T) {
	// "hi" = 0x68 0x69
	p := loadAsm(t, `
		sth [r10-8], 0x6968
		mov r1, r10
		add r1, -8
		mov r2, 2
		call trace_printk
		mov r0, 0
		exit
	`, nil, 8)
	env := &testEnv{}
	runProg(t, p, make([]byte, 8), env)
	if len(env.printk) != 1 || env.printk[0] != "hi" {
		t.Fatalf("printk = %q", env.printk)
	}
}

func TestHashMapThroughProgram(t *testing.T) {
	m, err := NewHashMap(4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	maps := map[string]Map{"counts": m}
	// Count invocations keyed by ctx[0:4].
	p := loadAsm(t, `
		ldxw r2, [r1+0]
		stxw [r10-4], r2
		ld_map_fd r1, counts
		mov r2, r10
		add r2, -4
		call map_lookup_elem
		jne r0, 0, found
		; not found: insert 1
		stdw [r10-16], 1
		ld_map_fd r1, counts
		mov r2, r10
		add r2, -4
		mov r3, r10
		add r3, -16
		mov r4, 0
		call map_update_elem
		mov r0, 0
		exit
	found:
		ldxdw r3, [r0+0]
		add r3, 1
		stxdw [r0+0], r3
		mov r0, 1
		exit
	`, maps, 8)
	ctx := make([]byte, 8)
	binary.LittleEndian.PutUint32(ctx, 99)
	env := &testEnv{}
	for i := 0; i < 5; i++ {
		runProg(t, p, ctx, env)
	}
	key := []byte{99, 0, 0, 0}
	v, ok := m.Lookup(key)
	if !ok {
		t.Fatal("key missing after program runs")
	}
	if got := binary.LittleEndian.Uint64(v); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
}

func TestMapDeleteThroughProgram(t *testing.T) {
	m, err := NewHashMap(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update([]byte{1, 0, 0, 0}, make([]byte, 8), UpdateAny); err != nil {
		t.Fatal(err)
	}
	p := loadAsm(t, `
		stw [r10-4], 1
		ld_map_fd r1, m
		mov r2, r10
		add r2, -4
		call map_delete_elem
		exit
	`, map[string]Map{"m": m}, 8)
	if got := runProg(t, p, make([]byte, 8), nil); got != 0 {
		t.Fatalf("delete returned %d", int64(got))
	}
	if m.Len() != 0 {
		t.Fatalf("map has %d entries after delete", m.Len())
	}
}

func TestPerCPUArrayThroughProgram(t *testing.T) {
	m, err := NewPerCPUArray(8, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := loadAsm(t, `
		stw [r10-4], 0
		ld_map_fd r1, percpu
		mov r2, r10
		add r2, -4
		call map_lookup_elem
		jeq r0, 0, out
		ldxdw r2, [r0+0]
		add r2, 1
		stxdw [r0+0], r2
	out:
		mov r0, 0
		exit
	`, map[string]Map{"percpu": m}, 8)
	// Run 3 times on CPU 1, twice on CPU 2.
	for i := 0; i < 3; i++ {
		runProg(t, p, make([]byte, 8), &testEnv{cpu: 1})
	}
	for i := 0; i < 2; i++ {
		runProg(t, p, make([]byte, 8), &testEnv{cpu: 2})
	}
	key := []byte{0, 0, 0, 0}
	v1, _ := m.LookupCPU(key, 1)
	v2, _ := m.LookupCPU(key, 2)
	v0, _ := m.LookupCPU(key, 0)
	if binary.LittleEndian.Uint64(v1) != 3 {
		t.Errorf("cpu1 = %d, want 3", binary.LittleEndian.Uint64(v1))
	}
	if binary.LittleEndian.Uint64(v2) != 2 {
		t.Errorf("cpu2 = %d, want 2", binary.LittleEndian.Uint64(v2))
	}
	if binary.LittleEndian.Uint64(v0) != 0 {
		t.Errorf("cpu0 = %d, want 0", binary.LittleEndian.Uint64(v0))
	}
}

func TestLdImm64(t *testing.T) {
	p := loadAsm(t, `
		ld_imm64 r0, 0x1122334455667788
		exit
	`, nil, 8)
	if got := runProg(t, p, make([]byte, 8), nil); got != 0x1122334455667788 {
		t.Fatalf("imm64 = %#x", got)
	}
}

func TestHelperClobbersCallerSaved(t *testing.T) {
	// A program relying on r2 surviving a helper call must not read a
	// stale value; the interpreter poisons r1-r5.
	insns := []Insn{
		Mov64Imm(R2, 77),
		Call(HelperKtimeGetNs),
		Mov64Reg(R0, R2),
		Exit(),
	}
	// Verifier must reject the read of a clobbered register.
	err := Verify(insns, nil, 8)
	if err == nil {
		t.Fatal("verifier accepted read of clobbered register")
	}
}

func TestRunCtxSizeMismatch(t *testing.T) {
	p := loadAsm(t, "mov r0, 0\nexit", nil, 16)
	if _, _, err := p.Run(make([]byte, 8), &testEnv{}); err == nil {
		t.Fatal("expected ctx size mismatch error")
	}
}

func TestProgramAccessors(t *testing.T) {
	m, _ := NewArrayMap(8, 1)
	p := loadAsm(t, `
		ld_map_fd r1, a
		mov r0, 0
		exit
	`, map[string]Map{"a": m}, 8)
	if p.Len() != 4 { // ld_map_fd is two slots
		t.Errorf("Len = %d, want 4", p.Len())
	}
	if p.CtxSize() != 8 {
		t.Errorf("CtxSize = %d", p.CtxSize())
	}
	got := p.Maps()
	if len(got) != 1 || got[0] != Map(m) {
		t.Errorf("Maps() = %v", got)
	}
	// Mutating the returned slice must not affect the program.
	got[0] = nil
	if p.Maps()[0] == nil {
		t.Error("Maps() exposed internal slice")
	}
}
