package ebpf

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestVerifierSoundness is the core safety property: any program the
// verifier accepts must execute without runtime memory faults or budget
// overruns, for arbitrary context contents. Random programs are drawn from
// an instruction alphabet rich enough that a useful fraction verifies.
func TestVerifierSoundness(t *testing.T) {
	const ctxSize = 64
	rng := rand.New(rand.NewSource(1))
	m, err := NewHashMap(4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	maps := []Map{m}

	accepted, tried := 0, 0
	for tried < 20000 && accepted < 500 {
		tried++
		insns := randomProgram(rng)
		if err := Verify(insns, maps, ctxSize); err != nil {
			continue
		}
		accepted++
		ctx := make([]byte, ctxSize)
		rng.Read(ctx)
		env := &testEnv{time: rng.Uint64()}
		_, _, err := run(insns, maps, ctx, env)
		if err != nil {
			t.Fatalf("verified program faulted: %v\nprogram:\n%s", err, dump(insns))
		}
	}
	if accepted < 50 {
		t.Fatalf("only %d/%d random programs verified; generator too weak for the property to bite", accepted, tried)
	}
}

func dump(insns []Insn) string {
	var b bytes.Buffer
	for i, in := range insns {
		b.WriteString(in.String())
		b.WriteByte('\n')
		_ = i
	}
	return b.String()
}

// randomProgram emits 3-20 random instructions followed by mov r0,0; exit.
func randomProgram(rng *rand.Rand) []Insn {
	n := 3 + rng.Intn(18)
	insns := make([]Insn, 0, n+2)
	regs := []Reg{R0, R1, R2, R3, R4, R5, R6, R7, R8, R9}
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0, 1: // mov imm
			insns = append(insns, Mov64Imm(regs[rng.Intn(len(regs))], int32(rng.Uint32())))
		case 2: // alu imm
			ops := []uint8{ALUAdd, ALUSub, ALUMul, ALUOr, ALUAnd, ALUXor}
			insns = append(insns, ALU64Imm(ops[rng.Intn(len(ops))], regs[rng.Intn(len(regs))], int32(rng.Uint32())))
		case 3: // alu reg
			ops := []uint8{ALUAdd, ALUSub, ALUMul, ALUOr, ALUXor}
			insns = append(insns, ALU64Reg(ops[rng.Intn(len(ops))], regs[rng.Intn(len(regs))], regs[rng.Intn(len(regs))]))
		case 4: // ctx load
			off := int16(rng.Intn(80)) // sometimes OOB: verifier should catch
			insns = append(insns, LoadMem(regs[rng.Intn(len(regs))], R1, off, SizeW))
		case 5: // stack store+load
			off := int16(-8 * (1 + rng.Intn(70))) // sometimes below -512
			r := regs[rng.Intn(len(regs))]
			insns = append(insns, StoreMem(R10, off, r, SizeDW), LoadMem(r, R10, off, SizeDW))
		case 6: // forward branch
			off := int16(rng.Intn(4))
			ops := []uint8{JmpEq, JmpNe, JmpGt, JmpLt}
			insns = append(insns, JumpImm(ops[rng.Intn(len(ops))], regs[rng.Intn(len(regs))], int32(rng.Intn(16)), off))
		case 7: // helper call
			ids := []HelperID{HelperKtimeGetNs, HelperGetSmpProcessorID, HelperGetPrandomU32}
			insns = append(insns, Call(ids[rng.Intn(len(ids))]))
		}
	}
	insns = append(insns, Mov64Imm(R0, 0), Exit())
	return insns
}

func TestHashMapQuickSemantics(t *testing.T) {
	m, err := NewHashMap(4, 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Model: a Go map of 4-byte keys to 8-byte values.
	model := make(map[string][]byte)
	f := func(key [4]byte, val [8]byte, op uint8) bool {
		k, v := key[:], val[:]
		switch op % 3 {
		case 0:
			if err := m.Update(k, v, UpdateAny); err != nil {
				return len(model) >= 1024
			}
			c := make([]byte, 8)
			copy(c, v)
			model[string(k)] = c
		case 1:
			got, ok := m.Lookup(k)
			want, wantOK := model[string(k)]
			if ok != wantOK {
				return false
			}
			if ok && !bytes.Equal(got, want) {
				return false
			}
		case 2:
			err := m.Delete(k)
			_, existed := model[string(k)]
			if existed != (err == nil) {
				return false
			}
			delete(model, string(k))
		}
		return m.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestHashMapUpdateFlags(t *testing.T) {
	m, err := NewHashMap(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	k := []byte{1, 2, 3, 4}
	v := []byte{9, 9, 9, 9}
	if err := m.Update(k, v, UpdateExist); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("UpdateExist on missing key: %v", err)
	}
	if err := m.Update(k, v, UpdateNoExist); err != nil {
		t.Fatalf("UpdateNoExist on missing key: %v", err)
	}
	if err := m.Update(k, v, UpdateNoExist); !errors.Is(err, ErrEntryExist) {
		t.Fatalf("UpdateNoExist on present key: %v", err)
	}
	if err := m.Update(k, v, UpdateExist); err != nil {
		t.Fatalf("UpdateExist on present key: %v", err)
	}
	if err := m.Update(k, v, 99); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("bad flags: %v", err)
	}
}

func TestHashMapCapacity(t *testing.T) {
	m, err := NewHashMap(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := []byte{0, 0, 0, 0}
	if err := m.Update([]byte{1, 0, 0, 0}, v, UpdateAny); err != nil {
		t.Fatal(err)
	}
	if err := m.Update([]byte{2, 0, 0, 0}, v, UpdateAny); err != nil {
		t.Fatal(err)
	}
	if err := m.Update([]byte{3, 0, 0, 0}, v, UpdateAny); !errors.Is(err, ErrMapFull) {
		t.Fatalf("third insert: %v, want ErrMapFull", err)
	}
	// Overwriting an existing key still works at capacity.
	if err := m.Update([]byte{1, 0, 0, 0}, []byte{7, 7, 7, 7}, UpdateAny); err != nil {
		t.Fatalf("overwrite at capacity: %v", err)
	}
}

func TestHashMapSizeValidation(t *testing.T) {
	m, err := NewHashMap(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update([]byte{1}, make([]byte, 8), UpdateAny); !errors.Is(err, ErrKeySize) {
		t.Fatalf("short key: %v", err)
	}
	if err := m.Update(make([]byte, 4), make([]byte, 3), UpdateAny); !errors.Is(err, ErrValueSize) {
		t.Fatalf("short value: %v", err)
	}
	if _, ok := m.Lookup([]byte{1}); ok {
		t.Fatal("lookup with wrong key size succeeded")
	}
}

func TestArrayMapBounds(t *testing.T) {
	m, err := NewArrayMap(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Lookup([]byte{4, 0, 0, 0}); ok {
		t.Fatal("lookup past max entries succeeded")
	}
	if err := m.Update([]byte{4, 0, 0, 0}, make([]byte, 8), UpdateAny); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("update OOB: %v", err)
	}
	if _, ok := m.Lookup([]byte{3, 0, 0, 0}); !ok {
		t.Fatal("all slots should pre-exist")
	}
	if m.Len() != 4 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestArrayMapLookupAliasesStorage(t *testing.T) {
	m, err := NewArrayMap(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	key := []byte{0, 0, 0, 0}
	v, _ := m.Lookup(key)
	v[0] = 0xAA // in-place mutation, as through an eBPF value pointer
	v2, _ := m.Lookup(key)
	if v2[0] != 0xAA {
		t.Fatal("lookup did not alias map storage")
	}
}

func TestForEachIsSnapshot(t *testing.T) {
	m, err := NewHashMap(4, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update([]byte{1, 0, 0, 0}, []byte{5, 0, 0, 0}, UpdateAny); err != nil {
		t.Fatal(err)
	}
	m.ForEach(func(key, value []byte) {
		value[0] = 99 // must not write through
	})
	v, _ := m.Lookup([]byte{1, 0, 0, 0})
	if v[0] != 5 {
		t.Fatal("ForEach leaked internal storage")
	}
}
