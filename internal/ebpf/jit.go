package ebpf

import (
	"fmt"
)

// This file implements the "JIT" analogue of the in-kernel eBPF JIT the
// paper credits for eBPF's low overhead (Section II: "the JIT compiling
// minimizes the execution overhead of the eBPF code"). Go cannot emit
// machine code from the standard library, so programs are compiled to
// threaded code: one pre-decoded closure per instruction, with operand
// extraction, dispatch, and jump-target resolution done once at load time
// instead of on every executed instruction. Results are bit-identical to
// the interpreter (enforced by a differential property test).

// step executes one pre-decoded instruction and returns the next pc; a
// negative pc terminates execution (progExit).
type step func(m *vm) (next int, err error)

const progExit = -1

// compile translates verified instructions into threaded code. The
// returned slice is indexed by instruction slot; the second slot of a wide
// instruction holds a filler that reports an internal error (the verifier
// guarantees it is never a jump target).
func compile(insns []Insn) ([]step, error) {
	steps := make([]step, len(insns))
	for i := 0; i < len(insns); i++ {
		in := insns[i]
		pc := i
		switch {
		case in.IsWide():
			if pc+1 >= len(insns) {
				return nil, fmt.Errorf("%w: truncated wide insn", ErrBadWideInsn)
			}
			dst := in.Dst
			var v uint64
			if in.Src == PseudoMapFD {
				v = mapHandleBase | uint64(uint32(in.Imm))
			} else {
				v = uint64(uint32(insns[pc+1].Imm))<<32 | uint64(uint32(in.Imm))
			}
			next := pc + 2
			steps[pc] = func(m *vm) (int, error) {
				m.regs[dst] = v
				return next, nil
			}
			steps[pc+1] = func(m *vm) (int, error) {
				return progExit, fmt.Errorf("%w: executed second slot of wide insn", ErrRuntimeMem)
			}
			i++ // skip the filler slot

		case in.Class() == ClassALU64 || in.Class() == ClassALU:
			steps[pc] = compileALU(in, pc+1)

		case in.Class() == ClassLDX:
			size := sizeBytes(in.Op & 0x18)
			dst, src, off, next := in.Dst, in.Src, int64(in.Off), pc+1
			steps[pc] = func(m *vm) (int, error) {
				v, err := m.load(m.regs[src]+uint64(off), size)
				if err != nil {
					return progExit, err
				}
				m.regs[dst] = v
				return next, nil
			}

		case in.Class() == ClassSTX:
			size := sizeBytes(in.Op & 0x18)
			dst, src, off, next := in.Dst, in.Src, int64(in.Off), pc+1
			steps[pc] = func(m *vm) (int, error) {
				if err := m.store(m.regs[dst]+uint64(off), size, m.regs[src]); err != nil {
					return progExit, err
				}
				return next, nil
			}

		case in.Class() == ClassST:
			size := sizeBytes(in.Op & 0x18)
			dst, off, v, next := in.Dst, int64(in.Off), uint64(int64(in.Imm)), pc+1
			steps[pc] = func(m *vm) (int, error) {
				if err := m.store(m.regs[dst]+uint64(off), size, v); err != nil {
					return progExit, err
				}
				return next, nil
			}

		case in.Class() == ClassJMP || in.Class() == ClassJMP32:
			op := in.Op & 0xf0
			switch op {
			case JmpExit:
				steps[pc] = func(m *vm) (int, error) { return progExit, nil }
			case JmpCall:
				id := HelperID(in.Imm)
				next := pc + 1
				steps[pc] = func(m *vm) (int, error) {
					if err := m.call(id); err != nil {
						return progExit, err
					}
					return next, nil
				}
			case JmpA:
				target := pc + 1 + int(in.Off)
				steps[pc] = func(m *vm) (int, error) { return target, nil }
			default:
				steps[pc] = compileBranch(in, pc)
			}

		default:
			return nil, fmt.Errorf("%w: op=%#x at %d", ErrBadOpcode, in.Op, pc)
		}
	}
	return steps, nil
}

// compileALU pre-decodes an ALU instruction.
func compileALU(in Insn, next int) step {
	op := in.Op & 0xf0
	is64 := in.Class() == ClassALU64
	dst := in.Dst
	useReg := in.Op&0x08 == SrcX
	src := in.Src
	imm := uint64(int64(in.Imm))
	return func(m *vm) (int, error) {
		s := imm
		if useReg {
			s = m.regs[src]
		}
		d := m.regs[dst]
		if !is64 {
			s = uint64(uint32(s))
			d = uint64(uint32(d))
		}
		res, err := aluOp(op, d, s, is64)
		if err != nil {
			return progExit, err
		}
		if !is64 {
			res = uint64(uint32(res))
		}
		m.regs[dst] = res
		return next, nil
	}
}

// compileBranch pre-decodes a conditional jump.
func compileBranch(in Insn, pc int) step {
	op := in.Op & 0xf0
	is64 := in.Class() == ClassJMP
	dst := in.Dst
	useReg := in.Op&0x08 == SrcX
	src := in.Src
	imm := uint64(int64(in.Imm))
	taken := pc + 1 + int(in.Off)
	fall := pc + 1
	return func(m *vm) (int, error) {
		s := imm
		if useReg {
			s = m.regs[src]
		}
		d := m.regs[dst]
		if !is64 {
			s = uint64(uint32(s))
			d = uint64(uint32(d))
		}
		take, err := jmpCond(op, d, s, is64)
		if err != nil {
			return progExit, err
		}
		if take {
			return taken, nil
		}
		return fall, nil
	}
}

// runCompiled executes threaded code over ctx.
func runCompiled(steps []step, maps []Map, ctx []byte, env Env) (uint64, ExecStats, error) {
	m := getVM(maps, ctx, env)
	defer putVM(m)

	pc := 0
	for {
		if pc < 0 || pc >= len(steps) {
			return 0, m.stats, fmt.Errorf("%w: pc=%d", ErrRuntimeMem, pc)
		}
		m.stats.Insns++
		if m.stats.Insns > MaxInsns+2 {
			return 0, m.stats, ErrRuntimeSteps
		}
		next, err := steps[pc](m)
		if err != nil {
			return 0, m.stats, fmt.Errorf("%w at insn %d", err, pc)
		}
		if next == progExit {
			return m.regs[R0], m.stats, nil
		}
		pc = next
	}
}
