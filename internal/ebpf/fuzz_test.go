package ebpf_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"

	"vnettracer/internal/core"
	"vnettracer/internal/ebpf"
	"vnettracer/internal/kernel"
	"vnettracer/internal/script"
	"vnettracer/internal/vnet"
)

// maxFuzzInsns caps decoded program length: long garbage programs only
// slow exploration without reaching new verifier states.
const maxFuzzInsns = 512

// insnsFromBytes decodes 8-byte chunks into instructions, mirroring the
// kernel's bpf_insn layout closely enough that byte-level mutation
// explores opcodes, registers (including out-of-range ones — the upper
// nibbles reach 15), offsets, and immediates.
func insnsFromBytes(data []byte) []ebpf.Insn {
	n := len(data) / 8
	if n > maxFuzzInsns {
		n = maxFuzzInsns
	}
	out := make([]ebpf.Insn, n)
	for i := range out {
		d := data[i*8:]
		out[i] = ebpf.Insn{
			Op:  d[0],
			Dst: ebpf.Reg(d[1] & 0x0f),
			Src: ebpf.Reg(d[1] >> 4),
			Off: int16(binary.LittleEndian.Uint16(d[2:4])),
			Imm: int32(binary.LittleEndian.Uint32(d[4:8])),
		}
	}
	return out
}

func insnsToBytes(insns []ebpf.Insn) []byte {
	out := make([]byte, len(insns)*8)
	for i, ins := range insns {
		d := out[i*8:]
		d[0] = ins.Op
		d[1] = byte(ins.Dst&0x0f) | byte(ins.Src)<<4
		binary.LittleEndian.PutUint16(d[2:4], uint16(ins.Off))
		binary.LittleEndian.PutUint32(d[4:8], uint32(ins.Imm))
	}
	return out
}

func fuzzMaps(t *testing.T) []ebpf.Map {
	t.Helper()
	h, err := ebpf.NewHashMap(4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ebpf.NewArrayMap(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ebpf.NewPerCPUArray(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []ebpf.Map{h, a, p}
}

// fuzzEnv is a deterministic helper environment that records every
// observable side channel (perf stream, printk log): the execution
// engines must observe identical helper results and produce identical
// side effects for the differential check to be meaningful.
type fuzzEnv struct {
	ktime  uint64
	prand  uint32
	perf   []string
	printk []string
}

func (e *fuzzEnv) KtimeNs() uint64 { e.ktime += 1000; return e.ktime }

func (e *fuzzEnv) SMPProcessorID() uint32 { return 1 }

func (e *fuzzEnv) PrandomU32() uint32 { e.prand = e.prand*1664525 + 1013904223; return e.prand }

func (e *fuzzEnv) PerfEventOutput(data []byte) bool {
	// data may alias VM stack memory reused after the call; copy it.
	e.perf = append(e.perf, string(data))
	return true
}

func (e *fuzzEnv) TracePrintk(msg string) { e.printk = append(e.printk, msg) }

// fuzzSentinels are the error identities the engines must agree on.
// Comparing through errors.Is (rather than error presence or message
// text) is deliberate: it catches wrapping regressions where a tier
// breaks the chain with %v/%s and callers lose errors.Is matching.
var fuzzSentinels = []error{
	ebpf.ErrRuntimeMem,
	ebpf.ErrRuntimeSteps,
	ebpf.ErrBadOpcode,
	ebpf.ErrBadHelper,
	ebpf.ErrBadMapRef,
	ebpf.ErrNotLoaded,
}

// errIdentity classifies an error by which sentinel it wraps.
func errIdentity(err error) string {
	if err == nil {
		return "<nil>"
	}
	for _, s := range fuzzSentinels {
		if errors.Is(err, s) {
			return s.Error()
		}
	}
	return "<unclassified>"
}

// tierResult captures everything observable about one execution: the
// result register, execution statistics, error identity, final map
// contents, and the perf/printk side-effect streams.
type tierResult struct {
	r0     uint64
	stats  ebpf.ExecStats
	err    error
	maps   []string
	perf   []string
	printk []string
}

// dumpMaps renders final map state as sorted strings so deep comparison
// is order-independent.
func dumpMaps(maps []ebpf.Map) []string {
	var out []string
	for i, m := range maps {
		m.ForEach(func(k, v []byte) {
			out = append(out, fmt.Sprintf("map%d %x=%x", i, k, v))
		})
	}
	sort.Strings(out)
	return out
}

// runTier loads the program against fresh maps and executes it on one
// engine with a fresh deterministic env, so no state leaks between
// engines.
func runTier(t *testing.T, insns []ebpf.Insn, tier ebpf.Tier) tierResult {
	t.Helper()
	maps := fuzzMaps(t)
	prog, err := ebpf.Load(ebpf.ProgramSpec{
		Name:    "fuzz",
		Type:    ebpf.ProgTypeKprobe,
		Insns:   insns,
		Maps:    maps,
		CtxSize: core.CtxSize,
	})
	if err != nil {
		t.Fatalf("Verify accepted but Load rejected: %v", err)
	}
	if prog.Tier() != ebpf.TierOptimized {
		// Every verifier-accepted program must lower: the conditions that
		// abort lowering (back edges, bad targets, unknown opcodes) are
		// all verifier rejections too.
		t.Fatalf("verifier accepted but optimized lowering declined (tier %v)", prog.Tier())
	}
	env := &fuzzEnv{}
	ctx := make([]byte, core.CtxSize)
	var res tierResult
	switch tier {
	case ebpf.TierInterpreter:
		res.r0, res.stats, res.err = prog.RunInterpreted(ctx, env)
	case ebpf.TierThreaded:
		res.r0, res.stats, res.err = prog.RunThreaded(ctx, env)
	case ebpf.TierOptimized:
		res.r0, res.stats, res.err = prog.RunOptimized(ctx, env)
	}
	res.maps = dumpMaps(maps)
	res.perf = env.perf
	res.printk = env.printk
	return res
}

// seedScript compiles a script spec into seed bytes, failing loudly so a
// compiler regression cannot silently drop fuzz coverage.
func seedScript(f *testing.F, spec script.Spec) []byte {
	f.Helper()
	insns, _, err := script.CompileToInsns(spec)
	if err != nil {
		f.Fatalf("compile seed script %q: %v", spec.Name, err)
	}
	return insnsToBytes(insns)
}

// FuzzVerifyProgram throws arbitrary instruction streams at the
// verifier. The verifier must reject malformed programs with an error —
// never panic, regardless of opcode garbage, out-of-range registers, or
// wild jump offsets. Programs it accepts are its soundness claim, so
// they then execute as a three-way differential oracle across all
// execution tiers (interpreter, threaded code, optimized closures):
// every tier must produce the same R0, the same execution statistics,
// the same error identity under errors.Is, and identical side effects
// (final map contents, perf event stream, printk log). Any divergence
// is a miscompile in one of the tiers.
func FuzzVerifyProgram(f *testing.F) {
	// Seed with real accepted programs: the trivial return, compiled
	// scripts (the production codepath, covering the record fast path and
	// the map-backed count/cpuhist actions), and small map/helper/branch
	// exercises — plus near-miss mutations the verifier must reject.
	f.Add(insnsToBytes([]ebpf.Insn{
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	}))
	f.Add(seedScript(f, script.Spec{
		Name:    "fuzzseed",
		TPID:    7,
		Attach:  core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg},
		Filter:  script.Filter{Proto: vnet.ProtoUDP},
		Actions: []script.Action{script.ActionRecord},
	}))
	f.Add(seedScript(f, script.Spec{
		Name:    "fuzzseed-count",
		TPID:    9,
		Attach:  core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg},
		Filter:  script.Filter{Proto: vnet.ProtoUDP, DstPort: 9000},
		Actions: []script.Action{script.ActionCount, script.ActionCPUHist},
	}))
	f.Add(seedScript(f, script.Spec{
		Name:    "fuzzseed-agg",
		TPID:    11,
		Attach:  core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg},
		Filter:  script.Filter{Proto: vnet.ProtoUDP},
		Actions: []script.Action{script.ActionCount, script.ActionCPUHist, script.ActionHist, script.ActionFlowCount},
	}))
	// Aggregation fast-path helpers, hand-built: map_inc_elem fetch-adds a
	// delta into map0's 8-byte lane, then hist_observe buckets a sample
	// into the same map. Both leave map state for the side-effect diff,
	// and mutations explore the offset/delta geometry the verifier gates.
	aggFD := ebpf.LoadMapFD(ebpf.R1, 0)
	aggSeed := []ebpf.Insn{
		ebpf.StoreImm(ebpf.R10, -4, 3, ebpf.SizeW), // key = 3
	}
	aggSeed = append(aggSeed, aggFD[:]...)
	aggSeed = append(aggSeed,
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
		ebpf.Mov64Imm(ebpf.R3, 5), // delta
		ebpf.Mov64Imm(ebpf.R4, 0), // lane offset
		ebpf.Call(ebpf.HelperMapIncElem),
	)
	aggSeed = append(aggSeed, aggFD[:]...)
	aggSeed = append(aggSeed,
		ebpf.Mov64Imm(ebpf.R2, 777), // sample -> log2 bucket
		ebpf.Call(ebpf.HelperHistObserve),
		ebpf.Exit(),
	)
	f.Add(insnsToBytes(aggSeed))
	// Near miss the verifier must reject: the 8-byte counter lane at
	// offset 4 overhangs map0's 8-byte value.
	oobSeed := []ebpf.Insn{
		ebpf.StoreImm(ebpf.R10, -4, 3, ebpf.SizeW),
	}
	oobSeed = append(oobSeed, aggFD[:]...)
	oobSeed = append(oobSeed,
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
		ebpf.Mov64Imm(ebpf.R3, 1),
		ebpf.Mov64Imm(ebpf.R4, 4),
		ebpf.Call(ebpf.HelperMapIncElem),
		ebpf.Exit(),
	)
	f.Add(insnsToBytes(oobSeed))
	f.Add(insnsToBytes([]ebpf.Insn{ // ctx load + ALU + helper call
		ebpf.LoadMem(ebpf.R1, ebpf.R1, 0, ebpf.SizeW),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R0, 7),
		ebpf.Call(ebpf.HelperKtimeGetNs),
		ebpf.Exit(),
	}))
	// Hash map round trip: update, look the value back up, delete. Leaves
	// helper-driven map state behind for the side-effect comparison.
	mapFD := ebpf.LoadMapFD(ebpf.R1, 0)
	mapSeed := []ebpf.Insn{
		ebpf.StoreImm(ebpf.R10, -4, 7, ebpf.SizeW),    // key = 7
		ebpf.StoreImm(ebpf.R10, -12, 99, ebpf.SizeDW), // value = 99
	}
	mapSeed = append(mapSeed, mapFD[:]...)
	mapSeed = append(mapSeed,
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
		ebpf.Mov64Reg(ebpf.R3, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R3, -12),
		ebpf.Mov64Imm(ebpf.R4, 0),
		ebpf.Call(ebpf.HelperMapUpdateElem),
	)
	mapSeed = append(mapSeed, mapFD[:]...)
	mapSeed = append(mapSeed,
		ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
		ebpf.Call(ebpf.HelperMapLookupElem),
		ebpf.JumpImm(ebpf.JmpEq, ebpf.R0, 0, 1), // NULL check
		ebpf.LoadMem(ebpf.R0, ebpf.R0, 0, ebpf.SizeDW),
		ebpf.Exit(),
	)
	f.Add(insnsToBytes(mapSeed))
	// Wide immediate load plus a JMP32 comparison on its low half.
	wideImm := ebpf.LoadImm64(ebpf.R6, 0x1122334455667788)
	wideSeed := append([]ebpf.Insn{}, wideImm[:]...)
	wideSeed = append(wideSeed,
		ebpf.Mov64Reg(ebpf.R0, ebpf.R6),
		ebpf.Insn{Op: ebpf.ClassJMP32 | ebpf.JmpEq, Dst: ebpf.R0, Off: 1, Imm: 0x55667788},
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	)
	f.Add(insnsToBytes(wideSeed))
	f.Add(insnsToBytes([]ebpf.Insn{ // unterminated: must be rejected
		ebpf.Mov64Imm(ebpf.R0, 0),
	}))
	f.Add(insnsToBytes([]ebpf.Insn{ // uninitialized register read
		ebpf.Mov64Reg(ebpf.R0, ebpf.R5),
		ebpf.Exit(),
	}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		insns := insnsFromBytes(data)
		if err := ebpf.Verify(insns, fuzzMaps(t), core.CtxSize); err != nil {
			return // rejected cleanly — exactly what the verifier is for
		}
		interp := runTier(t, insns, ebpf.TierInterpreter)
		threaded := runTier(t, insns, ebpf.TierThreaded)
		opt := runTier(t, insns, ebpf.TierOptimized)
		for _, other := range []struct {
			name string
			res  tierResult
		}{{"threaded", threaded}, {"optimized", opt}} {
			if got, want := errIdentity(other.res.err), errIdentity(interp.err); got != want {
				t.Fatalf("%s disagrees on error identity: %s err=%v (%s), interp err=%v (%s)",
					other.name, other.name, other.res.err, got, interp.err, want)
			}
			if interp.err == nil {
				if other.res.r0 != interp.r0 {
					t.Fatalf("%s disagrees on r0: %#x, interp %#x", other.name, other.res.r0, interp.r0)
				}
				if other.res.stats != interp.stats {
					t.Fatalf("%s disagrees on stats: %+v, interp %+v", other.name, other.res.stats, interp.stats)
				}
			}
			if !reflect.DeepEqual(other.res.maps, interp.maps) {
				t.Fatalf("%s disagrees on final map state:\n%s: %v\ninterp: %v",
					other.name, other.name, other.res.maps, interp.maps)
			}
			if !reflect.DeepEqual(other.res.perf, interp.perf) {
				t.Fatalf("%s disagrees on perf stream:\n%s: %q\ninterp: %q",
					other.name, other.name, other.res.perf, interp.perf)
			}
			if !reflect.DeepEqual(other.res.printk, interp.printk) {
				t.Fatalf("%s disagrees on printk log:\n%s: %q\ninterp: %q",
					other.name, other.name, other.res.printk, interp.printk)
			}
		}
	})
}
