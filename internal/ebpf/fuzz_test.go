package ebpf_test

import (
	"encoding/binary"
	"testing"

	"vnettracer/internal/core"
	"vnettracer/internal/ebpf"
	"vnettracer/internal/kernel"
	"vnettracer/internal/script"
	"vnettracer/internal/vnet"
)

// maxFuzzInsns caps decoded program length: long garbage programs only
// slow exploration without reaching new verifier states.
const maxFuzzInsns = 512

// insnsFromBytes decodes 8-byte chunks into instructions, mirroring the
// kernel's bpf_insn layout closely enough that byte-level mutation
// explores opcodes, registers (including out-of-range ones — the upper
// nibbles reach 15), offsets, and immediates.
func insnsFromBytes(data []byte) []ebpf.Insn {
	n := len(data) / 8
	if n > maxFuzzInsns {
		n = maxFuzzInsns
	}
	out := make([]ebpf.Insn, n)
	for i := range out {
		d := data[i*8:]
		out[i] = ebpf.Insn{
			Op:  d[0],
			Dst: ebpf.Reg(d[1] & 0x0f),
			Src: ebpf.Reg(d[1] >> 4),
			Off: int16(binary.LittleEndian.Uint16(d[2:4])),
			Imm: int32(binary.LittleEndian.Uint32(d[4:8])),
		}
	}
	return out
}

func insnsToBytes(insns []ebpf.Insn) []byte {
	out := make([]byte, len(insns)*8)
	for i, ins := range insns {
		d := out[i*8:]
		d[0] = ins.Op
		d[1] = byte(ins.Dst&0x0f) | byte(ins.Src)<<4
		binary.LittleEndian.PutUint16(d[2:4], uint16(ins.Off))
		binary.LittleEndian.PutUint32(d[4:8], uint32(ins.Imm))
	}
	return out
}

func fuzzMaps(t *testing.T) []ebpf.Map {
	t.Helper()
	h, err := ebpf.NewHashMap(4, 8, 16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ebpf.NewArrayMap(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ebpf.NewPerCPUArray(8, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return []ebpf.Map{h, a, p}
}

// fuzzEnv is a deterministic helper environment: both execution engines
// must observe identical helper results for the differential check to be
// meaningful.
type fuzzEnv struct {
	ktime uint64
	prand uint32
}

func (e *fuzzEnv) KtimeNs() uint64 { e.ktime += 1000; return e.ktime }

func (e *fuzzEnv) SMPProcessorID() uint32 { return 1 }

func (e *fuzzEnv) PrandomU32() uint32 { e.prand = e.prand*1664525 + 1013904223; return e.prand }

func (e *fuzzEnv) PerfEventOutput(data []byte) bool { return true }

func (e *fuzzEnv) TracePrintk(msg string) {}

// FuzzVerifyProgram throws arbitrary instruction streams at the
// verifier. The verifier must reject malformed programs with an error —
// never panic, regardless of opcode garbage, out-of-range registers, or
// wild jump offsets. Programs it accepts are its soundness claim, so
// they then actually execute on both engines (threaded code and the
// interpreter) against a 64-byte ctx: execution may fail at runtime
// (division by zero, map misses), but it must not panic, and both
// engines must agree on the result — a divergence is a miscompile.
func FuzzVerifyProgram(f *testing.F) {
	// Seed with real accepted programs: the trivial return, a compiled
	// record script (the production codepath), and small map/helper
	// exercises — plus near-miss mutations the verifier must reject.
	f.Add(insnsToBytes([]ebpf.Insn{
		ebpf.Mov64Imm(ebpf.R0, 0),
		ebpf.Exit(),
	}))
	spec := script.Spec{
		Name:    "fuzzseed",
		TPID:    7,
		Attach:  core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg},
		Filter:  script.Filter{Proto: vnet.ProtoUDP},
		Actions: []script.Action{script.ActionRecord},
	}
	if insns, _, err := script.CompileToInsns(spec); err == nil {
		f.Add(insnsToBytes(insns))
	} else {
		f.Fatalf("compile seed script: %v", err)
	}
	f.Add(insnsToBytes([]ebpf.Insn{ // ctx load + ALU + helper call
		ebpf.LoadMem(ebpf.R1, ebpf.R1, 0, ebpf.SizeW),
		ebpf.Mov64Reg(ebpf.R0, ebpf.R1),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R0, 7),
		ebpf.Call(ebpf.HelperKtimeGetNs),
		ebpf.Exit(),
	}))
	f.Add(insnsToBytes([]ebpf.Insn{ // unterminated: must be rejected
		ebpf.Mov64Imm(ebpf.R0, 0),
	}))
	f.Add(insnsToBytes([]ebpf.Insn{ // uninitialized register read
		ebpf.Mov64Reg(ebpf.R0, ebpf.R5),
		ebpf.Exit(),
	}))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		insns := insnsFromBytes(data)
		if err := ebpf.Verify(insns, fuzzMaps(t), core.CtxSize); err != nil {
			return // rejected cleanly — exactly what the verifier is for
		}
		run := func(interp bool) (uint64, error) {
			prog, err := ebpf.Load(ebpf.ProgramSpec{
				Name:    "fuzz",
				Type:    ebpf.ProgTypeKprobe,
				Insns:   insns,
				Maps:    fuzzMaps(t), // fresh maps per engine: runs must not share state
				CtxSize: core.CtxSize,
			})
			if err != nil {
				t.Fatalf("Verify accepted but Load rejected: %v", err)
			}
			ctx := make([]byte, core.CtxSize)
			if interp {
				r0, _, err := prog.RunInterpreted(ctx, &fuzzEnv{})
				return r0, err
			}
			r0, _, err := prog.Run(ctx, &fuzzEnv{})
			return r0, err
		}
		r0Threaded, errThreaded := run(false)
		r0Interp, errInterp := run(true)
		if (errThreaded == nil) != (errInterp == nil) {
			t.Fatalf("engines disagree on failure: threaded err=%v, interp err=%v", errThreaded, errInterp)
		}
		if errThreaded == nil && r0Threaded != r0Interp {
			t.Fatalf("engines disagree on r0: threaded %#x, interp %#x", r0Threaded, r0Interp)
		}
	})
}
