package ebpf

import (
	"strings"
	"testing"
)

func TestAssembleAllMnemonics(t *testing.T) {
	m, err := NewHashMap(4, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	src := `
	start:
		mov   r0, 0
		mov32 r1, 5
		add   r0, 1
		sub   r0, r1
		mul   r0, 2
		div   r0, 2
		or    r0, 0x10
		and   r0, 0xff
		lsh   r0, 2
		rsh   r0, 1
		mod   r0, 7
		xor   r0, r0
		arsh  r0, 1
		neg   r0
		neg32 r0
		add32 r0, 1
		ldxb  r2, [r10-1]
		ldxh  r2, [r10-2]
		ldxw  r2, [r10-4]
		ldxdw r2, [r10-8]
		stxb  [r10-1], r0
		stxh  [r10-2], r0
		stxw  [r10-4], r0
		stxdw [r10-8], r0
		stb   [r10-1], 1
		sth   [r10-2], 2
		stw   [r10-4], 3
		stdw  [r10-8], 4
		jeq   r0, 0, fwd
	fwd:
		jne   r0, r2, fwd2
	fwd2:
		jgt   r0, 1, out
		jge   r0, 1, out
		jlt   r0, 1, out
		jle   r0, 1, out
		jsgt  r0, 1, out
		jsge  r0, 1, out
		jslt  r0, 1, out
		jsle  r0, 1, out
		jset  r0, 1, out
		ja    out
	out:
		ld_imm64  r3, 0x1122334455667788
		ld_map_fd r1, flows
		call ktime_get_ns
		call 8
		exit
	`
	insns, maps, err := Assemble(src, map[string]Map{"flows": m})
	if err != nil {
		t.Fatal(err)
	}
	if len(maps) != 1 || maps[0] != Map(m) {
		t.Fatalf("maps = %v", maps)
	}
	// Every instruction must render without the fallback formatter.
	for i, in := range insns {
		s := in.String()
		if strings.Contains(s, "insn{") {
			// Second halves of wide instructions are allowed to fall back.
			if i > 0 && insns[i-1].IsWide() {
				continue
			}
			t.Errorf("insn %d has no disassembly: %s", i, s)
		}
	}
}

func TestAssembleStoreLoadOrderPreserved(t *testing.T) {
	// stdw must parse as DW, not W (regression: suffix parsing).
	insns, _, err := Assemble("stdw [r10-8], 1\nmov r0, 0\nexit", nil)
	if err != nil {
		t.Fatal(err)
	}
	if insns[0].Op&0x18 != SizeDW {
		t.Fatalf("stdw parsed as size %#x", insns[0].Op&0x18)
	}
	insns, _, err = Assemble("ldxdw r0, [r10-8]\nexit", nil)
	if err != nil {
		t.Fatal(err)
	}
	if insns[0].Op&0x18 != SizeDW {
		t.Fatalf("ldxdw parsed as size %#x", insns[0].Op&0x18)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown mnemonic", "bogus r0, 1"},
		{"bad register", "mov r11, 1"},
		{"bad register name", "mov x0, 1"},
		{"missing operand", "mov r0"},
		{"bad immediate", "mov r0, zzz"},
		{"imm too wide", "mov r0, 0x1ffffffff"},
		{"bad memory operand", "ldxw r0, r1+4"},
		{"bad offset", "ldxw r0, [r1+zz]"},
		{"offset too wide", "ldxw r0, [r1+70000]"},
		{"unknown helper", "call not_a_helper"},
		{"unknown map", "ld_map_fd r1, ghost"},
		{"undefined label", "ja nowhere\nexit"},
		{"duplicate label", "a: mov r0, 0\na: exit"},
		{"jump needs label", "jeq r0, 1"},
		{"bad store", "stq [r10-8], 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Assemble(tc.src, nil); err == nil {
				t.Errorf("assembled %q without error", tc.src)
			}
		})
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAssemble did not panic on bad input")
		}
	}()
	MustAssemble("bogus", nil)
}

func TestCommentsAndLabelsOnOwnLines(t *testing.T) {
	insns, _, err := Assemble(`
		; leading comment
		# hash comment
		entry:
		mov r0, 0   ; trailing comment
		exit
	`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(insns) != 2 {
		t.Fatalf("insns = %d", len(insns))
	}
}

func TestJMP32UnsignedComparison(t *testing.T) {
	// 0xFFFFFFFF in the low 32 bits: JMP32 jgt treats it as large
	// unsigned; a 64-bit signed comparison would disagree.
	p := loadAsm(t, `
		ld_imm64 r2, 0xffffffff
		mov r0, 0
		jeq r2, 0, out      ; never
		mov r0, 1
	out:
		exit
	`, nil, 8)
	if got := runProg(t, p, make([]byte, 8), nil); got != 1 {
		t.Fatalf("r0 = %d", got)
	}
}

func TestInsnStringFormats(t *testing.T) {
	tests := []struct {
		in   Insn
		want string
	}{
		{Mov64Imm(R1, 5), "mov r1, 5"},
		{Mov64Reg(R1, R2), "mov r1, r2"},
		{ALU64Imm(ALUAdd, R3, -1), "add r3, -1"},
		{Insn{Op: ClassALU | SrcK | ALUAdd, Dst: R3, Imm: 2}, "add32 r3, 2"},
		{LoadMem(R1, R2, 4, SizeW), "ldxw r1, [r2+4]"},
		{StoreMem(R10, -8, R3, SizeDW), "stxdw [r10-8], r3"},
		{StoreImm(R10, -4, 7, SizeB), "stb [r10-4], 7"},
		{JumpImm(JmpEq, R1, 3, 5), "jeq r1, 3, +5"},
		{JumpReg(JmpGt, R1, R2, 2), "jgt r1, r2, +2"},
		{Ja(3), "ja +3"},
		{Call(HelperKtimeGetNs), "call 5"},
		{Exit(), "exit"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
	pair := LoadMapFD(R1, 2)
	if got := pair[0].String(); got != "ld_map_fd r1, 2" {
		t.Errorf("map fd String() = %q", got)
	}
	pair = LoadImm64(R1, 7)
	if !strings.Contains(pair[0].String(), "ld_imm64") {
		t.Errorf("imm64 String() = %q", pair[0].String())
	}
}

func TestHelperNames(t *testing.T) {
	if HelperName(HelperKtimeGetNs) != "ktime_get_ns" {
		t.Error("ktime name")
	}
	if HelperName(12345) != "" {
		t.Error("unknown helper has a name")
	}
}

func TestProgAndMapTypeStrings(t *testing.T) {
	for typ, want := range map[ProgType]string{
		ProgTypeKprobe: "kprobe", ProgTypeKretprobe: "kretprobe",
		ProgTypeTracepoint: "tracepoint", ProgTypeSocketFilter: "socket_filter",
		ProgType(99): "progtype(99)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("ProgType(%d) = %q", typ, got)
		}
	}
	for typ, want := range map[MapType]string{
		MapTypeHash: "hash", MapTypeArray: "array", MapTypePerCPUArray: "percpu_array",
		MapType(9): "maptype(9)",
	} {
		if got := typ.String(); got != want {
			t.Errorf("MapType(%d) = %q", typ, got)
		}
	}
}
