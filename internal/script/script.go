// Package script compiles vNetTracer trace specifications — filter rules
// plus actions, as the user writes them in configuration files — into eBPF
// bytecode that loads through the verifier and runs in the in-kernel VM.
// This is the paper's programmability layer: "users provide information
// such as ethernet type, source IP, destination port, etc. to generate the
// filter rules".
package script

import (
	"fmt"

	"vnettracer/internal/core"
	"vnettracer/internal/ebpf"
	"vnettracer/internal/vnet"
)

// Action is one tracing action executed when a packet matches the filter.
type Action int

// Supported actions.
const (
	// ActionRecord emits a 48-byte trace record (packet ID, tracepoint,
	// nanosecond timestamp, length, flow) to the kernel buffer — the
	// paper's "record the current system time in nanosecond".
	ActionRecord Action = iota + 1
	// ActionCount maintains packet and byte counters in an array map.
	ActionCount
	// ActionCPUHist counts invocations per CPU in a per-CPU map (case
	// study III's softirq distribution measurement).
	ActionCPUHist
)

func (a Action) String() string {
	switch a {
	case ActionRecord:
		return "record"
	case ActionCount:
		return "count"
	case ActionCPUHist:
		return "cpuhist"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Filter matches packets. Zero-valued fields match anything, following the
// paper's configuration-file semantics.
type Filter struct {
	SrcIP      vnet.IPv4 `json:"src_ip,omitempty"`
	DstIP      vnet.IPv4 `json:"dst_ip,omitempty"`
	SrcPort    uint16    `json:"src_port,omitempty"`
	DstPort    uint16    `json:"dst_port,omitempty"`
	Proto      uint8     `json:"proto,omitempty"`
	TracedOnly bool      `json:"traced_only,omitempty"`
}

// Spec is a complete trace-script specification: where to attach, what to
// match, and what to do.
type Spec struct {
	Name   string           `json:"name"`
	TPID   uint32           `json:"tp_id"`
	Attach core.AttachPoint `json:"attach"`
	Filter Filter           `json:"filter"`
	Actions []Action        `json:"actions"`
	// NumCPU sizes the per-CPU histogram map; defaults to 64.
	NumCPU int `json:"num_cpu,omitempty"`
}

// Compiled is a loaded trace script with handles to its maps for userspace
// readout.
type Compiled struct {
	Spec Spec
	Prog *ebpf.Program
	// Counters is non-nil when ActionCount is present: slot 0 = packets,
	// slot 1 = bytes.
	Counters *ebpf.ArrayMap
	// CPUHist is non-nil when ActionCPUHist is present: slot 0 counts per
	// CPU.
	CPUHist *ebpf.PerCPUArray
}

// Counter map slots.
const (
	SlotPackets = 0
	SlotBytes   = 1
)

// CompileToInsns compiles the spec to raw instructions and a map table
// without loading (verification happens in Compile / ebpf.Load). Exposed
// for verifier benchmarking and inspection tools.
func CompileToInsns(spec Spec) ([]ebpf.Insn, []ebpf.Map, error) {
	c, b, err := build(spec)
	if err != nil {
		return nil, nil, err
	}
	_ = c
	return b.Program()
}

// Compile builds, verifies and loads the spec's eBPF program.
func Compile(spec Spec) (*Compiled, error) {
	c, b, err := build(spec)
	if err != nil {
		return nil, err
	}
	insns, maps, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("script: %q: %w", spec.Name, err)
	}
	prog, err := ebpf.Load(ebpf.ProgramSpec{
		Name:    spec.Name,
		Type:    attachProgType(spec.Attach),
		Insns:   insns,
		Maps:    maps,
		CtxSize: core.CtxSize,
	})
	if err != nil {
		return nil, fmt.Errorf("script: %q: %w", spec.Name, err)
	}
	c.Prog = prog
	return c, nil
}

// build emits the spec's bytecode into a fresh builder.
func build(spec Spec) (*Compiled, *ebpf.Builder, error) {
	if len(spec.Actions) == 0 {
		return nil, nil, fmt.Errorf("script: %q: no actions", spec.Name)
	}
	if spec.NumCPU <= 0 {
		spec.NumCPU = 64
	}

	c := &Compiled{Spec: spec}
	b := ebpf.NewBuilder()

	// r6 holds the context across helper calls.
	b.Mov(ebpf.R6, ebpf.R1)

	emitFilter(b, spec.Filter)

	for _, a := range spec.Actions {
		switch a {
		case ActionRecord:
			emitRecord(b, spec.TPID)
		case ActionCount:
			if c.Counters == nil {
				m, err := ebpf.NewArrayMap(8, 2)
				if err != nil {
					return nil, nil, fmt.Errorf("script: %q: %w", spec.Name, err)
				}
				c.Counters = m
			}
			emitCount(b, c.Counters)
		case ActionCPUHist:
			if c.CPUHist == nil {
				m, err := ebpf.NewPerCPUArray(8, 1, spec.NumCPU)
				if err != nil {
					return nil, nil, fmt.Errorf("script: %q: %w", spec.Name, err)
				}
				c.CPUHist = m
			}
			emitIncrMap(b, c.CPUHist, "cpuhit")
		default:
			return nil, nil, fmt.Errorf("script: %q: unknown action %d", spec.Name, a)
		}
	}

	// Matched: r0 = 1.
	b.MovImm(ebpf.R0, 1).ExitInsn()
	// Filtered out: r0 = 0.
	b.Label("out").MovImm(ebpf.R0, 0).ExitInsn()
	return c, b, nil
}

func attachProgType(at core.AttachPoint) ebpf.ProgType {
	switch at.Kind {
	case core.AttachKProbe, core.AttachUprobe:
		return ebpf.ProgTypeKprobe
	case core.AttachKretprobe:
		return ebpf.ProgTypeKretprobe
	}
	return ebpf.ProgTypeSocketFilter
}

// emitFilter emits comparisons that fall through on match and jump to
// "out" on mismatch. JMP32 comparisons keep high-bit IPs matchable.
func emitFilter(b *ebpf.Builder, f Filter) {
	check := func(off int16, want uint32) {
		b.Load(ebpf.R2, ebpf.R6, off, ebpf.SizeW)
		b.Jump32ImmTo(ebpf.JmpNe, ebpf.R2, int32(want), "out")
	}
	if f.Proto != 0 {
		check(core.CtxIPProto, uint32(f.Proto))
	}
	if f.SrcIP != 0 {
		check(core.CtxSrcIP, uint32(f.SrcIP))
	}
	if f.DstIP != 0 {
		check(core.CtxDstIP, uint32(f.DstIP))
	}
	if f.SrcPort != 0 {
		check(core.CtxSrcPort, uint32(f.SrcPort))
	}
	if f.DstPort != 0 {
		check(core.CtxDstPort, uint32(f.DstPort))
	}
	if f.TracedOnly {
		b.Load(ebpf.R2, ebpf.R6, core.CtxTraceID, ebpf.SizeW)
		b.Jump32ImmTo(ebpf.JmpEq, ebpf.R2, 0, "out")
	}
}

// emitRecord assembles the 48-byte record on the stack at r10-48 and emits
// it through perf_event_output. Offsets match core.Record's wire format.
func emitRecord(b *ebpf.Builder, tpid uint32) {
	const base = -int16(core.RecordSize)
	copyW := func(ctxOff, recOff int16) {
		b.Load(ebpf.R2, ebpf.R6, ctxOff, ebpf.SizeW)
		b.Store(ebpf.R10, base+recOff, ebpf.R2, ebpf.SizeW)
	}
	copyDW := func(ctxOff, recOff int16) {
		b.Load(ebpf.R2, ebpf.R6, ctxOff, ebpf.SizeDW)
		b.Store(ebpf.R10, base+recOff, ebpf.R2, ebpf.SizeDW)
	}
	copyW(core.CtxTraceID, 0)
	b.MovImm(ebpf.R2, int32(tpid))
	b.Store(ebpf.R10, base+4, ebpf.R2, ebpf.SizeW)
	copyDW(core.CtxTimeNs, 8)
	copyW(core.CtxLen, 16)
	copyW(core.CtxCPU, 20)
	copyDW(core.CtxSeq, 24)
	copyW(core.CtxSrcIP, 32)
	copyW(core.CtxDstIP, 36)
	// Ports are stored as u16 in the record but u32 in the context.
	b.Load(ebpf.R2, ebpf.R6, core.CtxSrcPort, ebpf.SizeW)
	b.Store(ebpf.R10, base+40, ebpf.R2, ebpf.SizeH)
	b.Load(ebpf.R2, ebpf.R6, core.CtxDstPort, ebpf.SizeW)
	b.Store(ebpf.R10, base+42, ebpf.R2, ebpf.SizeH)
	b.Load(ebpf.R2, ebpf.R6, core.CtxIPProto, ebpf.SizeW)
	b.Store(ebpf.R10, base+44, ebpf.R2, ebpf.SizeB)
	b.Load(ebpf.R2, ebpf.R6, core.CtxDir, ebpf.SizeW)
	b.Store(ebpf.R10, base+45, ebpf.R2, ebpf.SizeB)
	// Zero the 2 padding bytes so records are deterministic.
	b.Emit(ebpf.StoreImm(ebpf.R10, base+46, 0, ebpf.SizeH))

	b.Mov(ebpf.R1, ebpf.R6)
	b.MovImm(ebpf.R2, 0)
	b.Mov(ebpf.R3, ebpf.R10)
	b.ALUImm(ebpf.ALUAdd, ebpf.R3, int32(base))
	b.MovImm(ebpf.R4, core.RecordSize)
	b.Call(ebpf.HelperPerfEventOutput)
}

// emitCount increments the packet counter (slot 0) and adds the packet
// length to the byte counter (slot 1).
func emitCount(b *ebpf.Builder, m ebpf.Map) {
	// Packets: counters[0]++.
	lbl := fmt.Sprintf("skip_pkt_%d", b.Len())
	b.Emit(ebpf.StoreImm(ebpf.R10, -4, SlotPackets, ebpf.SizeW))
	b.LoadMapFD(ebpf.R1, m)
	b.Mov(ebpf.R2, ebpf.R10)
	b.ALUImm(ebpf.ALUAdd, ebpf.R2, -4)
	b.Call(ebpf.HelperMapLookupElem)
	b.JumpImmTo(ebpf.JmpEq, ebpf.R0, 0, lbl)
	b.Load(ebpf.R2, ebpf.R0, 0, ebpf.SizeDW)
	b.ALUImm(ebpf.ALUAdd, ebpf.R2, 1)
	b.Store(ebpf.R0, 0, ebpf.R2, ebpf.SizeDW)
	b.Label(lbl)

	// Bytes: counters[1] += ctx.len.
	lbl2 := fmt.Sprintf("skip_bytes_%d", b.Len())
	b.Emit(ebpf.StoreImm(ebpf.R10, -4, SlotBytes, ebpf.SizeW))
	b.LoadMapFD(ebpf.R1, m)
	b.Mov(ebpf.R2, ebpf.R10)
	b.ALUImm(ebpf.ALUAdd, ebpf.R2, -4)
	b.Call(ebpf.HelperMapLookupElem)
	b.JumpImmTo(ebpf.JmpEq, ebpf.R0, 0, lbl2)
	b.Load(ebpf.R2, ebpf.R0, 0, ebpf.SizeDW)
	b.Load(ebpf.R3, ebpf.R6, core.CtxLen, ebpf.SizeW)
	b.ALUReg(ebpf.ALUAdd, ebpf.R2, ebpf.R3)
	b.Store(ebpf.R0, 0, ebpf.R2, ebpf.SizeDW)
	b.Label(lbl2)
}

// emitIncrMap increments slot 0 of m (the executing CPU's replica for
// per-CPU maps).
func emitIncrMap(b *ebpf.Builder, m ebpf.Map, tag string) {
	lbl := fmt.Sprintf("skip_%s_%d", tag, b.Len())
	b.Emit(ebpf.StoreImm(ebpf.R10, -4, 0, ebpf.SizeW))
	b.LoadMapFD(ebpf.R1, m)
	b.Mov(ebpf.R2, ebpf.R10)
	b.ALUImm(ebpf.ALUAdd, ebpf.R2, -4)
	b.Call(ebpf.HelperMapLookupElem)
	b.JumpImmTo(ebpf.JmpEq, ebpf.R0, 0, lbl)
	b.Load(ebpf.R2, ebpf.R0, 0, ebpf.SizeDW)
	b.ALUImm(ebpf.ALUAdd, ebpf.R2, 1)
	b.Store(ebpf.R0, 0, ebpf.R2, ebpf.SizeDW)
	b.Label(lbl)
}

// ReadCounter reads a counter slot from a compiled script's array map.
func (c *Compiled) ReadCounter(slot int) (uint64, bool) {
	if c.Counters == nil {
		return 0, false
	}
	key := []byte{byte(slot), 0, 0, 0}
	v, ok := c.Counters.Lookup(key)
	if !ok || len(v) < 8 {
		return 0, false
	}
	return leU64(v), true
}

// ReadCPUHist returns per-CPU invocation counts.
func (c *Compiled) ReadCPUHist() []uint64 {
	if c.CPUHist == nil {
		return nil
	}
	out := make([]uint64, c.CPUHist.NumCPU())
	key := []byte{0, 0, 0, 0}
	for cpu := range out {
		if v, ok := c.CPUHist.LookupCPU(key, cpu); ok {
			out[cpu] = leU64(v)
		}
	}
	return out
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
