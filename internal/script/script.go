// Package script compiles vNetTracer trace specifications — filter rules
// plus actions, as the user writes them in configuration files — into eBPF
// bytecode that loads through the verifier and runs in the in-kernel VM.
// This is the paper's programmability layer: "users provide information
// such as ethernet type, source IP, destination port, etc. to generate the
// filter rules".
package script

import (
	"encoding/binary"
	"fmt"
	"sort"

	"vnettracer/internal/core"
	"vnettracer/internal/ebpf"
	"vnettracer/internal/vnet"
)

// Action is one tracing action executed when a packet matches the filter.
type Action int

// Supported actions.
const (
	// ActionRecord emits a 48-byte trace record (packet ID, tracepoint,
	// nanosecond timestamp, length, flow) to the kernel buffer — the
	// paper's "record the current system time in nanosecond".
	ActionRecord Action = iota + 1
	// ActionCount maintains packet and byte counters in an array map.
	ActionCount
	// ActionCPUHist counts invocations per CPU in a per-CPU map (case
	// study III's softirq distribution measurement).
	ActionCPUHist
	// ActionHist observes probe latency (ktime minus the context
	// timestamp) into a log2-bucket histogram — per-packet timing at a
	// tiny fixed map footprint instead of a 48-byte record per packet.
	ActionHist
	// ActionFlowCount sums packets and bytes per 5-tuple flow in a hash
	// map ("sum by flow"): the in-probe aggregation that replaces
	// shipping every record for throughput metrics.
	ActionFlowCount
)

func (a Action) String() string {
	switch a {
	case ActionRecord:
		return "record"
	case ActionCount:
		return "count"
	case ActionCPUHist:
		return "cpuhist"
	case ActionHist:
		return "hist"
	case ActionFlowCount:
		return "flowcount"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Filter matches packets. Zero-valued fields match anything, following the
// paper's configuration-file semantics.
type Filter struct {
	SrcIP      vnet.IPv4 `json:"src_ip,omitempty"`
	DstIP      vnet.IPv4 `json:"dst_ip,omitempty"`
	SrcPort    uint16    `json:"src_port,omitempty"`
	DstPort    uint16    `json:"dst_port,omitempty"`
	Proto      uint8     `json:"proto,omitempty"`
	TracedOnly bool      `json:"traced_only,omitempty"`
}

// Spec is a complete trace-script specification: where to attach, what to
// match, and what to do.
type Spec struct {
	Name   string           `json:"name"`
	TPID   uint32           `json:"tp_id"`
	Attach core.AttachPoint `json:"attach"`
	Filter Filter           `json:"filter"`
	Actions []Action        `json:"actions"`
	// NumCPU sizes the per-CPU histogram map; defaults to 64.
	NumCPU int `json:"num_cpu,omitempty"`
	// MaxFlows caps the flow-count hash map; defaults to 1024. Flows
	// beyond the cap are dropped by the probe (inc fails), mirroring a
	// full kernel map.
	MaxFlows int `json:"max_flows,omitempty"`
}

// Compiled is a loaded trace script with handles to its maps for userspace
// readout.
type Compiled struct {
	Spec Spec
	Prog *ebpf.Program
	// Counters is non-nil when ActionCount is present: slot 0 = packets,
	// slot 1 = bytes.
	Counters *ebpf.ArrayMap
	// CPUHist is non-nil when ActionCPUHist is present: slot 0 counts per
	// CPU.
	CPUHist *ebpf.PerCPUArray
	// Hist is non-nil when ActionHist is present: HistBuckets log2
	// latency buckets (bucket 0 = zero, bucket b = [2^(b-1), 2^b) ns).
	Hist *ebpf.ArrayMap
	// Flows is non-nil when ActionFlowCount is present: per-flow
	// packet/byte sums keyed by the packed 5-tuple.
	Flows *ebpf.HashMap
}

// Counter map slots.
const (
	SlotPackets = 0
	SlotBytes   = 1
)

// Aggregation map geometry.
const (
	// HistBuckets is the log2 histogram width: bucket 63 absorbs every
	// sample of 2^62 ns and beyond.
	HistBuckets = 64
	// FlowKeySize packs srcIP(4) dstIP(4) sport(2) dport(2) proto(1)
	// pad(3).
	FlowKeySize = 16
	// FlowValueSize holds packets at offset FlowValPackets and bytes at
	// FlowValBytes.
	FlowValueSize  = 16
	FlowValPackets = 0
	FlowValBytes   = 8
)

// CompileToInsns compiles the spec to raw instructions and a map table
// without loading (verification happens in Compile / ebpf.Load). Exposed
// for verifier benchmarking and inspection tools.
func CompileToInsns(spec Spec) ([]ebpf.Insn, []ebpf.Map, error) {
	c, b, err := build(spec)
	if err != nil {
		return nil, nil, err
	}
	_ = c
	return b.Program()
}

// Compile builds, verifies and loads the spec's eBPF program.
func Compile(spec Spec) (*Compiled, error) {
	c, b, err := build(spec)
	if err != nil {
		return nil, err
	}
	insns, maps, err := b.Program()
	if err != nil {
		return nil, fmt.Errorf("script: %q: %w", spec.Name, err)
	}
	prog, err := ebpf.Load(ebpf.ProgramSpec{
		Name:    spec.Name,
		Type:    attachProgType(spec.Attach),
		Insns:   insns,
		Maps:    maps,
		CtxSize: core.CtxSize,
	})
	if err != nil {
		return nil, fmt.Errorf("script: %q: %w", spec.Name, err)
	}
	c.Prog = prog
	return c, nil
}

// build emits the spec's bytecode into a fresh builder.
func build(spec Spec) (*Compiled, *ebpf.Builder, error) {
	if len(spec.Actions) == 0 {
		return nil, nil, fmt.Errorf("script: %q: no actions", spec.Name)
	}
	if spec.NumCPU <= 0 {
		spec.NumCPU = 64
	}
	if spec.MaxFlows <= 0 {
		spec.MaxFlows = 1024
	}

	c := &Compiled{Spec: spec}
	b := ebpf.NewBuilder()

	// r6 holds the context across helper calls.
	b.Mov(ebpf.R6, ebpf.R1)

	emitFilter(b, spec.Filter)

	for _, a := range spec.Actions {
		switch a {
		case ActionRecord:
			emitRecord(b, spec.TPID)
		case ActionCount:
			if c.Counters == nil {
				m, err := ebpf.NewArrayMap(8, 2)
				if err != nil {
					return nil, nil, fmt.Errorf("script: %q: %w", spec.Name, err)
				}
				c.Counters = m
			}
			emitCount(b, c.Counters)
		case ActionCPUHist:
			if c.CPUHist == nil {
				m, err := ebpf.NewPerCPUArray(8, 1, spec.NumCPU)
				if err != nil {
					return nil, nil, fmt.Errorf("script: %q: %w", spec.Name, err)
				}
				c.CPUHist = m
			}
			emitIncrMap(b, c.CPUHist)
		case ActionHist:
			if c.Hist == nil {
				m, err := ebpf.NewArrayMap(8, HistBuckets)
				if err != nil {
					return nil, nil, fmt.Errorf("script: %q: %w", spec.Name, err)
				}
				c.Hist = m
			}
			emitHist(b, c.Hist)
		case ActionFlowCount:
			if c.Flows == nil {
				m, err := ebpf.NewHashMap(FlowKeySize, FlowValueSize, spec.MaxFlows)
				if err != nil {
					return nil, nil, fmt.Errorf("script: %q: %w", spec.Name, err)
				}
				c.Flows = m
			}
			emitFlowCount(b, c.Flows)
		default:
			return nil, nil, fmt.Errorf("script: %q: unknown action %d", spec.Name, a)
		}
	}

	// Matched: r0 = 1.
	b.MovImm(ebpf.R0, 1).ExitInsn()
	// Filtered out: r0 = 0.
	b.Label("out").MovImm(ebpf.R0, 0).ExitInsn()
	return c, b, nil
}

func attachProgType(at core.AttachPoint) ebpf.ProgType {
	switch at.Kind {
	case core.AttachKProbe, core.AttachUprobe:
		return ebpf.ProgTypeKprobe
	case core.AttachKretprobe:
		return ebpf.ProgTypeKretprobe
	}
	return ebpf.ProgTypeSocketFilter
}

// emitFilter emits comparisons that fall through on match and jump to
// "out" on mismatch. JMP32 comparisons keep high-bit IPs matchable.
func emitFilter(b *ebpf.Builder, f Filter) {
	check := func(off int16, want uint32) {
		b.Load(ebpf.R2, ebpf.R6, off, ebpf.SizeW)
		b.Jump32ImmTo(ebpf.JmpNe, ebpf.R2, int32(want), "out")
	}
	if f.Proto != 0 {
		check(core.CtxIPProto, uint32(f.Proto))
	}
	if f.SrcIP != 0 {
		check(core.CtxSrcIP, uint32(f.SrcIP))
	}
	if f.DstIP != 0 {
		check(core.CtxDstIP, uint32(f.DstIP))
	}
	if f.SrcPort != 0 {
		check(core.CtxSrcPort, uint32(f.SrcPort))
	}
	if f.DstPort != 0 {
		check(core.CtxDstPort, uint32(f.DstPort))
	}
	if f.TracedOnly {
		b.Load(ebpf.R2, ebpf.R6, core.CtxTraceID, ebpf.SizeW)
		b.Jump32ImmTo(ebpf.JmpEq, ebpf.R2, 0, "out")
	}
}

// emitRecord assembles the 48-byte record on the stack at r10-48 and emits
// it through perf_event_output. Offsets match core.Record's wire format.
func emitRecord(b *ebpf.Builder, tpid uint32) {
	const base = -int16(core.RecordSize)
	copyW := func(ctxOff, recOff int16) {
		b.Load(ebpf.R2, ebpf.R6, ctxOff, ebpf.SizeW)
		b.Store(ebpf.R10, base+recOff, ebpf.R2, ebpf.SizeW)
	}
	copyDW := func(ctxOff, recOff int16) {
		b.Load(ebpf.R2, ebpf.R6, ctxOff, ebpf.SizeDW)
		b.Store(ebpf.R10, base+recOff, ebpf.R2, ebpf.SizeDW)
	}
	copyW(core.CtxTraceID, 0)
	b.MovImm(ebpf.R2, int32(tpid))
	b.Store(ebpf.R10, base+4, ebpf.R2, ebpf.SizeW)
	copyDW(core.CtxTimeNs, 8)
	copyW(core.CtxLen, 16)
	copyW(core.CtxCPU, 20)
	copyDW(core.CtxSeq, 24)
	copyW(core.CtxSrcIP, 32)
	copyW(core.CtxDstIP, 36)
	// Ports are stored as u16 in the record but u32 in the context.
	b.Load(ebpf.R2, ebpf.R6, core.CtxSrcPort, ebpf.SizeW)
	b.Store(ebpf.R10, base+40, ebpf.R2, ebpf.SizeH)
	b.Load(ebpf.R2, ebpf.R6, core.CtxDstPort, ebpf.SizeW)
	b.Store(ebpf.R10, base+42, ebpf.R2, ebpf.SizeH)
	b.Load(ebpf.R2, ebpf.R6, core.CtxIPProto, ebpf.SizeW)
	b.Store(ebpf.R10, base+44, ebpf.R2, ebpf.SizeB)
	b.Load(ebpf.R2, ebpf.R6, core.CtxDir, ebpf.SizeW)
	b.Store(ebpf.R10, base+45, ebpf.R2, ebpf.SizeB)
	// Zero the 2 padding bytes so records are deterministic.
	b.Emit(ebpf.StoreImm(ebpf.R10, base+46, 0, ebpf.SizeH))

	b.Mov(ebpf.R1, ebpf.R6)
	b.MovImm(ebpf.R2, 0)
	b.Mov(ebpf.R3, ebpf.R10)
	b.ALUImm(ebpf.ALUAdd, ebpf.R3, int32(base))
	b.MovImm(ebpf.R4, core.RecordSize)
	b.Call(ebpf.HelperPerfEventOutput)
}

// emitInc emits one map_inc_elem call: map[stack key at keyOff] gets
// value[valOff] += r3, which the caller has already loaded. The fetch-add
// replaces the old lookup/branch/add/store sequence — no NULL check, no
// branch, and the optimized tier inlines it to one locked add.
func emitInc(b *ebpf.Builder, m ebpf.Map, keyOff int16, valOff int32) {
	b.LoadMapFD(ebpf.R1, m)
	b.Mov(ebpf.R2, ebpf.R10)
	b.ALUImm(ebpf.ALUAdd, ebpf.R2, int32(keyOff))
	b.MovImm(ebpf.R4, valOff)
	b.Call(ebpf.HelperMapIncElem)
}

// emitCount increments the packet counter (slot 0) and adds the packet
// length to the byte counter (slot 1).
func emitCount(b *ebpf.Builder, m ebpf.Map) {
	// Packets: counters[0] += 1.
	b.Emit(ebpf.StoreImm(ebpf.R10, -4, SlotPackets, ebpf.SizeW))
	b.MovImm(ebpf.R3, 1)
	emitInc(b, m, -4, 0)
	// Bytes: counters[1] += ctx.len.
	b.Emit(ebpf.StoreImm(ebpf.R10, -4, SlotBytes, ebpf.SizeW))
	b.Load(ebpf.R3, ebpf.R6, core.CtxLen, ebpf.SizeW)
	emitInc(b, m, -4, 0)
}

// emitIncrMap increments slot 0 of m (the executing CPU's replica for
// per-CPU maps, taken contention-free through the per-CPU fast path).
func emitIncrMap(b *ebpf.Builder, m ebpf.Map) {
	b.Emit(ebpf.StoreImm(ebpf.R10, -4, 0, ebpf.SizeW))
	b.MovImm(ebpf.R3, 1)
	emitInc(b, m, -4, 0)
}

// emitHist observes ktime_get_ns() - ctx.time_ns — the probe-to-probe
// latency of the traced packet — into the log2 histogram. A sample that
// would be negative (skewed clock) wraps and lands in the top bucket.
func emitHist(b *ebpf.Builder, m ebpf.Map) {
	b.Call(ebpf.HelperKtimeGetNs)
	b.Mov(ebpf.R2, ebpf.R0)
	b.Load(ebpf.R1, ebpf.R6, core.CtxTimeNs, ebpf.SizeDW)
	b.ALUReg(ebpf.ALUSub, ebpf.R2, ebpf.R1)
	b.LoadMapFD(ebpf.R1, m)
	b.Call(ebpf.HelperHistObserve)
}

// emitFlowCount packs the 5-tuple key at r10-64 (below the record build
// area at r10-48) and bumps both value lanes: packets and bytes.
func emitFlowCount(b *ebpf.Builder, m ebpf.Map) {
	const base = -64
	copyKey := func(ctxOff, keyOff int16, size uint8) {
		b.Load(ebpf.R2, ebpf.R6, ctxOff, ebpf.SizeW)
		b.Store(ebpf.R10, base+keyOff, ebpf.R2, size)
	}
	copyKey(core.CtxSrcIP, 0, ebpf.SizeW)
	copyKey(core.CtxDstIP, 4, ebpf.SizeW)
	copyKey(core.CtxSrcPort, 8, ebpf.SizeH)
	copyKey(core.CtxDstPort, 10, ebpf.SizeH)
	copyKey(core.CtxIPProto, 12, ebpf.SizeB)
	b.Emit(ebpf.StoreImm(ebpf.R10, base+13, 0, ebpf.SizeB))
	b.Emit(ebpf.StoreImm(ebpf.R10, base+14, 0, ebpf.SizeH))

	// flows[key].packets += 1; flows[key].bytes += ctx.len. The key stays
	// initialized on the stack across both calls.
	b.MovImm(ebpf.R3, 1)
	emitInc(b, m, base, FlowValPackets)
	b.Load(ebpf.R3, ebpf.R6, core.CtxLen, ebpf.SizeW)
	emitInc(b, m, base, FlowValBytes)
}

// ReadCounter reads a counter slot from a compiled script's array map.
func (c *Compiled) ReadCounter(slot int) (uint64, bool) {
	if c.Counters == nil {
		return 0, false
	}
	key := []byte{byte(slot), 0, 0, 0}
	v, ok := c.Counters.Lookup(key)
	if !ok || len(v) < 8 {
		return 0, false
	}
	return leU64(v), true
}

// ReadCPUHist returns per-CPU invocation counts.
func (c *Compiled) ReadCPUHist() []uint64 {
	if c.CPUHist == nil {
		return nil
	}
	out := make([]uint64, c.CPUHist.NumCPU())
	key := []byte{0, 0, 0, 0}
	for cpu := range out {
		if v, ok := c.CPUHist.LookupCPU(key, cpu); ok {
			out[cpu] = leU64(v)
		}
	}
	return out
}

// ReadHist returns the log2 latency histogram buckets without resetting
// them, or nil when the script has no hist action.
func (c *Compiled) ReadHist() []uint64 {
	if c.Hist == nil {
		return nil
	}
	out := make([]uint64, HistBuckets)
	key := make([]byte, 4)
	for b := range out {
		binary.LittleEndian.PutUint32(key, uint32(b))
		if v, ok := c.Hist.Lookup(key); ok && len(v) >= 8 {
			out[b] = leU64(v)
		}
	}
	return out
}

// FlowStat is one per-flow aggregate row decoded from the flow map.
type FlowStat struct {
	SrcIP   vnet.IPv4
	DstIP   vnet.IPv4
	SrcPort uint16
	DstPort uint16
	Proto   uint8
	Packets uint64
	Bytes   uint64
}

// ReadFlows returns the per-flow sums sorted by 5-tuple, without
// resetting the map. Nil when the script has no flowcount action.
func (c *Compiled) ReadFlows() []FlowStat {
	if c.Flows == nil {
		return nil
	}
	var out []FlowStat
	c.Flows.ForEach(func(k, v []byte) {
		out = append(out, flowStatFromKV(k, v))
	})
	sortFlows(out)
	return out
}

// AggSnapshot is one drained (snapshot-and-reset) view of a script's
// aggregation maps. Slices are nil for actions the script lacks.
type AggSnapshot struct {
	Counters []uint64   // SlotPackets, SlotBytes
	CPUHits  []uint64   // invocations per CPU
	Hist     []uint64   // log2 latency buckets
	Flows    []FlowStat // per-flow sums, sorted by 5-tuple
}

// Empty reports whether the snapshot carries no nonzero data — the agent
// skips shipping such frames.
func (s *AggSnapshot) Empty() bool {
	for _, v := range s.Counters {
		if v != 0 {
			return false
		}
	}
	for _, v := range s.CPUHits {
		if v != 0 {
			return false
		}
	}
	for _, v := range s.Hist {
		if v != 0 {
			return false
		}
	}
	return len(s.Flows) == 0
}

// HasAggregates reports whether the script maintains any aggregation map
// worth draining.
func (c *Compiled) HasAggregates() bool {
	return c.Counters != nil || c.CPUHist != nil || c.Hist != nil || c.Flows != nil
}

// DrainAggregates atomically snapshots and resets every aggregation map.
// Counts observed by concurrent probe invocations land in exactly one
// snapshot (the map drain primitives transfer ownership under their
// locks), so periodic drains never lose or double-count.
func (c *Compiled) DrainAggregates() AggSnapshot {
	var s AggSnapshot
	if c.Counters != nil {
		s.Counters = c.Counters.DrainU64(nil)
	}
	if c.CPUHist != nil {
		s.CPUHits = c.CPUHist.DrainU64CPUs(0, nil)
	}
	if c.Hist != nil {
		s.Hist = c.Hist.DrainU64(nil)
	}
	if c.Flows != nil {
		c.Flows.Drain(func(k, v []byte) {
			s.Flows = append(s.Flows, flowStatFromKV(k, v))
		})
		sortFlows(s.Flows)
	}
	return s
}

func flowStatFromKV(k, v []byte) FlowStat {
	return FlowStat{
		SrcIP:   vnet.IPv4(binary.LittleEndian.Uint32(k[0:])),
		DstIP:   vnet.IPv4(binary.LittleEndian.Uint32(k[4:])),
		SrcPort: binary.LittleEndian.Uint16(k[8:]),
		DstPort: binary.LittleEndian.Uint16(k[10:]),
		Proto:   k[12],
		Packets: binary.LittleEndian.Uint64(v[FlowValPackets:]),
		Bytes:   binary.LittleEndian.Uint64(v[FlowValBytes:]),
	}
}

func sortFlows(fs []FlowStat) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := &fs[i], &fs[j]
		if a.SrcIP != b.SrcIP {
			return a.SrcIP < b.SrcIP
		}
		if a.DstIP != b.DstIP {
			return a.DstIP < b.DstIP
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		if a.DstPort != b.DstPort {
			return a.DstPort < b.DstPort
		}
		return a.Proto < b.Proto
	})
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
