package script

import (
	"testing"

	"vnettracer/internal/core"
	"vnettracer/internal/ebpf"
	"vnettracer/internal/kernel"
	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

func testRig(t *testing.T) (*sim.Engine, *core.Machine) {
	t.Helper()
	eng := sim.NewEngine(1)
	node := kernel.NewNode(eng, kernel.NodeConfig{Name: "n0", NumCPU: 4})
	m, err := core.NewMachine(node, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

func udpPkt(src, dst vnet.IPv4, sport, dport uint16, traceID uint32, payload int) *vnet.Packet {
	return &vnet.Packet{
		IP:      vnet.IPv4Header{Protocol: vnet.ProtoUDP, Src: src, Dst: dst, TTL: 64},
		UDP:     &vnet.UDPHeader{SrcPort: sport, DstPort: dport},
		TraceID: traceID,
		Payload: make([]byte, payload),
	}
}

func fireAt(m *core.Machine, site string, p *vnet.Packet) {
	m.Node.Probes.Fire(&kernel.ProbeCtx{
		Site: site, Pkt: p, TimeNs: m.Node.Clock.NowNs(),
	})
}

func TestCompileRejectsEmptyActions(t *testing.T) {
	if _, err := Compile(Spec{Name: "empty"}); err == nil {
		t.Fatal("empty action list accepted")
	}
}

func TestCompiledProgramPassesVerifier(t *testing.T) {
	c, err := Compile(Spec{
		Name: "full",
		TPID: 3,
		Filter: Spec{}.Filter, // zero filter
		Actions: []Action{ActionRecord, ActionCount, ActionCPUHist},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Prog.Len() == 0 || c.Prog.Len() > ebpf.MaxInsns {
		t.Fatalf("program length %d", c.Prog.Len())
	}
	if c.Counters == nil || c.CPUHist == nil {
		t.Fatal("maps not created")
	}
}

func TestRecordActionEmitsParsableRecords(t *testing.T) {
	_, m := testRig(t)
	c, err := Compile(Spec{
		Name:    "rec",
		TPID:    9,
		Actions: []Action{ActionRecord},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(c.Prog, core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg}, core.DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
	p := udpPkt(vnet.MustParseIPv4("10.0.0.1"), vnet.MustParseIPv4("10.0.0.2"), 4000, 9000, 0xfeed, 56)
	p.Seq = 7
	fireAt(m, kernel.SiteUDPRecvmsg, p)

	recs, err := core.UnmarshalRecords(m.Ring.Drain())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %d", len(recs))
	}
	r := recs[0]
	if r.TraceID != 0xfeed || r.TPID != 9 || r.Seq != 7 {
		t.Fatalf("record = %+v", r)
	}
	if r.SrcIP != 0x0a000001 || r.DstIP != 0x0a000002 || r.SrcPort != 4000 || r.DstPort != 9000 {
		t.Fatalf("flow in record = %+v", r)
	}
	if r.Proto != vnet.ProtoUDP {
		t.Fatalf("proto = %d", r.Proto)
	}
	if r.Len != uint32(p.WireLen()) {
		t.Fatalf("len = %d want %d", r.Len, p.WireLen())
	}
}

func TestFilterMatchesOnlyTargetFlow(t *testing.T) {
	_, m := testRig(t)
	c, err := Compile(Spec{
		Name: "filtered",
		TPID: 1,
		Filter: Filter{
			DstIP:   vnet.MustParseIPv4("10.0.0.2"),
			DstPort: 9000,
			Proto:   vnet.ProtoUDP,
		},
		Actions: []Action{ActionCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(c.Prog, core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg}, core.DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
	match := udpPkt(1, vnet.MustParseIPv4("10.0.0.2"), 4000, 9000, 0, 10)
	wrongPort := udpPkt(1, vnet.MustParseIPv4("10.0.0.2"), 4000, 9001, 0, 10)
	wrongIP := udpPkt(1, vnet.MustParseIPv4("10.0.0.3"), 4000, 9000, 0, 10)
	tcp := &vnet.Packet{
		IP:  vnet.IPv4Header{Protocol: vnet.ProtoTCP, Dst: vnet.MustParseIPv4("10.0.0.2")},
		TCP: &vnet.TCPHeader{DstPort: 9000},
	}
	for _, p := range []*vnet.Packet{match, wrongPort, wrongIP, tcp, match} {
		fireAt(m, kernel.SiteUDPRecvmsg, p)
	}
	pkts, ok := c.ReadCounter(SlotPackets)
	if !ok || pkts != 2 {
		t.Fatalf("packets = %d ok=%v, want 2", pkts, ok)
	}
}

func TestFilterHighBitIP(t *testing.T) {
	// 192.168.1.1 has the sign bit set in int32; JMP32 must still match.
	_, m := testRig(t)
	ip := vnet.MustParseIPv4("192.168.1.1")
	c, err := Compile(Spec{
		Name:    "highbit",
		TPID:    1,
		Filter:  Filter{DstIP: ip},
		Actions: []Action{ActionCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(c.Prog, core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg}, core.DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
	fireAt(m, kernel.SiteUDPRecvmsg, udpPkt(1, ip, 1, 2, 0, 0))
	pkts, _ := c.ReadCounter(SlotPackets)
	if pkts != 1 {
		t.Fatalf("high-bit IP filter matched %d packets, want 1", pkts)
	}
}

func TestTracedOnlyFilter(t *testing.T) {
	_, m := testRig(t)
	c, err := Compile(Spec{
		Name:    "traced",
		TPID:    1,
		Filter:  Filter{TracedOnly: true},
		Actions: []Action{ActionCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(c.Prog, core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg}, core.DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
	fireAt(m, kernel.SiteUDPRecvmsg, udpPkt(1, 2, 3, 4, 0, 0))    // untraced
	fireAt(m, kernel.SiteUDPRecvmsg, udpPkt(1, 2, 3, 4, 0xaa, 0)) // traced
	pkts, _ := c.ReadCounter(SlotPackets)
	if pkts != 1 {
		t.Fatalf("packets = %d, want 1", pkts)
	}
}

func TestCountActionCountsBytes(t *testing.T) {
	_, m := testRig(t)
	c, err := Compile(Spec{Name: "bytes", TPID: 1, Actions: []Action{ActionCount}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(c.Prog, core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg}, core.DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
	p1 := udpPkt(1, 2, 3, 4, 0, 100)
	p2 := udpPkt(1, 2, 3, 4, 0, 200)
	fireAt(m, kernel.SiteUDPRecvmsg, p1)
	fireAt(m, kernel.SiteUDPRecvmsg, p2)
	bytes, _ := c.ReadCounter(SlotBytes)
	want := uint64(p1.WireLen() + p2.WireLen())
	if bytes != want {
		t.Fatalf("bytes = %d, want %d", bytes, want)
	}
}

func TestCPUHistTracksPerCPU(t *testing.T) {
	eng, m := testRig(t)
	c, err := Compile(Spec{Name: "cpuhist", TPID: 1, Actions: []Action{ActionCPUHist}, NumCPU: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(c.Prog, core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteNetRxAction}, core.DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
	// Fire through the real softirq path so CPUs are assigned by steering
	// (no RPS: everything lands on CPU 0).
	for i := 0; i < 6; i++ {
		m.Node.SoftirqNetRX(udpPkt(1, 2, 3, 4, 0, 0), nil, func(*vnet.Packet) {})
	}
	eng.RunUntilIdle()
	hist := c.ReadCPUHist()
	if hist[0] != 6 {
		t.Fatalf("cpu0 = %d, want 6 (hist=%v)", hist[0], hist)
	}
	for i := 1; i < 4; i++ {
		if hist[i] != 0 {
			t.Fatalf("cpu%d = %d, want 0", i, hist[i])
		}
	}
}

func TestMultipleActionsCompose(t *testing.T) {
	_, m := testRig(t)
	c, err := Compile(Spec{
		Name:    "multi",
		TPID:    2,
		Filter:  Filter{DstPort: 9000},
		Actions: []Action{ActionRecord, ActionCount},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(c.Prog, core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg}, core.DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
	fireAt(m, kernel.SiteUDPRecvmsg, udpPkt(1, 2, 3, 9000, 0x11, 0))
	fireAt(m, kernel.SiteUDPRecvmsg, udpPkt(1, 2, 3, 8000, 0x22, 0)) // filtered out
	recs, err := core.UnmarshalRecords(m.Ring.Drain())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].TraceID != 0x11 {
		t.Fatalf("records = %+v", recs)
	}
	pkts, _ := c.ReadCounter(SlotPackets)
	if pkts != 1 {
		t.Fatalf("packets = %d", pkts)
	}
}

func TestRecordTimestampUsesNodeClock(t *testing.T) {
	eng := sim.NewEngine(1)
	node := kernel.NewNode(eng, kernel.NodeConfig{Name: "skewed", NumCPU: 1, ClockOffsetNs: 5_000_000})
	m, err := core.NewMachine(node, 4096)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(Spec{Name: "ts", TPID: 1, Actions: []Action{ActionRecord}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(c.Prog, core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg}, core.DefaultCostModel()); err != nil {
		t.Fatal(err)
	}
	fireAt(m, kernel.SiteUDPRecvmsg, udpPkt(1, 2, 3, 4, 1, 0))
	recs, _ := core.UnmarshalRecords(m.Ring.Drain())
	if len(recs) != 1 || recs[0].TimeNs < 5_000_000 {
		t.Fatalf("record timestamp %d must come from the node's skewed clock", recs[0].TimeNs)
	}
}
