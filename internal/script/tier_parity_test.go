package script

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"vnettracer/internal/core"
	"vnettracer/internal/ebpf"
	"vnettracer/internal/kernel"
	"vnettracer/internal/vnet"
)

// parityEnv is a deterministic Env capturing the perf stream so compiled
// script programs can be compared across execution tiers.
type parityEnv struct {
	time uint64
	perf []string
}

func (e *parityEnv) KtimeNs() uint64        { e.time += 500; return e.time }
func (e *parityEnv) SMPProcessorID() uint32 { return 1 }
func (e *parityEnv) PrandomU32() uint32     { return 9 }
func (e *parityEnv) PerfEventOutput(data []byte) bool {
	e.perf = append(e.perf, string(data))
	return true
}
func (e *parityEnv) TracePrintk(msg string) {}

// TestCompiledScriptsTierParity runs every action combination the script
// compiler supports on all three execution tiers and requires identical
// results: R0, execution statistics, perf output, and final map state.
// Each tier gets a freshly compiled program (fresh maps) and a fresh env,
// so nothing leaks between engines.
func TestCompiledScriptsTierParity(t *testing.T) {
	combos := [][]Action{
		{ActionRecord},
		{ActionCount},
		{ActionCPUHist},
		{ActionRecord, ActionCount},
		{ActionRecord, ActionCount, ActionCPUHist},
		{ActionHist},
		{ActionFlowCount},
		{ActionHist, ActionFlowCount},
		{ActionRecord, ActionCount, ActionCPUHist, ActionHist, ActionFlowCount},
	}
	ctxs := map[string][]byte{
		"match": core.BuildCtx(nil, &kernel.ProbeCtx{
			Pkt: &vnet.Packet{
				IP:      vnet.IPv4Header{Protocol: vnet.ProtoUDP, Src: 1, Dst: 2},
				UDP:     &vnet.UDPHeader{SrcPort: 1, DstPort: 9000},
				TraceID: 7,
			},
			TimeNs: 1,
		}),
		"nomatch": core.BuildCtx(nil, &kernel.ProbeCtx{
			Pkt: &vnet.Packet{
				IP:      vnet.IPv4Header{Protocol: vnet.ProtoTCP, Src: 1, Dst: 2},
				TCP:     &vnet.TCPHeader{SrcPort: 1, DstPort: 80},
				TraceID: 8,
			},
			TimeNs: 1,
		}),
	}

	type result struct {
		r0    uint64
		stats ebpf.ExecStats
		perf  []string
		maps  []string
	}

	for _, combo := range combos {
		spec := Spec{
			Name:    "parity",
			TPID:    4,
			Filter:  Filter{Proto: vnet.ProtoUDP, DstPort: 9000},
			Actions: combo,
		}
		for ctxName, ctx := range ctxs {
			t.Run(fmt.Sprintf("%v/%s", combo, ctxName), func(t *testing.T) {
				runTier := func(tier ebpf.Tier) result {
					insns, maps, err := CompileToInsns(spec)
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					prog, err := ebpf.Load(ebpf.ProgramSpec{
						Name: "parity", Type: ebpf.ProgTypeKprobe,
						Insns: insns, Maps: maps, CtxSize: core.CtxSize,
					})
					if err != nil {
						t.Fatalf("load: %v", err)
					}
					if prog.Tier() != ebpf.TierOptimized {
						t.Fatalf("script program did not lower: tier %v", prog.Tier())
					}
					env := &parityEnv{}
					var res result
					var rerr error
					switch tier {
					case ebpf.TierInterpreter:
						res.r0, res.stats, rerr = prog.RunInterpreted(ctx, env)
					case ebpf.TierThreaded:
						res.r0, res.stats, rerr = prog.RunThreaded(ctx, env)
					case ebpf.TierOptimized:
						res.r0, res.stats, rerr = prog.RunOptimized(ctx, env)
					}
					if rerr != nil {
						t.Fatalf("run tier %v: %v", tier, rerr)
					}
					res.perf = env.perf
					for i, m := range maps {
						m.ForEach(func(k, v []byte) {
							res.maps = append(res.maps, fmt.Sprintf("map%d %x=%x", i, k, v))
						})
					}
					sort.Strings(res.maps)
					return res
				}
				ref := runTier(ebpf.TierInterpreter)
				for _, tier := range []ebpf.Tier{ebpf.TierThreaded, ebpf.TierOptimized} {
					got := runTier(tier)
					if !reflect.DeepEqual(got, ref) {
						t.Errorf("%v diverges from interpreter:\n%v: %+v\ninterp: %+v", tier, tier, got, ref)
					}
				}
			})
		}
	}
}
