// Package core is vNetTracer's tracing core: the eBPF context ABI exposed
// to trace programs, the raw trace-record format they emit, the per-node
// kernel ring buffer that stages records for userspace (the paper's kernel
// module mmap'd to /proc), and the Machine runtime that attaches verified
// programs to kernel probe sites and device hooks while charging their
// execution cost to the traced packets.
package core

import (
	"encoding/binary"

	"vnettracer/internal/kernel"
	"vnettracer/internal/vnet"
)

// Context layout offsets, in bytes. Trace programs read these fields with
// LDX instructions; the layout plays the role of __sk_buff. All fields are
// little-endian. For VXLAN-encapsulated packets the flow fields describe
// the *inner* flow (the script runtime strips the encapsulation, as the
// paper notes its scripts must) and CtxEncap is 1.
const (
	CtxLen       = 0  // u32: wire length in bytes
	CtxEtherType = 4  // u32
	CtxIfindex   = 8  // u32: device index at the attach point
	CtxSrcIP     = 12 // u32
	CtxDstIP     = 16 // u32
	CtxSrcPort   = 20 // u32
	CtxDstPort   = 24 // u32
	CtxIPProto   = 28 // u32: 6 TCP, 17 UDP
	CtxTraceID   = 32 // u32: vNetTracer packet ID (0 = untraced)
	CtxDir       = 36 // u32: 1 ingress, 2 egress, 0 n/a
	CtxCPU       = 40 // u32: executing CPU
	CtxEncap     = 44 // u32: 1 when the packet was VXLAN-encapsulated
	CtxSeq       = 48 // u64: sender-assigned packet number
	CtxTimeNs    = 56 // u64: node CLOCK_MONOTONIC at the probe fire

	// CtxSize is the context structure size passed to the verifier.
	CtxSize = 64
)

// BuildCtx serializes a probe firing into the eBPF context buffer. pkt may
// be nil (packet-less probes such as pure function tracing); flow fields
// are zero then.
func BuildCtx(buf []byte, pc *kernel.ProbeCtx) []byte {
	if cap(buf) < CtxSize {
		buf = make([]byte, CtxSize)
	}
	buf = buf[:CtxSize]
	for i := range buf {
		buf[i] = 0
	}
	le := binary.LittleEndian
	le.PutUint32(buf[CtxIfindex:], uint32(pc.DevIfindex))
	le.PutUint32(buf[CtxDir:], uint32(pc.Dir))
	le.PutUint32(buf[CtxCPU:], uint32(pc.CPU))
	le.PutUint64(buf[CtxTimeNs:], uint64(pc.TimeNs))
	if p := pc.Pkt; p != nil {
		le.PutUint32(buf[CtxLen:], uint32(p.WireLen()))
		le.PutUint32(buf[CtxEtherType:], uint32(p.Eth.EtherType))
		flow := p.InnerFlow()
		le.PutUint32(buf[CtxSrcIP:], uint32(flow.Src))
		le.PutUint32(buf[CtxDstIP:], uint32(flow.Dst))
		le.PutUint32(buf[CtxSrcPort:], uint32(flow.SrcPort))
		le.PutUint32(buf[CtxDstPort:], uint32(flow.DstPort))
		le.PutUint32(buf[CtxIPProto:], uint32(flow.Proto))
		le.PutUint32(buf[CtxTraceID:], p.InnerTraceID())
		le.PutUint64(buf[CtxSeq:], p.Seq)
		if p.VXLAN != nil {
			le.PutUint32(buf[CtxEncap:], 1)
		}
	}
	return buf
}

// note: direction values reuse vnet.Ingress / vnet.Egress.
var _ = vnet.Ingress
