package core

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestPerCPURingConcurrentEmitDrain runs one producer goroutine per CPU
// ring emitting sequenced records through the reserve/commit path while a
// drainer concurrently empties all rings, and checks the delivery
// guarantees the agent relies on: no record is lost or duplicated
// (emitted = drained + dropped, per ring), within-CPU order is preserved,
// and per-ring drop counters sum exactly to the global total. Run under
// -race this also proves the locking of the reserve window.
func TestPerCPURingConcurrentEmitDrain(t *testing.T) {
	const (
		ncpu      = 4
		perRing   = MinBufferBytes + 8*RecordSize // small: forces drops
		perCPUMsg = 5000
	)
	p, err := NewPerCPURing(ncpu, perRing)
	if err != nil {
		t.Fatal(err)
	}

	var done atomic.Bool
	var wg sync.WaitGroup
	for cpu := 0; cpu < ncpu; cpu++ {
		wg.Add(1)
		go func(cpu int) {
			defer wg.Done()
			ring := p.Ring(uint32(cpu))
			rec := Record{TPID: 1, CPU: uint32(cpu)}
			for seq := uint64(1); seq <= perCPUMsg; seq++ {
				rec.Seq = seq
				dst := ring.Reserve(RecordSize)
				if dst == nil {
					continue // full: counted as a drop by the ring
				}
				rec.MarshalTo(dst)
				ring.Commit()
			}
		}(cpu)
	}

	type cpuState struct {
		drained uint64
		lastSeq uint64
	}
	states := make([]cpuState, ncpu)
	drainBuf := make([]byte, 0, ncpu*perRing)
	consume := func() {
		drainBuf = p.DrainInto(drainBuf[:0])
		recs, err := UnmarshalRecords(drainBuf)
		if err != nil {
			t.Errorf("corrupt drain: %v", err)
			return
		}
		for _, r := range recs {
			st := &states[r.CPU]
			if r.Seq <= st.lastSeq {
				t.Errorf("cpu %d: seq %d after %d (reorder or duplicate)", r.CPU, r.Seq, st.lastSeq)
				return
			}
			st.lastSeq = r.Seq
			st.drained++
		}
	}

	drainerDone := make(chan struct{})
	go func() {
		defer close(drainerDone)
		for !done.Load() {
			consume()
		}
		consume() // final sweep after all producers stopped
	}()

	wg.Wait()
	done.Store(true)
	<-drainerDone
	if t.Failed() {
		return
	}

	perRingDrops := p.AppendPerRingDrops(nil)
	var dropSum, drainSum uint64
	for cpu := 0; cpu < ncpu; cpu++ {
		got := states[cpu].drained + perRingDrops[cpu]
		if got != perCPUMsg {
			t.Errorf("cpu %d: drained %d + dropped %d = %d, want %d emit attempts",
				cpu, states[cpu].drained, perRingDrops[cpu], got, perCPUMsg)
		}
		dropSum += perRingDrops[cpu]
		drainSum += states[cpu].drained
	}
	if dropSum != p.Drops() {
		t.Errorf("per-ring drops sum %d != global Drops() %d", dropSum, p.Drops())
	}
	if drainSum != p.Writes() {
		t.Errorf("drained %d records != Writes() %d", drainSum, p.Writes())
	}
	if dropSum == 0 {
		t.Error("test never exercised the drop path; shrink the rings")
	}
}

// TestRingBufferConcurrentWriteDrain hammers one ring from several
// producers (the degenerate shared-buffer case the per-CPU design
// avoids) to prove a single ring stays consistent under contention:
// writes + drops == attempts and drained bytes are whole records.
func TestRingBufferConcurrentWriteDrain(t *testing.T) {
	rb, err := NewRingBuffer(MinBufferBytes + 16*RecordSize)
	if err != nil {
		t.Fatal(err)
	}
	const producers, perProducer = 4, 2000
	var done atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rec := Record{TPID: 2, CPU: uint32(p)}
			for i := 0; i < perProducer; i++ {
				rec.Seq = uint64(i)
				dst := rb.Reserve(RecordSize)
				if dst == nil {
					continue
				}
				rec.MarshalTo(dst)
				rb.Commit()
			}
		}(p)
	}
	var drained uint64
	drainerDone := make(chan struct{})
	go func() {
		defer close(drainerDone)
		buf := make([]byte, 0, rb.Cap())
		sweep := func() {
			buf = rb.DrainInto(buf[:0])
			if len(buf)%RecordSize != 0 {
				t.Errorf("drained %d bytes: torn record", len(buf))
			}
			drained += uint64(len(buf) / RecordSize)
		}
		for !done.Load() {
			sweep()
		}
		sweep()
	}()
	wg.Wait()
	done.Store(true)
	<-drainerDone
	if got := drained + rb.Drops(); got != producers*perProducer {
		t.Fatalf("drained %d + dropped %d = %d, want %d", drained, rb.Drops(), got, producers*perProducer)
	}
	if drained != rb.Writes() {
		t.Fatalf("drained %d != writes %d", drained, rb.Writes())
	}
}
