package core

import (
	"testing"

	"vnettracer/internal/kernel"
	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

func TestAttachKretprobeFiresOnReturn(t *testing.T) {
	eng := sim.NewEngine(1)
	node := kernel.NewNode(eng, kernel.NodeConfig{Name: "m0", NumCPU: 1})
	m, err := NewMachine(node, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	node.Egress = func(p *vnet.Packet) { node.DeliverLocal(p) }

	entry, err := m.Attach(loadMini(t), AttachPoint{Kind: AttachKProbe, Site: kernel.SiteUDPRecvmsg}, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	ret, err := m.Attach(loadMini(t), AttachPoint{Kind: AttachKretprobe, Site: kernel.SiteUDPRecvmsg}, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := node.Open(vnet.ProtoUDP, kernel.SockAddr{Port: 9000}, func(*vnet.Packet) {}); err != nil {
		t.Fatal(err)
	}
	cli, err := node.Open(vnet.ProtoUDP, kernel.SockAddr{IP: 1, Port: 40000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Send(kernel.SockAddr{IP: 2, Port: 9000}, 32); err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()

	if entry.Stats().Invocations != 1 {
		t.Fatalf("kprobe fired %d times", entry.Stats().Invocations)
	}
	if ret.Stats().Invocations != 1 {
		t.Fatalf("kretprobe fired %d times", ret.Stats().Invocations)
	}
	// Two records: entry and return.
	if m.Ring.Used() != 32 {
		t.Fatalf("ring holds %d bytes, want 32", m.Ring.Used())
	}
}

func TestAttachKretprobeOnSendReturn(t *testing.T) {
	eng := sim.NewEngine(1)
	node := kernel.NewNode(eng, kernel.NodeConfig{Name: "m0", NumCPU: 1})
	m, err := NewMachine(node, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	var egressAt, retAt int64 = -1, -1
	node.Egress = func(*vnet.Packet) { egressAt = eng.Now() }
	node.Probes.Attach(kernel.RetSite(kernel.SiteUDPSendSkb), func(*kernel.ProbeCtx) int64 {
		retAt = eng.Now()
		return 0
	})
	_ = m
	cli, err := node.Open(vnet.ProtoUDP, kernel.SockAddr{IP: 1, Port: 40000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Send(kernel.SockAddr{IP: 2, Port: 9000}, 32); err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	if retAt < 0 || egressAt < 0 {
		t.Fatal("send return probe or egress never happened")
	}
	if retAt != egressAt {
		t.Fatalf("send kretprobe at %d, egress at %d: must coincide", retAt, egressAt)
	}
	if retAt == 0 {
		t.Fatal("send return must fire after the send-path cost, not at call time")
	}
}

func TestAttachUprobe(t *testing.T) {
	eng := sim.NewEngine(1)
	node := kernel.NewNode(eng, kernel.NodeConfig{Name: "m0", NumCPU: 1})
	m, err := NewMachine(node, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	site := kernel.UprobeSite("myapp", "handle_request")
	h, err := m.Attach(loadMini(t), AttachPoint{Kind: AttachUprobe, Site: site}, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// The application fires its own probe site.
	node.Probes.Fire(&kernel.ProbeCtx{Site: site, TimeNs: node.Clock.NowNs()})
	if h.Stats().Invocations != 1 {
		t.Fatalf("uprobe fired %d times", h.Stats().Invocations)
	}
	if h.Point().String() != site {
		t.Fatalf("point = %s", h.Point())
	}
}

func TestAttachPointStrings(t *testing.T) {
	tests := []struct {
		at   AttachPoint
		want string
	}{
		{AttachPoint{Kind: AttachKProbe, Site: "udp_recvmsg"}, "kprobe:udp_recvmsg"},
		{AttachPoint{Kind: AttachKretprobe, Site: "tcp_recvmsg"}, "kretprobe:tcp_recvmsg"},
		{AttachPoint{Kind: AttachDevice, Device: "eth0", Dir: vnet.Ingress}, "dev:eth0/ingress"},
	}
	for _, tc := range tests {
		if got := tc.at.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestAttachNeedsSite(t *testing.T) {
	_, m := newMachine(t)
	for _, kind := range []AttachKind{AttachKProbe, AttachKretprobe, AttachUprobe} {
		if _, err := m.Attach(loadMini(t), AttachPoint{Kind: kind}, DefaultCostModel()); err == nil {
			t.Errorf("kind %d: empty site accepted", kind)
		}
	}
}
