package core

import (
	"fmt"
	"sort"

	"vnettracer/internal/ebpf"
	"vnettracer/internal/kernel"
	"vnettracer/internal/vnet"
)

// CostModel converts an eBPF execution into simulated CPU nanoseconds. The
// defaults model JIT-compiled eBPF: a small fixed trampoline plus cheap
// per-instruction work, which is why vNetTracer's overhead stays marginal
// (paper Section II: "the JIT compiling minimizes the execution overhead").
type CostModel struct {
	BaseNs   int64 // per-invocation fixed cost
	InsnNs   int64 // per executed instruction
	HelperNs int64 // per helper call
}

// DefaultCostModel returns the JIT-like eBPF cost model.
func DefaultCostModel() CostModel {
	return CostModel{BaseNs: 20, InsnNs: 2, HelperNs: 15}
}

// Cost prices one execution.
func (c CostModel) Cost(s ebpf.ExecStats) int64 {
	return c.BaseNs + int64(s.Insns)*c.InsnNs + int64(s.HelperCalls)*c.HelperNs
}

// AttachKind selects the attach mechanism.
type AttachKind int

// Attach kinds, mirroring the paper's Section III-B surface: kprobes and
// kretprobes on kernel functions, hooks on network devices (raw sockets /
// tc), and uprobes on application symbols.
const (
	AttachKProbe AttachKind = iota + 1
	AttachDevice
	AttachKretprobe
	AttachUprobe
)

// AttachPoint names where a program attaches.
type AttachPoint struct {
	Kind AttachKind
	// Site is the kernel function name for AttachKProbe.
	Site string
	// Device and Dir select a device hook for AttachDevice.
	Device string
	Dir    vnet.Direction
}

func (a AttachPoint) String() string {
	switch a.Kind {
	case AttachKProbe:
		return "kprobe:" + a.Site
	case AttachKretprobe:
		return "kretprobe:" + a.Site
	case AttachUprobe:
		return a.Site
	}
	return fmt.Sprintf("dev:%s/%s", a.Device, a.Dir)
}

// AttachStats tracks one attachment's runtime behaviour.
type AttachStats struct {
	Invocations uint64
	Errors      uint64
	Insns       uint64
	CostNs      int64
}

// AttachHandle controls a live attachment.
type AttachHandle struct {
	point  AttachPoint
	detach func()
	stats  AttachStats
}

// Detach removes the program from its attach point.
func (h *AttachHandle) Detach() { h.detach() }

// Stats returns a snapshot of runtime counters.
func (h *AttachHandle) Stats() AttachStats { return h.stats }

// Point returns where the handle is attached.
func (h *AttachHandle) Point() AttachPoint { return h.point }

// Machine is one monitored node from the tracer's point of view: the
// simulated kernel, a registry of its network devices, and the per-CPU
// kernel ring buffers trace programs emit into. The agent
// (internal/control) drives a Machine.
type Machine struct {
	Node *kernel.Node
	Ring *PerCPURing

	devices map[string]*vnet.NetDev
	printk  []string
}

// NewMachine wraps a node with one trace ring of bufferBytes capacity per
// simulated CPU — the node's CPU topology supplies the ring count, as
// with the kernel's per-CPU perf buffers.
func NewMachine(node *kernel.Node, bufferBytes int) (*Machine, error) {
	ring, err := NewPerCPURing(node.NumCPU(), bufferBytes)
	if err != nil {
		return nil, fmt.Errorf("core: machine %s: %w", node.Name, err)
	}
	return &Machine{
		Node:    node,
		Ring:    ring,
		devices: make(map[string]*vnet.NetDev),
	}, nil
}

// RegisterDevice makes a device addressable by name in attach points.
func (m *Machine) RegisterDevice(dev *vnet.NetDev) error {
	if _, dup := m.devices[dev.Name()]; dup {
		return fmt.Errorf("core: machine %s: device %q already registered", m.Node.Name, dev.Name())
	}
	m.devices[dev.Name()] = dev
	return nil
}

// Device looks up a registered device.
func (m *Machine) Device(name string) (*vnet.NetDev, bool) {
	d, ok := m.devices[name]
	return d, ok
}

// Devices lists registered device names in sorted order — callers print
// and compare this, so it must not depend on map iteration order.
func (m *Machine) Devices() []string {
	out := make([]string, 0, len(m.devices))
	for name := range m.devices {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Printk returns accumulated trace_printk output (debugging aid).
func (m *Machine) Printk() []string {
	out := make([]string, len(m.printk))
	copy(out, m.printk)
	return out
}

// machineEnv adapts a Machine to the ebpf.Env helper surface.
type machineEnv struct {
	m   *Machine
	cpu uint32
}

func (e *machineEnv) KtimeNs() uint64 { return uint64(e.m.Node.Clock.NowNs()) }

func (e *machineEnv) SMPProcessorID() uint32 { return e.cpu }

func (e *machineEnv) PrandomU32() uint32 { return e.m.Node.Rand().Uint32() }

// PerfEventOutput stages an emitted record in the executing CPU's ring:
// reserve ring space, serialize in place, commit. data aliases the eBPF
// VM's stack and is only valid for the duration of the call, which is
// fine — the bytes land in the ring before returning, with no
// intermediate buffer or allocation.
func (e *machineEnv) PerfEventOutput(data []byte) bool {
	ring := e.m.Ring.Ring(e.cpu)
	dst := ring.Reserve(len(data))
	if dst == nil {
		return false
	}
	copy(dst, data)
	ring.Commit()
	return true
}

func (e *machineEnv) TracePrintk(msg string) { e.m.printk = append(e.m.printk, msg) }

// Attach binds a verified program at the attach point. Each firing builds
// the context, interprets the program, routes its perf output to the ring
// buffer, and charges the interpreter cost (per the cost model) to the
// packet's processing path.
func (m *Machine) Attach(prog *ebpf.Program, at AttachPoint, cm CostModel) (*AttachHandle, error) {
	if prog == nil {
		return nil, fmt.Errorf("core: machine %s: nil program", m.Node.Name)
	}
	if prog.CtxSize() != CtxSize {
		return nil, fmt.Errorf("core: machine %s: program %q ctx size %d, want %d",
			m.Node.Name, prog.Name(), prog.CtxSize(), CtxSize)
	}
	h := &AttachHandle{point: at}
	env := &machineEnv{m: m}
	scratch := make([]byte, CtxSize)

	runProg := func(pc *kernel.ProbeCtx) int64 {
		env.cpu = uint32(pc.CPU)
		ctx := BuildCtx(scratch, pc)
		_, stats, err := prog.Run(ctx, env)
		h.stats.Invocations++
		h.stats.Insns += uint64(stats.Insns)
		cost := cm.Cost(stats)
		if err != nil {
			h.stats.Errors++
		}
		h.stats.CostNs += cost
		return cost
	}

	switch at.Kind {
	case AttachKProbe, AttachKretprobe, AttachUprobe:
		if at.Site == "" {
			return nil, fmt.Errorf("core: machine %s: %v attach needs a site", m.Node.Name, at.Kind)
		}
		site := at.Site
		if at.Kind == AttachKretprobe {
			site = kernel.RetSite(at.Site)
		}
		h.detach = m.Node.Probes.Attach(site, runProg)
	case AttachDevice:
		dev, ok := m.devices[at.Device]
		if !ok {
			return nil, fmt.Errorf("core: machine %s: unknown device %q", m.Node.Name, at.Device)
		}
		dir := at.Dir
		if dir == 0 {
			dir = vnet.Ingress
		}
		h.detach = dev.AttachHook(dir, func(p *vnet.Packet, d vnet.Direction) int64 {
			pc := kernel.ProbeCtx{
				Site:       at.String(),
				Pkt:        p,
				DevIfindex: dev.Ifindex(),
				DevName:    dev.Name(),
				Dir:        d,
				TimeNs:     m.Node.Clock.NowNs(),
			}
			return runProg(&pc)
		})
	default:
		return nil, fmt.Errorf("core: machine %s: unknown attach kind %d", m.Node.Name, at.Kind)
	}
	return h, nil
}
