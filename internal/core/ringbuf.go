package core

import (
	"errors"
	"fmt"
	"sync"
)

// Ring buffer size limits, per ring. The paper (Section III-C, footnote
// 1): "the buffer size range is from 32 bytes to 128k-16 bytes" due to
// kmalloc limits in its kernel module.
const (
	MinBufferBytes = 32
	MaxBufferBytes = 128*1024 - 16
)

// ErrBufferSize rejects out-of-range buffer sizes.
var ErrBufferSize = errors.New("core: buffer size out of range")

// RingBuffer is one CPU's kernel memory buffer staging raw trace data
// between in-kernel trace programs and the userspace agent (mmap'd to
// /proc in the paper's implementation, avoiding per-event kernel/user
// copies). Writes beyond capacity are dropped and counted — losing trace
// data under overload is preferred over slowing the kernel.
//
// The emit hot path is Reserve/Commit: Reserve hands the producer a slice
// directly into the ring so the record serializes in place with no
// intermediate buffer, exactly like bpf_ringbuf_reserve/submit. Reserve
// holds the ring lock until the matching Commit or Abort; as in the
// kernel (where the producer runs with preemption disabled), the
// reservation window must be short and must not nest. Within one ring,
// records drain in exactly the order they were committed.
type RingBuffer struct {
	mu       sync.Mutex
	buf      []byte
	used     int
	reserved int // outstanding reservation length; lock held while > 0
	drops    uint64
	writes   uint64
	drained  uint64

	// Head-drop sampling mode, entered under collector overload: when
	// sampleEvery > 1 only every sampleEvery-th write is admitted; the
	// rest are dropped at the head (before consuming ring space) and
	// counted in both drops and sampleDrops, so fires == writes + drops
	// holds through degradation and sampleDrops isolates the
	// degradation-induced share.
	sampleEvery uint64
	sampleTick  uint64
	sampleDrops uint64
}

// NewRingBuffer allocates a buffer of the given byte capacity.
func NewRingBuffer(capacity int) (*RingBuffer, error) {
	if capacity < MinBufferBytes || capacity > MaxBufferBytes {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrBufferSize, capacity, MinBufferBytes, MaxBufferBytes)
	}
	return &RingBuffer{buf: make([]byte, capacity)}, nil
}

// Reserve claims n bytes of ring space and returns a slice aliasing it
// for the caller to serialize into. It returns nil — counting a drop —
// when the ring is full. On success the ring lock is held until Commit
// (publish) or Abort (discard); the caller must call exactly one of them
// promptly and must not reserve again in between.
func (r *RingBuffer) Reserve(n int) []byte {
	if n <= 0 {
		return nil
	}
	r.mu.Lock()
	if r.sampleEvery > 1 {
		r.sampleTick++
		if r.sampleTick%r.sampleEvery != 0 {
			r.drops++
			r.sampleDrops++
			r.mu.Unlock()
			return nil
		}
	}
	if r.used+n > len(r.buf) {
		r.drops++
		r.mu.Unlock()
		return nil
	}
	r.reserved = n
	return r.buf[r.used : r.used+n : r.used+n]
}

// Commit publishes the outstanding reservation: the bytes become part of
// the drainable region and the ring lock is released.
func (r *RingBuffer) Commit() {
	if r.reserved <= 0 {
		panic("core: RingBuffer.Commit without Reserve")
	}
	r.used += r.reserved
	r.reserved = 0
	r.writes++
	r.mu.Unlock()
}

// Abort discards the outstanding reservation and releases the ring lock.
// The reserved bytes never become visible to Drain.
func (r *RingBuffer) Abort() {
	if r.reserved <= 0 {
		panic("core: RingBuffer.Abort without Reserve")
	}
	r.reserved = 0
	r.mu.Unlock()
}

// Write appends data, returning false (and counting a drop) when it does
// not fit. It is Reserve+copy+Commit for producers that already hold the
// serialized bytes.
func (r *RingBuffer) Write(data []byte) bool {
	if len(data) == 0 {
		return true
	}
	dst := r.Reserve(len(data))
	if dst == nil {
		return false
	}
	copy(dst, data)
	r.Commit()
	return true
}

// DrainInto appends all committed bytes to dst, empties the ring, and
// returns the extended slice. It allocates only when dst lacks capacity,
// so a caller recycling its buffer drains allocation-free.
func (r *RingBuffer) DrainInto(dst []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.used == 0 {
		return dst
	}
	dst = append(dst, r.buf[:r.used]...)
	r.used = 0
	r.drained++
	return dst
}

// Drain removes and returns all buffered bytes (nil when empty). The
// agent's flush loop uses the reusable-buffer DrainInto instead.
func (r *RingBuffer) Drain() []byte {
	out := r.DrainInto(nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Used returns the occupied bytes.
func (r *RingBuffer) Used() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// Cap returns the buffer capacity.
func (r *RingBuffer) Cap() int { return len(r.buf) }

// Drops returns how many writes were rejected for lack of space.
func (r *RingBuffer) Drops() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// Writes returns the number of successful writes.
func (r *RingBuffer) Writes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.writes
}

// SetSampleEvery switches head-drop sampling: n > 1 admits only every
// n-th write; n <= 1 restores full capture. The sampling phase resets
// so behaviour after a mode change is deterministic.
func (r *RingBuffer) SetSampleEvery(n uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 1 {
		n = 0
	}
	r.sampleEvery = n
	r.sampleTick = 0
}

// SampleDrops returns how many writes sampling mode rejected. They are
// included in Drops as well; this counter isolates the degraded-mode
// share.
func (r *RingBuffer) SampleDrops() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sampleDrops
}

// PerCPURing is a machine's trace buffer: one RingBuffer per simulated
// CPU, mirroring the kernel's per-CPU perf buffers. Producers route by
// executing CPU and so never contend with producers on other CPUs; the
// drain side visits rings in CPU order. Record order is preserved within
// each CPU; ordering across CPUs is not defined (consumers join on trace
// ID and timestamps, never on arrival order).
type PerCPURing struct {
	rings []*RingBuffer
}

// NewPerCPURing allocates ncpu rings of perRingBytes each. ncpu is
// clamped to at least 1; perRingBytes must be in the paper's per-ring
// range [MinBufferBytes, MaxBufferBytes].
func NewPerCPURing(ncpu, perRingBytes int) (*PerCPURing, error) {
	if ncpu < 1 {
		ncpu = 1
	}
	rings := make([]*RingBuffer, ncpu)
	for i := range rings {
		rb, err := NewRingBuffer(perRingBytes)
		if err != nil {
			return nil, err
		}
		rings[i] = rb
	}
	return &PerCPURing{rings: rings}, nil
}

// NumRings returns the ring count (the machine's CPU count).
func (p *PerCPURing) NumRings() int { return len(p.rings) }

// Ring returns the ring for a CPU. Out-of-range CPUs wrap, so records
// from a mis-sized topology are never silently lost.
func (p *PerCPURing) Ring(cpu uint32) *RingBuffer {
	return p.rings[int(cpu)%len(p.rings)]
}

// Emit writes data into the executing CPU's ring: the perf_event_output
// sink. It is Reserve+copy+Commit on the routed ring.
func (p *PerCPURing) Emit(cpu uint32, data []byte) bool {
	return p.Ring(cpu).Write(data)
}

// DrainInto appends every ring's committed bytes to dst in CPU order and
// empties them, returning the extended slice. Within-CPU record order is
// preserved; a caller recycling dst drains allocation-free.
func (p *PerCPURing) DrainInto(dst []byte) []byte {
	for _, r := range p.rings {
		dst = r.DrainInto(dst)
	}
	return dst
}

// Drain removes and returns all buffered bytes across rings (nil when
// empty).
func (p *PerCPURing) Drain() []byte {
	out := p.DrainInto(nil)
	if len(out) == 0 {
		return nil
	}
	return out
}

// Used returns occupied bytes summed over rings.
func (p *PerCPURing) Used() int {
	n := 0
	for _, r := range p.rings {
		n += r.Used()
	}
	return n
}

// Cap returns total capacity summed over rings.
func (p *PerCPURing) Cap() int {
	n := 0
	for _, r := range p.rings {
		n += r.Cap()
	}
	return n
}

// RingCap returns the capacity of one ring.
func (p *PerCPURing) RingCap() int { return p.rings[0].Cap() }

// Drops returns rejected writes summed over rings.
func (p *PerCPURing) Drops() uint64 {
	var n uint64
	for _, r := range p.rings {
		n += r.Drops()
	}
	return n
}

// Writes returns successful writes summed over rings.
func (p *PerCPURing) Writes() uint64 {
	var n uint64
	for _, r := range p.rings {
		n += r.Writes()
	}
	return n
}

// SetSampleEvery switches every ring into (or out of) head-drop
// sampling mode; see RingBuffer.SetSampleEvery.
func (p *PerCPURing) SetSampleEvery(n uint64) {
	for _, r := range p.rings {
		r.SetSampleEvery(n)
	}
}

// SampleDrops returns sampling-mode drops summed over rings.
func (p *PerCPURing) SampleDrops() uint64 {
	var n uint64
	for _, r := range p.rings {
		n += r.SampleDrops()
	}
	return n
}

// AppendPerRingDrops appends each ring's cumulative drop counter to dst
// in CPU order and returns the extended slice. The agent uses it to turn
// per-ring counters into exact per-batch drop deltas without allocating.
func (p *PerCPURing) AppendPerRingDrops(dst []uint64) []uint64 {
	for _, r := range p.rings {
		dst = append(dst, r.Drops())
	}
	return dst
}
