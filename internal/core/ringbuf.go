package core

import (
	"errors"
	"fmt"
	"sync"
)

// Ring buffer size limits. The paper (Section III-C, footnote 1): "the
// buffer size range is from 32 bytes to 128k-16 bytes" due to kmalloc
// limits in its kernel module.
const (
	MinBufferBytes = 32
	MaxBufferBytes = 128*1024 - 16
)

// ErrBufferSize rejects out-of-range buffer sizes.
var ErrBufferSize = errors.New("core: buffer size out of range")

// RingBuffer is the per-node kernel memory buffer that stages raw trace
// data between the in-kernel trace programs and the userspace agent
// (mmap'd to /proc in the paper's implementation, avoiding per-event
// kernel/user copies). Writes beyond capacity are dropped and counted —
// losing trace data under overload is preferred over slowing the kernel.
type RingBuffer struct {
	mu      sync.Mutex
	buf     []byte
	used    int
	drops   uint64
	writes  uint64
	drained uint64
}

// NewRingBuffer allocates a buffer of the given byte capacity.
func NewRingBuffer(capacity int) (*RingBuffer, error) {
	if capacity < MinBufferBytes || capacity > MaxBufferBytes {
		return nil, fmt.Errorf("%w: %d not in [%d, %d]", ErrBufferSize, capacity, MinBufferBytes, MaxBufferBytes)
	}
	return &RingBuffer{buf: make([]byte, capacity)}, nil
}

// Write appends data, returning false (and counting a drop) when it does
// not fit. This is the perf_event_output sink.
func (r *RingBuffer) Write(data []byte) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.used+len(data) > len(r.buf) {
		r.drops++
		return false
	}
	copy(r.buf[r.used:], data)
	r.used += len(data)
	r.writes++
	return true
}

// Drain removes and returns all buffered bytes. The agent calls this
// periodically ("we periodically dump the tracing data from the buffer").
func (r *RingBuffer) Drain() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.used == 0 {
		return nil
	}
	out := make([]byte, r.used)
	copy(out, r.buf[:r.used])
	r.used = 0
	r.drained++
	return out
}

// Used returns the occupied bytes.
func (r *RingBuffer) Used() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.used
}

// Cap returns the buffer capacity.
func (r *RingBuffer) Cap() int { return len(r.buf) }

// Drops returns how many writes were rejected for lack of space.
func (r *RingBuffer) Drops() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.drops
}

// Writes returns the number of successful writes.
func (r *RingBuffer) Writes() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.writes
}
