package core

import (
	"testing"
)

func TestRingBufferReserveCommit(t *testing.T) {
	rb, err := NewRingBuffer(100)
	if err != nil {
		t.Fatal(err)
	}
	dst := rb.Reserve(48)
	if dst == nil || len(dst) != 48 {
		t.Fatalf("Reserve(48) = %v", dst)
	}
	for i := range dst {
		dst[i] = byte(i)
	}
	rb.Commit()
	if rb.Used() != 48 || rb.Writes() != 1 {
		t.Fatalf("used=%d writes=%d after commit", rb.Used(), rb.Writes())
	}
	// A second record fits; an aborted reservation leaves no trace.
	dst = rb.Reserve(48)
	if dst == nil {
		t.Fatal("second reserve failed")
	}
	rb.Abort()
	if rb.Used() != 48 || rb.Writes() != 1 || rb.Drops() != 0 {
		t.Fatalf("abort leaked state: used=%d writes=%d drops=%d", rb.Used(), rb.Writes(), rb.Drops())
	}
	// Over-capacity reservation drops.
	if rb.Reserve(53) != nil {
		t.Fatal("over-capacity reserve succeeded")
	}
	if rb.Drops() != 1 {
		t.Fatalf("drops = %d", rb.Drops())
	}
	data := rb.Drain()
	if len(data) != 48 || data[0] != 0 || data[47] != 47 {
		t.Fatalf("drained %d bytes, content %v...", len(data), data[:4])
	}
}

func TestRingBufferReserveSerializesInPlace(t *testing.T) {
	rb, err := NewRingBuffer(MinBufferBytes + 48)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{TraceID: 9, TPID: 3, TimeNs: 77, CPU: 1, Seq: 5, Proto: 17}
	dst := rb.Reserve(RecordSize)
	rec.MarshalTo(dst)
	rb.Commit()
	recs, err := UnmarshalRecords(rb.Drain())
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0] != rec {
		t.Fatalf("round trip through ring: %+v", recs)
	}
}

func TestRingBufferDrainIntoReusesBuffer(t *testing.T) {
	rb, err := NewRingBuffer(4096)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 4096)
	for round := 0; round < 3; round++ {
		if !rb.Write(make([]byte, 96)) {
			t.Fatal("write failed")
		}
		out := rb.DrainInto(buf[:0])
		if len(out) != 96 {
			t.Fatalf("round %d: drained %d bytes", round, len(out))
		}
		if &out[0] != &buf[:1][0] {
			t.Fatalf("round %d: DrainInto reallocated despite capacity", round)
		}
	}
	if rb.DrainInto(buf[:0]) == nil {
		// Empty drain returns dst unchanged; buf[:0] is non-nil.
		t.Fatal("empty DrainInto dropped the caller's buffer")
	}
}

func TestPerCPURingRoutesByCPU(t *testing.T) {
	p, err := NewPerCPURing(4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRings() != 4 || p.Cap() != 4*1024 || p.RingCap() != 1024 {
		t.Fatalf("rings=%d cap=%d ringcap=%d", p.NumRings(), p.Cap(), p.RingCap())
	}
	for cpu := uint32(0); cpu < 4; cpu++ {
		if !p.Emit(cpu, []byte{byte(cpu)}) {
			t.Fatalf("emit on cpu %d failed", cpu)
		}
	}
	for cpu := uint32(0); cpu < 4; cpu++ {
		if p.Ring(cpu).Used() != 1 {
			t.Fatalf("cpu %d ring holds %d bytes", cpu, p.Ring(cpu).Used())
		}
	}
	// Out-of-range CPUs wrap instead of dropping.
	if !p.Emit(6, []byte{0xff}) {
		t.Fatal("wrapped emit failed")
	}
	if p.Ring(2).Used() != 2 {
		t.Fatal("cpu 6 did not wrap onto ring 2")
	}
	if p.Used() != 5 {
		t.Fatalf("total used = %d", p.Used())
	}
	// Drain concatenates in CPU order.
	data := p.Drain()
	want := []byte{0, 1, 2, 0xff, 3}
	if len(data) != len(want) {
		t.Fatalf("drained %v", data)
	}
	for i := range want {
		if data[i] != want[i] {
			t.Fatalf("drained %v, want %v", data, want)
		}
	}
	if p.Used() != 0 || p.Drain() != nil {
		t.Fatal("drain did not empty all rings")
	}
}

func TestPerCPURingPerRingDrops(t *testing.T) {
	p, err := NewPerCPURing(2, MinBufferBytes)
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, MinBufferBytes)
	if !p.Emit(0, big) {
		t.Fatal("first write must fit exactly")
	}
	// Ring 0 is now full; ring 1 untouched.
	if p.Emit(0, []byte{1}) {
		t.Fatal("write into full ring succeeded")
	}
	if p.Emit(0, big) {
		t.Fatal("write into full ring succeeded")
	}
	if !p.Emit(1, []byte{1}) {
		t.Fatal("independent ring rejected a fitting write")
	}
	drops := p.AppendPerRingDrops(nil)
	if len(drops) != 2 || drops[0] != 2 || drops[1] != 0 {
		t.Fatalf("per-ring drops = %v", drops)
	}
	if p.Drops() != 2 || p.Writes() != 2 {
		t.Fatalf("drops=%d writes=%d", p.Drops(), p.Writes())
	}
}

func TestPerCPURingRejectsBadSizes(t *testing.T) {
	if _, err := NewPerCPURing(2, MinBufferBytes-1); err == nil {
		t.Fatal("tiny per-ring capacity accepted")
	}
	if _, err := NewPerCPURing(2, MaxBufferBytes+1); err == nil {
		t.Fatal("huge per-ring capacity accepted")
	}
	// ncpu clamps to 1.
	p, err := NewPerCPURing(0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumRings() != 1 {
		t.Fatalf("rings = %d", p.NumRings())
	}
}

func TestRecordMarshalToMatchesMarshal(t *testing.T) {
	r := Record{
		TraceID: 0xdeadbeef, TPID: 7, TimeNs: 123456789012,
		Len: 1500, CPU: 3, Seq: 42,
		SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: 40000, DstPort: 9000, Proto: 17, Dir: 1,
	}
	viaAppend := r.Marshal(nil)
	inPlace := make([]byte, RecordSize)
	for i := range inPlace {
		inPlace[i] = 0xAA // stale garbage MarshalTo must fully overwrite
	}
	r.MarshalTo(inPlace)
	for i := range viaAppend {
		if viaAppend[i] != inPlace[i] {
			t.Fatalf("byte %d: Marshal=%#x MarshalTo=%#x", i, viaAppend[i], inPlace[i])
		}
	}
}
