package core

import (
	"encoding/binary"
	"fmt"
)

// RecordSize is the fixed length of a raw trace record as emitted by trace
// programs through perf_event_output and parsed by the collector.
const RecordSize = 48

// Record is one trace observation: packet identity, where and when it was
// seen. Records from all tracepoints are joined on TraceID to reconstruct
// per-packet paths (paper Section III-C: "records are indexed by their
// packet IDs").
type Record struct {
	TraceID uint32
	// TPID identifies the tracepoint that produced the record; the
	// dispatcher assigns these in the control package.
	TPID   uint32
	TimeNs uint64 // node CLOCK_MONOTONIC
	Len    uint32 // wire length
	CPU    uint32
	Seq    uint64
	SrcIP  uint32
	DstIP  uint32
	SrcPort uint16
	DstPort uint16
	Proto  uint8
	Dir    uint8
}

// MarshalTo serializes the 48-byte wire form in place into dst, which
// must hold at least RecordSize bytes. This is the zero-copy path: the
// ring-buffer reserve/commit producer and the batch wire encoder hand it
// a slice directly into their destination buffer. Bytes 46-47 of dst are
// reserved padding and are zeroed.
func (r *Record) MarshalTo(dst []byte) {
	le := binary.LittleEndian
	le.PutUint32(dst[0:], r.TraceID)
	le.PutUint32(dst[4:], r.TPID)
	le.PutUint64(dst[8:], r.TimeNs)
	le.PutUint32(dst[16:], r.Len)
	le.PutUint32(dst[20:], r.CPU)
	le.PutUint64(dst[24:], r.Seq)
	le.PutUint32(dst[32:], r.SrcIP)
	le.PutUint32(dst[36:], r.DstIP)
	le.PutUint16(dst[40:], r.SrcPort)
	le.PutUint16(dst[42:], r.DstPort)
	dst[44] = r.Proto
	dst[45] = r.Dir
	dst[46], dst[47] = 0, 0
}

// zeroRecord grows destination slices in Marshal without a temporary.
var zeroRecord [RecordSize]byte

// Marshal appends the 48-byte wire form to b. It allocates only when b
// lacks capacity; writers that already own destination space should use
// MarshalTo.
func (r *Record) Marshal(b []byte) []byte {
	n := len(b)
	b = append(b, zeroRecord[:]...)
	r.MarshalTo(b[n:])
	return b
}

// UnmarshalRecord parses one record from b.
func UnmarshalRecord(b []byte) (Record, error) {
	if len(b) < RecordSize {
		return Record{}, fmt.Errorf("core: record too short: %d bytes", len(b))
	}
	le := binary.LittleEndian
	return Record{
		TraceID: le.Uint32(b[0:]),
		TPID:    le.Uint32(b[4:]),
		TimeNs:  le.Uint64(b[8:]),
		Len:     le.Uint32(b[16:]),
		CPU:     le.Uint32(b[20:]),
		Seq:     le.Uint64(b[24:]),
		SrcIP:   le.Uint32(b[32:]),
		DstIP:   le.Uint32(b[36:]),
		SrcPort: le.Uint16(b[40:]),
		DstPort: le.Uint16(b[42:]),
		Proto:   b[44],
		Dir:     b[45],
	}, nil
}

// UnmarshalRecords parses a concatenation of records, as drained from the
// ring buffer.
func UnmarshalRecords(b []byte) ([]Record, error) {
	if len(b)%RecordSize != 0 {
		return nil, fmt.Errorf("core: record stream length %d not a multiple of %d", len(b), RecordSize)
	}
	out := make([]Record, 0, len(b)/RecordSize)
	for off := 0; off < len(b); off += RecordSize {
		r, err := UnmarshalRecord(b[off:])
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
