package core

import (
	"errors"
	"testing"
	"testing/quick"

	"vnettracer/internal/ebpf"
	"vnettracer/internal/kernel"
	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

func TestRecordRoundTrip(t *testing.T) {
	r := Record{
		TraceID: 0xdeadbeef, TPID: 7, TimeNs: 123456789012,
		Len: 1500, CPU: 3, Seq: 42,
		SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: 40000, DstPort: 9000, Proto: 17, Dir: 1,
	}
	b := r.Marshal(nil)
	if len(b) != RecordSize {
		t.Fatalf("marshal len = %d", len(b))
	}
	got, err := UnmarshalRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("round trip: %+v != %+v", got, r)
	}
}

func TestRecordRoundTripQuick(t *testing.T) {
	f := func(traceID, tpid, l, cpu, sip, dip uint32, tns, seq uint64, sp, dp uint16, proto, dir uint8) bool {
		r := Record{
			TraceID: traceID, TPID: tpid, TimeNs: tns, Len: l, CPU: cpu,
			Seq: seq, SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp,
			Proto: proto, Dir: dir,
		}
		got, err := UnmarshalRecord(r.Marshal(nil))
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalRecordsStream(t *testing.T) {
	var b []byte
	for i := 0; i < 5; i++ {
		r := Record{TraceID: uint32(i + 1), TPID: 1}
		b = r.Marshal(b)
	}
	recs, err := UnmarshalRecords(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[4].TraceID != 5 {
		t.Fatalf("records = %+v", recs)
	}
	if _, err := UnmarshalRecords(b[:10]); err == nil {
		t.Fatal("ragged stream accepted")
	}
}

func TestRingBufferLimits(t *testing.T) {
	if _, err := NewRingBuffer(MinBufferBytes - 1); !errors.Is(err, ErrBufferSize) {
		t.Fatalf("tiny buffer: %v", err)
	}
	if _, err := NewRingBuffer(MaxBufferBytes + 1); !errors.Is(err, ErrBufferSize) {
		t.Fatalf("huge buffer: %v", err)
	}
	for _, ok := range []int{MinBufferBytes, MaxBufferBytes, 4096} {
		if _, err := NewRingBuffer(ok); err != nil {
			t.Fatalf("NewRingBuffer(%d): %v", ok, err)
		}
	}
}

func TestRingBufferWriteDrainDrop(t *testing.T) {
	rb, err := NewRingBuffer(100)
	if err != nil {
		t.Fatal(err)
	}
	if !rb.Write(make([]byte, 48)) || !rb.Write(make([]byte, 48)) {
		t.Fatal("writes within capacity failed")
	}
	if rb.Write(make([]byte, 48)) {
		t.Fatal("overfull write succeeded")
	}
	if rb.Drops() != 1 || rb.Writes() != 2 || rb.Used() != 96 {
		t.Fatalf("drops=%d writes=%d used=%d", rb.Drops(), rb.Writes(), rb.Used())
	}
	data := rb.Drain()
	if len(data) != 96 {
		t.Fatalf("drained %d", len(data))
	}
	if rb.Used() != 0 {
		t.Fatal("drain did not empty buffer")
	}
	if rb.Drain() != nil {
		t.Fatal("empty drain should return nil")
	}
	// Space is reclaimed.
	if !rb.Write(make([]byte, 48)) {
		t.Fatal("write after drain failed")
	}
}

func TestBuildCtxFields(t *testing.T) {
	p := &vnet.Packet{
		IP: vnet.IPv4Header{Protocol: vnet.ProtoUDP,
			Src: vnet.MustParseIPv4("10.0.0.1"), Dst: vnet.MustParseIPv4("10.0.0.2")},
		UDP:     &vnet.UDPHeader{SrcPort: 1234, DstPort: 9000},
		Payload: make([]byte, 56),
		Seq:     99,
		TraceID: 0xabcd,
	}
	pc := &kernel.ProbeCtx{
		Pkt: p, CPU: 2, DevIfindex: 5, Dir: vnet.Ingress, TimeNs: 1_000_000,
	}
	ctx := BuildCtx(nil, pc)
	if len(ctx) != CtxSize {
		t.Fatalf("ctx len = %d", len(ctx))
	}
	get32 := func(off int) uint32 {
		return uint32(ctx[off]) | uint32(ctx[off+1])<<8 | uint32(ctx[off+2])<<16 | uint32(ctx[off+3])<<24
	}
	get64 := func(off int) uint64 {
		return uint64(get32(off)) | uint64(get32(off+4))<<32
	}
	if get32(CtxLen) != uint32(p.WireLen()) {
		t.Errorf("len = %d", get32(CtxLen))
	}
	if get32(CtxSrcIP) != 0x0a000001 || get32(CtxDstIP) != 0x0a000002 {
		t.Errorf("ips = %#x %#x", get32(CtxSrcIP), get32(CtxDstIP))
	}
	if get32(CtxSrcPort) != 1234 || get32(CtxDstPort) != 9000 {
		t.Errorf("ports = %d %d", get32(CtxSrcPort), get32(CtxDstPort))
	}
	if get32(CtxIPProto) != 17 || get32(CtxTraceID) != 0xabcd {
		t.Errorf("proto/id = %d %#x", get32(CtxIPProto), get32(CtxTraceID))
	}
	if get32(CtxCPU) != 2 || get32(CtxIfindex) != 5 || get32(CtxDir) != 1 {
		t.Errorf("cpu/ifindex/dir = %d %d %d", get32(CtxCPU), get32(CtxIfindex), get32(CtxDir))
	}
	if get64(CtxSeq) != 99 || get64(CtxTimeNs) != 1_000_000 {
		t.Errorf("seq/time = %d %d", get64(CtxSeq), get64(CtxTimeNs))
	}
	if get32(CtxEncap) != 0 {
		t.Errorf("encap = %d", get32(CtxEncap))
	}
}

func TestBuildCtxEncapUsesInnerFlow(t *testing.T) {
	inner := &vnet.Packet{
		IP:      vnet.IPv4Header{Protocol: vnet.ProtoTCP, Src: 1, Dst: 2},
		TCP:     &vnet.TCPHeader{SrcPort: 10, DstPort: 20},
		TraceID: 77,
	}
	outer := &vnet.Packet{
		IP:    vnet.IPv4Header{Protocol: vnet.ProtoUDP, Src: 100, Dst: 200},
		UDP:   &vnet.UDPHeader{SrcPort: 48879, DstPort: 4789},
		VXLAN: &vnet.VXLANHeader{VNI: 1},
		Inner: inner,
	}
	ctx := BuildCtx(nil, &kernel.ProbeCtx{Pkt: outer})
	get32 := func(off int) uint32 {
		return uint32(ctx[off]) | uint32(ctx[off+1])<<8 | uint32(ctx[off+2])<<16 | uint32(ctx[off+3])<<24
	}
	if get32(CtxSrcIP) != 1 || get32(CtxDstIP) != 2 || get32(CtxIPProto) != 6 {
		t.Fatal("ctx did not strip VXLAN to the inner flow")
	}
	if get32(CtxTraceID) != 77 {
		t.Fatalf("inner trace id = %d", get32(CtxTraceID))
	}
	if get32(CtxEncap) != 1 {
		t.Fatal("encap flag not set")
	}
}

func TestBuildCtxNilPacket(t *testing.T) {
	ctx := BuildCtx(nil, &kernel.ProbeCtx{CPU: 1, TimeNs: 5})
	if len(ctx) != CtxSize {
		t.Fatal("bad size")
	}
	if ctx[CtxSrcIP] != 0 || ctx[CtxLen] != 0 {
		t.Fatal("flow fields must be zero for packet-less probes")
	}
}

// minimal recording program: store ctx trace_id and time on the stack, emit
// 16 bytes.
const miniRecorder = `
	mov r6, r1
	ldxw r2, [r6+32]
	stxdw [r10-16], r2
	ldxdw r2, [r6+56]
	stxdw [r10-8], r2
	mov r1, r6
	mov r2, 0
	mov r3, r10
	add r3, -16
	mov r4, 16
	call perf_event_output
	mov r0, 0
	exit
`

func loadMini(t *testing.T) *ebpf.Program {
	t.Helper()
	insns, maps := ebpf.MustAssemble(miniRecorder, nil)
	p, err := ebpf.Load(ebpf.ProgramSpec{
		Name: "mini", Type: ebpf.ProgTypeKprobe, Insns: insns, Maps: maps, CtxSize: CtxSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newMachine(t *testing.T) (*sim.Engine, *Machine) {
	t.Helper()
	eng := sim.NewEngine(1)
	node := kernel.NewNode(eng, kernel.NodeConfig{Name: "m0", NumCPU: 2})
	m, err := NewMachine(node, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	return eng, m
}

func TestMachineAttachKprobe(t *testing.T) {
	eng, m := newMachine(t)
	h, err := m.Attach(loadMini(t), AttachPoint{Kind: AttachKProbe, Site: kernel.SiteNetRxAction}, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	p := &vnet.Packet{IP: vnet.IPv4Header{Protocol: vnet.ProtoUDP}, UDP: &vnet.UDPHeader{}, TraceID: 5}
	m.Node.SoftirqNetRX(p, nil, func(*vnet.Packet) {})
	eng.RunUntilIdle()
	if h.Stats().Invocations != 1 {
		t.Fatalf("invocations = %d", h.Stats().Invocations)
	}
	if h.Stats().CostNs <= 0 {
		t.Fatal("tracing must cost CPU time")
	}
	if m.Ring.Used() != 16 {
		t.Fatalf("ring has %d bytes, want 16", m.Ring.Used())
	}
	h.Detach()
	m.Node.SoftirqNetRX(p, nil, func(*vnet.Packet) {})
	eng.RunUntilIdle()
	if h.Stats().Invocations != 1 {
		t.Fatal("detached program still firing")
	}
}

func TestMachineAttachDeviceHook(t *testing.T) {
	eng, m := newMachine(t)
	dev := vnet.NewNetDev(eng, vnet.NetDevConfig{Name: "ens3", Ifindex: 3, Out: func(*vnet.Packet) {}})
	if err := m.RegisterDevice(dev); err != nil {
		t.Fatal(err)
	}
	h, err := m.Attach(loadMini(t), AttachPoint{Kind: AttachDevice, Device: "ens3", Dir: vnet.Ingress}, DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	dev.Receive(&vnet.Packet{IP: vnet.IPv4Header{Protocol: vnet.ProtoUDP}, UDP: &vnet.UDPHeader{}})
	eng.RunUntilIdle()
	if h.Stats().Invocations != 1 {
		t.Fatalf("invocations = %d", h.Stats().Invocations)
	}
}

func TestMachineAttachUnknownDevice(t *testing.T) {
	_, m := newMachine(t)
	if _, err := m.Attach(loadMini(t), AttachPoint{Kind: AttachDevice, Device: "nope"}, DefaultCostModel()); err == nil {
		t.Fatal("attach to unknown device succeeded")
	}
}

func TestMachineRejectsWrongCtxSize(t *testing.T) {
	_, m := newMachine(t)
	insns, _ := ebpf.MustAssemble("mov r0, 0\nexit", nil)
	p, err := ebpf.Load(ebpf.ProgramSpec{Name: "tiny", Type: ebpf.ProgTypeKprobe, Insns: insns, CtxSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Attach(p, AttachPoint{Kind: AttachKProbe, Site: "x"}, DefaultCostModel()); err == nil {
		t.Fatal("wrong ctx size accepted")
	}
}

func TestMachineDuplicateDevice(t *testing.T) {
	eng, m := newMachine(t)
	dev := vnet.NewNetDev(eng, vnet.NetDevConfig{Name: "eth0"})
	if err := m.RegisterDevice(dev); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterDevice(dev); err == nil {
		t.Fatal("duplicate device registration accepted")
	}
}

func TestCostModelPricing(t *testing.T) {
	cm := CostModel{BaseNs: 10, InsnNs: 2, HelperNs: 5}
	got := cm.Cost(ebpf.ExecStats{Insns: 20, HelperCalls: 3})
	if got != 10+40+15 {
		t.Fatalf("cost = %d", got)
	}
}
