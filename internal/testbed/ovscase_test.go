package testbed

import "testing"

// runCase is a test helper with a reduced ping count for speed.
func runCase(t *testing.T, cfg OVSCaseConfig) OVSCaseResult {
	t.Helper()
	cfg.Pings = 2000
	res, err := RunOVSCase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%-9s %s loss=%.3f segs=%v", res.Label, res.Sockperf, res.LossRate, res.Segments)
	return res
}

func TestFig8bCongestionRaisesTailLatency(t *testing.T) {
	caseI := runCase(t, OVSCaseConfig{})
	caseII := runCase(t, OVSCaseConfig{IperfVM0: 1})
	caseIII := runCase(t, OVSCaseConfig{IperfVM0: 1, ExtraVMs: 1})

	if caseI.LossRate != 0 {
		t.Errorf("Case I loss = %.3f, want 0", caseI.LossRate)
	}
	// Tail latency rises sharply from I to II, and again from II to III.
	if caseII.Sockperf.P999Us < 10*caseI.Sockperf.P999Us {
		t.Errorf("Case II p99.9 %.1fus not >>10x Case I %.1fus",
			caseII.Sockperf.P999Us, caseI.Sockperf.P999Us)
	}
	if caseIII.Sockperf.P999Us <= caseII.Sockperf.P999Us {
		t.Errorf("Case III p99.9 %.1fus not above Case II %.1fus",
			caseIII.Sockperf.P999Us, caseII.Sockperf.P999Us)
	}
}

func TestFig9aOVSDominatesDecomposition(t *testing.T) {
	res := runCase(t, OVSCaseConfig{IperfVM0: 1})
	var ovsMean, otherMean float64
	for _, s := range res.Segments {
		if s.Count == 0 {
			t.Fatalf("segment %s has no joined packets", s.Name)
		}
		if s.Name == "ovs" {
			ovsMean = s.MeanUs
		} else {
			otherMean += s.MeanUs
		}
	}
	// Paper: "the time spent inside the OVS dominated the total
	// transmission time".
	if ovsMean < 10*otherMean {
		t.Errorf("OVS segment %.1fus does not dominate stacks %.1fus", ovsMean, otherMean)
	}
}

func TestFig9aIngressSaturationGapFlat(t *testing.T) {
	caseII := runCase(t, OVSCaseConfig{IperfVM0: 1})
	caseIIPlus := runCase(t, OVSCaseConfig{IperfVM0: 3})
	ovsII := segMean(t, caseII, "ovs")
	ovsIIPlus := segMean(t, caseIIPlus, "ovs")
	// Paper: "such a gap does not increase when we added more application
	// clients on VM0 in Case II+ because the queue at ingress is highly
	// saturated". Allow 15% slack.
	if ovsIIPlus > ovsII*1.15 || ovsIIPlus < ovsII*0.85 {
		t.Errorf("Case II+ OVS segment %.1fus should stay near Case II %.1fus", ovsIIPlus, ovsII)
	}
}

func TestFig9aCrossPortGapGrows(t *testing.T) {
	caseIII := runCase(t, OVSCaseConfig{IperfVM0: 1, ExtraVMs: 1})
	caseIIIPlus := runCase(t, OVSCaseConfig{IperfVM0: 1, ExtraVMs: 3})
	ovsIII := segMean(t, caseIII, "ovs")
	ovsIIIPlus := segMean(t, caseIIIPlus, "ovs")
	// Paper: the cross-port processing delay "increased when more clients
	// are sending packets through more OVS ingress ports in Case III+".
	if ovsIIIPlus <= ovsIII*1.2 {
		t.Errorf("Case III+ OVS segment %.1fus should exceed Case III %.1fus", ovsIIIPlus, ovsIII)
	}
}

func TestFig9bRateLimitRestoresLatency(t *testing.T) {
	congested := runCase(t, OVSCaseConfig{IperfVM0: 1, ExtraVMs: 1})
	policed := runCase(t, OVSCaseConfig{IperfVM0: 1, ExtraVMs: 1, Police: true})
	if policed.PolicerDrops == 0 {
		t.Fatal("policer never dropped: mitigation inactive")
	}
	// Paper: "both the average and tail latency of Sockperf decreased
	// significantly with rate limit in the OVS".
	if policed.Sockperf.MeanUs > congested.Sockperf.MeanUs/5 {
		t.Errorf("policed mean %.1fus not <<5x congested %.1fus",
			policed.Sockperf.MeanUs, congested.Sockperf.MeanUs)
	}
	if policed.Sockperf.P999Us > congested.Sockperf.P999Us {
		t.Errorf("policed p99.9 %.1fus above congested %.1fus",
			policed.Sockperf.P999Us, congested.Sockperf.P999Us)
	}
}

func TestFig9bHTBShaperSimilar(t *testing.T) {
	// Paper: "we also tried setting QoS policy with Hierarchy Token Bucket
	// (HTB) at the virtual port of OVS ... The effect was similar as the
	// results using rate limit".
	congested := runCase(t, OVSCaseConfig{IperfVM0: 1, ExtraVMs: 1})
	shaped := runCase(t, OVSCaseConfig{IperfVM0: 1, ExtraVMs: 1, HTB: true})
	if shaped.ShaperDrops == 0 {
		t.Fatal("HTB qdisc never dropped: shaping inactive")
	}
	if shaped.Sockperf.MeanUs > congested.Sockperf.MeanUs/5 {
		t.Errorf("HTB mean %.1fus not <<5x congested %.1fus",
			shaped.Sockperf.MeanUs, congested.Sockperf.MeanUs)
	}
	// Similar to the policing mitigation.
	policed := runCase(t, OVSCaseConfig{IperfVM0: 1, ExtraVMs: 1, Police: true})
	if shaped.Sockperf.MeanUs > 5*policed.Sockperf.MeanUs {
		t.Errorf("HTB mean %.1fus not similar to policing %.1fus",
			shaped.Sockperf.MeanUs, policed.Sockperf.MeanUs)
	}
}

func segMean(t *testing.T, res OVSCaseResult, name string) float64 {
	t.Helper()
	for _, s := range res.Segments {
		if s.Name == name {
			return s.MeanUs
		}
	}
	t.Fatalf("segment %q missing in %s", name, res.Label)
	return 0
}
