package testbed

import (
	"testing"

	"vnettracer/internal/hyper"
)

func runXen(t *testing.T, cfg XenConfig) XenResult {
	t.Helper()
	if cfg.Requests == 0 {
		cfg.Requests = 1500
	}
	res, err := RunXenCase(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%-30s %s wake=%.0fus", res.Label, res.AppLatency, res.MeanWakeDelayUs)
	return res
}

func TestFig10aXenSockperfTailLatency(t *testing.T) {
	base := runXen(t, XenConfig{Workload: XenSockperf})
	cons := runXen(t, XenConfig{Workload: XenSockperf, Consolidated: true, RatelimitUs: 1000})
	fixed := runXen(t, XenConfig{Workload: XenSockperf, Consolidated: true, RatelimitUs: 0})

	// Paper: "the 99.9th percentile latency increased 22x compared to the
	// baseline". Require at least 10x.
	ratio := cons.AppLatency.P999Us / base.AppLatency.P999Us
	if ratio < 10 || ratio > 40 {
		t.Errorf("consolidated p99.9 ratio = %.1fx, want ~22x", ratio)
	}
	// Paper: "the network latency with rate limit disabled is close to the
	// baseline".
	if fixed.AppLatency.P999Us > base.AppLatency.P999Us*1.5 {
		t.Errorf("ratelimit=0 p99.9 %.1fus not close to baseline %.1fus",
			fixed.AppLatency.P999Us, base.AppLatency.P999Us)
	}
}

func TestFig10bXenMemcachedLatency(t *testing.T) {
	base := runXen(t, XenConfig{Workload: XenMemcached, Requests: 3000})
	cons := runXen(t, XenConfig{Workload: XenMemcached, Consolidated: true, RatelimitUs: 1000, Requests: 3000})
	fixed := runXen(t, XenConfig{Workload: XenMemcached, Consolidated: true, RatelimitUs: 0, Requests: 3000})

	// Paper: "the average and tail latency of memcached increased 4.7x and
	// 7.5x respectively". Require the blowup band, tail worse than mean.
	meanRatio := cons.AppLatency.MeanUs / base.AppLatency.MeanUs
	tailRatio := cons.AppLatency.P999Us / base.AppLatency.P999Us
	if meanRatio < 2 || meanRatio > 10 {
		t.Errorf("memcached mean ratio = %.1fx, want ~4.7x", meanRatio)
	}
	if tailRatio < 3 || tailRatio > 15 {
		t.Errorf("memcached tail ratio = %.1fx, want ~7.5x", tailRatio)
	}
	if tailRatio <= meanRatio {
		t.Errorf("tail ratio %.1fx should exceed mean ratio %.1fx", tailRatio, meanRatio)
	}
	if fixed.AppLatency.MeanUs > base.AppLatency.MeanUs*1.5 {
		t.Errorf("ratelimit=0 mean %.1fus not close to baseline %.1fus",
			fixed.AppLatency.MeanUs, base.AppLatency.MeanUs)
	}
}

func TestFig11aIdleDecompositionWireDominates(t *testing.T) {
	res := runXen(t, XenConfig{Workload: XenSockperf})
	// Paper: "when the I/O-bound VM executed alone, the client-to-server
	// transmission delay dominated the one way latency": the eth0->xenbr0
	// segment (the wire) is the largest.
	wire := res.SegmentMeans[0]
	for i := 1; i < 4; i++ {
		if res.SegmentMeans[i] >= wire {
			t.Errorf("segment %q (%.1fus) >= wire segment (%.1fus) in idle run",
				res.SegmentNames[i], res.SegmentMeans[i], wire)
		}
	}
	// Baseline jitter is a few microseconds (paper: (-7.2us, 9.2us)).
	if res.JitterHiUs > 20 || res.JitterLoUs < -20 {
		t.Errorf("baseline jitter (%.1f, %.1f)us too wide", res.JitterLoUs, res.JitterHiUs)
	}
}

func TestFig11bSchedulingDelayDominatesAndSawtooths(t *testing.T) {
	res := runXen(t, XenConfig{Workload: XenSockperf, Consolidated: true, RatelimitUs: 1000})

	// Paper: "the time spent between the backend vif1.0 in Dom0 and
	// frontend eth1 in the server VM took more than 90% of the one way
	// latency".
	var total float64
	for _, m := range res.SegmentMeans {
		total += m
	}
	if frac := res.SegmentMeans[2] / total; frac < 0.9 {
		t.Errorf("vif1.0->eth1 fraction = %.2f, want > 0.9", frac)
	}

	// The scheduling delay is bounded by the 1000us ratelimit and forms a
	// sawtooth: it both rises toward the cap and falls back repeatedly.
	var maxSeg int64
	rises, falls := 0, 0
	var prev int64 = -1
	for _, pd := range res.PerPacket {
		s := pd.Segments[2]
		if s > maxSeg {
			maxSeg = s
		}
		if prev >= 0 {
			if s > prev+50*US {
				rises++
			}
			if s < prev-50*US {
				falls++
			}
		}
		prev = s
	}
	if maxSeg > 1100*US {
		t.Errorf("scheduling delay %dus exceeds the 1000us ratelimit bound", maxSeg/US)
	}
	if maxSeg < 500*US {
		t.Errorf("scheduling delay max %dus too small for a 1000us window", maxSeg/US)
	}
	if rises < 5 || falls < 5 {
		t.Errorf("no sawtooth: rises=%d falls=%d", rises, falls)
	}

	// Consolidated jitter explodes (paper: (-117.8us, 1041.4us)).
	if res.JitterHiUs < 100 {
		t.Errorf("consolidated jitter high %.1fus, want >> baseline", res.JitterHiUs)
	}
}

func TestXenCredit1AlsoAffected(t *testing.T) {
	// Paper: "such a solution also works for the same issue in credit1".
	cons := runXen(t, XenConfig{Workload: XenSockperf, Consolidated: true, RatelimitUs: 1000, Policy: hyper.Credit1})
	fixed := runXen(t, XenConfig{Workload: XenSockperf, Consolidated: true, RatelimitUs: 0, Policy: hyper.Credit1})
	if cons.AppLatency.P999Us < 5*fixed.AppLatency.P999Us {
		t.Errorf("credit1: ratelimit tail %.1fus vs fixed %.1fus — issue not reproduced",
			cons.AppLatency.P999Us, fixed.AppLatency.P999Us)
	}
}

func TestXenSkewEstimationAccurate(t *testing.T) {
	res := runXen(t, XenConfig{Workload: XenSockperf})
	err := res.SkewEstimateNs - res.SkewTruthNs
	if err < 0 {
		err = -err
	}
	// Cristian with min-RTT sampling should land within a few
	// microseconds of the 3ms ground truth.
	if err > 10*US {
		t.Errorf("skew estimate off by %dns (est %d truth %d)", err, res.SkewEstimateNs, res.SkewTruthNs)
	}
}

func TestXenTracedDiagnosisMatchesGroundTruth(t *testing.T) {
	// The traced vif->eth1 segment must agree with the scheduler's own
	// wake-delay accounting: the tracer's diagnosis is correct.
	res := runXen(t, XenConfig{Workload: XenSockperf, Consolidated: true, RatelimitUs: 1000})
	traced := res.SegmentMeans[2]
	truth := res.MeanWakeDelayUs
	if traced < truth*0.5 || traced > truth*1.5 {
		t.Errorf("traced scheduling delay %.1fus vs ground truth wake delay %.1fus", traced, truth)
	}
}
