package testbed

import (
	"fmt"
	"sort"

	"vnettracer/internal/clocksync"
	"vnettracer/internal/core"
	"vnettracer/internal/hyper"
	"vnettracer/internal/kernel"
	"vnettracer/internal/metrics"
	"vnettracer/internal/script"
	"vnettracer/internal/sim"
	"vnettracer/internal/tracedb"
	"vnettracer/internal/vnet"
	"vnettracer/internal/workload"
)

// XenWorkload selects the guest application for the Fig. 10 experiments.
type XenWorkload int

// Workloads.
const (
	XenSockperf XenWorkload = iota + 1
	XenMemcached
)

// XenConfig parameterizes the case-study II experiment: a 1-vCPU I/O VM
// (sockperf/memcached server inside a container) optionally sharing its
// physical core with a CPU-bound VM under the Xen credit2 scheduler.
type XenConfig struct {
	// Consolidated pins a CPU-bound VM to the same physical core.
	Consolidated bool
	// RatelimitUs is the scheduler's context-switch rate limit; Xen's
	// default is 1000, the paper's fix is 0.
	RatelimitUs int64
	// Policy selects credit2 (default), credit1, or pinned.
	Policy hyper.Policy
	// Workload selects sockperf (Fig. 10a/11) or memcached (Fig. 10b).
	Workload XenWorkload
	// Requests is the number of pings / memcached requests.
	Requests int
	Seed     int64
}

// PacketDecomp is one packet's Fig. 11 decomposition, in nanoseconds.
type PacketDecomp struct {
	Seq      uint64
	Segments [4]int64 // eth0->xenbr0, xenbr0->vif1.0, vif1.0->eth1, eth1->veth
}

// XenResult reports one configuration.
type XenResult struct {
	Label      string
	AppLatency LatencyStats
	// SkewEstimateNs is the Cristian estimate of the host-vs-client clock
	// offset; SkewTruthNs is the configured ground truth.
	SkewEstimateNs int64
	SkewTruthNs    int64
	// SegmentMeans averages the four decomposition segments (traced,
	// skew-corrected), in microseconds.
	SegmentMeans [4]float64
	SegmentNames [4]string
	// PerPacket is the per-packet decomposition series (Fig. 11).
	PerPacket []PacketDecomp
	// JitterLoUs/JitterHiUs is the one-way latency jitter range, the form
	// the paper reports.
	JitterLoUs float64
	JitterHiUs float64
	// WakeDelays is the I/O vCPU ground-truth mean wake delay, for
	// validating the traced diagnosis.
	MeanWakeDelayUs float64
}

const (
	xenHostSkewNs    = 3 * int64(sim.Millisecond)
	xenSockperfPort  = 11111
	xenMemcachedPort = 11211
	xenProbePort     = 7
)

// RunXenCase builds the topology and runs one configuration.
func RunXenCase(cfg XenConfig) (XenResult, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 2000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 23
	}
	if cfg.Policy == 0 {
		cfg.Policy = hyper.Credit2
	}
	if cfg.Workload == 0 {
		cfg.Workload = XenSockperf
	}
	eng := sim.NewEngine(cfg.Seed)

	clientIP := vnet.MustParseIPv4("192.168.0.10")
	dom0IP := vnet.MustParseIPv4("192.168.0.1")
	vmIP := vnet.MustParseIPv4("192.168.0.2")

	client := kernel.NewNode(eng, kernel.NodeConfig{Name: "client", NumCPU: 20, TraceIDs: true, Seed: 1})
	dom0 := kernel.NewNode(eng, kernel.NodeConfig{
		Name: "dom0", NumCPU: 20, TraceIDs: true, Seed: 2, ClockOffsetNs: xenHostSkewNs,
	})
	vm1 := kernel.NewNode(eng, kernel.NodeConfig{
		Name: "vm1", NumCPU: 1, TraceIDs: true, Seed: 3, ClockOffsetNs: xenHostSkewNs,
	})
	clientM := newMachine(client)
	dom0M := newMachine(dom0)
	vm1M := newMachine(vm1)

	// Scheduler.
	schedCfg := hyper.Config{
		Policy:       cfg.Policy,
		RatelimitNs:  cfg.RatelimitUs * US,
		CreditInitNs: 10 * MS,
	}
	pcpu := hyper.NewPCPU(eng, schedCfg)
	ioVCPU := pcpu.AddVCPU("vm1-vcpu0", 256, false)
	if cfg.Consolidated {
		pcpu.AddVCPU("vm2-vcpu0", 256, true)
	}

	// Guest-side per-packet processing cost, charged while the vCPU holds
	// the core. Memcached does real work per request; sockperf echoes.
	guestCost := int64(5 * US)
	if cfg.Workload == XenMemcached {
		guestCost = 50 * US
	}

	// Devices and wiring.
	var toHost, toClient *vnet.Link
	eth0 := stackDev(eng, "eth0", 2, 500, nil)
	xenbr0 := stackDev(eng, "xenbr0", 3, 1000, nil)
	vif := stackDev(eng, "vif1.0", 4, 1000, nil)
	eth1 := stackDev(eng, "eth1", 5, 500, nil)
	veth := stackDev(eng, "veth684a1d9", 6, 300, nil)
	for _, reg := range []struct {
		m *core.Machine
		d *vnet.NetDev
	}{{clientM, eth0}, {dom0M, xenbr0}, {dom0M, vif}, {vm1M, eth1}, {vm1M, veth}} {
		if err := reg.m.RegisterDevice(reg.d); err != nil {
			return XenResult{}, err
		}
	}

	toHost = vnet.NewLink(eng, Gbps, 10*US, xenbr0.Receive)
	toClient = vnet.NewLink(eng, Gbps, 10*US, eth0.Receive)

	eth0.SetOut(func(p *vnet.Packet) {
		if p.IP.Dst == clientIP {
			client.SoftirqNetRX(p, eth0, client.DeliverLocal)
		} else {
			toHost.Send(p)
		}
	})
	xenbr0.SetOut(func(p *vnet.Packet) {
		switch p.IP.Dst {
		case dom0IP:
			dom0.SoftirqNetRX(p, xenbr0, dom0.DeliverLocal)
		case vmIP:
			vif.Receive(p)
		default:
			toClient.Send(p)
		}
	})
	vif.SetOut(func(p *vnet.Packet) {
		// Backend handoff: the frontend runs only when the guest vCPU is
		// scheduled — the delay vNetTracer exposes between vif1.0 and eth1.
		ioVCPU.Submit(guestCost, func() { eth1.Receive(p) })
	})
	eth1.SetOut(func(p *vnet.Packet) {
		if p.IP.Dst == vmIP {
			veth.Receive(p)
		} else {
			xenbr0.Receive(p) // guest egress back through the bridge
		}
	})
	veth.SetOut(func(p *vnet.Packet) { vm1.SoftirqNetRX(p, veth, vm1.DeliverLocal) })

	client.Egress = eth0.Receive
	dom0.Egress = xenbr0.Receive
	vm1.Egress = eth1.Receive

	// Tracing deployment.
	tr := NewTracing()
	for _, m := range []*core.Machine{clientM, dom0M, vm1M} {
		if _, err := tr.AddMachine(m); err != nil {
			return XenResult{}, err
		}
	}

	var appPort uint16 = xenSockperfPort
	if cfg.Workload == XenMemcached {
		appPort = xenMemcachedPort
	}
	fwd := script.Filter{Proto: vnet.ProtoUDP, DstPort: appPort, DstIP: vmIP}
	decompTPs := []struct {
		machine, label, device string
	}{
		{"client", "eth0", "eth0"},
		{"dom0", "xenbr0", "xenbr0"},
		{"dom0", "vif1.0", "vif1.0"},
		{"vm1", "eth1", "eth1"},
		{"vm1", "veth684a1d9", "veth684a1d9"},
	}
	for _, tp := range decompTPs {
		if _, err := tr.InstallRecord(tp.machine, tp.label,
			core.AttachPoint{Kind: core.AttachDevice, Device: tp.device, Dir: vnet.Ingress}, fwd); err != nil {
			return XenResult{}, err
		}
	}
	// Clock-skew probe tracepoints (Cristian, Fig. 4): both directions at
	// the client NIC and the host bridge.
	probeFwd := script.Filter{Proto: vnet.ProtoUDP, DstPort: xenProbePort}
	probeRev := script.Filter{Proto: vnet.ProtoUDP, DstPort: 40099}
	skewTPs := []struct {
		machine, label, device string
		f                      script.Filter
	}{
		{"client", "probe-t1", "eth0", probeFwd},
		{"dom0", "probe-t2", "xenbr0", probeFwd},
		{"dom0", "probe-t3", "xenbr0", probeRev},
		{"client", "probe-t4", "eth0", probeRev},
	}
	for _, tp := range skewTPs {
		if _, err := tr.InstallRecord(tp.machine, tp.label,
			core.AttachPoint{Kind: core.AttachDevice, Device: tp.device, Dir: vnet.Ingress}, tp.f); err != nil {
			return XenResult{}, err
		}
	}
	tr.StartFlushing(10 * MS)

	// Phase 1: clock synchronization probes (100 samples), before load.
	if _, err := workload.StartSockperfServer(dom0, kernel.SockAddr{IP: dom0IP, Port: xenProbePort}); err != nil {
		return XenResult{}, err
	}
	probe, err := workload.NewSockperfClient(client,
		kernel.SockAddr{IP: clientIP, Port: 40099},
		kernel.SockAddr{IP: dom0IP, Port: xenProbePort}, 16, 500*US)
	if err != nil {
		return XenResult{}, err
	}
	probe.Run(clocksync.DefaultSamples)
	eng.Run(int64(clocksync.DefaultSamples+20) * 500 * US)

	// Phase 2: the measured workload.
	var appLat []int64
	interval := 300 * US
	switch cfg.Workload {
	case XenSockperf:
		if _, err := workload.StartSockperfServer(vm1, kernel.SockAddr{IP: vmIP, Port: xenSockperfPort}); err != nil {
			return XenResult{}, err
		}
		cli, err := workload.NewSockperfClient(client,
			kernel.SockAddr{IP: clientIP, Port: 40000},
			kernel.SockAddr{IP: vmIP, Port: xenSockperfPort}, 56, interval)
		if err != nil {
			return XenResult{}, err
		}
		cli.Run(cfg.Requests)
		eng.Run(eng.Now() + int64(cfg.Requests)*interval + 100*MS)
		appLat = cli.Latencies()
	case XenMemcached:
		if _, err := workload.StartMemcachedServer(vm1, kernel.SockAddr{IP: vmIP, Port: xenMemcachedPort}, 1024); err != nil {
			return XenResult{}, err
		}
		cli, err := workload.NewMemcachedClient(client, clientIP, 42000, 80,
			kernel.SockAddr{IP: vmIP, Port: xenMemcachedPort}, 4)
		if err != nil {
			return XenResult{}, err
		}
		dur := int64(cfg.Requests) * SEC / 5000
		cli.Run(5000, dur)
		eng.Run(eng.Now() + dur + 100*MS)
		appLat = cli.Latencies
	}
	if err := tr.FlushAll(); err != nil {
		return XenResult{}, err
	}

	// Offline analysis: estimate skew, align, decompose.
	res := XenResult{
		Label:           xenLabel(cfg),
		AppLatency:      NewLatencyStats(appLat),
		SkewTruthNs:     xenHostSkewNs,
		MeanWakeDelayUs: float64(ioVCPU.MeanWakeDelayNs()) / 1e3,
		SegmentNames: [4]string{
			"eth0 to xenbr0", "xenbr0 to vif1.0", "vif1.0 to eth1", "eth1 to veth684a1d9",
		},
	}

	est, err := estimateSkewFromTables(
		tr.MustTable("probe-t1"), tr.MustTable("probe-t2"),
		tr.MustTable("probe-t3"), tr.MustTable("probe-t4"))
	if err != nil {
		return XenResult{}, fmt.Errorf("testbed: xen skew estimation: %w", err)
	}
	res.SkewEstimateNs = est.SkewNs
	// Align every host-side table to the client timeline.
	for _, label := range []string{"xenbr0", "vif1.0", "eth1", "veth684a1d9"} {
		t := tr.MustTable(label)
		tr.DB.SetSkew(t.TPID, est.SkewNs)
	}

	stages := []*tracedb.Table{
		tr.MustTable("eth0"), tr.MustTable("xenbr0"), tr.MustTable("vif1.0"),
		tr.MustTable("eth1"), tr.MustTable("veth684a1d9"),
	}
	perPacket := make(map[uint64]*PacketDecomp)
	for seg := 0; seg < 4; seg++ {
		lats := metrics.Latencies(stages[seg], stages[seg+1])
		var sum float64
		for _, s := range lats {
			sum += float64(s.Ns)
			pd, ok := perPacket[s.Seq]
			if !ok {
				pd = &PacketDecomp{Seq: s.Seq}
				perPacket[s.Seq] = pd
			}
			pd.Segments[seg] = s.Ns
		}
		if len(lats) > 0 {
			res.SegmentMeans[seg] = sum / float64(len(lats)) / 1e3
		}
	}
	for _, pd := range perPacket {
		res.PerPacket = append(res.PerPacket, *pd)
	}
	sort.Slice(res.PerPacket, func(i, j int) bool { return res.PerPacket[i].Seq < res.PerPacket[j].Seq })

	// Jitter of the traced one-way latency eth0 -> veth.
	oneWay := metrics.Latencies(stages[0], stages[4])
	lo, hi := metrics.JitterRange(oneWay)
	res.JitterLoUs = float64(lo) / 1e3
	res.JitterHiUs = float64(hi) / 1e3
	return res, nil
}

// estimateSkewFromTables joins the four probe tracepoints on packet
// sequence to build Cristian samples.
func estimateSkewFromTables(t1, t2, t3, t4 *tracedb.Table) (clocksync.Estimate, error) {
	bySeq := func(t *tracedb.Table) map[uint64]int64 {
		out := make(map[uint64]int64)
		t.Scan(func(r core.Record) bool {
			if _, dup := out[r.Seq]; !dup {
				out[r.Seq] = int64(r.TimeNs)
			}
			return true
		})
		return out
	}
	m1, m2, m3, m4 := bySeq(t1), bySeq(t2), bySeq(t3), bySeq(t4)
	var samples []clocksync.Sample
	for seq, ts1 := range m1 {
		ts2, ok2 := m2[seq]
		ts3, ok3 := m3[seq]
		ts4, ok4 := m4[seq]
		if ok2 && ok3 && ok4 {
			samples = append(samples, clocksync.Sample{T1: ts1, T2: ts2, T3: ts3, T4: ts4})
		}
	}
	return clocksync.EstimateSkew(samples)
}

func xenLabel(cfg XenConfig) string {
	switch {
	case !cfg.Consolidated:
		return "baseline (I/O VM alone)"
	case cfg.RatelimitUs == 0:
		return "consolidated, ratelimit=0"
	default:
		return fmt.Sprintf("consolidated, ratelimit=%dus", cfg.RatelimitUs)
	}
}
