package testbed

import (
	"testing"

	"vnettracer/internal/core"
	"vnettracer/internal/kernel"
	"vnettracer/internal/script"
	"vnettracer/internal/sim"
)

func TestTracingAddMachineDuplicate(t *testing.T) {
	eng := sim.NewEngine(1)
	node := kernel.NewNode(eng, kernel.NodeConfig{Name: "m"})
	m := newMachine(node)
	tr := NewTracing()
	if _, err := tr.AddMachine(m); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.AddMachine(m); err == nil {
		t.Fatal("duplicate machine accepted")
	}
	if _, ok := tr.Agent("m"); !ok {
		t.Fatal("agent not registered")
	}
	if _, ok := tr.Agent("ghost"); ok {
		t.Fatal("phantom agent")
	}
}

func TestTracingInstallAndTable(t *testing.T) {
	eng := sim.NewEngine(1)
	node := kernel.NewNode(eng, kernel.NodeConfig{Name: "m"})
	m := newMachine(node)
	tr := NewTracing()
	if _, err := tr.AddMachine(m); err != nil {
		t.Fatal(err)
	}
	tpid, err := tr.InstallRecord("m", "probe", core.AttachPoint{Kind: core.AttachKProbe, Site: "x"}, script.Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if tpid == 0 {
		t.Fatal("no TPID allocated")
	}
	if _, err := tr.Table("probe"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Table("ghost"); err == nil {
		t.Fatal("phantom table")
	}
	// Install to unknown machine fails.
	if _, err := tr.InstallRecord("ghost", "p2", core.AttachPoint{Kind: core.AttachKProbe, Site: "x"}, script.Filter{}); err == nil {
		t.Fatal("install to unknown machine accepted")
	}
}

func TestTracingMustTablePanicsOnUnknown(t *testing.T) {
	tr := NewTracing()
	defer func() {
		if recover() == nil {
			t.Fatal("MustTable did not panic")
		}
	}()
	tr.MustTable("ghost")
}

func TestNewLatencyStats(t *testing.T) {
	ns := make([]int64, 1000)
	for i := range ns {
		ns[i] = int64(i+1) * 1000 // 1..1000 us
	}
	s := NewLatencyStats(ns)
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.MeanUs != 500.5 {
		t.Fatalf("mean = %f", s.MeanUs)
	}
	if s.P50Us != 500 || s.P999Us != 999 || s.MaxUs != 1000 {
		t.Fatalf("percentiles = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	empty := NewLatencyStats(nil)
	if empty.Count != 0 || empty.MeanUs != 0 {
		t.Fatalf("empty stats = %+v", empty)
	}
}

func TestCaseLabels(t *testing.T) {
	tests := []struct {
		cfg  OVSCaseConfig
		want string
	}{
		{OVSCaseConfig{}, "Case I"},
		{OVSCaseConfig{IperfVM0: 1}, "Case II"},
		{OVSCaseConfig{IperfVM0: 3}, "Case II+"},
		{OVSCaseConfig{IperfVM0: 1, ExtraVMs: 1}, "Case III"},
		{OVSCaseConfig{IperfVM0: 1, ExtraVMs: 3}, "Case III+"},
	}
	for _, tc := range tests {
		if got := caseLabel(tc.cfg); got != tc.want {
			t.Errorf("caseLabel(%+v) = %q, want %q", tc.cfg, got, tc.want)
		}
	}
}

func TestXenLabels(t *testing.T) {
	if got := xenLabel(XenConfig{}); got != "baseline (I/O VM alone)" {
		t.Errorf("label = %q", got)
	}
	if got := xenLabel(XenConfig{Consolidated: true, RatelimitUs: 1000}); got != "consolidated, ratelimit=1000us" {
		t.Errorf("label = %q", got)
	}
	if got := xenLabel(XenConfig{Consolidated: true}); got != "consolidated, ratelimit=0" {
		t.Errorf("label = %q", got)
	}
}
