// Package testbed assembles the paper's experimental setups from the
// simulated substrates and drives every figure's experiment: overhead
// analysis (Fig. 7), OVS congestion (Figs. 8-9), Xen scheduler tail
// latency (Figs. 10-11), and container overlay bottlenecks (Figs. 12-13).
//
// Experiments measure through the real tracing pipeline: trace specs are
// pushed by a dispatcher to per-machine agents, compiled to eBPF, verified,
// interpreted per packet, flushed to the collector, and analyzed out of
// the trace database — never read off simulator internals (except where a
// figure explicitly compares against application-level ground truth).
package testbed

import (
	"errors"
	"fmt"
	"sort"

	"vnettracer/internal/control"
	"vnettracer/internal/core"
	"vnettracer/internal/kernel"
	"vnettracer/internal/metrics"
	"vnettracer/internal/script"
	"vnettracer/internal/sim"
	"vnettracer/internal/tracedb"
	"vnettracer/internal/vnet"
)

// Handy unit aliases.
const (
	US = int64(sim.Microsecond)
	MS = int64(sim.Millisecond)
	SEC = int64(sim.Second)

	// Gbps / Mbps in bits per second.
	Mbps = int64(1_000_000)
	Gbps = int64(1_000_000_000)
)

// Tracing bundles one experiment's tracer deployment: dispatcher,
// collector, trace DB, and one agent per machine.
type Tracing struct {
	DB         *tracedb.DB
	Collector  *control.Collector
	Dispatcher *control.Dispatcher
	Supervisor *control.Supervisor

	agents map[string]*control.Agent
	labels map[string]uint32
}

// NewTracing creates an empty tracer deployment.
func NewTracing() *Tracing {
	db := tracedb.New()
	disp := control.NewDispatcher()
	sup := control.NewSupervisor(disp)
	sup.SetLedger(db)
	return &Tracing{
		DB:         db,
		Collector:  control.NewCollector(db),
		Dispatcher: disp,
		Supervisor: sup,
		agents:     make(map[string]*control.Agent),
		labels:     make(map[string]uint32),
	}
}

// AddMachine registers a machine under an agent, granting its epoch
// lease.
func (tr *Tracing) AddMachine(m *core.Machine) (*control.Agent, error) {
	name := m.Node.Name
	if _, dup := tr.agents[name]; dup {
		return nil, fmt.Errorf("testbed: machine %q already added", name)
	}
	agent := control.NewAgent(name, m, tr.Collector)
	if err := tr.Dispatcher.Register(name, agent); err != nil {
		return nil, err
	}
	agent.SetEpoch(tr.Dispatcher.Epoch(name))
	tr.agents[name] = agent
	return agent, nil
}

// Agent returns a machine's agent.
func (tr *Tracing) Agent(machine string) (*control.Agent, bool) {
	a, ok := tr.agents[machine]
	return a, ok
}

// InstallRecord pushes a record-action script to a machine's agent; the
// label names the tracepoint and maps to an allocated TPID. It returns the
// TPID.
func (tr *Tracing) InstallRecord(machine, label string, at core.AttachPoint, filter script.Filter) (uint32, error) {
	tpid := tr.Dispatcher.AllocTPID(label)
	tr.labels[label] = tpid
	if _, err := tr.DB.CreateTable(tpid, label); err != nil {
		return 0, err
	}
	spec := script.Spec{
		Name:    label,
		TPID:    tpid,
		Attach:  at,
		Filter:  filter,
		Actions: []script.Action{script.ActionRecord},
	}
	if err := tr.Desire(machine, control.ControlPackage{Install: []script.Spec{spec}}); err != nil {
		return 0, err
	}
	return tpid, nil
}

// Desire records pkg as part of the machine's desired state and pushes
// the merged state through the supervisor, so a later re-provision (agent
// restart) restores it automatically.
func (tr *Tracing) Desire(machine string, pkg control.ControlPackage) error {
	var nowNs int64
	if a, ok := tr.agents[machine]; ok {
		nowNs = a.Machine().Node.Clock.NowNs()
	}
	return tr.Supervisor.Desire(machine, pkg, nowNs)
}

// InstallSpec pushes an arbitrary spec, creating its table when it records.
func (tr *Tracing) InstallSpec(machine string, spec script.Spec) error {
	if spec.TPID == 0 {
		spec.TPID = tr.Dispatcher.AllocTPID(spec.Name)
	}
	tr.labels[spec.Name] = spec.TPID
	for _, a := range spec.Actions {
		if a == script.ActionRecord {
			if _, err := tr.DB.CreateTable(spec.TPID, spec.Name); err != nil {
				return err
			}
			break
		}
	}
	return tr.Desire(machine, control.ControlPackage{Install: []script.Spec{spec}})
}

// StartFlushing arms every agent's periodic ring-buffer flush. Call after
// installing scripts; without it long experiments overflow the bounded
// kernel buffer (the paper dumps the buffer periodically for the same
// reason).
func (tr *Tracing) StartFlushing(intervalNs int64) {
	for _, name := range tr.agentNames() {
		tr.agents[name].StartFlushing(intervalNs)
	}
}

// agentNames returns machine names in sorted order: flush-timer creation
// order feeds the deterministic engine, so it must not follow map order.
func (tr *Tracing) agentNames() []string {
	names := make([]string, 0, len(tr.agents))
	for name := range tr.agents {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FlushAll drains every agent to the collector (offline collection at
// experiment end). Every agent is flushed even if some fail; failures
// come back joined so no machine's final records are silently stranded.
func (tr *Tracing) FlushAll() error {
	var errs []error
	for _, name := range tr.agentNames() {
		if err := tr.agents[name].Flush(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Table returns the trace table behind a label.
func (tr *Tracing) Table(label string) (*tracedb.Table, error) {
	tpid, ok := tr.labels[label]
	if !ok {
		return nil, fmt.Errorf("testbed: unknown tracepoint label %q", label)
	}
	t, ok := tr.DB.Table(tpid)
	if !ok {
		return nil, fmt.Errorf("testbed: no table for label %q", label)
	}
	return t, nil
}

// MustTable is Table for experiment code with known-good labels.
func (tr *Tracing) MustTable(label string) *tracedb.Table {
	t, err := tr.Table(label)
	if err != nil {
		panic(err)
	}
	return t
}

// LatencyStats summarises an experiment's latency distribution in
// microseconds, the unit the paper's figures use.
type LatencyStats struct {
	Count   int
	MeanUs  float64
	P50Us   float64
	P99Us   float64
	P999Us  float64
	MaxUs   float64
}

// NewLatencyStats converts nanosecond samples.
func NewLatencyStats(ns []int64) LatencyStats {
	s := metrics.Summarize(ns)
	return LatencyStats{
		Count:  s.Count,
		MeanUs: s.MeanNs / 1e3,
		P50Us:  float64(s.P50Ns) / 1e3,
		P99Us:  float64(s.P99Ns) / 1e3,
		P999Us: float64(s.P999Ns) / 1e3,
		MaxUs:  float64(s.MaxNs) / 1e3,
	}
}

func (l LatencyStats) String() string {
	return fmt.Sprintf("n=%d mean=%.1fus p50=%.1fus p99=%.1fus p99.9=%.1fus max=%.1fus",
		l.Count, l.MeanUs, l.P50Us, l.P99Us, l.P999Us, l.MaxUs)
}

// stackDev builds a simple processing device on eng. Per-packet service
// time is normally distributed around procNs (20% relative deviation) so
// latency distributions have realistic spread.
func stackDev(eng *sim.Engine, name string, ifindex int, procNs int64, out func(*vnet.Packet)) *vnet.NetDev {
	dist := sim.NewDist(eng)
	return vnet.NewNetDev(eng, vnet.NetDevConfig{
		Name:    name,
		Ifindex: ifindex,
		ProcNs:  func(*vnet.Packet) int64 { return dist.Normal(procNs, procNs/5) },
		Out:     out,
	})
}

// newMachine wraps a node in a Machine with the largest legal ring buffer.
func newMachine(node *kernel.Node) *core.Machine {
	m, err := core.NewMachine(node, core.MaxBufferBytes)
	if err != nil {
		panic(err) // static size; cannot fail
	}
	return m
}
