package testbed

import (
	"fmt"
	"sort"

	"vnettracer/internal/core"
	"vnettracer/internal/kernel"
	"vnettracer/internal/overlay"
	"vnettracer/internal/script"
	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
	"vnettracer/internal/workload"
)

// Container-case addressing.
var (
	contVMIP   = [2]vnet.IPv4{vnet.MustParseIPv4("10.1.0.1"), vnet.MustParseIPv4("10.1.0.2")}
	contCtrIP  = [2]vnet.IPv4{vnet.MustParseIPv4("172.17.0.2"), vnet.MustParseIPv4("172.17.0.3")}
)

const (
	contVNI        = 42
	napiBudget     = 7
	overlayHopCost = 2500 // extra CPU per virtual-hop softirq
)

// containerHost is the Figure 12(a) topology: two 4-vCPU KVM VMs on one
// host, containers joined by a Docker-style VXLAN overlay with an
// etcd-backed membership store.
type containerHost struct {
	eng      *sim.Engine
	vm       [2]*kernel.Node
	machines [2]*core.Machine
	store    *overlay.Store
}

func newContainerHost(seed int64) *containerHost {
	eng := sim.NewEngine(seed)
	h := &containerHost{eng: eng, store: overlay.NewStore()}

	type side struct {
		eth0, vxlan, docker0, veth *vnet.NetDev
		vtep                       *overlay.VTEP
		link                       *vnet.Link
	}
	var sides [2]*side

	for i := 0; i < 2; i++ {
		i := i
		vm := kernel.NewNode(eng, kernel.NodeConfig{
			Name: fmt.Sprintf("vm%d", i+1), NumCPU: 4, RPS: true,
			TraceIDs: true, RecvOnCPU: true, Seed: int64(i + 1),
		})
		h.vm[i] = vm
		h.machines[i] = newMachine(vm)
		s := &side{}
		sides[i] = s
		s.vtep = overlay.NewVTEP(h.store, contVNI, contVMIP[i])
		s.vtep.Register(contCtrIP[i])

		s.eth0 = stackDev(eng, "eth0", 2, 300, nil)
		s.vxlan = stackDev(eng, "vxlan0", 3, 500, nil)
		s.docker0 = stackDev(eng, "docker0", 4, 400, nil)
		s.veth = stackDev(eng, "veth684a1d9", 5, 300, nil)
		for _, d := range []*vnet.NetDev{s.eth0, s.vxlan, s.docker0, s.veth} {
			if err := h.machines[i].RegisterDevice(d); err != nil {
				panic(err)
			}
		}

		// eth0: wire-facing in both directions.
		s.eth0.SetOut(func(p *vnet.Packet) {
			dst := p.Flow().Dst
			if dst != contVMIP[i] {
				s.link.Send(p)
				return
			}
			if p.VXLAN != nil {
				// Tunnel traffic: NAPI-batched NIC softirq, then the
				// VXLAN device.
				vm.SoftirqNetRXNAPI(p, s.eth0, napiBudget, s.vxlan.Receive)
				return
			}
			vm.SoftirqNetRXNAPI(p, s.eth0, napiBudget, vm.DeliverLocal)
		})

		// vxlan0: encap on the way out, decap on the way in.
		s.vxlan.SetTransform(func(p *vnet.Packet) *vnet.Packet {
			if p.VXLAN != nil {
				return s.vtep.Decap(p)
			}
			return s.vtep.Encap(p)
		})
		s.vxlan.SetOut(func(p *vnet.Packet) {
			if p.VXLAN != nil {
				s.eth0.Receive(p) // freshly encapsulated: toward the wire
				return
			}
			// Freshly decapsulated: per-packet softirq into docker0.
			vm.SoftirqNetRXExtra(p, s.vxlan, overlayHopCost, s.docker0.Receive)
		})

		s.docker0.SetOut(func(p *vnet.Packet) {
			if p.IP.Dst == contCtrIP[i] {
				vm.SoftirqNetRXExtra(p, s.docker0, overlayHopCost, s.veth.Receive)
				return
			}
			s.vxlan.Receive(p) // container egress toward the tunnel
		})

		s.veth.SetOut(func(p *vnet.Packet) {
			if p.IP.Dst == contCtrIP[i] {
				vm.SoftirqNetRXExtra(p, s.veth, overlayHopCost, vm.DeliverLocal)
				return
			}
			s.docker0.Receive(p) // container egress
		})

		vm.Egress = func(p *vnet.Packet) {
			if p.IP.Src == contCtrIP[i] {
				s.veth.Receive(p) // container app: the deep path
				return
			}
			s.eth0.Receive(p) // VM app: straight to the NIC
		}
	}

	for i := 0; i < 2; i++ {
		peer := sides[1-i]
		sides[i].link = vnet.NewLink(eng, 10*Gbps, 3*US, peer.eth0.Receive)
	}
	return h
}

// ContainerThroughputResult is Figure 12(b).
type ContainerThroughputResult struct {
	VMTCPBps    float64
	ContTCPBps  float64
	VMUDPBps    float64
	ContUDPBps  float64
	TCPRatioPct float64 // container TCP as % of VM TCP (paper: 16.8%)
	UDPRatioPct float64 // container UDP as % of VM UDP (paper: 22.9%)
}

// RunContainerThroughput runs the four Fig. 12(b) measurements.
func RunContainerThroughput(segments int) (ContainerThroughputResult, error) {
	var res ContainerThroughputResult
	var err error
	if res.VMTCPBps, err = contTCP(false, segments); err != nil {
		return res, err
	}
	if res.ContTCPBps, err = contTCP(true, segments); err != nil {
		return res, err
	}
	if res.VMUDPBps, _, _, err = contUDP(false, nil); err != nil {
		return res, err
	}
	if res.ContUDPBps, _, _, err = contUDP(true, nil); err != nil {
		return res, err
	}
	if res.VMTCPBps > 0 {
		res.TCPRatioPct = res.ContTCPBps / res.VMTCPBps * 100
	}
	if res.VMUDPBps > 0 {
		res.UDPRatioPct = res.ContUDPBps / res.VMUDPBps * 100
	}
	return res, nil
}

func contEndpoints(container bool) (src, dst kernel.SockAddr) {
	if container {
		return kernel.SockAddr{IP: contCtrIP[0], Port: 40000}, kernel.SockAddr{IP: contCtrIP[1], Port: 12865}
	}
	return kernel.SockAddr{IP: contVMIP[0], Port: 40000}, kernel.SockAddr{IP: contVMIP[1], Port: 12865}
}

func contTCP(container bool, segments int) (float64, error) {
	h := newContainerHost(31)
	src, dst := contEndpoints(container)
	srv, err := workload.StartNetperfServer(h.vm[1], dst)
	if err != nil {
		return 0, err
	}
	cli, err := workload.NewNetperfClient(h.vm[0], src, dst, 1448, 64)
	if err != nil {
		return 0, err
	}
	cli.Run(segments)
	h.eng.Run(120 * SEC)
	return srv.ThroughputBps(), nil
}

// contUDP runs an open-loop UDP stream; when spec is non-nil it is
// installed on the receiving VM before the run and the per-CPU softirq
// histogram is returned alongside.
func contUDP(container bool, spec *script.Spec) (bps float64, hist []uint64, invocations uint64, err error) {
	h := newContainerHost(37)
	var compiled *script.Compiled
	if spec != nil {
		tr := NewTracing()
		if _, err := tr.AddMachine(h.machines[1]); err != nil {
			return 0, nil, 0, err
		}
		if err := tr.InstallSpec("vm2", *spec); err != nil {
			return 0, nil, 0, err
		}
		agent, _ := tr.Agent("vm2")
		compiled, _ = agent.Script(spec.Name)
	}
	src, dst := contEndpoints(container)
	srv, err := workload.StartIPerfServer(h.vm[1], dst)
	if err != nil {
		return 0, nil, 0, err
	}
	cli, err := workload.NewIPerfClient(h.vm[0], src, dst, 1448)
	if err != nil {
		return 0, nil, 0, err
	}
	const dur = 1 * int64(sim.Second)
	cli.RunRate(6*Gbps, dur)
	h.eng.Run(dur + 500*MS)
	bps = srv.ThroughputBps()
	if compiled != nil {
		hist = compiled.ReadCPUHist()
		invocations, _ = compiled.ReadCounter(script.SlotPackets)
	}
	return bps, hist, invocations, nil
}

// SoftirqResult is Figure 13(a): net_rx_action execution rate and its
// distribution across CPUs, measured through eBPF kprobes with per-CPU
// maps.
type SoftirqResult struct {
	VMRatePerSec   float64
	ContRatePerSec float64
	RateRatio      float64 // paper: 4.54x
	VMShare        []float64
	ContShare      []float64
	VMTopShare     float64 // paper: 99.7% on CPU 0
	ContTopShare   float64 // paper: 62.9%
	VMBps          float64
	ContBps        float64
}

// RunSoftirqDistribution runs Figure 13(a).
func RunSoftirqDistribution() (SoftirqResult, error) {
	mkSpec := func() *script.Spec {
		return &script.Spec{
			Name:    "netrx-hist",
			Attach:  core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteNetRxAction},
			Actions: []script.Action{script.ActionCount, script.ActionCPUHist},
			NumCPU:  4,
		}
	}
	var res SoftirqResult
	vmBps, vmHist, vmCount, err := contUDP(false, mkSpec())
	if err != nil {
		return res, err
	}
	contBps, contHist, contCount, err := contUDP(true, mkSpec())
	if err != nil {
		return res, err
	}
	res.VMBps, res.ContBps = vmBps, contBps
	res.VMRatePerSec = float64(vmCount) / 1.5
	res.ContRatePerSec = float64(contCount) / 1.5
	if res.VMRatePerSec > 0 {
		res.RateRatio = res.ContRatePerSec / res.VMRatePerSec
	}
	res.VMShare, res.VMTopShare = shares(vmHist)
	res.ContShare, res.ContTopShare = shares(contHist)
	return res, nil
}

func shares(hist []uint64) ([]float64, float64) {
	var total uint64
	for _, v := range hist {
		total += v
	}
	out := make([]float64, len(hist))
	var top float64
	if total == 0 {
		return out, 0
	}
	for i, v := range hist {
		out[i] = float64(v) / float64(total)
		if out[i] > top {
			top = out[i]
		}
	}
	return out, top
}

// PathTraceResult is Figure 13(b): the ordered device crossings of one
// packet in the VM network versus the container overlay.
type PathTraceResult struct {
	VMPath        []string
	ContainerPath []string
}

// RunPathTrace runs Figure 13(b): record scripts on every device, one
// probe flow, reconstruct the per-packet data path from the trace DB.
func RunPathTrace() (PathTraceResult, error) {
	trace := func(container bool) ([]string, error) {
		h := newContainerHost(41)
		tr := NewTracing()
		for i := 0; i < 2; i++ {
			if _, err := tr.AddMachine(h.machines[i]); err != nil {
				return nil, err
			}
		}
		filter := script.Filter{Proto: vnet.ProtoUDP, DstPort: 9999}
		labels := make([]string, 0, 8)
		for i := 0; i < 2; i++ {
			for _, dev := range []string{"eth0", "vxlan0", "docker0", "veth684a1d9"} {
				label := fmt.Sprintf("%s@vm%d", dev, i+1)
				if _, err := tr.InstallRecord(fmt.Sprintf("vm%d", i+1), label,
					core.AttachPoint{Kind: core.AttachDevice, Device: dev, Dir: vnet.Ingress}, filter); err != nil {
					return nil, err
				}
				labels = append(labels, label)
			}
		}

		src, dst := contEndpoints(container)
		src.Port, dst.Port = 40010, 9999
		var got bool
		if _, err := h.vm[1].Open(vnet.ProtoUDP, dst, func(*vnet.Packet) { got = true }); err != nil {
			return nil, err
		}
		sock, err := h.vm[0].Open(vnet.ProtoUDP, src, nil)
		if err != nil {
			return nil, err
		}
		sent, err := sock.Send(dst, 100)
		if err != nil {
			return nil, err
		}
		h.eng.Run(100 * MS)
		if !got {
			return nil, fmt.Errorf("testbed: path-trace probe not delivered (container=%v)", container)
		}
		if err := tr.FlushAll(); err != nil {
			return nil, err
		}

		// Collect every crossing of the probe packet, ordered by time.
		type crossing struct {
			at    uint64
			label string
		}
		var crossings []crossing
		for _, label := range labels {
			t := tr.MustTable(label)
			for _, r := range t.ByTraceID(sent.TraceID) {
				crossings = append(crossings, crossing{at: r.TimeNs, label: label})
			}
		}
		sort.Slice(crossings, func(i, j int) bool { return crossings[i].at < crossings[j].at })
		out := make([]string, len(crossings))
		for i, c := range crossings {
			out[i] = c.label
		}
		return out, nil
	}

	var res PathTraceResult
	var err error
	if res.VMPath, err = trace(false); err != nil {
		return res, err
	}
	if res.ContainerPath, err = trace(true); err != nil {
		return res, err
	}
	return res, nil
}
