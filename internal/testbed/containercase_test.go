package testbed

import (
	"strings"
	"testing"
)

func TestFig12bOverlayThroughputCollapse(t *testing.T) {
	res, err := RunContainerThroughput(20000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TCP vm=%.2fG cont=%.2fG (%.1f%%); UDP vm=%.2fG cont=%.2fG (%.1f%%)",
		res.VMTCPBps/1e9, res.ContTCPBps/1e9, res.TCPRatioPct,
		res.VMUDPBps/1e9, res.ContUDPBps/1e9, res.UDPRatioPct)
	// Paper: "the Netperf TCP and UDP throughput between containers were
	// just 16.8% and 22.9% of that between VMs". Require the collapse band.
	if res.TCPRatioPct < 10 || res.TCPRatioPct > 35 {
		t.Errorf("container TCP = %.1f%% of VM, want ~16.8%%", res.TCPRatioPct)
	}
	if res.UDPRatioPct < 10 || res.UDPRatioPct > 35 {
		t.Errorf("container UDP = %.1f%% of VM, want ~22.9%%", res.UDPRatioPct)
	}
	if res.VMTCPBps < 1e9 {
		t.Errorf("VM TCP baseline %.2fG implausibly low", res.VMTCPBps/1e9)
	}
}

func TestFig13aSoftirqRateAndDistribution(t *testing.T) {
	res, err := RunSoftirqDistribution()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("rate vm=%.0f/s cont=%.0f/s ratio=%.2f; top share vm=%.3f cont=%.3f",
		res.VMRatePerSec, res.ContRatePerSec, res.RateRatio, res.VMTopShare, res.ContTopShare)
	// Paper: "the execution rate of net_rx_action in containers is 4.54
	// times of that in VMs" — despite far lower throughput.
	if res.RateRatio < 3 || res.RateRatio > 9 {
		t.Errorf("softirq rate ratio = %.2f, want ~4.54", res.RateRatio)
	}
	if res.ContBps >= res.VMBps {
		t.Error("container throughput should be far below VM throughput")
	}
	// Paper: softirqs are concentrated on few cores: "99.7% and 62.9% of
	// the net_rx_action is executed on [one CPU] in VMs and containers".
	if res.VMTopShare < 0.95 {
		t.Errorf("VM dominant CPU share = %.3f, want ~0.997", res.VMTopShare)
	}
	if res.ContTopShare < 0.5 || res.ContTopShare > 0.9 {
		t.Errorf("container dominant CPU share = %.3f, want ~0.629", res.ContTopShare)
	}
	// RPS cannot spread a single connection across all cores: at most 2 of
	// 4 CPUs see softirqs (outer and inner flow hashes).
	busy := 0
	for _, s := range res.ContShare {
		if s > 0.01 {
			busy++
		}
	}
	if busy > 2 {
		t.Errorf("container softirqs spread over %d CPUs; RPS should not help one connection", busy)
	}
}

func TestFig13bDataPathDepth(t *testing.T) {
	res, err := RunPathTrace()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("vm path (%d): %v", len(res.VMPath), res.VMPath)
	t.Logf("container path (%d): %v", len(res.ContainerPath), res.ContainerPath)
	// Paper: "the data path in container networks is far more complex than
	// that in VMs".
	if len(res.ContainerPath) < 3*len(res.VMPath) {
		t.Errorf("container path %d hops vs VM %d: not 'far more complex'",
			len(res.ContainerPath), len(res.VMPath))
	}
	// The container path must traverse the overlay devices on both sides,
	// in order: veth -> docker0 -> vxlan -> eth0 on the sender, the
	// reverse on the receiver.
	want := []string{
		"veth684a1d9@vm1", "docker0@vm1", "vxlan0@vm1", "eth0@vm1",
		"eth0@vm2", "vxlan0@vm2", "docker0@vm2", "veth684a1d9@vm2",
	}
	if len(res.ContainerPath) != len(want) {
		t.Fatalf("container path = %v, want %v", res.ContainerPath, want)
	}
	for i := range want {
		if res.ContainerPath[i] != want[i] {
			t.Fatalf("container path = %v, want %v", res.ContainerPath, want)
		}
	}
	// The VM path never touches overlay devices.
	for _, hop := range res.VMPath {
		if strings.Contains(hop, "vxlan") || strings.Contains(hop, "docker") || strings.Contains(hop, "veth") {
			t.Errorf("VM path crosses overlay device %s", hop)
		}
	}
}
