package testbed

import (
	"fmt"

	"vnettracer/internal/core"
	"vnettracer/internal/kernel"
	"vnettracer/internal/ovs"
	"vnettracer/internal/script"
	"vnettracer/internal/sim"
	"vnettracer/internal/systemtap"
	"vnettracer/internal/vnet"
	"vnettracer/internal/workload"
)

// OverheadLatencyResult is Figure 7(a): sockperf latency with and without
// vNetTracer.
type OverheadLatencyResult struct {
	Baseline LatencyStats
	Traced   LatencyStats
	// MeanOverheadPct is the relative increase in mean latency.
	MeanOverheadPct float64
	// P999OverheadPct is the relative increase in 99.9th percentile.
	P999OverheadPct float64
	// BaselineLoss / TracedLoss are sockperf loss rates (the paper reports
	// vNetTracer adds no packet loss).
	BaselineLoss float64
	TracedLoss   float64
	// TraceRecords is the number of records the pipeline collected in the
	// traced run.
	TraceRecords int
}

// twoHostKVM is the Fig 7(a) topology: a KVM VM on each of two hosts,
// connected VM1 -> ovs-br1(A) -> wire -> ovs-br1(B) -> VM2 and back.
type twoHostKVM struct {
	eng *sim.Engine
	vm  [2]*kernel.Node
	vmM [2]*core.Machine
	// hostM are the hypervisor-side machines (OVS ports live here).
	hostM [2]*core.Machine
	vmIP  [2]vnet.IPv4
}

func newTwoHostKVM(seed int64, linkBps int64) *twoHostKVM {
	eng := sim.NewEngine(seed)
	tb := &twoHostKVM{eng: eng}
	tb.vmIP = [2]vnet.IPv4{vnet.MustParseIPv4("10.0.0.1"), vnet.MustParseIPv4("10.0.0.2")}

	var links [2]*vnet.Link // links[i] transmits from host i to host 1-i
	bridges := [2]*ovs.Bridge{}

	for i := 0; i < 2; i++ {
		i := i
		vm := kernel.NewNode(eng, kernel.NodeConfig{
			Name: fmt.Sprintf("vm%d", i+1), NumCPU: 4, TraceIDs: true, Seed: int64(i + 1),
			ClockOffsetNs: int64(i) * 7 * MS, // skew between hosts
		})
		host := kernel.NewNode(eng, kernel.NodeConfig{
			Name: fmt.Sprintf("host%d", i+1), NumCPU: 20, Seed: int64(100 + i),
			ClockOffsetNs: int64(i) * 7 * MS,
		})
		tb.vm[i] = vm
		tb.vmM[i] = newMachine(vm)
		tb.hostM[i] = newMachine(host)

		br := ovs.New(eng, ovs.DefaultConfig(fmt.Sprintf("br%d", i)))
		bridges[i] = br
		vmPort, err := br.AddPort("ovs-br1", 10, nil, nil)
		if err != nil {
			panic(err)
		}
		if _, err := br.AddPort("uplink", 11, nil, nil); err != nil {
			panic(err)
		}
		if err := tb.hostM[i].RegisterDevice(vmPort.In); err != nil {
			panic(err)
		}

		// VM NIC: used by both directions so attached scripts observe
		// every crossing, as on a real interface.
		ens3 := stackDev(eng, "ens3", 3, 800, nil)
		if err := tb.vmM[i].RegisterDevice(ens3); err != nil {
			panic(err)
		}
		ens3.SetOut(func(p *vnet.Packet) {
			if p.IP.Dst == tb.vmIP[i] {
				vm.SoftirqNetRX(p, ens3, vm.DeliverLocal)
			} else {
				vmPort.In.Receive(p)
			}
		})
		vm.Egress = ens3.Receive

		// Bridge routing: local VM via ovs-br1, everything else uplink.
		if err := br.AddRoute(tb.vmIP[i], "ovs-br1"); err != nil {
			panic(err)
		}
		if err := br.AddRoute(tb.vmIP[1-i], "uplink"); err != nil {
			panic(err)
		}
		vmPort.SetOut(ens3.Receive)
	}

	for i := 0; i < 2; i++ {
		i := i
		links[i] = vnet.NewLink(eng, linkBps, 30*US, func(p *vnet.Packet) {
			up, _ := bridges[1-i].Port("uplink")
			up.In.Receive(p)
		})
		up, _ := bridges[i].Port("uplink")
		up.SetOut(links[i].Send)
	}
	return tb
}

// RunOverheadLatency runs Figure 7(a): sockperf UDP ping-pong between two
// KVM VMs, baseline versus four attached trace scripts (ovs-br1 and ens3
// on both hosts).
func RunOverheadLatency(pings int) (OverheadLatencyResult, error) {
	run := func(traced bool) (LatencyStats, float64, int, error) {
		tb := newTwoHostKVM(42, Gbps)
		tr := NewTracing()
		records := 0
		if traced {
			for i := 0; i < 2; i++ {
				if _, err := tr.AddMachine(tb.vmM[i]); err != nil {
					return LatencyStats{}, 0, 0, err
				}
				if _, err := tr.AddMachine(tb.hostM[i]); err != nil {
					return LatencyStats{}, 0, 0, err
				}
			}
			filter := script.Filter{Proto: vnet.ProtoUDP, DstPort: 11111}
			for i := 0; i < 2; i++ {
				vmName := tb.vm[i].Name
				hostName := tb.hostM[i].Node.Name
				if _, err := tr.InstallRecord(vmName, fmt.Sprintf("ens3@%s", vmName),
					core.AttachPoint{Kind: core.AttachDevice, Device: "ens3", Dir: vnet.Ingress}, filter); err != nil {
					return LatencyStats{}, 0, 0, err
				}
				if _, err := tr.InstallRecord(hostName, fmt.Sprintf("ovs-br1@%s", hostName),
					core.AttachPoint{Kind: core.AttachDevice, Device: "ovs-br1", Dir: vnet.Ingress}, filter); err != nil {
					return LatencyStats{}, 0, 0, err
				}
			}
		}
		srv, err := workload.StartSockperfServer(tb.vm[1], kernel.SockAddr{IP: tb.vmIP[1], Port: 11111})
		if err != nil {
			return LatencyStats{}, 0, 0, err
		}
		_ = srv
		cli, err := workload.NewSockperfClient(tb.vm[0],
			kernel.SockAddr{IP: tb.vmIP[0], Port: 40000},
			kernel.SockAddr{IP: tb.vmIP[1], Port: 11111},
			56, 100*US)
		if err != nil {
			return LatencyStats{}, 0, 0, err
		}
		cli.Run(pings)
		tb.eng.Run(int64(pings+100) * 100 * US)
		if traced {
			if err := tr.FlushAll(); err != nil {
				return LatencyStats{}, 0, 0, err
			}
			for _, tpid := range tr.DB.Tables() {
				if t, ok := tr.DB.Table(tpid); ok {
					records += t.Len()
				}
			}
		}
		return NewLatencyStats(cli.Latencies()), cli.LossRate(), records, nil
	}

	base, baseLoss, _, err := run(false)
	if err != nil {
		return OverheadLatencyResult{}, err
	}
	traced, tracedLoss, records, err := run(true)
	if err != nil {
		return OverheadLatencyResult{}, err
	}
	res := OverheadLatencyResult{
		Baseline:     base,
		Traced:       traced,
		BaselineLoss: baseLoss,
		TracedLoss:   tracedLoss,
		TraceRecords: records,
	}
	if base.MeanUs > 0 {
		res.MeanOverheadPct = (traced.MeanUs - base.MeanUs) / base.MeanUs * 100
	}
	if base.P999Us > 0 {
		res.P999OverheadPct = (traced.P999Us - base.P999Us) / base.P999Us * 100
	}
	return res, nil
}

// OverheadThroughputResult is Figure 7(b): Netperf throughput under no
// tracing, vNetTracer, and SystemTap, at one link speed.
type OverheadThroughputResult struct {
	LinkBps      int64
	BaselineBps  float64
	VNetBps      float64
	SystemTapBps float64
	// Loss percentages relative to baseline.
	VNetLossPct      float64
	SystemTapLossPct float64
}

// netperfRig is the Fig 7(b) topology: a netperf client host streaming TCP
// into a 1-vCPU Xen VM whose receive path is CPU-bound.
type netperfRig struct {
	eng    *sim.Engine
	client *kernel.Node
	server *kernel.Node
	srvM   *core.Machine
}

func newNetperfRig(seed, linkBps int64) *netperfRig {
	eng := sim.NewEngine(seed)
	client := kernel.NewNode(eng, kernel.NodeConfig{Name: "client", NumCPU: 20, TraceIDs: true, Seed: 1})
	serverCosts := kernel.DefaultCosts()
	// Xen PV receive on one vCPU: ~10.5us of CPU per segment, just inside
	// the 11.6us per-packet budget of a 1 Gbps 1448-byte stream. Tracing
	// cost added on top of this either fits (eBPF, ~100ns) or blows the
	// budget (SystemTap, ~3.4us), which is exactly the paper's contrast.
	serverCosts.TCPRecv = 9000
	serverCosts.SoftirqBase = 1500
	server := kernel.NewNode(eng, kernel.NodeConfig{
		Name: "xenvm", NumCPU: 1, TraceIDs: true, RecvOnCPU: true,
		Costs: serverCosts, Seed: 2,
	})
	r := &netperfRig{eng: eng, client: client, server: server, srvM: newMachine(server)}

	eth1 := stackDev(eng, "eth1", 4, 500, nil)
	if err := r.srvM.RegisterDevice(eth1); err != nil {
		panic(err)
	}
	toServer := vnet.NewLink(eng, linkBps, 10*US, eth1.Receive)
	eth1.SetOut(func(p *vnet.Packet) { server.SoftirqNetRX(p, eth1, server.DeliverLocal) })
	toClient := vnet.NewLink(eng, linkBps, 10*US, client.DeliverLocal)
	client.Egress = toServer.Send
	server.Egress = toClient.Send
	return r
}

// TracerMode selects the Figure 7(b) configuration under test.
type TracerMode int

// Tracer modes.
const (
	ModeBaseline TracerMode = iota
	ModeVNetTracer
	ModeSystemTap
)

func (m TracerMode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeVNetTracer:
		return "vnettracer"
	case ModeSystemTap:
		return "systemtap"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// netperfThroughput runs one Fig 7(b) configuration and returns achieved
// throughput in bits per second.
func netperfThroughput(linkBps int64, mode TracerMode, segments, window int) (float64, error) {
	r := newNetperfRig(7, linkBps)

	switch mode {
	case ModeVNetTracer:
		tr := NewTracing()
		if _, err := tr.AddMachine(r.srvM); err != nil {
			return 0, err
		}
		if _, err := tr.InstallRecord("xenvm", "tcp_recvmsg@xenvm",
			core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteTCPRecvmsg},
			script.Filter{Proto: vnet.ProtoTCP}); err != nil {
			return 0, err
		}
	case ModeSystemTap:
		cfg := systemtap.DefaultConfig()
		cfg.PerEventNs = 3400 // per-event handler + kernel/user copies
		cfg.CompileNs = 0     // measurement starts after stap is up
		cfg.NoOverload = true // the paper runs with STP_NO_OVERLOAD
		if _, err := systemtap.Attach(r.server, kernel.SiteTCPRecvmsg, cfg); err != nil {
			return 0, err
		}
	}

	srv, err := workload.StartNetperfServer(r.server, kernel.SockAddr{IP: 2, Port: 12865})
	if err != nil {
		return 0, err
	}
	cli, err := workload.NewNetperfClient(r.client,
		kernel.SockAddr{IP: 1, Port: 40000}, kernel.SockAddr{IP: 2, Port: 12865},
		1448, window)
	if err != nil {
		return 0, err
	}
	cli.Run(segments)
	r.eng.Run(60 * SEC)
	return srv.ThroughputBps(), nil
}

// RunOverheadThroughput runs Figure 7(b) at the given link speed. The
// netperf socket window follows the link's bandwidth-delay product, as
// netperf's autotuning does.
func RunOverheadThroughput(linkBps int64, segments int) (OverheadThroughputResult, error) {
	window := 16
	if linkBps > 2*Gbps {
		window = 64
	}
	res := OverheadThroughputResult{LinkBps: linkBps}
	var err error
	if res.BaselineBps, err = netperfThroughput(linkBps, ModeBaseline, segments, window); err != nil {
		return res, err
	}
	if res.VNetBps, err = netperfThroughput(linkBps, ModeVNetTracer, segments, window); err != nil {
		return res, err
	}
	if res.SystemTapBps, err = netperfThroughput(linkBps, ModeSystemTap, segments, window); err != nil {
		return res, err
	}
	if res.BaselineBps > 0 {
		res.VNetLossPct = (res.BaselineBps - res.VNetBps) / res.BaselineBps * 100
		res.SystemTapLossPct = (res.BaselineBps - res.SystemTapBps) / res.BaselineBps * 100
	}
	return res, nil
}
