package testbed

import (
	"testing"
)

func TestFig7aOverheadLatency(t *testing.T) {
	res, err := RunOverheadLatency(2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.Count != 2000 || res.Traced.Count != 2000 {
		t.Fatalf("counts: base=%d traced=%d", res.Baseline.Count, res.Traced.Count)
	}
	// Paper: "the average latency with vNetTracer increased less than 1%".
	if res.MeanOverheadPct < 0 || res.MeanOverheadPct > 1.0 {
		t.Errorf("mean overhead = %.2f%%, want (0, 1]%%", res.MeanOverheadPct)
	}
	if res.P999OverheadPct > 3.0 {
		t.Errorf("p99.9 overhead = %.2f%%, want small", res.P999OverheadPct)
	}
	// "vNetTracer did not introduce additional network packet loss".
	if res.TracedLoss != res.BaselineLoss {
		t.Errorf("loss changed: %.4f -> %.4f", res.BaselineLoss, res.TracedLoss)
	}
	// The pipeline must actually have traced packets.
	if res.TraceRecords == 0 {
		t.Error("no trace records collected; the traced run measured nothing")
	}
}

func TestFig7bOverheadThroughput1G(t *testing.T) {
	res, err := RunOverheadThroughput(Gbps, 20000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("1G: base=%.0f vnt=%.0f (%.1f%%) stap=%.0f (%.1f%%)",
		res.BaselineBps, res.VNetBps, res.VNetLossPct, res.SystemTapBps, res.SystemTapLossPct)
	if res.BaselineBps < 500e6 {
		t.Fatalf("baseline %.0f too far below 1G", res.BaselineBps)
	}
	// vNetTracer: insignificant degradation.
	if res.VNetLossPct > 3 {
		t.Errorf("vNetTracer loss = %.1f%%, want < 3%%", res.VNetLossPct)
	}
	// SystemTap: around 10% loss.
	if res.SystemTapLossPct < 5 || res.SystemTapLossPct > 20 {
		t.Errorf("SystemTap loss = %.1f%%, want ~10%%", res.SystemTapLossPct)
	}
}

func TestFig7bOverheadThroughput10G(t *testing.T) {
	res, err := RunOverheadThroughput(10*Gbps, 20000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("10G: base=%.0f vnt=%.0f (%.1f%%) stap=%.0f (%.1f%%)",
		res.BaselineBps, res.VNetBps, res.VNetLossPct, res.SystemTapBps, res.SystemTapLossPct)
	// SystemTap: around 26.5% loss, and strictly worse than at 1G.
	if res.SystemTapLossPct < 18 || res.SystemTapLossPct > 40 {
		t.Errorf("SystemTap loss = %.1f%%, want ~26.5%%", res.SystemTapLossPct)
	}
	if res.VNetLossPct > 5 {
		t.Errorf("vNetTracer loss = %.1f%%, want marginal", res.VNetLossPct)
	}
}
