package testbed

import (
	"fmt"

	"vnettracer/internal/core"
	"vnettracer/internal/kernel"
	"vnettracer/internal/metrics"
	"vnettracer/internal/ovs"
	"vnettracer/internal/script"
	"vnettracer/internal/sim"
	"vnettracer/internal/tracedb"
	"vnettracer/internal/vnet"
	"vnettracer/internal/workload"
)

// OVSCaseConfig selects one of the paper's Case I / II / II+ / III / III+
// scenarios (Figs. 8-9): a latency-sensitive sockperf flow sharing an OVS
// with varying numbers of throughput-intensive iperf flows.
type OVSCaseConfig struct {
	// IperfVM0 is the number of iperf clients on VM0 (sockperf's VM):
	// 0 = Case I, 1 = Case II, >1 = Case II+.
	IperfVM0 int
	// ExtraVMs adds VMs each running one iperf client through its own OVS
	// ingress port: 1 = Case III, >1 = Case III+.
	ExtraVMs int
	// Police applies the paper's mitigation: ingress policing at 1e5 kbps
	// rate and 1e4 kb burst on the client-facing ports (Fig. 9b).
	Police bool
	// HTB applies the paper's alternative mitigation: an HTB QoS class
	// shaping the bulk flows at the client-facing virtual ports ("we also
	// tried setting QoS policy with Hierarchy Token Bucket ... the effect
	// was similar"). The latency-sensitive sockperf flow is classified
	// into the unshaped default.
	HTB bool
	// Pings is the number of sockperf pings (default 5000).
	Pings int
	// Seed makes runs reproducible.
	Seed int64
}

// SegmentStats is one hop of the Fig. 9(a) latency decomposition.
type SegmentStats struct {
	Name   string
	MeanUs float64
	Count  int
}

// OVSCaseResult reports one scenario.
type OVSCaseResult struct {
	Label     string
	Sockperf  LatencyStats
	LossRate  float64
	// Decomposition: sender stack, OVS, receiver stack (traced).
	Segments []SegmentStats
	// PolicerDrops counts ingress-police drops across client ports.
	PolicerDrops uint64
	// ShaperDrops counts HTB qdisc-bound drops across client ports.
	ShaperDrops uint64
}

// sockperf flow parameters shared with the decomposition filter.
const (
	ovsSockperfPort = 11111
	ovsIperfPort    = 5001
)

// RunOVSCase builds the single-host 3+ VM OVS topology, runs the scenario,
// and decomposes the sockperf latency through the tracing pipeline.
func RunOVSCase(cfg OVSCaseConfig) (OVSCaseResult, error) {
	if cfg.Pings <= 0 {
		cfg.Pings = 5000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 11
	}
	eng := sim.NewEngine(cfg.Seed)

	numVMs := 3 + cfg.ExtraVMs // vm0 (clients), vm1.. (extra iperf), last = vm2 (servers)
	serverIdx := numVMs - 1

	// Build the bridge with a fabric that saturates under the iperf load.
	brCfg := ovs.DefaultConfig("ovs-br1")
	brCfg.FabricBaseNs = 2500  // ~400 kpps switching capacity
	brCfg.PortSwitchNs = 2500  // per extra contending ingress port
	brCfg.FlowMissNs = 30000
	brCfg.FabricQueueCap = 256 // OVS buffering before drop
	br := ovs.New(eng, brCfg)

	vms := make([]*kernel.Node, numVMs)
	machines := make([]*core.Machine, numVMs)
	ips := make([]vnet.IPv4, numVMs)
	for i := 0; i < numVMs; i++ {
		ips[i] = vnet.MustParseIPv4(fmt.Sprintf("10.0.0.%d", i+1))
	}

	policerFor := func(i int) *vnet.TokenBucket {
		if !cfg.Police || i == serverIdx {
			return nil
		}
		// Paper: ingress policing rate 1e5 kbps, burst 1e4 kb.
		return vnet.NewTokenBucket(100_000, 10_000)
	}
	shaperFor := func(i int) func(*vnet.Packet) *vnet.HTBClass {
		if !cfg.HTB || i == serverIdx {
			return nil
		}
		htb := vnet.NewHTB(100_000) // aggregate 1e5 kbps per port
		bulk := htb.NewClass(100_000, 100_000)
		return func(p *vnet.Packet) *vnet.HTBClass {
			if f := p.Flow(); f.Proto == vnet.ProtoUDP && f.DstPort == ovsSockperfPort {
				return nil // latency class: unshaped
			}
			return bulk
		}
	}

	ports := make([]*ovs.Port, numVMs)
	for i := 0; i < numVMs; i++ {
		i := i
		vm := kernel.NewNode(eng, kernel.NodeConfig{
			Name: fmt.Sprintf("vm%d", i), NumCPU: 4, TraceIDs: true, Seed: int64(i + 1),
		})
		vms[i] = vm
		machines[i] = newMachine(vm)

		port, err := br.AddPort(fmt.Sprintf("vnet%d", i), 10+i, policerFor(i), shaperFor(i))
		if err != nil {
			return OVSCaseResult{}, err
		}
		ports[i] = port
		if err := machines[i].RegisterDevice(port.In); err != nil {
			return OVSCaseResult{}, err
		}

		// em is the VM's interface in both directions: egress toward the
		// OVS port, ingress (packets switched to this VM) into the stack.
		em := stackDev(eng, "em", 3, 300, nil)
		if err := machines[i].RegisterDevice(em); err != nil {
			return OVSCaseResult{}, err
		}
		em.SetOut(func(p *vnet.Packet) {
			if p.IP.Dst == ips[i] {
				vm.SoftirqNetRX(p, em, vm.DeliverLocal)
			} else {
				port.In.Receive(p)
			}
		})
		vm.Egress = em.Receive
		if err := br.AddRoute(ips[i], fmt.Sprintf("vnet%d", i)); err != nil {
			return OVSCaseResult{}, err
		}
		port.SetOut(em.Receive)
	}

	// Tracing: decompose the sockperf flow c->s into sender stack, OVS,
	// receiver stack. The OVS segment is entered at the vnet0 ingress port
	// and exited at the server VM's em device.
	tr := NewTracing()
	for i := range machines {
		if _, err := tr.AddMachine(machines[i]); err != nil {
			return OVSCaseResult{}, err
		}
	}
	filter := script.Filter{Proto: vnet.ProtoUDP, DstPort: ovsSockperfPort, DstIP: ips[serverIdx]}
	type tp struct {
		machine string
		label   string
		at      core.AttachPoint
	}
	tps := []tp{
		{"vm0", "udp_send@vm0", core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPSendSkb}},
		{"vm0", "vnet0-ingress", core.AttachPoint{Kind: core.AttachDevice, Device: "vnet0", Dir: vnet.Ingress}},
		{fmt.Sprintf("vm%d", serverIdx), "server-em", core.AttachPoint{Kind: core.AttachDevice, Device: "em", Dir: vnet.Ingress}},
		{fmt.Sprintf("vm%d", serverIdx), "udp_recv@server", core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg}},
	}
	for _, p := range tps {
		if _, err := tr.InstallRecord(p.machine, p.label, p.at, filter); err != nil {
			return OVSCaseResult{}, err
		}
	}
	tr.StartFlushing(10 * MS)

	// Workloads.
	if _, err := workload.StartSockperfServer(vms[serverIdx], kernel.SockAddr{IP: ips[serverIdx], Port: ovsSockperfPort}); err != nil {
		return OVSCaseResult{}, err
	}
	spCli, err := workload.NewSockperfClient(vms[0],
		kernel.SockAddr{IP: ips[0], Port: 40000},
		kernel.SockAddr{IP: ips[serverIdx], Port: ovsSockperfPort},
		56, 100*US)
	if err != nil {
		return OVSCaseResult{}, err
	}

	duration := int64(cfg.Pings) * 100 * US
	iperfPort := uint16(ovsIperfPort)
	addIperf := func(vmIdx int, clientPort uint16) error {
		if _, err := workload.StartIPerfServer(vms[serverIdx], kernel.SockAddr{IP: ips[serverIdx], Port: iperfPort}); err != nil {
			return err
		}
		cli, err := workload.NewIPerfClient(vms[vmIdx],
			kernel.SockAddr{IP: ips[vmIdx], Port: clientPort},
			kernel.SockAddr{IP: ips[serverIdx], Port: iperfPort}, 1000)
		if err != nil {
			return err
		}
		// 3.1 Gbps of 1000-byte datagrams ~ 388 kpps: near the fabric's
		// ~400 kpps capacity, so the OVS queue runs near-critical (the
		// paper: "the delivery speed of OVS falls far behind the packet
		// incoming speed") while most packets still get through.
		cli.RunRate(31*Gbps/10, duration)
		iperfPort++
		return nil
	}
	for k := 0; k < cfg.IperfVM0; k++ {
		if err := addIperf(0, uint16(41000+k)); err != nil {
			return OVSCaseResult{}, err
		}
	}
	for v := 0; v < cfg.ExtraVMs; v++ {
		if err := addIperf(1+v, 42000); err != nil {
			return OVSCaseResult{}, err
		}
	}

	spCli.Run(cfg.Pings)
	eng.Run(duration + 200*MS)
	if err := tr.FlushAll(); err != nil {
		return OVSCaseResult{}, err
	}

	res := OVSCaseResult{
		Label:    caseLabel(cfg),
		Sockperf: NewLatencyStats(spCli.Latencies()),
		LossRate: spCli.LossRate(),
	}
	for i := 0; i < numVMs; i++ {
		if i == serverIdx {
			continue
		}
		res.PolicerDrops += ports[i].In.Stats().DroppedPolice
		res.ShaperDrops += ports[i].In.Stats().DroppedShaper
	}

	stages := []string{"udp_send@vm0", "vnet0-ingress", "server-em", "udp_recv@server"}
	names := []string{"sender-stack", "ovs", "receiver-stack"}
	tables := make([]*tracedb.Table, 0, len(stages))
	for _, s := range stages {
		t, err := tr.Table(s)
		if err != nil {
			return OVSCaseResult{}, err
		}
		tables = append(tables, t)
	}
	for i := 0; i+1 < len(tables); i++ {
		lat := metrics.Latencies(tables[i], tables[i+1])
		res.Segments = append(res.Segments, SegmentStats{
			Name:   names[i],
			MeanUs: metrics.Mean(metrics.Values(lat)) / 1e3,
			Count:  len(lat),
		})
	}
	return res, nil
}

func caseLabel(cfg OVSCaseConfig) string {
	switch {
	case cfg.IperfVM0 == 0 && cfg.ExtraVMs == 0:
		return "Case I"
	case cfg.ExtraVMs == 0 && cfg.IperfVM0 == 1:
		return "Case II"
	case cfg.ExtraVMs == 0:
		return "Case II+"
	case cfg.IperfVM0 == 1 && cfg.ExtraVMs == 1:
		return "Case III"
	default:
		return "Case III+"
	}
}
