// Package clocksync implements Cristian's probabilistic clock
// synchronization as the paper applies it (Section III-B, Figure 4):
// timestamp probe packets at both NICs, take the sample with the minimum
// round-trip time to bound network interference, estimate the one-way
// transmission time as (T_RTT - T_Pro) / 2, and derive the clock offset
// between master and monitored node.
package clocksync

import (
	"errors"
	"fmt"
)

// DefaultSamples is the paper's sample count ("we sample 100 packet
// records and chose the minimum one").
const DefaultSamples = 100

// Sample is one probe exchange: T1 = client send, T2 = server receive,
// T3 = server reply, T4 = client receive. T1/T4 are on the client clock,
// T2/T3 on the server clock.
type Sample struct {
	T1 int64
	T2 int64
	T3 int64
	T4 int64
}

// RTT returns the round-trip time T4 - T1 minus nothing (raw).
func (s Sample) RTT() int64 { return s.T4 - s.T1 }

// Processing returns the server-side processing time T3 - T2.
func (s Sample) Processing() int64 { return s.T3 - s.T2 }

// Estimate is the result of skew estimation.
type Estimate struct {
	// SkewNs is the server clock minus the client clock: a server
	// timestamp t2 aligns to the client timeline as t2 - SkewNs.
	SkewNs int64
	// OneWayNs is the estimated one-way transmission time.
	OneWayNs int64
	// BestRTTNs is the round-trip time of the chosen sample.
	BestRTTNs int64
	// Samples is the number of samples considered.
	Samples int
}

// Validation errors.
var (
	ErrNoSamples  = errors.New("clocksync: no samples")
	ErrBadSample  = errors.New("clocksync: sample violates causality")
)

// EstimateSkew runs Cristian's algorithm over the samples: the sample with
// the minimum RTT wins; one-way time is (T_RTT - T_Pro)/2; the skew is
// T2 - (T1 + T_1wt).
func EstimateSkew(samples []Sample) (Estimate, error) {
	if len(samples) == 0 {
		return Estimate{}, ErrNoSamples
	}
	best := -1
	var bestRTT int64
	for i, s := range samples {
		if s.T4 < s.T1 || s.T3 < s.T2 {
			return Estimate{}, fmt.Errorf("%w: sample %d: %+v", ErrBadSample, i, s)
		}
		if s.Processing() > s.RTT() {
			// Server claims more processing than the whole round trip:
			// clocks are fine but the sample is useless; skip it.
			continue
		}
		if best < 0 || s.RTT() < bestRTT {
			best = i
			bestRTT = s.RTT()
		}
	}
	if best < 0 {
		return Estimate{}, fmt.Errorf("%w: all samples unusable", ErrNoSamples)
	}
	s := samples[best]
	oneWay := (s.RTT() - s.Processing()) / 2
	return Estimate{
		SkewNs:    s.T2 - (s.T1 + oneWay),
		OneWayNs:  oneWay,
		BestRTTNs: bestRTT,
		Samples:   len(samples),
	}, nil
}

// AbsSkewNs returns the magnitude of the skew, the form the paper states
// (ΔT_skew = |T1 + T_1wt - T2|).
func (e Estimate) AbsSkewNs() int64 {
	if e.SkewNs < 0 {
		return -e.SkewNs
	}
	return e.SkewNs
}

// DriftEstimate extends the offset estimate with a relative frequency
// error: real clocks do not just start offset, they tick at slightly
// different rates, so a single offset measured at the start of a long
// trace mis-aligns its end. EstimateDrift fits offset(t) = a + b*t by
// least squares over per-sample midpoint offsets; b is the drift in parts
// per billion.
type DriftEstimate struct {
	// OffsetAtT0Ns is the server-minus-client offset at client time T0.
	OffsetAtT0Ns int64
	// T0Ns is the reference client time (the first sample's T1).
	T0Ns int64
	// DriftPPB is the server clock's rate error relative to the client,
	// in parts per billion.
	DriftPPB float64
	// Samples is the number of samples fitted.
	Samples int
}

// CorrectNs returns the offset to subtract from a server timestamp taken
// while the client clock read clientNs.
func (d DriftEstimate) CorrectNs(clientNs int64) int64 {
	return d.OffsetAtT0Ns + int64(d.DriftPPB*float64(clientNs-d.T0Ns)/1e9)
}

// EstimateDrift fits offset and drift over samples spread in time.
// Samples claiming more server processing than the whole round trip are
// skipped, exactly as EstimateSkew skips them — a single such garbage
// sample has a wildly negative one-way estimate and poisons the
// least-squares fit. At least two usable samples with distinct T1 are
// required; with tightly clustered samples the drift term is unreliable
// and an error is returned. Samples in the result counts usable samples.
func EstimateDrift(samples []Sample) (DriftEstimate, error) {
	if len(samples) < 2 {
		return DriftEstimate{}, fmt.Errorf("%w: need >= 2 samples for drift", ErrNoSamples)
	}
	var t0 int64
	var n float64
	var sumX, sumY, sumXX, sumXY float64
	for i, s := range samples {
		if s.T4 < s.T1 || s.T3 < s.T2 {
			return DriftEstimate{}, fmt.Errorf("%w: sample %d", ErrBadSample, i)
		}
		if s.Processing() > s.RTT() {
			// Server claims more processing than the whole round trip:
			// clocks are fine but the sample is useless; skip it.
			continue
		}
		if n == 0 {
			t0 = s.T1
		}
		oneWay := (s.RTT() - s.Processing()) / 2
		offset := float64(s.T2 - (s.T1 + oneWay))
		x := float64(s.T1 - t0)
		n++
		sumX += x
		sumY += offset
		sumXX += x * x
		sumXY += x * offset
	}
	if n < 2 {
		return DriftEstimate{}, fmt.Errorf("%w: fewer than 2 usable samples for drift", ErrNoSamples)
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return DriftEstimate{}, fmt.Errorf("%w: samples not spread in time", ErrBadSample)
	}
	b := (n*sumXY - sumX*sumY) / den // ns of offset per ns of client time
	a := (sumY - b*sumX) / n
	return DriftEstimate{
		OffsetAtT0Ns: int64(a),
		T0Ns:         t0,
		DriftPPB:     b * 1e9,
		Samples:      int(n),
	}, nil
}
