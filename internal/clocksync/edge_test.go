package clocksync

import (
	"errors"
	"fmt"
	"testing"
)

// driftSample fabricates one exchange against a server running
// offsetNs+drift ahead of the client, with symmetric 100ns one-way times
// and 50ns of server processing.
func driftSample(t1, offsetNs int64, driftPPB float64) Sample {
	ahead := offsetNs + int64(driftPPB*float64(t1)/1e9)
	return Sample{
		T1: t1,
		T2: t1 + 100 + ahead,
		T3: t1 + 150 + ahead,
		T4: t1 + 250,
	}
}

// TestEstimateDriftFewSamples: the paper samples 100 exchanges, but the
// fit must stay sound well below that — down to the 2-sample minimum —
// rather than silently assuming a full window.
func TestEstimateDriftFewSamples(t *testing.T) {
	const offset = 500_000
	const drift = 3000.0
	for _, n := range []int{2, 3, 10, 50, 99} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			var samples []Sample
			for i := 0; i < n; i++ {
				samples = append(samples, driftSample(int64(i)*1_000_000_000, offset, drift))
			}
			est, err := EstimateDrift(samples)
			if err != nil {
				t.Fatalf("EstimateDrift with %d samples: %v", n, err)
			}
			if est.Samples != n {
				t.Fatalf("Samples = %d, want %d", est.Samples, n)
			}
			if est.OffsetAtT0Ns < offset-1000 || est.OffsetAtT0Ns > offset+1000 {
				t.Fatalf("offset = %d, want ~%d", est.OffsetAtT0Ns, offset)
			}
			// The drift term needs time spread to resolve; with two
			// samples a second apart, 3000 ppb is still well inside a
			// ±500 ppb tolerance.
			if est.DriftPPB < drift-500 || est.DriftPPB > drift+500 {
				t.Fatalf("drift = %.1f ppb, want ~%.0f", est.DriftPPB, drift)
			}
		})
	}
}

// TestAllSamplesUnusable: a window where every exchange claims more
// server processing than its whole round trip (clock steps, scheduler
// stalls) must error out of both estimators — returning a fit through
// garbage would silently mis-align every cross-node metric downstream.
func TestAllSamplesUnusable(t *testing.T) {
	var samples []Sample
	for i := 0; i < 50; i++ {
		t1 := int64(i) * 1_000_000_000
		samples = append(samples, Sample{
			T1: t1,
			T2: t1 + 100,
			T3: t1 + 100 + 10_000_000, // 10ms "processing" in a 250ns RTT
			T4: t1 + 250,
		})
	}
	if _, err := EstimateDrift(samples); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("EstimateDrift over all-garbage window: err = %v, want ErrNoSamples", err)
	}
	if _, err := EstimateSkew(samples); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("EstimateSkew over all-garbage window: err = %v, want ErrNoSamples", err)
	}
}

// TestCorrectNsNegativeOffset: correction of a server running *behind*
// the client yields a negative offset; subtracting it shifts timestamps
// forward, and the sign must survive the drift extrapolation.
func TestCorrectNsNegativeOffset(t *testing.T) {
	var samples []Sample
	for i := 0; i < 10; i++ {
		samples = append(samples, driftSample(int64(i)*1_000_000_000, -2_000_000, -1000))
	}
	est, err := EstimateDrift(samples)
	if err != nil {
		t.Fatal(err)
	}
	if est.OffsetAtT0Ns >= 0 {
		t.Fatalf("offset = %d, want negative", est.OffsetAtT0Ns)
	}
	// At t = 5s the server has fallen a further 5µs behind.
	got := est.CorrectNs(5_000_000_000)
	want := int64(-2_000_000 - 5_000)
	if got < want-500 || got > want+500 {
		t.Fatalf("CorrectNs(5s) = %d, want ~%d", got, want)
	}
}
