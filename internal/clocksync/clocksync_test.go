package clocksync

import (
	"errors"
	"math/rand"
	"testing"
)

func TestEstimateSkewExact(t *testing.T) {
	// Server clock is +500 ahead; symmetric 100ns one-way; 50ns processing.
	s := Sample{T1: 1000, T2: 1000 + 100 + 500, T3: 1000 + 150 + 500, T4: 1250}
	est, err := EstimateSkew([]Sample{s})
	if err != nil {
		t.Fatal(err)
	}
	if est.OneWayNs != 100 {
		t.Fatalf("one-way = %d, want 100", est.OneWayNs)
	}
	if est.SkewNs != 500 {
		t.Fatalf("skew = %d, want 500", est.SkewNs)
	}
	if est.AbsSkewNs() != 500 {
		t.Fatalf("abs = %d", est.AbsSkewNs())
	}
}

func TestEstimateSkewNegative(t *testing.T) {
	// Server clock 300 behind.
	s := Sample{T1: 1000, T2: 1000 + 100 - 300, T3: 1000 + 120 - 300, T4: 1220}
	est, err := EstimateSkew([]Sample{s})
	if err != nil {
		t.Fatal(err)
	}
	if est.SkewNs != -300 {
		t.Fatalf("skew = %d, want -300", est.SkewNs)
	}
	if est.AbsSkewNs() != 300 {
		t.Fatalf("abs = %d", est.AbsSkewNs())
	}
}

func TestMinimumRTTSampleWins(t *testing.T) {
	const trueSkew = 2000
	rng := rand.New(rand.NewSource(7))
	samples := make([]Sample, 0, DefaultSamples)
	for i := 0; i < DefaultSamples; i++ {
		// Asymmetric queueing noise inflates most samples; the cleanest
		// sample has 100ns each way.
		noiseOut := rng.Int63n(5000)
		noiseBack := rng.Int63n(5000)
		if i == 42 {
			noiseOut, noiseBack = 0, 0
		}
		t1 := int64(1_000_000 + i*10_000)
		t2 := t1 + 100 + noiseOut + trueSkew
		t3 := t2 + 50
		t4 := t1 + 100 + noiseOut + 50 + 100 + noiseBack
		samples = append(samples, Sample{T1: t1, T2: t2, T3: t3, T4: t4})
	}
	est, err := EstimateSkew(samples)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != DefaultSamples {
		t.Fatalf("samples = %d", est.Samples)
	}
	if est.SkewNs != trueSkew {
		t.Fatalf("skew = %d, want %d (minimum-RTT sample is noise-free)", est.SkewNs, trueSkew)
	}
}

func TestEstimateSkewErrors(t *testing.T) {
	if _, err := EstimateSkew(nil); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("empty: %v", err)
	}
	bad := Sample{T1: 100, T2: 50, T3: 40, T4: 90}
	if _, err := EstimateSkew([]Sample{bad}); !errors.Is(err, ErrBadSample) {
		t.Fatalf("causality: %v", err)
	}
	// A sample whose processing exceeds the RTT is skipped; with only such
	// samples estimation fails.
	weird := Sample{T1: 100, T2: 1000, T3: 5000, T4: 200}
	if _, err := EstimateSkew([]Sample{weird}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("unusable: %v", err)
	}
}

func TestAccuracyBoundedByAsymmetry(t *testing.T) {
	// With asymmetric best-case paths the estimate is off by at most half
	// the asymmetry — a property of Cristian's algorithm worth pinning.
	const trueSkew = 1000
	const out, back = 100, 300 // asymmetric one-way times
	s := Sample{T1: 0, T2: out + trueSkew, T3: out + trueSkew + 10, T4: out + 10 + back}
	est, err := EstimateSkew([]Sample{s})
	if err != nil {
		t.Fatal(err)
	}
	errNs := est.SkewNs - trueSkew
	if errNs < 0 {
		errNs = -errNs
	}
	if errNs > (back-out)/2 {
		t.Fatalf("error %d exceeds asymmetry bound %d", errNs, (back-out)/2)
	}
}

func TestEstimateDriftRecoversRate(t *testing.T) {
	// Server clock: +1ms offset at t=0, gaining 2000 ppb (2us/s).
	const offset = 1_000_000
	const driftPPB = 2000.0
	mk := func(t1 int64) Sample {
		serverAhead := offset + int64(driftPPB*float64(t1)/1e9)
		return Sample{
			T1: t1,
			T2: t1 + 100 + serverAhead,
			T3: t1 + 150 + serverAhead,
			T4: t1 + 250,
		}
	}
	var samples []Sample
	for i := int64(0); i < 100; i++ {
		samples = append(samples, mk(i*10_000_000_000)) // every 10s
	}
	est, err := EstimateDrift(samples)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 100 {
		t.Fatalf("samples = %d", est.Samples)
	}
	if est.DriftPPB < driftPPB-50 || est.DriftPPB > driftPPB+50 {
		t.Fatalf("drift = %.1f ppb, want ~%.0f", est.DriftPPB, driftPPB)
	}
	if est.OffsetAtT0Ns < offset-1000 || est.OffsetAtT0Ns > offset+1000 {
		t.Fatalf("offset = %d, want ~%d", est.OffsetAtT0Ns, offset)
	}
	// Correction at t=1000s: offset should have grown by 2ms.
	at := int64(1000_000_000_000)
	want := offset + int64(driftPPB*float64(at)/1e9)
	got := est.CorrectNs(at)
	if got < want-5000 || got > want+5000 {
		t.Fatalf("CorrectNs(%d) = %d, want ~%d", at, got, want)
	}
}

func TestEstimateDriftBeatsStaticOffsetOnLongTraces(t *testing.T) {
	// With 5000 ppb drift over 10 minutes, a static offset from the start
	// of the trace is off by ~3ms at the end; the drift fit stays tight.
	const driftPPB = 5000.0
	mk := func(t1 int64) Sample {
		ahead := int64(driftPPB * float64(t1) / 1e9)
		return Sample{T1: t1, T2: t1 + 100 + ahead, T3: t1 + 120 + ahead, T4: t1 + 220}
	}
	var samples []Sample
	for i := int64(0); i < 60; i++ {
		samples = append(samples, mk(i * 10_000_000_000))
	}
	static, err := EstimateSkew(samples[:1])
	if err != nil {
		t.Fatal(err)
	}
	fit, err := EstimateDrift(samples)
	if err != nil {
		t.Fatal(err)
	}
	end := int64(600_000_000_000)
	trueOffset := int64(driftPPB * float64(end) / 1e9)
	staticErr := abs64(static.SkewNs - trueOffset)
	fitErr := abs64(fit.CorrectNs(end) - trueOffset)
	if staticErr < 1_000_000 {
		t.Fatalf("test inert: static error only %dns", staticErr)
	}
	if fitErr*100 > staticErr {
		t.Fatalf("drift fit error %dns not <<100x static error %dns", fitErr, staticErr)
	}
}

func TestEstimateDriftErrors(t *testing.T) {
	if _, err := EstimateDrift(nil); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("empty: %v", err)
	}
	s := Sample{T1: 100, T2: 200, T3: 210, T4: 300}
	if _, err := EstimateDrift([]Sample{s, s}); !errors.Is(err, ErrBadSample) {
		t.Fatalf("clustered: %v", err)
	}
	bad := Sample{T1: 100, T2: 50, T3: 40, T4: 90}
	if _, err := EstimateDrift([]Sample{s, bad}); !errors.Is(err, ErrBadSample) {
		t.Fatalf("causality: %v", err)
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestEstimateDriftSkipsGarbageSamples is the regression for EstimateDrift
// feeding samples with Processing() > RTT() into the least-squares fit:
// EstimateSkew always skipped them, but the drift fit did not, so one
// garbage sample (a wildly negative one-way estimate) poisoned the slope.
func TestEstimateDriftSkipsGarbageSamples(t *testing.T) {
	const offset = 1_000_000
	const driftPPB = 2000.0
	mk := func(t1 int64) Sample {
		serverAhead := offset + int64(driftPPB*float64(t1)/1e9)
		return Sample{
			T1: t1,
			T2: t1 + 100 + serverAhead,
			T3: t1 + 150 + serverAhead,
			T4: t1 + 250,
		}
	}
	var samples []Sample
	for i := int64(0); i < 100; i++ {
		samples = append(samples, mk(i*10_000_000_000))
	}
	// One garbage sample mid-trace: the server claims 10ms of processing
	// inside a 250ns round trip (e.g. a scheduling stall between the two
	// server timestamps). Causality holds, so it is not rejected — it must
	// be skipped.
	garbage := samples[50]
	garbage.T3 = garbage.T2 + 10_000_000
	samples[50] = garbage

	est, err := EstimateDrift(samples)
	if err != nil {
		t.Fatal(err)
	}
	if est.Samples != 99 {
		t.Fatalf("usable samples = %d, want 99", est.Samples)
	}
	if est.DriftPPB < driftPPB-50 || est.DriftPPB > driftPPB+50 {
		t.Fatalf("drift = %.1f ppb poisoned by garbage sample, want ~%.0f", est.DriftPPB, driftPPB)
	}
	if est.OffsetAtT0Ns < offset-1000 || est.OffsetAtT0Ns > offset+1000 {
		t.Fatalf("offset = %d, want ~%d", est.OffsetAtT0Ns, offset)
	}
}

// TestEstimateDriftTooFewUsableSamples: filtering must error out when
// fewer than two usable samples remain, matching EstimateSkew's behavior
// instead of fitting a line through garbage.
func TestEstimateDriftTooFewUsableSamples(t *testing.T) {
	good := Sample{T1: 0, T2: 1100, T3: 1150, T4: 250}
	bad := Sample{T1: 10_000, T2: 11_100, T3: 11_100 + 10_000_000, T4: 10_250}
	if _, err := EstimateDrift([]Sample{good, bad}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("one usable sample: err = %v, want ErrNoSamples", err)
	}
	bad2 := bad
	bad2.T1, bad2.T4 = 20_000, 20_250
	if _, err := EstimateDrift([]Sample{bad, bad2}); !errors.Is(err, ErrNoSamples) {
		t.Fatalf("all garbage: err = %v, want ErrNoSamples", err)
	}
}
