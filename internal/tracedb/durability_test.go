package tracedb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"vnettracer/internal/core"
)

// durTestEnv builds a durable DB/AggStore pair over fresh temp dirs.
func durTestEnv(t *testing.T, cfg Config) (*DB, *AggStore, *Durability, DurabilityConfig) {
	t.Helper()
	base := t.TempDir()
	cfg.DataDir = filepath.Join(base, "data")
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 4 * core.RecordSize // seal often: exercise spill + adopt
	}
	dcfg := DurabilityConfig{Dir: filepath.Join(base, "wal")}
	db := NewWith(cfg)
	aggs := NewAggStore()
	d, _, err := Recover(db, aggs, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	return db, aggs, d, dcfg
}

// batchRecs builds a batch of n records for a tracepoint with unique
// trace IDs derived from seq.
func batchRecs(tpid uint32, seq uint64, n int) []core.Record {
	recs := make([]core.Record, n)
	for i := range recs {
		recs[i] = core.Record{
			TPID: tpid, TraceID: uint32(seq*100 + uint64(i)),
			TimeNs: seq*1000 + uint64(i), Len: 64, Seq: seq,
			SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 80, DstPort: 443,
			Proto: 6, Dir: 1,
		}
	}
	return recs
}

func testScripts(seq uint64) []ScriptAgg {
	return []ScriptAgg{{
		Script:   "flows.vnt",
		Counters: []uint64{seq, seq * 2},
		Hist:     []uint64{1, 0, 3},
		Flows: []FlowAgg{{
			SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6,
			Packets: seq, Bytes: seq * 100,
		}},
	}}
}

// dbFingerprint summarizes a DB+AggStore's observable state for
// recover-equivalence checks: per-table record sets, ledger snapshots,
// and aggregate snapshots.
func dbFingerprint(db *DB, aggs *AggStore) map[string]any {
	fp := make(map[string]any)
	for _, id := range db.Tables() {
		tbl, _ := db.Table(id)
		var recs []core.Record
		tbl.Scan(func(r core.Record) bool { recs = append(recs, r); return true })
		fp[fmt.Sprintf("table-%d", id)] = recs
	}
	for _, agent := range db.Agents() {
		l, _ := db.Ledger(agent)
		fp["ledger-"+agent] = l
	}
	for _, script := range aggs.Scripts() {
		sa, _ := aggs.Get(script)
		fp["agg-"+script] = sa
	}
	fp["agg-totals"] = aggs.Totals()
	return fp
}

func TestDurabilityRecoverRoundTrip(t *testing.T) {
	db, aggs, d, dcfg := durTestEnv(t, Config{})

	// Admit sequenced batches across two agents and two tracepoints, a
	// checkpoint in the middle, aggregate frames, and a duplicate.
	for seq := uint64(1); seq <= 6; seq++ {
		if st := d.AdmitRecordBatch("a1", 1, seq, batchRecs(1, seq, 3), int64(seq), 0); st != BatchFresh {
			t.Fatalf("a1 seq %d: %v", seq, st)
		}
		if st := d.AdmitAggFrame("a1", 1, seq, testScripts(seq), int64(seq), 0); st != BatchFresh {
			t.Fatalf("a1 agg seq %d: %v", seq, st)
		}
		if seq == 3 {
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := d.AdmitRecordBatch("a2", 5, 1, batchRecs(2, 1, 4), 10, 1); st != BatchFresh {
		t.Fatalf("a2: %v", st)
	}
	want := dbFingerprint(db, aggs)
	// A duplicate after the capture: only fresh payloads are WAL-logged,
	// so a duplicate's bookkeeping (dup count, heartbeat bump) is
	// deliberately transient — the recovered state must match the
	// fingerprint from before it.
	if st := d.AdmitRecordBatch("a1", 1, 2, batchRecs(1, 2, 3), 99, 0); st != BatchDuplicate {
		t.Fatalf("expected duplicate, got %v", st)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// "Crash": all in-memory state dropped; recover from disk alone.
	db2 := NewWith(db.Config())
	aggs2 := NewAggStore()
	d2, stats, err := Recover(db2, aggs2, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !stats.CheckpointLoaded {
		t.Fatal("no checkpoint loaded")
	}
	got := dbFingerprint(db2, aggs2)
	for k, w := range want {
		if !reflect.DeepEqual(got[k], w) {
			t.Errorf("%s mismatch after recovery:\n got %+v\nwant %+v", k, got[k], w)
		}
	}
	if len(got) != len(want) {
		t.Errorf("fingerprint key count: got %d want %d", len(got), len(want))
	}

	// Re-shipped (already-ingested) batches must dedup after recovery —
	// the exactly-once property the WAL + checkpoint exist to preserve.
	if st := d2.AdmitRecordBatch("a1", 1, 5, batchRecs(1, 5, 3), 100, 0); st != BatchDuplicate {
		t.Fatalf("re-ship after recovery: got %v, want duplicate", st)
	}
	if st := d2.AdmitAggFrame("a1", 1, 4, testScripts(4), 100, 0); st != BatchDuplicate {
		t.Fatalf("agg re-ship after recovery: got %v, want duplicate", st)
	}
	// And genuinely new traffic continues the sequence space.
	if st := d2.AdmitRecordBatch("a1", 1, 7, batchRecs(1, 7, 2), 101, 0); st != BatchFresh {
		t.Fatalf("new batch after recovery: got %v, want fresh", st)
	}
}

// TestRecoverReplayIdempotent: recovering the same directory twice into
// fresh stores yields identical state (recover twice ≡ recover once) —
// the property that makes a crash during recovery harmless.
func TestRecoverReplayIdempotent(t *testing.T) {
	db, _, d, dcfg := durTestEnv(t, Config{})
	for seq := uint64(1); seq <= 5; seq++ {
		d.AdmitRecordBatch("a1", 1, seq, batchRecs(1, seq, 3), int64(seq), 0)
		if seq == 2 {
			if err := d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	d.Close()

	fps := make([]map[string]any, 2)
	for i := range fps {
		dbN := NewWith(db.Config())
		aggsN := NewAggStore()
		dN, _, err := Recover(dbN, aggsN, dcfg)
		if err != nil {
			t.Fatal(err)
		}
		fps[i] = dbFingerprint(dbN, aggsN)
		dN.Close()
	}
	if !reflect.DeepEqual(fps[0], fps[1]) {
		t.Errorf("recovery not idempotent:\nfirst  %+v\nsecond %+v", fps[0], fps[1])
	}
}

// TestWALTornTailEveryOffset truncates the WAL at every byte offset.
// Recovery must never panic and must recover exactly the prefix of
// complete entries.
func TestWALTornTailEveryOffset(t *testing.T) {
	db, _, d, dcfg := durTestEnv(t, Config{SegmentBytes: 1 << 20}) // no seals: all state in WAL
	const batches = 4
	for seq := uint64(1); seq <= batches; seq++ {
		d.AdmitRecordBatch("a1", 1, seq, batchRecs(1, seq, 2), int64(seq), 0)
	}
	d.Close()

	files, err := listWALFiles(dcfg.Dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("wal files: %v err %v", files, err)
	}
	walPath := filepath.Join(dcfg.Dir, files[0])
	whole, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries of the intact log, so each truncation offset maps
	// to the exact number of complete entries it preserves.
	var boundaries []int // boundaries[i] = end offset of frame i
	for pos := 0; pos+walFrameHeader <= len(whole); {
		plen := int(binary.BigEndian.Uint32(whole[pos : pos+4]))
		pos += walFrameHeader + plen
		boundaries = append(boundaries, pos)
	}
	entriesBelow := func(off int) uint64 {
		n := uint64(0)
		for _, end := range boundaries {
			if end <= off {
				n++
			}
		}
		return n
	}
	frameAligned := func(off int) bool {
		if off == 0 {
			return true
		}
		for _, end := range boundaries {
			if end == off {
				return true
			}
		}
		return false
	}

	for off := 0; off <= len(whole); off++ {
		tdir := t.TempDir()
		wdir := filepath.Join(tdir, "wal")
		os.MkdirAll(wdir, 0o755)
		if err := os.WriteFile(filepath.Join(wdir, files[0]), whole[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		dbN := NewWith(Config{SegmentBytes: 1 << 20, DataDir: filepath.Join(tdir, "data")})
		aggsN := NewAggStore()
		dN, stats, err := Recover(dbN, aggsN, DurabilityConfig{Dir: wdir})
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		wantEntries := entriesBelow(off)
		if stats.ReplayedEntries != wantEntries {
			t.Fatalf("offset %d: replayed %d entries, want %d", off, stats.ReplayedEntries, wantEntries)
		}
		tbl, ok := dbN.Table(1)
		var gotRecs int
		if ok {
			gotRecs = tbl.Len()
		}
		if gotRecs != int(wantEntries)*2 {
			t.Fatalf("offset %d: %d records, want %d", off, gotRecs, wantEntries*2)
		}
		// A prefix that isn't frame-aligned must be reported (and
		// truncated) as a torn tail; a frame-aligned prefix is a clean
		// shorter log.
		if wantTorn := !frameAligned(off); (stats.TornTails == 1) != wantTorn {
			t.Fatalf("offset %d: tornTails=%d, want torn=%v", off, stats.TornTails, wantTorn)
		}
		dN.Close()
	}
	_ = db
}

// TestConcurrentCheckpointIngest runs admissions and checkpoints
// concurrently; under -race this pins down the barrier, and afterward a
// recovery must see every admitted batch.
func TestConcurrentCheckpointIngest(t *testing.T) {
	db, _, d, dcfg := durTestEnv(t, Config{SegmentBytes: 8 * core.RecordSize})
	const agents, perAgent = 4, 50
	var wg sync.WaitGroup
	for a := 0; a < agents; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			name := fmt.Sprintf("agent-%d", a)
			for seq := uint64(1); seq <= perAgent; seq++ {
				d.AdmitRecordBatch(name, 1, seq, batchRecs(uint32(a+1), seq, 2), int64(seq), 0)
				d.AdmitAggFrame(name, 1, seq, testScripts(seq), int64(seq), 0)
			}
		}(a)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := d.Checkpoint(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	db2 := NewWith(db.Config())
	aggs2 := NewAggStore()
	d2, _, err := Recover(db2, aggs2, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for a := 0; a < agents; a++ {
		tbl, ok := db2.Table(uint32(a + 1))
		if !ok || tbl.Len() != perAgent*2 {
			n := 0
			if ok {
				n = tbl.Len()
			}
			t.Errorf("table %d: %d records after recovery, want %d", a+1, n, perAgent*2)
		}
		l, ok := db2.Ledger(fmt.Sprintf("agent-%d", a))
		if !ok || l.HighWaterSeq != perAgent {
			t.Errorf("agent-%d hwm %d, want %d", a, l.HighWaterSeq, perAgent)
		}
	}
}

// TestCheckpointRetiresWAL: after a checkpoint only the fresh generation
// remains, and old checkpoints prune down to the keep limit.
func TestCheckpointRetiresWAL(t *testing.T) {
	_, _, d, dcfg := durTestEnv(t, Config{})
	for i := 0; i < 4; i++ {
		d.AdmitRecordBatch("a1", 1, uint64(i+1), batchRecs(1, uint64(i+1), 2), int64(i), 0)
		if err := d.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	files, _ := listWALFiles(dcfg.Dir)
	if len(files) != 1 {
		t.Errorf("wal generations after checkpoints: %v, want 1", files)
	}
	ents, _ := os.ReadDir(dcfg.Dir)
	ckpts := 0
	for _, e := range ents {
		if _, ok := parseCheckpointFileName(e.Name()); ok {
			ckpts++
		}
	}
	if ckpts != checkpointsKept {
		t.Errorf("checkpoints on disk: %d, want %d", ckpts, checkpointsKept)
	}
}

func TestNewWithSweepsTmpFiles(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "tp00000001-000003.vnx.tmp")
	if err := os.WriteFile(orphan, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	keep := filepath.Join(dir, "keep.vnx")
	os.WriteFile(keep, []byte("x"), 0o644)
	NewWith(Config{DataDir: dir})
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphaned .tmp not swept on startup")
	}
	if _, err := os.Stat(keep); err != nil {
		t.Error("non-tmp file removed by sweep")
	}
}

func TestSpillErrorsSurfaced(t *testing.T) {
	dir := t.TempDir()
	db := NewWith(Config{SegmentBytes: 2 * core.RecordSize, DataDir: dir})
	// Make the data dir unusable: replace it with a file so MkdirAll and
	// writes fail.
	os.RemoveAll(dir)
	if err := os.WriteFile(dir, []byte("not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}
	db.Insert(batchRecs(1, 1, 4)) // crosses SegmentBytes → seal → spill fails
	tot := db.StorageTotals()
	if tot.SpillErrors == 0 {
		t.Fatal("spill failure not counted in StorageStats")
	}
	if tot.LastSpillError == "" {
		t.Error("spill failure message not surfaced")
	}
	if tot.Records() != 4 {
		t.Errorf("records lost on spill failure: %d", tot.Records())
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "interval": FsyncInterval, "never": FsyncNever,
		"Always": FsyncAlways, " never ": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("bad policy accepted")
	}
	for _, p := range []FsyncPolicy{FsyncNever, FsyncInterval, FsyncAlways} {
		rt, err := ParseFsyncPolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("round trip %v: %v, %v", p, rt, err)
		}
	}
}

func TestRecoverRequiresDirs(t *testing.T) {
	db := New() // no DataDir
	if _, _, err := Recover(db, NewAggStore(), DurabilityConfig{Dir: t.TempDir()}); err == nil {
		t.Error("Recover accepted a DB without DataDir")
	}
	db2 := NewWith(Config{DataDir: t.TempDir()})
	if _, _, err := Recover(db2, NewAggStore(), DurabilityConfig{}); err == nil {
		t.Error("Recover accepted an empty durability dir")
	}
}

// TestWALRawRecordsEncoding pins the raw-bytes fast path: an entry
// carrying its records' canonical wire encoding (the transport's record
// section) must produce a byte-identical frame to one that re-marshals
// the records, and a raw slice of the wrong length must be ignored, not
// logged.
func TestWALRawRecordsEncoding(t *testing.T) {
	recs := batchRecs(3, 7, 5)
	var raw []byte
	for i := range recs {
		raw = recs[i].Marshal(raw)
	}
	mk := func(rawRecs []byte) walEntry {
		return walEntry{
			LSN: 12, Kind: walKindRecords, Agent: "a1", Epoch: 2, Seq: 7,
			TimeNs: 99, Records: recs, RawRecords: rawRecs,
		}
	}
	marshalled := mk(nil)
	passthrough := mk(raw)
	want := appendWALPayload(nil, &marshalled)
	got := appendWALPayload(nil, &passthrough)
	if !bytes.Equal(got, want) {
		t.Fatalf("raw passthrough encoded %d bytes differing from re-marshal (%d vs %d)", len(got), len(got), len(want))
	}
	// A wrong-length raw (stale after a Records mutation) falls back to
	// marshalling instead of corrupting the frame.
	bad := mk(raw[:len(raw)-1])
	if got := appendWALPayload(nil, &bad); !bytes.Equal(got, want) {
		t.Fatalf("wrong-length raw was not ignored")
	}
	e, err := decodeWALPayload(want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Records, recs) {
		t.Fatalf("decoded records differ: %+v vs %+v", e.Records, recs)
	}
}
