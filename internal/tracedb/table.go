package tracedb

import (
	"sort"
	"sync"
	"sync/atomic"

	"vnettracer/internal/core"
)

// Table holds all records from one tracepoint, stored as an append-only,
// time-partitioned sequence of segments: a mutable in-memory head (raw
// records plus an exact trace-ID index) and a list of sealed, immutable,
// compressed extents — oldest first, in insertion order. Seals happen at
// batch boundaries (Insert appends whole per-tracepoint runs and only
// then checks the head's size), so every extent covers whole delivered
// batches and the collector's ledger state at any extent boundary is
// self-describing. All methods are safe for concurrent use with
// DB.Insert.
type Table struct {
	TPID uint32
	Name string

	db *DB

	mu sync.RWMutex
	// skewNs is the estimated clock offset of the node hosting this
	// tracepoint relative to the master (Cristian's algorithm); analyses
	// subtract it during timestamp alignment, applied per segment at read
	// time.
	skewNs int64

	// head is the mutable segment; headIndex maps trace IDs to head
	// positions for exact lookups before sealing.
	head      []core.Record
	headIndex map[uint32][]int32

	// sealed lists immutable extents oldest-first. sealedRecords and
	// sealedBytes are running totals so Len and retention are O(1).
	sealed        []*Extent
	sealSeq       int
	sealedRecords int
	sealedBytes   int64

	evictedRecords uint64
	evictedExtents uint64

	// spillErrors counts sealed extents that failed to spill to the data
	// directory (disk full, bad dir). The blob stays resident so no
	// records are lost, but the extent is not crash-durable; the counter
	// makes that visible in StorageStats instead of silently degrading.
	spillErrors  uint64
	lastSpillErr error

	// readErrors counts extent scans that failed mid-query (e.g. a
	// spilled file evicted between snapshot and read). Queries skip the
	// extent and keep going; the counter keeps the skip visible.
	readErrors atomic.Uint64
}

func newTable(db *DB, tpid uint32, name string) *Table {
	return &Table{TPID: tpid, Name: name, db: db, headIndex: make(map[uint32][]int32)}
}

// append adds a run of records (all with this table's TPID) under the
// table lock, sealing the head into a new extent once it crosses the
// configured segment size. The check runs after the whole run lands, so
// extents always break at batch-run boundaries.
func (t *Table) append(recs []core.Record) {
	t.mu.Lock()
	for i := range recs {
		t.headIndex[recs[i].TraceID] = append(t.headIndex[recs[i].TraceID], int32(len(t.head)))
		t.head = append(t.head, recs[i])
	}
	if len(t.head)*core.RecordSize >= t.db.cfg.SegmentBytes {
		t.sealLocked()
	}
	t.mu.Unlock()
}

// sealLocked compresses the head into a new immutable extent, spills it
// when the DB has a data directory, and applies retention. Callers hold
// t.mu for writing.
func (t *Table) sealLocked() {
	if len(t.head) == 0 {
		return
	}
	ext := sealExtent(t.TPID, t.sealSeq, t.head)
	t.sealSeq++
	if dir := t.db.cfg.DataDir; dir != "" {
		// Spill is best-effort: a failed write (disk full, bad dir) keeps
		// the blob resident rather than losing the records — but the
		// failure is counted, because a resident-only extent is invisible
		// to crash recovery and an operator needs to see disk trouble.
		if err := ext.spill(dir, t.TPID); err != nil {
			t.spillErrors++
			t.lastSpillErr = err
		}
	}
	t.sealed = append(t.sealed, ext)
	t.sealedRecords += ext.count
	t.sealedBytes += int64(ext.storedBytes)
	// The old head backing array may still be referenced by concurrent
	// scan snapshots, so start a fresh one rather than reusing it.
	t.head = nil
	t.headIndex = make(map[uint32][]int32)
	t.enforceRetentionLocked()
}

// enforceRetentionLocked evicts whole extents oldest-first until the
// sealed store fits the retention budget. The head is never evicted.
func (t *Table) enforceRetentionLocked() {
	retain := t.db.cfg.RetainBytes
	if retain <= 0 {
		return
	}
	k := 0
	for k < len(t.sealed) && t.sealedBytes > retain {
		ext := t.sealed[k]
		t.sealedBytes -= int64(ext.storedBytes)
		t.sealedRecords -= ext.count
		t.evictedRecords += uint64(ext.count)
		t.evictedExtents++
		ext.remove()
		k++
	}
	if k > 0 {
		// Reslice into a fresh array so the dropped extents become
		// collectable even while the old backing array is snapshotted.
		t.sealed = append([]*Extent(nil), t.sealed[k:]...)
	}
}

// Seal seals the current head segment immediately, regardless of size.
// Useful before shutdown (so a data directory holds everything) and in
// tests; a no-op on an empty head.
func (t *Table) Seal() {
	t.mu.Lock()
	t.sealLocked()
	t.mu.Unlock()
}

// snapshot captures the sealed extent list, the head prefix, and the skew
// without copying record data. Extents are immutable and head records are
// append-only (a seal swaps in a fresh backing array rather than reusing
// the old one), so the snapshot stays consistent while inserts continue.
func (t *Table) snapshot() ([]*Extent, []core.Record, int64) {
	t.mu.RLock()
	exts, head, skew := t.sealed, t.head, t.skewNs
	t.mu.RUnlock()
	return exts, head, skew
}

// Skew returns the clock offset correction applied during alignment.
func (t *Table) Skew() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.skewNs
}

// Len returns the live record count (head plus sealed, minus evicted).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.head) + t.sealedRecords
}

// Extents returns the current number of sealed segments.
func (t *Table) Extents() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.sealed)
}

// alignNs applies the skew correction to a timestamp, clamping at zero: a
// positive skew larger than an early record's timestamp must not wrap the
// unsigned time around to a huge value (which would sort the record after
// everything else and wreck latency math).
func alignNs(timeNs uint64, skewNs int64) uint64 {
	v := int64(timeNs) - skewNs
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// scanSegments drives fn over sealed extents then the head, in insertion
// order, aligning timestamps when align is set. It returns early when fn
// returns false. Extents that fail to read (evicted mid-query) are
// skipped and counted.
func (t *Table) scanSegments(align bool, fn func(core.Record) bool) {
	exts, head, skew := t.snapshot()
	stopped := false
	visit := func(r core.Record) bool {
		if align {
			r.TimeNs = alignNs(r.TimeNs, skew)
		}
		if !fn(r) {
			stopped = true
			return false
		}
		return true
	}
	for _, e := range exts {
		if err := e.scan(visit); err != nil {
			t.readErrors.Add(1)
			continue
		}
		if stopped {
			return
		}
	}
	for i := range head {
		if !visit(head[i]) {
			return
		}
	}
}

// Scan streams every record in insertion order until fn returns false.
// The segment snapshot is taken under the lock and decoded outside it, so
// long analyses never block inserts; records inserted after Scan starts
// are not visited.
func (t *Table) Scan(fn func(core.Record) bool) { t.scanSegments(false, fn) }

// ScanAligned streams every record with timestamps corrected by the node
// skew ("timestamp alignment for the clock skew", Section III-C), until
// fn returns false. The correction is applied per segment at read time,
// so a skew learned after records sealed still aligns them.
func (t *Table) ScanAligned(fn func(core.Record) bool) { t.scanSegments(true, fn) }

// ByTraceID returns all records for one packet ID in insertion order.
// Sealed extents are consulted only when their Bloom filter admits the
// ID; the head uses its exact index.
func (t *Table) ByTraceID(id uint32) []core.Record {
	t.mu.RLock()
	exts := t.sealed
	var headOut []core.Record
	if idxs := t.headIndex[id]; len(idxs) > 0 {
		headOut = make([]core.Record, len(idxs))
		for i, idx := range idxs {
			headOut[i] = t.head[idx]
		}
	}
	t.mu.RUnlock()

	var out []core.Record
	for _, e := range exts {
		if !e.mayContain(id) {
			continue
		}
		if err := e.scan(func(r core.Record) bool {
			if r.TraceID == id {
				out = append(out, r)
			}
			return true
		}); err != nil {
			t.readErrors.Add(1)
		}
	}
	return append(out, headOut...)
}

// FirstByTraceID returns the first record for a packet ID in insertion
// order, with timestamp alignment applied.
func (t *Table) FirstByTraceID(id uint32) (core.Record, bool) {
	t.mu.RLock()
	exts := t.sealed
	skew := t.skewNs
	var headFirst core.Record
	headOK := false
	if idxs := t.headIndex[id]; len(idxs) > 0 {
		headFirst = t.head[idxs[0]]
		headOK = true
	}
	t.mu.RUnlock()

	for _, e := range exts {
		if !e.mayContain(id) {
			continue
		}
		var found core.Record
		ok := false
		if err := e.scan(func(r core.Record) bool {
			if r.TraceID == id {
				found, ok = r, true
				return false
			}
			return true
		}); err != nil {
			t.readErrors.Add(1)
			continue
		}
		if ok {
			found.TimeNs = alignNs(found.TimeNs, skew)
			return found, true
		}
	}
	if headOK {
		headFirst.TimeNs = alignNs(headFirst.TimeNs, skew)
		return headFirst, true
	}
	return core.Record{}, false
}

// traceIDSet scans all live segments and returns the distinct packet IDs.
func (t *Table) traceIDSet() map[uint32]struct{} {
	set := make(map[uint32]struct{})
	t.Scan(func(r core.Record) bool {
		set[r.TraceID] = struct{}{}
		return true
	})
	return set
}

// TraceIDs returns the distinct packet IDs seen at this tracepoint, in
// ascending order. With sealed segments this is a full streaming pass;
// the set it builds is transient query state, not resident storage.
func (t *Table) TraceIDs() []uint32 {
	set := t.traceIDSet()
	out := make([]uint32, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumTraceIDs returns the count of distinct packet IDs without building
// the sorted slice.
func (t *Table) NumTraceIDs() int { return len(t.traceIDSet()) }

// Incomplete reports trace IDs seen at this table but missing from other
// — the "identifying incomplete records" data-cleaning step, and the raw
// material of the packet-loss metric. Both tables stream without holding
// locks across each other, so Incomplete(a,b) and Incomplete(b,a) can run
// concurrently with inserts on both.
func (t *Table) Incomplete(other *Table) []uint32 {
	present := other.traceIDSet()
	var out []uint32
	for _, id := range t.TraceIDs() {
		if _, ok := present[id]; !ok {
			out = append(out, id)
		}
	}
	return out // TraceIDs is sorted, so out is too
}

// Storage returns the table's segment-store accounting.
func (t *Table) Storage() StorageStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := StorageStats{
		TPID:           t.TPID,
		Name:           t.Name,
		HeadRecords:    uint64(len(t.head)),
		SealedRecords:  uint64(t.sealedRecords),
		Extents:        len(t.sealed),
		HeadBytes:      uint64(len(t.head)) * core.RecordSize,
		SealedRawBytes: uint64(t.sealedRecords) * core.RecordSize,
		EvictedRecords: t.evictedRecords,
		EvictedExtents: t.evictedExtents,
		ReadErrors:     t.readErrors.Load(),
		SpillErrors:    t.spillErrors,
	}
	if t.lastSpillErr != nil {
		s.LastSpillError = t.lastSpillErr.Error()
	}
	s.ResidentBytes = s.HeadBytes
	for _, e := range t.sealed {
		s.ResidentBytes += e.residentBytes()
		if e.Spilled() {
			s.SpilledExtents++
			s.SpilledBytes += uint64(e.storedBytes)
		} else {
			s.SealedResidentBytes += uint64(e.storedBytes)
		}
	}
	return s
}
