package tracedb

import "sort"

// This file implements ledger handoff: the state that travels when an
// agent is re-homed from a failed collector to a survivor. The agent
// process itself outlives the collector, so unlike a restart its sequence
// space continues — the importing collector must know the exporter's
// high-water mark or it would re-ingest every spooled batch the old
// collector already has. Ownership rules:
//
//   - the agent's record and aggregate ledgers live only on its current
//     home collector;
//   - re-homing advances the agent's epoch; the new home imports the old
//     ledger state AT the new epoch (seqs continue), while the old home
//     closes the epoch with a tombstone that fences stragglers;
//   - gap accounting (missing batches) travels with the export and is
//     zeroed in the tombstone, so a cluster-wide sum never double-counts
//     a missing batch.

// LedgerHandoff is one agent's exportable delivery-ledger state: the
// sequence bookkeeping a successor collector needs to continue
// exactly-once ingest for the same agent process.
type LedgerHandoff struct {
	// Epoch is the lease the state was recorded under.
	Epoch uint64
	// HighWater/MaxSeq/Pending mirror the live ledger's sequence state.
	HighWater uint64
	MaxSeq    uint64
	Pending   []uint64
	// MissingPrior carries gap counts from epochs closed before the
	// handoff; the current epoch's gap re-derives from the seq state.
	MissingPrior uint64
	// Dups preserves the duplicate-drop history for reporting continuity.
	Dups uint64
	// LastSeenNs is the newest heartbeat on the agent's clock.
	LastSeenNs int64
	// Degraded is the agent's last self-reported degradation level.
	Degraded uint8
}

// export snapshots the handoff state. Callers hold the mutex guarding l.
func (l *agentLedger) export() LedgerHandoff {
	h := LedgerHandoff{
		Epoch:        l.epoch,
		HighWater:    l.hwm,
		MaxSeq:       l.maxSeq,
		MissingPrior: l.missingPrior,
		Dups:         l.dups,
		LastSeenNs:   l.lastSeenNs,
		Degraded:     l.degraded,
	}
	for seq := range l.pending {
		h.Pending = append(h.Pending, seq)
	}
	sort.Slice(h.Pending, func(i, j int) bool { return h.Pending[i] < h.Pending[j] })
	return h
}

// importHandoff installs exported state at the given (newer) epoch,
// never regressing what this ledger already knows. On an epoch advance
// the imported sequence state becomes both the current state (the agent
// keeps its sequence space across a re-homing, so retried batches the
// exporter already ingested must dedup here) and the frozen
// previous-epoch view (so batches still carrying the pre-handoff epoch
// dedup-aware fence instead of double-counting). At an equal epoch the
// import merges monotonically — repeated handoffs cannot move the
// high-water mark backwards. Callers hold the mutex guarding l.
func (l *agentLedger) importHandoff(epoch uint64, h LedgerHandoff) {
	if epoch < l.epoch {
		return // stale import: this ledger has already moved on
	}
	if epoch > l.epoch {
		// Close out whatever this ledger held (normally nothing: the
		// importer never owned the agent, or closed it on a prior move).
		l.missingPrior += l.maxSeq - l.hwm - uint64(len(l.pending))
		l.prevMaxSeq = h.MaxSeq
		l.prevHwm = h.HighWater
		l.prevPending = seqSet(h.Pending)
		l.prevFenced = make(map[uint64]struct{})
		l.hwm = h.HighWater
		l.maxSeq = h.MaxSeq
		l.pending = seqSet(h.Pending)
		l.missingPrior += h.MissingPrior
		l.dups += h.Dups
		l.degraded = h.Degraded
		l.epoch = epoch
	} else {
		// Same epoch (a repeated handoff): merge without regressing.
		if h.HighWater > l.hwm {
			l.hwm = h.HighWater
		}
		if h.MaxSeq > l.maxSeq {
			l.maxSeq = h.MaxSeq
		}
		for _, seq := range h.Pending {
			if seq > l.hwm {
				l.pending[seq] = struct{}{}
			}
		}
		for seq := range l.pending {
			if seq <= l.hwm {
				delete(l.pending, seq)
			}
		}
		for {
			if _, ok := l.pending[l.hwm+1]; !ok {
				break
			}
			delete(l.pending, l.hwm+1)
			l.hwm++
		}
	}
	if h.LastSeenNs > l.lastSeenNs {
		l.lastSeenNs = h.LastSeenNs
	}
}

// closeEpoch is the exporter-side tombstone after a handoff: like the
// epoch-advance branch of admit it freezes the old sequence state for
// dedup-aware fencing and resets the live counters, but it does NOT fold
// the outstanding gap into missingPrior — that accounting traveled with
// the export, and counting it on both collectors would double every
// missing batch in cluster-wide sums. Callers hold the mutex guarding l.
func (l *agentLedger) closeEpoch(epoch uint64) {
	if epoch <= l.epoch {
		return
	}
	l.prevMaxSeq = l.maxSeq
	l.prevHwm = l.hwm
	l.prevPending = l.pending
	l.prevFenced = make(map[uint64]struct{})
	l.hwm, l.maxSeq = 0, 0
	l.pending = make(map[uint64]struct{})
	l.missingPrior = 0
	l.epoch = epoch
}

func seqSet(seqs []uint64) map[uint64]struct{} {
	m := make(map[uint64]struct{}, len(seqs))
	for _, s := range seqs {
		m[s] = struct{}{}
	}
	return m
}

// ExportLedger snapshots an agent's record-batch ledger for handoff.
func (db *DB) ExportLedger(agent string) (LedgerHandoff, bool) {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	l, ok := db.ledger[agent]
	if !ok {
		return LedgerHandoff{}, false
	}
	return l.export(), true
}

// ImportLedger installs handoff state for an agent at the given epoch
// (the lease granted by the re-homing). Imports never regress: a stale
// epoch is ignored, and an equal-epoch import merges monotonically.
func (db *DB) ImportLedger(agent string, epoch uint64, h LedgerHandoff) {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	db.ledgerEntry(agent).importHandoff(epoch, h)
}

// CloseAgentEpoch is the old home's side of a handoff: it advances the
// agent's ledger to the new epoch with no live state, so any straggler
// still routed here — a record batch, an aggregate frame's heartbeat, a
// bare heartbeat — is fenced instead of resurrecting the assignment. Gap
// accounting is zeroed here because it traveled with the export.
func (db *DB) CloseAgentEpoch(agent string, epoch uint64) {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	db.ledgerEntry(agent).closeEpoch(epoch)
}

// HeartbeatEpoch is the epoch-aware liveness update: it behaves exactly
// like admitting an unsequenced batch — a current lease advances the
// agent's last-seen clock, a newer lease closes the old epoch first, and
// a stale lease is fenced without touching liveness or any counter. The
// aggregate-frame path uses it so a frame routed to an agent's OLD
// collector after a re-homing cannot resurrect the stale assignment.
// Epoch 0 (unleased) is never fenced.
func (db *DB) HeartbeatEpoch(agent string, epoch uint64, nowNs int64, degraded uint8) BatchStatus {
	return db.AdmitBatch(agent, epoch, 0, 0, nowNs, degraded)
}

// ExportLedger snapshots an agent's aggregate-frame ledger for handoff.
func (s *AggStore) ExportLedger(agent string) (LedgerHandoff, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.ledger[agent]
	if !ok {
		return LedgerHandoff{}, false
	}
	return l.export(), true
}

// ImportLedger installs aggregate-ledger handoff state at the given
// epoch, with the same never-regress semantics as DB.ImportLedger.
func (s *AggStore) ImportLedger(agent string, epoch uint64, h LedgerHandoff) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.ledger[agent]
	if !ok {
		l = &agentLedger{pending: make(map[uint64]struct{})}
		s.ledger[agent] = l
	}
	l.importHandoff(epoch, h)
}

// CloseAgentEpoch fences an agent's aggregate stream on the old home
// after a handoff; see DB.CloseAgentEpoch.
func (s *AggStore) CloseAgentEpoch(agent string, epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.ledger[agent]
	if !ok {
		l = &agentLedger{pending: make(map[uint64]struct{})}
		s.ledger[agent] = l
	}
	l.closeEpoch(epoch)
}

// MergeAggs folds script-aggregate snapshots of the same script into one:
// counters, per-CPU hits, and histogram buckets sum slot-wise; flows sum
// per 5-tuple (sorted deterministically). This is the cross-collector
// merge for a partitioned tier, where an agent's frames may have landed
// on different collectors across a re-homing; it is exact because every
// frame was merged exactly once on exactly one collector.
func MergeAggs(parts ...ScriptAgg) ScriptAgg {
	var out ScriptAgg
	flows := make(map[flowKey]*FlowAgg)
	for _, p := range parts {
		if out.Script == "" {
			out.Script = p.Script
		}
		out.Counters = addU64(out.Counters, p.Counters)
		out.CPUHits = addU64(out.CPUHits, p.CPUHits)
		out.Hist = addU64(out.Hist, p.Hist)
		for _, f := range p.Flows {
			k := flowKey{f.SrcIP, f.DstIP, f.SrcPort, f.DstPort, f.Proto}
			fv, ok := flows[k]
			if !ok {
				fv = &FlowAgg{SrcIP: f.SrcIP, DstIP: f.DstIP, SrcPort: f.SrcPort, DstPort: f.DstPort, Proto: f.Proto}
				flows[k] = fv
			}
			fv.Packets += f.Packets
			fv.Bytes += f.Bytes
		}
	}
	for _, fv := range flows {
		out.Flows = append(out.Flows, *fv)
	}
	sort.Slice(out.Flows, func(i, j int) bool { return flowLess(&out.Flows[i], &out.Flows[j]) })
	return out
}
