// Checkpoints snapshot the collector's non-record durable state — the
// per-agent record and aggregate delivery ledgers (including the frozen
// previous-epoch views and fenced accounting that keep zombie dedup
// exact), the merged aggregate store, and per-table seal/eviction
// counters — so recovery can restore exactly-once semantics and then
// replay only the WAL tail written after the checkpoint. Record payloads
// are NOT in the checkpoint: the checkpoint path seals every head segment
// first, so records up to the checkpoint LSN are durable in spilled
// extents and everything after it is durable in the WAL.
//
// A checkpoint file is named for the highest LSN it covers:
//
//	ckpt-<lsn:%016x>.ckpt
//
// and framed as: magic "vnck" | version byte | 8B big-endian LSN |
// 4B big-endian CRC32(payload) | JSON payload. Files are written
// temp-then-rename like extent spills, so a crash mid-checkpoint leaves
// the previous checkpoint intact and at worst an orphaned *.tmp (swept on
// startup).
package tracedb

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

const checkpointVersion = 1

var checkpointMagic = [4]byte{'v', 'n', 'c', 'k'}

// ledgerState is the full serialized form of one agentLedger — richer
// than LedgerHandoff because a recovering collector restores its own
// complete state (frozen previous-epoch views, fenced counters) rather
// than handing a successor the minimum to continue.
type ledgerState struct {
	LastSeenNs    int64    `json:"last_seen_ns,omitempty"`
	HighWater     uint64   `json:"hwm,omitempty"`
	MaxSeq        uint64   `json:"max_seq,omitempty"`
	Pending       []uint64 `json:"pending,omitempty"`
	Dups          uint64   `json:"dups,omitempty"`
	Epoch         uint64   `json:"epoch,omitempty"`
	PrevMaxSeq    uint64   `json:"prev_max_seq,omitempty"`
	PrevHighWater uint64   `json:"prev_hwm,omitempty"`
	PrevPending   []uint64 `json:"prev_pending,omitempty"`
	PrevFenced    []uint64 `json:"prev_fenced,omitempty"`
	MissingPrior  uint64   `json:"missing_prior,omitempty"`
	FencedBatches uint64   `json:"fenced_batches,omitempty"`
	FencedRecords uint64   `json:"fenced_records,omitempty"`
	Degraded      uint8    `json:"degraded,omitempty"`
}

// exportState snapshots the complete ledger. Callers hold the mutex
// guarding l.
func (l *agentLedger) exportState() ledgerState {
	return ledgerState{
		LastSeenNs:    l.lastSeenNs,
		HighWater:     l.hwm,
		MaxSeq:        l.maxSeq,
		Pending:       sortedSeqs(l.pending),
		Dups:          l.dups,
		Epoch:         l.epoch,
		PrevMaxSeq:    l.prevMaxSeq,
		PrevHighWater: l.prevHwm,
		PrevPending:   sortedSeqs(l.prevPending),
		PrevFenced:    sortedSeqs(l.prevFenced),
		MissingPrior:  l.missingPrior,
		FencedBatches: l.fencedBatches,
		FencedRecords: l.fencedRecords,
		Degraded:      l.degraded,
	}
}

// restoreState overwrites the ledger with a checkpointed snapshot.
// Callers hold the mutex guarding l.
func (l *agentLedger) restoreState(s ledgerState) {
	l.lastSeenNs = s.LastSeenNs
	l.hwm = s.HighWater
	l.maxSeq = s.MaxSeq
	l.pending = seqSet(s.Pending)
	l.dups = s.Dups
	l.epoch = s.Epoch
	l.prevMaxSeq = s.PrevMaxSeq
	l.prevHwm = s.PrevHighWater
	l.prevPending = nil
	if s.PrevPending != nil {
		l.prevPending = seqSet(s.PrevPending)
	}
	l.prevFenced = nil
	if s.PrevFenced != nil {
		l.prevFenced = seqSet(s.PrevFenced)
	}
	l.missingPrior = s.MissingPrior
	l.fencedBatches = s.FencedBatches
	l.fencedRecords = s.FencedRecords
	l.degraded = s.Degraded
}

func sortedSeqs(m map[uint64]struct{}) []uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make([]uint64, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// exportLedgerStates snapshots every agent's record ledger.
func (db *DB) exportLedgerStates() map[string]ledgerState {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	out := make(map[string]ledgerState, len(db.ledger))
	for agent, l := range db.ledger {
		out[agent] = l.exportState()
	}
	return out
}

// restoreLedgerStates overwrites the record ledgers with a checkpoint.
func (db *DB) restoreLedgerStates(states map[string]ledgerState) {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	for agent, s := range states {
		db.ledgerEntry(agent).restoreState(s)
	}
}

// tableState is the per-table durable accounting: the seal sequence
// fence (extents with seq below it are covered by the checkpoint; newer
// ones rebuild from the WAL) plus eviction/error counters that would
// otherwise reset to zero on restart.
type tableState struct {
	Name           string `json:"name"`
	SealSeq        int    `json:"seal_seq"`
	EvictedRecords uint64 `json:"evicted_records,omitempty"`
	EvictedExtents uint64 `json:"evicted_extents,omitempty"`
	SpillErrors    uint64 `json:"spill_errors,omitempty"`
}

// exportTableStates snapshots per-table durable counters. The head must
// already be sealed (the checkpoint path calls SealAll first), so SealSeq
// fences the complete record history.
func (db *DB) exportTableStates() map[uint32]tableState {
	out := make(map[uint32]tableState)
	for _, id := range db.Tables() {
		t, ok := db.Table(id)
		if !ok {
			continue
		}
		t.mu.RLock()
		out[id] = tableState{
			Name:           t.Name,
			SealSeq:        t.sealSeq,
			EvictedRecords: t.evictedRecords,
			EvictedExtents: t.evictedExtents,
			SpillErrors:    t.spillErrors,
		}
		t.mu.RUnlock()
	}
	return out
}

// aggState is the AggStore's serialized form: its per-agent ledgers, the
// merged script aggregates, and the ingest counters.
type aggState struct {
	Ledgers      map[string]ledgerState `json:"ledgers,omitempty"`
	Scripts      []ScriptAgg            `json:"scripts,omitempty"`
	FramesMerged uint64                 `json:"frames_merged,omitempty"`
	FramesDup    uint64                 `json:"frames_dup,omitempty"`
	FramesFenced uint64                 `json:"frames_fenced,omitempty"`
	RowsMerged   uint64                 `json:"rows_merged,omitempty"`
}

// exportState snapshots the aggregate store.
func (s *AggStore) exportState() aggState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := aggState{
		Ledgers:      make(map[string]ledgerState, len(s.ledger)),
		FramesMerged: s.framesMerged,
		FramesDup:    s.framesDup,
		FramesFenced: s.framesFenced,
		RowsMerged:   s.rowsMerged,
	}
	for agent, l := range s.ledger {
		st.Ledgers[agent] = l.exportState()
	}
	names := make([]string, 0, len(s.scripts))
	for name := range s.scripts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sa := s.scripts[name]
		out := ScriptAgg{
			Script:   name,
			Counters: append([]uint64(nil), sa.counters...),
			CPUHits:  append([]uint64(nil), sa.cpuHits...),
			Hist:     append([]uint64(nil), sa.hist...),
		}
		for k, v := range sa.flows {
			out.Flows = append(out.Flows, FlowAgg{
				SrcIP: k.srcIP, DstIP: k.dstIP,
				SrcPort: k.srcPort, DstPort: k.dstPort, Proto: k.proto,
				Packets: v.packets, Bytes: v.bytes,
			})
		}
		sort.Slice(out.Flows, func(i, j int) bool { return flowLess(&out.Flows[i], &out.Flows[j]) })
		st.Scripts = append(st.Scripts, out)
	}
	return st
}

// restoreState overwrites the aggregate store with a checkpoint.
func (s *AggStore) restoreState(st aggState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for agent, ls := range st.Ledgers {
		l, ok := s.ledger[agent]
		if !ok {
			l = &agentLedger{pending: make(map[uint64]struct{})}
			s.ledger[agent] = l
		}
		l.restoreState(ls)
	}
	for i := range st.Scripts {
		s.merge(&st.Scripts[i])
	}
	s.framesMerged = st.FramesMerged
	s.framesDup = st.FramesDup
	s.framesFenced = st.FramesFenced
	s.rowsMerged = st.RowsMerged
}

// checkpointPayload is the JSON body of a checkpoint file.
type checkpointPayload struct {
	LSN        uint64                 `json:"lsn"`
	Ledgers    map[string]ledgerState `json:"ledgers,omitempty"`
	Tables     map[uint32]tableState  `json:"tables,omitempty"`
	Aggs       aggState               `json:"aggs"`
	SealedAtNs int64                  `json:"sealed_at_ns,omitempty"`
}

// checkpointFileName returns the file name for a checkpoint at lsn.
func checkpointFileName(lsn uint64) string {
	return fmt.Sprintf("ckpt-%016x.ckpt", lsn)
}

// parseCheckpointFileName extracts the LSN from a checkpoint file name.
func parseCheckpointFileName(name string) (uint64, bool) {
	var lsn uint64
	if n, err := fmt.Sscanf(name, "ckpt-%016x.ckpt", &lsn); n == 1 && err == nil {
		return lsn, true
	}
	return 0, false
}

// writeCheckpoint persists a checkpoint payload atomically (temp+rename,
// fsync before rename) and returns the final path.
func writeCheckpoint(dir string, p *checkpointPayload) (string, error) {
	body, err := json.Marshal(p)
	if err != nil {
		return "", err
	}
	buf := make([]byte, 0, len(body)+17)
	buf = append(buf, checkpointMagic[:]...)
	buf = append(buf, checkpointVersion)
	buf = binary.BigEndian.AppendUint64(buf, p.LSN)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(body))
	buf = append(buf, body...)

	final := filepath.Join(dir, checkpointFileName(p.LSN))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return final, nil
}

// readCheckpoint parses and validates one checkpoint file.
func readCheckpoint(path string) (*checkpointPayload, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(b) < 17 {
		return nil, fmt.Errorf("tracedb: checkpoint %s: short header", filepath.Base(path))
	}
	for i := range checkpointMagic {
		if b[i] != checkpointMagic[i] {
			return nil, fmt.Errorf("tracedb: checkpoint %s: bad magic", filepath.Base(path))
		}
	}
	if b[4] != checkpointVersion {
		return nil, fmt.Errorf("tracedb: checkpoint %s: unsupported version %d", filepath.Base(path), b[4])
	}
	lsn := binary.BigEndian.Uint64(b[5:13])
	crc := binary.BigEndian.Uint32(b[13:17])
	body := b[17:]
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("tracedb: checkpoint %s: CRC mismatch", filepath.Base(path))
	}
	var p checkpointPayload
	if err := json.Unmarshal(body, &p); err != nil {
		return nil, fmt.Errorf("tracedb: checkpoint %s: %w", filepath.Base(path), err)
	}
	if p.LSN != lsn {
		return nil, fmt.Errorf("tracedb: checkpoint %s: header LSN %d != payload LSN %d",
			filepath.Base(path), lsn, p.LSN)
	}
	return &p, nil
}

// loadLatestCheckpoint scans dir for the newest checkpoint that parses
// and CRC-validates, skipping corrupt ones. ok is false when no valid
// checkpoint exists (first boot, or all candidates corrupt).
func loadLatestCheckpoint(dir string) (*checkpointPayload, bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	type cand struct {
		name string
		lsn  uint64
	}
	var cands []cand
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if lsn, ok := parseCheckpointFileName(ent.Name()); ok {
			cands = append(cands, cand{ent.Name(), lsn})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lsn > cands[j].lsn })
	for _, c := range cands {
		p, err := readCheckpoint(filepath.Join(dir, c.name))
		if err == nil {
			return p, true, nil
		}
	}
	return nil, false, nil
}
