package tracedb

import (
	"reflect"
	"testing"

	"vnettracer/internal/core"
)

// fuzzRecords is a representative sealed batch used to seed the fuzzer
// with valid extent blobs.
func fuzzRecords() []core.Record {
	recs := make([]core.Record, 5)
	for i := range recs {
		recs[i] = core.Record{
			TraceID: uint32(i + 1),
			TPID:    2,
			TimeNs:  uint64(1000 + i*37),
			Len:     600,
			CPU:     uint32(i % 2),
			Seq:     uint64(40 + i),
			SrcIP:   0x0a000001,
			DstIP:   0x0a000002,
			SrcPort: 5000,
			DstPort: 9000,
			Proto:   17,
			Dir:     1,
		}
	}
	return recs
}

// FuzzSegmentDecode feeds the extent codec arbitrary bytes plus
// mutations of valid blobs. The decoder must either return an error or a
// well-formed record slice — never panic, and never allocate beyond what
// the input length can justify (the header's count field is
// attacker-controlled). Whatever decodes must survive an
// encode→decode→re-encode round trip with identical record values.
// (Byte-identity is not required: Go's uvarint reader accepts non-minimal
// encodings that re-encode shorter.)
func FuzzSegmentDecode(f *testing.F) {
	recs := fuzzRecords()
	valid := appendExtentBlob(nil, 2, recs)
	empty := appendExtentBlob(nil, 9, nil)
	single := appendExtentBlob(nil, 1, recs[:1])
	f.Add([]byte{})
	f.Add(extentMagic[:])
	f.Add(valid)
	f.Add(empty)
	f.Add(single)
	f.Add(valid[:len(valid)-1]) // truncated body
	bad := append([]byte(nil), valid...)
	bad[4] ^= 0xff // version
	f.Add(bad)

	f.Fuzz(func(t *testing.T, blob []byte) {
		tpid, got, err := decodeExtentBytes(blob)
		if err != nil {
			return
		}
		// A successful decode must be exactly re-encodable: seal the
		// decoded records again and decode once more — the record values
		// must match field for field.
		blob2 := appendExtentBlob(nil, tpid, got)
		tpid2, got2, err := decodeExtentBytes(blob2)
		if err != nil {
			t.Fatalf("re-encode of a valid extent failed to decode: %v", err)
		}
		if tpid2 != tpid {
			t.Fatalf("tpid changed across round trip: %d != %d", tpid2, tpid)
		}
		if len(got) != len(got2) || (len(got) > 0 && !reflect.DeepEqual(got, got2)) {
			t.Fatalf("records diverged across round trip:\n %+v\n %+v", got, got2)
		}
	})
}

// fuzzWALEntries returns representative WAL entries (a record batch and
// an aggregate frame) used to seed the fuzzer with valid payloads.
func fuzzWALEntries() []walEntry {
	return []walEntry{
		{
			LSN: 7, Kind: walKindRecords, Agent: "agent-1", Epoch: 3, Seq: 41,
			TimeNs: 123456789, Degraded: 1, Records: fuzzRecords(),
		},
		{
			LSN: 8, Kind: walKindAggs, Agent: "agent-2", Epoch: 1, Seq: 5,
			TimeNs: -17, Degraded: 0, Scripts: []ScriptAgg{{
				Script:   "flows.vnt",
				Counters: []uint64{10, 20},
				CPUHits:  []uint64{1, 2, 3, 4},
				Hist:     []uint64{0, 5, 9},
				Flows: []FlowAgg{{
					SrcIP: 0x0a000001, DstIP: 0x0a000002,
					SrcPort: 5000, DstPort: 9000, Proto: 17,
					Packets: 12, Bytes: 3400,
				}},
			}},
		},
	}
}

// FuzzWALDecode feeds the WAL payload codec arbitrary bytes plus
// mutations of valid payloads. The decoder must either return an error
// or a well-formed entry — never panic, and never allocate beyond what
// the input length justifies (record/script/flow counts are
// attacker-controlled). Whatever decodes must survive a
// re-encode→decode round trip with identical values. (Byte identity is
// not required: non-minimal uvarints re-encode shorter.)
func FuzzWALDecode(f *testing.F) {
	var valids [][]byte
	for _, e := range fuzzWALEntries() {
		valids = append(valids, appendWALPayload(nil, &e))
	}
	f.Add([]byte{})
	for _, v := range valids {
		f.Add(v)
		f.Add(v[:len(v)-1]) // truncated body
	}
	badKind := append([]byte(nil), valids[0]...)
	badKind[1] = 0xee // kind byte (LSN 7 encodes in one byte)
	f.Add(badKind)

	f.Fuzz(func(t *testing.T, payload []byte) {
		e, err := decodeWALPayload(payload)
		if err != nil {
			return
		}
		re := appendWALPayload(nil, &e)
		e2, err := decodeWALPayload(re)
		if err != nil {
			t.Fatalf("re-encode of a valid wal payload failed to decode: %v", err)
		}
		if !reflect.DeepEqual(e, e2) {
			t.Fatalf("wal entry diverged across round trip:\n %+v\n %+v", e, e2)
		}
	})
}
