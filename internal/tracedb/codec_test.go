package tracedb

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vnettracer/internal/core"
)

// roundTrip encodes recs into an extent blob and decodes it back.
func roundTrip(t *testing.T, tpid uint32, recs []core.Record) []core.Record {
	t.Helper()
	blob := appendExtentBlob(nil, tpid, recs)
	gotTPID, got, err := decodeExtentBytes(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if gotTPID != tpid {
		t.Fatalf("tpid = %d, want %d", gotTPID, tpid)
	}
	return got
}

func TestCodecRoundTripEmpty(t *testing.T) {
	got := roundTrip(t, 7, nil)
	if len(got) != 0 {
		t.Fatalf("decoded %d records from empty extent", len(got))
	}
}

func TestCodecRoundTripTypical(t *testing.T) {
	// A realistic batch: monotone timestamps with jitter, a handful of
	// flows, mostly-incrementing trace IDs.
	rng := rand.New(rand.NewSource(42))
	recs := make([]core.Record, 500)
	tns := uint64(1_000_000)
	for i := range recs {
		tns += uint64(800 + rng.Intn(400))
		recs[i] = core.Record{
			TraceID: uint32(i/2 + 1),
			TPID:    3,
			TimeNs:  tns,
			Len:     uint32(64 + rng.Intn(1400)),
			CPU:     uint32(rng.Intn(4)),
			Seq:     uint64(i),
			SrcIP:   0x0a000001 + uint32(rng.Intn(4)),
			DstIP:   0x0a000101,
			SrcPort: uint16(40000 + rng.Intn(4)),
			DstPort: 9000,
			Proto:   17,
			Dir:     uint8(i % 2),
		}
	}
	got := roundTrip(t, 3, recs)
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("round trip diverged")
	}
	// Realistic batches must compress well below the flat 48 B/record —
	// the whole point of sealing.
	blob := appendExtentBlob(nil, 3, recs)
	if perRec := float64(len(blob)) / float64(len(recs)); perRec > 12 {
		t.Fatalf("compressed %.1f bytes/record, want <= 12", perRec)
	}
}

func TestCodecRoundTripAdversarial(t *testing.T) {
	// Extreme values at every field width: wrap-around deltas, max
	// timestamps, non-monotone time, single-record extents.
	cases := [][]core.Record{
		{{TraceID: math.MaxUint32, TimeNs: math.MaxUint64, Len: math.MaxUint32,
			CPU: math.MaxUint32, Seq: math.MaxUint64, SrcIP: math.MaxUint32,
			DstIP: math.MaxUint32, SrcPort: math.MaxUint16, DstPort: math.MaxUint16,
			Proto: math.MaxUint8, Dir: math.MaxUint8}},
		{
			{TraceID: 0, TimeNs: math.MaxUint64, Seq: 0},
			{TraceID: math.MaxUint32, TimeNs: 0, Seq: math.MaxUint64},
			{TraceID: 1, TimeNs: math.MaxUint64 / 2, Seq: 1},
		},
		{
			{TimeNs: 100}, {TimeNs: 50}, {TimeNs: 200}, {TimeNs: 0},
		},
	}
	for i, recs := range cases {
		for j := range recs {
			recs[j].TPID = 9
		}
		got := roundTrip(t, 9, recs)
		if !reflect.DeepEqual(got, recs) {
			t.Fatalf("case %d diverged:\n got %+v\nwant %+v", i, got, recs)
		}
	}
}

func TestCodecFlowDictionary(t *testing.T) {
	// Two interleaved flows: the dictionary should make repeats cheap and
	// the round trip exact.
	recs := make([]core.Record, 100)
	for i := range recs {
		recs[i] = core.Record{TraceID: uint32(i + 1), TPID: 1, TimeNs: uint64(i * 1000), Seq: uint64(i)}
		if i%2 == 0 {
			recs[i].SrcIP, recs[i].DstIP, recs[i].SrcPort, recs[i].DstPort, recs[i].Proto = 1, 2, 3, 4, 6
		} else {
			recs[i].SrcIP, recs[i].DstIP, recs[i].SrcPort, recs[i].DstPort, recs[i].Proto = 5, 6, 7, 8, 17
		}
	}
	got := roundTrip(t, 1, recs)
	if !reflect.DeepEqual(got, recs) {
		t.Fatal("interleaved flows diverged")
	}
}

func TestCodecRejectsCorrupt(t *testing.T) {
	recs := []core.Record{{TraceID: 1, TPID: 2, TimeNs: 10}, {TraceID: 2, TPID: 2, TimeNs: 20}}
	blob := appendExtentBlob(nil, 2, recs)

	if _, _, err := decodeExtentBytes(nil); err == nil {
		t.Fatal("empty blob accepted")
	}
	if _, _, err := decodeExtentBytes(blob[:3]); err == nil {
		t.Fatal("truncated magic accepted")
	}
	if _, _, err := decodeExtentBytes(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated body accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xff
	if _, _, err := decodeExtentBytes(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	bad = append([]byte(nil), blob...)
	bad[4] = extentVersion + 1
	if _, _, err := decodeExtentBytes(bad); err == nil {
		t.Fatal("future version accepted")
	}
	// Trailing garbage after the declared record count is an error too:
	// spilled files must be exactly one extent.
	if _, _, err := decodeExtentBytes(append(blob, 0x01)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestCodecHugeCountDoesNotOverAllocate(t *testing.T) {
	// A header claiming 2^40 records over a 6-byte body must fail cleanly
	// without attempting a huge allocation.
	blob := append([]byte{}, extentMagic[:]...)
	blob = append(blob, extentVersion)
	blob = append(blob, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40) // uvarint 2^40
	blob = append(blob, 0x05)                               // tpid
	if _, _, err := decodeExtentBytes(blob); err == nil {
		t.Fatal("absurd record count accepted")
	}
}
