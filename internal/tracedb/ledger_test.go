package tracedb

import (
	"testing"

	"vnettracer/internal/core"
)

// TestHeartbeatOutOfOrderKeepsMax is the regression for Heartbeat blindly
// overwriting the last-seen time: with async ingest workers batches can be
// processed out of order, and an older AgentTimeNs must not regress the
// ledger and falsely declare a live agent dead.
func TestHeartbeatOutOfOrderKeepsMax(t *testing.T) {
	db := New()
	db.Heartbeat("a", 1000)
	db.Heartbeat("a", 400) // older batch processed late
	if dead := db.DeadAgents(1100, 300); len(dead) != 0 {
		t.Fatalf("live agent declared dead after out-of-order heartbeat: %v", dead)
	}
	l, ok := db.Ledger("a")
	if !ok || l.LastSeenNs != 1000 {
		t.Fatalf("ledger last seen = %+v, want 1000", l)
	}
	// A genuinely newer heartbeat still advances it.
	db.Heartbeat("a", 2000)
	if l, _ := db.Ledger("a"); l.LastSeenNs != 2000 {
		t.Fatalf("last seen = %d, want 2000", l.LastSeenNs)
	}
}

// TestMarkBatchSeqDedupAndReorder exercises the exactly-once ledger: fresh
// seqs accepted once, duplicates rejected, and out-of-order arrival parks
// above the high-water mark until the gap fills.
func TestMarkBatchSeqDedupAndReorder(t *testing.T) {
	db := New()
	for _, seq := range []uint64{1, 2} {
		if !db.MarkBatchSeq("a", seq) {
			t.Fatalf("fresh seq %d rejected", seq)
		}
	}
	if db.MarkBatchSeq("a", 2) {
		t.Fatal("duplicate seq 2 accepted")
	}
	if db.MarkBatchSeq("a", 1) {
		t.Fatal("duplicate seq 1 below high-water accepted")
	}
	// Out of order: 5 parks pending, then 3 and 4 fill the gap.
	if !db.MarkBatchSeq("a", 5) {
		t.Fatal("out-of-order seq 5 rejected")
	}
	l, _ := db.Ledger("a")
	if l.HighWaterSeq != 2 || l.PendingBatches != 1 || l.MaxSeq != 5 || l.MissingBatches != 2 {
		t.Fatalf("ledger after reorder = %+v", l)
	}
	if db.MarkBatchSeq("a", 5) {
		t.Fatal("duplicate pending seq 5 accepted")
	}
	if !db.MarkBatchSeq("a", 3) || !db.MarkBatchSeq("a", 4) {
		t.Fatal("gap-filling seqs rejected")
	}
	l, _ = db.Ledger("a")
	if l.HighWaterSeq != 5 || l.PendingBatches != 0 || l.MissingBatches != 0 {
		t.Fatalf("ledger after gap fill = %+v", l)
	}
	if l.DupBatches != 3 {
		t.Fatalf("dup batches = %d, want 3", l.DupBatches)
	}
	// Seq 0 is unsequenced: always fresh, never recorded.
	if !db.MarkBatchSeq("a", 0) || !db.MarkBatchSeq("a", 0) {
		t.Fatal("unsequenced batch rejected")
	}
	// Ledgers are per agent.
	if !db.MarkBatchSeq("b", 5) {
		t.Fatal("agent b's seq 5 rejected by agent a's ledger")
	}
}

// TestLedgerCountsMissing: a permanent gap (the agent evicted the batch
// from its spool) stays visible as a missing batch.
func TestLedgerCountsMissing(t *testing.T) {
	db := New()
	db.MarkBatchSeq("a", 1)
	db.MarkBatchSeq("a", 4) // 2 and 3 never arrive
	l, _ := db.Ledger("a")
	if l.MissingBatches != 2 {
		t.Fatalf("missing = %d, want 2", l.MissingBatches)
	}
	if _, ok := db.Ledger("ghost"); ok {
		t.Fatal("ledger for unknown agent")
	}
}

// TestAlignClampsAtZero is the regression for skew alignment computing
// uint64(int64(TimeNs) - skew) and wrapping to a huge timestamp when a
// large positive skew exceeds an early record's time.
func TestAlignClampsAtZero(t *testing.T) {
	db := New()
	db.Insert([]core.Record{
		{TPID: 1, TraceID: 1, TimeNs: 100},
		{TPID: 1, TraceID: 2, TimeNs: 5000},
	})
	tbl, _ := db.Table(1)
	db.SetSkew(1, 1000) // exceeds the first record's timestamp

	want := map[uint32]uint64{1: 0, 2: 4000}
	tbl.ScanAligned(func(r core.Record) bool {
		if r.TimeNs != want[r.TraceID] {
			t.Fatalf("ScanAligned trace %d = %d, want %d", r.TraceID, r.TimeNs, want[r.TraceID])
		}
		return true
	})
	r, ok := tbl.FirstByTraceID(1)
	if !ok || r.TimeNs != 0 {
		t.Fatalf("FirstByTraceID = %d, want clamped 0", r.TimeNs)
	}
}

// TestAlignNegativeSkew: a node whose clock runs *behind* the collector
// reference has a negative skew estimate; subtracting it must shift
// timestamps forward without wrapping or clamping — the clamp guards
// underflow only, and must never fire on the negative-skew side.
func TestAlignNegativeSkew(t *testing.T) {
	db := New()
	db.Insert([]core.Record{
		{TPID: 1, TraceID: 1, TimeNs: 0}, // even a zero timestamp moves forward
		{TPID: 1, TraceID: 2, TimeNs: 7000},
	})
	tbl, _ := db.Table(1)
	db.SetSkew(1, -2500)

	want := map[uint32]uint64{1: 2500, 2: 9500}
	tbl.ScanAligned(func(r core.Record) bool {
		if r.TimeNs != want[r.TraceID] {
			t.Fatalf("ScanAligned trace %d = %d, want %d", r.TraceID, r.TimeNs, want[r.TraceID])
		}
		return true
	})
	r, ok := tbl.FirstByTraceID(1)
	if !ok || r.TimeNs != 2500 {
		t.Fatalf("FirstByTraceID = %d, want 2500", r.TimeNs)
	}
}
