// Record codec for sealed extents: the fixed 48-byte core.Record stream
// is compressed with delta-of-delta timestamps, zigzag-varint field
// deltas, and a segment-local flow dictionary. The blob is self-describing
// (magic, version, record count, tracepoint ID), so a spilled extent file
// can be decoded with no external metadata — the property that makes the
// on-disk format crash-safe: either the rename landed and the file decodes
// in full, or it didn't and the file does not exist.
//
// Layout (version 1):
//
//	magic "vntx" | version byte | uvarint count | uvarint tpid
//	record[0]:  raw uvarint traceID, timeNs, len, cpu, seq; flow ref
//	record[i>0]: zigzag-varint deltas for traceID, len, cpu, seq;
//	             delta-of-delta zigzag varint for timeNs; flow ref
//
// A flow ref is a uvarint index into the dictionary of distinct
// (srcIP, dstIP, srcPort, dstPort, proto, dir) tuples seen so far in this
// extent; an index equal to the dictionary's current size introduces a new
// tuple inline (uvarint srcIP, dstIP, srcPort, dstPort, then proto and dir
// bytes). Traced traffic concentrates on few flows per tracepoint, so the
// ref is almost always one byte and the 18 bytes of tuple state amortize
// to nothing.
//
// All deltas are computed with wrap-around arithmetic at the field's width
// and reversed the same way, so encode→decode round-trips every possible
// record exactly, including adversarial timestamps near the uint64 edge.
package tracedb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"vnettracer/internal/core"
)

const extentVersion = 1

var extentMagic = [4]byte{'v', 'n', 't', 'x'}

// errStopScan signals an early visitor stop through the decode path; it is
// never returned to callers.
var errStopScan = errors.New("tracedb: scan stopped")

// flowTuple is the per-record 5-tuple plus direction — the fields that
// repeat across records and live in the extent's flow dictionary.
type flowTuple struct {
	srcIP, dstIP     uint32
	srcPort, dstPort uint16
	proto, dir       uint8
}

func tupleOf(r *core.Record) flowTuple {
	return flowTuple{
		srcIP: r.SrcIP, dstIP: r.DstIP,
		srcPort: r.SrcPort, dstPort: r.DstPort,
		proto: r.Proto, dir: r.Dir,
	}
}

func zigzag(v int64) uint64  { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// delta32/delta64 compute wrap-around field deltas sized to the field, so
// the zigzag encoding stays short for small moves in either direction.
func delta32(cur, prev uint32) int64 { return int64(int32(cur - prev)) }
func delta64(cur, prev uint64) int64 { return int64(cur - prev) }

// appendExtentBlob compresses recs (all from one tracepoint) into the
// extent wire form, appending to dst.
func appendExtentBlob(dst []byte, tpid uint32, recs []core.Record) []byte {
	dst = append(dst, extentMagic[:]...)
	dst = append(dst, extentVersion)
	dst = binary.AppendUvarint(dst, uint64(len(recs)))
	dst = binary.AppendUvarint(dst, uint64(tpid))

	dict := make(map[flowTuple]uint64, 8)
	var prev core.Record
	var prevTimeDelta uint64
	for i := range recs {
		r := &recs[i]
		if i == 0 {
			dst = binary.AppendUvarint(dst, uint64(r.TraceID))
			dst = binary.AppendUvarint(dst, r.TimeNs)
			dst = binary.AppendUvarint(dst, uint64(r.Len))
			dst = binary.AppendUvarint(dst, uint64(r.CPU))
			dst = binary.AppendUvarint(dst, r.Seq)
		} else {
			dst = binary.AppendUvarint(dst, zigzag(delta32(r.TraceID, prev.TraceID)))
			td := r.TimeNs - prev.TimeNs // wrap-around delta
			dst = binary.AppendUvarint(dst, zigzag(delta64(td, prevTimeDelta)))
			prevTimeDelta = td
			dst = binary.AppendUvarint(dst, zigzag(delta32(r.Len, prev.Len)))
			dst = binary.AppendUvarint(dst, zigzag(delta32(r.CPU, prev.CPU)))
			dst = binary.AppendUvarint(dst, zigzag(delta64(r.Seq, prev.Seq)))
		}
		tup := tupleOf(r)
		if idx, ok := dict[tup]; ok {
			dst = binary.AppendUvarint(dst, idx)
		} else {
			idx = uint64(len(dict))
			dict[tup] = idx
			dst = binary.AppendUvarint(dst, idx)
			dst = binary.AppendUvarint(dst, uint64(r.SrcIP))
			dst = binary.AppendUvarint(dst, uint64(r.DstIP))
			dst = binary.AppendUvarint(dst, uint64(r.SrcPort))
			dst = binary.AppendUvarint(dst, uint64(r.DstPort))
			dst = append(dst, r.Proto, r.Dir)
		}
		prev = *r
	}
	return dst
}

// scanExtentStream decodes one extent from a byte stream, calling fn for
// each record in stored order until fn returns false. It never allocates
// proportionally to the header's count field — records stream one at a
// time and the flow dictionary only grows by consuming input bytes — so a
// forged count cannot balloon memory. A visitor stop is reported as
// errStopScan so callers can distinguish it from a corrupt stream.
func scanExtentStream(br io.ByteReader, fn func(core.Record) bool) error {
	d, err := newExtentDecoder(br)
	if err != nil {
		return err
	}
	for {
		r, err := d.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(r) {
			return errStopScan
		}
	}
}

// decodeExtentBytes decodes a whole in-memory extent blob. The returned
// slice is freshly allocated; its initial capacity is bounded by the input
// length (a record costs at least 6 encoded bytes), never by the header's
// count field alone.
func decodeExtentBytes(blob []byte) (tpid uint32, recs []core.Record, err error) {
	cur := &byteCursor{b: blob}
	d, err := newExtentDecoder(cur)
	if err != nil {
		return 0, nil, err
	}
	capHint := d.count
	if max := uint64(len(blob))/6 + 1; capHint > max {
		capHint = max
	}
	recs = make([]core.Record, 0, capHint)
	for {
		r, err := d.next()
		if err == io.EOF {
			if cur.off != len(blob) {
				return d.tpid, nil, fmt.Errorf("tracedb: %d trailing bytes after extent body", len(blob)-cur.off)
			}
			return d.tpid, recs, nil
		}
		if err != nil {
			return d.tpid, nil, err
		}
		recs = append(recs, r)
	}
}

// byteCursor is a minimal io.ByteReader over a slice, avoiding the
// bytes.Reader allocation on the hot scan path.
type byteCursor struct {
	b   []byte
	off int
}

func (c *byteCursor) ReadByte() (byte, error) {
	if c.off >= len(c.b) {
		return 0, io.EOF
	}
	v := c.b[c.off]
	c.off++
	return v, nil
}

func decodeExtentHeader(br io.ByteReader) (count uint64, tpid uint32, err error) {
	for i := range extentMagic {
		b, err := br.ReadByte()
		if err != nil {
			return 0, 0, fmt.Errorf("tracedb: extent header: %w", err)
		}
		if b != extentMagic[i] {
			return 0, 0, fmt.Errorf("tracedb: bad extent magic byte %d: %#x", i, b)
		}
	}
	ver, err := br.ReadByte()
	if err != nil {
		return 0, 0, fmt.Errorf("tracedb: extent header: %w", err)
	}
	if ver != extentVersion {
		return 0, 0, fmt.Errorf("tracedb: unsupported extent version %d", ver)
	}
	count, err = binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("tracedb: extent count: %w", err)
	}
	tp, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, fmt.Errorf("tracedb: extent tpid: %w", err)
	}
	if tp > math.MaxUint32 {
		return 0, 0, fmt.Errorf("tracedb: extent tpid %d overflows uint32", tp)
	}
	return count, uint32(tp), nil
}

// extentDecoder holds the rolling state of one streaming decode.
type extentDecoder struct {
	br            io.ByteReader
	count         uint64
	tpid          uint32
	dict          []flowTuple
	prev          core.Record
	prevTimeDelta uint64
	idx           uint64
}

func newExtentDecoder(br io.ByteReader) (*extentDecoder, error) {
	count, tpid, err := decodeExtentHeader(br)
	if err != nil {
		return nil, err
	}
	return &extentDecoder{br: br, count: count, tpid: tpid}, nil
}

// next decodes one record; io.EOF means the stream ended cleanly after the
// declared count.
func (d *extentDecoder) next() (core.Record, error) {
	if d.idx >= d.count {
		return core.Record{}, io.EOF
	}
	var r core.Record
	r.TPID = d.tpid
	if d.idx == 0 {
		v, err := binary.ReadUvarint(d.br)
		if err != nil {
			return r, fmt.Errorf("tracedb: record 0 traceID: %w", err)
		}
		if v > math.MaxUint32 {
			return r, fmt.Errorf("tracedb: record 0 traceID %d overflows uint32", v)
		}
		r.TraceID = uint32(v)
		if r.TimeNs, err = binary.ReadUvarint(d.br); err != nil {
			return r, fmt.Errorf("tracedb: record 0 timeNs: %w", err)
		}
		if v, err = binary.ReadUvarint(d.br); err != nil || v > math.MaxUint32 {
			return r, fmt.Errorf("tracedb: record 0 len: %w", errOrOverflow(err, v))
		}
		r.Len = uint32(v)
		if v, err = binary.ReadUvarint(d.br); err != nil || v > math.MaxUint32 {
			return r, fmt.Errorf("tracedb: record 0 cpu: %w", errOrOverflow(err, v))
		}
		r.CPU = uint32(v)
		if r.Seq, err = binary.ReadUvarint(d.br); err != nil {
			return r, fmt.Errorf("tracedb: record 0 seq: %w", err)
		}
	} else {
		d1, err := binary.ReadUvarint(d.br)
		if err != nil {
			return r, fmt.Errorf("tracedb: record %d traceID delta: %w", d.idx, err)
		}
		r.TraceID = d.prev.TraceID + uint32(unzigzag(d1))
		dod, err := binary.ReadUvarint(d.br)
		if err != nil {
			return r, fmt.Errorf("tracedb: record %d time dod: %w", d.idx, err)
		}
		td := d.prevTimeDelta + uint64(unzigzag(dod))
		d.prevTimeDelta = td
		r.TimeNs = d.prev.TimeNs + td
		if d1, err = binary.ReadUvarint(d.br); err != nil {
			return r, fmt.Errorf("tracedb: record %d len delta: %w", d.idx, err)
		}
		r.Len = d.prev.Len + uint32(unzigzag(d1))
		if d1, err = binary.ReadUvarint(d.br); err != nil {
			return r, fmt.Errorf("tracedb: record %d cpu delta: %w", d.idx, err)
		}
		r.CPU = d.prev.CPU + uint32(unzigzag(d1))
		if d1, err = binary.ReadUvarint(d.br); err != nil {
			return r, fmt.Errorf("tracedb: record %d seq delta: %w", d.idx, err)
		}
		r.Seq = d.prev.Seq + uint64(unzigzag(d1))
	}

	ref, err := binary.ReadUvarint(d.br)
	if err != nil {
		return r, fmt.Errorf("tracedb: record %d flow ref: %w", d.idx, err)
	}
	switch {
	case ref < uint64(len(d.dict)):
		tup := d.dict[ref]
		r.SrcIP, r.DstIP = tup.srcIP, tup.dstIP
		r.SrcPort, r.DstPort = tup.srcPort, tup.dstPort
		r.Proto, r.Dir = tup.proto, tup.dir
	case ref == uint64(len(d.dict)):
		v, err := binary.ReadUvarint(d.br)
		if err != nil || v > math.MaxUint32 {
			return r, fmt.Errorf("tracedb: record %d srcIP: %w", d.idx, errOrOverflow(err, v))
		}
		r.SrcIP = uint32(v)
		if v, err = binary.ReadUvarint(d.br); err != nil || v > math.MaxUint32 {
			return r, fmt.Errorf("tracedb: record %d dstIP: %w", d.idx, errOrOverflow(err, v))
		}
		r.DstIP = uint32(v)
		if v, err = binary.ReadUvarint(d.br); err != nil || v > math.MaxUint16 {
			return r, fmt.Errorf("tracedb: record %d srcPort: %w", d.idx, errOrOverflow(err, v))
		}
		r.SrcPort = uint16(v)
		if v, err = binary.ReadUvarint(d.br); err != nil || v > math.MaxUint16 {
			return r, fmt.Errorf("tracedb: record %d dstPort: %w", d.idx, errOrOverflow(err, v))
		}
		r.DstPort = uint16(v)
		if r.Proto, err = d.br.ReadByte(); err != nil {
			return r, fmt.Errorf("tracedb: record %d proto: %w", d.idx, err)
		}
		if r.Dir, err = d.br.ReadByte(); err != nil {
			return r, fmt.Errorf("tracedb: record %d dir: %w", d.idx, err)
		}
		d.dict = append(d.dict, tupleOf(&r))
	default:
		return r, fmt.Errorf("tracedb: record %d flow ref %d beyond dictionary size %d",
			d.idx, ref, len(d.dict))
	}

	d.prev = r
	d.idx++
	return r, nil
}

func errOrOverflow(err error, v uint64) error {
	if err != nil {
		return err
	}
	return fmt.Errorf("value %d overflows field width", v)
}
