package tracedb

import (
	"sort"
	"sync"
)

// This file implements the collector-side store for in-probe aggregates:
// compact per-script metric frames drained from agent maps instead of
// per-packet records. Frames are sequence-numbered and epoch-fenced in a
// sequence space of their own but with the exact semantics of record
// batches (shared via agentLedger.admit), so exactly-once merge and
// zombie fencing extend to aggregates. Merging is additive: counters,
// per-CPU hits and histogram buckets sum slot-wise; flows sum per
// 5-tuple. Additivity is what makes at-most-once admission sufficient —
// a frame merged twice would double every metric it carries.

// FlowAgg is one per-flow aggregate row: the packed 5-tuple identity plus
// its packet and byte sums.
type FlowAgg struct {
	SrcIP   uint32 `json:"src_ip"`
	DstIP   uint32 `json:"dst_ip"`
	SrcPort uint16 `json:"src_port"`
	DstPort uint16 `json:"dst_port"`
	Proto   uint8  `json:"proto"`
	Packets uint64 `json:"packets"`
	Bytes   uint64 `json:"bytes"`
}

// ScriptAgg is the aggregate state of one trace script: counter slots
// (packets, bytes), per-CPU invocation counts, log2 latency histogram
// buckets, and per-flow sums. Nil slices mean the script lacks that
// action. The same type serves as the wire payload (agent snapshot) and
// the merged collector view.
type ScriptAgg struct {
	Script   string    `json:"script"`
	Counters []uint64  `json:"counters,omitempty"`
	CPUHits  []uint64  `json:"cpu_hits,omitempty"`
	Hist     []uint64  `json:"hist,omitempty"`
	Flows    []FlowAgg `json:"flows,omitempty"`
}

// Rows returns the number of aggregate rows the entry carries, the unit
// used for fenced-loss accounting (the aggregate analogue of a record).
func (s *ScriptAgg) Rows() int {
	return len(s.Counters) + len(s.CPUHits) + len(s.Hist) + len(s.Flows)
}

type flowKey struct {
	srcIP, dstIP     uint32
	srcPort, dstPort uint16
	proto            uint8
}

// scriptAgg is the mutable merged state behind one script name.
type scriptAgg struct {
	counters []uint64
	cpuHits  []uint64
	hist     []uint64
	flows    map[flowKey]*struct{ packets, bytes uint64 }
}

// AggTotals summarizes an AggStore's ingest history for shutdown
// reporting.
type AggTotals struct {
	// FramesMerged counts fresh frames whose payload was merged.
	FramesMerged uint64
	// FramesDup counts duplicate frames dropped by sequence dedup.
	FramesDup uint64
	// FramesFenced counts stale-epoch frames rejected by the fence.
	FramesFenced uint64
	// RowsMerged counts aggregate rows summed in across all frames.
	RowsMerged uint64
	// Scripts and Flows size the current merged state.
	Scripts int
	Flows   int
}

// AggStore holds merged in-probe aggregates beside the record DB. It
// keeps its own per-agent delivery ledger because aggregate frames ride
// a dedicated sequence space (agents number record batches and aggregate
// frames independently).
type AggStore struct {
	mu      sync.Mutex
	ledger  map[string]*agentLedger
	scripts map[string]*scriptAgg

	framesMerged uint64
	framesDup    uint64
	framesFenced uint64
	rowsMerged   uint64
}

// NewAggStore returns an empty aggregate store.
func NewAggStore() *AggStore {
	return &AggStore{
		ledger:  make(map[string]*agentLedger),
		scripts: make(map[string]*scriptAgg),
	}
}

// Admit classifies an aggregate frame exactly like DB.AdmitBatch
// classifies a record batch — fresh frames are merged, duplicates and
// stale-epoch zombie frames are dropped with their counters advanced —
// and returns the classification. rows should be the frame's total
// aggregate row count (sum of ScriptAgg.Rows), the payload unit tracked
// by FencedRecords.
func (s *AggStore) Admit(agent string, epoch, seq uint64, scripts []ScriptAgg, nowNs int64, degraded uint8) BatchStatus {
	rows := 0
	for i := range scripts {
		rows += scripts[i].Rows()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.ledger[agent]
	if !ok {
		l = &agentLedger{pending: make(map[uint64]struct{})}
		s.ledger[agent] = l
	}
	st := l.admit(epoch, seq, rows, nowNs, degraded)
	switch st {
	case BatchFresh:
		for i := range scripts {
			s.merge(&scripts[i])
		}
		s.framesMerged++
		s.rowsMerged += uint64(rows)
	case BatchDuplicate:
		s.framesDup++
	case BatchFenced:
		s.framesFenced++
	}
	return st
}

// merge folds one script snapshot into the store. Callers hold s.mu.
func (s *AggStore) merge(in *ScriptAgg) {
	sa, ok := s.scripts[in.Script]
	if !ok {
		sa = &scriptAgg{flows: make(map[flowKey]*struct{ packets, bytes uint64 })}
		s.scripts[in.Script] = sa
	}
	sa.counters = addU64(sa.counters, in.Counters)
	sa.cpuHits = addU64(sa.cpuHits, in.CPUHits)
	sa.hist = addU64(sa.hist, in.Hist)
	for _, f := range in.Flows {
		k := flowKey{f.SrcIP, f.DstIP, f.SrcPort, f.DstPort, f.Proto}
		fv, ok := sa.flows[k]
		if !ok {
			fv = &struct{ packets, bytes uint64 }{}
			sa.flows[k] = fv
		}
		fv.packets += f.Packets
		fv.bytes += f.Bytes
	}
}

// addU64 sums src into dst slot-wise, growing dst as needed.
func addU64(dst, src []uint64) []uint64 {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// Scripts lists the script names with merged aggregates, sorted.
func (s *AggStore) Scripts() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.scripts))
	for name := range s.scripts {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Get returns a deep-copied snapshot of one script's merged aggregates,
// flows sorted by 5-tuple.
func (s *AggStore) Get(script string) (ScriptAgg, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sa, ok := s.scripts[script]
	if !ok {
		return ScriptAgg{}, false
	}
	out := ScriptAgg{
		Script:   script,
		Counters: append([]uint64(nil), sa.counters...),
		CPUHits:  append([]uint64(nil), sa.cpuHits...),
		Hist:     append([]uint64(nil), sa.hist...),
	}
	for k, v := range sa.flows {
		out.Flows = append(out.Flows, FlowAgg{
			SrcIP: k.srcIP, DstIP: k.dstIP,
			SrcPort: k.srcPort, DstPort: k.dstPort, Proto: k.proto,
			Packets: v.packets, Bytes: v.bytes,
		})
	}
	sort.Slice(out.Flows, func(i, j int) bool { return flowLess(&out.Flows[i], &out.Flows[j]) })
	return out, true
}

// flowLess orders flows by 5-tuple for deterministic output.
func flowLess(a, b *FlowAgg) bool {
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// Ledger returns the delivery-ledger snapshot for one agent's aggregate
// frame stream.
func (s *AggStore) Ledger(agent string) (AgentLedger, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.ledger[agent]
	if !ok {
		return AgentLedger{}, false
	}
	return l.snapshot(), true
}

// Totals summarizes ingest history and current store size.
func (s *AggStore) Totals() AggTotals {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := AggTotals{
		FramesMerged: s.framesMerged,
		FramesDup:    s.framesDup,
		FramesFenced: s.framesFenced,
		RowsMerged:   s.rowsMerged,
		Scripts:      len(s.scripts),
	}
	for _, sa := range s.scripts {
		t.Flows += len(sa.flows)
	}
	return t
}
