// Crash recovery and the Durability coordinator. Recover is the single
// startup path for a durable collector — first boot and post-crash are
// the same call: sweep orphaned temp files, reopen the spilled extents
// the latest checkpoint covers, restore the checkpointed ledgers and
// aggregate store, replay the WAL tail through the normal exactly-once
// admission path (so a torn, duplicated, or reordered tail can never
// double-ingest), and resume the log at the next LSN. The returned
// Durability then fronts ingest: admit → WAL append → apply, under a
// shared/exclusive barrier that lets checkpoints cut a consistent
// snapshot without stopping the world between batches.
package tracedb

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"vnettracer/internal/core"
)

// DefaultFsyncEvery is the group-commit period for FsyncInterval.
const DefaultFsyncEvery = 50 * time.Millisecond

// checkpointsKept is how many valid checkpoints survive a new one: the
// newest plus one fallback in case the newest is lost with its disk
// sector.
const checkpointsKept = 2

// DurabilityConfig configures the collector's durability layer.
type DurabilityConfig struct {
	// Dir holds the WAL generations and checkpoint files. Required.
	Dir string
	// Fsync selects the WAL flush policy (default FsyncNever).
	Fsync FsyncPolicy
	// FsyncEvery is the FsyncInterval period (default DefaultFsyncEvery).
	FsyncEvery time.Duration
}

// RecoveryStats reports what one Recover call rebuilt.
type RecoveryStats struct {
	// CheckpointLoaded reports whether a valid checkpoint was found;
	// CheckpointLSN is its LSN (0 on a cold start).
	CheckpointLoaded bool
	CheckpointLSN    uint64
	// AdoptedExtents/AdoptedRecords count spilled extents reopened under
	// the checkpoint's seal fence. DroppedExtents counts post-checkpoint
	// extent files removed (their records replay from the WAL instead);
	// CorruptExtents counts pre-checkpoint extents that failed to decode
	// and were skipped.
	AdoptedExtents int
	AdoptedRecords uint64
	DroppedExtents int
	CorruptExtents int
	// ReplayedEntries counts WAL entries applied (LSN past the
	// checkpoint); ReplayedRecords/ReplayedFrames their fresh payloads;
	// ReplayedDup entries that deduplicated against restored ledger state.
	ReplayedEntries uint64
	ReplayedRecords uint64
	ReplayedFrames  uint64
	ReplayedDup     uint64
	// TornTails counts WAL files truncated at a torn or corrupt frame.
	TornTails int
	// SweptTmp counts orphaned *.tmp files removed from the WAL dir.
	SweptTmp int
	// NextLSN is the first LSN the resumed log will assign.
	NextLSN uint64
}

// DurabilityStats is a live snapshot of the durability layer's counters.
type DurabilityStats struct {
	Dir    string
	Policy FsyncPolicy
	// WALEntries/WALBytes/WALSyncs count appended frames, framed bytes,
	// and fsync calls since this process opened the log.
	WALEntries uint64
	WALBytes   uint64
	WALSyncs   uint64
	// WALErrors counts appends that failed to reach the log (the batch
	// was still ingested; its durability is degraded and visible here).
	WALErrors uint64
	// NextLSN is the next LSN to be assigned.
	NextLSN uint64
	// Checkpoints/CheckpointErrors count completed and failed checkpoint
	// attempts; LastCheckpointLSN is the newest durable cut.
	Checkpoints       uint64
	CheckpointErrors  uint64
	LastCheckpointLSN uint64
	// LastError is the most recent WAL or checkpoint failure, "" if none.
	LastError string
}

// Durability fronts a DB + AggStore pair with a write-ahead log and
// checkpointing. All methods are safe for concurrent use.
type Durability struct {
	db   *DB
	aggs *AggStore
	dir  string

	// barrier orders ingest against checkpoints: admissions hold it
	// shared, a checkpoint holds it exclusive, so the checkpoint's cut
	// never observes an admitted-but-unapplied batch.
	barrier sync.RWMutex

	// wmu serializes WAL appends and guards the writer + error counters.
	wmu        sync.Mutex
	wal        walWriter
	walErrors  uint64
	lastWALErr error

	cmu               sync.Mutex
	checkpoints       uint64
	checkpointErrors  uint64
	lastCheckpointLSN uint64
	lastCkptErr       error

	// flushStop/flushWG manage the FsyncInterval group-commit flusher
	// goroutine; stopOnce makes Close idempotent about stopping it.
	// flushKick wakes the flusher early when the staged group passes the
	// high-water mark, so a burst drains at disk speed instead of pooling
	// in memory for a full period.
	flushStop chan struct{}
	flushKick chan struct{}
	flushWG   sync.WaitGroup
	stopOnce  sync.Once

	recovery RecoveryStats
}

// Recover builds the durability layer over db and aggs, restoring any
// state a previous incarnation persisted under cfg.Dir. db must have a
// DataDir (checkpoints seal heads into spilled extents; without a data
// directory the WAL could never truncate safely). A cold start — empty
// directory — recovers to an empty state and is the normal first boot.
func Recover(db *DB, aggs *AggStore, cfg DurabilityConfig) (*Durability, RecoveryStats, error) {
	if cfg.Dir == "" {
		return nil, RecoveryStats{}, fmt.Errorf("tracedb: durability requires a directory")
	}
	if db.Config().DataDir == "" {
		return nil, RecoveryStats{}, fmt.Errorf("tracedb: durability requires the DB to have a DataDir (checkpoints spill head segments there)")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, RecoveryStats{}, err
	}
	if cfg.FsyncEvery <= 0 {
		cfg.FsyncEvery = DefaultFsyncEvery
	}

	var stats RecoveryStats
	stats.SweptTmp = sweepTmpFiles(cfg.Dir)

	ckpt, loaded, err := loadLatestCheckpoint(cfg.Dir)
	if err != nil {
		return nil, stats, err
	}
	sealFence := make(map[uint32]int)
	if loaded {
		stats.CheckpointLoaded = true
		stats.CheckpointLSN = ckpt.LSN
		db.restoreLedgerStates(ckpt.Ledgers)
		aggs.restoreState(ckpt.Aggs)
		for tpid, ts := range ckpt.Tables {
			t := db.ensureTableNamed(tpid, ts.Name)
			t.mu.Lock()
			t.sealSeq = ts.SealSeq
			t.evictedRecords = ts.EvictedRecords
			t.evictedExtents = ts.EvictedExtents
			t.spillErrors = ts.SpillErrors
			t.mu.Unlock()
			sealFence[tpid] = ts.SealSeq
		}
	}

	if err := reopenExtents(db, sealFence, &stats); err != nil {
		return nil, stats, err
	}

	maxLSN := stats.CheckpointLSN
	files, err := listWALFiles(cfg.Dir)
	if err != nil {
		return nil, stats, err
	}
	for _, name := range files {
		path := filepath.Join(cfg.Dir, name)
		goodOff, tornErr, err := walReplayFile(path, func(e walEntry) {
			if e.LSN <= stats.CheckpointLSN {
				return
			}
			if e.LSN > maxLSN {
				maxLSN = e.LSN
			}
			stats.ReplayedEntries++
			switch e.Kind {
			case walKindRecords:
				st := db.AdmitBatch(e.Agent, e.Epoch, e.Seq, len(e.Records), e.TimeNs, e.Degraded)
				if st == BatchFresh {
					db.Insert(e.Records)
					stats.ReplayedRecords += uint64(len(e.Records))
				} else {
					stats.ReplayedDup++
				}
			case walKindAggs:
				st := aggs.Admit(e.Agent, e.Epoch, e.Seq, e.Scripts, e.TimeNs, e.Degraded)
				if st == BatchFresh {
					stats.ReplayedFrames++
				} else {
					stats.ReplayedDup++
				}
			}
		})
		if err != nil {
			return nil, stats, err
		}
		if tornErr != nil {
			// A torn or corrupt frame ends the usable log in this
			// generation: truncate it away so the file replays cleanly
			// next time, and keep going — later generations (created by
			// a recovery after this tear) are still valid.
			if terr := os.Truncate(path, goodOff); terr != nil {
				return nil, stats, terr
			}
			stats.TornTails++
		}
	}

	d := &Durability{db: db, aggs: aggs, dir: cfg.Dir}
	d.wal = walWriter{
		dir:     cfg.Dir,
		policy:  cfg.Fsync,
		nextLSN: maxLSN + 1,
	}
	d.lastCheckpointLSN = stats.CheckpointLSN
	// Recovery resumes in a fresh generation rather than reopening the
	// truncated tail: prior generations stay on disk (their entries are
	// past the checkpoint and must survive another crash) until the next
	// checkpoint retires them.
	if err := d.wal.openGeneration(); err != nil {
		return nil, stats, err
	}
	stats.NextLSN = d.wal.nextLSN
	d.recovery = stats
	if cfg.Fsync == FsyncInterval {
		// Group commit off the hot path: appends only stage frames in
		// memory, and this flusher writes+syncs each accumulated group
		// once per period. Ingest never waits on storage; loss stays
		// bounded to one period of acknowledged batches.
		// Preallocate the staging buffer at the high-water mark (the
		// flusher's spare likewise) so steady-state staging is a single
		// memcpy — growing a multi-megabyte buffer incrementally would
		// put realloc copies back on the ingest path. Both are
		// pre-faulted here: a fresh large allocation is backed by
		// untouched zero pages, and taking those page faults lazily
		// would smear milliseconds of fault latency across the first
		// high-water mark of ingest.
		d.wal.buf = prefault(make([]byte, 0, walGroupHighWater))
		spare := prefault(make([]byte, 0, walGroupHighWater))
		d.flushStop = make(chan struct{})
		d.flushKick = make(chan struct{}, 1)
		d.flushWG.Add(1)
		go d.flushLoop(cfg.FsyncEvery, spare)
	}
	return d, stats, nil
}

// flushLoop is the FsyncInterval group-commit flusher: once per period
// it swaps the staged frame buffer out under the lock, then performs the
// write+fsync OUTSIDE the lock so ingest never stalls behind storage
// latency. If a checkpoint rotates the generation mid-flight, the
// in-flight group either lands out of order in the retiring file (replay
// admits out-of-order seqs like any reordered network delivery) or fails
// against the closed file — and in both cases every staged LSN is <= the
// checkpoint's cut, so the just-written checkpoint already covers it.
// Flush failures surface through the same WAL error counters as append
// failures.
func (d *Durability) flushLoop(every time.Duration, spare []byte) {
	defer d.flushWG.Done()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-d.flushStop:
			return
		case <-t.C:
		case <-d.flushKick:
		}
		d.wmu.Lock()
		w := &d.wal
		if w.f == nil || (len(w.buf) == 0 && !w.dirty) {
			d.wmu.Unlock()
			continue
		}
		buf, f := w.buf, w.f
		w.buf = spare[:0]
		w.dirty = false
		w.syncs++
		d.wmu.Unlock()

		var err error
		if len(buf) > 0 {
			_, err = f.Write(buf)
		}
		if err == nil {
			err = f.Sync()
		}
		d.wmu.Lock()
		spare = buf
		if err != nil && d.wal.f == f {
			d.walErrors++
			d.lastWALErr = err
		}
		d.wmu.Unlock()
	}
}

// reopenExtents rescans the DB's data directory: extent files under the
// checkpoint's seal fence are adopted back into their tables (metadata
// rebuilt by one streaming decode; the blob stays on disk), files at or
// past the fence are removed — their records were logged after the
// checkpoint cut and will be re-inserted by WAL replay, which re-seals
// and re-spills them under the same names.
func reopenExtents(db *DB, sealFence map[uint32]int, stats *RecoveryStats) error {
	dir := db.Config().DataDir
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	byTable := make(map[uint32][]*Extent)
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		var tpid uint32
		var seq int
		if n, err := fmt.Sscanf(ent.Name(), "tp%08x-%06d.vnx", &tpid, &seq); n != 2 || err != nil {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		if seq >= sealFence[tpid] {
			os.Remove(path)
			stats.DroppedExtents++
			continue
		}
		ext, err := reopenExtent(path, tpid, seq)
		if err != nil {
			stats.CorruptExtents++
			continue
		}
		byTable[tpid] = append(byTable[tpid], ext)
	}
	for tpid, exts := range byTable {
		sort.Slice(exts, func(i, j int) bool { return exts[i].seq < exts[j].seq })
		t := db.ensureTableNamed(tpid, "")
		t.mu.Lock()
		t.sealed = exts
		t.sealedRecords, t.sealedBytes = 0, 0
		for _, e := range exts {
			t.sealedRecords += e.count
			t.sealedBytes += int64(e.storedBytes)
			stats.AdoptedExtents++
			stats.AdoptedRecords += uint64(e.count)
		}
		if t.sealSeq < sealFence[tpid] {
			t.sealSeq = sealFence[tpid]
		}
		t.mu.Unlock()
	}
	return nil
}

// reopenExtent rebuilds one spilled extent's resident metadata (count,
// time range, bloom filter) with a single streaming decode; the
// compressed blob stays on disk.
func reopenExtent(path string, tpid uint32, seq int) (*Extent, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := newExtentDecoder(bufio.NewReaderSize(f, 32*1024))
	if err != nil {
		return nil, err
	}
	if d.tpid != tpid {
		return nil, fmt.Errorf("tracedb: extent %s: tpid %d in blob, %d in name",
			filepath.Base(path), d.tpid, tpid)
	}
	e := &Extent{seq: seq, path: path, filter: newBloom(int(d.count))}
	for {
		r, err := d.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if e.count == 0 {
			e.minTimeNs, e.maxTimeNs = r.TimeNs, r.TimeNs
		}
		if r.TimeNs < e.minTimeNs {
			e.minTimeNs = r.TimeNs
		}
		if r.TimeNs > e.maxTimeNs {
			e.maxTimeNs = r.TimeNs
		}
		e.filter.add(r.TraceID)
		e.count++
	}
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	e.storedBytes = int(fi.Size())
	return e, nil
}

// ensureTableNamed returns the table for tpid, creating it (with the
// given name) if needed; a non-empty name also renames an auto-created
// table — recovery learns pretty names from the checkpoint after extents
// may have auto-created the table.
func (db *DB) ensureTableNamed(tpid uint32, name string) *Table {
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[tpid]; ok {
		if name != "" {
			t.Name = name
		}
		return t
	}
	if name == "" {
		name = fmt.Sprintf("tp%d", tpid)
	}
	t := newTable(db, tpid, name)
	db.tables[tpid] = t
	return t
}

// AdmitRecordBatch is the durable form of DB.AdmitBatch + DB.Insert: it
// classifies the batch, and — only when fresh — appends it to the WAL
// (fsync per policy) and then inserts the records, all under the shared
// side of the checkpoint barrier so a concurrent checkpoint never cuts
// between admission and application. A WAL append failure does not drop
// the batch (the records are ingested and the error is surfaced in
// Stats); it degrades durability, not availability.
func (d *Durability) AdmitRecordBatch(agent string, epoch, seq uint64, recs []core.Record, nowNs int64, degraded uint8) BatchStatus {
	return d.AdmitRecordBatchRaw(agent, epoch, seq, recs, nil, nowNs, degraded)
}

// AdmitRecordBatchRaw is AdmitRecordBatch for callers that still hold the
// records' canonical wire encoding (the transport's record section): the
// WAL logs raw verbatim instead of re-marshalling recs, taking the encode
// off the synchronous ingest path. raw must be len(recs)*core.RecordSize
// bytes of core.Record wire form matching recs — anything else falls back
// to marshalling — and must not be mutated after the call.
func (d *Durability) AdmitRecordBatchRaw(agent string, epoch, seq uint64, recs []core.Record, raw []byte, nowNs int64, degraded uint8) BatchStatus {
	d.barrier.RLock()
	defer d.barrier.RUnlock()
	st := d.db.AdmitBatch(agent, epoch, seq, len(recs), nowNs, degraded)
	if st != BatchFresh {
		return st
	}
	// An unsequenced empty batch is a bare heartbeat: nothing to replay.
	if seq != 0 || len(recs) > 0 {
		d.append(&walEntry{
			Kind: walKindRecords, Agent: agent, Epoch: epoch, Seq: seq,
			TimeNs: nowNs, Degraded: degraded, Records: recs, RawRecords: raw,
		})
	}
	d.db.Insert(recs)
	return st
}

// AdmitAggFrame is the durable form of AggStore.Admit: fresh frames are
// WAL-logged before they merge.
func (d *Durability) AdmitAggFrame(agent string, epoch, seq uint64, scripts []ScriptAgg, nowNs int64, degraded uint8) BatchStatus {
	d.barrier.RLock()
	defer d.barrier.RUnlock()
	// Admit merges the fresh frame immediately (classification and merge
	// are atomic under the store's mutex); the WAL append follows. The
	// ordering is safe for the same reason admit-before-log is on the
	// record path: losing the unlogged append also loses the merge, and
	// the unacknowledged frame re-ships.
	st := d.aggs.Admit(agent, epoch, seq, scripts, nowNs, degraded)
	if st != BatchFresh {
		return st
	}
	if seq != 0 || len(scripts) > 0 {
		d.append(&walEntry{
			Kind: walKindAggs, Agent: agent, Epoch: epoch, Seq: seq,
			TimeNs: nowNs, Degraded: degraded, Scripts: scripts,
		})
	}
	return st
}

// walGroupHighWater is the staged-group size past which an append wakes
// the flusher early: a burst then drains at disk speed instead of
// pooling in memory without bound. It is sized as an emergency valve —
// in steady state the periodic tick drains long before this —
// so ordinary ingest never pays flusher interference.
const walGroupHighWater = 8 << 20

// append logs one entry, counting rather than propagating failures.
func (d *Durability) append(e *walEntry) {
	d.wmu.Lock()
	if err := d.wal.append(e); err != nil {
		d.walErrors++
		d.lastWALErr = err
	}
	kick := d.flushKick != nil && len(d.wal.buf) >= walGroupHighWater
	d.wmu.Unlock()
	if kick {
		select {
		case d.flushKick <- struct{}{}:
		default:
		}
	}
}

// Checkpoint cuts a durable snapshot: it seals every head segment into
// spilled extents, snapshots the ledgers and aggregate store at the
// current LSN, writes the checkpoint atomically, and then retires all WAL
// generations the checkpoint covers by rotating to a fresh one. The
// exclusive barrier guarantees no batch is between admission and
// application at the cut. A checkpoint that cannot make the head durable
// (extent spill failed — disk full) aborts and keeps the WAL intact.
func (d *Durability) Checkpoint() error {
	d.barrier.Lock()
	defer d.barrier.Unlock()
	err := d.checkpointLocked()
	d.cmu.Lock()
	if err != nil {
		d.checkpointErrors++
		d.lastCkptErr = err
	} else {
		d.checkpoints++
	}
	d.cmu.Unlock()
	return err
}

func (d *Durability) checkpointLocked() error {
	spillBefore := d.db.StorageTotals().SpillErrors
	d.db.SealAll()
	if after := d.db.StorageTotals().SpillErrors; after > spillBefore {
		return fmt.Errorf("tracedb: checkpoint aborted: %d head seal(s) failed to spill (keeping WAL)", after-spillBefore)
	}

	d.wmu.Lock()
	lastLSN := d.wal.nextLSN - 1
	d.wmu.Unlock()

	payload := &checkpointPayload{
		LSN:     lastLSN,
		Ledgers: d.db.exportLedgerStates(),
		Tables:  d.db.exportTableStates(),
		Aggs:    d.aggs.exportState(),
	}
	if _, err := writeCheckpoint(d.dir, payload); err != nil {
		return err
	}

	// The checkpoint is durable: rotate to a fresh generation and retire
	// every older one (all their entries have LSN <= lastLSN).
	d.wmu.Lock()
	rotErr := d.wal.openGeneration()
	active := walFileName(d.wal.nextLSN)
	d.wmu.Unlock()
	if rotErr != nil {
		return rotErr
	}
	if files, err := listWALFiles(d.dir); err == nil {
		for _, name := range files {
			if name != active {
				os.Remove(filepath.Join(d.dir, name))
			}
		}
	}
	d.pruneCheckpoints()

	d.cmu.Lock()
	d.lastCheckpointLSN = lastLSN
	d.cmu.Unlock()
	return nil
}

// pruneCheckpoints deletes all but the newest checkpointsKept checkpoint
// files.
func (d *Durability) pruneCheckpoints() {
	ents, err := os.ReadDir(d.dir)
	if err != nil {
		return
	}
	type cand struct {
		name string
		lsn  uint64
	}
	var cands []cand
	for _, ent := range ents {
		if lsn, ok := parseCheckpointFileName(ent.Name()); ok && !ent.IsDir() {
			cands = append(cands, cand{ent.Name(), lsn})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].lsn > cands[j].lsn })
	for _, c := range cands[min(len(cands), checkpointsKept):] {
		os.Remove(filepath.Join(d.dir, c.name))
	}
}

// Sync forces any unsynced WAL frames to stable storage regardless of
// policy.
func (d *Durability) Sync() error {
	d.wmu.Lock()
	defer d.wmu.Unlock()
	return d.wal.sync()
}

// Close stops the group-commit flusher, then syncs and closes the WAL.
// The Durability must not be used after.
func (d *Durability) Close() error {
	d.stopOnce.Do(func() {
		if d.flushStop != nil {
			close(d.flushStop)
			d.flushWG.Wait()
		}
	})
	d.wmu.Lock()
	defer d.wmu.Unlock()
	return d.wal.close()
}

// Recovery returns what the Recover call that built this layer rebuilt.
func (d *Durability) Recovery() RecoveryStats { return d.recovery }

// Stats snapshots the durability counters.
func (d *Durability) Stats() DurabilityStats {
	d.wmu.Lock()
	s := DurabilityStats{
		Dir:        d.dir,
		Policy:     d.wal.policy,
		WALEntries: d.wal.entries,
		WALBytes:   d.wal.bytes,
		WALSyncs:   d.wal.syncs,
		WALErrors:  d.walErrors,
		NextLSN:    d.wal.nextLSN,
	}
	var lastErr error = d.lastWALErr
	d.wmu.Unlock()
	d.cmu.Lock()
	s.Checkpoints = d.checkpoints
	s.CheckpointErrors = d.checkpointErrors
	s.LastCheckpointLSN = d.lastCheckpointLSN
	if d.lastCkptErr != nil {
		lastErr = d.lastCkptErr
	}
	d.cmu.Unlock()
	if lastErr != nil {
		s.LastError = lastErr.Error()
	}
	return s
}

// prefault touches one byte per page of b's full capacity so the pages
// are resident before the hot path stores into them.
func prefault(b []byte) []byte {
	full := b[:cap(b)]
	for i := 0; i < len(full); i += 4096 {
		full[i] = 0
	}
	return b
}

// sweepTmpFiles removes orphaned *.tmp files (a crash between temp write
// and rename leaks them) and returns how many it removed.
func sweepTmpFiles(dir string) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, ent := range ents {
		if ent.IsDir() || filepath.Ext(ent.Name()) != ".tmp" {
			continue
		}
		if os.Remove(filepath.Join(dir, ent.Name())) == nil {
			n++
		}
	}
	return n
}
