package tracedb

import (
	"sort"

	"vnettracer/internal/core"
)

// Merged is the cluster-query view of one tracepoint whose records are
// partitioned across collectors: after a re-homing, an agent's table has
// a prefix on its old collector and a suffix on its new one. Merged
// presents the union as a single record stream. ScanAligned is a k-way
// merge on aligned timestamps, so when each partition is time-sorted
// (per-CPU ring order survives segment sealing) the merged stream is
// globally time-sorted — what the latency join and throughput span
// calculations assume of a single-collector table.
type Merged struct {
	parts []*Table
}

// Merge builds a merged view over the given table partitions; nil
// entries are skipped (a collector without this table contributes
// nothing).
func Merge(parts ...*Table) *Merged {
	m := &Merged{}
	for _, t := range parts {
		if t != nil {
			m.parts = append(m.parts, t)
		}
	}
	return m
}

// Parts reports how many partitions back the view.
func (m *Merged) Parts() int { return len(m.parts) }

// Name returns the first partition's table name (partitions of one
// tracepoint share it).
func (m *Merged) Name() string {
	if len(m.parts) == 0 {
		return ""
	}
	return m.parts[0].Name
}

// Len sums the record counts of all partitions.
func (m *Merged) Len() int {
	n := 0
	for _, t := range m.parts {
		n += t.Len()
	}
	return n
}

// Scan streams every partition's records in raw timestamps, k-way merged
// on TimeNs.
func (m *Merged) Scan(fn func(core.Record) bool) { m.scanMerged(false, fn) }

// ScanAligned streams every partition's records with per-table skew
// correction applied, k-way merged on the aligned TimeNs — the
// cross-collector equivalent of Table.ScanAligned.
func (m *Merged) ScanAligned(fn func(core.Record) bool) { m.scanMerged(true, fn) }

// mergeStream adapts one partition's push-based scan into a pullable
// record stream: a goroutine runs the scan and feeds a buffered channel,
// stopping early when the consumer closes stop.
type mergeStream struct {
	ch   chan core.Record
	stop chan struct{}
	cur  core.Record
	ok   bool
}

func (s *mergeStream) advance() {
	s.cur, s.ok = <-s.ch
}

// scanMerged runs the k-way merge. Ties on TimeNs break by partition
// index, so the merged order is deterministic for a fixed partition
// list.
func (m *Merged) scanMerged(align bool, fn func(core.Record) bool) {
	if len(m.parts) == 1 {
		// Single partition: no goroutine machinery needed.
		if align {
			m.parts[0].ScanAligned(fn)
		} else {
			m.parts[0].Scan(fn)
		}
		return
	}
	streams := make([]*mergeStream, len(m.parts))
	for i, t := range m.parts {
		s := &mergeStream{ch: make(chan core.Record, 64), stop: make(chan struct{})}
		streams[i] = s
		go func(t *Table, s *mergeStream) {
			defer close(s.ch)
			emit := func(r core.Record) bool {
				select {
				case s.ch <- r:
					return true
				case <-s.stop:
					return false
				}
			}
			if align {
				t.ScanAligned(emit)
			} else {
				t.Scan(emit)
			}
		}(t, s)
	}
	defer func() {
		// Unblock and drain every producer so no goroutine leaks when the
		// consumer stops early.
		for _, s := range streams {
			close(s.stop)
			for range s.ch {
			}
		}
	}()

	// heap holds the stream indices with a live head record, a binary
	// min-heap on (cur.TimeNs, stream index).
	heap := make([]int, 0, len(streams))
	less := func(a, b int) bool {
		if streams[a].cur.TimeNs != streams[b].cur.TimeNs {
			return streams[a].cur.TimeNs < streams[b].cur.TimeNs
		}
		return a < b
	}
	up := func(i int) {
		for i > 0 {
			parent := (i - 1) / 2
			if !less(heap[i], heap[parent]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	down := func(i int) {
		for {
			least, l, r := i, 2*i+1, 2*i+2
			if l < len(heap) && less(heap[l], heap[least]) {
				least = l
			}
			if r < len(heap) && less(heap[r], heap[least]) {
				least = r
			}
			if least == i {
				return
			}
			heap[i], heap[least] = heap[least], heap[i]
			i = least
		}
	}
	for i, s := range streams {
		s.advance()
		if s.ok {
			heap = append(heap, i)
			up(len(heap) - 1)
		}
	}
	for len(heap) > 0 {
		i := heap[0]
		s := streams[i]
		if !fn(s.cur) {
			return
		}
		s.advance()
		if s.ok {
			down(0)
			continue
		}
		heap[0] = heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		down(0)
	}
}

// TraceIDs returns the distinct packet IDs across all partitions, sorted.
func (m *Merged) TraceIDs() []uint32 {
	set := make(map[uint32]struct{})
	for _, t := range m.parts {
		for _, id := range t.TraceIDs() {
			set[id] = struct{}{}
		}
	}
	out := make([]uint32, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumTraceIDs counts distinct packet IDs across all partitions.
func (m *Merged) NumTraceIDs() int {
	set := make(map[uint32]struct{})
	for _, t := range m.parts {
		for _, id := range t.TraceIDs() {
			set[id] = struct{}{}
		}
	}
	return len(set)
}

// FirstByTraceID returns the record with the earliest aligned timestamp
// for a packet ID across all partitions — the cross-collector trace-ID
// join primitive behind latency decomposition. Ties break toward the
// earliest partition.
func (m *Merged) FirstByTraceID(id uint32) (core.Record, bool) {
	var best core.Record
	found := false
	for _, t := range m.parts {
		if r, ok := t.FirstByTraceID(id); ok {
			if !found || r.TimeNs < best.TimeNs {
				best = r
				found = true
			}
		}
	}
	return best, found
}
