package tracedb

import "sort"

// agentLedger is the collector's per-agent delivery bookkeeping: the
// heartbeat timestamp plus the batch-sequence state that turns the
// at-least-once transport into exactly-once ingest.
type agentLedger struct {
	lastSeenNs int64
	// hwm is the contiguous high-water mark: every sequenced batch with
	// Seq <= hwm has been ingested.
	hwm uint64
	// maxSeq is the highest sequence number ever observed.
	maxSeq uint64
	// pending holds ingested seqs above hwm (async ingest workers can
	// process an agent's batches out of order).
	pending map[uint64]struct{}
	dups    uint64

	// epoch is the newest registration lease observed for this agent.
	// Sequence numbers restart from 1 with each epoch (a restarted agent
	// is a fresh process), so on an epoch advance the old epoch's seq
	// state is snapshotted aside and the counters reset.
	epoch uint64
	// prevMaxSeq/prevHwm/prevPending freeze the previous epoch's ingest
	// state at the fence point: a stale-epoch batch is checked against
	// them so a zombie re-shipping an already-ingested batch is not
	// double-counted as fenced payload.
	prevMaxSeq  uint64
	prevHwm     uint64
	prevPending map[uint64]struct{}
	// prevFenced records previous-epoch seqs already counted into
	// fencedRecords, so zombie retries of the same batch count once.
	prevFenced map[uint64]struct{}
	// missingPrior accumulates sequence gaps from closed epochs; a gap
	// batch that later surfaces fenced is moved from missing to fenced.
	missingPrior uint64
	// fencedBatches counts every stale-epoch sequenced arrival;
	// fencedRecords counts the record payload of first-time fenced
	// batches that were never ingested (exact confirmed-fenced loss).
	fencedBatches uint64
	fencedRecords uint64
	// degraded is the agent's last self-reported degradation level.
	degraded uint8
}

// markSeq records a nonzero batch seq for the current epoch and reports
// whether it is fresh. Callers hold db.hbMu.
func (l *agentLedger) markSeq(seq uint64) bool {
	if seq <= l.hwm {
		l.dups++
		return false
	}
	if _, seen := l.pending[seq]; seen {
		l.dups++
		return false
	}
	l.pending[seq] = struct{}{}
	if seq > l.maxSeq {
		l.maxSeq = seq
	}
	for {
		if _, ok := l.pending[l.hwm+1]; !ok {
			break
		}
		delete(l.pending, l.hwm+1)
		l.hwm++
	}
	return true
}

// AgentLedger is a snapshot of one agent's delivery ledger.
type AgentLedger struct {
	// LastSeenNs is the latest heartbeat timestamp on the agent's clock.
	LastSeenNs int64
	// HighWaterSeq is the contiguous ingest prefix: every batch sequence
	// number <= HighWaterSeq has been ingested exactly once.
	HighWaterSeq uint64
	// MaxSeq is the highest batch sequence number observed so far.
	MaxSeq uint64
	// DupBatches counts batches dropped because their sequence number had
	// already been ingested (transport retries after a lost reply).
	DupBatches uint64
	// PendingBatches counts seqs ingested above the high-water mark —
	// reordering by concurrent ingest workers, usually transient.
	PendingBatches int
	// MissingBatches counts sequence-number gaps: batches the agent
	// stamped but the collector never ingested. While the agent still
	// spools them this is in-flight retry backlog; once the agent evicts
	// them it is confirmed loss. Gaps from closed epochs are included;
	// a gap batch that later arrives fenced moves to FencedRecords.
	MissingBatches uint64
	// Epoch is the newest registration lease observed for the agent.
	// Zero means the agent never presented a lease (legacy wire
	// versions, standalone agents); such agents are never fenced.
	Epoch uint64
	// FencedBatches counts stale-epoch sequenced batches rejected by
	// the epoch fence (every arrival, including zombie retries);
	// FencedRecords counts the payload of first-time fenced batches
	// that were never ingested — confirmed records lost to fencing.
	FencedBatches uint64
	FencedRecords uint64
	// Degraded is the agent's last self-reported degradation level:
	// 0 full capture, 1 stretched flush, 2 ring sampling.
	Degraded uint8
}

// ledgerEntry returns (creating if needed) the ledger for an agent.
// Callers must hold db.hbMu.
func (db *DB) ledgerEntry(agent string) *agentLedger {
	l, ok := db.ledger[agent]
	if !ok {
		l = &agentLedger{pending: make(map[uint64]struct{})}
		db.ledger[agent] = l
	}
	return l
}

// Heartbeat records that an agent reported in at time nowNs. The collector
// doubles as the health monitor (paper Section III-C: "it also acts as a
// heartbeat monitor"). The ledger keeps the maximum: with concurrent
// ingest workers (or an agent re-shipping spooled batches stamped at their
// original drain time) batches arrive out of order, and an older timestamp
// must not regress the last-seen time and falsely kill a live agent.
func (db *DB) Heartbeat(agent string, nowNs int64) {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	l := db.ledgerEntry(agent)
	if nowNs > l.lastSeenNs {
		l.lastSeenNs = nowNs
	}
}

// MarkBatchSeq records a batch sequence number for an agent and reports
// whether the batch is fresh (false = already ingested, drop it). Seq 0
// means "unsequenced" (bare heartbeats, pre-Seq agents) and is always
// fresh — those batches carry no replayable payload. The ledger tolerates
// out-of-order arrival: seqs above the contiguous high-water mark park in
// a pending set until the gap below them fills.
func (db *DB) MarkBatchSeq(agent string, seq uint64) bool {
	if seq == 0 {
		return true
	}
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	return db.ledgerEntry(agent).markSeq(seq)
}

// BatchStatus classifies a batch presented to AdmitBatch.
type BatchStatus int

const (
	// BatchFresh: first sight of this (epoch, seq) — insert the records.
	BatchFresh BatchStatus = iota
	// BatchDuplicate: the seq was already ingested in the current epoch
	// (transport retry) — drop the payload, the heartbeat still counted.
	BatchDuplicate
	// BatchFenced: the batch carries a stale epoch (a zombie pre-restart
	// process) — drop the payload and do not advance liveness; the fence
	// keeps exactly-once accounting owned by the live incarnation.
	BatchFenced
)

// AdmitBatch is the epoch-aware front door to the ledger: one call
// classifies a batch (fresh / duplicate / fenced), advances the epoch on
// a newer lease, updates the heartbeat for live-epoch traffic, and keeps
// the fenced-loss counters exact. records is the batch's payload size;
// nowNs its heartbeat timestamp; degraded the agent's self-reported
// degradation level.
//
// Epoch rules: epoch 0 means unleased and is compared equal to itself
// only — an unleased agent is never fenced. A batch with a newer epoch
// than the ledger's closes the old epoch: its outstanding sequence gap is
// folded into MissingBatches and its ingest state is frozen so stale
// stragglers dedup correctly. A batch with an older epoch is fenced;
// fenced payload counts once per seq (zombie retries don't inflate it),
// and a fenced seq that was part of the closed epoch's gap moves from
// missing to fenced. Fenced-payload exactness is guaranteed for the
// immediately previous epoch (one live restart); older zombies are still
// fenced but counted conservatively.
func (db *DB) AdmitBatch(agent string, epoch, seq uint64, records int, nowNs int64, degraded uint8) BatchStatus {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	return db.ledgerEntry(agent).admit(epoch, seq, records, nowNs, degraded)
}

// admit implements AdmitBatch's classification on one agent's ledger.
// It is shared by the record path (DB) and the aggregate path (AggStore),
// which run separate sequence spaces over identical epoch/seq semantics.
// Callers hold the mutex guarding l.
func (l *agentLedger) admit(epoch, seq uint64, records int, nowNs int64, degraded uint8) BatchStatus {
	if epoch > l.epoch {
		l.missingPrior += l.maxSeq - l.hwm - uint64(len(l.pending))
		l.prevMaxSeq = l.maxSeq
		l.prevHwm = l.hwm
		l.prevPending = l.pending
		l.prevFenced = make(map[uint64]struct{})
		l.hwm, l.maxSeq = 0, 0
		l.pending = make(map[uint64]struct{})
		l.epoch = epoch
	}
	if epoch != 0 && epoch < l.epoch {
		if seq == 0 {
			// Stale bare heartbeat: a zombie must not keep the agent
			// looking alive or perturb any counter.
			return BatchFenced
		}
		l.fencedBatches++
		ingested := seq <= l.prevHwm
		if !ingested && l.prevPending != nil {
			_, ingested = l.prevPending[seq]
		}
		if !ingested {
			if l.prevFenced == nil {
				l.prevFenced = make(map[uint64]struct{})
			}
			if _, counted := l.prevFenced[seq]; !counted {
				l.prevFenced[seq] = struct{}{}
				l.fencedRecords += uint64(records)
				if seq <= l.prevMaxSeq && l.missingPrior > 0 {
					l.missingPrior--
				}
			}
		}
		return BatchFenced
	}
	if nowNs > l.lastSeenNs {
		l.lastSeenNs = nowNs
	}
	l.degraded = degraded
	if seq == 0 {
		return BatchFresh
	}
	if !l.markSeq(seq) {
		return BatchDuplicate
	}
	return BatchFresh
}

// Ledger returns a snapshot of one agent's delivery ledger.
func (db *DB) Ledger(agent string) (AgentLedger, bool) {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	l, ok := db.ledger[agent]
	if !ok {
		return AgentLedger{}, false
	}
	return l.snapshot(), true
}

// snapshot exports the ledger's public view. Callers hold the mutex
// guarding l.
func (l *agentLedger) snapshot() AgentLedger {
	return AgentLedger{
		LastSeenNs:     l.lastSeenNs,
		HighWaterSeq:   l.hwm,
		MaxSeq:         l.maxSeq,
		DupBatches:     l.dups,
		PendingBatches: len(l.pending),
		MissingBatches: l.missingPrior + l.maxSeq - l.hwm - uint64(len(l.pending)),
		Epoch:          l.epoch,
		FencedBatches:  l.fencedBatches,
		FencedRecords:  l.fencedRecords,
		Degraded:       l.degraded,
	}
}

// DeadAgents lists agents not heard from within timeout of nowNs.
func (db *DB) DeadAgents(nowNs, timeoutNs int64) []string {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	var out []string
	for agent, l := range db.ledger {
		if nowNs-l.lastSeenNs > timeoutNs {
			out = append(out, agent)
		}
	}
	sort.Strings(out)
	return out
}

// Agents lists all agents that ever heartbeated.
func (db *DB) Agents() []string {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	out := make([]string, 0, len(db.ledger))
	for a := range db.ledger {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}
