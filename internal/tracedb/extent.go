// Extent is the segment store's unit of sealed storage. (The name avoids
// colliding with the exported latency-decomposition Segment alias in the
// root package.) An Extent is immutable from the moment it is sealed:
// either its compressed blob stays resident in memory, or — when the DB
// has a data directory — the blob is spilled to disk at seal time and
// only the metadata (count, time range, trace-ID bloom filter) stays
// resident. Eviction drops whole extents; nothing ever rewrites one.
package tracedb

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"vnettracer/internal/core"
)

// extentOverheadBytes approximates one Extent's fixed in-memory footprint
// (struct fields, slice headers, path string) for residency accounting.
const extentOverheadBytes = 112

// Extent is one sealed, immutable, compressed segment of a table's
// record history. Extents are created by the table's seal path; the
// exported accessors exist for storage introspection (vntquery storage,
// tests, benchmarks).
type Extent struct {
	seq       int
	count     int
	minTimeNs uint64
	maxTimeNs uint64
	filter    bloom

	// blob holds the compressed bytes while resident; path points at the
	// spilled file instead. Exactly one of the two is set after seal.
	blob []byte
	path string
	// storedBytes is the compressed size (== len(blob) == file size).
	storedBytes int
}

// SealRecords compresses a record slice into a standalone extent outside
// any table — for offline tools and benchmarks that want the codec
// without a DB.
func SealRecords(tpid uint32, recs []core.Record) *Extent {
	return sealExtent(tpid, 0, recs)
}

// sealExtent compresses recs (one table's next run of records, batch
// aligned by construction) into an immutable extent.
func sealExtent(tpid uint32, seq int, recs []core.Record) *Extent {
	e := &Extent{seq: seq, count: len(recs), filter: newBloom(len(recs))}
	if len(recs) > 0 {
		e.minTimeNs, e.maxTimeNs = recs[0].TimeNs, recs[0].TimeNs
	}
	for i := range recs {
		t := recs[i].TimeNs
		if t < e.minTimeNs {
			e.minTimeNs = t
		}
		if t > e.maxTimeNs {
			e.maxTimeNs = t
		}
		e.filter.add(recs[i].TraceID)
	}
	e.blob = appendExtentBlob(make([]byte, 0, len(recs)*12), tpid, recs)
	e.storedBytes = len(e.blob)
	return e
}

// spill writes the extent's blob to dir and drops it from memory. The
// write goes to a temp file first and is renamed into place, so a crash
// mid-write never leaves a half-extent under the final name; the blob's
// self-describing header makes the landed file decodable on its own.
func (e *Extent) spill(dir string, tpid uint32) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	final := filepath.Join(dir, fmt.Sprintf("tp%08x-%06d.vnx", tpid, e.seq))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, e.blob, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	e.path = final
	e.blob = nil
	return nil
}

// remove deletes a spilled extent's file (eviction); resident extents
// just drop their reference when the table forgets them.
func (e *Extent) remove() {
	if e.path != "" {
		os.Remove(e.path)
	}
}

// scan streams the extent's records in stored order. A visitor stop is
// not an error; a decode or file-read failure is.
func (e *Extent) scan(fn func(core.Record) bool) error {
	var err error
	if e.blob != nil {
		err = scanExtentStream(&byteCursor{b: e.blob}, fn)
	} else {
		f, openErr := os.Open(e.path)
		if openErr != nil {
			return openErr
		}
		err = scanExtentStream(bufio.NewReaderSize(f, 32*1024), fn)
		f.Close()
	}
	if err == errStopScan {
		return nil
	}
	return err
}

// mayContain reports whether the extent can hold records for a trace ID
// (false positives possible, false negatives impossible).
func (e *Extent) mayContain(id uint32) bool { return e.filter.mayContain(id) }

// Count returns the number of records sealed into the extent.
func (e *Extent) Count() int { return e.count }

// StoredBytes returns the compressed size in bytes (resident or on disk).
func (e *Extent) StoredBytes() int { return e.storedBytes }

// Spilled reports whether the blob lives on disk rather than in memory.
func (e *Extent) Spilled() bool { return e.path != "" }

// Path returns the spilled file path, empty while resident.
func (e *Extent) Path() string { return e.path }

// TimeRange returns the raw (unaligned) timestamp bounds of the extent's
// records.
func (e *Extent) TimeRange() (minNs, maxNs uint64) { return e.minTimeNs, e.maxTimeNs }

// residentBytes is the extent's in-memory footprint: blob (when not
// spilled) plus bloom filter plus fixed overhead.
func (e *Extent) residentBytes() uint64 {
	n := uint64(len(e.filter)*8) + extentOverheadBytes
	if e.path == "" {
		n += uint64(len(e.blob))
	}
	return n
}

// bloom is a fixed double-hash Bloom filter over trace IDs, sized at seal
// to ~10 bits and 4 probes per record (~1% false positives). A false
// positive costs one wasted extent decode during ByTraceID; a false
// negative is impossible, so queries never miss records.
type bloom []uint64

func newBloom(n int) bloom {
	bits := n * 10
	if bits < 64 {
		bits = 64
	}
	words := 1
	for words*64 < bits {
		words *= 2
	}
	return make(bloom, words)
}

// mix is splitmix64's finalizer: a cheap, well-distributed 64-bit hash
// from which the two probe sequences derive.
func mix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

func (b bloom) add(id uint32) {
	h := mix(uint64(id) + 0x9e3779b97f4a7c15)
	h1, h2 := h, h>>32|h<<32
	mask := uint64(len(b)*64 - 1)
	for i := uint64(0); i < 4; i++ {
		pos := (h1 + i*h2) & mask
		b[pos/64] |= 1 << (pos % 64)
	}
}

func (b bloom) mayContain(id uint32) bool {
	h := mix(uint64(id) + 0x9e3779b97f4a7c15)
	h1, h2 := h, h>>32|h<<32
	mask := uint64(len(b)*64 - 1)
	for i := uint64(0); i < 4; i++ {
		pos := (h1 + i*h2) & mask
		if b[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}
