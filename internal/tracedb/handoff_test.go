package tracedb

import "testing"

// TestHandoffRehomeExactlyOnce walks the full re-homing protocol at the
// ledger level: the old collector ingests part of the agent's sequence
// space, the state exports, the successor imports it at the advanced
// epoch, and re-shipped batches (spool retries whose acks died with the
// old collector) must come back duplicate — never double-ingested.
func TestHandoffRehomeExactlyOnce(t *testing.T) {
	old := New()
	// Epoch 1: seqs 1,2,3 ingested contiguously, 5 parked pending (4 is
	// the gap — a batch still spooled agent-side when the collector died).
	for _, seq := range []uint64{1, 2, 3, 5} {
		if got := admit(old, "a", 1, seq, 10, 100); got != BatchFresh {
			t.Fatalf("seed seq %d: got %v, want BatchFresh", seq, got)
		}
	}
	h, ok := old.ExportLedger("a")
	if !ok {
		t.Fatal("ExportLedger found no ledger")
	}
	if h.HighWater != 3 || h.MaxSeq != 5 || len(h.Pending) != 1 || h.Pending[0] != 5 {
		t.Fatalf("export: hwm=%d max=%d pending=%v, want 3/5/[5]", h.HighWater, h.MaxSeq, h.Pending)
	}

	succ := New()
	succ.ImportLedger("a", 2, h)
	l := ledger(t, succ, "a")
	if l.Epoch != 2 || l.HighWaterSeq != 3 || l.MaxSeq != 5 {
		t.Fatalf("imported ledger: epoch=%d hwm=%d max=%d, want 2/3/5", l.Epoch, l.HighWaterSeq, l.MaxSeq)
	}
	if l.MissingBatches != 1 {
		t.Fatalf("imported missing: %d, want 1 (the gap travels with the handoff)", l.MissingBatches)
	}

	// Spool re-ships arrive at the successor under the NEW epoch with
	// their ORIGINAL seqs (the agent process never restarted).
	if got := admit(succ, "a", 2, 2, 10, 200); got != BatchDuplicate {
		t.Fatalf("re-ship of ingested seq 2: got %v, want BatchDuplicate", got)
	}
	if got := admit(succ, "a", 2, 5, 10, 200); got != BatchDuplicate {
		t.Fatalf("re-ship of pending seq 5: got %v, want BatchDuplicate", got)
	}
	// The gap batch finally lands: fresh, and the hwm runs to 5.
	if got := admit(succ, "a", 2, 4, 10, 210); got != BatchFresh {
		t.Fatalf("gap seq 4: got %v, want BatchFresh", got)
	}
	l = ledger(t, succ, "a")
	if l.HighWaterSeq != 5 || l.MissingBatches != 0 || l.PendingBatches != 0 {
		t.Fatalf("after gap fill: hwm=%d missing=%d pending=%d, want 5/0/0",
			l.HighWaterSeq, l.MissingBatches, l.PendingBatches)
	}
	// The sequence space continues where it left off.
	if got := admit(succ, "a", 2, 6, 10, 220); got != BatchFresh {
		t.Fatalf("new seq 6: got %v, want BatchFresh", got)
	}

	// A straggler still carrying the pre-handoff epoch fences at the
	// successor — dedup-aware: seq 2 was ingested before the move, so it
	// adds no fenced payload.
	if got := admit(succ, "a", 1, 2, 10, 230); got != BatchFenced {
		t.Fatalf("stale-epoch seq 2: got %v, want BatchFenced", got)
	}
	l = ledger(t, succ, "a")
	if l.FencedBatches != 1 || l.FencedRecords != 0 {
		t.Fatalf("stale ingested seq: fencedBatches=%d fencedRecords=%d, want 1/0",
			l.FencedBatches, l.FencedRecords)
	}
}

// TestHandoffImportNeverRegresses: a repeated or reordered import can
// never move the high-water mark (or liveness clock) backwards, and a
// stale-epoch import is ignored outright.
func TestHandoffImportNeverRegresses(t *testing.T) {
	db := New()
	db.ImportLedger("a", 2, LedgerHandoff{HighWater: 5, MaxSeq: 5, LastSeenNs: 500})
	// Same epoch, older view (say a retried handoff RPC): no regression.
	db.ImportLedger("a", 2, LedgerHandoff{HighWater: 3, MaxSeq: 3, Pending: []uint64{4}, LastSeenNs: 400})
	l := ledger(t, db, "a")
	if l.HighWaterSeq != 5 || l.MaxSeq != 5 || l.PendingBatches != 0 {
		t.Fatalf("after stale same-epoch import: hwm=%d max=%d pending=%d, want 5/5/0",
			l.HighWaterSeq, l.MaxSeq, l.PendingBatches)
	}
	if l.LastSeenNs != 500 {
		t.Fatalf("LastSeenNs regressed to %d", l.LastSeenNs)
	}
	// Stale epoch: ignored entirely.
	db.ImportLedger("a", 1, LedgerHandoff{HighWater: 99, MaxSeq: 99})
	if l = ledger(t, db, "a"); l.Epoch != 2 || l.HighWaterSeq != 5 {
		t.Fatalf("stale-epoch import applied: epoch=%d hwm=%d", l.Epoch, l.HighWaterSeq)
	}
	// Same epoch, newer view: merges forward, pending runs the hwm up.
	db.ImportLedger("a", 2, LedgerHandoff{HighWater: 6, MaxSeq: 8, Pending: []uint64{7, 8}, LastSeenNs: 600})
	if l = ledger(t, db, "a"); l.HighWaterSeq != 8 || l.PendingBatches != 0 || l.LastSeenNs != 600 {
		t.Fatalf("merge-forward: hwm=%d pending=%d last=%d, want 8/0/600",
			l.HighWaterSeq, l.PendingBatches, l.LastSeenNs)
	}
}

// TestHandoffCloseEpochFencesStragglers: the old home's tombstone. After
// CloseAgentEpoch, stale batches fence (dedup-aware against the frozen
// pre-handoff state), stale heartbeats cannot resurrect liveness, and
// the outstanding gap is zeroed locally — it traveled with the export,
// so a cluster-wide missing sum counts it exactly once.
func TestHandoffCloseEpochFencesStragglers(t *testing.T) {
	old := New()
	// Seqs 1 and 3 ingested; 2 is the gap.
	admit(old, "a", 1, 1, 10, 100)
	admit(old, "a", 1, 3, 10, 110)
	if l := ledger(t, old, "a"); l.MissingBatches != 1 {
		t.Fatalf("pre-close missing: %d, want 1", l.MissingBatches)
	}
	old.CloseAgentEpoch("a", 2)
	l := ledger(t, old, "a")
	if l.Epoch != 2 {
		t.Fatalf("epoch after close: %d, want 2", l.Epoch)
	}
	if l.MissingBatches != 0 {
		t.Fatalf("missing after close: %d, want 0 (accounting moved with the export)", l.MissingBatches)
	}
	// Straggler retry of an already-ingested seq: fenced, no payload loss.
	if got := admit(old, "a", 1, 3, 10, 120); got != BatchFenced {
		t.Fatalf("straggler seq 3: got %v, want BatchFenced", got)
	}
	if l = ledger(t, old, "a"); l.FencedRecords != 0 {
		t.Fatalf("fenced payload for ingested straggler: %d, want 0", l.FencedRecords)
	}
	// Straggler of a never-ingested seq: its payload is confirmed fenced.
	if got := admit(old, "a", 1, 2, 10, 130); got != BatchFenced {
		t.Fatalf("straggler seq 2: got %v, want BatchFenced", got)
	}
	if l = ledger(t, old, "a"); l.FencedRecords != 10 {
		t.Fatalf("fenced payload: %d, want 10", l.FencedRecords)
	}
	// Re-closing at an older-or-equal epoch is a no-op.
	old.CloseAgentEpoch("a", 2)
	old.CloseAgentEpoch("a", 1)
	if l = ledger(t, old, "a"); l.Epoch != 2 {
		t.Fatalf("epoch after redundant closes: %d, want 2", l.Epoch)
	}
}

// TestHeartbeatEpochDoesNotResurrect: the regression the cluster fix
// pins down — after a re-homing closes an agent's epoch on the old
// collector, a heartbeat routed there under the stale lease must not
// advance the liveness clock (the old collector would otherwise keep
// reporting the agent as its own healthy tenant forever).
func TestHeartbeatEpochDoesNotResurrect(t *testing.T) {
	db := New()
	admit(db, "a", 1, 1, 10, 100)
	db.CloseAgentEpoch("a", 2)
	if got := db.HeartbeatEpoch("a", 1, 9999, 0); got != BatchFenced {
		t.Fatalf("stale heartbeat: got %v, want BatchFenced", got)
	}
	l := ledger(t, db, "a")
	if l.LastSeenNs != 100 {
		t.Fatalf("stale heartbeat advanced LastSeenNs to %d", l.LastSeenNs)
	}
	if l.FencedBatches != 0 || l.FencedRecords != 0 {
		t.Fatalf("bare stale heartbeat perturbed fence counters: %d/%d", l.FencedBatches, l.FencedRecords)
	}
	// Current-epoch and unleased heartbeats still work.
	if got := db.HeartbeatEpoch("a", 2, 200, 1); got != BatchFresh {
		t.Fatalf("live heartbeat: got %v, want BatchFresh", got)
	}
	if l = ledger(t, db, "a"); l.LastSeenNs != 200 || l.Degraded != 1 {
		t.Fatalf("live heartbeat: last=%d degraded=%d, want 200/1", l.LastSeenNs, l.Degraded)
	}
	if got := db.HeartbeatEpoch("a", 0, 300, 0); got != BatchFresh {
		t.Fatalf("unleased heartbeat: got %v, want BatchFresh (epoch 0 never fences)", got)
	}
}

// TestMergeAggs: the cross-collector aggregate merge sums counters,
// histogram buckets, per-CPU hits, and per-5-tuple flows exactly, with
// deterministic flow ordering.
func TestMergeAggs(t *testing.T) {
	a := ScriptAgg{
		Script:   "s",
		Counters: []uint64{1, 2},
		CPUHits:  []uint64{3, 0},
		Hist:     []uint64{1, 0, 4},
		Flows: []FlowAgg{
			{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 20, Proto: 6, Packets: 5, Bytes: 500},
		},
	}
	b := ScriptAgg{
		Script:   "s",
		Counters: []uint64{10, 0, 7},
		CPUHits:  []uint64{0, 4},
		Hist:     []uint64{0, 2},
		Flows: []FlowAgg{
			{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 20, Proto: 6, Packets: 1, Bytes: 100},
			{SrcIP: 9, DstIP: 2, SrcPort: 10, DstPort: 20, Proto: 17, Packets: 2, Bytes: 200},
		},
	}
	m := MergeAggs(a, b)
	wantCounters := []uint64{11, 2, 7}
	for i, w := range wantCounters {
		if m.Counters[i] != w {
			t.Fatalf("counter[%d] = %d, want %d", i, m.Counters[i], w)
		}
	}
	if m.Hist[0] != 1 || m.Hist[1] != 2 || m.Hist[2] != 4 {
		t.Fatalf("hist = %v, want [1 2 4]", m.Hist)
	}
	if len(m.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(m.Flows))
	}
	if m.Flows[0].Packets != 6 || m.Flows[0].Bytes != 600 {
		t.Fatalf("merged flow = %+v, want 6 pkts / 600 bytes", m.Flows[0])
	}
	// Merging in the other order gives the identical result.
	m2 := MergeAggs(b, a)
	if len(m2.Flows) != 2 || m2.Flows[0] != m.Flows[0] || m2.Flows[1] != m.Flows[1] {
		t.Fatalf("merge is order-sensitive: %+v vs %+v", m.Flows, m2.Flows)
	}
}
