package tracedb

import (
	"testing"

	"vnettracer/internal/core"
)

func rec(tpid, traceID uint32, t uint64) core.Record {
	return core.Record{TPID: tpid, TraceID: traceID, TimeNs: t}
}

// collect and collectAligned materialize a table through the streaming
// interface — test-only convenience now that All/AlignedAll are gone.
func collect(t *Table) []core.Record {
	var out []core.Record
	t.Scan(func(r core.Record) bool { out = append(out, r); return true })
	return out
}

func collectAligned(t *Table) []core.Record {
	var out []core.Record
	t.ScanAligned(func(r core.Record) bool { out = append(out, r); return true })
	return out
}

func TestCreateTableAndDuplicate(t *testing.T) {
	db := New()
	if _, err := db.CreateTable(1, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(1, "b"); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestInsertRoutesByTPID(t *testing.T) {
	db := New()
	db.CreateTable(1, "ingress")
	db.CreateTable(2, "egress")
	db.Insert([]core.Record{rec(1, 10, 100), rec(2, 10, 200), rec(1, 11, 150)})
	t1, _ := db.Table(1)
	t2, _ := db.Table(2)
	if t1.Len() != 2 || t2.Len() != 1 {
		t.Fatalf("lens = %d %d", t1.Len(), t2.Len())
	}
}

func TestInsertAutoCreatesTable(t *testing.T) {
	db := New()
	db.Insert([]core.Record{rec(9, 1, 1)})
	tbl, ok := db.Table(9)
	if !ok || tbl.Len() != 1 {
		t.Fatal("auto-created table missing")
	}
	if got := db.Tables(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("Tables = %v", got)
	}
}

func TestByTraceIDIndex(t *testing.T) {
	db := New()
	db.CreateTable(1, "t")
	db.Insert([]core.Record{rec(1, 5, 10), rec(1, 6, 20), rec(1, 5, 30)})
	tbl, _ := db.Table(1)
	got := tbl.ByTraceID(5)
	if len(got) != 2 || got[0].TimeNs != 10 || got[1].TimeNs != 30 {
		t.Fatalf("ByTraceID = %+v", got)
	}
	first, ok := tbl.FirstByTraceID(5)
	if !ok || first.TimeNs != 10 {
		t.Fatalf("First = %+v ok=%v", first, ok)
	}
	if _, ok := tbl.FirstByTraceID(99); ok {
		t.Fatal("missing id found")
	}
	ids := tbl.TraceIDs()
	if len(ids) != 2 || ids[0] != 5 || ids[1] != 6 {
		t.Fatalf("TraceIDs = %v", ids)
	}
}

func TestSkewAlignment(t *testing.T) {
	db := New()
	db.CreateTable(1, "remote")
	db.Insert([]core.Record{rec(1, 5, 1000)})
	db.SetSkew(1, 300)
	tbl, _ := db.Table(1)
	first, _ := tbl.FirstByTraceID(5)
	if first.TimeNs != 700 {
		t.Fatalf("aligned time = %d, want 700", first.TimeNs)
	}
	all := collectAligned(tbl)
	if all[0].TimeNs != 700 {
		t.Fatalf("aligned scan = %d", all[0].TimeNs)
	}
	// Raw data unchanged.
	if collect(tbl)[0].TimeNs != 1000 {
		t.Fatal("Scan must return raw timestamps")
	}
}

func TestIncomplete(t *testing.T) {
	db := New()
	db.CreateTable(1, "a")
	db.CreateTable(2, "b")
	db.Insert([]core.Record{rec(1, 10, 1), rec(1, 11, 2), rec(1, 12, 3), rec(2, 10, 4), rec(2, 12, 5)})
	a, _ := db.Table(1)
	b, _ := db.Table(2)
	missing := a.Incomplete(b)
	if len(missing) != 1 || missing[0] != 11 {
		t.Fatalf("Incomplete = %v", missing)
	}
	if got := b.Incomplete(a); len(got) != 0 {
		t.Fatalf("reverse Incomplete = %v", got)
	}
}

func TestHeartbeatsAndDeadAgents(t *testing.T) {
	db := New()
	db.Heartbeat("agent-1", 1000)
	db.Heartbeat("agent-2", 8000)
	dead := db.DeadAgents(10000, 3000)
	if len(dead) != 1 || dead[0] != "agent-1" {
		t.Fatalf("dead = %v", dead)
	}
	db.Heartbeat("agent-1", 9000)
	if got := db.DeadAgents(10000, 3000); len(got) != 0 {
		t.Fatalf("dead after refresh = %v", got)
	}
	if got := db.Agents(); len(got) != 2 {
		t.Fatalf("agents = %v", got)
	}
}

func TestScanYieldsCopies(t *testing.T) {
	db := New()
	db.CreateTable(1, "t")
	db.Insert([]core.Record{rec(1, 5, 10)})
	tbl, _ := db.Table(1)
	all := collect(tbl)
	all[0].TimeNs = 999
	if collect(tbl)[0].TimeNs != 10 {
		t.Fatal("Scan exposed internal storage")
	}
}
