package tracedb

import "testing"

// admit is a test shorthand: payload timestamps and degradation default to
// the interesting-case values each test overrides explicitly.
func admit(db *DB, agent string, epoch, seq uint64, records int, nowNs int64) BatchStatus {
	return db.AdmitBatch(agent, epoch, seq, records, nowNs, 0)
}

func ledger(t *testing.T, db *DB, agent string) AgentLedger {
	t.Helper()
	l, ok := db.Ledger(agent)
	if !ok {
		t.Fatalf("no ledger for %q", agent)
	}
	return l
}

// TestAdmitBatchEpochAdvanceFoldsGap: closing an epoch folds its
// outstanding sequence gap into MissingBatches, and the new epoch starts
// with fresh sequence state.
func TestAdmitBatchEpochAdvanceFoldsGap(t *testing.T) {
	db := New()
	if got := admit(db, "a", 1, 1, 5, 100); got != BatchFresh {
		t.Fatalf("epoch1 seq1: got %v, want BatchFresh", got)
	}
	// Seq 4 parks pending above the hwm; seqs 2 and 3 are the gap.
	if got := admit(db, "a", 1, 4, 5, 110); got != BatchFresh {
		t.Fatalf("epoch1 seq4: got %v, want BatchFresh", got)
	}
	l := ledger(t, db, "a")
	if l.MissingBatches != 2 || l.HighWaterSeq != 1 || l.PendingBatches != 1 {
		t.Fatalf("pre-advance ledger: missing=%d hwm=%d pending=%d, want 2/1/1",
			l.MissingBatches, l.HighWaterSeq, l.PendingBatches)
	}
	// The restarted incarnation presents epoch 2: the old gap is folded,
	// the new epoch's seq space restarts at 1 without a duplicate verdict.
	if got := admit(db, "a", 2, 1, 5, 120); got != BatchFresh {
		t.Fatalf("epoch2 seq1: got %v, want BatchFresh", got)
	}
	l = ledger(t, db, "a")
	if l.Epoch != 2 {
		t.Fatalf("epoch: got %d, want 2", l.Epoch)
	}
	if l.MissingBatches != 2 {
		t.Fatalf("missing after advance: got %d, want 2 (folded gap)", l.MissingBatches)
	}
	if l.HighWaterSeq != 1 || l.MaxSeq != 1 || l.PendingBatches != 0 {
		t.Fatalf("new-epoch seq state: hwm=%d max=%d pending=%d, want 1/1/0",
			l.HighWaterSeq, l.MaxSeq, l.PendingBatches)
	}
}

// TestAdmitBatchFencesZombie: stale-epoch batches are fenced every time
// they arrive, but their payload is counted once per seq, only for seqs
// the closed epoch never ingested — and a fenced gap seq moves from
// missing to fenced rather than double-counting the loss.
func TestAdmitBatchFencesZombie(t *testing.T) {
	db := New()
	admit(db, "a", 1, 1, 5, 100) // ingested below hwm
	admit(db, "a", 1, 4, 5, 110) // ingested, parked pending
	admit(db, "a", 2, 1, 5, 120) // lease advance: gap {2,3} folded
	// Zombie ships gap seq 2: fenced, payload counted, missing 2 -> 1.
	if got := admit(db, "a", 1, 2, 7, 90); got != BatchFenced {
		t.Fatalf("zombie seq2: got %v, want BatchFenced", got)
	}
	l := ledger(t, db, "a")
	if l.FencedBatches != 1 || l.FencedRecords != 7 || l.MissingBatches != 1 {
		t.Fatalf("after zombie seq2: fencedBatches=%d fencedRecords=%d missing=%d, want 1/7/1",
			l.FencedBatches, l.FencedRecords, l.MissingBatches)
	}
	// Zombie retries the same seq: fenced again, payload NOT re-counted.
	if got := admit(db, "a", 1, 2, 7, 91); got != BatchFenced {
		t.Fatalf("zombie retry seq2: got %v, want BatchFenced", got)
	}
	l = ledger(t, db, "a")
	if l.FencedBatches != 2 || l.FencedRecords != 7 || l.MissingBatches != 1 {
		t.Fatalf("after zombie retry: fencedBatches=%d fencedRecords=%d missing=%d, want 2/7/1",
			l.FencedBatches, l.FencedRecords, l.MissingBatches)
	}
	// Zombie re-ships seqs the old epoch already ingested (one below the
	// frozen hwm, one from the frozen pending set): fenced, no payload
	// counted — those records made it into the store the first time.
	if got := admit(db, "a", 1, 1, 5, 92); got != BatchFenced {
		t.Fatalf("zombie ingested seq1: got %v, want BatchFenced", got)
	}
	if got := admit(db, "a", 1, 4, 5, 93); got != BatchFenced {
		t.Fatalf("zombie pending seq4: got %v, want BatchFenced", got)
	}
	l = ledger(t, db, "a")
	if l.FencedBatches != 4 || l.FencedRecords != 7 {
		t.Fatalf("after ingested re-ships: fencedBatches=%d fencedRecords=%d, want 4/7",
			l.FencedBatches, l.FencedRecords)
	}
}

// TestAdmitBatchStaleHeartbeatIgnored: a zombie's bare heartbeat must not
// keep the dead incarnation looking alive or disturb any counter.
func TestAdmitBatchStaleHeartbeatIgnored(t *testing.T) {
	db := New()
	admit(db, "a", 1, 1, 5, 100)
	admit(db, "a", 2, 1, 5, 120)
	if got := db.AdmitBatch("a", 1, 0, 0, 999, 2); got != BatchFenced {
		t.Fatalf("stale heartbeat: got %v, want BatchFenced", got)
	}
	l := ledger(t, db, "a")
	if l.LastSeenNs != 120 {
		t.Fatalf("stale heartbeat advanced LastSeenNs to %d, want 120", l.LastSeenNs)
	}
	if l.Degraded != 0 {
		t.Fatalf("stale heartbeat set Degraded=%d, want 0", l.Degraded)
	}
	if l.FencedRecords != 0 {
		t.Fatalf("stale heartbeat counted %d fenced records, want 0", l.FencedRecords)
	}
	// A live-epoch heartbeat does advance liveness and degradation.
	if got := db.AdmitBatch("a", 2, 0, 0, 130, 1); got != BatchFresh {
		t.Fatalf("live heartbeat: got %v, want BatchFresh", got)
	}
	l = ledger(t, db, "a")
	if l.LastSeenNs != 130 || l.Degraded != 1 {
		t.Fatalf("live heartbeat: lastSeen=%d degraded=%d, want 130/1", l.LastSeenNs, l.Degraded)
	}
}

// TestAdmitBatchEpochZeroNeverFenced: epoch 0 means unleased (legacy wire
// versions, standalone agents); such traffic rides the normal dedup path
// even after a leased incarnation has been observed.
func TestAdmitBatchEpochZeroNeverFenced(t *testing.T) {
	db := New()
	if got := admit(db, "a", 0, 1, 5, 100); got != BatchFresh {
		t.Fatalf("unleased seq1: got %v, want BatchFresh", got)
	}
	if got := admit(db, "a", 0, 1, 5, 101); got != BatchDuplicate {
		t.Fatalf("unleased retry: got %v, want BatchDuplicate", got)
	}
	// A lease appears...
	if got := admit(db, "a", 3, 1, 5, 110); got != BatchFresh {
		t.Fatalf("leased seq1: got %v, want BatchFresh", got)
	}
	// ...and unleased traffic is still never fenced: it dedups against
	// the live epoch's sequence space.
	if got := admit(db, "a", 0, 2, 5, 120); got != BatchFresh {
		t.Fatalf("unleased seq2 after lease: got %v, want BatchFresh", got)
	}
	l := ledger(t, db, "a")
	if l.FencedBatches != 0 || l.FencedRecords != 0 {
		t.Fatalf("unleased traffic was fenced: batches=%d records=%d", l.FencedBatches, l.FencedRecords)
	}
	if l.HighWaterSeq != 2 {
		t.Fatalf("hwm: got %d, want 2", l.HighWaterSeq)
	}
}

// TestAdmitBatchDuplicateInLiveEpoch: plain transport retries inside one
// epoch still classify as duplicates, not fenced.
func TestAdmitBatchDuplicateInLiveEpoch(t *testing.T) {
	db := New()
	admit(db, "a", 1, 1, 5, 100)
	if got := admit(db, "a", 1, 1, 5, 101); got != BatchDuplicate {
		t.Fatalf("retry: got %v, want BatchDuplicate", got)
	}
	l := ledger(t, db, "a")
	if l.DupBatches != 1 || l.FencedBatches != 0 {
		t.Fatalf("dup=%d fenced=%d, want 1/0", l.DupBatches, l.FencedBatches)
	}
}
