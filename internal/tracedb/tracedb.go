// Package tracedb is the trace database the raw-data collector loads
// records into — the offline store the paper implements with InfluxDB: one
// table per tracepoint, records indexed by packet (trace) ID, plus the
// collector's agent-heartbeat ledger.
package tracedb

import (
	"fmt"
	"sort"
	"sync"

	"vnettracer/internal/core"
)

// DB is an in-memory trace database. It is safe for concurrent use; the
// collector inserts while analyses query.
type DB struct {
	mu         sync.RWMutex
	tables     map[uint32]*Table
	heartbeats map[string]int64
}

// Table holds all records from one tracepoint.
type Table struct {
	TPID uint32
	Name string
	// NodeSkewNs is the estimated clock offset of the node hosting this
	// tracepoint relative to the master (Cristian's algorithm); analyses
	// subtract it during timestamp alignment.
	NodeSkewNs int64

	recs      []core.Record
	byTraceID map[uint32][]int
}

// New returns an empty database.
func New() *DB {
	return &DB{
		tables:     make(map[uint32]*Table),
		heartbeats: make(map[string]int64),
	}
}

// CreateTable registers a tracepoint table. Creating an existing table is
// an error (tracepoint IDs must be unique per experiment).
func (db *DB) CreateTable(tpid uint32, name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[tpid]; dup {
		return nil, fmt.Errorf("tracedb: table %d already exists", tpid)
	}
	t := &Table{TPID: tpid, Name: name, byTraceID: make(map[uint32][]int)}
	db.tables[tpid] = t
	return t, nil
}

// Insert routes records to their tracepoint tables, creating tables on
// demand for unknown tracepoints.
func (db *DB) Insert(recs []core.Record) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for _, r := range recs {
		t, ok := db.tables[r.TPID]
		if !ok {
			t = &Table{TPID: r.TPID, Name: fmt.Sprintf("tp%d", r.TPID), byTraceID: make(map[uint32][]int)}
			db.tables[r.TPID] = t
		}
		t.byTraceID[r.TraceID] = append(t.byTraceID[r.TraceID], len(t.recs))
		t.recs = append(t.recs, r)
	}
}

// Table returns the table for a tracepoint.
func (db *DB) Table(tpid uint32) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tpid]
	return t, ok
}

// Tables lists all tracepoint IDs in ascending order.
func (db *DB) Tables() []uint32 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]uint32, 0, len(db.tables))
	for id := range db.tables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetSkew records the clock offset correction for a tracepoint's node.
func (db *DB) SetSkew(tpid uint32, skewNs int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[tpid]; ok {
		t.NodeSkewNs = skewNs
	}
}

// Heartbeat records that an agent reported in at time nowNs. The collector
// doubles as the health monitor (paper Section III-C: "it also acts as a
// heartbeat monitor").
func (db *DB) Heartbeat(agent string, nowNs int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.heartbeats[agent] = nowNs
}

// DeadAgents lists agents not heard from within timeout of nowNs.
func (db *DB) DeadAgents(nowNs, timeoutNs int64) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []string
	for agent, last := range db.heartbeats {
		if nowNs-last > timeoutNs {
			out = append(out, agent)
		}
	}
	sort.Strings(out)
	return out
}

// Agents lists all agents that ever heartbeated.
func (db *DB) Agents() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.heartbeats))
	for a := range db.heartbeats {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Len returns the record count.
func (t *Table) Len() int { return len(t.recs) }

// All returns a copy of every record in insertion order.
func (t *Table) All() []core.Record {
	out := make([]core.Record, len(t.recs))
	copy(out, t.recs)
	return out
}

// AlignedAll returns all records with timestamps corrected by the node
// skew ("timestamp alignment for the clock skew", Section III-C).
func (t *Table) AlignedAll() []core.Record {
	out := t.All()
	for i := range out {
		out[i].TimeNs = uint64(int64(out[i].TimeNs) - t.NodeSkewNs)
	}
	return out
}

// ByTraceID returns all records for one packet ID.
func (t *Table) ByTraceID(id uint32) []core.Record {
	idxs := t.byTraceID[id]
	out := make([]core.Record, len(idxs))
	for i, idx := range idxs {
		out[i] = t.recs[idx]
	}
	return out
}

// FirstByTraceID returns the first record for a packet ID, with timestamp
// alignment applied.
func (t *Table) FirstByTraceID(id uint32) (core.Record, bool) {
	idxs := t.byTraceID[id]
	if len(idxs) == 0 {
		return core.Record{}, false
	}
	r := t.recs[idxs[0]]
	r.TimeNs = uint64(int64(r.TimeNs) - t.NodeSkewNs)
	return r, true
}

// TraceIDs returns the distinct packet IDs seen at this tracepoint.
func (t *Table) TraceIDs() []uint32 {
	out := make([]uint32, 0, len(t.byTraceID))
	for id := range t.byTraceID {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Incomplete reports trace IDs seen at this table but missing from other —
// the "identifying incomplete records" data-cleaning step, and the raw
// material of the packet-loss metric.
func (t *Table) Incomplete(other *Table) []uint32 {
	var out []uint32
	for id := range t.byTraceID {
		if _, ok := other.byTraceID[id]; !ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
