// Package tracedb is the trace database the raw-data collector loads
// records into — the offline store the paper implements with InfluxDB: one
// table per tracepoint, records indexed by packet (trace) ID, plus the
// collector's agent-heartbeat ledger.
//
// The store is sharded for the ingest path: the DB-level lock guards only
// the table directory, each Table carries its own RWMutex, and the
// heartbeat ledger has a separate lock, so concurrent agents inserting
// into different tracepoints never serialize against each other or
// against analyses reading other tables.
package tracedb

import (
	"fmt"
	"sort"
	"sync"

	"vnettracer/internal/core"
)

// DB is an in-memory trace database. It is safe for concurrent use; the
// collector inserts while analyses query.
type DB struct {
	// mu guards only the table directory; record data is guarded by each
	// table's own lock.
	mu     sync.RWMutex
	tables map[uint32]*Table

	hbMu   sync.Mutex
	ledger map[string]*agentLedger
}

// agentLedger is the collector's per-agent delivery bookkeeping: the
// heartbeat timestamp plus the batch-sequence state that turns the
// at-least-once transport into exactly-once ingest.
type agentLedger struct {
	lastSeenNs int64
	// hwm is the contiguous high-water mark: every sequenced batch with
	// Seq <= hwm has been ingested.
	hwm uint64
	// maxSeq is the highest sequence number ever observed.
	maxSeq uint64
	// pending holds ingested seqs above hwm (async ingest workers can
	// process an agent's batches out of order).
	pending map[uint64]struct{}
	dups    uint64

	// epoch is the newest registration lease observed for this agent.
	// Sequence numbers restart from 1 with each epoch (a restarted agent
	// is a fresh process), so on an epoch advance the old epoch's seq
	// state is snapshotted aside and the counters reset.
	epoch uint64
	// prevMaxSeq/prevHwm/prevPending freeze the previous epoch's ingest
	// state at the fence point: a stale-epoch batch is checked against
	// them so a zombie re-shipping an already-ingested batch is not
	// double-counted as fenced payload.
	prevMaxSeq  uint64
	prevHwm     uint64
	prevPending map[uint64]struct{}
	// prevFenced records previous-epoch seqs already counted into
	// fencedRecords, so zombie retries of the same batch count once.
	prevFenced map[uint64]struct{}
	// missingPrior accumulates sequence gaps from closed epochs; a gap
	// batch that later surfaces fenced is moved from missing to fenced.
	missingPrior uint64
	// fencedBatches counts every stale-epoch sequenced arrival;
	// fencedRecords counts the record payload of first-time fenced
	// batches that were never ingested (exact confirmed-fenced loss).
	fencedBatches uint64
	fencedRecords uint64
	// degraded is the agent's last self-reported degradation level.
	degraded uint8
}

// markSeq records a nonzero batch seq for the current epoch and reports
// whether it is fresh. Callers hold db.hbMu.
func (l *agentLedger) markSeq(seq uint64) bool {
	if seq <= l.hwm {
		l.dups++
		return false
	}
	if _, seen := l.pending[seq]; seen {
		l.dups++
		return false
	}
	l.pending[seq] = struct{}{}
	if seq > l.maxSeq {
		l.maxSeq = seq
	}
	for {
		if _, ok := l.pending[l.hwm+1]; !ok {
			break
		}
		delete(l.pending, l.hwm+1)
		l.hwm++
	}
	return true
}

// AgentLedger is a snapshot of one agent's delivery ledger.
type AgentLedger struct {
	// LastSeenNs is the latest heartbeat timestamp on the agent's clock.
	LastSeenNs int64
	// HighWaterSeq is the contiguous ingest prefix: every batch sequence
	// number <= HighWaterSeq has been ingested exactly once.
	HighWaterSeq uint64
	// MaxSeq is the highest batch sequence number observed so far.
	MaxSeq uint64
	// DupBatches counts batches dropped because their sequence number had
	// already been ingested (transport retries after a lost reply).
	DupBatches uint64
	// PendingBatches counts seqs ingested above the high-water mark —
	// reordering by concurrent ingest workers, usually transient.
	PendingBatches int
	// MissingBatches counts sequence-number gaps: batches the agent
	// stamped but the collector never ingested. While the agent still
	// spools them this is in-flight retry backlog; once the agent evicts
	// them it is confirmed loss. Gaps from closed epochs are included;
	// a gap batch that later arrives fenced moves to FencedRecords.
	MissingBatches uint64
	// Epoch is the newest registration lease observed for the agent.
	// Zero means the agent never presented a lease (legacy wire
	// versions, standalone agents); such agents are never fenced.
	Epoch uint64
	// FencedBatches counts stale-epoch sequenced batches rejected by
	// the epoch fence (every arrival, including zombie retries);
	// FencedRecords counts the payload of first-time fenced batches
	// that were never ingested — confirmed records lost to fencing.
	FencedBatches uint64
	FencedRecords uint64
	// Degraded is the agent's last self-reported degradation level:
	// 0 full capture, 1 stretched flush, 2 ring sampling.
	Degraded uint8
}

// Table holds all records from one tracepoint. All methods are safe for
// concurrent use with DB.Insert.
type Table struct {
	TPID uint32
	Name string

	mu sync.RWMutex
	// skewNs is the estimated clock offset of the node hosting this
	// tracepoint relative to the master (Cristian's algorithm); analyses
	// subtract it during timestamp alignment.
	skewNs    int64
	recs      []core.Record
	byTraceID map[uint32][]int
}

// New returns an empty database.
func New() *DB {
	return &DB{
		tables: make(map[uint32]*Table),
		ledger: make(map[string]*agentLedger),
	}
}

// CreateTable registers a tracepoint table. Creating an existing table is
// an error (tracepoint IDs must be unique per experiment).
func (db *DB) CreateTable(tpid uint32, name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[tpid]; dup {
		return nil, fmt.Errorf("tracedb: table %d already exists", tpid)
	}
	t := &Table{TPID: tpid, Name: name, byTraceID: make(map[uint32][]int)}
	db.tables[tpid] = t
	return t, nil
}

// Insert routes records to their tracepoint tables, creating tables on
// demand for unknown tracepoints. Records usually arrive grouped by
// tracepoint, so runs of the same TPID are appended under one table lock.
func (db *DB) Insert(recs []core.Record) {
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].TPID == recs[i].TPID {
			j++
		}
		db.table(recs[i].TPID).append(recs[i:j])
		i = j
	}
}

// table returns the table for tpid, creating it if needed.
func (db *DB) table(tpid uint32) *Table {
	db.mu.RLock()
	t, ok := db.tables[tpid]
	db.mu.RUnlock()
	if ok {
		return t
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[tpid]; ok {
		return t
	}
	t = &Table{TPID: tpid, Name: fmt.Sprintf("tp%d", tpid), byTraceID: make(map[uint32][]int)}
	db.tables[tpid] = t
	return t
}

// Table returns the table for a tracepoint.
func (db *DB) Table(tpid uint32) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tpid]
	return t, ok
}

// Tables lists all tracepoint IDs in ascending order.
func (db *DB) Tables() []uint32 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]uint32, 0, len(db.tables))
	for id := range db.tables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetSkew records the clock offset correction for a tracepoint's node.
func (db *DB) SetSkew(tpid uint32, skewNs int64) {
	if t, ok := db.Table(tpid); ok {
		t.mu.Lock()
		t.skewNs = skewNs
		t.mu.Unlock()
	}
}

// ledgerEntry returns (creating if needed) the ledger for an agent.
// Callers must hold db.hbMu.
func (db *DB) ledgerEntry(agent string) *agentLedger {
	l, ok := db.ledger[agent]
	if !ok {
		l = &agentLedger{pending: make(map[uint64]struct{})}
		db.ledger[agent] = l
	}
	return l
}

// Heartbeat records that an agent reported in at time nowNs. The collector
// doubles as the health monitor (paper Section III-C: "it also acts as a
// heartbeat monitor"). The ledger keeps the maximum: with concurrent
// ingest workers (or an agent re-shipping spooled batches stamped at their
// original drain time) batches arrive out of order, and an older timestamp
// must not regress the last-seen time and falsely kill a live agent.
func (db *DB) Heartbeat(agent string, nowNs int64) {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	l := db.ledgerEntry(agent)
	if nowNs > l.lastSeenNs {
		l.lastSeenNs = nowNs
	}
}

// MarkBatchSeq records a batch sequence number for an agent and reports
// whether the batch is fresh (false = already ingested, drop it). Seq 0
// means "unsequenced" (bare heartbeats, pre-Seq agents) and is always
// fresh — those batches carry no replayable payload. The ledger tolerates
// out-of-order arrival: seqs above the contiguous high-water mark park in
// a pending set until the gap below them fills.
func (db *DB) MarkBatchSeq(agent string, seq uint64) bool {
	if seq == 0 {
		return true
	}
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	return db.ledgerEntry(agent).markSeq(seq)
}

// BatchStatus classifies a batch presented to AdmitBatch.
type BatchStatus int

const (
	// BatchFresh: first sight of this (epoch, seq) — insert the records.
	BatchFresh BatchStatus = iota
	// BatchDuplicate: the seq was already ingested in the current epoch
	// (transport retry) — drop the payload, the heartbeat still counted.
	BatchDuplicate
	// BatchFenced: the batch carries a stale epoch (a zombie pre-restart
	// process) — drop the payload and do not advance liveness; the fence
	// keeps exactly-once accounting owned by the live incarnation.
	BatchFenced
)

// AdmitBatch is the epoch-aware front door to the ledger: one call
// classifies a batch (fresh / duplicate / fenced), advances the epoch on
// a newer lease, updates the heartbeat for live-epoch traffic, and keeps
// the fenced-loss counters exact. records is the batch's payload size;
// nowNs its heartbeat timestamp; degraded the agent's self-reported
// degradation level.
//
// Epoch rules: epoch 0 means unleased and is compared equal to itself
// only — an unleased agent is never fenced. A batch with a newer epoch
// than the ledger's closes the old epoch: its outstanding sequence gap is
// folded into MissingBatches and its ingest state is frozen so stale
// stragglers dedup correctly. A batch with an older epoch is fenced;
// fenced payload counts once per seq (zombie retries don't inflate it),
// and a fenced seq that was part of the closed epoch's gap moves from
// missing to fenced. Fenced-payload exactness is guaranteed for the
// immediately previous epoch (one live restart); older zombies are still
// fenced but counted conservatively.
func (db *DB) AdmitBatch(agent string, epoch, seq uint64, records int, nowNs int64, degraded uint8) BatchStatus {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	l := db.ledgerEntry(agent)
	if epoch > l.epoch {
		l.missingPrior += l.maxSeq - l.hwm - uint64(len(l.pending))
		l.prevMaxSeq = l.maxSeq
		l.prevHwm = l.hwm
		l.prevPending = l.pending
		l.prevFenced = make(map[uint64]struct{})
		l.hwm, l.maxSeq = 0, 0
		l.pending = make(map[uint64]struct{})
		l.epoch = epoch
	}
	if epoch != 0 && epoch < l.epoch {
		if seq == 0 {
			// Stale bare heartbeat: a zombie must not keep the agent
			// looking alive or perturb any counter.
			return BatchFenced
		}
		l.fencedBatches++
		ingested := seq <= l.prevHwm
		if !ingested && l.prevPending != nil {
			_, ingested = l.prevPending[seq]
		}
		if !ingested {
			if l.prevFenced == nil {
				l.prevFenced = make(map[uint64]struct{})
			}
			if _, counted := l.prevFenced[seq]; !counted {
				l.prevFenced[seq] = struct{}{}
				l.fencedRecords += uint64(records)
				if seq <= l.prevMaxSeq && l.missingPrior > 0 {
					l.missingPrior--
				}
			}
		}
		return BatchFenced
	}
	if nowNs > l.lastSeenNs {
		l.lastSeenNs = nowNs
	}
	l.degraded = degraded
	if seq == 0 {
		return BatchFresh
	}
	if !l.markSeq(seq) {
		return BatchDuplicate
	}
	return BatchFresh
}

// Ledger returns a snapshot of one agent's delivery ledger.
func (db *DB) Ledger(agent string) (AgentLedger, bool) {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	l, ok := db.ledger[agent]
	if !ok {
		return AgentLedger{}, false
	}
	return AgentLedger{
		LastSeenNs:     l.lastSeenNs,
		HighWaterSeq:   l.hwm,
		MaxSeq:         l.maxSeq,
		DupBatches:     l.dups,
		PendingBatches: len(l.pending),
		MissingBatches: l.missingPrior + l.maxSeq - l.hwm - uint64(len(l.pending)),
		Epoch:          l.epoch,
		FencedBatches:  l.fencedBatches,
		FencedRecords:  l.fencedRecords,
		Degraded:       l.degraded,
	}, true
}

// DeadAgents lists agents not heard from within timeout of nowNs.
func (db *DB) DeadAgents(nowNs, timeoutNs int64) []string {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	var out []string
	for agent, l := range db.ledger {
		if nowNs-l.lastSeenNs > timeoutNs {
			out = append(out, agent)
		}
	}
	sort.Strings(out)
	return out
}

// Agents lists all agents that ever heartbeated.
func (db *DB) Agents() []string {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	out := make([]string, 0, len(db.ledger))
	for a := range db.ledger {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// append adds a run of records (all with this table's TPID) under the
// table lock.
func (t *Table) append(recs []core.Record) {
	t.mu.Lock()
	for _, r := range recs {
		t.byTraceID[r.TraceID] = append(t.byTraceID[r.TraceID], len(t.recs))
		t.recs = append(t.recs, r)
	}
	t.mu.Unlock()
}

// Skew returns the clock offset correction applied during alignment.
func (t *Table) Skew() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.skewNs
}

// Len returns the record count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.recs)
}

// snapshot returns the current record prefix and skew without copying.
// Records are append-only and never mutated in place, so the returned
// slice header stays valid and immutable even while inserts continue.
func (t *Table) snapshot() ([]core.Record, int64) {
	t.mu.RLock()
	recs, skew := t.recs, t.skewNs
	t.mu.RUnlock()
	return recs, skew
}

// Scan streams every record in insertion order until fn returns false. It
// takes a zero-copy snapshot under the lock and iterates outside it, so
// long analyses never block inserts; records inserted after Scan starts
// are not visited.
func (t *Table) Scan(fn func(core.Record) bool) {
	recs, _ := t.snapshot()
	for _, r := range recs {
		if !fn(r) {
			return
		}
	}
}

// alignNs applies the skew correction to a timestamp, clamping at zero: a
// positive skew larger than an early record's timestamp must not wrap the
// unsigned time around to a huge value (which would sort the record after
// everything else and wreck latency math).
func alignNs(timeNs uint64, skewNs int64) uint64 {
	v := int64(timeNs) - skewNs
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// ScanAligned streams every record with timestamps corrected by the node
// skew ("timestamp alignment for the clock skew", Section III-C), until fn
// returns false.
func (t *Table) ScanAligned(fn func(core.Record) bool) {
	recs, skew := t.snapshot()
	for _, r := range recs {
		r.TimeNs = alignNs(r.TimeNs, skew)
		if !fn(r) {
			return
		}
	}
}

// All returns a copy of every record in insertion order. Prefer Scan for
// one-pass analyses; All materializes the whole table.
func (t *Table) All() []core.Record {
	recs, _ := t.snapshot()
	out := make([]core.Record, len(recs))
	copy(out, recs)
	return out
}

// AlignedAll returns all records with timestamps corrected by the node
// skew. Prefer ScanAligned for one-pass analyses.
func (t *Table) AlignedAll() []core.Record {
	recs, skew := t.snapshot()
	out := make([]core.Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].TimeNs = alignNs(out[i].TimeNs, skew)
	}
	return out
}

// ByTraceID returns all records for one packet ID.
func (t *Table) ByTraceID(id uint32) []core.Record {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idxs := t.byTraceID[id]
	out := make([]core.Record, len(idxs))
	for i, idx := range idxs {
		out[i] = t.recs[idx]
	}
	return out
}

// FirstByTraceID returns the first record for a packet ID, with timestamp
// alignment applied.
func (t *Table) FirstByTraceID(id uint32) (core.Record, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idxs := t.byTraceID[id]
	if len(idxs) == 0 {
		return core.Record{}, false
	}
	r := t.recs[idxs[0]]
	r.TimeNs = alignNs(r.TimeNs, t.skewNs)
	return r, true
}

// TraceIDs returns the distinct packet IDs seen at this tracepoint.
func (t *Table) TraceIDs() []uint32 {
	t.mu.RLock()
	out := make([]uint32, 0, len(t.byTraceID))
	for id := range t.byTraceID {
		out = append(out, id)
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumTraceIDs returns the count of distinct packet IDs without building
// the sorted slice.
func (t *Table) NumTraceIDs() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byTraceID)
}

// Incomplete reports trace IDs seen at this table but missing from other —
// the "identifying incomplete records" data-cleaning step, and the raw
// material of the packet-loss metric. The two tables are locked one at a
// time (never nested), so Incomplete(a,b) and Incomplete(b,a) can run
// concurrently with inserts on both.
func (t *Table) Incomplete(other *Table) []uint32 {
	ids := t.TraceIDs()
	other.mu.RLock()
	defer other.mu.RUnlock()
	var out []uint32
	for _, id := range ids {
		if _, ok := other.byTraceID[id]; !ok {
			out = append(out, id)
		}
	}
	return out // TraceIDs is sorted, so out is too
}
