// Package tracedb is the trace database the raw-data collector loads
// records into — the offline store the paper implements with InfluxDB: one
// table per tracepoint, records indexed by packet (trace) ID, plus the
// collector's agent-heartbeat ledger.
//
// The store is sharded for the ingest path: the DB-level lock guards only
// the table directory, each Table carries its own RWMutex, and the
// heartbeat ledger has a separate lock, so concurrent agents inserting
// into different tracepoints never serialize against each other or
// against analyses reading other tables.
package tracedb

import (
	"fmt"
	"sort"
	"sync"

	"vnettracer/internal/core"
)

// DB is an in-memory trace database. It is safe for concurrent use; the
// collector inserts while analyses query.
type DB struct {
	// mu guards only the table directory; record data is guarded by each
	// table's own lock.
	mu     sync.RWMutex
	tables map[uint32]*Table

	hbMu       sync.Mutex
	heartbeats map[string]int64
}

// Table holds all records from one tracepoint. All methods are safe for
// concurrent use with DB.Insert.
type Table struct {
	TPID uint32
	Name string

	mu sync.RWMutex
	// skewNs is the estimated clock offset of the node hosting this
	// tracepoint relative to the master (Cristian's algorithm); analyses
	// subtract it during timestamp alignment.
	skewNs    int64
	recs      []core.Record
	byTraceID map[uint32][]int
}

// New returns an empty database.
func New() *DB {
	return &DB{
		tables:     make(map[uint32]*Table),
		heartbeats: make(map[string]int64),
	}
}

// CreateTable registers a tracepoint table. Creating an existing table is
// an error (tracepoint IDs must be unique per experiment).
func (db *DB) CreateTable(tpid uint32, name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[tpid]; dup {
		return nil, fmt.Errorf("tracedb: table %d already exists", tpid)
	}
	t := &Table{TPID: tpid, Name: name, byTraceID: make(map[uint32][]int)}
	db.tables[tpid] = t
	return t, nil
}

// Insert routes records to their tracepoint tables, creating tables on
// demand for unknown tracepoints. Records usually arrive grouped by
// tracepoint, so runs of the same TPID are appended under one table lock.
func (db *DB) Insert(recs []core.Record) {
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].TPID == recs[i].TPID {
			j++
		}
		db.table(recs[i].TPID).append(recs[i:j])
		i = j
	}
}

// table returns the table for tpid, creating it if needed.
func (db *DB) table(tpid uint32) *Table {
	db.mu.RLock()
	t, ok := db.tables[tpid]
	db.mu.RUnlock()
	if ok {
		return t
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[tpid]; ok {
		return t
	}
	t = &Table{TPID: tpid, Name: fmt.Sprintf("tp%d", tpid), byTraceID: make(map[uint32][]int)}
	db.tables[tpid] = t
	return t
}

// Table returns the table for a tracepoint.
func (db *DB) Table(tpid uint32) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tpid]
	return t, ok
}

// Tables lists all tracepoint IDs in ascending order.
func (db *DB) Tables() []uint32 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]uint32, 0, len(db.tables))
	for id := range db.tables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetSkew records the clock offset correction for a tracepoint's node.
func (db *DB) SetSkew(tpid uint32, skewNs int64) {
	if t, ok := db.Table(tpid); ok {
		t.mu.Lock()
		t.skewNs = skewNs
		t.mu.Unlock()
	}
}

// Heartbeat records that an agent reported in at time nowNs. The collector
// doubles as the health monitor (paper Section III-C: "it also acts as a
// heartbeat monitor").
func (db *DB) Heartbeat(agent string, nowNs int64) {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	db.heartbeats[agent] = nowNs
}

// DeadAgents lists agents not heard from within timeout of nowNs.
func (db *DB) DeadAgents(nowNs, timeoutNs int64) []string {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	var out []string
	for agent, last := range db.heartbeats {
		if nowNs-last > timeoutNs {
			out = append(out, agent)
		}
	}
	sort.Strings(out)
	return out
}

// Agents lists all agents that ever heartbeated.
func (db *DB) Agents() []string {
	db.hbMu.Lock()
	defer db.hbMu.Unlock()
	out := make([]string, 0, len(db.heartbeats))
	for a := range db.heartbeats {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// append adds a run of records (all with this table's TPID) under the
// table lock.
func (t *Table) append(recs []core.Record) {
	t.mu.Lock()
	for _, r := range recs {
		t.byTraceID[r.TraceID] = append(t.byTraceID[r.TraceID], len(t.recs))
		t.recs = append(t.recs, r)
	}
	t.mu.Unlock()
}

// Skew returns the clock offset correction applied during alignment.
func (t *Table) Skew() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.skewNs
}

// Len returns the record count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.recs)
}

// snapshot returns the current record prefix and skew without copying.
// Records are append-only and never mutated in place, so the returned
// slice header stays valid and immutable even while inserts continue.
func (t *Table) snapshot() ([]core.Record, int64) {
	t.mu.RLock()
	recs, skew := t.recs, t.skewNs
	t.mu.RUnlock()
	return recs, skew
}

// Scan streams every record in insertion order until fn returns false. It
// takes a zero-copy snapshot under the lock and iterates outside it, so
// long analyses never block inserts; records inserted after Scan starts
// are not visited.
func (t *Table) Scan(fn func(core.Record) bool) {
	recs, _ := t.snapshot()
	for _, r := range recs {
		if !fn(r) {
			return
		}
	}
}

// ScanAligned streams every record with timestamps corrected by the node
// skew ("timestamp alignment for the clock skew", Section III-C), until fn
// returns false.
func (t *Table) ScanAligned(fn func(core.Record) bool) {
	recs, skew := t.snapshot()
	for _, r := range recs {
		r.TimeNs = uint64(int64(r.TimeNs) - skew)
		if !fn(r) {
			return
		}
	}
}

// All returns a copy of every record in insertion order. Prefer Scan for
// one-pass analyses; All materializes the whole table.
func (t *Table) All() []core.Record {
	recs, _ := t.snapshot()
	out := make([]core.Record, len(recs))
	copy(out, recs)
	return out
}

// AlignedAll returns all records with timestamps corrected by the node
// skew. Prefer ScanAligned for one-pass analyses.
func (t *Table) AlignedAll() []core.Record {
	recs, skew := t.snapshot()
	out := make([]core.Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].TimeNs = uint64(int64(out[i].TimeNs) - skew)
	}
	return out
}

// ByTraceID returns all records for one packet ID.
func (t *Table) ByTraceID(id uint32) []core.Record {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idxs := t.byTraceID[id]
	out := make([]core.Record, len(idxs))
	for i, idx := range idxs {
		out[i] = t.recs[idx]
	}
	return out
}

// FirstByTraceID returns the first record for a packet ID, with timestamp
// alignment applied.
func (t *Table) FirstByTraceID(id uint32) (core.Record, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	idxs := t.byTraceID[id]
	if len(idxs) == 0 {
		return core.Record{}, false
	}
	r := t.recs[idxs[0]]
	r.TimeNs = uint64(int64(r.TimeNs) - t.skewNs)
	return r, true
}

// TraceIDs returns the distinct packet IDs seen at this tracepoint.
func (t *Table) TraceIDs() []uint32 {
	t.mu.RLock()
	out := make([]uint32, 0, len(t.byTraceID))
	for id := range t.byTraceID {
		out = append(out, id)
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumTraceIDs returns the count of distinct packet IDs without building
// the sorted slice.
func (t *Table) NumTraceIDs() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.byTraceID)
}

// Incomplete reports trace IDs seen at this table but missing from other —
// the "identifying incomplete records" data-cleaning step, and the raw
// material of the packet-loss metric. The two tables are locked one at a
// time (never nested), so Incomplete(a,b) and Incomplete(b,a) can run
// concurrently with inserts on both.
func (t *Table) Incomplete(other *Table) []uint32 {
	ids := t.TraceIDs()
	other.mu.RLock()
	defer other.mu.RUnlock()
	var out []uint32
	for _, id := range ids {
		if _, ok := other.byTraceID[id]; !ok {
			out = append(out, id)
		}
	}
	return out // TraceIDs is sorted, so out is too
}
