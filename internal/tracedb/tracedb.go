// Package tracedb is the trace database the raw-data collector loads
// records into — the offline store the paper implements with InfluxDB: one
// table per tracepoint, plus the collector's agent-heartbeat ledger.
//
// Storage is an append-only, time-partitioned segment store. Each table
// keeps a mutable in-memory head segment of raw records; when the head
// crosses the configured segment size it is sealed into an immutable,
// compressed Extent (delta-of-delta timestamps, zigzag-varint field
// deltas, a per-extent flow dictionary — see codec.go), optionally
// spilled to a data directory, and eventually evicted whole by the
// retention policy. Queries stream sealed extents then the head in
// insertion order; clock-skew alignment is applied per segment at read
// time.
//
// The store is sharded for the ingest path: the DB-level lock guards only
// the table directory, each Table carries its own RWMutex, and the
// heartbeat ledger has a separate lock, so concurrent agents inserting
// into different tracepoints never serialize against each other or
// against analyses reading other tables.
package tracedb

import (
	"fmt"
	"sort"
	"sync"

	"vnettracer/internal/core"
)

// DefaultSegmentBytes is the head size (in raw record bytes) at which a
// table seals its head into a compressed extent.
const DefaultSegmentBytes = 256 * 1024

// Config tunes the segment store. The zero value gives an in-memory store
// with the default segment size and no retention limit — the behavior New
// provides.
type Config struct {
	// SegmentBytes is the raw-record byte size at which a table's head
	// segment seals. Zero or negative means DefaultSegmentBytes. Seals
	// happen at batch-run boundaries, so a head can overshoot by up to
	// one insert run.
	SegmentBytes int
	// DataDir, when set, spills every sealed extent to this directory and
	// keeps only extent metadata (count, time range, bloom filter)
	// resident. Files are written temp-then-rename, so a crash never
	// leaves a torn extent under a final name.
	DataDir string
	// RetainBytes bounds the sealed store per table (compressed bytes,
	// resident or spilled). When exceeded, whole extents are evicted
	// oldest-first; the head is never evicted. Zero means keep forever.
	RetainBytes int64
}

func (c Config) withDefaults() Config {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = DefaultSegmentBytes
	}
	return c
}

// DB is a trace database. It is safe for concurrent use; the collector
// inserts while analyses query.
type DB struct {
	cfg Config

	// mu guards only the table directory; record data is guarded by each
	// table's own lock.
	mu     sync.RWMutex
	tables map[uint32]*Table

	hbMu   sync.Mutex
	ledger map[string]*agentLedger
}

// New returns an empty in-memory database with default segment sizing and
// no retention limit.
func New() *DB { return NewWith(Config{}) }

// NewWith returns an empty database with the given storage configuration.
// When the config has a data directory, orphaned *.tmp files from a crash
// mid-spill are swept on the way in (the rename never landed, so they are
// garbage no query or recovery will ever reference).
func NewWith(cfg Config) *DB {
	cfg = cfg.withDefaults()
	if cfg.DataDir != "" {
		sweepTmpFiles(cfg.DataDir)
	}
	return &DB{
		cfg:    cfg,
		tables: make(map[uint32]*Table),
		ledger: make(map[string]*agentLedger),
	}
}

// Config returns the store's effective configuration.
func (db *DB) Config() Config { return db.cfg }

// CreateTable registers a tracepoint table. Creating an existing table is
// an error (tracepoint IDs must be unique per experiment).
func (db *DB) CreateTable(tpid uint32, name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, dup := db.tables[tpid]; dup {
		return nil, fmt.Errorf("tracedb: table %d already exists", tpid)
	}
	t := newTable(db, tpid, name)
	db.tables[tpid] = t
	return t, nil
}

// Insert routes records to their tracepoint tables, creating tables on
// demand for unknown tracepoints. Records usually arrive grouped by
// tracepoint, so runs of the same TPID are appended under one table lock;
// segment seals happen only at run boundaries, keeping extents batch
// aligned.
func (db *DB) Insert(recs []core.Record) {
	for i := 0; i < len(recs); {
		j := i + 1
		for j < len(recs) && recs[j].TPID == recs[i].TPID {
			j++
		}
		db.table(recs[i].TPID).append(recs[i:j])
		i = j
	}
}

// table returns the table for tpid, creating it if needed.
func (db *DB) table(tpid uint32) *Table {
	db.mu.RLock()
	t, ok := db.tables[tpid]
	db.mu.RUnlock()
	if ok {
		return t
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if t, ok := db.tables[tpid]; ok {
		return t
	}
	t = newTable(db, tpid, fmt.Sprintf("tp%d", tpid))
	db.tables[tpid] = t
	return t
}

// Table returns the table for a tracepoint.
func (db *DB) Table(tpid uint32) (*Table, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[tpid]
	return t, ok
}

// Tables lists all tracepoint IDs in ascending order.
func (db *DB) Tables() []uint32 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]uint32, 0, len(db.tables))
	for id := range db.tables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetSkew records the clock offset correction for a tracepoint's node.
func (db *DB) SetSkew(tpid uint32, skewNs int64) {
	if t, ok := db.Table(tpid); ok {
		t.mu.Lock()
		t.skewNs = skewNs
		t.mu.Unlock()
	}
}

// SealAll seals every table's head segment (e.g. before shutdown, so a
// data directory holds the complete history).
func (db *DB) SealAll() {
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	for _, t := range tables {
		t.Seal()
	}
}

// StorageStats is a snapshot of one table's (or, aggregated, a whole
// store's) segment accounting.
type StorageStats struct {
	// TPID and Name identify the table; zero/empty in aggregated totals.
	TPID uint32
	Name string

	// HeadRecords and SealedRecords partition the live record count.
	HeadRecords   uint64
	SealedRecords uint64
	// Extents is the sealed segment count; SpilledExtents of those live
	// on disk.
	Extents        int
	SpilledExtents int

	// HeadBytes is the raw size of the mutable head (records × 48).
	HeadBytes uint64
	// SealedRawBytes is what the sealed records would occupy uncompressed.
	SealedRawBytes uint64
	// SealedResidentBytes is compressed extent bytes held in memory;
	// SpilledBytes is compressed extent bytes on disk.
	SealedResidentBytes uint64
	SpilledBytes        uint64
	// ResidentBytes approximates the table's total in-memory footprint:
	// head + resident blobs + per-extent metadata (bloom filters etc.).
	ResidentBytes uint64

	// EvictedRecords/EvictedExtents count retention evictions since the
	// table was created. ReadErrors counts extent reads that failed
	// mid-query (the query skipped the extent).
	EvictedRecords uint64
	EvictedExtents uint64
	ReadErrors     uint64

	// SpillErrors counts sealed extents that failed to write to the data
	// directory (the blob stayed resident, so nothing was lost in memory
	// — but the extent is not on disk and a crash would lose it).
	// LastSpillError is the most recent failure's message, "" when none;
	// aggregated stats keep the first non-empty one.
	SpillErrors    uint64
	LastSpillError string
}

// Records returns the live record count in the snapshot.
func (s StorageStats) Records() uint64 { return s.HeadRecords + s.SealedRecords }

// StoredBytes returns the compressed sealed size, resident plus spilled.
func (s StorageStats) StoredBytes() uint64 { return s.SealedResidentBytes + s.SpilledBytes }

// CompressionRatio is raw sealed bytes over compressed sealed bytes
// (e.g. 5.3 means sealed records take 5.3× less space than the flat
// store would use); zero when nothing has sealed.
func (s StorageStats) CompressionRatio() float64 {
	stored := s.StoredBytes()
	if stored == 0 {
		return 0
	}
	return float64(s.SealedRawBytes) / float64(stored)
}

// Add merges another table's stats into an aggregate — also the way
// cluster tooling folds per-collector storage totals into one view.
func (s *StorageStats) Add(o StorageStats) {
	s.HeadRecords += o.HeadRecords
	s.SealedRecords += o.SealedRecords
	s.Extents += o.Extents
	s.SpilledExtents += o.SpilledExtents
	s.HeadBytes += o.HeadBytes
	s.SealedRawBytes += o.SealedRawBytes
	s.SealedResidentBytes += o.SealedResidentBytes
	s.SpilledBytes += o.SpilledBytes
	s.ResidentBytes += o.ResidentBytes
	s.EvictedRecords += o.EvictedRecords
	s.EvictedExtents += o.EvictedExtents
	s.ReadErrors += o.ReadErrors
	s.SpillErrors += o.SpillErrors
	if s.LastSpillError == "" {
		s.LastSpillError = o.LastSpillError
	}
}

// StorageStats returns per-table segment accounting, ordered by TPID.
func (db *DB) StorageStats() []StorageStats {
	ids := db.Tables()
	out := make([]StorageStats, 0, len(ids))
	for _, id := range ids {
		if t, ok := db.Table(id); ok {
			out = append(out, t.Storage())
		}
	}
	return out
}

// StorageTotals aggregates segment accounting across all tables.
func (db *DB) StorageTotals() StorageStats {
	var total StorageStats
	for _, s := range db.StorageStats() {
		total.Add(s)
	}
	total.TPID, total.Name = 0, ""
	return total
}
