// Write-ahead log for the collector's ingest path. Every admitted (fresh)
// record batch and aggregate frame is appended here before it is applied
// to the in-memory store, so a hard crash can replay the tail that the
// last checkpoint does not cover. The log is a sequence of generation
// files, each named for the first log sequence number (LSN) it holds:
//
//	wal-<firstLSN:%016x>.log
//
// A generation is an append-only stream of frames:
//
//	[4B big-endian payload length][4B big-endian CRC32(payload)][payload]
//
// and a payload is self-describing:
//
//	uvarint LSN | kind byte | kind-specific body
//
// kind 1 (record batch): uvarint agent-name length, name bytes, uvarint
// epoch, seq, zigzag-varint agent time, degraded byte, uvarint record
// count, then the records in their canonical 48-byte wire form
// (core.Record.MarshalTo) concatenated — the same layout trace programs
// emit and the batch transport carries. Records are fixed-width rather
// than varint because this encode sits on the synchronous ingest path —
// one bounds-checked store per field beats a byte-at-a-time varint
// loop, and WAL bytes are short-lived (retired at the next checkpoint)
// so the size trade is cheap.
//
// kind 2 (aggregate frame): the same agent/epoch/seq/time/degraded
// prefix, then uvarint script count and per script a length-prefixed
// name, uvarint-counted counter/cpu-hit/histogram slots, and flows
// (uvarint 5-tuple fields + proto byte + packet/byte sums).
//
// Appends are group-committed: one frame write per batch (the batch is
// the group), with fsync driven by policy — always (every append),
// interval (a background flusher syncs at most once per configured
// period, off the ingest path), or never (page cache only). A torn
// final frame — short header, short payload, or CRC
// mismatch — marks the end of the log; recovery truncates it away and
// never panics on it.
package tracedb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"slices"
	"sort"
	"strings"

	"vnettracer/internal/core"
)

// FsyncPolicy selects when the WAL forces appended frames to stable
// storage.
type FsyncPolicy int

const (
	// FsyncNever leaves flushing to the OS page cache: survives process
	// crashes (kill -9) but not power loss.
	FsyncNever FsyncPolicy = iota
	// FsyncInterval fsyncs at most once per configured interval, from a
	// background flusher rather than the ingest path — the group-commit
	// middle ground bounding loss to one interval of acks.
	FsyncInterval
	// FsyncAlways fsyncs after every appended frame.
	FsyncAlways
)

// ParseFsyncPolicy parses the CLI spelling: "always", "interval", or
// "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "never":
		return FsyncNever, nil
	case "interval":
		return FsyncInterval, nil
	case "always":
		return FsyncAlways, nil
	}
	return FsyncNever, fmt.Errorf("tracedb: unknown fsync policy %q (want always|interval|never)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncInterval:
		return "interval"
	case FsyncAlways:
		return "always"
	}
	return "never"
}

// WAL entry kinds.
const (
	walKindRecords byte = 1
	walKindAggs    byte = 2
)

// walEntry is one logged ingest event: an admitted record batch or an
// admitted aggregate frame, with the ledger identity (agent, epoch, seq)
// that lets replay re-admit it through the same exactly-once front door.
type walEntry struct {
	LSN      uint64
	Kind     byte
	Agent    string
	Epoch    uint64
	Seq      uint64
	TimeNs   int64
	Degraded uint8
	Records  []core.Record // walKindRecords payload
	Scripts  []ScriptAgg   // walKindAggs payload
	// RawRecords, when non-nil, is Records already in the canonical wire
	// form (len(Records)*walRecordSize bytes): the encoder appends it
	// verbatim instead of re-marshalling Records. Decode never sets it.
	RawRecords []byte
}

// walFrameHeader is the fixed per-frame framing: payload length + CRC.
const walFrameHeader = 8

// walRecordSize is the encoding of one core.Record inside a kind-1
// frame: the canonical 48-byte wire form shared with the ring buffer and
// the batch transport.
const walRecordSize = core.RecordSize

// maxWALPayload bounds a single frame so a corrupt length field cannot
// drive a giant allocation during recovery.
const maxWALPayload = 64 << 20

// appendWALPayload encodes the entry's payload (everything after the
// frame header) onto dst.
func appendWALPayload(dst []byte, e *walEntry) []byte {
	dst = binary.AppendUvarint(dst, e.LSN)
	dst = append(dst, e.Kind)
	dst = binary.AppendUvarint(dst, uint64(len(e.Agent)))
	dst = append(dst, e.Agent...)
	dst = binary.AppendUvarint(dst, e.Epoch)
	dst = binary.AppendUvarint(dst, e.Seq)
	dst = binary.AppendUvarint(dst, zigzag(e.TimeNs))
	dst = append(dst, e.Degraded)
	switch e.Kind {
	case walKindRecords:
		dst = binary.AppendUvarint(dst, uint64(len(e.Records)))
		if len(e.RawRecords) == len(e.Records)*walRecordSize && len(e.Records) > 0 {
			// The transport's record section is the same canonical form:
			// batches decoded off the wire log their bytes verbatim, a
			// memcpy instead of a re-marshal on the synchronous ingest
			// path.
			dst = append(dst, e.RawRecords...)
			break
		}
		// Extend once for the whole batch and marshal in place.
		base := len(dst)
		dst = slices.Grow(dst, len(e.Records)*walRecordSize)[:base+len(e.Records)*walRecordSize]
		for i := range e.Records {
			e.Records[i].MarshalTo(dst[base+i*walRecordSize:])
		}
	case walKindAggs:
		dst = binary.AppendUvarint(dst, uint64(len(e.Scripts)))
		for i := range e.Scripts {
			s := &e.Scripts[i]
			dst = binary.AppendUvarint(dst, uint64(len(s.Script)))
			dst = append(dst, s.Script...)
			dst = appendU64Slice(dst, s.Counters)
			dst = appendU64Slice(dst, s.CPUHits)
			dst = appendU64Slice(dst, s.Hist)
			dst = binary.AppendUvarint(dst, uint64(len(s.Flows)))
			for _, f := range s.Flows {
				dst = binary.AppendUvarint(dst, uint64(f.SrcIP))
				dst = binary.AppendUvarint(dst, uint64(f.DstIP))
				dst = binary.AppendUvarint(dst, uint64(f.SrcPort))
				dst = binary.AppendUvarint(dst, uint64(f.DstPort))
				dst = append(dst, f.Proto)
				dst = binary.AppendUvarint(dst, f.Packets)
				dst = binary.AppendUvarint(dst, f.Bytes)
			}
		}
	}
	return dst
}

func appendU64Slice(dst []byte, vs []uint64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	for _, v := range vs {
		dst = binary.AppendUvarint(dst, v)
	}
	return dst
}

// decodeWALPayload decodes one frame payload. Like the extent decoder it
// never allocates proportionally to a header-declared count alone — every
// count is checked against the bytes that remain, so arbitrary (fuzzed)
// input cannot balloon memory.
func decodeWALPayload(b []byte) (walEntry, error) {
	cur := &byteCursor{b: b}
	var e walEntry
	var err error
	if e.LSN, err = binary.ReadUvarint(cur); err != nil {
		return e, fmt.Errorf("tracedb: wal lsn: %w", err)
	}
	if e.Kind, err = cur.ReadByte(); err != nil {
		return e, fmt.Errorf("tracedb: wal kind: %w", err)
	}
	if e.Kind != walKindRecords && e.Kind != walKindAggs {
		return e, fmt.Errorf("tracedb: wal kind %d unknown", e.Kind)
	}
	if e.Agent, err = readWALString(cur); err != nil {
		return e, fmt.Errorf("tracedb: wal agent: %w", err)
	}
	if e.Epoch, err = binary.ReadUvarint(cur); err != nil {
		return e, fmt.Errorf("tracedb: wal epoch: %w", err)
	}
	if e.Seq, err = binary.ReadUvarint(cur); err != nil {
		return e, fmt.Errorf("tracedb: wal seq: %w", err)
	}
	t, err := binary.ReadUvarint(cur)
	if err != nil {
		return e, fmt.Errorf("tracedb: wal time: %w", err)
	}
	e.TimeNs = unzigzag(t)
	if e.Degraded, err = cur.ReadByte(); err != nil {
		return e, fmt.Errorf("tracedb: wal degraded: %w", err)
	}
	switch e.Kind {
	case walKindRecords:
		n, err := binary.ReadUvarint(cur)
		if err != nil {
			return e, fmt.Errorf("tracedb: wal record count: %w", err)
		}
		// Records are fixed-width, so the count bounds-checks exactly.
		if n > uint64(cur.remaining())/walRecordSize {
			return e, fmt.Errorf("tracedb: wal record count %d exceeds frame size", n)
		}
		want := int(n) * walRecordSize
		recs, err := core.UnmarshalRecords(cur.b[cur.off : cur.off+want])
		if err != nil {
			return e, fmt.Errorf("tracedb: wal records: %w", err)
		}
		cur.off += want
		e.Records = recs
	case walKindAggs:
		n, err := binary.ReadUvarint(cur)
		if err != nil {
			return e, fmt.Errorf("tracedb: wal script count: %w", err)
		}
		if n > uint64(cur.remaining())/5+1 {
			return e, fmt.Errorf("tracedb: wal script count %d exceeds frame size", n)
		}
		e.Scripts = make([]ScriptAgg, 0, n)
		for i := uint64(0); i < n; i++ {
			s, err := readWALScript(cur)
			if err != nil {
				return e, fmt.Errorf("tracedb: wal script %d: %w", i, err)
			}
			e.Scripts = append(e.Scripts, s)
		}
	}
	if cur.remaining() != 0 {
		return e, fmt.Errorf("tracedb: %d trailing bytes after wal payload", cur.remaining())
	}
	return e, nil
}

func (c *byteCursor) remaining() int { return len(c.b) - c.off }

func readWALString(cur *byteCursor) (string, error) {
	n, err := binary.ReadUvarint(cur)
	if err != nil {
		return "", err
	}
	if n > uint64(cur.remaining()) {
		return "", fmt.Errorf("length %d exceeds frame size", n)
	}
	s := string(cur.b[cur.off : cur.off+int(n)])
	cur.off += int(n)
	return s, nil
}

func readWALU32(cur *byteCursor) (uint32, error) {
	v, err := binary.ReadUvarint(cur)
	if err != nil || v > math.MaxUint32 {
		return 0, errOrOverflow(err, v)
	}
	return uint32(v), nil
}

func readWALU16(cur *byteCursor) (uint16, error) {
	v, err := binary.ReadUvarint(cur)
	if err != nil || v > math.MaxUint16 {
		return 0, errOrOverflow(err, v)
	}
	return uint16(v), nil
}

func readWALU64Slice(cur *byteCursor) ([]uint64, error) {
	n, err := binary.ReadUvarint(cur)
	if err != nil {
		return nil, err
	}
	if n > uint64(cur.remaining()) {
		return nil, fmt.Errorf("slot count %d exceeds frame size", n)
	}
	if n == 0 {
		return nil, nil
	}
	vs := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		v, err := binary.ReadUvarint(cur)
		if err != nil {
			return nil, err
		}
		vs = append(vs, v)
	}
	return vs, nil
}

func readWALScript(cur *byteCursor) (ScriptAgg, error) {
	var s ScriptAgg
	var err error
	if s.Script, err = readWALString(cur); err != nil {
		return s, fmt.Errorf("name: %w", err)
	}
	if s.Counters, err = readWALU64Slice(cur); err != nil {
		return s, fmt.Errorf("counters: %w", err)
	}
	if s.CPUHits, err = readWALU64Slice(cur); err != nil {
		return s, fmt.Errorf("cpu hits: %w", err)
	}
	if s.Hist, err = readWALU64Slice(cur); err != nil {
		return s, fmt.Errorf("hist: %w", err)
	}
	n, err := binary.ReadUvarint(cur)
	if err != nil {
		return s, fmt.Errorf("flow count: %w", err)
	}
	// A flow encodes to at least 7 bytes (6 varints + proto byte).
	if n > uint64(cur.remaining())/7+1 {
		return s, fmt.Errorf("flow count %d exceeds frame size", n)
	}
	if n > 0 {
		s.Flows = make([]FlowAgg, 0, n)
	}
	for i := uint64(0); i < n; i++ {
		var f FlowAgg
		if f.SrcIP, err = readWALU32(cur); err != nil {
			return s, fmt.Errorf("flow %d srcIP: %w", i, err)
		}
		if f.DstIP, err = readWALU32(cur); err != nil {
			return s, fmt.Errorf("flow %d dstIP: %w", i, err)
		}
		if f.SrcPort, err = readWALU16(cur); err != nil {
			return s, fmt.Errorf("flow %d srcPort: %w", i, err)
		}
		if f.DstPort, err = readWALU16(cur); err != nil {
			return s, fmt.Errorf("flow %d dstPort: %w", i, err)
		}
		if f.Proto, err = cur.ReadByte(); err != nil {
			return s, fmt.Errorf("flow %d proto: %w", i, err)
		}
		if f.Packets, err = binary.ReadUvarint(cur); err != nil {
			return s, fmt.Errorf("flow %d packets: %w", i, err)
		}
		if f.Bytes, err = binary.ReadUvarint(cur); err != nil {
			return s, fmt.Errorf("flow %d bytes: %w", i, err)
		}
		s.Flows = append(s.Flows, f)
	}
	return s, nil
}

// walFileName returns the generation file name for a first LSN.
func walFileName(firstLSN uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstLSN)
}

// parseWALFileName extracts the first LSN from a generation file name.
func parseWALFileName(name string) (uint64, bool) {
	var lsn uint64
	if n, err := fmt.Sscanf(name, "wal-%016x.log", &lsn); n == 1 && err == nil {
		return lsn, true
	}
	return 0, false
}

// listWALFiles returns the WAL generation files in dir, ascending by
// first LSN.
func listWALFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type gen struct {
		name string
		lsn  uint64
	}
	var gens []gen
	for _, ent := range ents {
		if ent.IsDir() {
			continue
		}
		if lsn, ok := parseWALFileName(ent.Name()); ok {
			gens = append(gens, gen{ent.Name(), lsn})
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].lsn < gens[j].lsn })
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.name
	}
	return names, nil
}

// walWriter appends frames to the active generation file. Callers
// serialize access (the Durability layer holds its own mutex).
type walWriter struct {
	dir     string
	policy  FsyncPolicy
	f       *os.File
	scratch []byte
	nextLSN uint64
	// buf holds frames group-committed under FsyncInterval: the hot path
	// only encodes into memory, and the flusher (or sync) writes the
	// accumulated group in one syscall. Other policies write per append.
	buf []byte
	// dirty reports frames written to f since the last fsync; a clean log
	// makes sync a no-op so the flusher never issues idle fsyncs.
	dirty bool

	entries uint64
	bytes   uint64
	syncs   uint64
}

// openWALGeneration starts (or truncates) the generation file whose first
// LSN is the writer's next LSN.
func (w *walWriter) openGeneration() error {
	if w.f != nil {
		w.sync()
		w.f.Close()
		w.f = nil
	}
	f, err := os.OpenFile(filepath.Join(w.dir, walFileName(w.nextLSN)),
		os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	return nil
}

// append assigns the next LSN to e, frames it, writes it, and applies the
// fsync policy. The assigned LSN is stored into e.LSN.
func (w *walWriter) append(e *walEntry) error {
	if w.f == nil {
		if err := w.openGeneration(); err != nil {
			return err
		}
	}
	e.LSN = w.nextLSN
	var n int
	if w.policy == FsyncInterval {
		// Group commit: encode the frame straight into the staging
		// buffer and return. The Durability flusher drains buf with one
		// write+fsync per period, off the ingest path; loss stays
		// bounded to one period of acks.
		start := len(w.buf)
		w.buf = appendWALFrame(w.buf, e)
		n = len(w.buf) - start
	} else {
		w.scratch = appendWALFrame(w.scratch[:0], e)
		n = len(w.scratch)
		if _, err := w.f.Write(w.scratch); err != nil {
			return err
		}
		w.dirty = true
	}
	w.nextLSN++
	w.entries++
	w.bytes += uint64(n)
	if w.policy == FsyncAlways {
		return w.sync()
	}
	return nil
}

// appendWALFrame encodes one framed entry (header + payload) onto dst.
func appendWALFrame(dst []byte, e *walEntry) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, 0, 0, 0, 0)
	dst = appendWALPayload(dst, e)
	payload := dst[start+walFrameHeader:]
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(len(payload)))
	binary.BigEndian.PutUint32(dst[start+4:start+8], crc32.ChecksumIEEE(payload))
	return dst
}

// flush writes any group-committed frames to the active generation.
func (w *walWriter) flush() error {
	if w.f == nil || len(w.buf) == 0 {
		return nil
	}
	_, err := w.f.Write(w.buf)
	w.buf = w.buf[:0]
	if err != nil {
		return err
	}
	w.dirty = true
	return nil
}

// sync flushes staged frames and forces the active generation to stable
// storage; a no-op when nothing landed since the last sync.
func (w *walWriter) sync() error {
	if w.f == nil {
		return nil
	}
	if err := w.flush(); err != nil {
		return err
	}
	if !w.dirty {
		return nil
	}
	w.dirty = false
	w.syncs++
	return w.f.Sync()
}

// close syncs and closes the active generation.
func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// walReplayFile streams one generation's frames into fn, in order. It
// stops at the first torn or corrupt frame and returns the byte offset of
// the end of the last good frame; tornErr describes why it stopped (nil
// when the file ended cleanly). Decode errors inside a CRC-valid frame
// are reported the same way — the frame marks the end of usable log.
func walReplayFile(path string, fn func(walEntry)) (goodOff int64, tornErr error, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	off := 0
	for {
		if off == len(b) {
			return int64(off), nil, nil
		}
		if len(b)-off < walFrameHeader {
			return int64(off), fmt.Errorf("tracedb: wal: torn frame header (%d bytes)", len(b)-off), nil
		}
		plen := int(binary.BigEndian.Uint32(b[off : off+4]))
		crc := binary.BigEndian.Uint32(b[off+4 : off+8])
		if plen > maxWALPayload {
			return int64(off), fmt.Errorf("tracedb: wal: frame length %d exceeds cap", plen), nil
		}
		if len(b)-off-walFrameHeader < plen {
			return int64(off), fmt.Errorf("tracedb: wal: torn frame payload (%d of %d bytes)",
				len(b)-off-walFrameHeader, plen), nil
		}
		payload := b[off+walFrameHeader : off+walFrameHeader+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return int64(off), fmt.Errorf("tracedb: wal: frame CRC mismatch at offset %d", off), nil
		}
		e, derr := decodeWALPayload(payload)
		if derr != nil {
			return int64(off), fmt.Errorf("tracedb: wal: frame at offset %d: %w", off, derr), nil
		}
		fn(e)
		off += walFrameHeader + plen
	}
}
