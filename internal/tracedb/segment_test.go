package tracedb

import (
	"os"
	"path/filepath"
	"testing"

	"vnettracer/internal/core"
)

// fill inserts n records for tpid with trace IDs 1..n, timestamps
// base+i*step, in batches of batchLen so segment seals land at batch
// boundaries.
func fill(db *DB, tpid uint32, n, batchLen int, base, step uint64) {
	for i := 0; i < n; i += batchLen {
		end := i + batchLen
		if end > n {
			end = n
		}
		batch := make([]core.Record, 0, end-i)
		for k := i; k < end; k++ {
			batch = append(batch, core.Record{
				TPID:    tpid,
				TraceID: uint32(k + 1),
				TimeNs:  base + uint64(k)*step,
				Len:     100,
				Seq:     uint64(k),
			})
		}
		db.Insert(batch)
	}
}

// TestCrossSegmentQueries runs ByTraceID/ScanAligned/Incomplete across a
// table whose records span sealed in-memory extents, spilled extents, and
// the mutable head.
func TestCrossSegmentQueries(t *testing.T) {
	dir := t.TempDir()
	// 10 records per segment (480 raw bytes), spilled to dir.
	db := NewWith(Config{SegmentBytes: 10 * core.RecordSize, DataDir: dir})
	const n = 105 // 10 sealed+spilled extents + 5 head records
	fill(db, 1, n, 10, 1_000_000, 1000)
	tbl, _ := db.Table(1)

	if tbl.Len() != n {
		t.Fatalf("Len = %d, want %d", tbl.Len(), n)
	}
	if got := tbl.Extents(); got != 10 {
		t.Fatalf("extents = %d, want 10", got)
	}
	st := tbl.Storage()
	if st.SpilledExtents != 10 || st.SpilledBytes == 0 {
		t.Fatalf("spill stats = %+v", st)
	}
	if st.HeadRecords != 5 {
		t.Fatalf("head records = %d, want 5", st.HeadRecords)
	}

	// ByTraceID must find records in the oldest spilled extent, a middle
	// one, and the head.
	for _, id := range []uint32{1, 55, 101, 105} {
		got := tbl.ByTraceID(id)
		if len(got) != 1 || got[0].TraceID != id {
			t.Fatalf("ByTraceID(%d) = %+v", id, got)
		}
		first, ok := tbl.FirstByTraceID(id)
		if !ok || first.TraceID != id {
			t.Fatalf("FirstByTraceID(%d) = %+v ok=%v", id, first, ok)
		}
	}
	if got := tbl.ByTraceID(9999); len(got) != 0 {
		t.Fatalf("missing id returned %+v", got)
	}

	// Scan visits every record exactly once, in insertion order.
	var seen []uint32
	tbl.Scan(func(r core.Record) bool { seen = append(seen, r.TraceID); return true })
	if len(seen) != n {
		t.Fatalf("scan visited %d, want %d", len(seen), n)
	}
	for i, id := range seen {
		if id != uint32(i+1) {
			t.Fatalf("scan order broke at %d: %d", i, id)
		}
	}

	if ids := tbl.TraceIDs(); len(ids) != n || ids[0] != 1 || ids[n-1] != n {
		t.Fatalf("TraceIDs len=%d", len(ids))
	}
	if got := tbl.NumTraceIDs(); got != n {
		t.Fatalf("NumTraceIDs = %d", got)
	}

	// Incomplete across segmented tables: table 2 misses IDs 3 and 77 —
	// one sealed-side, one head-side gap.
	for k := 0; k < n; k++ {
		id := uint32(k + 1)
		if id == 3 || id == 77 {
			continue
		}
		db.Insert([]core.Record{{TPID: 2, TraceID: id, TimeNs: uint64(k)}})
	}
	other, _ := db.Table(2)
	missing := tbl.Incomplete(other)
	if len(missing) != 2 || missing[0] != 3 || missing[1] != 77 {
		t.Fatalf("Incomplete = %v", missing)
	}
	if got := other.Incomplete(tbl); len(got) != 0 {
		t.Fatalf("reverse Incomplete = %v", got)
	}
}

// TestSkewAlignmentAcrossSegments checks both skew signs at segment
// boundaries: alignment is applied per segment at read time, so a skew
// set after records sealed must still correct them, and the zero clamp
// must hold inside sealed extents.
func TestSkewAlignmentAcrossSegments(t *testing.T) {
	db := NewWith(Config{SegmentBytes: 4 * core.RecordSize})
	// Timestamps 0, 1000, ... 7000; two sealed extents + nothing in head.
	fill(db, 1, 8, 4, 0, 1000)
	tbl, _ := db.Table(1)
	if tbl.Extents() != 2 {
		t.Fatalf("extents = %d, want 2", tbl.Extents())
	}

	// Negative skew (node clock behind): timestamps shift forward.
	db.SetSkew(1, -500)
	i := 0
	tbl.ScanAligned(func(r core.Record) bool {
		if want := uint64(i)*1000 + 500; r.TimeNs != want {
			t.Fatalf("record %d aligned to %d, want %d", i, r.TimeNs, want)
		}
		i++
		return true
	})
	if i != 8 {
		t.Fatalf("aligned scan visited %d", i)
	}

	// Positive skew larger than the first sealed records' timestamps:
	// clamp at zero, no unsigned wrap.
	db.SetSkew(1, 2500)
	want := []uint64{0, 0, 0, 500, 1500, 2500, 3500, 4500}
	i = 0
	tbl.ScanAligned(func(r core.Record) bool {
		if r.TimeNs != want[i] {
			t.Fatalf("record %d aligned to %d, want %d", i, r.TimeNs, want[i])
		}
		i++
		return true
	})

	// FirstByTraceID aligns too, including for sealed records.
	first, ok := tbl.FirstByTraceID(1)
	if !ok || first.TimeNs != 0 {
		t.Fatalf("FirstByTraceID = %+v ok=%v", first, ok)
	}
	first, ok = tbl.FirstByTraceID(8)
	if !ok || first.TimeNs != 4500 {
		t.Fatalf("FirstByTraceID(8) = %+v ok=%v", first, ok)
	}

	// Raw Scan stays unaligned.
	tbl.Scan(func(r core.Record) bool {
		if r.TraceID == 1 && r.TimeNs != 0 {
			t.Fatalf("raw scan shows aligned time %d", r.TimeNs)
		}
		return true
	})
}

// TestRetentionEvictsWholeSegments checks the retention policy: whole
// extents evicted oldest-first, eviction counters conserving the total
// record count, spilled files actually deleted.
func TestRetentionEvictsWholeSegments(t *testing.T) {
	dir := t.TempDir()
	// Each extent holds 10 records; retention keeps ~3 extents' worth of
	// compressed bytes.
	db := NewWith(Config{SegmentBytes: 10 * core.RecordSize, DataDir: dir, RetainBytes: 256})
	const n = 100
	fill(db, 1, n, 10, 1_000_000, 1000)
	tbl, _ := db.Table(1)

	st := tbl.Storage()
	if st.EvictedExtents == 0 || st.EvictedRecords == 0 {
		t.Fatalf("no eviction happened: %+v", st)
	}
	// Whole segments only: every evicted extent held exactly 10 records.
	if st.EvictedRecords%10 != 0 {
		t.Fatalf("evicted %d records, not a whole number of segments", st.EvictedRecords)
	}
	// Conservation: live + evicted == inserted.
	if got := uint64(tbl.Len()) + st.EvictedRecords; got != n {
		t.Fatalf("live %d + evicted %d != inserted %d", tbl.Len(), st.EvictedRecords, n)
	}
	// The sealed store respects the budget.
	if st.StoredBytes() > 256 {
		t.Fatalf("sealed bytes %d exceed retention 256", st.StoredBytes())
	}
	// Oldest-first: the oldest surviving records are a contiguous suffix.
	var first core.Record
	got := false
	tbl.Scan(func(r core.Record) bool { first, got = r, true; return false })
	if !got || uint64(first.TraceID) != st.EvictedRecords+1 {
		t.Fatalf("oldest survivor = %d, want %d", first.TraceID, st.EvictedRecords+1)
	}
	// Evicted files are gone from disk; surviving extents' files remain.
	files, err := filepath.Glob(filepath.Join(dir, "*.vnx"))
	if err != nil {
		t.Fatal(err)
	}
	if want := tbl.Extents(); len(files) != want {
		t.Fatalf("%d spill files on disk, want %d", len(files), want)
	}
}

// TestSpillFallsBackResident: an unwritable data dir keeps sealed blobs
// resident instead of losing records.
func TestSpillFallsBackResident(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ro")
	if err := os.MkdirAll(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	db := NewWith(Config{SegmentBytes: 4 * core.RecordSize, DataDir: dir})
	fill(db, 1, 8, 4, 0, 1000)
	tbl, _ := db.Table(1)
	st := tbl.Storage()
	if st.SpilledExtents != 0 || st.SealedRecords != 8 {
		t.Fatalf("stats = %+v", st)
	}
	if got := len(tbl.ByTraceID(5)); got != 1 {
		t.Fatalf("records lost on failed spill: %d", got)
	}
}

// TestSealAllAndCompressionRatio: SealAll flushes heads, and sealed
// realistic batches beat the 4x compression floor this PR promises.
func TestSealAllAndCompressionRatio(t *testing.T) {
	db := New() // default segment size: nothing seals on its own here
	fill(db, 1, 1000, 100, 1_000_000, 1000)
	fill(db, 2, 500, 100, 2_000_000, 1000)
	tbl, _ := db.Table(1)
	if tbl.Extents() != 0 {
		t.Fatalf("sealed early: %d extents", tbl.Extents())
	}
	db.SealAll()
	if tbl.Extents() != 1 {
		t.Fatalf("SealAll left %d extents", tbl.Extents())
	}
	tot := db.StorageTotals()
	if tot.HeadRecords != 0 || tot.SealedRecords != 1500 {
		t.Fatalf("totals = %+v", tot)
	}
	if ratio := tot.CompressionRatio(); ratio < 4 {
		t.Fatalf("compression ratio %.2f, want >= 4", ratio)
	}
	// Resident footprint must reflect the compression (well under raw).
	if tot.ResidentBytes*2 > tot.SealedRawBytes {
		t.Fatalf("resident %d vs raw %d: compression not reflected", tot.ResidentBytes, tot.SealedRawBytes)
	}
}

// TestSpilledExtentSurvivesReopen: a spilled file is self-describing and
// readable via the streaming path (crash-safety property: the rename only
// lands complete extents).
func TestSpilledExtentSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db := NewWith(Config{SegmentBytes: 4 * core.RecordSize, DataDir: dir})
	fill(db, 1, 4, 4, 77, 10)
	files, _ := filepath.Glob(filepath.Join(dir, "*.vnx"))
	if len(files) != 1 {
		t.Fatalf("spill files = %v", files)
	}
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	tpid, recs, err := decodeExtentBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if tpid != 1 || len(recs) != 4 || recs[0].TimeNs != 77 {
		t.Fatalf("reopened extent: tpid=%d recs=%+v", tpid, recs)
	}
	// No temp files left behind.
	tmps, _ := filepath.Glob(filepath.Join(dir, "*.tmp"))
	if len(tmps) != 0 {
		t.Fatalf("leftover temp files: %v", tmps)
	}
}

// TestEvictionDuringScanIsCounted: a spilled extent whose file disappears
// mid-query is skipped and surfaces in ReadErrors rather than failing the
// scan.
func TestEvictionDuringScanIsCounted(t *testing.T) {
	dir := t.TempDir()
	db := NewWith(Config{SegmentBytes: 4 * core.RecordSize, DataDir: dir})
	fill(db, 1, 12, 4, 0, 1000)
	tbl, _ := db.Table(1)
	files, _ := filepath.Glob(filepath.Join(dir, "*.vnx"))
	if len(files) != 3 {
		t.Fatalf("spill files = %v", files)
	}
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	n := 0
	tbl.Scan(func(core.Record) bool { n++; return true })
	if n != 8 {
		t.Fatalf("scan visited %d, want 8 (one extent lost)", n)
	}
	if got := tbl.Storage().ReadErrors; got != 1 {
		t.Fatalf("ReadErrors = %d, want 1", got)
	}
}
