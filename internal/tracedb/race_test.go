package tracedb

import (
	"sync"
	"testing"

	"vnettracer/internal/core"
)

// TestConcurrentInsertAndQuery is the -race regression for the old
// Table data race: reader methods used to touch recs/byTraceID with no
// lock while DB.Insert mutated them. Every reader method runs here
// against concurrent inserters.
func TestConcurrentInsertAndQuery(t *testing.T) {
	// Small segments so the race also exercises seal/snapshot interleaving,
	// not just head appends.
	db := NewWith(Config{SegmentBytes: 2048})
	db.CreateTable(1, "a")
	db.CreateTable(2, "b")

	const writers, batches, perBatch = 4, 50, 16
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				recs := make([]core.Record, perBatch)
				for k := range recs {
					recs[k] = core.Record{
						TPID:    uint32(k%2 + 1),
						TraceID: uint32(w*batches*perBatch + i*perBatch + k + 1),
						TimeNs:  uint64(i * 1000),
						Len:     100,
					}
				}
				db.Insert(recs)
				db.Heartbeat("agent", int64(i))
				db.SetSkew(1, int64(i))
			}
		}(w)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				a, _ := db.Table(1)
				b, _ := db.Table(2)
				a.Len()
				a.Extents()
				a.Storage()
				a.ByTraceID(1)
				a.FirstByTraceID(1)
				a.TraceIDs()
				a.NumTraceIDs()
				a.Skew()
				a.Incomplete(b)
				b.Incomplete(a)
				n := 0
				a.Scan(func(core.Record) bool { n++; return n < 100 })
				a.ScanAligned(func(core.Record) bool { return true })
				db.Tables()
				db.Agents()
				db.DeadAgents(1000, 10)
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	total := 0
	for _, id := range db.Tables() {
		tbl, _ := db.Table(id)
		total += tbl.Len()
	}
	if want := writers * batches * perBatch; total != want {
		t.Fatalf("total records = %d, want %d", total, want)
	}
}

// TestScanSnapshotUnderInsert checks Scan's zero-copy snapshot: a scan
// started before concurrent inserts sees a consistent prefix and never a
// torn record.
func TestScanSnapshotUnderInsert(t *testing.T) {
	db := New()
	db.CreateTable(1, "t")
	seed := make([]core.Record, 100)
	for i := range seed {
		seed[i] = core.Record{TPID: 1, TraceID: uint32(i + 1), TimeNs: uint64(i), Len: 7}
	}
	db.Insert(seed)
	tbl, _ := db.Table(1)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 1000; i++ {
			db.Insert([]core.Record{{TPID: 1, TraceID: uint32(1000 + i), TimeNs: uint64(i), Len: 7}})
		}
	}()
	for i := 0; i < 50; i++ {
		n := 0
		tbl.Scan(func(r core.Record) bool {
			if r.Len != 7 {
				t.Errorf("torn record: %+v", r)
				return false
			}
			n++
			return true
		})
		if n < len(seed) {
			t.Fatalf("scan saw %d records, fewer than the %d inserted before it", n, len(seed))
		}
	}
	<-done
}

// TestScanEarlyStop checks the visitor contract: returning false stops the
// scan.
func TestScanEarlyStop(t *testing.T) {
	db := New()
	db.Insert([]core.Record{
		{TPID: 1, TraceID: 1}, {TPID: 1, TraceID: 2}, {TPID: 1, TraceID: 3},
	})
	tbl, _ := db.Table(1)
	var seen []uint32
	tbl.Scan(func(r core.Record) bool {
		seen = append(seen, r.TraceID)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 2 {
		t.Fatalf("early stop saw %v", seen)
	}
	db.SetSkew(1, -5)
	tbl.ScanAligned(func(r core.Record) bool {
		if r.TraceID == 1 && r.TimeNs != 5 {
			t.Fatalf("ScanAligned skew not applied: %d", r.TimeNs)
		}
		return true
	})
}
