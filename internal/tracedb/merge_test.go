package tracedb

import (
	"math/rand"
	"testing"

	"vnettracer/internal/core"
)

func mergeRec(id uint32, timeNs uint64, cpu uint32, seq uint64) core.Record {
	return core.Record{TraceID: id, TPID: 1, TimeNs: timeNs, Len: 100, CPU: cpu, Seq: seq}
}

// newMergeTable makes a table with a tiny segment size so scans cross
// sealed-extent boundaries, the regime the merge must survive.
func newMergeTable(t *testing.T, skewNs int64) (*DB, *Table) {
	t.Helper()
	db := NewWith(Config{SegmentBytes: 256})
	tbl, err := db.CreateTable(1, "tp")
	if err != nil {
		t.Fatal(err)
	}
	db.SetSkew(1, skewNs)
	return db, tbl
}

func collectRecs(scan func(func(core.Record) bool)) []core.Record {
	var out []core.Record
	scan(func(r core.Record) bool {
		out = append(out, r)
		return true
	})
	return out
}

// TestMergedEqualsBaseline: the issue's core correctness claim — a
// ScanAligned over three collector partitions, k-way merged, equals the
// single-collector baseline record-for-record, under negative skew and
// with records spread across sealed segment boundaries.
func TestMergedEqualsBaseline(t *testing.T) {
	const skew = -5000 // negative: alignment ADDS to every timestamp
	baseDB, base := newMergeTable(t, skew)
	partDBs := make([]*DB, 3)
	parts := make([]*Table, 3)
	for i := range parts {
		partDBs[i], parts[i] = newMergeTable(t, skew)
	}
	// Strictly increasing timestamps so the merged order is unambiguous;
	// round-robin placement gives each partition a time-sorted slice.
	for i := 0; i < 300; i++ {
		r := mergeRec(uint32(i%40+1), uint64(1000+i*7), uint32(i%4), uint64(i+1))
		baseDB.Insert([]core.Record{r})
		partDBs[i%3].Insert([]core.Record{r})
	}
	for _, db := range partDBs {
		db.SealAll()
	}
	m := Merge(parts[0], parts[1], parts[2], nil) // nil partition is skipped
	if m.Parts() != 3 {
		t.Fatalf("Parts = %d, want 3", m.Parts())
	}
	if m.Len() != base.Len() {
		t.Fatalf("Len = %d, want %d", m.Len(), base.Len())
	}
	want := collectRecs(base.ScanAligned)
	got := collectRecs(m.ScanAligned)
	if len(got) != len(want) {
		t.Fatalf("merged %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: merged %+v, baseline %+v", i, got[i], want[i])
		}
	}
	if got[0].TimeNs != uint64(1000+5000) {
		t.Fatalf("negative skew not applied: first aligned time %d, want %d", got[0].TimeNs, 1000+5000)
	}
	// Raw Scan merges too (no alignment).
	raw := collectRecs(m.Scan)
	if raw[0].TimeNs != 1000 {
		t.Fatalf("raw merged first time %d, want 1000", raw[0].TimeNs)
	}
	// Trace-ID surface matches the baseline.
	if m.NumTraceIDs() != base.NumTraceIDs() {
		t.Fatalf("NumTraceIDs = %d, want %d", m.NumTraceIDs(), base.NumTraceIDs())
	}
	for _, id := range m.TraceIDs() {
		br, _ := base.FirstByTraceID(id)
		mr, ok := m.FirstByTraceID(id)
		if !ok || mr != br {
			t.Fatalf("FirstByTraceID(%d): merged %+v ok=%v, baseline %+v", id, mr, ok, br)
		}
	}
}

// TestMergedEarlyStop: a consumer that stops mid-stream gets exactly as
// many records as it asked for and leaves no stuck producer behind
// (the -race run would flag unsynchronized leftovers).
func TestMergedEarlyStop(t *testing.T) {
	parts := make([]*Table, 3)
	for i := range parts {
		var db *DB
		db, parts[i] = newMergeTable(t, 0)
		for j := 0; j < 50; j++ {
			db.Insert([]core.Record{mergeRec(1, uint64(100+j), 0, uint64(j+1))})
		}
	}
	m := Merge(parts...)
	n := 0
	m.ScanAligned(func(core.Record) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early-stopped scan visited %d records, want 5", n)
	}
}

// TestMergedRandomInterleavings is the fuzz-style merge-heap check: many
// seeded trials with random record counts, duplicate timestamps, and
// random partition assignment. The merged stream must contain exactly
// the union (as a multiset) in non-decreasing time order.
func TestMergedRandomInterleavings(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(120)
		k := 1 + rng.Intn(4)
		all := make([]core.Record, n)
		buckets := make([][]core.Record, k)
		for i := 0; i < n; i++ {
			all[i] = mergeRec(uint32(rng.Intn(10)+1), uint64(rng.Intn(50)), uint32(rng.Intn(3)), uint64(i+1))
			p := rng.Intn(k)
			buckets[p] = append(buckets[p], all[i])
		}
		parts := make([]*Table, k)
		for p := range parts {
			var db *DB
			db, parts[p] = newMergeTable(t, 0)
			// Each partition must be time-sorted (per-partition scans are
			// insertion-ordered); stable sort keeps equal-time records in
			// assignment order.
			b := buckets[p]
			for i := 1; i < len(b); i++ {
				for j := i; j > 0 && b[j].TimeNs < b[j-1].TimeNs; j-- {
					b[j], b[j-1] = b[j-1], b[j]
				}
			}
			for _, r := range b {
				db.Insert([]core.Record{r})
			}
		}
		got := collectRecs(Merge(parts...).Scan)
		if len(got) != n {
			t.Fatalf("trial %d: merged %d records, want %d", trial, len(got), n)
		}
		seen := make(map[core.Record]int)
		var prev uint64
		for i, r := range got {
			if i > 0 && r.TimeNs < prev {
				t.Fatalf("trial %d: time regressed at %d: %d after %d", trial, i, r.TimeNs, prev)
			}
			prev = r.TimeNs
			seen[r]++
		}
		for _, r := range all {
			seen[r]--
			if seen[r] < 0 {
				t.Fatalf("trial %d: record %+v missing from merge", trial, r)
			}
		}
	}
}
