package tracedb

import (
	"reflect"
	"testing"
)

func aggFrame(pkts, bytes uint64) []ScriptAgg {
	return []ScriptAgg{{
		Script:   "s",
		Counters: []uint64{pkts, bytes},
		Hist:     []uint64{0, pkts},
		Flows: []FlowAgg{
			{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17, Packets: pkts, Bytes: bytes},
		},
	}}
}

func TestAggStoreMergeOnIngest(t *testing.T) {
	s := NewAggStore()
	if st := s.Admit("a", 1, 1, aggFrame(10, 1000), 5, 0); st != BatchFresh {
		t.Fatalf("first frame: %v", st)
	}
	if st := s.Admit("a", 1, 2, aggFrame(5, 500), 6, 0); st != BatchFresh {
		t.Fatalf("second frame: %v", st)
	}
	got, ok := s.Get("s")
	if !ok {
		t.Fatal("script missing")
	}
	want := ScriptAgg{
		Script:   "s",
		Counters: []uint64{15, 1500},
		Hist:     []uint64{0, 15},
		Flows: []FlowAgg{
			{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 17, Packets: 15, Bytes: 1500},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged state:\n got %+v\nwant %+v", got, want)
	}
	if names := s.Scripts(); len(names) != 1 || names[0] != "s" {
		t.Fatalf("scripts: %v", names)
	}
}

func TestAggStoreDuplicateFrameNotDoubleCounted(t *testing.T) {
	s := NewAggStore()
	s.Admit("a", 1, 1, aggFrame(10, 1000), 5, 0)
	if st := s.Admit("a", 1, 1, aggFrame(10, 1000), 7, 0); st != BatchDuplicate {
		t.Fatalf("retry: %v", st)
	}
	got, _ := s.Get("s")
	if got.Counters[0] != 10 {
		t.Fatalf("duplicate merged: packets = %d, want 10", got.Counters[0])
	}
	tot := s.Totals()
	if tot.FramesMerged != 1 || tot.FramesDup != 1 {
		t.Fatalf("totals: %+v", tot)
	}
}

func TestAggStoreEpochFencing(t *testing.T) {
	s := NewAggStore()
	s.Admit("a", 1, 1, aggFrame(10, 1000), 5, 0)
	// Restarted agent: new epoch, seq restarts.
	if st := s.Admit("a", 2, 1, aggFrame(3, 300), 9, 0); st != BatchFresh {
		t.Fatalf("new-epoch frame: %v", st)
	}
	// Zombie from epoch 1 with a never-ingested seq: fenced, not merged.
	if st := s.Admit("a", 1, 2, aggFrame(99, 9900), 10, 0); st != BatchFenced {
		t.Fatalf("zombie frame: %v", st)
	}
	got, _ := s.Get("s")
	if got.Counters[0] != 13 {
		t.Fatalf("fenced frame merged: packets = %d, want 13", got.Counters[0])
	}
	led, ok := s.Ledger("a")
	if !ok || led.Epoch != 2 || led.FencedBatches != 1 {
		t.Fatalf("ledger: %+v ok=%v", led, ok)
	}
	// Zombie frame carried 2 counter rows + 2 hist rows + 1 flow row.
	if led.FencedRecords != 5 {
		t.Fatalf("fenced rows = %d, want 5", led.FencedRecords)
	}
	if tot := s.Totals(); tot.FramesFenced != 1 {
		t.Fatalf("totals: %+v", tot)
	}
}

func TestAggStoreFlowsSortedAndIsolated(t *testing.T) {
	s := NewAggStore()
	s.Admit("a", 0, 1, []ScriptAgg{{
		Script: "s",
		Flows: []FlowAgg{
			{SrcIP: 9, DstIP: 1, Packets: 1, Bytes: 10},
			{SrcIP: 1, DstIP: 5, Packets: 2, Bytes: 20},
			{SrcIP: 1, DstIP: 2, Packets: 3, Bytes: 30},
		},
	}}, 1, 0)
	got, _ := s.Get("s")
	if len(got.Flows) != 3 || got.Flows[0].DstIP != 2 || got.Flows[1].DstIP != 5 || got.Flows[2].SrcIP != 9 {
		t.Fatalf("flows not sorted: %+v", got.Flows)
	}
	// Mutating the snapshot must not leak into the store.
	got.Flows[0].Packets = 999
	again, _ := s.Get("s")
	if again.Flows[0].Packets != 3 {
		t.Fatalf("snapshot aliases store: %+v", again.Flows[0])
	}
}
