package vnet

import (
	"bytes"
	"testing"
)

// maxFuzzPayload keeps the IPv4 TotalLen (a uint16 covering IP header +
// UDP header + payload + trace ID) in range; beyond it Marshal would
// silently truncate the length field, which is a length-field limit, not
// a trace-ID bug.
const maxFuzzPayload = 65000

// FuzzTraceIDStrip proves the paper's UDP trace-ID carriage round-trips:
// append the 4-byte ID with __skb_put semantics (PutUDPTraceID),
// serialize, parse the wire bytes back (which validates the IPv4
// checksum), strip the ID with pskb_trim_rcsum semantics
// (TrimUDPTraceID), and require the original payload and the original
// wire bytes — checksum included — back, for every payload length
// including 0 and the MTU edge. Trimming a packet that never carried an
// ID must error, never panic or fabricate one.
func FuzzTraceIDStrip(f *testing.F) {
	f.Add([]byte{}, uint32(0))
	f.Add([]byte{}, uint32(0xdeadbeef))
	f.Add([]byte("x"), uint32(1))
	f.Add([]byte("abc"), uint32(0xffffffff))
	f.Add(bytes.Repeat([]byte{0xa5}, 1468), uint32(7)) // 1500-byte MTU minus IP+UDP+ID
	f.Add(bytes.Repeat([]byte{0x5a}, 1472), uint32(9)) // fills the MTU before the ID
	f.Add(bytes.Repeat([]byte{1}, 9000), uint32(42))   // jumbo

	f.Fuzz(func(t *testing.T, payload []byte, id uint32) {
		if len(payload) > maxFuzzPayload {
			payload = payload[:maxFuzzPayload]
		}
		mk := func() *Packet {
			return &Packet{
				Eth:     EthernetHeader{EtherType: EtherTypeIPv4},
				IP:      IPv4Header{TTL: 64, Protocol: ProtoUDP, Src: 0x0a000001, Dst: 0x0a000002},
				UDP:     &UDPHeader{SrcPort: 5000, DstPort: 9000},
				Payload: append([]byte(nil), payload...),
			}
		}

		base := mk()
		baseWire, err := base.Marshal()
		if err != nil {
			t.Fatalf("marshal base packet: %v", err)
		}

		sent := mk()
		if err := sent.PutUDPTraceID(id); err != nil {
			t.Fatalf("PutUDPTraceID: %v", err)
		}
		if sent.TraceID != id {
			t.Fatalf("PutUDPTraceID set TraceID %d, want %d", sent.TraceID, id)
		}
		onWire, err := sent.Marshal()
		if err != nil {
			t.Fatalf("marshal traced packet: %v", err)
		}
		if len(onWire) != len(baseWire)+4 {
			t.Fatalf("traced frame is %d bytes, want base %d + 4", len(onWire), len(baseWire))
		}

		// The receiver parses wire bytes (IPv4 checksum validated) and
		// trims the ID off the payload tail.
		rx, err := UnmarshalPacket(onWire, 0)
		if err != nil {
			t.Fatalf("unmarshal traced packet: %v", err)
		}
		got, err := rx.TrimUDPTraceID()
		if err != nil {
			t.Fatalf("TrimUDPTraceID: %v", err)
		}
		if got != id {
			t.Fatalf("trimmed trace ID %#x, want %#x", got, id)
		}
		if !bytes.Equal(rx.Payload, payload) {
			t.Fatalf("payload did not round-trip: %d bytes vs %d", len(rx.Payload), len(payload))
		}
		// Re-serializing the trimmed packet must reproduce the original
		// frame exactly — lengths and checksum recompute to the
		// pre-insertion values.
		reWire, err := rx.Marshal()
		if err != nil {
			t.Fatalf("marshal trimmed packet: %v", err)
		}
		if !bytes.Equal(reWire, baseWire) {
			t.Fatalf("trimmed frame differs from original (%d vs %d bytes)", len(reWire), len(baseWire))
		}

		// A packet that never carried an ID must refuse to trim once the
		// payload is too short to hold one — and a trim of a >=4-byte
		// untraced payload merely returns the payload tail, never panics.
		bare := mk()
		if len(payload) < 4 {
			if _, err := bare.TrimUDPTraceID(); err == nil {
				t.Fatal("TrimUDPTraceID invented an ID from a short untraced payload")
			}
		} else if _, err := bare.TrimUDPTraceID(); err != nil {
			t.Fatalf("TrimUDPTraceID on untraced payload: %v", err)
		}
	})
}
