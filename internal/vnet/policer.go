package vnet

import "vnettracer/internal/sim"

// TokenBucket is a classic policer: packets claiming more tokens than the
// bucket holds are dropped. It models OVS ingress policing
// (ingress_policing_rate / ingress_policing_burst), the mitigation the
// paper applies in case study I.
type TokenBucket struct {
	rateBitsPerSec int64
	burstBits      int64
	tokens         float64
	lastNs         int64
}

// NewTokenBucket creates a policer with rate in kilobits per second and
// burst in kilobits, matching the units of OVS's configuration knobs.
func NewTokenBucket(rateKbps, burstKb int64) *TokenBucket {
	return &TokenBucket{
		rateBitsPerSec: rateKbps * 1000,
		burstBits:      burstKb * 1000,
		tokens:         float64(burstKb * 1000),
	}
}

// Allow reports whether a transmission of bits may proceed at time nowNs,
// consuming tokens if so.
func (t *TokenBucket) Allow(bits int64, nowNs int64) bool {
	t.refill(nowNs)
	if t.tokens < float64(bits) {
		return false
	}
	t.tokens -= float64(bits)
	return true
}

func (t *TokenBucket) refill(nowNs int64) {
	if nowNs <= t.lastNs {
		return
	}
	dt := nowNs - t.lastNs
	t.lastNs = nowNs
	t.tokens += float64(t.rateBitsPerSec) * float64(dt) / float64(sim.Second)
	if max := float64(t.burstBits); t.tokens > max {
		t.tokens = max
	}
}

// HTB implements a two-level Hierarchy Token Bucket shaper: a parent with
// an aggregate rate and child classes with assured rates and ceilings.
// Children may borrow parent bandwidth up to their ceiling. Unlike a
// policer, a shaper delays packets instead of dropping them. The paper
// notes HTB QoS at the OVS virtual port had "similar effect" to policing.
type HTB struct {
	// virtual finish time of the parent in ns.
	parentRate int64
	parentNext int64
}

// NewHTB creates a shaper hierarchy with the given aggregate rate in
// kilobits per second.
func NewHTB(parentRateKbps int64) *HTB {
	return &HTB{parentRate: parentRateKbps * 1000}
}

// NewClass adds a child class with an assured rate and a ceiling, both in
// kilobits per second. Ceil of 0 means the class may borrow up to the full
// parent rate.
func (h *HTB) NewClass(rateKbps, ceilKbps int64) *HTBClass {
	if ceilKbps <= 0 {
		ceilKbps = h.parentRate / 1000
	}
	return &HTBClass{
		htb:  h,
		rate: rateKbps * 1000,
		ceil: ceilKbps * 1000,
	}
}

// HTBClass is one child class of an HTB hierarchy.
type HTBClass struct {
	htb *HTB
	// rates in bits per second.
	rate int64
	ceil int64
	// virtual next-free times.
	rateNext int64
	ceilNext int64
}

// Delay returns how long a transmission of bits must wait at nowNs to
// conform, and advances the class and parent schedules. Zero means the
// packet may go immediately.
func (c *HTBClass) Delay(bits int64, nowNs int64) int64 {
	txAssured := bits * int64(sim.Second) / c.rate

	// Within the assured rate: no parent involvement.
	if c.rateNext <= nowNs {
		c.rateNext = nowNs + txAssured
		advance(&c.ceilNext, nowNs, bits, c.ceil)
		advance(&c.htb.parentNext, nowNs, bits, c.htb.parentRate)
		return 0
	}

	// Borrowing: limited by both the ceiling and the parent aggregate.
	release := c.ceilNext
	if c.htb.parentNext > release {
		release = c.htb.parentNext
	}
	if release < nowNs {
		release = nowNs
	}
	delay := release - nowNs
	c.rateNext += txAssured
	advance(&c.ceilNext, release, bits, c.ceil)
	advance(&c.htb.parentNext, release, bits, c.htb.parentRate)
	return delay
}

// advance pushes a virtual next-free time forward by the serialization
// time of bits at rate, starting no earlier than nowNs.
func advance(next *int64, nowNs, bits, rate int64) {
	start := *next
	if start < nowNs {
		start = nowNs
	}
	*next = start + bits*int64(sim.Second)/rate
}
