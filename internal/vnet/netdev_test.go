package vnet

import (
	"testing"

	"vnettracer/internal/sim"
)

func TestNetDevDeliversInOrder(t *testing.T) {
	eng := sim.NewEngine(1)
	var got []uint64
	dev := NewNetDev(eng, NetDevConfig{
		Name:   "eth0",
		ProcNs: func(*Packet) int64 { return 1000 },
		Out:    func(p *Packet) { got = append(got, p.Seq) },
	})
	for i := 0; i < 5; i++ {
		p := makeUDP(100)
		p.Seq = uint64(i)
		dev.Receive(p)
	}
	eng.RunUntilIdle()
	if len(got) != 5 {
		t.Fatalf("delivered %d, want 5", len(got))
	}
	for i, s := range got {
		if s != uint64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
	st := dev.Stats()
	if st.Received != 5 || st.Delivered != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNetDevServiceTimeSerializes(t *testing.T) {
	// Two packets each needing 1000ns processing: second must complete at
	// ~2000ns, demonstrating queueing delay.
	eng := sim.NewEngine(1)
	var times []int64
	dev := NewNetDev(eng, NetDevConfig{
		ProcNs: func(*Packet) int64 { return 1000 },
		Out:    func(*Packet) { times = append(times, eng.Now()) },
	})
	dev.Receive(makeUDP(10))
	dev.Receive(makeUDP(10))
	eng.RunUntilIdle()
	if len(times) != 2 || times[0] != 1000 || times[1] != 2000 {
		t.Fatalf("completion times = %v, want [1000 2000]", times)
	}
}

func TestNetDevTransmissionDelay(t *testing.T) {
	// 1000-byte payload at 1 Gbps: (1000+42)*8 ns.
	eng := sim.NewEngine(1)
	var at int64 = -1
	dev := NewNetDev(eng, NetDevConfig{
		RateBps: 1_000_000_000,
		Out:     func(*Packet) { at = eng.Now() },
	})
	p := makeUDP(1000)
	wire := int64(p.WireLen())
	dev.Receive(p)
	eng.RunUntilIdle()
	want := wire * 8
	if at != want {
		t.Fatalf("tx completion at %d, want %d", at, want)
	}
}

func TestNetDevQueueOverflowDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	dev := NewNetDev(eng, NetDevConfig{
		ProcNs:   func(*Packet) int64 { return 1000 },
		QueueCap: 2,
		Out:      func(*Packet) {},
	})
	for i := 0; i < 10; i++ {
		dev.Receive(makeUDP(10))
	}
	eng.RunUntilIdle()
	st := dev.Stats()
	// 1 in service + 2 queued accepted initially; the rest dropped.
	if st.DroppedQueue != 7 {
		t.Fatalf("DroppedQueue = %d, want 7", st.DroppedQueue)
	}
	if st.Delivered != 3 {
		t.Fatalf("Delivered = %d, want 3", st.Delivered)
	}
}

func TestNetDevPolicerDrops(t *testing.T) {
	eng := sim.NewEngine(1)
	// 100 kbps, tiny burst: almost everything beyond the first packet at
	// t=0 must drop.
	dev := NewNetDev(eng, NetDevConfig{
		Policer: NewTokenBucket(100, 1),
		Out:     func(*Packet) {},
	})
	for i := 0; i < 10; i++ {
		dev.Receive(makeUDP(100))
	}
	eng.RunUntilIdle()
	st := dev.Stats()
	if st.DroppedPolice == 0 {
		t.Fatal("policer never dropped")
	}
	if st.Delivered+st.DroppedPolice != 10 {
		t.Fatalf("accounting: %+v", st)
	}
}

func TestNetDevTransformAndDrop(t *testing.T) {
	eng := sim.NewEngine(1)
	var out []*Packet
	dev := NewNetDev(eng, NetDevConfig{
		Transform: func(p *Packet) *Packet {
			if p.Seq%2 == 0 {
				return nil // drop evens
			}
			p.IP.TTL--
			return p
		},
		Out: func(p *Packet) { out = append(out, p) },
	})
	for i := 0; i < 4; i++ {
		p := makeUDP(10)
		p.Seq = uint64(i)
		dev.Receive(p)
	}
	eng.RunUntilIdle()
	if len(out) != 2 {
		t.Fatalf("delivered %d, want 2", len(out))
	}
	if dev.Stats().DroppedXform != 2 {
		t.Fatalf("DroppedXform = %d", dev.Stats().DroppedXform)
	}
	if out[0].IP.TTL != 63 {
		t.Fatalf("transform not applied: TTL=%d", out[0].IP.TTL)
	}
}

func TestNetDevHookCostDelaysPacket(t *testing.T) {
	eng := sim.NewEngine(1)
	var at int64
	dev := NewNetDev(eng, NetDevConfig{
		ProcNs: func(*Packet) int64 { return 1000 },
		Out:    func(*Packet) { at = eng.Now() },
	})
	detach := dev.AttachHook(Ingress, func(*Packet, Direction) int64 { return 500 })
	dev.Receive(makeUDP(10))
	eng.RunUntilIdle()
	if at != 1500 {
		t.Fatalf("with hook: completion at %d, want 1500", at)
	}

	// After detaching, the cost disappears (runtime reconfigurability).
	detach()
	start := eng.Now()
	dev.Receive(makeUDP(10))
	eng.RunUntilIdle()
	if got := at - start; got != 1000 {
		t.Fatalf("after detach: service %d, want 1000", got)
	}
}

func TestNetDevEgressHookObservesTransformedPacket(t *testing.T) {
	eng := sim.NewEngine(1)
	var sawTTL uint8
	dev := NewNetDev(eng, NetDevConfig{
		Transform: func(p *Packet) *Packet { p.IP.TTL = 7; return p },
		Out:       func(*Packet) {},
	})
	dev.AttachHook(Egress, func(p *Packet, _ Direction) int64 {
		sawTTL = p.IP.TTL
		return 0
	})
	dev.Receive(makeUDP(10))
	eng.RunUntilIdle()
	if sawTTL != 7 {
		t.Fatalf("egress hook saw TTL %d, want 7", sawTTL)
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	var times []int64
	link := NewLink(eng, 1_000_000_000, 1000, func(*Packet) { times = append(times, eng.Now()) })
	p := makeUDP(1000)
	wire := int64(p.WireLen()) * 8
	link.Send(p)
	link.Send(makeUDP(1000))
	eng.RunUntilIdle()
	if len(times) != 2 {
		t.Fatalf("delivered %d", len(times))
	}
	if times[0] != wire+1000 {
		t.Fatalf("first arrival %d, want %d", times[0], wire+1000)
	}
	if times[1] != 2*wire+1000 {
		t.Fatalf("second arrival %d, want %d (head-of-line blocking)", times[1], 2*wire+1000)
	}
	if link.Sent() != 2 {
		t.Fatalf("Sent = %d", link.Sent())
	}
}

func TestLinkInfiniteBandwidth(t *testing.T) {
	eng := sim.NewEngine(1)
	var at int64 = -1
	link := NewLink(eng, 0, 500, func(*Packet) { at = eng.Now() })
	link.Send(makeUDP(100000))
	eng.RunUntilIdle()
	if at != 500 {
		t.Fatalf("arrival %d, want 500 (propagation only)", at)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	tb := NewTokenBucket(1000, 8) // 1 Mbps, 8 kb burst
	if !tb.Allow(8000, 0) {
		t.Fatal("burst should allow 8000 bits at t=0")
	}
	if tb.Allow(1000, 0) {
		t.Fatal("bucket should be empty")
	}
	// After 1 ms, 1000 bits refilled.
	if !tb.Allow(1000, int64(sim.Millisecond)) {
		t.Fatal("refill failed")
	}
	if tb.Allow(1, int64(sim.Millisecond)) {
		t.Fatal("over-refill")
	}
}

func TestTokenBucketBurstCap(t *testing.T) {
	tb := NewTokenBucket(1000, 4)
	// After a long idle period tokens must cap at the burst.
	if !tb.Allow(4000, int64(100*sim.Second)) {
		t.Fatal("burst-sized claim failed")
	}
	if tb.Allow(1000, int64(100*sim.Second)) {
		t.Fatal("tokens exceeded burst cap")
	}
}

func TestHTBAssuredRateNoDelay(t *testing.T) {
	h := NewHTB(10000) // 10 Mbps parent
	c := h.NewClass(5000, 0)
	// First packet within assured rate: immediate.
	if d := c.Delay(1000, 0); d != 0 {
		t.Fatalf("delay = %d, want 0", d)
	}
}

func TestHTBBorrowingBoundedByParent(t *testing.T) {
	h := NewHTB(1000) // 1 Mbps parent
	a := h.NewClass(500, 1000)
	b := h.NewClass(500, 1000)
	// Saturate a: first conforms, rest borrow.
	var lastDelay int64
	for i := 0; i < 50; i++ {
		lastDelay = a.Delay(100000, 0) // 100 kb each
	}
	if lastDelay == 0 {
		t.Fatal("sustained overload never delayed")
	}
	// b must also see delay because the parent is saturated by a.
	if d := b.Delay(100000, 0); d == 0 {
		// b's assured window admits the very first packet.
		if d2 := b.Delay(100000, 0); d2 == 0 {
			t.Fatal("parent saturation did not propagate to sibling")
		}
	}
}

func TestHTBDelayMonotoneUnderLoad(t *testing.T) {
	h := NewHTB(1000)
	c := h.NewClass(100, 500)
	prev := int64(-1)
	for i := 0; i < 20; i++ {
		d := c.Delay(50000, 0)
		if d < prev {
			t.Fatalf("delay decreased under constant overload: %d -> %d", prev, d)
		}
		prev = d
	}
}

func TestNetDevShaperClassification(t *testing.T) {
	eng := sim.NewEngine(1)
	htb := NewHTB(1000) // 1 Mbps
	bulk := htb.NewClass(1000, 1000)
	var got []uint64
	dev := NewNetDev(eng, NetDevConfig{
		ShaperFor: func(p *Packet) *HTBClass {
			if p.UDP != nil && p.UDP.DstPort == 9000 {
				return nil // latency class: unshaped
			}
			return bulk
		},
		Out: func(p *Packet) { got = append(got, p.Seq) },
	})
	// Bulk packets saturate the class; a latency packet sent later must
	// not queue behind them.
	for i := 0; i < 5; i++ {
		p := makeUDP(1000)
		p.UDP.DstPort = 5001 // bulk flow
		p.Seq = uint64(i)
		dev.Receive(p)
	}
	lat := makeUDP(56)
	lat.UDP.DstPort = 9000
	lat.Seq = 99
	dev.Receive(lat)
	eng.RunUntilIdle()
	if len(got) == 0 || got[0] != 0 {
		t.Fatalf("order = %v", got)
	}
	// The unshaped packet overtakes shaped bulk packets.
	pos := -1
	for i, s := range got {
		if s == 99 {
			pos = i
		}
	}
	if pos < 0 {
		t.Fatal("latency packet never delivered")
	}
	if pos > 2 {
		t.Fatalf("latency packet delivered at position %d, blocked behind shaped bulk", pos)
	}
}

func TestNetDevShaperDropBound(t *testing.T) {
	eng := sim.NewEngine(1)
	htb := NewHTB(100) // 100 kbps: deep conformance delays quickly
	bulk := htb.NewClass(100, 100)
	dev := NewNetDev(eng, NetDevConfig{
		ShaperFor:       func(*Packet) *HTBClass { return bulk },
		MaxShapeDelayNs: int64(sim.Millisecond),
		Out:             func(*Packet) {},
	})
	for i := 0; i < 100; i++ {
		dev.Receive(makeUDP(1000))
	}
	eng.RunUntilIdle()
	st := dev.Stats()
	if st.DroppedShaper == 0 {
		t.Fatal("qdisc bound never dropped")
	}
	if st.Delivered+st.DroppedShaper != 100 {
		t.Fatalf("accounting: %+v", st)
	}
}
