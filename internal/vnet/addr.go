// Package vnet models the data plane of a virtualized network: packets with
// byte-accurate Ethernet/IPv4/TCP/UDP/VXLAN headers, queueing network
// devices with attachable trace hooks, links with bandwidth and propagation
// delay, and token-bucket policers. Higher layers (internal/kernel,
// internal/ovs, internal/overlay, internal/hyper) compose these primitives
// into hosts, switches, and hypervisors.
package vnet

import (
	"fmt"
	"strconv"
	"strings"
)

// IPv4 is an IPv4 address in host byte order (a.b.c.d => a<<24 | ... | d).
type IPv4 uint32

// ParseIPv4 parses dotted-quad notation.
func ParseIPv4(s string) (IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("vnet: bad IPv4 %q", s)
	}
	var ip uint32
	for _, p := range parts {
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("vnet: bad IPv4 %q", s)
		}
		ip = ip<<8 | uint32(n)
	}
	return IPv4(ip), nil
}

// MustParseIPv4 parses dotted-quad notation, panicking on malformed input.
// Intended for constants in tests and topology builders.
func MustParseIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String renders dotted-quad notation.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// String renders colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// MACFromInt derives a locally administered MAC from a small integer,
// convenient for topology builders.
func MACFromInt(n uint32) MAC {
	return MAC{0x02, 0x00, byte(n >> 24), byte(n >> 16), byte(n >> 8), byte(n)}
}
