package vnet

import (
	"vnettracer/internal/sim"
)

// Link is a unidirectional point-to-point wire with finite bandwidth and
// propagation delay. Frames serialize one at a time; a busy link delays
// subsequent frames (head-of-line blocking), which is where wire-level
// congestion in the experiments comes from. Use two Links for a duplex
// cable.
type Link struct {
	eng       *sim.Engine
	bps       int64
	propNs    int64
	busyUntil int64
	dst       func(p *Packet)

	sent  uint64
	bytes uint64
}

// NewLink creates a link delivering to dst. bps <= 0 means infinite
// bandwidth; propNs is one-way propagation delay.
func NewLink(eng *sim.Engine, bps, propNs int64, dst func(p *Packet)) *Link {
	return &Link{eng: eng, bps: bps, propNs: propNs, dst: dst}
}

// SetDst rewires the receiving end.
func (l *Link) SetDst(dst func(p *Packet)) { l.dst = dst }

// Sent returns the number of frames transmitted.
func (l *Link) Sent() uint64 { return l.sent }

// Bytes returns the number of bytes transmitted.
func (l *Link) Bytes() uint64 { return l.bytes }

// Send transmits p, delivering it to the destination after serialization
// and propagation.
func (l *Link) Send(p *Packet) {
	now := l.eng.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	var tx int64
	if l.bps > 0 {
		tx = int64(p.WireLen()) * 8 * int64(sim.Second) / l.bps
	}
	done := start + tx
	l.busyUntil = done
	l.sent++
	l.bytes += uint64(p.WireLen())
	l.eng.Schedule(done+l.propNs-now, func() {
		if l.dst != nil {
			l.dst(p)
		}
	})
}
