package vnet

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Protocol numbers and header geometry.
const (
	EtherTypeIPv4 uint16 = 0x0800

	ProtoTCP uint8 = 6
	ProtoUDP uint8 = 17

	EthHeaderLen   = 14
	IPv4HeaderLen  = 20
	TCPBaseLen     = 20
	UDPHeaderLen   = 8
	VXLANHeaderLen = 8

	// VXLANOverhead is the full outer encapsulation added by a VXLAN
	// tunnel: outer Ethernet + outer IPv4 + outer UDP + VXLAN header.
	VXLANOverhead = EthHeaderLen + IPv4HeaderLen + UDPHeaderLen + VXLANHeaderLen

	// TCPOptionTraceID is the experimental TCP option kind vNetTracer uses
	// to carry the 32-bit packet trace ID (paper Section III-B: "a 4-byte
	// space in the options of the TCP header").
	TCPOptionTraceID uint8 = 253
	// TCPOptionTraceIDLen is the option length: kind + len + 4-byte ID.
	TCPOptionTraceIDLen = 6
)

// Unmarshal errors.
var (
	ErrShortBuffer = errors.New("vnet: buffer too short")
	ErrBadHeader   = errors.New("vnet: malformed header")
)

// EthernetHeader is a DIX Ethernet II header.
type EthernetHeader struct {
	Dst       MAC
	Src       MAC
	EtherType uint16
}

// Marshal appends the wire form to b.
func (h *EthernetHeader) Marshal(b []byte) []byte {
	b = append(b, h.Dst[:]...)
	b = append(b, h.Src[:]...)
	return binary.BigEndian.AppendUint16(b, h.EtherType)
}

// Unmarshal parses the wire form, returning the number of bytes consumed.
func (h *EthernetHeader) Unmarshal(b []byte) (int, error) {
	if len(b) < EthHeaderLen {
		return 0, fmt.Errorf("%w: ethernet: %d bytes", ErrShortBuffer, len(b))
	}
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return EthHeaderLen, nil
}

// IPv4Header is a fixed-size (no options) IPv4 header.
type IPv4Header struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src      IPv4
	Dst      IPv4
}

// Marshal appends the wire form to b, computing the header checksum.
func (h *IPv4Header) Marshal(b []byte) []byte {
	start := len(b)
	b = append(b, 0x45, h.TOS) // version 4, IHL 5
	b = binary.BigEndian.AppendUint16(b, h.TotalLen)
	b = binary.BigEndian.AppendUint16(b, h.ID)
	b = binary.BigEndian.AppendUint16(b, 0) // flags+fragment offset
	b = append(b, h.TTL, h.Protocol)
	b = binary.BigEndian.AppendUint16(b, 0) // checksum placeholder
	b = binary.BigEndian.AppendUint32(b, uint32(h.Src))
	b = binary.BigEndian.AppendUint32(b, uint32(h.Dst))
	sum := ipChecksum(b[start : start+IPv4HeaderLen])
	binary.BigEndian.PutUint16(b[start+10:start+12], sum)
	return b
}

// Unmarshal parses the wire form and validates the checksum.
func (h *IPv4Header) Unmarshal(b []byte) (int, error) {
	if len(b) < IPv4HeaderLen {
		return 0, fmt.Errorf("%w: ipv4: %d bytes", ErrShortBuffer, len(b))
	}
	if b[0]>>4 != 4 {
		return 0, fmt.Errorf("%w: not IPv4", ErrBadHeader)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl < IPv4HeaderLen || len(b) < ihl {
		return 0, fmt.Errorf("%w: bad IHL %d", ErrBadHeader, ihl)
	}
	if ipChecksum(b[:ihl]) != 0 {
		return 0, fmt.Errorf("%w: bad IPv4 checksum", ErrBadHeader)
	}
	h.TOS = b[1]
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	h.ID = binary.BigEndian.Uint16(b[4:6])
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = binary.BigEndian.Uint16(b[10:12])
	h.Src = IPv4(binary.BigEndian.Uint32(b[12:16]))
	h.Dst = IPv4(binary.BigEndian.Uint32(b[16:20]))
	return ihl, nil
}

// ipChecksum computes the RFC 1071 ones-complement sum of b; over a header
// whose checksum field is filled in, a correct header sums to zero.
func ipChecksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// TCPOption is a single TCP option TLV. OptionEndOfList and OptionNop have
// no payload.
type TCPOption struct {
	Kind uint8
	Data []byte
}

// TCPHeader is a TCP header with options. Sequence bookkeeping beyond what
// the simulation needs (seq/ack/window) is carried verbatim.
type TCPHeader struct {
	SrcPort uint16
	DstPort uint16
	Seq     uint32
	Ack     uint32
	Flags   uint8
	Window  uint16
	Options []TCPOption
}

// TCP flag bits.
const (
	TCPFlagFIN uint8 = 1 << 0
	TCPFlagSYN uint8 = 1 << 1
	TCPFlagRST uint8 = 1 << 2
	TCPFlagPSH uint8 = 1 << 3
	TCPFlagACK uint8 = 1 << 4
)

// HeaderLen returns the encoded header length including padded options.
func (h *TCPHeader) HeaderLen() int {
	optLen := 0
	for _, o := range h.Options {
		optLen += 2 + len(o.Data)
	}
	// Pad to a 4-byte boundary.
	return TCPBaseLen + (optLen+3)/4*4
}

// Marshal appends the wire form to b.
func (h *TCPHeader) Marshal(b []byte) []byte {
	hl := h.HeaderLen()
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint32(b, h.Seq)
	b = binary.BigEndian.AppendUint32(b, h.Ack)
	b = append(b, uint8(hl/4)<<4, h.Flags)
	b = binary.BigEndian.AppendUint16(b, h.Window)
	b = binary.BigEndian.AppendUint32(b, 0) // checksum+urgent: unused in sim
	optBytes := 0
	for _, o := range h.Options {
		b = append(b, o.Kind, uint8(2+len(o.Data)))
		b = append(b, o.Data...)
		optBytes += 2 + len(o.Data)
	}
	for ; optBytes%4 != 0; optBytes++ {
		b = append(b, 1) // NOP padding
	}
	return b
}

// Unmarshal parses the wire form, returning bytes consumed.
func (h *TCPHeader) Unmarshal(b []byte) (int, error) {
	if len(b) < TCPBaseLen {
		return 0, fmt.Errorf("%w: tcp: %d bytes", ErrShortBuffer, len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Seq = binary.BigEndian.Uint32(b[4:8])
	h.Ack = binary.BigEndian.Uint32(b[8:12])
	hl := int(b[12]>>4) * 4
	if hl < TCPBaseLen || len(b) < hl {
		return 0, fmt.Errorf("%w: tcp data offset %d", ErrBadHeader, hl)
	}
	h.Flags = b[13]
	h.Window = binary.BigEndian.Uint16(b[14:16])
	h.Options = nil
	opts := b[TCPBaseLen:hl]
	for i := 0; i < len(opts); {
		kind := opts[i]
		switch kind {
		case 0: // end of list
			i = len(opts)
		case 1: // NOP
			i++
		default:
			if i+1 >= len(opts) {
				return 0, fmt.Errorf("%w: truncated tcp option", ErrBadHeader)
			}
			olen := int(opts[i+1])
			if olen < 2 || i+olen > len(opts) {
				return 0, fmt.Errorf("%w: tcp option kind %d len %d", ErrBadHeader, kind, olen)
			}
			data := make([]byte, olen-2)
			copy(data, opts[i+2:i+olen])
			h.Options = append(h.Options, TCPOption{Kind: kind, Data: data})
			i += olen
		}
	}
	return hl, nil
}

// FindOption returns the first option with the given kind.
func (h *TCPHeader) FindOption(kind uint8) (TCPOption, bool) {
	for _, o := range h.Options {
		if o.Kind == kind {
			return o, true
		}
	}
	return TCPOption{}, false
}

// UDPHeader is a UDP header.
type UDPHeader struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16 // header + payload
}

// Marshal appends the wire form to b.
func (h *UDPHeader) Marshal(b []byte) []byte {
	b = binary.BigEndian.AppendUint16(b, h.SrcPort)
	b = binary.BigEndian.AppendUint16(b, h.DstPort)
	b = binary.BigEndian.AppendUint16(b, h.Length)
	return binary.BigEndian.AppendUint16(b, 0) // checksum unused in sim
}

// Unmarshal parses the wire form, returning bytes consumed.
func (h *UDPHeader) Unmarshal(b []byte) (int, error) {
	if len(b) < UDPHeaderLen {
		return 0, fmt.Errorf("%w: udp: %d bytes", ErrShortBuffer, len(b))
	}
	h.SrcPort = binary.BigEndian.Uint16(b[0:2])
	h.DstPort = binary.BigEndian.Uint16(b[2:4])
	h.Length = binary.BigEndian.Uint16(b[4:6])
	if h.Length < UDPHeaderLen {
		return 0, fmt.Errorf("%w: udp length %d", ErrBadHeader, h.Length)
	}
	return UDPHeaderLen, nil
}

// VXLANHeader is the 8-byte VXLAN header (RFC 7348).
type VXLANHeader struct {
	VNI uint32 // 24-bit VXLAN network identifier
}

// Marshal appends the wire form to b.
func (h *VXLANHeader) Marshal(b []byte) []byte {
	b = append(b, 0x08, 0, 0, 0) // flags: I bit set
	return binary.BigEndian.AppendUint32(b, h.VNI<<8)
}

// Unmarshal parses the wire form, returning bytes consumed.
func (h *VXLANHeader) Unmarshal(b []byte) (int, error) {
	if len(b) < VXLANHeaderLen {
		return 0, fmt.Errorf("%w: vxlan: %d bytes", ErrShortBuffer, len(b))
	}
	if b[0]&0x08 == 0 {
		return 0, fmt.Errorf("%w: vxlan I flag clear", ErrBadHeader)
	}
	h.VNI = binary.BigEndian.Uint32(b[4:8]) >> 8
	return VXLANHeaderLen, nil
}
