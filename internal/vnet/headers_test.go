package vnet

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestParseIPv4(t *testing.T) {
	tests := []struct {
		in      string
		want    IPv4
		wantErr bool
	}{
		{"10.0.0.1", 0x0a000001, false},
		{"255.255.255.255", 0xffffffff, false},
		{"0.0.0.0", 0, false},
		{"192.168.1.17", 0xc0a80111, false},
		{"256.0.0.1", 0, true},
		{"1.2.3", 0, true},
		{"1.2.3.4.5", 0, true},
		{"a.b.c.d", 0, true},
		{"", 0, true},
	}
	for _, tc := range tests {
		got, err := ParseIPv4(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseIPv4(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseIPv4(%q) = %#x, want %#x", tc.in, got, tc.want)
		}
	}
}

func TestIPv4RoundTripString(t *testing.T) {
	f := func(raw uint32) bool {
		ip := IPv4(raw)
		back, err := ParseIPv4(ip.String())
		return err == nil && back == ip
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEthernetRoundTrip(t *testing.T) {
	h := EthernetHeader{Dst: MACFromInt(1), Src: MACFromInt(2), EtherType: EtherTypeIPv4}
	b := h.Marshal(nil)
	if len(b) != EthHeaderLen {
		t.Fatalf("len = %d", len(b))
	}
	var got EthernetHeader
	n, err := got.Unmarshal(b)
	if err != nil || n != EthHeaderLen {
		t.Fatalf("unmarshal: n=%d err=%v", n, err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
}

func TestIPv4HeaderRoundTripAndChecksum(t *testing.T) {
	h := IPv4Header{
		TOS: 0x10, TotalLen: 1500, ID: 42, TTL: 64,
		Protocol: ProtoTCP,
		Src:      MustParseIPv4("10.0.0.1"),
		Dst:      MustParseIPv4("10.0.0.2"),
	}
	b := h.Marshal(nil)
	var got IPv4Header
	if _, err := got.Unmarshal(b); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.Src != h.Src || got.Dst != h.Dst || got.Protocol != h.Protocol ||
		got.TotalLen != h.TotalLen || got.TTL != h.TTL || got.ID != h.ID {
		t.Fatalf("round trip: got %+v want %+v", got, h)
	}
	// Corrupt a byte: checksum must catch it.
	b[16] ^= 0xff
	if _, err := got.Unmarshal(b); err == nil {
		t.Fatal("corrupted header accepted")
	}
}

func TestTCPHeaderRoundTripWithOptions(t *testing.T) {
	h := TCPHeader{
		SrcPort: 443, DstPort: 55555,
		Seq: 0x12345678, Ack: 0x9abcdef0,
		Flags: TCPFlagACK | TCPFlagPSH, Window: 65535,
		Options: []TCPOption{
			{Kind: TCPOptionTraceID, Data: []byte{0xde, 0xad, 0xbe, 0xef}},
		},
	}
	b := h.Marshal(nil)
	if len(b) != h.HeaderLen() {
		t.Fatalf("marshal len %d != HeaderLen %d", len(b), h.HeaderLen())
	}
	if h.HeaderLen()%4 != 0 {
		t.Fatalf("HeaderLen %d not 4-byte aligned", h.HeaderLen())
	}
	var got TCPHeader
	n, err := got.Unmarshal(b)
	if err != nil || n != h.HeaderLen() {
		t.Fatalf("unmarshal: n=%d err=%v", n, err)
	}
	if got.SrcPort != h.SrcPort || got.DstPort != h.DstPort || got.Seq != h.Seq ||
		got.Ack != h.Ack || got.Flags != h.Flags || got.Window != h.Window {
		t.Fatalf("fields: got %+v", got)
	}
	opt, ok := got.FindOption(TCPOptionTraceID)
	if !ok || !bytes.Equal(opt.Data, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Fatalf("trace option: %+v ok=%v", opt, ok)
	}
}

func TestTCPHeaderNoOptions(t *testing.T) {
	h := TCPHeader{SrcPort: 1, DstPort: 2}
	if h.HeaderLen() != TCPBaseLen {
		t.Fatalf("HeaderLen = %d", h.HeaderLen())
	}
	b := h.Marshal(nil)
	var got TCPHeader
	if _, err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if _, ok := got.FindOption(TCPOptionTraceID); ok {
		t.Fatal("phantom option")
	}
}

func TestUDPHeaderRoundTrip(t *testing.T) {
	h := UDPHeader{SrcPort: 53, DstPort: 33333, Length: 520}
	b := h.Marshal(nil)
	var got UDPHeader
	n, err := got.Unmarshal(b)
	if err != nil || n != UDPHeaderLen {
		t.Fatalf("unmarshal: n=%d err=%v", n, err)
	}
	if got != h {
		t.Fatalf("round trip: %+v != %+v", got, h)
	}
}

func TestVXLANHeaderRoundTrip(t *testing.T) {
	h := VXLANHeader{VNI: 0x00abcdef}
	b := h.Marshal(nil)
	var got VXLANHeader
	if _, err := got.Unmarshal(b); err != nil {
		t.Fatal(err)
	}
	if got.VNI != h.VNI {
		t.Fatalf("VNI = %#x, want %#x", got.VNI, h.VNI)
	}
}

func TestShortBuffers(t *testing.T) {
	var e EthernetHeader
	if _, err := e.Unmarshal(make([]byte, 5)); err == nil {
		t.Error("short ethernet accepted")
	}
	var ip IPv4Header
	if _, err := ip.Unmarshal(make([]byte, 10)); err == nil {
		t.Error("short ipv4 accepted")
	}
	var tcp TCPHeader
	if _, err := tcp.Unmarshal(make([]byte, 10)); err == nil {
		t.Error("short tcp accepted")
	}
	var udp UDPHeader
	if _, err := udp.Unmarshal(make([]byte, 3)); err == nil {
		t.Error("short udp accepted")
	}
	var vx VXLANHeader
	if _, err := vx.Unmarshal(make([]byte, 3)); err == nil {
		t.Error("short vxlan accepted")
	}
}
