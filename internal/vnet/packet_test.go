package vnet

import (
	"bytes"
	"math/rand"
	"testing"
)

// makeUDP builds a simple UDP packet for tests.
func makeUDP(payloadLen int) *Packet {
	return &Packet{
		Eth: EthernetHeader{Dst: MACFromInt(2), Src: MACFromInt(1), EtherType: EtherTypeIPv4},
		IP: IPv4Header{
			TTL: 64, Protocol: ProtoUDP,
			Src: MustParseIPv4("10.0.0.1"), Dst: MustParseIPv4("10.0.0.2"),
		},
		UDP:     &UDPHeader{SrcPort: 5001, DstPort: 9000},
		Payload: bytes.Repeat([]byte{0xab}, payloadLen),
	}
}

func makeTCP(payloadLen int) *Packet {
	return &Packet{
		Eth: EthernetHeader{Dst: MACFromInt(2), Src: MACFromInt(1), EtherType: EtherTypeIPv4},
		IP: IPv4Header{
			TTL: 64, Protocol: ProtoTCP,
			Src: MustParseIPv4("10.0.0.1"), Dst: MustParseIPv4("10.0.0.2"),
		},
		TCP:     &TCPHeader{SrcPort: 33000, DstPort: 80, Flags: TCPFlagACK},
		Payload: bytes.Repeat([]byte{0xcd}, payloadLen),
	}
}

func TestPacketMarshalRoundTripUDP(t *testing.T) {
	p := makeUDP(56)
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != p.WireLen() {
		t.Fatalf("marshal len %d != WireLen %d", len(b), p.WireLen())
	}
	got, err := UnmarshalPacket(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow() != p.Flow() {
		t.Fatalf("flow: %v != %v", got.Flow(), p.Flow())
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestPacketMarshalRoundTripTCPWithTraceID(t *testing.T) {
	p := makeTCP(100)
	if err := p.SetTCPTraceID(0xfeedface); err != nil {
		t.Fatal(err)
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPacket(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.TraceID != 0xfeedface {
		t.Fatalf("TraceID = %#x after parse", got.TraceID)
	}
	if !bytes.Equal(got.Payload, p.Payload) {
		t.Fatal("payload corrupted by trace option")
	}
}

func TestSetTCPTraceIDReplacesExisting(t *testing.T) {
	p := makeTCP(0)
	if err := p.SetTCPTraceID(1); err != nil {
		t.Fatal(err)
	}
	if err := p.SetTCPTraceID(2); err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, o := range p.TCP.Options {
		if o.Kind == TCPOptionTraceID {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("trace options = %d, want 1", count)
	}
	if p.TraceID != 2 {
		t.Fatalf("TraceID = %d", p.TraceID)
	}
}

func TestSetTCPTraceIDOnUDPFails(t *testing.T) {
	p := makeUDP(10)
	if err := p.SetTCPTraceID(1); err == nil {
		t.Fatal("SetTCPTraceID on UDP packet succeeded")
	}
}

func TestUDPTraceIDPutTrim(t *testing.T) {
	p := makeUDP(56)
	origLen := len(p.Payload)
	if err := p.PutUDPTraceID(0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if len(p.Payload) != origLen+4 {
		t.Fatalf("payload len = %d, want %d", len(p.Payload), origLen+4)
	}
	id, err := p.TrimUDPTraceID()
	if err != nil {
		t.Fatal(err)
	}
	if id != 0xdeadbeef {
		t.Fatalf("trimmed id = %#x", id)
	}
	if len(p.Payload) != origLen {
		t.Fatalf("payload len after trim = %d, want %d (application transparency)", len(p.Payload), origLen)
	}
}

func TestTrimUDPTraceIDShortPayload(t *testing.T) {
	p := makeUDP(2)
	if _, err := p.TrimUDPTraceID(); err == nil {
		t.Fatal("trim on short payload succeeded")
	}
}

func TestVXLANEncapRoundTrip(t *testing.T) {
	inner := makeUDP(56)
	inner.PutUDPTraceID(0x1234abcd)
	outer := &Packet{
		Eth: EthernetHeader{Dst: MACFromInt(20), Src: MACFromInt(10), EtherType: EtherTypeIPv4},
		IP: IPv4Header{
			TTL: 64, Protocol: ProtoUDP,
			Src: MustParseIPv4("192.168.0.1"), Dst: MustParseIPv4("192.168.0.2"),
		},
		UDP:   &UDPHeader{SrcPort: 48879, DstPort: 4789},
		VXLAN: &VXLANHeader{VNI: 42},
		Inner: inner,
	}
	if outer.WireLen() != inner.WireLen()+VXLANOverhead {
		t.Fatalf("WireLen %d != inner %d + overhead %d", outer.WireLen(), inner.WireLen(), VXLANOverhead)
	}
	b, err := outer.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != outer.WireLen() {
		t.Fatalf("marshal len %d != WireLen %d", len(b), outer.WireLen())
	}
	got, err := UnmarshalPacket(b, 4789)
	if err != nil {
		t.Fatal(err)
	}
	if got.Inner == nil {
		t.Fatal("inner packet not parsed")
	}
	if got.VXLAN.VNI != 42 {
		t.Fatalf("VNI = %d", got.VXLAN.VNI)
	}
	if got.InnerFlow() != inner.Flow() {
		t.Fatalf("inner flow %v != %v", got.InnerFlow(), inner.Flow())
	}
	// The inner trace ID survives encapsulation as the payload trailer.
	if id, err := got.Inner.TrimUDPTraceID(); err != nil || id != 0x1234abcd {
		t.Fatalf("inner trace id = %#x err=%v", id, err)
	}
}

func TestPacketClone(t *testing.T) {
	p := makeTCP(10)
	p.SetTCPTraceID(7)
	c := p.Clone()
	c.Payload[0] = 0xFF
	c.TCP.Options[0].Data[0] = 0xFF
	c.IP.Src = 0
	if p.Payload[0] == 0xFF || p.TCP.Options[0].Data[0] == 0xFF || p.IP.Src == 0 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestFiveTupleReverse(t *testing.T) {
	f := FiveTuple{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP}
	r := f.Reverse()
	if r.Src != 2 || r.Dst != 1 || r.SrcPort != 4 || r.DstPort != 3 {
		t.Fatalf("reverse = %+v", r)
	}
	if r.Reverse() != f {
		t.Fatal("double reverse is not identity")
	}
}

func TestPacketMarshalFuzzRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		var p *Packet
		if rng.Intn(2) == 0 {
			p = makeUDP(rng.Intn(1400))
		} else {
			p = makeTCP(rng.Intn(1400))
			if rng.Intn(2) == 0 {
				p.SetTCPTraceID(rng.Uint32())
			}
		}
		p.IP.Src = IPv4(rng.Uint32())
		p.IP.Dst = IPv4(rng.Uint32())
		b, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalPacket(b, 0)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got.Flow() != p.Flow() {
			t.Fatalf("iter %d: flow mismatch", i)
		}
		if !bytes.Equal(got.Payload, p.Payload) {
			t.Fatalf("iter %d: payload mismatch", i)
		}
		if got.TraceID != p.TraceID {
			t.Fatalf("iter %d: trace id %#x != %#x", i, got.TraceID, p.TraceID)
		}
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 2000; i++ {
		b := make([]byte, rng.Intn(100))
		rng.Read(b)
		// Must never panic; errors are fine.
		_, _ = UnmarshalPacket(b, 4789)
	}
}
