package vnet

import (
	"fmt"

	"vnettracer/internal/sim"
)

// Direction distinguishes the two hook points on a device.
type Direction int

// Hook directions.
const (
	Ingress Direction = iota + 1
	Egress
)

func (d Direction) String() string {
	switch d {
	case Ingress:
		return "ingress"
	case Egress:
		return "egress"
	}
	return fmt.Sprintf("direction(%d)", int(d))
}

// Hook observes a packet crossing a device and returns the CPU time (ns)
// the observation consumed; the device charges that cost to the packet,
// which is how tracing overhead becomes visible in measured latency and
// throughput. This is the attach surface vNetTracer binds eBPF trace
// scripts to.
type Hook func(p *Packet, dir Direction) (costNs int64)

// DevStats counts packet dispositions at a device.
type DevStats struct {
	Received      uint64
	Delivered     uint64
	DroppedQueue  uint64 // queue overflow
	DroppedPolice uint64 // ingress policer
	DroppedShaper uint64 // shaping delay exceeded the qdisc bound
	DroppedXform  uint64 // transform declined the packet
	BytesIn       uint64
	BytesOut      uint64
}

// NetDevConfig configures a queueing network device.
type NetDevConfig struct {
	// Name is the interface name (e.g. "eth0", "vnet0", "flannel.1").
	Name string
	// Ifindex is the device index carried into trace contexts.
	Ifindex int
	// ProcNs computes per-packet processing time. Nil means zero cost.
	ProcNs func(p *Packet) int64
	// RateBps is the transmission rate in bits per second; 0 = infinite.
	RateBps int64
	// QueueCap bounds the queue in packets; 0 = unbounded.
	QueueCap int
	// Policer, when non-nil, drops packets at ingress above the
	// configured rate (OVS ingress policing, paper case study I).
	Policer *TokenBucket
	// ShaperFor, when non-nil, classifies each arriving packet into an
	// HTB class (nil = unshaped); non-conformant packets are delayed
	// before entering the device queue, so shaped flows do not
	// head-of-line block unshaped ones (the HTB QoS alternative of case
	// study I). Packets whose conformance delay exceeds MaxShapeDelayNs
	// are dropped, modelling a finite qdisc queue.
	ShaperFor func(p *Packet) *HTBClass
	// MaxShapeDelayNs bounds shaping delay; 0 means 50ms.
	MaxShapeDelayNs int64
	// Transform rewrites the packet between ingress and egress (VXLAN
	// encap/decap, NAT). Returning nil drops the packet.
	Transform func(p *Packet) *Packet
	// Out delivers the packet downstream.
	Out func(p *Packet)
}

// NetDev is a store-and-forward queueing station: packets are policed and
// queued at ingress, served one at a time (processing + serialization
// delay), transformed, and handed to Out. Ingress hooks run at arrival,
// egress hooks at departure; hook CPU cost is charged to the packet's
// service time, so attaching expensive tracing slows the device exactly as
// in a real kernel.
type NetDev struct {
	cfg     NetDevConfig
	eng     *sim.Engine
	queue   []queued
	busy    bool
	rxHooks map[int]Hook
	txHooks map[int]Hook
	nextID  int
	stats   DevStats
}

type queued struct {
	pkt     *Packet
	extraNs int64 // hook cost accrued at ingress
}

// NewNetDev constructs a device bound to the engine.
func NewNetDev(eng *sim.Engine, cfg NetDevConfig) *NetDev {
	return &NetDev{
		cfg:     cfg,
		eng:     eng,
		rxHooks: make(map[int]Hook),
		txHooks: make(map[int]Hook),
	}
}

// Name returns the interface name.
func (d *NetDev) Name() string { return d.cfg.Name }

// Ifindex returns the interface index.
func (d *NetDev) Ifindex() int { return d.cfg.Ifindex }

// Stats returns a snapshot of the device counters.
func (d *NetDev) Stats() DevStats { return d.stats }

// QueueLen returns the instantaneous queue depth.
func (d *NetDev) QueueLen() int { return len(d.queue) }

// SetOut rewires the downstream delivery function; topology builders use
// this to connect devices after construction.
func (d *NetDev) SetOut(out func(p *Packet)) { d.cfg.Out = out }

// SetTransform installs or replaces the packet transform (e.g. VXLAN
// encap/decap) after construction.
func (d *NetDev) SetTransform(f func(p *Packet) *Packet) { d.cfg.Transform = f }

// AttachHook registers a hook at the given direction and returns a detach
// function. Hooks may be attached and detached at runtime, which is the
// mechanism behind vNetTracer's reconfigurability.
func (d *NetDev) AttachHook(dir Direction, h Hook) (detach func()) {
	id := d.nextID
	d.nextID++
	m := d.rxHooks
	if dir == Egress {
		m = d.txHooks
	}
	m[id] = h
	return func() { delete(m, id) }
}

// Receive accepts a packet at the current simulated time.
func (d *NetDev) Receive(p *Packet) {
	d.stats.Received++
	d.stats.BytesIn += uint64(p.WireLen())

	var extra int64
	for _, h := range d.rxHooks {
		extra += h(p, Ingress)
	}

	if d.cfg.Policer != nil && !d.cfg.Policer.Allow(int64(p.WireLen())*8, d.eng.Now()) {
		d.stats.DroppedPolice++
		return
	}
	if d.cfg.ShaperFor != nil {
		if class := d.cfg.ShaperFor(p); class != nil {
			delay := class.Delay(int64(p.WireLen())*8, d.eng.Now())
			if delay > 0 {
				bound := d.cfg.MaxShapeDelayNs
				if bound <= 0 {
					bound = 50 * int64(sim.Millisecond)
				}
				if delay > bound {
					d.stats.DroppedShaper++
					return
				}
				d.eng.Schedule(delay, func() { d.enqueue(p, extra) })
				return
			}
		}
	}
	d.enqueue(p, extra)
}

func (d *NetDev) enqueue(p *Packet, extra int64) {
	if d.cfg.QueueCap > 0 && len(d.queue) >= d.cfg.QueueCap {
		d.stats.DroppedQueue++
		return
	}
	d.queue = append(d.queue, queued{pkt: p, extraNs: extra})
	d.maybeServe()
}

func (d *NetDev) maybeServe() {
	if d.busy || len(d.queue) == 0 {
		return
	}
	d.busy = true
	q := d.queue[0]
	d.queue = d.queue[1:]

	var proc int64
	if d.cfg.ProcNs != nil {
		proc = d.cfg.ProcNs(q.pkt)
	}
	proc += q.extraNs

	var tx int64
	if d.cfg.RateBps > 0 {
		tx = int64(q.pkt.WireLen()) * 8 * int64(sim.Second) / d.cfg.RateBps
	}

	d.eng.Schedule(proc+tx, func() {
		d.finish(q.pkt)
	})
}

func (d *NetDev) finish(p *Packet) {
	out := p
	if d.cfg.Transform != nil {
		out = d.cfg.Transform(p)
	}
	if out == nil {
		d.stats.DroppedXform++
	} else {
		var extra int64
		for _, h := range d.txHooks {
			extra += h(out, Egress)
		}
		d.stats.Delivered++
		d.stats.BytesOut += uint64(out.WireLen())
		if extra > 0 {
			// Egress tracing cost delays the handoff downstream.
			pkt := out
			d.eng.Schedule(extra, func() {
				if d.cfg.Out != nil {
					d.cfg.Out(pkt)
				}
			})
		} else if d.cfg.Out != nil {
			d.cfg.Out(out)
		}
	}
	d.busy = false
	d.maybeServe()
}
