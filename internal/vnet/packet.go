package vnet

import (
	"encoding/binary"
	"fmt"
)

// FiveTuple identifies a flow. vNetTracer's filter rules match on these
// fields (paper Section III-A: "the containerized application source IP,
// destination IP, source port, destination port").
type FiveTuple struct {
	Src     IPv4
	Dst     IPv4
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders "proto src:sport->dst:dport".
func (f FiveTuple) String() string {
	proto := "?"
	switch f.Proto {
	case ProtoTCP:
		proto = "tcp"
	case ProtoUDP:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s:%d->%s:%d", proto, f.Src, f.SrcPort, f.Dst, f.DstPort)
}

// Reverse returns the tuple of the opposite direction.
func (f FiveTuple) Reverse() FiveTuple {
	return FiveTuple{Src: f.Dst, Dst: f.Src, SrcPort: f.DstPort, DstPort: f.SrcPort, Proto: f.Proto}
}

// Packet is a parsed network packet travelling through the simulated data
// plane. Exactly one of TCP/UDP is set for a plain packet. A VXLAN
// encapsulated packet has Proto == ProtoUDP, a VXLAN header, and the inner
// packet in Inner; its byte length accounts for the full outer stack.
type Packet struct {
	Eth EthernetHeader
	IP  IPv4Header
	TCP *TCPHeader
	UDP *UDPHeader

	// VXLAN is non-nil on encapsulated packets, with Inner carrying the
	// original frame.
	VXLAN *VXLANHeader
	Inner *Packet

	// Payload is the transport payload (empty for encapsulated packets;
	// the inner packet is the payload).
	Payload []byte

	// Seq is a monotonically increasing per-flow sequence number assigned
	// by the sending stack; it models the paper's "packet number".
	Seq uint64

	// TraceID is the 32-bit trace identifier carried in the packet bytes
	// (TCP option / UDP trailer). Zero means untraced. It is mirrored
	// here after insertion so hooks need not re-parse bytes, but the
	// authoritative copy lives in the serialized form.
	TraceID uint32

	// SentAt is the sender stack timestamp (engine time) for ground-truth
	// validation; traced metrics must use eBPF timestamps instead.
	SentAt int64
}

// Flow returns the packet's five-tuple. For encapsulated packets it
// describes the outer flow.
func (p *Packet) Flow() FiveTuple {
	ft := FiveTuple{Src: p.IP.Src, Dst: p.IP.Dst, Proto: p.IP.Protocol}
	switch {
	case p.TCP != nil:
		ft.SrcPort, ft.DstPort = p.TCP.SrcPort, p.TCP.DstPort
	case p.UDP != nil:
		ft.SrcPort, ft.DstPort = p.UDP.SrcPort, p.UDP.DstPort
	}
	return ft
}

// InnerFlow returns the innermost five-tuple (the application flow even
// under VXLAN encapsulation).
func (p *Packet) InnerFlow() FiveTuple {
	if p.Inner != nil {
		return p.Inner.InnerFlow()
	}
	return p.Flow()
}

// InnerTraceID returns the innermost packet's trace ID.
func (p *Packet) InnerTraceID() uint32 {
	if p.Inner != nil {
		return p.Inner.InnerTraceID()
	}
	return p.TraceID
}

// TransportLen returns the transport header length in bytes.
func (p *Packet) TransportLen() int {
	switch {
	case p.TCP != nil:
		return p.TCP.HeaderLen()
	case p.UDP != nil:
		return UDPHeaderLen
	}
	return 0
}

// WireLen returns the full frame length in bytes, including any VXLAN
// encapsulation of an inner packet.
func (p *Packet) WireLen() int {
	n := EthHeaderLen + IPv4HeaderLen + p.TransportLen() + len(p.Payload)
	if p.VXLAN != nil && p.Inner != nil {
		n += VXLANHeaderLen + p.Inner.WireLen()
	}
	return n
}

// Clone deep-copies the packet, payload and headers included.
func (p *Packet) Clone() *Packet {
	c := *p
	if p.TCP != nil {
		tcp := *p.TCP
		tcp.Options = make([]TCPOption, len(p.TCP.Options))
		for i, o := range p.TCP.Options {
			data := make([]byte, len(o.Data))
			copy(data, o.Data)
			tcp.Options[i] = TCPOption{Kind: o.Kind, Data: data}
		}
		c.TCP = &tcp
	}
	if p.UDP != nil {
		udp := *p.UDP
		c.UDP = &udp
	}
	if p.VXLAN != nil {
		vx := *p.VXLAN
		c.VXLAN = &vx
	}
	if p.Inner != nil {
		c.Inner = p.Inner.Clone()
	}
	c.Payload = make([]byte, len(p.Payload))
	copy(c.Payload, p.Payload)
	return &c
}

// Marshal serializes the packet to wire bytes.
func (p *Packet) Marshal() ([]byte, error) {
	var b []byte
	b = p.Eth.Marshal(b)
	ip := p.IP
	ip.TotalLen = uint16(p.WireLen() - EthHeaderLen)
	b = ip.Marshal(b)
	switch {
	case p.TCP != nil:
		b = p.TCP.Marshal(b)
		b = append(b, p.Payload...)
	case p.UDP != nil:
		udp := *p.UDP
		if p.VXLAN != nil && p.Inner != nil {
			inner, err := p.Inner.Marshal()
			if err != nil {
				return nil, fmt.Errorf("vnet: marshal inner: %w", err)
			}
			udp.Length = uint16(UDPHeaderLen + VXLANHeaderLen + len(inner))
			b = udp.Marshal(b)
			b = p.VXLAN.Marshal(b)
			b = append(b, inner...)
		} else {
			udp.Length = uint16(UDPHeaderLen + len(p.Payload))
			b = udp.Marshal(b)
			b = append(b, p.Payload...)
		}
	default:
		return nil, fmt.Errorf("%w: packet has no transport header", ErrBadHeader)
	}
	return b, nil
}

// UnmarshalPacket parses wire bytes into a packet, recursing into VXLAN
// encapsulation when the outer UDP destination port matches vxlanPort
// (pass 0 to disable encapsulation detection).
func UnmarshalPacket(b []byte, vxlanPort uint16) (*Packet, error) {
	p := &Packet{}
	n, err := p.Eth.Unmarshal(b)
	if err != nil {
		return nil, err
	}
	b = b[n:]
	if p.Eth.EtherType != EtherTypeIPv4 {
		return nil, fmt.Errorf("%w: ethertype %#04x", ErrBadHeader, p.Eth.EtherType)
	}
	n, err = p.IP.Unmarshal(b)
	if err != nil {
		return nil, err
	}
	b = b[n:]
	switch p.IP.Protocol {
	case ProtoTCP:
		p.TCP = &TCPHeader{}
		n, err = p.TCP.Unmarshal(b)
		if err != nil {
			return nil, err
		}
		p.Payload = append([]byte(nil), b[n:]...)
		if opt, ok := p.TCP.FindOption(TCPOptionTraceID); ok && len(opt.Data) == 4 {
			p.TraceID = binary.BigEndian.Uint32(opt.Data)
		}
	case ProtoUDP:
		p.UDP = &UDPHeader{}
		n, err = p.UDP.Unmarshal(b)
		if err != nil {
			return nil, err
		}
		rest := b[n:]
		if vxlanPort != 0 && p.UDP.DstPort == vxlanPort {
			p.VXLAN = &VXLANHeader{}
			vn, err := p.VXLAN.Unmarshal(rest)
			if err != nil {
				return nil, err
			}
			inner, err := UnmarshalPacket(rest[vn:], vxlanPort)
			if err != nil {
				return nil, fmt.Errorf("vnet: unmarshal inner: %w", err)
			}
			p.Inner = inner
		} else {
			p.Payload = append([]byte(nil), rest...)
		}
	default:
		return nil, fmt.Errorf("%w: ip protocol %d", ErrBadHeader, p.IP.Protocol)
	}
	return p, nil
}

// SetTCPTraceID embeds a trace ID as a TCP option, replacing any existing
// trace option. This is the paper's tcp_options_write path.
func (p *Packet) SetTCPTraceID(id uint32) error {
	if p.TCP == nil {
		return fmt.Errorf("%w: not a TCP packet", ErrBadHeader)
	}
	data := make([]byte, 4)
	binary.BigEndian.PutUint32(data, id)
	for i := range p.TCP.Options {
		if p.TCP.Options[i].Kind == TCPOptionTraceID {
			p.TCP.Options[i].Data = data
			p.TraceID = id
			return nil
		}
	}
	p.TCP.Options = append(p.TCP.Options, TCPOption{Kind: TCPOptionTraceID, Data: data})
	p.TraceID = id
	return nil
}

// PutUDPTraceID appends a 4-byte trace ID to the UDP payload, modelling the
// paper's __skb_put() at the sender.
func (p *Packet) PutUDPTraceID(id uint32) error {
	if p.UDP == nil {
		return fmt.Errorf("%w: not a UDP packet", ErrBadHeader)
	}
	p.Payload = binary.BigEndian.AppendUint32(p.Payload, id)
	p.TraceID = id
	return nil
}

// TrimUDPTraceID removes the trailing 4-byte trace ID from the UDP payload,
// modelling pskb_trim_rcsum() at the receiver, and returns it.
func (p *Packet) TrimUDPTraceID() (uint32, error) {
	if p.UDP == nil {
		return 0, fmt.Errorf("%w: not a UDP packet", ErrBadHeader)
	}
	if len(p.Payload) < 4 {
		return 0, fmt.Errorf("%w: payload too short for trace ID", ErrShortBuffer)
	}
	id := binary.BigEndian.Uint32(p.Payload[len(p.Payload)-4:])
	p.Payload = p.Payload[:len(p.Payload)-4]
	return id, nil
}
