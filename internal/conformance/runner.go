package conformance

import (
	"fmt"
	"os"
	"path/filepath"

	"vnettracer/internal/clocksync"
	"vnettracer/internal/control"
	"vnettracer/internal/core"
	"vnettracer/internal/kernel"
	"vnettracer/internal/metrics"
	"vnettracer/internal/script"
	"vnettracer/internal/sim"
	"vnettracer/internal/tracedb"
	"vnettracer/internal/vnet"
)

// Clock-sync probing: each agent exchanges syncSamples Cristian samples
// with the master (the engine's true clock) during the first
// ~syncSamples*syncSpacingNs of the run, before the workload starts.
const (
	syncSamples   = 25
	syncSpacingNs = 40 * sim.Microsecond
)

// collectorState is one collector slot in the scaled-out tier: its own
// trace store (per-agent tables partition across these), its dedup
// collector, and the fault-injecting sink agents ship to. Durable
// scenarios add the WAL/checkpoint layer plus the bookkeeping a
// kill/recover fault needs: the in-memory counters the crash destroys
// (monitoring state a real process loses, which the harness folds back
// into the cluster reconciliation) and the crash-instant snapshots the
// recovery-fidelity checks compare against.
type collectorState struct {
	name string
	db   *tracedb.DB
	col  *control.Collector
	sink *faultSink

	// Durable-scenario state: the durability layer and its directories
	// (dataDir holds spilled extents, walDir the WAL and checkpoints).
	dur     *tracedb.Durability
	dataDir string
	walDir  string

	// wasCrashed marks the kill fault fired here; recovered marks the
	// rebuild completed (the sink is fresh, so sink.crashed is false
	// again afterwards).
	wasCrashed bool
	recovered  bool

	// lost* snapshot the collector's in-memory ingest counters at the
	// crash instant. Recovery rebuilds the store and ledgers from disk
	// but process-local counters legitimately restart at zero, so the
	// invariants add these back when reconciling cluster-wide totals.
	lostBatches, lostRecords, lostRingDrops uint64
	lostDupBatches, lostDupRecords          uint64
	// aggLost holds the aggregate-store counter deltas the crash dropped
	// (dup/fenced bookkeeping since the last checkpoint is deliberately
	// transient; merged totals must survive exactly).
	aggLost tracedb.AggTotals

	// Crash-instant ground truth for the recovery-fidelity checks.
	preRecords uint64
	preTotals  tracedb.AggTotals
	preLedgers map[string]tracedb.AgentLedger

	// notes collects recovery-fidelity violations found at fault time;
	// check() surfaces them with the other invariants.
	notes []string
}

// agentState is one traced machine in the simulated cluster.
type agentState struct {
	idx     int
	name    string
	machine *core.Machine
	agent   *control.Agent

	// zombie is the pre-kill agent process after a KillAtNs fault: it no
	// longer owns the machine's ring but still holds its delivery spool,
	// and anything it ships carries the stale epoch.
	zombie *control.Agent

	// unattended counts probe fires that hit a site with no program
	// attached (the kill-to-reprovision window) — ground truth the
	// pipeline legitimately never saw.
	unattended uint64

	// fencedBatches/fencedRecords mirror the collector ledger's fence
	// counters for this agent; check() fills them before the per-table
	// and metric passes so cleanliness tests can consult them.
	fencedBatches uint64
	fencedRecords uint64

	// srcTP records udp_send_skb fires, dstTP records udp_recvmsg fires;
	// TPIDs are distinct per agent, so every table belongs to exactly one
	// machine.
	srcTP, dstTP uint32

	// nextPktSeq models the sending stack's per-machine packet counter.
	nextPktSeq uint64

	offsetNs int64
	driftPPB int64

	samples []clocksync.Sample
	est     clocksync.Estimate
	// skewTolNs bounds the residual alignment error after skew
	// correction: Cristian's half-best-RTT ambiguity plus drift
	// accumulated over the horizon.
	skewTolNs int64
}

// tableTruth is the workload's ground truth for one record table.
type tableTruth struct {
	fires   uint64
	bytes   uint64 // sum of per-record payload bytes (WireLen - trace ID)
	perFlow map[metrics.FlowKey]uint64
	ids     map[uint32]uint64
	firstNs int64 // engine-truth time of first fire
	lastNs  int64
}

// pathTruth is the ground truth for one src→dst hop (path i runs from
// agent i's send probe to agent (i+1)%N's receive probe).
type pathTruth struct {
	sent    uint64
	dropped uint64
	delays  []int64 // realized transit times of delivered packets
}

type groundTruth struct {
	tables map[uint32]*tableTruth
	paths  []*pathTruth
}

func newGroundTruth(paths int) *groundTruth {
	gt := &groundTruth{tables: make(map[uint32]*tableTruth), paths: make([]*pathTruth, paths)}
	for i := range gt.paths {
		gt.paths[i] = &pathTruth{}
	}
	return gt
}

func (gt *groundTruth) table(tpid uint32) *tableTruth {
	tt, ok := gt.tables[tpid]
	if !ok {
		tt = &tableTruth{perFlow: make(map[metrics.FlowKey]uint64), ids: make(map[uint32]uint64)}
		gt.tables[tpid] = tt
	}
	return tt
}

type flowTuple struct {
	src, dst     vnet.IPv4
	sport, dport uint16
}

func (f flowTuple) key() metrics.FlowKey {
	return metrics.FlowKey{
		SrcIP:   uint32(f.src),
		DstIP:   uint32(f.dst),
		SrcPort: f.sport,
		DstPort: f.dport,
		Proto:   vnet.ProtoUDP,
	}
}

// Result is one conformance run's outcome: the replay digest, the
// per-agent accounting, and every invariant violation found at quiesce.
type Result struct {
	Scenario   Scenario
	Digest     string
	Violations []string
	Agents     []AgentReport

	// Collector-side totals, summed across the tier.
	Batches, Records, RingDrops            uint64
	DupBatches, DupRecords, MissingBatches uint64
	DeliveryAttempts, Rejected, AcksLost   uint64
	FencedBatches, FencedRecords           uint64
	UnattendedFires                        uint64
	OverloadAcks                           uint64

	// Cluster-tier accounting: agent moves after a collector failure and
	// the per-collector ingest split.
	Rehomes      uint64
	PerCollector []CollectorReport

	// Aggregate-frame totals (ShipAggregates scenarios).
	AggFramesMerged, AggFramesDup, AggFramesFenced uint64
	AggRowsMerged, AggRejected                     uint64

	// Supervisor snapshots the control-plane supervision counters
	// (pushes, retries, re-provisions) at quiesce.
	Supervisor control.SupervisorStats

	// Storage aggregates the trace store's segment accounting at quiesce
	// (after heads seal), so runs can assert on residency and spill.
	Storage tracedb.StorageStats

	// Durable-collector recovery accounting (Durable scenarios with a
	// kill/recover fault). CrashSpooled* capture the agent-side backlog
	// outstanding at the crash instant; DupAfterRecovery counts re-shipped
	// batches the recovered collector deduped against its WAL-replayed
	// ledgers; Recovery is the rebuilt collector's replay accounting.
	RecoveredCollectors int
	CrashSpooledBatches uint64
	CrashSpooledFrames  uint64
	DupAfterRecovery    uint64
	Recovery            tracedb.RecoveryStats
}

// CollectorReport is one collector's share of the run.
type CollectorReport struct {
	Name    string
	Batches uint64
	Records uint64
	Agents  int  // agents homed here at quiesce
	Crashed bool // sink still dead at quiesce
	// Recovered marks a collector that crashed and was rebuilt from its
	// WAL and checkpoints mid-run (its sink is live again at quiesce).
	Recovered bool
}

// AgentReport is the per-machine accounting the invariants reconcile.
type AgentReport struct {
	Name       string
	Fires      uint64 // probe fires = emit attempts (ground truth)
	Unattended uint64 // fires against a detached probe (kill window)
	RingWrites uint64
	RingDrops  uint64
	Stored     uint64 // records landed in this machine's tables
	Spooled    uint64 // records still spooled at quiesce (live agent)
	Evicted    uint64 // records lost to the bounded spool (live agent)
	SkewEstNs  int64
	SkewTrueNs int64

	// Supervision-era accounting.
	Epoch         uint64 // ledger-observed epoch at quiesce
	FencedBatches uint64 // stale-epoch batches the collector rejected
	FencedRecords uint64 // record payload confirmed lost to fencing
	ZombieSpooled uint64 // records still held by the zombie's spool
	ZombieEvicted uint64 // records the zombie's spool evicted

	// Degradation-controller accounting.
	DegradeLevel       uint8
	FlushStretch       int
	Degradations       uint64
	Recoveries         uint64
	StretchedIntervals uint64
	SampleDrops        uint64
}

func (r *Result) violatef(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Run executes one scenario to quiesce and returns its accounting,
// violations, and replay digest. It never calls testing APIs, so the
// seed-sweep harness and any future CLI can drive it directly.
func Run(sc Scenario) (*Result, error) {
	sc = sc.withDefaults()
	res := &Result{Scenario: sc}
	dig := newDigest()
	dig.logf("scenario name=%s seed=%d agents=%d cpus=%d ring=%d packets=%d",
		sc.Name, sc.Seed, sc.Agents, sc.CPUs, sc.RingBytes, sc.Packets)

	eng := sim.NewEngine(sc.Seed)
	dist := sim.NewDist(eng)
	fs := newFaultState(eng, sc, dig)
	spillRoot := sc.SpillDir
	if sc.Durable && spillRoot == "" {
		// Durability needs real files; provision a throwaway root when the
		// scenario didn't bring one (no path leaks into the digest, so the
		// replay fingerprint stays location-independent).
		tmp, err := os.MkdirTemp("", "vnt-conformance-")
		if err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
		}
		defer os.RemoveAll(tmp)
		spillRoot = tmp
	}
	cols := make([]*collectorState, sc.Collectors)
	disp := control.NewDispatcher()
	clu := control.NewCluster(disp)
	for c := range cols {
		name := fmt.Sprintf("col-%d", c)
		dir := spillRoot
		if dir != "" && sc.Collectors > 1 {
			// Each collector spills into its own subdirectory: extent
			// filenames are per-table, and a rehomed agent's table has
			// partitions on two collectors.
			dir = filepath.Join(dir, name)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
			}
		}
		cs := &collectorState{name: name}
		dataDir := dir
		if sc.Durable {
			// Split the collector's directory: extents under data/, WAL and
			// checkpoints under wal/ — the layout the CLI collector uses.
			dataDir = filepath.Join(dir, "data")
			cs.walDir = filepath.Join(dir, "wal")
			if err := os.MkdirAll(dataDir, 0o755); err != nil {
				return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
			}
		}
		cs.dataDir = dataDir
		db := tracedb.NewWith(tracedb.Config{SegmentBytes: sc.SegmentBytes, DataDir: dataDir})
		var col *control.Collector
		if sc.Durable {
			// Startup is the recovery path run against an empty directory:
			// the same code cold-starts and crash-recovers.
			aggs := tracedb.NewAggStore()
			col = control.NewCollectorWith(db, aggs)
			d, _, err := tracedb.Recover(db, aggs, tracedb.DurabilityConfig{Dir: cs.walDir, Fsync: tracedb.FsyncInterval})
			if err != nil {
				return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
			}
			col.SetDurability(d)
			cs.dur = d
		} else {
			col = control.NewCollector(db)
		}
		cs.db, cs.col, cs.sink = db, col, newFaultSink(name, col, fs)
		cols[c] = cs
		if err := clu.AddCollector(name, col, cs.sink); err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
		}
	}
	sup := control.NewSupervisor(disp)
	sup.SetLedger(clu)
	sup.SetJitterSeed(sc.Seed)

	cluster := make([]*agentState, sc.Agents)
	for i := range cluster {
		st, err := buildAgent(sc, i, eng, cols, clu, disp, sup)
		if err != nil {
			return nil, err
		}
		cluster[i] = st
	}

	truth := newGroundTruth(sc.Agents)
	scheduleClockSync(sc, eng, dist, cluster)
	if err := scheduleWorkload(sc, eng, dist, cluster, truth, dig); err != nil {
		return nil, err
	}
	scheduleFaults(sc, eng, cluster, cols, clu, disp, fs, res, dig)
	scheduleCheckpoints(sc, eng, cols, dig)
	scheduleSupervision(sc, eng, sup)

	eng.Run(sc.HorizonNs)
	quiesce(sc, cluster, fs, dig)
	estimateSkews(sc, cluster, cols, res)

	res.Supervisor = sup.Stats()
	// Seal every head before checking: the invariants then run against
	// fully sealed (and, with SpillDir, spilled) segments, and the
	// storage accounting reflects the whole run's history.
	for _, cs := range cols {
		cs.db.SealAll()
		res.Storage.Add(cs.db.StorageTotals())
	}
	dig.logf("storage records=%d extents=%d spilled=%d stored=%d raw=%d evicted=%d readerrs=%d",
		res.Storage.Records(), res.Storage.Extents, res.Storage.SpilledExtents,
		res.Storage.StoredBytes(), res.Storage.SealedRawBytes,
		res.Storage.EvictedRecords, res.Storage.ReadErrors)
	check(sc, cluster, truth, cols, clu, fs, res, dig)
	res.Digest = dig.sum()
	for _, cs := range cols {
		if cs.dur != nil {
			cs.dur.Close()
		}
	}
	return res, nil
}

func buildAgent(sc Scenario, i int, eng *sim.Engine, cols []*collectorState, clu *control.Cluster, disp *control.Dispatcher, sup *control.Supervisor) (*agentState, error) {
	name := fmt.Sprintf("agent-%d", i)
	st := &agentState{
		idx:      i,
		name:     name,
		srcTP:    uint32(2*i + 1),
		dstTP:    uint32(2*i + 2),
		offsetNs: cycle(sc.ClockOffsetsNs, i),
		driftPPB: cycle(sc.ClockDriftsPPB, i),
		samples:  make([]clocksync.Sample, syncSamples),
	}
	node := kernel.NewNode(eng, kernel.NodeConfig{
		Name:          name,
		NumCPU:        sc.CPUs,
		ClockOffsetNs: st.offsetNs,
		ClockDriftPPB: st.driftPPB,
		TraceIDs:      true,
		Seed:          sc.Seed + int64(i),
	})
	machine, err := core.NewMachine(node, sc.RingBytes)
	if err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
	}
	st.machine = machine
	st.agent = control.NewAgent(name, machine, nil)
	if sc.SpoolBytes > 0 {
		st.agent.SetSpoolLimit(sc.SpoolBytes)
	}
	if err := disp.Register(name, st.agent); err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
	}
	// Placement: the cluster homes the agent by consistent hash and hands
	// back the home's (fault-injecting) sink.
	_, sink, err := clu.Register(name, st.agent)
	if err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
	}
	st.agent.Retarget(sink, disp.Epoch(name))
	// Every collector carries (possibly empty) partitions of every
	// agent's tables: after a re-homing, records for the same tracepoint
	// land on the successor's store and queries read the merged view.
	for _, cs := range cols {
		if _, err := cs.db.CreateTable(st.srcTP, name+"/send"); err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
		}
		if _, err := cs.db.CreateTable(st.dstTP, name+"/recv"); err != nil {
			return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
		}
	}
	clu.OwnTable(name, st.srcTP)
	clu.OwnTable(name, st.dstTP)
	// Provisioning goes through the supervisor: it records the desired
	// state (and pushes it immediately), so a later kill/reboot fault gets
	// the same tracepoints re-pushed without the harness re-declaring them.
	pkg := control.ControlPackage{
		Install: []script.Spec{
			recordSpec(name+"/send", st.srcTP, kernel.SiteUDPSendSkb),
			recordSpec(name+"/recv", st.dstTP, kernel.SiteUDPRecvmsg),
		},
		FlushIntervalNs: sc.FlushEveryNs,
	}
	if sc.ShipAggregates {
		pkg.Install = append(pkg.Install, aggSpec(name+"/agg", uint32(1000+i)))
		pkg.ShipAggregates = true
	}
	if err := sup.Desire(name, pkg, eng.Now()); err != nil {
		return nil, fmt.Errorf("conformance: %s: %w", sc.Name, err)
	}
	return st, nil
}

func recordSpec(name string, tpid uint32, site string) script.Spec {
	return script.Spec{
		Name:    name,
		TPID:    tpid,
		Attach:  core.AttachPoint{Kind: core.AttachKProbe, Site: site},
		Actions: []script.Action{script.ActionRecord},
	}
}

// aggSpec is a record-free in-probe aggregation script at the receive
// probe: every fire updates maps (event counters, per-CPU hits, a log2
// latency histogram, per-flow packet/byte sums) and emits nothing to the
// ring.
func aggSpec(name string, tpid uint32) script.Spec {
	return script.Spec{
		Name:   name,
		TPID:   tpid,
		Attach: core.AttachPoint{Kind: core.AttachKProbe, Site: kernel.SiteUDPRecvmsg},
		Actions: []script.Action{
			script.ActionCount, script.ActionCPUHist,
			script.ActionHist, script.ActionFlowCount,
		},
	}
}

func cycle(vals []int64, i int) int64 {
	if len(vals) == 0 {
		return 0
	}
	return vals[i%len(vals)]
}

// scheduleClockSync schedules each agent's Cristian probe exchanges
// against the master clock (engine truth) during the sync window. All
// randomness draws happen here, at build time, in a fixed order.
func scheduleClockSync(sc Scenario, eng *sim.Engine, dist sim.Dist, cluster []*agentState) {
	for _, st := range cluster {
		clk := st.machine.Node.Clock
		for k := 0; k < syncSamples; k++ {
			s := &st.samples[k]
			base := 10*sim.Microsecond + int64(k)*syncSpacingNs + int64(st.idx)*3*sim.Microsecond
			owd1 := 4*sim.Microsecond + dist.Uniform(0, 3*sim.Microsecond)
			proc := 1*sim.Microsecond + dist.Uniform(0, sim.Microsecond)
			owd2 := 4*sim.Microsecond + dist.Uniform(0, 3*sim.Microsecond)
			eng.Schedule(base, func() { s.T1 = eng.Now() })
			eng.Schedule(base+owd1, func() { s.T2 = clk.NowNs() })
			eng.Schedule(base+owd1+proc, func() { s.T3 = clk.NowNs() })
			eng.Schedule(base+owd1+proc+owd2, func() { s.T4 = eng.Now() })
		}
	}
}

// syncWindowEndNs is when the workload may start: after the last sync
// sample of the last agent has come back.
func syncWindowEndNs(sc Scenario) int64 {
	return 10*sim.Microsecond + syncSamples*syncSpacingNs +
		int64(sc.Agents)*3*sim.Microsecond + 50*sim.Microsecond
}

// scheduleWorkload lays out the packet schedule: packet k originates at
// agent k%N (udp_send_skb) and arrives at agent (k+1)%N (udp_recvmsg)
// after the hop delay, unless the scenario drops it on the wire.
func scheduleWorkload(sc Scenario, eng *sim.Engine, dist sim.Dist, cluster []*agentState, truth *groundTruth, dig *digest) error {
	start := syncWindowEndNs(sc)
	span := sc.HorizonNs - start - sc.HopDelayNs - sc.HopJitterNs - 5*sim.Millisecond
	if span < sim.Millisecond {
		return fmt.Errorf("conformance: %s: horizon %d too small for workload", sc.Name, sc.HorizonNs)
	}
	gap := span / int64(sc.Packets)
	if gap < 1 {
		gap = 1
	}

	// sched expands AgentWeights into a source rotation: agent i appears
	// weight(i) times per cycle. Uniform weights reduce to the plain
	// round-robin the single-collector scenarios always used.
	sched := make([]int, 0, sc.Agents)
	for i := 0; i < sc.Agents; i++ {
		w := 1
		if len(sc.AgentWeights) > 0 {
			if got := sc.AgentWeights[i%len(sc.AgentWeights)]; got > 1 {
				w = got
			}
		}
		for j := 0; j < w; j++ {
			sched = append(sched, i)
		}
	}

	fire := func(st *agentState, site string, tpid uint32, f flowTuple, id uint32, cpu int) {
		pkt := &vnet.Packet{
			Eth:     vnet.EthernetHeader{EtherType: vnet.EtherTypeIPv4},
			IP:      vnet.IPv4Header{TTL: 64, Protocol: vnet.ProtoUDP, Src: f.src, Dst: f.dst},
			UDP:     &vnet.UDPHeader{SrcPort: f.sport, DstPort: f.dport},
			Payload: make([]byte, sc.PayloadLen),
			Seq:     st.nextPktSeq,
			SentAt:  eng.Now(),
		}
		st.nextPktSeq++
		if err := pkt.PutUDPTraceID(id); err != nil {
			panic(err) // UDP by construction
		}
		// A fire against a site with no program attached (the window
		// between a kill and the supervisor's re-provision) traces
		// nothing: it is ground truth the pipeline never saw, tracked
		// separately so conservation stays exact.
		attached := st.machine.Node.Probes.Attached(site) > 0
		st.machine.Node.Probes.Fire(&kernel.ProbeCtx{
			Site:   site,
			Pkt:    pkt,
			CPU:    cpu,
			TimeNs: st.machine.Node.Clock.NowNs(),
		})
		if !attached {
			st.unattended++
			dig.logf("fire t=%d agent=%s tp=%d id=%d cpu=%d pktseq=%d unattended",
				eng.Now(), st.name, tpid, id, cpu, pkt.Seq)
			return
		}
		tt := truth.table(tpid)
		now := eng.Now()
		if tt.fires == 0 {
			tt.firstNs = now
		}
		tt.lastNs = now
		tt.fires++
		tt.bytes += uint64(pkt.WireLen() - metrics.TraceIDBytes)
		tt.perFlow[f.key()]++
		tt.ids[id]++
		dig.logf("fire t=%d agent=%s tp=%d id=%d cpu=%d pktseq=%d", now, st.name, tpid, id, cpu, pkt.Seq)
	}

	for k := 0; k < sc.Packets; k++ {
		id := uint32(k + 1)
		srcIdx := sched[k%len(sched)]
		dstIdx := (srcIdx + 1) % sc.Agents
		src, dst := cluster[srcIdx], cluster[dstIdx]
		fl := flowOf(k % sc.Flows)
		burst := k / sc.BurstLen
		t := start + int64(burst)*gap*int64(sc.BurstLen)
		delay := sc.HopDelayNs
		if sc.HopJitterNs > 0 {
			delay += dist.Uniform(0, sc.HopJitterNs)
		}
		sendCPU := k % sc.CPUs
		recvCPU := (k / sc.CPUs) % sc.CPUs

		srcTP, dstTP := src.srcTP, dst.dstTP
		eng.Schedule(t, func() { fire(src, kernel.SiteUDPSendSkb, srcTP, fl, id, sendCPU) })

		path := truth.paths[srcIdx]
		path.sent++
		if sc.DropEvery > 0 && (k+1)%sc.DropEvery == 0 {
			path.dropped++
			continue
		}
		path.delays = append(path.delays, delay)
		eng.Schedule(t+delay, func() { fire(dst, kernel.SiteUDPRecvmsg, dstTP, fl, id, recvCPU) })
	}
	return nil
}

func flowOf(i int) flowTuple {
	return flowTuple{
		src:   vnet.IPv4(0x0a000000 + uint32(i) + 1), // 10.0.0.x
		dst:   vnet.IPv4(0x0a000100 + uint32(i) + 1), // 10.0.1.x
		sport: uint16(5000 + i),
		dport: uint16(9000 + i),
	}
}

// scheduleFaults arms the agent-restart, kill/reboot, collector-crash,
// and collector kill/recover faults (transport faults live in the sinks
// themselves).
func scheduleFaults(sc Scenario, eng *sim.Engine, cluster []*agentState, cols []*collectorState, clu *control.Cluster, disp *control.Dispatcher, fs *faultState, res *Result, dig *digest) {
	if sc.RestartAtNs > 0 && sc.RestartForNs > 0 {
		st := cluster[sc.RestartAgent%len(cluster)]
		eng.Schedule(sc.RestartAtNs, func() {
			st.agent.StopFlushing()
			dig.logf("restart-stop t=%d agent=%s", eng.Now(), st.name)
		})
		eng.Schedule(sc.RestartAtNs+sc.RestartForNs, func() {
			st.agent.StartFlushing(sc.FlushEveryNs)
			dig.logf("restart-start t=%d agent=%s", eng.Now(), st.name)
		})
	}

	if sc.KillAtNs > 0 && sc.KillRebootAfterNs > 0 {
		st := cluster[sc.KillAgent%len(cluster)]
		eng.Schedule(sc.KillAtNs, func() {
			// Process death: the flush loop dies and the kernel detaches
			// the process's probes, but the in-memory spool survives in the
			// zombie object (a real agent's spool would die with it; keeping
			// it models the worst case — a paused-then-thawed process that
			// re-ships under its stale lease).
			st.agent.StopFlushing()
			if err := st.agent.Apply(control.ControlPackage{Replace: true}); err != nil {
				panic(err) // detach-only Replace cannot fail
			}
			st.zombie = st.agent
			dig.logf("kill t=%d agent=%s epoch=%d", eng.Now(), st.name, st.zombie.Epoch())
		})
		eng.Schedule(sc.KillAtNs+sc.KillRebootAfterNs, func() {
			// Reboot: a fresh process takes over the machine under the next
			// epoch lease, with nothing installed and no flush loop — the
			// supervisor's next tick must re-push the desired state. The
			// cluster re-registration keeps the sticky home and refreshes
			// the retargeter to the fresh process.
			fresh := control.NewAgent(st.name, st.machine, nil)
			if sc.SpoolBytes > 0 {
				fresh.SetSpoolLimit(sc.SpoolBytes)
			}
			epoch := disp.Reregister(st.name, fresh)
			_, sink, err := clu.Register(st.name, fresh)
			if err != nil {
				panic(err) // the home collector cannot vanish mid-reboot
			}
			fresh.Retarget(sink, epoch)
			st.agent = fresh
			dig.logf("reboot t=%d agent=%s epoch=%d", eng.Now(), st.name, fresh.Epoch())
		})
	}

	if sc.ZombieFlushAtNs > 0 {
		st := cluster[sc.KillAgent%len(cluster)]
		eng.Schedule(sc.ZombieFlushAtNs, func() {
			if st.zombie == nil {
				return
			}
			err := st.zombie.ShipSpooled()
			ss := st.zombie.SpoolStats()
			dig.logf("zombie-flush t=%d agent=%s err=%v leftBatches=%d", eng.Now(), st.name, err, ss.Batches)
		})
	}

	if sc.Collectors > 1 && sc.CollectorFailAtNs > 0 && sc.CollectorRehomeAfterNs > 0 {
		// The victim is whichever collector homes agent FailAgentHome —
		// resolved at crash time so the fault always lands on a collector
		// with tenants.
		anchor := cluster[sc.FailAgentHome%len(cluster)]
		var victim string
		eng.Schedule(sc.CollectorFailAtNs, func() {
			victim, _ = clu.Home(anchor.name)
			for _, cs := range cols {
				if cs.name == victim {
					cs.sink.crash()
				}
			}
			dig.logf("collector-crash t=%d col=%s", eng.Now(), victim)
		})
		eng.Schedule(sc.CollectorFailAtNs+sc.CollectorRehomeAfterNs, func() {
			moves, err := clu.FailCollector(victim)
			if err != nil {
				panic(err) // the victim exists and fails exactly once
			}
			for _, mv := range moves {
				dig.logf("rehome t=%d agent=%s from=%s to=%s epoch=%d",
					eng.Now(), mv.Agent, mv.From, mv.To, mv.Epoch)
			}
		})
	}

	if sc.Durable && sc.CollectorCrashAtNs > 0 && sc.CollectorRecoverAfterNs > 0 {
		// The victim is whichever durable collector homes agent
		// CrashAgentHome at the crash instant. The crash kills the sink
		// and snapshots the in-memory state the process loses; the
		// recovery event rebuilds everything from disk.
		anchor := cluster[sc.CrashAgentHome%len(cluster)]
		var victim *collectorState
		eng.Schedule(sc.CollectorCrashAtNs, func() {
			home, _ := clu.Home(anchor.name)
			for _, cs := range cols {
				if cs.name == home {
					victim = cs
				}
			}
			victim.sink.crash()
			victim.wasCrashed = true
			b, r, rd := victim.col.Stats()
			dupB, dupR, _ := victim.col.DeliveryStats()
			victim.lostBatches, victim.lostRecords, victim.lostRingDrops = b, r, rd
			victim.lostDupBatches, victim.lostDupRecords = dupB, dupR
			victim.preRecords = storeRecords(victim.db)
			victim.preTotals = victim.col.Aggregates().Totals()
			victim.preLedgers = make(map[string]tracedb.AgentLedger)
			for _, agent := range victim.db.Agents() {
				if l, ok := victim.db.Ledger(agent); ok {
					victim.preLedgers[agent] = l
				}
			}
			for _, st := range cluster {
				res.CrashSpooledBatches += uint64(st.agent.SpoolStats().Batches)
				res.CrashSpooledFrames += uint64(st.agent.AggShipStats().FramesSpooled)
			}
			dig.logf("collector-kill t=%d col=%s lostBatches=%d lostRecords=%d lostDup=%d stored=%d merged=%d spooled=%d/%d",
				eng.Now(), victim.name, b, r, dupB, victim.preRecords,
				victim.preTotals.FramesMerged, res.CrashSpooledBatches, res.CrashSpooledFrames)
		})
		eng.Schedule(sc.CollectorCrashAtNs+sc.CollectorRecoverAfterNs, func() {
			recoverCollector(sc, eng, victim, clu, fs, res, dig)
		})
	}
}

// recoverCollector rebuilds a killed collector purely from its on-disk
// state — adopted extents, the latest checkpoint, and the WAL tail — and
// rejoins it to the tier via Cluster.RecoverCollector. The dead
// incarnation's objects are abandoned unread: recovery must stand on
// disk alone. Fidelity mismatches against the crash-instant snapshots
// (records, merged aggregates, durable ledger fields) are recorded as
// notes, which check() surfaces as invariant violations.
func recoverCollector(sc Scenario, eng *sim.Engine, cs *collectorState, clu *control.Cluster, fs *faultState, res *Result, dig *digest) {
	cs.dur.Close() // the dead incarnation's log handle
	db := tracedb.NewWith(tracedb.Config{SegmentBytes: sc.SegmentBytes, DataDir: cs.dataDir})
	aggs := tracedb.NewAggStore()
	d, rec, err := tracedb.Recover(db, aggs, tracedb.DurabilityConfig{Dir: cs.walDir, Fsync: tracedb.FsyncInterval})
	if err != nil {
		panic(fmt.Sprintf("conformance: %s: recover %s: %v", sc.Name, cs.name, err))
	}
	col := control.NewCollectorWith(db, aggs)
	col.SetDurability(d)
	sink := newFaultSink(cs.name, col, fs)

	// Recovery fidelity: the rebuilt store must hold exactly what the
	// dead incarnation had ingested, and no durable ledger field may
	// regress. Dup/heartbeat bookkeeping since the last checkpoint is
	// deliberately transient; its lost deltas fold into aggLost and the
	// lost* counters instead.
	if got := storeRecords(db); got != cs.preRecords {
		cs.notes = append(cs.notes, fmt.Sprintf(
			"collector %s: recovered %d records, crashed holding %d", cs.name, got, cs.preRecords))
	}
	tot := aggs.Totals()
	if tot.FramesMerged != cs.preTotals.FramesMerged || tot.RowsMerged != cs.preTotals.RowsMerged {
		cs.notes = append(cs.notes, fmt.Sprintf(
			"collector %s: recovered aggregates merged=%d rows=%d, crashed holding merged=%d rows=%d",
			cs.name, tot.FramesMerged, tot.RowsMerged, cs.preTotals.FramesMerged, cs.preTotals.RowsMerged))
	}
	cs.aggLost = tracedb.AggTotals{
		FramesDup:    satSub(cs.preTotals.FramesDup, tot.FramesDup),
		FramesFenced: satSub(cs.preTotals.FramesFenced, tot.FramesFenced),
	}
	for agent, pre := range cs.preLedgers {
		l, ok := db.Ledger(agent)
		if !ok {
			cs.notes = append(cs.notes, fmt.Sprintf(
				"collector %s: agent %s ledger lost in recovery", cs.name, agent))
			continue
		}
		if l.HighWaterSeq != pre.HighWaterSeq || l.MaxSeq != pre.MaxSeq || l.Epoch != pre.Epoch {
			cs.notes = append(cs.notes, fmt.Sprintf(
				"collector %s: agent %s ledger regressed: hwm %d->%d maxseq %d->%d epoch %d->%d",
				cs.name, agent, pre.HighWaterSeq, l.HighWaterSeq, pre.MaxSeq, l.MaxSeq, pre.Epoch, l.Epoch))
		}
	}

	moves, err := clu.RecoverCollector(cs.name, col, sink)
	if err != nil {
		panic(fmt.Sprintf("conformance: %s: rejoin %s: %v", sc.Name, cs.name, err))
	}
	cs.db, cs.col, cs.sink, cs.dur = db, col, sink, d
	cs.recovered = true
	res.RecoveredCollectors++
	res.Recovery = rec
	dig.logf("collector-recover t=%d col=%s ckpt=%v ckptlsn=%d adopted=%d/%d dropped=%d replayed=%d recs=%d frames=%d dup=%d torn=%d next=%d selfmoves=%d",
		eng.Now(), cs.name, rec.CheckpointLoaded, rec.CheckpointLSN, rec.AdoptedExtents,
		rec.AdoptedRecords, rec.DroppedExtents, rec.ReplayedEntries, rec.ReplayedRecords,
		rec.ReplayedFrames, rec.ReplayedDup, rec.TornTails, rec.NextLSN, len(moves))
	for _, mv := range moves {
		dig.logf("recover-rehome t=%d agent=%s col=%s epoch=%d", eng.Now(), mv.Agent, mv.To, mv.Epoch)
	}
}

// storeRecords sums live record counts across every table in a store.
func storeRecords(db *tracedb.DB) uint64 {
	var n uint64
	for _, id := range db.Tables() {
		if t, ok := db.Table(id); ok {
			n += uint64(t.Len())
		}
	}
	return n
}

func satSub(a, b uint64) uint64 {
	if a < b {
		return 0
	}
	return a - b
}

// scheduleCheckpoints arms the periodic checkpoint tick on every durable
// collector. A tick against a crashed collector is skipped — its process
// is dead; checkpointing resumes on the recovered incarnation (cs.dur is
// swapped at recovery).
func scheduleCheckpoints(sc Scenario, eng *sim.Engine, cols []*collectorState, dig *digest) {
	if !sc.Durable || sc.CheckpointEveryNs <= 0 {
		return
	}
	for _, cs := range cols {
		cs := cs
		var tick func()
		tick = func() {
			if cs.dur != nil && !cs.sink.crashed {
				if err := cs.dur.Checkpoint(); err != nil {
					cs.notes = append(cs.notes, fmt.Sprintf("collector %s: checkpoint: %v", cs.name, err))
				} else {
					dig.logf("checkpoint t=%d col=%s lsn=%d", eng.Now(), cs.name, cs.dur.Stats().LastCheckpointLSN)
				}
			}
			if eng.Now()+sc.CheckpointEveryNs <= sc.HorizonNs {
				eng.Schedule(sc.CheckpointEveryNs, tick)
			}
		}
		eng.Schedule(sc.CheckpointEveryNs, tick)
	}
}

// scheduleSupervision arms the periodic control-plane supervision pass.
func scheduleSupervision(sc Scenario, eng *sim.Engine, sup *control.Supervisor) {
	if sc.SuperviseEveryNs <= 0 {
		return
	}
	var tick func()
	tick = func() {
		sup.Tick(eng.Now())
		if eng.Now()+sc.SuperviseEveryNs <= sc.HorizonNs {
			eng.Schedule(sc.SuperviseEveryNs, tick)
		}
	}
	eng.Schedule(sc.SuperviseEveryNs, tick)
}

// quiesce stops the flush loops (their timers would otherwise re-arm
// forever), heals the transport unless the scenario keeps it down, and
// force-flushes until every spool drains or stops making progress.
func quiesce(sc Scenario, cluster []*agentState, fs *faultState, dig *digest) {
	for _, st := range cluster {
		st.agent.StopFlushing()
	}
	if !sc.SinkDownForever {
		fs.heal()
	}
	for round := 0; round < 64; round++ {
		pending := false
		for _, st := range cluster {
			st.agent.Flush() // a failed ship keeps records spooled for the next round
			if st.agent.SpoolStats().Batches > 0 {
				pending = true
			}
			if st.agent.AggShipStats().FramesSpooled > 0 {
				pending = true
			}
			// A zombie's leftovers must also surface before the books
			// close: shipped stale-epoch batches land as fenced counts,
			// never as records.
			if st.zombie != nil && st.zombie.SpoolStats().Batches > 0 {
				st.zombie.ShipSpooled()
				if st.zombie.SpoolStats().Batches > 0 {
					pending = true
				}
			}
		}
		if !pending || sc.SinkDownForever {
			break
		}
	}
	for _, st := range cluster {
		ss := st.agent.SpoolStats()
		as := st.agent.AggShipStats()
		dig.logf("quiesce agent=%s spooledBatches=%d spooledRecords=%d evicted=%d aggShipped=%d aggSpooled=%d aggEvicted=%d",
			st.name, ss.Batches, ss.Records, ss.EvictedRecords,
			as.FramesShipped, as.FramesSpooled, as.Evicted)
	}
}

// estimateSkews runs Cristian's estimate per agent over the samples
// collected during the sync window and installs the skew on every
// collector's partition of the machine's tables, mirroring what a real
// deployment does before cross-node metric queries.
func estimateSkews(sc Scenario, cluster []*agentState, cols []*collectorState, res *Result) {
	for _, st := range cluster {
		est, err := clocksync.EstimateSkew(st.samples)
		if err != nil {
			res.violatef("agent %s: clock sync failed: %v", st.name, err)
			continue
		}
		st.est = est
		for _, cs := range cols {
			cs.db.SetSkew(st.srcTP, est.SkewNs)
			cs.db.SetSkew(st.dstTP, est.SkewNs)
		}
		drift := st.driftPPB
		if drift < 0 {
			drift = -drift
		}
		st.skewTolNs = est.BestRTTNs/2 + drift*sc.HorizonNs/1_000_000_000 + 2*sim.Microsecond
	}
}
