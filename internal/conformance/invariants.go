package conformance

import (
	"sort"

	"vnettracer/internal/control"
	"vnettracer/internal/core"
	"vnettracer/internal/metrics"
	"vnettracer/internal/script"
	"vnettracer/internal/tracedb"
)

// check reconciles the whole pipeline against the workload's ground
// truth. Conservation and ordering invariants hold unconditionally and
// cluster-wide: per-agent tables partition across collector stores, so
// stored counts, fence counters, and gap accounting sum over the tier.
// Metric-consistency checks apply only where the record path was
// verifiably lossless (no ring drops, no evictions, nothing still
// spooled), because a lossy path legitimately stores fewer records than
// the ground truth injected.
func check(sc Scenario, cluster []*agentState, truth *groundTruth, cols []*collectorState, clu *control.Cluster, fs *faultState, res *Result, dig *digest) {
	var totalStored, totalEvictedBatches, totalSpooledBatches uint64

	perColAgents := make(map[string]int)
	for _, st := range cluster {
		if h, ok := clu.Home(st.name); ok {
			perColAgents[h]++
		}
	}

	for _, st := range cluster {
		rs := st.agent.RingStats()
		ss := st.agent.SpoolStats()
		var zs control.SpoolStats
		if st.zombie != nil {
			zs = st.zombie.SpoolStats()
		}
		ds := st.agent.DegradeStats()
		// The home collector holds the live lease; after a re-homing, the
		// fence and gap accounting may be spread across collectors, so
		// those sum over every ledger the agent ever touched.
		led, ledOK := clu.Ledger(st.name)
		var fencedB, fencedR, missing uint64
		for _, cs := range cols {
			if l, ok := cs.db.Ledger(st.name); ok {
				fencedB += l.FencedBatches
				fencedR += l.FencedRecords
				missing += l.MissingBatches
			}
		}
		st.fencedBatches, st.fencedRecords = fencedB, fencedR
		fires := truth.table(st.srcTP).fires + truth.table(st.dstTP).fires
		stored := uint64(tableLen(cols, st.srcTP) + tableLen(cols, st.dstTP))
		rep := AgentReport{
			Name:               st.name,
			Fires:              fires,
			Unattended:         st.unattended,
			RingWrites:         rs.Writes,
			RingDrops:          rs.Drops,
			Stored:             stored,
			Spooled:            uint64(ss.Records),
			Evicted:            ss.EvictedRecords,
			SkewEstNs:          st.est.SkewNs,
			SkewTrueNs:         st.offsetNs,
			Epoch:              led.Epoch,
			FencedBatches:      fencedB,
			FencedRecords:      fencedR,
			ZombieSpooled:      uint64(zs.Records),
			ZombieEvicted:      zs.EvictedRecords,
			DegradeLevel:       ds.Level,
			FlushStretch:       ds.FlushStretch,
			Degradations:       ds.Degradations,
			Recoveries:         ds.Recoveries,
			StretchedIntervals: ds.StretchedIntervals,
			SampleDrops:        ds.SampleDrops,
		}
		res.Agents = append(res.Agents, rep)
		res.UnattendedFires += st.unattended
		totalStored += stored
		totalEvictedBatches += ss.EvictedBatches + zs.EvictedBatches
		totalSpooledBatches += uint64(ss.Batches + zs.Batches)

		// Emit conservation: every attended probe fire either landed in
		// the ring or was counted as a drop — nothing vanishes between the
		// eBPF program and the ring. (Unattended fires never reached a
		// program and are excluded from fires by construction.)
		if fires != rs.Writes+rs.Drops {
			res.violatef("agent %s: fires %d != ring writes %d + ring drops %d",
				st.name, fires, rs.Writes, rs.Drops)
		}
		// Quiesce drained the rings completely.
		if rs.UsedBytes != 0 {
			res.violatef("agent %s: %d bytes left in ring after quiesce", st.name, rs.UsedBytes)
		}
		// Delivery conservation: every record drained from the ring is
		// stored, still spooled (by the live agent or a zombie), confirmed
		// evicted, or confirmed fenced — the four terminal states, summing
		// exactly.
		if rs.Writes != stored+uint64(ss.Records+zs.Records)+ss.EvictedRecords+zs.EvictedRecords+fencedR {
			res.violatef("agent %s: ring writes %d != stored %d + spooled %d+%d + evicted %d+%d + fenced %d",
				st.name, rs.Writes, stored, ss.Records, zs.Records,
				ss.EvictedRecords, zs.EvictedRecords, fencedR)
		}
		// Ledger gap accounting: once the spools drain, sequence gaps at
		// the collector exist exactly where a spool evicted (fenced gap
		// batches have already moved from missing to fenced). While the
		// sink is still down, spooled batches haven't surfaced as gaps
		// yet, so only the bound applies.
		evictedBatches := ss.EvictedBatches + zs.EvictedBatches
		if !ledOK || led.LastSeenNs <= 0 {
			res.violatef("agent %s: no heartbeat ever reached the collector", st.name)
		} else if !sc.SinkDownForever {
			if ss.Batches != 0 {
				res.violatef("agent %s: %d batches still spooled after quiesce with a healthy sink",
					st.name, ss.Batches)
			}
			if zs.Batches != 0 {
				res.violatef("agent %s: zombie still holds %d batches after quiesce with a healthy sink",
					st.name, zs.Batches)
			}
			if missing != evictedBatches {
				res.violatef("agent %s: ledger missing %d batches, spools evicted %d",
					st.name, missing, evictedBatches)
			}
		} else if missing > evictedBatches {
			res.violatef("agent %s: ledger missing %d batches exceeds evicted %d",
				st.name, missing, evictedBatches)
		}

		checkTable(sc, st, st.srcTP, truth, cols, res)
		checkTable(sc, st, st.dstTP, truth, cols, res)
	}

	// Collector totals, summed across the tier, agree with the tables. A
	// recovered collector's process-local counters restarted at zero at
	// the crash, so the snapshots the harness took at the crash instant
	// are added back — the records themselves are in the recovered store
	// and the per-table checks above already counted them.
	var colBatches, colRecords, colRingDrops uint64
	var dup, dupRecs, missing uint64
	var fencedB, fencedR uint64
	for _, cs := range cols {
		b, r, rd := cs.col.Stats()
		d, dr, m := cs.col.DeliveryStats()
		if cs.recovered {
			res.DupAfterRecovery += d
		}
		b += cs.lostBatches
		r += cs.lostRecords
		rd += cs.lostRingDrops
		d += cs.lostDupBatches
		dr += cs.lostDupRecords
		colBatches += b
		colRecords += r
		colRingDrops += rd
		dup += d
		dupRecs += dr
		missing += m
		fb, fr := cs.col.FencedStats()
		fencedB += fb
		fencedR += fr
		res.Violations = append(res.Violations, cs.notes...)
		res.PerCollector = append(res.PerCollector, CollectorReport{
			Name:      cs.name,
			Batches:   b,
			Records:   r,
			Agents:    perColAgents[cs.name],
			Crashed:   cs.sink.crashed,
			Recovered: cs.recovered,
		})
	}
	res.Rehomes = clu.Rehomes()
	if colRecords != totalStored {
		res.violatef("collectors ingested %d records, tables hold %d", colRecords, totalStored)
	}
	res.Batches, res.Records, res.RingDrops = colBatches, colRecords, colRingDrops
	res.DupBatches, res.DupRecords, res.MissingBatches = dup, dupRecs, missing
	res.DeliveryAttempts, res.Rejected, res.AcksLost = fs.attempts, fs.rejected, fs.acksLost
	res.FencedBatches, res.FencedRecords = fencedB, fencedR
	res.OverloadAcks = fs.overloadAcks

	// The epoch fence fires only when a kill fault created a zombie; any
	// fenced batch outside that is the ledger fencing a live agent.
	if sc.KillAtNs <= 0 && res.FencedBatches != 0 {
		res.violatef("collector fenced %d batches with no kill fault injected", res.FencedBatches)
	}

	// Exactly-once at batch granularity: every lost acknowledgement on a
	// sequenced batch causes exactly one duplicate delivery, which the
	// ledger must absorb — and nothing else may ever duplicate. A batch
	// evicted after its ack was lost never redelivers, so under spool
	// pressure only the upper bound applies.
	if totalEvictedBatches == 0 && uint64(totalSpooledBatches) == 0 {
		if dup != fs.acksLostSeq {
			res.violatef("collectors deduped %d batches, %d sequenced acks were lost", dup, fs.acksLostSeq)
		}
	} else if dup > fs.acksLostSeq {
		res.violatef("collectors deduped %d batches, only %d sequenced acks were lost", dup, fs.acksLostSeq)
	}
	if sc.AckLossEvery == 0 && fs.acksLost == 0 && dup != 0 {
		res.violatef("collectors saw %d duplicate batches with no ack loss injected", dup)
	}
	if !sc.SinkDownForever && missing != totalEvictedBatches {
		res.violatef("collectors missing %d batches, agents evicted %d", missing, totalEvictedBatches)
	}

	checkMetrics(sc, cluster, truth, cols, res)
	checkSupervision(sc, cluster, res)
	checkAggregates(sc, cluster, truth, cols, fs, res, dig)

	// Fold the final accounting into the digest so a run that delivers
	// the same event trace but different statistics still diverges.
	for _, rep := range res.Agents {
		dig.logf("account agent=%s fires=%d unattended=%d writes=%d drops=%d stored=%d spooled=%d evicted=%d skew=%d epoch=%d fenced=%d/%d zspool=%d degr=%d/%d lvl=%d sdrops=%d",
			rep.Name, rep.Fires, rep.Unattended, rep.RingWrites, rep.RingDrops, rep.Stored, rep.Spooled,
			rep.Evicted, rep.SkewEstNs, rep.Epoch, rep.FencedBatches, rep.FencedRecords, rep.ZombieSpooled,
			rep.Degradations, rep.Recoveries, rep.DegradeLevel, rep.SampleDrops)
	}
	for _, pc := range res.PerCollector {
		dig.logf("account collector=%s batches=%d records=%d agents=%d crashed=%v recovered=%v",
			pc.Name, pc.Batches, pc.Records, pc.Agents, pc.Crashed, pc.Recovered)
	}
	dig.logf("account collector records=%d dup=%d missing=%d attempts=%d rejected=%d ackslost=%d fenced=%d/%d overloadacks=%d rehomes=%d",
		colRecords, dup, missing, fs.attempts, fs.rejected, fs.acksLost,
		res.FencedBatches, res.FencedRecords, res.OverloadAcks, res.Rehomes)
	dig.logf("account supervisor pushes=%d failures=%d retries=%d reprovisions=%d pending=%d",
		res.Supervisor.Pushes, res.Supervisor.Failures, res.Supervisor.Retries,
		res.Supervisor.Reprovisions, res.Supervisor.PendingRetries)
}

// checkSupervision verifies the control-plane supervision mechanisms a
// scenario arms actually engaged and converged: a killed agent ends the
// run re-provisioned at a newer epoch, a zombie's late flush is fenced in
// full, and overload degradation both triggers and fully recovers.
func checkSupervision(sc Scenario, cluster []*agentState, res *Result) {
	if sc.KillAtNs > 0 && sc.KillRebootAfterNs > 0 {
		st := cluster[sc.KillAgent%len(cluster)]
		if st.zombie == nil {
			res.violatef("agent %s: kill fault never engaged", st.name)
			return
		}
		if got := st.agent.Epoch(); got < 2 {
			res.violatef("agent %s: epoch %d after reboot, want >= 2", st.name, got)
		}
		if res.Supervisor.Reprovisions == 0 {
			res.violatef("supervisor recorded no re-provision after an agent reboot")
		}
		// Re-provisioning must have restored the full desired state on the
		// fresh process: both tracepoints back, before the horizon.
		if n := len(st.agent.Installed()); n != 2 {
			res.violatef("agent %s: %d scripts installed after re-provision, want 2", st.name, n)
		}
		if st.unattended == 0 {
			res.violatef("agent %s: no unattended fires in the kill window — the dead window proved nothing", st.name)
		}
	}
	if sc.ZombieFlushAtNs > 0 {
		st := cluster[sc.KillAgent%len(cluster)]
		if st.fencedBatches == 0 || st.fencedRecords == 0 {
			res.violatef("agent %s: zombie flush fenced %d batches / %d records, want both > 0",
				st.name, st.fencedBatches, st.fencedRecords)
		}
	}
	if sc.Collectors > 1 && sc.CollectorFailAtNs > 0 && sc.CollectorRehomeAfterNs > 0 {
		if res.Rehomes == 0 {
			res.violatef("collector crash re-homed no agents")
		}
		crashed := 0
		for _, pc := range res.PerCollector {
			// A collector that crashed and later recovered still counts as
			// the fault's one victim; only a still-dead one must have shed
			// every tenant (re-homing never moves agents back).
			if pc.Crashed || pc.Recovered {
				crashed++
			}
			if pc.Crashed && pc.Agents != 0 {
				res.violatef("crashed collector %s still homes %d agents at quiesce", pc.Name, pc.Agents)
			}
		}
		if crashed != 1 {
			res.violatef("%d collectors crashed, fault injects exactly 1", crashed)
		}
	}
	if sc.Durable && sc.CollectorCrashAtNs > 0 && sc.CollectorRecoverAfterNs > 0 {
		if res.RecoveredCollectors != 1 {
			res.violatef("%d collectors recovered, kill/recover fault injects exactly 1", res.RecoveredCollectors)
		}
		if res.Recovery.ReplayedEntries == 0 && !res.Recovery.CheckpointLoaded {
			res.violatef("recovery replayed nothing and loaded no checkpoint — the crash hit an empty collector")
		}
	}
	if sc.OverloadCap > 0 {
		if res.OverloadAcks == 0 {
			res.violatef("overload window injected no pressured acks")
		}
		for _, st := range cluster {
			ds := st.agent.DegradeStats()
			if ds.Degradations == 0 {
				res.violatef("agent %s: never entered a degraded mode under overload", st.name)
				continue
			}
			if ds.StretchedIntervals == 0 {
				res.violatef("agent %s: degraded but never stretched a flush interval", st.name)
			}
			if ds.SampleDrops == 0 {
				res.violatef("agent %s: high-water overload never engaged ring sampling", st.name)
			}
			if ds.Recoveries == 0 {
				res.violatef("agent %s: never recovered after the overload cleared", st.name)
			}
			if ds.Level != 0 || ds.FlushStretch != 1 {
				res.violatef("agent %s: still degraded at quiesce (level %d, stretch %d)",
					st.name, ds.Level, ds.FlushStretch)
			}
		}
	}
}

// checkAggregates reconciles the collector's merged in-probe aggregates
// against the attended-fire ground truth. Unlike records, aggregation
// never touches the ring or the spool-eviction path, so the check is
// exact even on scenarios whose record path drops: every attended fire
// at the receive probe must appear in the merged counters, the per-CPU
// and latency histograms, and the per-flow sums — and a retried frame
// (lost ack) must never double any of them.
func checkAggregates(sc Scenario, cluster []*agentState, truth *groundTruth, cols []*collectorState, fs *faultState, res *Result, dig *digest) {
	if !sc.ShipAggregates {
		return
	}
	// Frame accounting sums over the tier; a re-homed agent's frames merge
	// on two collectors and dedup wherever the retry lands.
	var tot tracedb.AggTotals
	for _, cs := range cols {
		t := cs.col.Aggregates().Totals()
		tot.FramesMerged += t.FramesMerged
		// Dup/fenced bookkeeping since a recovered collector's last
		// checkpoint died with its process; the crash-instant deltas the
		// harness snapshotted complete the cluster-wide reconciliation.
		tot.FramesDup += t.FramesDup + cs.aggLost.FramesDup
		tot.FramesFenced += t.FramesFenced + cs.aggLost.FramesFenced
		tot.RowsMerged += t.RowsMerged
	}
	res.AggFramesMerged, res.AggFramesDup, res.AggFramesFenced = tot.FramesMerged, tot.FramesDup, tot.FramesFenced
	res.AggRowsMerged, res.AggRejected = tot.RowsMerged, fs.aggRejected

	for _, st := range cluster {
		name := st.name + "/agg"
		as := st.agent.AggShipStats()
		if as.Evicted != 0 {
			res.violatef("agent %s: %d aggregate frames evicted — conservation broken by scenario shape", st.name, as.Evicted)
		}
		if sc.SinkDownForever {
			continue
		}
		if as.FramesSpooled != 0 {
			res.violatef("agent %s: %d aggregate frames still spooled after quiesce with a healthy sink",
				st.name, as.FramesSpooled)
		}
		tt := truth.table(st.dstTP)
		// The queryable aggregate is the cross-collector merge of every
		// store's view of this script.
		var parts []tracedb.ScriptAgg
		for _, cs := range cols {
			if a, got := cs.col.Aggregates().Get(name); got {
				parts = append(parts, a)
			}
		}
		ok := len(parts) > 0
		agg := tracedb.MergeAggs(parts...)
		if tt.fires == 0 {
			if ok && counterAt(agg.Counters, script.SlotPackets) != 0 {
				res.violatef("agent %s: aggregates report %d packets, ground truth fired none",
					st.name, counterAt(agg.Counters, script.SlotPackets))
			}
			continue
		}
		if !ok {
			res.violatef("agent %s: no merged aggregates for %s after %d fires", st.name, name, tt.fires)
			continue
		}
		if got := counterAt(agg.Counters, script.SlotPackets); got != tt.fires {
			res.violatef("agent %s: aggregated packets %d, ground truth %d", st.name, got, tt.fires)
		}
		// The in-probe byte counter sums wire lengths; table truth tracks
		// payload net of the embedded trace ID.
		wantBytes := tt.bytes + uint64(metrics.TraceIDBytes)*tt.fires
		if got := counterAt(agg.Counters, script.SlotBytes); got != wantBytes {
			res.violatef("agent %s: aggregated bytes %d, ground truth %d", st.name, got, wantBytes)
		}
		if n := metrics.HistCount(agg.Hist); n != tt.fires {
			res.violatef("agent %s: latency histogram holds %d samples, ground truth %d fires", st.name, n, tt.fires)
		}
		if n := metrics.HistCount(agg.CPUHits); n != tt.fires {
			res.violatef("agent %s: per-CPU hits sum to %d, ground truth %d fires", st.name, n, tt.fires)
		}
		gotFlows := make(map[metrics.FlowKey]uint64, len(agg.Flows))
		for _, fl := range agg.Flows {
			gotFlows[metrics.FlowKey{SrcIP: fl.SrcIP, DstIP: fl.DstIP, SrcPort: fl.SrcPort, DstPort: fl.DstPort, Proto: fl.Proto}] = fl.Packets
		}
		for _, key := range sortedFlowKeys(tt.perFlow) {
			if gotFlows[key] != tt.perFlow[key] {
				res.violatef("agent %s flow %v: aggregated %d packets, ground truth %d",
					st.name, key, gotFlows[key], tt.perFlow[key])
			}
		}
		if len(gotFlows) != len(tt.perFlow) {
			res.violatef("agent %s: aggregates hold %d flows, ground truth %d", st.name, len(gotFlows), len(tt.perFlow))
		}
	}

	// Exactly-once at frame granularity mirrors the record-batch check:
	// with no evictions (asserted above), every lost aggregate ack causes
	// exactly one duplicate frame, which the ledger must absorb.
	if !sc.SinkDownForever && tot.FramesDup != fs.aggAcksLost {
		res.violatef("aggregate ledger deduped %d frames, %d aggregate acks were lost", tot.FramesDup, fs.aggAcksLost)
	}
	if sc.KillAtNs <= 0 && tot.FramesFenced != 0 {
		res.violatef("aggregate ledger fenced %d frames with no kill fault injected", tot.FramesFenced)
	}
	dig.logf("account aggregates merged=%d dup=%d fenced=%d rows=%d attempts=%d rejected=%d ackslost=%d",
		tot.FramesMerged, tot.FramesDup, tot.FramesFenced, tot.RowsMerged,
		fs.aggAttempts, fs.aggRejected, fs.aggAcksLost)
}

// counterAt reads a dense counter slot, 0 when the slice is short.
func counterAt(counters []uint64, slot int) uint64 {
	if slot < len(counters) {
		return counters[slot]
	}
	return 0
}

// checkTable verifies per-table invariants across the table's collector
// partitions: exactly-once per trace ID cluster-wide, per-flow
// conservation, per-(partition, CPU) intra-ring ordering, and the merge
// layer losing nothing.
func checkTable(sc Scenario, st *agentState, tpid uint32, truth *groundTruth, cols []*collectorState, res *Result) {
	parts := partitions(cols, tpid)
	if len(parts) == 0 {
		res.violatef("agent %s: table %d missing on every collector", st.name, tpid)
		return
	}
	tt := truth.table(tpid)
	clean := machineClean(st)

	storedIDs := make(map[uint32]uint64)
	storedFlows := make(map[metrics.FlowKey]uint64)
	type cpuCursor struct {
		timeNs uint64
		pktSeq uint64
		seen   bool
	}
	stored := 0
	for _, tbl := range parts {
		stored += tbl.Len()
		// Cursors are per partition: a re-homed agent's stream splits at
		// the handoff point, and each partition preserves emit order for
		// its own span.
		cursors := make(map[uint32]*cpuCursor)
		tbl.Scan(func(r core.Record) bool {
			storedIDs[r.TraceID]++
			storedFlows[flowKeyOfRecord(r)]++
			cur := cursors[r.CPU]
			if cur == nil {
				cur = &cpuCursor{}
				cursors[r.CPU] = cur
			}
			if cur.seen {
				// Within one partition and one CPU the ring preserves emit
				// order: timestamps never run backwards and the machine's
				// packet sequence strictly increases.
				if r.TimeNs < cur.timeNs {
					res.violatef("table %d cpu %d: time %d after %d — intra-ring order broken",
						tpid, r.CPU, r.TimeNs, cur.timeNs)
					return false
				}
				if r.Seq <= cur.pktSeq {
					res.violatef("table %d cpu %d: pkt seq %d after %d — intra-ring order broken",
						tpid, r.CPU, r.Seq, cur.pktSeq)
					return false
				}
			}
			cur.seen = true
			cur.timeNs = r.TimeNs
			cur.pktSeq = r.Seq
			return true
		})
	}

	// The k-way merged view loses nothing: it streams exactly the union
	// of the partitions.
	mergedCount := 0
	tracedb.Merge(parts...).ScanAligned(func(core.Record) bool {
		mergedCount++
		return true
	})
	if mergedCount != stored {
		res.violatef("table %d: merged view streams %d records, partitions hold %d", tpid, mergedCount, stored)
	}

	// Exactly-once: no trace ID may be stored more often than it was
	// emitted (each ID fires once per table); a clean machine stores
	// every emitted ID exactly once.
	for _, id := range sortedIDKeys(storedIDs) {
		n := storedIDs[id]
		want := tt.ids[id]
		if n > want {
			res.violatef("table %d: trace ID %d stored %d times, emitted %d — duplicate records",
				tpid, id, n, want)
		}
	}
	if clean {
		for _, id := range sortedIDKeys(tt.ids) {
			if storedIDs[id] != tt.ids[id] {
				res.violatef("table %d: trace ID %d stored %d times, emitted %d on a lossless path",
					tpid, id, storedIDs[id], tt.ids[id])
			}
		}
	}

	// Per-flow conservation mirrors the per-ID check at flow granularity.
	for _, key := range sortedFlowKeys(storedFlows) {
		if storedFlows[key] > tt.perFlow[key] {
			res.violatef("table %d flow %v: stored %d > emitted %d",
				tpid, key, storedFlows[key], tt.perFlow[key])
		}
	}
	if clean {
		for _, key := range sortedFlowKeys(tt.perFlow) {
			if storedFlows[key] != tt.perFlow[key] {
				res.violatef("table %d flow %v: stored %d, emitted %d on a lossless path",
					tpid, key, storedFlows[key], tt.perFlow[key])
			}
		}
	}
}

// checkMetrics recomputes the paper's metrics from the trace DB and
// reconciles them with the injected ground truth, within the
// skew-correction bounds. Only lossless paths qualify: a drop anywhere on
// the path changes the metric legitimately.
func checkMetrics(sc Scenario, cluster []*agentState, truth *groundTruth, cols []*collectorState, res *Result) {
	for i, src := range cluster {
		dst := cluster[(i+1)%len(cluster)]
		path := truth.paths[i]
		if path.sent == 0 {
			continue
		}
		srcClean := machineClean(src) && src.skewTolNs > 0
		dstClean := machineClean(dst) && dst.skewTolNs > 0
		srcParts := partitions(cols, src.srcTP)
		dstParts := partitions(cols, dst.dstTP)
		if len(srcParts) == 0 || len(dstParts) == 0 {
			continue // table-missing violations already reported
		}
		// Queries run against the k-way merged cross-collector view — the
		// same layer vntquery's cluster mode uses.
		srcTbl := tracedb.Merge(srcParts...)
		dstTbl := tracedb.Merge(dstParts...)

		// Throughput at the send probe: bytes on the true time span vs
		// bytes on the skew-aligned span.
		if srcClean {
			tt := truth.table(src.srcTP)
			span := tt.lastNs - tt.firstNs
			if span > 0 {
				want := float64(tt.bytes) * 8 * 1e9 / float64(span)
				got, err := metrics.ThroughputOf(metrics.SourceFunc(srcTbl.ScanAligned))
				if err != nil {
					res.violatef("path %d: throughput: %v", i, err)
				} else {
					tol := 2*float64(src.skewTolNs)/float64(span) + 0.001
					if relErr(got, want) > tol {
						res.violatef("path %d: throughput %.0f bps, ground truth %.0f bps (rel err %.4f > %.4f)",
							i, got, want, relErr(got, want), tol)
					}
				}
			}
		}

		if srcClean && dstClean {
			// Loss: distinct trace IDs that left the send probe and never
			// hit the receive probe == injected wire drops.
			lost, _ := metrics.LossOf(srcTbl, dstTbl)
			if uint64(lost) != path.dropped {
				res.violatef("path %d: measured loss %d, injected %d drops", i, lost, path.dropped)
			}

			// Latency: mean skew-aligned hop latency vs the mean of the
			// realized transit delays, within both agents' skew bounds.
			if len(path.delays) > 0 {
				samples := metrics.LatenciesOf(
					metrics.SourceFunc(srcTbl.ScanAligned),
					metrics.SourceFunc(dstTbl.ScanAligned))
				if len(samples) != len(path.delays) {
					res.violatef("path %d: %d latency samples, %d packets delivered",
						i, len(samples), len(path.delays))
				} else {
					got := metrics.Mean(metrics.Values(samples))
					want := meanI64(path.delays)
					tol := float64(src.skewTolNs + dst.skewTolNs)
					if diff := got - want; diff > tol || diff < -tol {
						res.violatef("path %d: mean latency %.0f ns, ground truth %.0f ns (|diff| > %0.f ns)",
							i, got, want, tol)
					}
				}
			}
		}
	}
}

// machineClean reports whether a machine's record path was lossless:
// nothing dropped at the ring, nothing evicted, nothing still spooled,
// no fires against a detached probe, and nothing lost to (or stuck in) a
// zombie incarnation. Only such machines qualify for exact metric checks.
func machineClean(st *agentState) bool {
	rs := st.agent.RingStats()
	ss := st.agent.SpoolStats()
	if st.unattended != 0 || st.fencedRecords != 0 {
		return false
	}
	if st.zombie != nil {
		zs := st.zombie.SpoolStats()
		if zs.Records != 0 || zs.EvictedRecords != 0 {
			return false
		}
	}
	return rs.Drops == 0 && ss.EvictedRecords == 0 && ss.Records == 0
}

func flowKeyOfRecord(r core.Record) metrics.FlowKey {
	return metrics.FlowKey{
		SrcIP:   r.SrcIP,
		DstIP:   r.DstIP,
		SrcPort: r.SrcPort,
		DstPort: r.DstPort,
		Proto:   r.Proto,
	}
}

// tableLen sums a tracepoint's record count over its collector
// partitions.
func tableLen(cols []*collectorState, tpid uint32) int {
	n := 0
	for _, cs := range cols {
		if tbl, ok := cs.db.Table(tpid); ok {
			n += tbl.Len()
		}
	}
	return n
}

// partitions collects a tracepoint's per-collector table partitions.
func partitions(cols []*collectorState, tpid uint32) []*tracedb.Table {
	out := make([]*tracedb.Table, 0, len(cols))
	for _, cs := range cols {
		if tbl, ok := cs.db.Table(tpid); ok {
			out = append(out, tbl)
		}
	}
	return out
}

func sortedIDKeys(m map[uint32]uint64) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedFlowKeys(m map[metrics.FlowKey]uint64) []metrics.FlowKey {
	out := make([]metrics.FlowKey, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.SrcIP != b.SrcIP {
			return a.SrcIP < b.SrcIP
		}
		if a.DstIP != b.DstIP {
			return a.DstIP < b.DstIP
		}
		if a.SrcPort != b.SrcPort {
			return a.SrcPort < b.SrcPort
		}
		if a.DstPort != b.DstPort {
			return a.DstPort < b.DstPort
		}
		return a.Proto < b.Proto
	})
	return out
}

func meanI64(vals []int64) float64 {
	var sum int64
	for _, v := range vals {
		sum += v
	}
	return float64(sum) / float64(len(vals))
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	d := (got - want) / want
	if d < 0 {
		return -d
	}
	return d
}
