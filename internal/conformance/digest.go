package conformance

import (
	"fmt"
	"hash"
	"hash/fnv"
)

// digest accumulates the run's event trace into a replay fingerprint.
// Every observable event — each probe fire, each delivery attempt and its
// outcome, the final per-agent accounting — folds into an FNV-64a hash in
// the order it happens. Two runs of the same scenario must produce the
// same digest; a mismatch means something nondeterministic (map
// iteration, unseeded randomness, wall-clock time) leaked into the
// pipeline.
type digest struct {
	h      hash.Hash64
	events uint64
}

func newDigest() *digest {
	return &digest{h: fnv.New64a()}
}

// logf folds one formatted event into the digest.
func (d *digest) logf(format string, args ...any) {
	fmt.Fprintf(d.h, format, args...)
	d.h.Write([]byte{'\n'})
	d.events++
}

// sum renders the fingerprint: hash plus event count, so a divergence in
// trace length is visible even when hashes collide.
func (d *digest) sum() string {
	return fmt.Sprintf("%016x/%d", d.h.Sum64(), d.events)
}
