package conformance

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"vnettracer/internal/sim"
)

// report fails the test with every violated invariant plus the replay
// recipe: the scenario name, the seed, and the run digest.
func report(t *testing.T, res *Result) {
	t.Helper()
	if len(res.Violations) == 0 {
		return
	}
	for _, v := range res.Violations {
		t.Errorf("invariant: %s", v)
	}
	t.Errorf("reproduce: scenario %q seed %d (digest %s)",
		res.Scenario.Name, res.Scenario.Seed, res.Digest)
}

// TestScenarioCorpus runs every corpus scenario twice: all invariants
// must hold, and the second run must replay to the identical digest —
// any nondeterminism anywhere in the pipeline (map iteration, unseeded
// randomness, wall-clock reads) shows up here as a digest mismatch.
func TestScenarioCorpus(t *testing.T) {
	// engagement lists, per scenario, the fault symptom that must be
	// visibly nonzero in the result — a scenario whose fault silently
	// stops firing is testing nothing.
	engagement := map[string]func(*Result) (string, uint64){
		"bursty-emit-ring-drops": func(r *Result) (string, uint64) {
			return "ring drops", sumAgents(r, func(a AgentReport) uint64 { return a.RingDrops })
		},
		"flaky-sink-window": func(r *Result) (string, uint64) { return "rejected deliveries", r.Rejected },
		"ack-loss":          func(r *Result) (string, uint64) { return "deduped batches", r.DupBatches },
		"spool-overflow": func(r *Result) (string, uint64) {
			return "evicted records", sumAgents(r, func(a AgentReport) uint64 { return a.Evicted })
		},
		"sink-down-forever": func(r *Result) (string, uint64) {
			return "records spooled at quiesce", sumAgents(r, func(a AgentReport) uint64 { return a.Spooled })
		},
		"kitchen-sink": func(r *Result) (string, uint64) { return "deduped batches", r.DupBatches },
		"agent-restart-reprovision": func(r *Result) (string, uint64) {
			if r.Supervisor.Reprovisions == 0 {
				return "supervisor re-provisions", 0
			}
			return "unattended fires in the dead window", r.UnattendedFires
		},
		"in-probe-aggregation": func(r *Result) (string, uint64) {
			if sumAgents(r, func(a AgentReport) uint64 { return a.RingDrops }) == 0 {
				return "ring drops alongside exact aggregates", 0
			}
			if r.AggRejected == 0 {
				return "rejected aggregate deliveries", 0
			}
			return "deduped aggregate frames", r.AggFramesDup
		},
		"zombie-epoch-fencing": func(r *Result) (string, uint64) {
			if r.FencedBatches == 0 {
				return "fenced batches", 0
			}
			return "fenced records", r.FencedRecords
		},
		"collector-crash-rehome": func(r *Result) (string, uint64) {
			if r.Rehomes == 0 {
				return "re-homed agents", 0
			}
			if r.Rejected == 0 {
				return "rejected deliveries at the crashed collector", 0
			}
			if r.DupBatches == 0 {
				return "re-shipped batches deduped across the handoff", 0
			}
			return "aggregate frames deduped", r.AggFramesDup
		},
		"collector-kill-recover": func(r *Result) (string, uint64) {
			if r.RecoveredCollectors == 0 {
				return "recovered collectors", 0
			}
			if !r.Recovery.CheckpointLoaded {
				return "checkpoint loaded at recovery", 0
			}
			if r.Recovery.ReplayedRecords == 0 {
				return "WAL-replayed records", 0
			}
			if r.CrashSpooledBatches == 0 || r.CrashSpooledFrames == 0 {
				return "batches and frames spooled at the crash instant", 0
			}
			return "re-shipped batches deduped by the recovered collector", r.DupAfterRecovery
		},
		"recover-vs-rehome": func(r *Result) (string, uint64) {
			if r.RecoveredCollectors == 0 {
				return "recovered collectors", 0
			}
			if r.Rehomes == 0 {
				return "re-homed agents", 0
			}
			if !r.Recovery.CheckpointLoaded {
				return "checkpoint loaded at recovery", 0
			}
			if r.Recovery.ReplayedRecords == 0 {
				return "WAL-replayed records", 0
			}
			return "re-shipped batches deduped after the rehome", r.DupBatches
		},
		"skewed-agent-load": func(r *Result) (string, uint64) {
			var min, max uint64
			for i, pc := range r.PerCollector {
				if i == 0 || pc.Records < min {
					min = pc.Records
				}
				if pc.Records > max {
					max = pc.Records
				}
			}
			if len(r.PerCollector) < 2 || min == 0 {
				return "ingest at every collector", 0
			}
			if max < 2*min {
				return "visible ingest skew (max >= 2*min)", 0
			}
			return "skewed per-collector ingest", max
		},
		"collector-overload-degrade": func(r *Result) (string, uint64) {
			if r.OverloadAcks == 0 {
				return "pressured acks", 0
			}
			if sumAgents(r, func(a AgentReport) uint64 { return a.Degradations }) == 0 {
				return "degradations", 0
			}
			if sumAgents(r, func(a AgentReport) uint64 { return a.SampleDrops }) == 0 {
				return "sampled-away ring writes", 0
			}
			return "recoveries", sumAgents(r, func(a AgentReport) uint64 { return a.Recoveries })
		},
	}
	for _, sc := range Corpus() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			first, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			report(t, first)
			if probe, ok := engagement[sc.Name]; ok {
				if what, n := probe(first); n == 0 {
					t.Errorf("fault never engaged: %s is 0", what)
				}
			}
			second, err := Run(sc)
			if err != nil {
				t.Fatal(err)
			}
			report(t, second)
			if second.Digest != first.Digest {
				t.Errorf("same seed, different trace: run 1 digest %s, run 2 digest %s",
					first.Digest, second.Digest)
			}
		})
	}
}

func sumAgents(r *Result, field func(AgentReport) uint64) uint64 {
	var sum uint64
	for _, a := range r.Agents {
		sum += field(a)
	}
	return sum
}

// TestCorpusCoversFaultMatrix pins the corpus floor: at least 10
// scenarios, collectively exercising every fault axis the harness
// models.
func TestCorpusCoversFaultMatrix(t *testing.T) {
	corpus := Corpus()
	if len(corpus) < 10 {
		t.Fatalf("corpus has %d scenarios, want >= 10", len(corpus))
	}
	var bursts, skew, outage, ackLoss, restart, spool, wireLoss, forever bool
	var kill, zombie, overload, aggregation bool
	var multiCollector, rehome, skewedLoad bool
	var durable, killRecover, recoverVsRehome bool
	names := make(map[string]bool)
	for _, sc := range corpus {
		if names[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		names[sc.Name] = true
		bursts = bursts || sc.BurstLen > 1
		skew = skew || len(sc.ClockOffsetsNs) > 0
		outage = outage || sc.SinkDownUntilNs > sc.SinkDownFromNs
		ackLoss = ackLoss || sc.AckLossEvery > 0
		restart = restart || sc.RestartForNs > 0
		spool = spool || sc.SpoolBytes > 0
		wireLoss = wireLoss || sc.DropEvery > 0
		forever = forever || sc.SinkDownForever
		kill = kill || sc.KillRebootAfterNs > 0
		zombie = zombie || sc.ZombieFlushAtNs > 0
		overload = overload || sc.OverloadCap > 0
		aggregation = aggregation || sc.ShipAggregates
		multiCollector = multiCollector || sc.Collectors > 1
		rehome = rehome || sc.CollectorFailAtNs > 0
		skewedLoad = skewedLoad || len(sc.AgentWeights) > 0
		durable = durable || sc.Durable
		killRecover = killRecover || (sc.Durable && sc.CollectorCrashAtNs > 0)
		recoverVsRehome = recoverVsRehome || (sc.Durable && sc.CollectorCrashAtNs > 0 && sc.CollectorFailAtNs > 0)
	}
	for axis, covered := range map[string]bool{
		"bursty emit":            bursts,
		"clock skew":             skew,
		"sink outage":            outage,
		"ack loss":               ackLoss,
		"agent restart":          restart,
		"spool overflow":         spool,
		"wire loss":              wireLoss,
		"sink down forever":      forever,
		"kill and reboot":        kill,
		"zombie stale epoch":     zombie,
		"collector overload":     overload,
		"in-probe aggregation":   aggregation,
		"multi-collector tier":   multiCollector,
		"collector crash rehome": rehome,
		"skewed agent load":      skewedLoad,
		"durable WAL ingest":     durable,
		"collector kill recover": killRecover,
		"recover vs rehome":      recoverVsRehome,
	} {
		if !covered {
			t.Errorf("fault axis %q not covered by any corpus scenario", axis)
		}
	}
}

// TestDigestSeparatesSeeds is the digest's own sanity check: different
// seeds must produce different traces, or the replay fingerprint is
// vacuous.
func TestDigestSeparatesSeeds(t *testing.T) {
	a, err := Run(Scenario{Name: "sep", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Scenario{Name: "sep", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatalf("seeds 1 and 2 produced the same digest %s", a.Digest)
	}
}

// TestKitchenSink100x runs the kitchen-sink scenario at 100x record
// volume with sealed segments spilling to disk — the storage acceptance
// run: every invariant must stay green, the store must actually spill,
// compression must clear the 4x floor, and the resident footprint must
// stay bounded well below the flat-slice baseline.
func TestKitchenSink100x(t *testing.T) {
	var base Scenario
	for _, sc := range Corpus() {
		if sc.Name == "kitchen-sink" {
			base = sc
			break
		}
	}
	if base.Name == "" {
		t.Fatal("kitchen-sink not in corpus")
	}
	sc := base
	sc.Name = "kitchen-sink-100x"
	sc.Packets = base.Packets * 100
	sc.RingBytes = 64 * 1024
	// Stretch the horizon 10x and move the fault windows with it so the
	// outage and restart still land mid-workload.
	sc.HorizonNs = 1000 * sim.Millisecond
	sc.SinkDownFromNs = 400 * sim.Millisecond
	sc.SinkDownUntilNs = 550 * sim.Millisecond
	sc.RestartAtNs = 600 * sim.Millisecond
	sc.RestartForNs = 200 * sim.Millisecond
	sc.SpillDir = t.TempDir()

	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	report(t, res)

	st := res.Storage
	if st.Records() == 0 || st.SealedRecords == 0 {
		t.Fatalf("storage saw no sealed records: %+v", st)
	}
	if st.SpilledExtents == 0 || st.SpilledBytes == 0 {
		t.Fatalf("nothing spilled to %s: %+v", sc.SpillDir, st)
	}
	if ratio := st.CompressionRatio(); ratio < 4 {
		t.Fatalf("compression ratio %.2f, want >= 4", ratio)
	}
	// Bounded residency: with every head sealed and spilled, what stays
	// in memory (extent metadata + bloom filters) must be a small
	// fraction of what the flat store would hold resident.
	if st.ResidentBytes*4 > st.SealedRawBytes {
		t.Fatalf("resident %d B vs flat baseline %d B: not bounded", st.ResidentBytes, st.SealedRawBytes)
	}
	if st.ReadErrors != 0 {
		t.Fatalf("segment read errors: %d", st.ReadErrors)
	}
	// The storage layer must conserve what the pipeline stored.
	if stored := sumAgents(res, func(a AgentReport) uint64 { return a.Stored }); st.Records() != stored {
		t.Fatalf("storage holds %d records, pipeline stored %d", st.Records(), stored)
	}
}

// TestSeedSweep replays fault-heavy scenarios across fresh seeds. The
// default 3 seeds ride in tier-1; `make conformance` raises the count
// via CONFORMANCE_SEEDS for a deeper sweep.
func TestSeedSweep(t *testing.T) {
	seeds := 3
	if s := os.Getenv("CONFORMANCE_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CONFORMANCE_SEEDS %q", s)
		}
		seeds = n
	}
	byName := make(map[string]Scenario)
	for _, sc := range Corpus() {
		byName[sc.Name] = sc
	}
	for _, name := range []string{
		"baseline-steady", "bursty-emit-ring-drops", "spool-overflow", "kitchen-sink",
		"agent-restart-reprovision", "zombie-epoch-fencing", "collector-overload-degrade",
		"in-probe-aggregation", "collector-crash-rehome", "skewed-agent-load",
		"collector-kill-recover", "recover-vs-rehome",
	} {
		base, ok := byName[name]
		if !ok {
			t.Fatalf("sweep scenario %q not in corpus", name)
		}
		for i := 0; i < seeds; i++ {
			sc := base
			sc.Seed = int64(1000 + 7919*i)
			sc.Name = fmt.Sprintf("%s@seed%d", name, sc.Seed)
			t.Run(sc.Name, func(t *testing.T) {
				res, err := Run(sc)
				if err != nil {
					t.Fatal(err)
				}
				report(t, res)
			})
		}
	}
}
