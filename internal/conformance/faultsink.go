package conformance

import (
	"errors"

	"vnettracer/internal/control"
	"vnettracer/internal/sim"
)

var (
	errSinkDown = errors.New("conformance: sink down")
	errAckLost  = errors.New("conformance: ack lost")
)

// faultState is the scenario's transport-fault machinery, shared by every
// collector's sink: outage windows (delivery rejected outright, batch
// never ingested) and ack loss (batch ingested, then the acknowledgement
// "lost" — the agent sees an error and retries a batch the collector
// already has, which the dedup ledger must absorb). The ack-loss cadence
// and all delivery counters are cluster-global, so the exactly-once
// reconciliation (duplicates vs lost acks) closes across collectors no
// matter where each batch landed. Every delivery attempt and its outcome
// goes into the digest; the whole run is single-threaded on the sim
// engine, so plain counters suffice.
type faultState struct {
	eng *sim.Engine
	dig *digest

	downFrom  int64
	downUntil int64
	downOpen  bool // downUntil ignored; heal() ends the outage

	ackLossEvery int
	ingests      int // successful ingests (all collectors), for ack-loss cadence
	healed       bool

	// Collector-overload injection: inside the window every ack reports
	// a queue of overloadDepth/overloadCap; outside it (cap still > 0)
	// an empty queue of the same capacity, so agents recover.
	overloadFrom  int64
	overloadUntil int64
	overloadDepth int
	overloadCap   int

	attempts     uint64
	rejected     uint64
	acksLost     uint64
	acksLostSeq  uint64 // acks lost on sequenced (Seq != 0) batches
	overloadAcks uint64 // acks that reported the overloaded queue

	// Aggregate-frame delivery shares the outage window and the ack-loss
	// cadence but keeps its own counters (and its own ingest count for the
	// cadence), since frames ride a dedicated sequence space.
	aggAttempts uint64
	aggRejected uint64
	aggAcksLost uint64
	aggIngests  int
}

func newFaultState(eng *sim.Engine, sc Scenario, dig *digest) *faultState {
	return &faultState{
		eng:           eng,
		dig:           dig,
		downFrom:      sc.SinkDownFromNs,
		downUntil:     sc.SinkDownUntilNs,
		downOpen:      sc.SinkDownForever,
		ackLossEvery:  sc.AckLossEvery,
		overloadFrom:  sc.OverloadFromNs,
		overloadUntil: sc.OverloadUntilNs,
		overloadDepth: sc.OverloadDepth,
		overloadCap:   sc.OverloadCap,
	}
}

func (f *faultState) down(now int64) bool {
	if f.healed {
		return false
	}
	if f.downOpen {
		return now >= f.downFrom
	}
	return f.downFrom < f.downUntil && now >= f.downFrom && now < f.downUntil
}

// heal ends all transport faults; quiesce calls it so spools can drain.
// A crashed collector stays crashed — its sink is dead, not faulty.
func (f *faultState) heal() { f.healed = true }

// faultSink fronts one collector with the shared fault machinery. The
// crashed flag models that collector's process death: every delivery
// errors unconditionally (and is never ingested) until the agents
// re-home away from it.
type faultSink struct {
	f       *faultState
	name    string
	inner   *control.Collector
	crashed bool
}

var _ control.AckingRecordSink = (*faultSink)(nil)
var _ control.AggSink = (*faultSink)(nil)

func newFaultSink(name string, inner *control.Collector, f *faultState) *faultSink {
	return &faultSink{f: f, name: name, inner: inner}
}

// crash kills this collector's ingest path permanently.
func (s *faultSink) crash() { s.crashed = true }

func (s *faultSink) HandleBatch(b control.RecordBatch) error {
	_, err := s.HandleBatchAck(b)
	return err
}

// HandleBatchAck implements control.AckingRecordSink: the agents' deliver
// path prefers it, so the sink is also where the scenario's backpressure
// report is forged. Overload scenarios hand every successful delivery an
// ack claiming the ingest queue is overloadDepth/overloadCap full inside
// the window and empty (same capacity) outside it; other scenarios return
// the zero ack — no pressure signal, degradation controller inert.
func (s *faultSink) HandleBatchAck(b control.RecordBatch) (control.BatchAck, error) {
	f := s.f
	now := f.eng.Now()
	f.attempts++
	if s.crashed {
		f.rejected++
		f.dig.logf("deliver col=%s t=%d agent=%s epoch=%d seq=%d recs=%d drops=%d outcome=crash",
			s.name, now, b.Agent, b.Epoch, b.Seq, len(b.Records), b.RingDrops)
		return control.BatchAck{}, errSinkDown
	}
	if f.down(now) {
		f.rejected++
		f.dig.logf("deliver col=%s t=%d agent=%s epoch=%d seq=%d recs=%d drops=%d outcome=down",
			s.name, now, b.Agent, b.Epoch, b.Seq, len(b.Records), b.RingDrops)
		return control.BatchAck{}, errSinkDown
	}
	if err := s.inner.HandleBatch(b); err != nil {
		f.dig.logf("deliver col=%s t=%d agent=%s epoch=%d seq=%d recs=%d drops=%d outcome=err",
			s.name, now, b.Agent, b.Epoch, b.Seq, len(b.Records), b.RingDrops)
		return control.BatchAck{}, err
	}
	f.ingests++
	if !f.healed && f.ackLossEvery > 0 && f.ingests%f.ackLossEvery == 0 {
		f.acksLost++
		if b.Seq != 0 {
			f.acksLostSeq++
		}
		f.dig.logf("deliver col=%s t=%d agent=%s epoch=%d seq=%d recs=%d drops=%d outcome=acklost",
			s.name, now, b.Agent, b.Epoch, b.Seq, len(b.Records), b.RingDrops)
		return control.BatchAck{}, errAckLost
	}
	f.dig.logf("deliver col=%s t=%d agent=%s epoch=%d seq=%d recs=%d drops=%d outcome=ok",
		s.name, now, b.Agent, b.Epoch, b.Seq, len(b.Records), b.RingDrops)
	return f.ack(now), nil
}

// HandleAgg implements control.AggSink under the same transport faults:
// an outage rejects the frame outright (the agent keeps it spooled and
// retries), and a lost "ack" — an error returned after the collector
// already merged — forces a duplicate delivery the aggregate ledger must
// absorb, or every counter it carries would double.
func (s *faultSink) HandleAgg(b control.AggBatch) error {
	f := s.f
	now := f.eng.Now()
	f.aggAttempts++
	if s.crashed {
		f.aggRejected++
		f.dig.logf("deliver-agg col=%s t=%d agent=%s epoch=%d seq=%d scripts=%d outcome=crash",
			s.name, now, b.Agent, b.Epoch, b.Seq, len(b.Scripts))
		return errSinkDown
	}
	if f.down(now) {
		f.aggRejected++
		f.dig.logf("deliver-agg col=%s t=%d agent=%s epoch=%d seq=%d scripts=%d outcome=down",
			s.name, now, b.Agent, b.Epoch, b.Seq, len(b.Scripts))
		return errSinkDown
	}
	if err := s.inner.HandleAgg(b); err != nil {
		f.dig.logf("deliver-agg col=%s t=%d agent=%s epoch=%d seq=%d scripts=%d outcome=err",
			s.name, now, b.Agent, b.Epoch, b.Seq, len(b.Scripts))
		return err
	}
	f.aggIngests++
	if !f.healed && f.ackLossEvery > 0 && f.aggIngests%f.ackLossEvery == 0 {
		f.aggAcksLost++
		f.dig.logf("deliver-agg col=%s t=%d agent=%s epoch=%d seq=%d scripts=%d outcome=acklost",
			s.name, now, b.Agent, b.Epoch, b.Seq, len(b.Scripts))
		return errAckLost
	}
	f.dig.logf("deliver-agg col=%s t=%d agent=%s epoch=%d seq=%d scripts=%d outcome=ok",
		s.name, now, b.Agent, b.Epoch, b.Seq, len(b.Scripts))
	return nil
}

// ack builds the backpressure report for a successful delivery at time
// now.
func (f *faultState) ack(now int64) control.BatchAck {
	if f.overloadCap <= 0 {
		return control.BatchAck{}
	}
	if !f.healed && now >= f.overloadFrom && now < f.overloadUntil {
		f.overloadAcks++
		return control.BatchAck{QueueDepth: f.overloadDepth, QueueCap: f.overloadCap}
	}
	return control.BatchAck{QueueDepth: 0, QueueCap: f.overloadCap}
}
