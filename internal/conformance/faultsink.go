package conformance

import (
	"errors"

	"vnettracer/internal/control"
	"vnettracer/internal/sim"
)

var (
	errSinkDown = errors.New("conformance: sink down")
	errAckLost  = errors.New("conformance: ack lost")
)

// faultSink wraps the collector with the scenario's transport faults:
// outage windows (delivery rejected outright, batch never ingested) and
// ack loss (batch ingested, then the acknowledgement "lost" — the agent
// sees an error and retries a batch the collector already has, which the
// dedup ledger must absorb). Every delivery attempt and its outcome goes
// into the digest; the whole run is single-threaded on the sim engine, so
// plain counters suffice.
type faultSink struct {
	inner *control.Collector
	eng   *sim.Engine
	dig   *digest

	downFrom  int64
	downUntil int64
	downOpen  bool // downUntil ignored; heal() ends the outage

	ackLossEvery int
	ingests      int // successful inner ingests, for ack-loss cadence
	healed       bool

	// Collector-overload injection: inside the window every ack reports
	// a queue of overloadDepth/overloadCap; outside it (cap still > 0)
	// an empty queue of the same capacity, so agents recover.
	overloadFrom  int64
	overloadUntil int64
	overloadDepth int
	overloadCap   int

	attempts     uint64
	rejected     uint64
	acksLost     uint64
	acksLostSeq  uint64 // acks lost on sequenced (Seq != 0) batches
	overloadAcks uint64 // acks that reported the overloaded queue

	// Aggregate-frame delivery shares the outage window and the ack-loss
	// cadence but keeps its own counters (and its own ingest count for the
	// cadence), since frames ride a dedicated sequence space.
	aggAttempts uint64
	aggRejected uint64
	aggAcksLost uint64
	aggIngests  int
}

var _ control.AckingRecordSink = (*faultSink)(nil)
var _ control.AggSink = (*faultSink)(nil)

func newFaultSink(inner *control.Collector, eng *sim.Engine, sc Scenario, dig *digest) *faultSink {
	return &faultSink{
		inner:         inner,
		eng:           eng,
		dig:           dig,
		downFrom:      sc.SinkDownFromNs,
		downUntil:     sc.SinkDownUntilNs,
		downOpen:      sc.SinkDownForever,
		ackLossEvery:  sc.AckLossEvery,
		overloadFrom:  sc.OverloadFromNs,
		overloadUntil: sc.OverloadUntilNs,
		overloadDepth: sc.OverloadDepth,
		overloadCap:   sc.OverloadCap,
	}
}

func (s *faultSink) down(now int64) bool {
	if s.healed {
		return false
	}
	if s.downOpen {
		return now >= s.downFrom
	}
	return s.downFrom < s.downUntil && now >= s.downFrom && now < s.downUntil
}

// heal ends all transport faults; quiesce calls it so spools can drain.
func (s *faultSink) heal() { s.healed = true }

func (s *faultSink) HandleBatch(b control.RecordBatch) error {
	_, err := s.HandleBatchAck(b)
	return err
}

// HandleBatchAck implements control.AckingRecordSink: the agents' deliver
// path prefers it, so the sink is also where the scenario's backpressure
// report is forged. Overload scenarios hand every successful delivery an
// ack claiming the ingest queue is overloadDepth/overloadCap full inside
// the window and empty (same capacity) outside it; other scenarios return
// the zero ack — no pressure signal, degradation controller inert.
func (s *faultSink) HandleBatchAck(b control.RecordBatch) (control.BatchAck, error) {
	now := s.eng.Now()
	s.attempts++
	if s.down(now) {
		s.rejected++
		s.dig.logf("deliver t=%d agent=%s epoch=%d seq=%d recs=%d drops=%d outcome=down",
			now, b.Agent, b.Epoch, b.Seq, len(b.Records), b.RingDrops)
		return control.BatchAck{}, errSinkDown
	}
	if err := s.inner.HandleBatch(b); err != nil {
		s.dig.logf("deliver t=%d agent=%s epoch=%d seq=%d recs=%d drops=%d outcome=err",
			now, b.Agent, b.Epoch, b.Seq, len(b.Records), b.RingDrops)
		return control.BatchAck{}, err
	}
	s.ingests++
	if !s.healed && s.ackLossEvery > 0 && s.ingests%s.ackLossEvery == 0 {
		s.acksLost++
		if b.Seq != 0 {
			s.acksLostSeq++
		}
		s.dig.logf("deliver t=%d agent=%s epoch=%d seq=%d recs=%d drops=%d outcome=acklost",
			now, b.Agent, b.Epoch, b.Seq, len(b.Records), b.RingDrops)
		return control.BatchAck{}, errAckLost
	}
	s.dig.logf("deliver t=%d agent=%s epoch=%d seq=%d recs=%d drops=%d outcome=ok",
		now, b.Agent, b.Epoch, b.Seq, len(b.Records), b.RingDrops)
	return s.ack(now), nil
}

// HandleAgg implements control.AggSink under the same transport faults:
// an outage rejects the frame outright (the agent keeps it spooled and
// retries), and a lost "ack" — an error returned after the collector
// already merged — forces a duplicate delivery the aggregate ledger must
// absorb, or every counter it carries would double.
func (s *faultSink) HandleAgg(b control.AggBatch) error {
	now := s.eng.Now()
	s.aggAttempts++
	if s.down(now) {
		s.aggRejected++
		s.dig.logf("deliver-agg t=%d agent=%s epoch=%d seq=%d scripts=%d outcome=down",
			now, b.Agent, b.Epoch, b.Seq, len(b.Scripts))
		return errSinkDown
	}
	if err := s.inner.HandleAgg(b); err != nil {
		s.dig.logf("deliver-agg t=%d agent=%s epoch=%d seq=%d scripts=%d outcome=err",
			now, b.Agent, b.Epoch, b.Seq, len(b.Scripts))
		return err
	}
	s.aggIngests++
	if !s.healed && s.ackLossEvery > 0 && s.aggIngests%s.ackLossEvery == 0 {
		s.aggAcksLost++
		s.dig.logf("deliver-agg t=%d agent=%s epoch=%d seq=%d scripts=%d outcome=acklost",
			now, b.Agent, b.Epoch, b.Seq, len(b.Scripts))
		return errAckLost
	}
	s.dig.logf("deliver-agg t=%d agent=%s epoch=%d seq=%d scripts=%d outcome=ok",
		now, b.Agent, b.Epoch, b.Seq, len(b.Scripts))
	return nil
}

// ack builds the backpressure report for a successful delivery at time
// now.
func (s *faultSink) ack(now int64) control.BatchAck {
	if s.overloadCap <= 0 {
		return control.BatchAck{}
	}
	if !s.healed && now >= s.overloadFrom && now < s.overloadUntil {
		s.overloadAcks++
		return control.BatchAck{QueueDepth: s.overloadDepth, QueueCap: s.overloadCap}
	}
	return control.BatchAck{QueueDepth: 0, QueueCap: s.overloadCap}
}
