// Package conformance is a deterministic whole-pipeline harness: it
// stands up a full simulated cluster — dispatcher → N agents (per-CPU
// rings, spools, backoff) → fault-injected transport → collector (dedup
// ledger) → tracedb → metrics — on top of internal/sim's seeded engine,
// drives a scripted workload described by a declarative Scenario, and
// checks global invariants at quiesce:
//
//   - record conservation: emitted == stored + ring drops + spool
//     evictions, per agent and per flow;
//   - exactly-once delivery: no record is ever stored twice, and batch
//     sequence gaps exist only where the spool evicted;
//   - per-CPU intra-ring ordering: within one table and one CPU, record
//     timestamps are non-decreasing and packet sequence numbers strictly
//     increase;
//   - metric consistency: throughput/latency/loss computed from tracedb
//     match the ground truth injected by the workload, within
//     skew-correction bounds, whenever the relevant path was lossless.
//
// Every run is replayable: the same seed produces the identical event
// trace and the identical invariant digest (Result.Digest), so a failure
// bisects to a seed. On failure the digest plus the violated invariants
// print; re-running the named scenario with that seed reproduces the run
// bit-for-bit.
package conformance

import "vnettracer/internal/sim"

// Scenario declares one conformance run. The zero value of every field
// picks a sane default (see withDefaults), so scenarios list only what
// they exercise. All times are simulated nanoseconds.
type Scenario struct {
	Name string
	Seed int64

	// Cluster shape.
	Agents    int // number of traced machines (default 2)
	CPUs      int // simulated CPUs (= per-CPU rings) per machine (default 2)
	RingBytes int // per-CPU ring capacity in bytes (default 16 KiB)

	// Collectors scales out the collector tier (default 1). With more
	// than one, agents are placed onto collectors by consistent hashing
	// on the agent name and every invariant is checked cluster-wide:
	// per-agent tables partition across collector stores and the checks
	// run against the k-way merged view.
	Collectors int

	// AgentWeights skews the workload across agents: agent i sources a
	// packet share proportional to AgentWeights[i % len]. Empty means
	// uniform (the pre-cluster behavior). Weights below 1 clamp to 1.
	AgentWeights []int

	// Per-agent clock error, cycled across agents. Offsets must be
	// non-negative (a monotonic clock never reads negative).
	ClockOffsetsNs []int64
	ClockDriftsPPB []int64

	// Agent flush cadence and spool bound. SpoolBytes 0 keeps the
	// control-plane default; set it small to force evictions.
	FlushEveryNs int64
	SpoolBytes   int

	// Workload: Packets UDP packets, round-robined over Flows five-tuples,
	// each fired at a source agent (packet k originates at agent k%N) and,
	// HopDelayNs(+jitter) later, at the next agent's receive probe.
	Packets    int
	PayloadLen int
	Flows      int

	// Burstiness: fire BurstLen packets back-to-back at the same instant
	// every burst. BurstLen <= 1 spreads packets evenly.
	BurstLen int

	// Hop transit time and uniform jitter in [0, HopJitterNs).
	HopDelayNs  int64
	HopJitterNs int64

	// DropEvery injects packet loss on the wire: every DropEvery-th
	// packet never reaches the receive probe. 0 disables.
	DropEvery int

	// Transport faults. The sink rejects every delivery in
	// [SinkDownFromNs, SinkDownUntilNs). AckLossEvery loses the
	// acknowledgement of every n-th successful ingest — the collector
	// keeps the batch, the agent retries it, the ledger must dedup.
	SinkDownFromNs  int64
	SinkDownUntilNs int64
	AckLossEvery    int

	// SinkDownForever keeps the sink down from SinkDownFromNs through
	// quiesce: records legitimately end the run still spooled.
	SinkDownForever bool

	// Agent restart: agent RestartAgent's flush loop stops at
	// RestartAtNs and resumes RestartForNs later (emits keep landing in
	// the ring; sequence numbering must survive).
	RestartAtNs  int64
	RestartForNs int64
	RestartAgent int

	// SuperviseEveryNs arms a periodic control-plane supervision pass:
	// failed pushes past their backoff deadline are retried and restarted
	// agents (new epoch lease) get their desired tracepoints re-pushed.
	// 0 disables the timer (the initial provisioning still goes through
	// the supervisor either way).
	SuperviseEveryNs int64

	// Agent kill: agent KillAgent's process dies at KillAtNs — probes
	// detach, the flush loop stops — and a fresh process boots
	// KillRebootAfterNs later under a new epoch lease, with nothing
	// installed until the supervisor re-provisions it. Fires during the
	// dead window hit no probe and are counted as unattended ground
	// truth. The dead process lingers as a zombie holding its old spool.
	KillAtNs          int64
	KillRebootAfterNs int64
	KillAgent         int

	// Collector crash: the home collector of agent FailAgentHome stops
	// accepting deliveries at CollectorFailAtNs (its tenants spool and
	// back off), and CollectorRehomeAfterNs later the control plane
	// declares it dead — every tenant re-homes to its consistent-hash
	// successor under an advanced epoch lease, with the record and
	// aggregate ledgers handed off so delivery stays exactly-once across
	// the move. Requires Collectors > 1.
	CollectorFailAtNs      int64
	CollectorRehomeAfterNs int64
	FailAgentHome          int

	// ZombieFlushAtNs makes the killed agent's zombie ship its leftover
	// spool at this time (schedule it after the reboot): every batch
	// carries the stale epoch and the collector must fence it — counted,
	// never ingested.
	ZombieFlushAtNs int64

	// Durable fronts every collector's ingest with the crash-durability
	// layer: admitted batches and aggregate frames append to a per-
	// collector write-ahead log before they apply, and checkpoints
	// snapshot the ledgers and stores to disk. When SpillDir is empty the
	// harness provisions (and removes) a temporary directory per run.
	Durable bool

	// CheckpointEveryNs arms a periodic checkpoint on every durable
	// collector; each checkpoint seals the heads, snapshots ledger and
	// aggregate state, and retires the WAL generations it covers. 0
	// leaves the whole run in the WAL tail.
	CheckpointEveryNs int64

	// Collector kill/recover: the home collector of agent CrashAgentHome
	// loses its entire in-memory state at CollectorCrashAtNs — tables,
	// ledgers, aggregate store, ingest counters — and
	// CollectorRecoverAfterNs later is rebuilt purely from its data
	// directory, checkpoints, and WAL tail, then rejoins the tier via
	// RecoverCollector. Deliveries during the dead window fail and spool
	// agent-side. Requires Durable; composes with the
	// CollectorFailAtNs re-homing fault (crash first, re-home the
	// tenants, then recover the empty shell).
	CollectorCrashAtNs      int64
	CollectorRecoverAfterNs int64
	CrashAgentHome          int

	// Collector overload: in [OverloadFromNs, OverloadUntilNs) every
	// acknowledgement reports an ingest queue of OverloadDepth out of
	// OverloadCap, driving the agents' adaptive degradation (stretched
	// flush cadence, then ring head-drop sampling). Outside the window
	// acks report an empty queue of the same capacity, so agents recover.
	// OverloadCap 0 disables the backpressure channel entirely.
	OverloadFromNs  int64
	OverloadUntilNs int64
	OverloadDepth   int
	OverloadCap     int

	// ShipAggregates installs a record-free in-probe aggregation script
	// (counters, per-CPU hits, latency histogram, per-flow sums) on every
	// agent's receive probe and turns on the agents' periodic aggregate
	// drain. At quiesce the collector's merged aggregates must equal the
	// attended-fire ground truth exactly — aggregation bypasses the ring,
	// so even ring drops and transport faults may not perturb it.
	ShipAggregates bool

	// Storage: SegmentBytes is the trace store's head-seal threshold in
	// raw record bytes (default 4096, small enough that every scenario
	// exercises sealed segments); SpillDir, when set, spills sealed
	// extents to disk so queries cross head + resident + spilled
	// segments.
	SegmentBytes int
	SpillDir     string

	// HorizonNs is the simulated end of the run; quiesce happens there.
	HorizonNs int64
}

func (s Scenario) withDefaults() Scenario {
	if s.Agents <= 0 {
		s.Agents = 2
	}
	if s.CPUs <= 0 {
		s.CPUs = 2
	}
	if s.RingBytes <= 0 {
		s.RingBytes = 16 * 1024
	}
	if s.Collectors <= 0 {
		s.Collectors = 1
	}
	if s.FlushEveryNs <= 0 {
		s.FlushEveryNs = sim.Millisecond
	}
	if s.Packets <= 0 {
		s.Packets = 200
	}
	if s.PayloadLen <= 0 {
		s.PayloadLen = 512
	}
	if s.Flows <= 0 {
		s.Flows = 4
	}
	if s.BurstLen <= 0 {
		s.BurstLen = 1
	}
	if s.HopDelayNs <= 0 {
		s.HopDelayNs = 200 * sim.Microsecond
	}
	if s.SegmentBytes <= 0 {
		s.SegmentBytes = 4096
	}
	if s.HorizonNs <= 0 {
		s.HorizonNs = 100 * sim.Millisecond
	}
	return s
}

// Corpus is the scenario suite spanning the fault matrix: clean paths,
// ring overflow, clock skew, transport outages, lost acks, agent
// restarts, spool eviction, injected packet loss, and their combination.
// Every scenario must pass Run with zero violations and replay to the
// same digest.
func Corpus() []Scenario {
	return []Scenario{
		{
			// The clean path: no faults, ample buffers. Conservation must
			// be exact and metric checks all apply.
			Name: "baseline-steady",
			Seed: 1,
		},
		{
			// Three agents, more traffic, more flows — still clean.
			Name:       "three-agent-mesh",
			Seed:       2,
			Agents:     3,
			CPUs:       4,
			Packets:    600,
			Flows:      9,
			PayloadLen: 200,
		},
		{
			// Bursts against small rings: flush cadence can't keep up
			// inside a burst, so rings overflow and drops must be counted
			// exactly.
			Name:      "bursty-emit-ring-drops",
			Seed:      3,
			RingBytes: 480, // 10 records per CPU
			BurstLen:  40,
			Packets:   400,
		},
		{
			// Large clock offsets and drift on every agent; metric checks
			// must still land inside the skew-correction bounds.
			Name:           "skewed-clocks",
			Seed:           4,
			Agents:         3,
			ClockOffsetsNs: []int64{0, 3 * sim.Millisecond, 7 * sim.Millisecond},
			ClockDriftsPPB: []int64{0, 12000, -9000},
			HopJitterNs:    20 * sim.Microsecond,
		},
		{
			// Transport outage window mid-run: agents spool and back off,
			// then drain; nothing may be lost or duplicated.
			Name:            "flaky-sink-window",
			Seed:            5,
			SinkDownFromNs:  30 * sim.Millisecond,
			SinkDownUntilNs: 60 * sim.Millisecond,
		},
		{
			// Every third ack lost: the collector ingests, the agent
			// retries, the ledger dedups. Stored records stay exact.
			Name:         "ack-loss",
			Seed:         6,
			AckLossEvery: 3,
		},
		{
			// Agent 0's flush loop pauses for a third of the run; its ring
			// keeps filling and its Seq stream must survive the restart.
			Name:         "agent-restart",
			Seed:         7,
			Agents:       3,
			RestartAtNs:  25 * sim.Millisecond,
			RestartForNs: 35 * sim.Millisecond,
			RestartAgent: 0,
		},
		{
			// Long outage against a tiny spool: evictions are the only
			// permitted loss, and seq gaps must equal evicted batches.
			Name:            "spool-overflow",
			Seed:            8,
			SpoolBytes:      4 * 1024,
			SinkDownFromNs:  20 * sim.Millisecond,
			SinkDownUntilNs: 80 * sim.Millisecond,
			Packets:         400,
		},
		{
			// Injected wire loss: every 5th packet vanishes between the
			// probes. metrics.Loss must read exactly the injected count.
			Name:      "wire-loss",
			Seed:      9,
			DropEvery: 5,
			Packets:   500,
		},
		{
			// Sink dies and never recovers: at quiesce the spool still
			// holds records, and conservation must account for them.
			Name:            "sink-down-forever",
			Seed:            10,
			SinkDownFromNs:  50 * sim.Millisecond,
			SinkDownForever: true,
		},
		{
			// Agent 1's process dies mid-run and reboots 10ms later under a
			// new epoch lease with nothing installed; the supervisor must
			// re-push its tracepoints within a tick. Fires during the dead
			// window hit no probe and are counted as unattended — the only
			// capture loss this scenario permits.
			Name:              "agent-restart-reprovision",
			Seed:              12,
			Agents:            3,
			SuperviseEveryNs:  2 * sim.Millisecond,
			KillAtNs:          30 * sim.Millisecond,
			KillRebootAfterNs: 10 * sim.Millisecond,
			KillAgent:         1,
		},
		{
			// The sink goes down, agent 0 spools, then dies before the sink
			// heals. Its successor re-provisions under epoch 2 while the
			// zombie still holds the spooled epoch-1 batches — which it
			// ships mid-run after the reboot. Every one must be fenced by
			// the collector: counted as fenced loss, never ingested, never
			// advancing the live incarnation's liveness.
			Name:              "zombie-epoch-fencing",
			Seed:              13,
			SuperviseEveryNs:  2 * sim.Millisecond,
			SinkDownFromNs:    20 * sim.Millisecond,
			SinkDownUntilNs:   45 * sim.Millisecond,
			KillAtNs:          40 * sim.Millisecond,
			KillRebootAfterNs: 5 * sim.Millisecond,
			KillAgent:         0,
			ZombieFlushAtNs:   70 * sim.Millisecond,
		},
		{
			// The collector reports a nearly full ingest queue for 30ms:
			// agents must stretch their flush cadence, cross the high-water
			// mark into ring head-drop sampling, and — once the queue
			// empties — recover to full capture with every sampled-away
			// record exactly counted as a ring drop.
			Name:             "collector-overload-degrade",
			Seed:             14,
			SuperviseEveryNs: 2 * sim.Millisecond,
			Packets:          600,
			OverloadFromNs:   30 * sim.Millisecond,
			OverloadUntilNs:  60 * sim.Millisecond,
			OverloadDepth:    95,
			OverloadCap:      100,
		},
		{
			// In-probe aggregation under faults: bursts overflow the tiny
			// rings (records legitimately drop) while an outage window and
			// lost acks batter the transport — yet the merged aggregates at
			// the collector must match the fired ground truth exactly,
			// because map updates bypass the ring and the aggregate ledger
			// dedups every retried frame.
			Name:            "in-probe-aggregation",
			Seed:            15,
			Agents:          3,
			Packets:         600,
			Flows:           6,
			RingBytes:       480, // 10 records per CPU
			BurstLen:        60,
			ShipAggregates:  true,
			AckLossEvery:    4,
			SinkDownFromNs:  30 * sim.Millisecond,
			SinkDownUntilNs: 55 * sim.Millisecond,
		},
		{
			// One of three collectors crashes mid-traffic: its tenants spool
			// against the dead sink, then re-home to their consistent-hash
			// successors under advanced epoch leases. Exactly-once must hold
			// across the handoff — spool re-ships (including aggregate
			// frames whose acks died with the old collector) dedup against
			// the imported ledgers, and conservation closes cluster-wide.
			Name:                   "collector-crash-rehome",
			Seed:                   16,
			Agents:                 5,
			Collectors:             3,
			Packets:                600,
			Flows:                  6,
			AckLossEvery:           4,
			ShipAggregates:         true,
			CollectorFailAtNs:      35 * sim.Millisecond,
			CollectorRehomeAfterNs: 8 * sim.Millisecond,
		},
		{
			// Consistent hashing under a 10:1 agent load skew: the collector
			// owning the hot agent ingests a visibly larger share, every
			// collector still sees work, and all cluster-wide invariants
			// (conservation, exactly-once, merged-view metrics) stay exact.
			Name:         "skewed-agent-load",
			Seed:         17,
			Agents:       6,
			Collectors:   3,
			Packets:      600,
			Flows:        6,
			AgentWeights: []int{10, 1, 1, 1, 1, 1},
		},
		{
			// The lone collector's process dies mid-traffic with spooled
			// record batches and aggregate frames outstanding (an outage
			// window guarantees backlog at the crash instant), taking every
			// in-memory structure with it. Twenty milliseconds later it is
			// rebuilt from its last checkpoint plus the WAL tail and the
			// agents re-attach at a fresh epoch. Conservation must close
			// including every WAL-replayed record, and spool re-ships of
			// batches whose acks died with the crash must dedup against the
			// replayed high-water marks — zero double ingests.
			Name:                    "collector-kill-recover",
			Seed:                    18,
			Agents:                  3,
			Packets:                 600,
			Flows:                   6,
			Durable:                 true,
			CheckpointEveryNs:       10 * sim.Millisecond,
			ShipAggregates:          true,
			AckLossEvery:            3,
			SinkDownFromNs:          33 * sim.Millisecond,
			SinkDownUntilNs:         40 * sim.Millisecond,
			CollectorCrashAtNs:      37 * sim.Millisecond,
			CollectorRecoverAfterNs: 20 * sim.Millisecond,
		},
		{
			// Recovery composed with re-homing: one of three collectors
			// crashes; the ring declares it dead and re-homes its tenants to
			// the survivors (spool re-ships dedup against the exported
			// ledgers there); then the crashed collector recovers from disk
			// while its agents live elsewhere. Its replayed ledgers must
			// turn into fences — no ledger regression, no double ingest —
			// and the cluster-wide merged view must stay exact.
			Name:                    "recover-vs-rehome",
			Seed:                    19,
			Agents:                  5,
			Collectors:              3,
			Packets:                 600,
			Flows:                   6,
			Durable:                 true,
			CheckpointEveryNs:       12 * sim.Millisecond,
			ShipAggregates:          true,
			AckLossEvery:            4,
			CollectorFailAtNs:       35 * sim.Millisecond,
			CollectorRehomeAfterNs:  8 * sim.Millisecond,
			CollectorCrashAtNs:      35 * sim.Millisecond,
			CollectorRecoverAfterNs: 20 * sim.Millisecond,
		},
		{
			// Everything at once: four skewed agents, bursts, ack loss, an
			// outage window, a restart, and injected wire loss.
			Name:            "kitchen-sink",
			Seed:            11,
			Agents:          4,
			CPUs:            3,
			Packets:         800,
			Flows:           8,
			BurstLen:        20,
			ClockOffsetsNs:  []int64{0, 2 * sim.Millisecond, 5 * sim.Millisecond, 1 * sim.Millisecond},
			ClockDriftsPPB:  []int64{4000, -3000, 8000, 0},
			HopJitterNs:     30 * sim.Microsecond,
			DropEvery:       7,
			AckLossEvery:    5,
			SinkDownFromNs:  40 * sim.Millisecond,
			SinkDownUntilNs: 55 * sim.Millisecond,
			RestartAtNs:     60 * sim.Millisecond,
			RestartForNs:    20 * sim.Millisecond,
			RestartAgent:    2,
		},
	}
}
