package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var order []int64
	e.Schedule(300, func() { order = append(order, 300) })
	e.Schedule(100, func() { order = append(order, 100) })
	e.Schedule(200, func() { order = append(order, 200) })
	if got := e.RunUntilIdle(); got != 3 {
		t.Fatalf("processed %d events, want 3", got)
	}
	want := []int64{100, 200, 300}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 300 {
		t.Errorf("Now() = %d, want 300", e.Now())
	}
}

func TestEngineSameTimestampFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(50, func() { order = append(order, i) })
	}
	e.RunUntilIdle()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestEngineRunHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.Schedule(100, func() { fired++ })
	e.Schedule(200, func() { fired++ })
	e.Schedule(301, func() { fired++ })

	if n := e.Run(200); n != 2 {
		t.Fatalf("Run(200) processed %d, want 2", n)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 200 {
		t.Fatalf("Now() = %d, want 200", e.Now())
	}
	// Remaining event still runs on next call.
	if n := e.Run(1000); n != 1 {
		t.Fatalf("Run(1000) processed %d, want 1", n)
	}
	if e.Now() != 1000 {
		t.Fatalf("clock should advance to empty-queue horizon, got %d", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var times []int64
	e.Schedule(10, func() {
		times = append(times, e.Now())
		e.Schedule(5, func() { times = append(times, e.Now()) })
	})
	e.RunUntilIdle()
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.Schedule(10, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before run")
	}
	if !tm.Cancel() {
		t.Fatal("first Cancel should report true")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report false")
	}
	e.RunUntilIdle()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerCancelAfterFire(t *testing.T) {
	e := NewEngine(1)
	tm := e.Schedule(10, func() {})
	e.RunUntilIdle()
	if tm.Pending() {
		t.Fatal("fired timer should not be pending")
	}
	if tm.Cancel() {
		t.Fatal("Cancel after fire should report false")
	}
}

func TestAtRejectsPast(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {})
	e.RunUntilIdle()
	if _, err := e.At(50, func() {}); err == nil {
		t.Fatal("At in the past should error")
	}
}

func TestNegativeDelayClampsToNow(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {
		var at int64 = -1
		e.Schedule(-50, func() { at = e.Now() })
		e.RunUntilIdle()
		if at != 100 {
			t.Errorf("negative delay fired at %d, want 100", at)
		}
	})
	e.RunUntilIdle()
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(int64(i)*10, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.RunUntilIdle()
	if count != 3 {
		t.Fatalf("count = %d after Stop, want 3", count)
	}
	// Resume.
	e.RunUntilIdle()
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		d := NewDist(e)
		var out []int64
		var step func()
		step = func() {
			out = append(out, e.Now())
			if len(out) < 50 {
				e.Schedule(d.Exp(1000), step)
			}
		}
		e.Schedule(0, step)
		e.RunUntilIdle()
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestClockSkewAndDrift(t *testing.T) {
	e := NewEngine(1)
	c := NewClock(e, 5*Second, 1000) // 5s offset, 1 us gained per second
	e.Schedule(10*Second, func() {})
	e.RunUntilIdle()
	got := c.NowNs()
	want := 5*Second + 10*Second + 10*Microsecond
	if got != want {
		t.Fatalf("NowNs() = %d, want %d", got, want)
	}
	if c.OffsetNs() != 5*Second {
		t.Fatalf("OffsetNs() = %d", c.OffsetNs())
	}
}

func TestClockMonotonic(t *testing.T) {
	e := NewEngine(7)
	c := NewClock(e, 123, -5000)
	prev := c.NowNs()
	for i := 1; i <= 100; i++ {
		e.Schedule(int64(i)*Millisecond, func() {})
	}
	for {
		if n := e.Run(e.Now() + Millisecond); n == 0 && e.Now() >= 100*Millisecond {
			break
		}
		now := c.NowNs()
		if now < prev {
			t.Fatalf("clock went backwards: %d -> %d", prev, now)
		}
		prev = now
	}
}

func TestDistProperties(t *testing.T) {
	e := NewEngine(3)
	d := NewDist(e)
	if err := quick.Check(func(mean uint16) bool {
		v := d.Exp(int64(mean))
		return v >= 0
	}, nil); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(lo, hi uint16) bool {
		l, h := int64(lo), int64(hi)
		v := d.Uniform(l, h)
		if h <= l {
			return v == l
		}
		return v >= l && v < h
	}, nil); err != nil {
		t.Error(err)
	}
	for i := 0; i < 1000; i++ {
		if v := d.Pareto(100, 1.5); v < 100 || v > 100*1000 {
			t.Fatalf("Pareto out of bounds: %d", v)
		}
		if v := d.Normal(1000, 200); v < 0 {
			t.Fatalf("Normal returned negative: %d", v)
		}
	}
}

func TestDistMeans(t *testing.T) {
	e := NewEngine(11)
	d := NewDist(e)
	const n = 200000
	var sum int64
	for i := 0; i < n; i++ {
		sum += d.Exp(1000)
	}
	mean := float64(sum) / n
	if mean < 950 || mean > 1050 {
		t.Errorf("Exp(1000) sample mean = %.1f, want ~1000", mean)
	}
	sum = 0
	for i := 0; i < n; i++ {
		sum += d.Uniform(0, 1000)
	}
	mean = float64(sum) / n
	if mean < 480 || mean > 520 {
		t.Errorf("Uniform(0,1000) sample mean = %.1f, want ~500", mean)
	}
}
