// Package sim provides the discrete-event simulation core used by every
// simulated substrate in this repository: a single-threaded event engine
// with cancellable timers, per-node monotonic clocks with configurable skew
// and drift, and a deterministic random source.
//
// All simulated time is expressed in integer nanoseconds, mirroring the
// paper's use of CLOCK_MONOTONIC via bpf_ktime_get_ns().
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
)

// Common time unit constants, in simulated nanoseconds.
const (
	Nanosecond  int64 = 1
	Microsecond int64 = 1000 * Nanosecond
	Millisecond int64 = 1000 * Microsecond
	Second      int64 = 1000 * Millisecond
)

// ErrPastEvent is returned when an event is scheduled before the current
// simulated time.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; all simulated components must interact with it from the
// goroutine that calls Run.
type Engine struct {
	now     int64
	seq     uint64
	queue   eventHeap
	rng     *rand.Rand
	stopped bool

	// processed counts events executed since construction; useful for
	// run-away detection in tests.
	processed uint64
}

// NewEngine returns an engine whose random source is seeded with seed,
// making every simulation reproducible for a given seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current simulated time in nanoseconds since engine start.
func (e *Engine) Now() int64 { return e.now }

// Rand returns the engine's deterministic random source.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed reports how many events the engine has executed.
func (e *Engine) Processed() uint64 { return e.processed }

// Timer is a handle to a scheduled event. The zero value is invalid; timers
// are obtained from Schedule or At.
type Timer struct {
	ev *event
}

// Cancel prevents the timer's function from running. Cancelling an already
// fired or already cancelled timer is a no-op. It reports whether the event
// was still pending.
func (t *Timer) Cancel() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.fired {
		return false
	}
	t.ev.cancelled = true
	return true
}

// Pending reports whether the timer has neither fired nor been cancelled.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.cancelled && !t.ev.fired
}

// Schedule runs fn after delay nanoseconds of simulated time. A negative
// delay is treated as zero. The returned timer may be used to cancel the
// event before it fires.
func (e *Engine) Schedule(delay int64, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	return e.at(e.now+delay, fn)
}

// At runs fn at absolute simulated time t. It returns ErrPastEvent if t is
// before the current time.
func (e *Engine) At(t int64, fn func()) (*Timer, error) {
	if t < e.now {
		return nil, fmt.Errorf("%w: at=%d now=%d", ErrPastEvent, t, e.now)
	}
	return e.at(t, fn), nil
}

func (e *Engine) at(t int64, fn func()) *Timer {
	ev := &event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return &Timer{ev: ev}
}

// Stop makes the current Run call return after the in-flight event
// completes. Subsequent Run calls resume processing.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events in timestamp order until the queue empties, the
// simulated clock reaches until, or Stop is called. Events scheduled exactly
// at until are executed. It returns the number of events processed by this
// call.
func (e *Engine) Run(until int64) uint64 {
	e.stopped = false
	var n uint64
	for e.queue.Len() > 0 && !e.stopped {
		ev := e.queue[0]
		if ev.at > until {
			break
		}
		heap.Pop(&e.queue)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		ev.fn()
		e.processed++
		n++
	}
	if !e.stopped && e.now < until {
		// Advance the clock to the horizon so that callers scheduling
		// after Run observe the full elapsed time; events beyond the
		// horizon stay queued.
		e.now = until
	}
	return n
}

// RunUntilIdle processes events until no events remain or Stop is called.
// It returns the number of events processed.
func (e *Engine) RunUntilIdle() uint64 {
	e.stopped = false
	var n uint64
	for e.queue.Len() > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fired = true
		ev.fn()
		e.processed++
		n++
	}
	return n
}

type event struct {
	at        int64
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// eventHeap orders events by time, breaking ties by insertion order so that
// same-timestamp events run FIFO (deterministic replay).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
