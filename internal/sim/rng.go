package sim

import (
	"math"
	"math/rand"
)

// Dist draws samples from common service/inter-arrival distributions used
// by the device and scheduler models. All draws come from the engine's
// seeded source, keeping experiments reproducible.
type Dist struct {
	rng *rand.Rand
}

// NewDist wraps an engine's random source.
func NewDist(e *Engine) Dist { return Dist{rng: e.Rand()} }

// Exp returns an exponentially distributed duration with the given mean,
// in nanoseconds. Mean must be positive; non-positive means return zero.
func (d Dist) Exp(meanNs int64) int64 {
	if meanNs <= 0 {
		return 0
	}
	return int64(d.rng.ExpFloat64() * float64(meanNs))
}

// Uniform returns a duration uniformly distributed in [lo, hi).
func (d Dist) Uniform(lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + d.rng.Int63n(hi-lo)
}

// Normal returns a normally distributed duration clamped at zero.
func (d Dist) Normal(meanNs, stddevNs int64) int64 {
	v := float64(meanNs) + d.rng.NormFloat64()*float64(stddevNs)
	if v < 0 {
		return 0
	}
	return int64(v)
}

// Pareto returns a bounded Pareto-distributed duration with the given scale
// (minimum) and shape alpha. Heavy-tailed processing times drive realistic
// tail latency in the device models.
func (d Dist) Pareto(scaleNs int64, alpha float64) int64 {
	if scaleNs <= 0 || alpha <= 0 {
		return 0
	}
	u := d.rng.Float64()
	for u == 0 {
		u = d.rng.Float64()
	}
	v := float64(scaleNs) / math.Pow(u, 1/alpha)
	// Clamp to 1000x scale to keep the event horizon finite.
	if maxV := float64(scaleNs) * 1000; v > maxV {
		v = maxV
	}
	return int64(v)
}
