package sim

// Clock is a per-node monotonic clock derived from the engine's global
// simulated time. Each node in a distributed simulation owns a Clock with
// its own offset (boot-time skew) and drift (frequency error), so that
// cross-machine timestamp comparison requires genuine clock synchronization,
// exactly as in the paper's Section III-B.
//
// A Clock models CLOCK_MONOTONIC: it cannot be set by users and only moves
// forward.
type Clock struct {
	eng *Engine
	// offset is the clock reading at engine time zero, in nanoseconds.
	offset int64
	// driftPPB is the frequency error in parts per billion: a clock with
	// driftPPB = 1000 gains 1 microsecond per simulated second.
	driftPPB int64
}

// NewClock returns a clock with the given boot offset (nanoseconds) and
// drift (parts per billion) relative to the engine's true time.
func NewClock(eng *Engine, offsetNs, driftPPB int64) *Clock {
	return &Clock{eng: eng, offset: offsetNs, driftPPB: driftPPB}
}

// NowNs returns the clock's current reading in nanoseconds. This is what
// the simulated bpf_ktime_get_ns() helper reads.
func (c *Clock) NowNs() int64 {
	t := c.eng.Now()
	return c.offset + t + t/1_000_000_000*c.driftPPB + t%1_000_000_000*c.driftPPB/1_000_000_000
}

// TrueNow returns the engine's global time, i.e. ground truth. Experiments
// may use it to validate skew estimation, but traced metrics must not.
func (c *Clock) TrueNow() int64 { return c.eng.Now() }

// OffsetNs returns the configured boot offset. Exposed so tests can compare
// Cristian-estimated skew with ground truth.
func (c *Clock) OffsetNs() int64 { return c.offset }
