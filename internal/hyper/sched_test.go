package hyper

import (
	"testing"

	"vnettracer/internal/sim"
)

const (
	us = int64(sim.Microsecond)
	ms = int64(sim.Millisecond)
)

func TestIdleCoreRunsWorkImmediately(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPCPU(eng, DefaultConfig())
	v := p.AddVCPU("io", 256, false)
	var at int64 = -1
	v.Submit(10*us, func() { at = eng.Now() })
	eng.Run(1 * ms)
	if at != 10*us {
		t.Fatalf("work completed at %d, want %d", at, 10*us)
	}
	if v.Wakes != 1 || v.TotalWakeDelayNs != 0 {
		t.Fatalf("wake stats: %d wakes, %d delay", v.Wakes, v.TotalWakeDelayNs)
	}
}

func TestRatelimitDelaysWakeup(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig() // 1000us ratelimit
	p := NewPCPU(eng, cfg)
	p.AddVCPU("hog", 256, true)
	io := p.AddVCPU("io", 256, false)
	eng.Run(100 * us) // hog is mid-slice now

	var at int64 = -1
	submitted := eng.Now()
	io.Submit(5*us, func() { at = eng.Now() })
	eng.Run(5 * ms)
	if at < 0 {
		t.Fatal("I/O work never ran")
	}
	delay := at - submitted - 5*us
	// The hog was scheduled at ~0 and is protected until 1000us; the I/O
	// vCPU submitted at 100us must wait ~900us.
	if delay < 800*us || delay > 1000*us {
		t.Fatalf("wake delay = %dus, want ~900us (ratelimit window)", delay/us)
	}
}

func TestZeroRatelimitPreemptsImmediately(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	cfg.RatelimitNs = 0
	p := NewPCPU(eng, cfg)
	p.AddVCPU("hog", 256, true)
	io := p.AddVCPU("io", 256, false)
	eng.Run(100 * us)

	var at int64 = -1
	submitted := eng.Now()
	io.Submit(5*us, func() { at = eng.Now() })
	eng.Run(5 * ms)
	delay := at - submitted - 5*us
	if delay > 1*us {
		t.Fatalf("wake delay = %dns with ratelimit=0, want ~0", delay)
	}
}

func TestPinnedPolicyNeverContends(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := Config{Policy: Pinned, RatelimitNs: 1000 * us, CreditInitNs: 10 * ms}
	p := NewPCPU(eng, cfg)
	io := p.AddVCPU("io", 256, false)
	var at int64 = -1
	io.Submit(5*us, func() { at = eng.Now() })
	eng.Run(1 * ms)
	if at != 5*us {
		t.Fatalf("pinned vCPU ran at %d, want immediate", at)
	}
}

func TestSequentialPacketsSeeSawtoothDelays(t *testing.T) {
	// Packets arriving every 300us against a 1000us window see delays
	// that drift down and jump back up: the paper's Fig 11(b) pattern.
	eng := sim.NewEngine(1)
	p := NewPCPU(eng, DefaultConfig())
	p.AddVCPU("hog", 256, true)
	io := p.AddVCPU("io", 256, false)

	var delays []int64
	const n = 40
	for i := 0; i < n; i++ {
		sendAt := int64(i)*300*us + 50*us
		eng.Schedule(sendAt-eng.Now(), func() {
			submitted := eng.Now()
			io.Submit(5*us, func() {
				delays = append(delays, eng.Now()-submitted-5*us)
			})
		})
	}
	eng.Run(int64(n+5) * 300 * us)
	if len(delays) != n {
		t.Fatalf("got %d delays", len(delays))
	}
	var max int64
	increases, decreases := 0, 0
	for i, d := range delays {
		if d > max {
			max = d
		}
		if i > 0 {
			if d > delays[i-1] {
				increases++
			} else if d < delays[i-1] {
				decreases++
			}
		}
	}
	if max < 500*us || max > 1000*us {
		t.Fatalf("max delay %dus, want bounded by the 1000us ratelimit", max/us)
	}
	if increases == 0 || decreases == 0 {
		t.Fatalf("delays are monotone (inc=%d dec=%d), expected sawtooth: %v", increases, decreases, delays)
	}
}

func TestCreditBurnAndReset(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := DefaultConfig()
	p := NewPCPU(eng, cfg)
	hog := p.AddVCPU("hog", 256, true)
	eng.Run(100 * ms)
	if hog.RunNs < 90*ms {
		t.Fatalf("hog ran only %dms of 100ms on an otherwise idle core", hog.RunNs/ms)
	}
	// Credit must have been reset at least once (initial credit is 10ms).
	if hog.credit < -cfg.CreditInitNs {
		t.Fatalf("credit %d never reset", hog.credit)
	}
}

func TestCredit1BoostPreempts(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := Config{Policy: Credit1, RatelimitNs: 0, CreditInitNs: 10 * ms}
	p := NewPCPU(eng, cfg)
	p.AddVCPU("hog", 256, true)
	io := p.AddVCPU("io", 256, false)
	eng.Run(200 * us)
	var at int64 = -1
	submitted := eng.Now()
	io.Submit(5*us, func() { at = eng.Now() })
	eng.Run(5 * ms)
	if at-submitted > 10*us {
		t.Fatalf("BOOSTed vCPU waited %dus", (at-submitted)/us)
	}
}

func TestCredit1RatelimitStillApplies(t *testing.T) {
	eng := sim.NewEngine(1)
	cfg := Config{Policy: Credit1, RatelimitNs: 1000 * us, CreditInitNs: 10 * ms}
	p := NewPCPU(eng, cfg)
	p.AddVCPU("hog", 256, true)
	io := p.AddVCPU("io", 256, false)
	eng.Run(100 * us)
	var at int64 = -1
	submitted := eng.Now()
	io.Submit(5*us, func() { at = eng.Now() })
	eng.Run(5 * ms)
	delay := at - submitted - 5*us
	if delay < 800*us {
		t.Fatalf("credit1 wake delay = %dus, ratelimit should still bind", delay/us)
	}
}

func TestBackToBackWorkRunsWithoutBlocking(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPCPU(eng, DefaultConfig())
	io := p.AddVCPU("io", 256, false)
	var done []int64
	io.Submit(10*us, func() { done = append(done, eng.Now()) })
	io.Submit(10*us, func() { done = append(done, eng.Now()) })
	eng.Run(1 * ms)
	if len(done) != 2 {
		t.Fatalf("completed %d items", len(done))
	}
	if done[1] != done[0]+10*us {
		t.Fatalf("second item at %d, want %d (no re-wake penalty)", done[1], done[0]+10*us)
	}
}

func TestTwoIOVCPUsShareFairly(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPCPU(eng, DefaultConfig())
	a := p.AddVCPU("a", 256, false)
	b := p.AddVCPU("b", 256, false)
	doneA, doneB := 0, 0
	for i := 0; i < 100; i++ {
		at := int64(i) * 100 * us
		eng.Schedule(at, func() {
			a.Submit(5*us, func() { doneA++ })
			b.Submit(5*us, func() { doneB++ })
		})
	}
	eng.Run(100 * 100 * us)
	if doneA != 100 || doneB != 100 {
		t.Fatalf("doneA=%d doneB=%d", doneA, doneB)
	}
}

func TestMeanWakeDelayAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPCPU(eng, DefaultConfig())
	p.AddVCPU("hog", 256, true)
	io := p.AddVCPU("io", 256, false)
	for i := 0; i < 10; i++ {
		eng.Schedule(int64(i)*2*ms, func() {
			io.Submit(5*us, func() {})
		})
	}
	eng.Run(30 * ms)
	if io.Wakes != 10 {
		t.Fatalf("Wakes = %d", io.Wakes)
	}
	if io.MeanWakeDelayNs() <= 0 {
		t.Fatal("mean wake delay should be positive under contention")
	}
	if io.MeanWakeDelayNs() > 1000*us {
		t.Fatalf("mean wake delay %dus exceeds the ratelimit bound", io.MeanWakeDelayNs()/us)
	}
}

func TestSetRatelimitAtRuntime(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPCPU(eng, DefaultConfig())
	p.AddVCPU("hog", 256, true)
	io := p.AddVCPU("io", 256, false)
	eng.Run(100 * us)
	p.SetRatelimit(0)
	var at int64 = -1
	submitted := eng.Now()
	io.Submit(5*us, func() { at = eng.Now() })
	eng.Run(5 * ms)
	if at-submitted-5*us > 1*us {
		t.Fatalf("runtime ratelimit change not applied: delay %dns", at-submitted-5*us)
	}
}

func TestPolicyStrings(t *testing.T) {
	if Credit2.String() != "credit2" || Credit1.String() != "credit" || Pinned.String() != "pinned" {
		t.Fatal("policy names")
	}
	if Policy(42).String() != "policy(42)" {
		t.Fatal("unknown policy name")
	}
}

func TestConfigAccessorAndDefaults(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPCPU(eng, Config{Policy: Credit2})
	if p.Config().CreditInitNs != DefaultConfig().CreditInitNs {
		t.Fatalf("credit default not applied: %+v", p.Config())
	}
	v := p.AddVCPU("w", 0, false) // weight 0 -> default 256
	if v.Weight != 256 {
		t.Fatalf("weight = %d", v.Weight)
	}
}

func TestWeightedVCPUGetsMoreCPU(t *testing.T) {
	// Two CPU-bound vCPUs with 4:1 weights share a core; credit refills
	// proportional to weight should skew runtime toward the heavy one.
	eng := sim.NewEngine(1)
	p := NewPCPU(eng, DefaultConfig())
	heavy := p.AddVCPU("heavy", 1024, true)
	light := p.AddVCPU("light", 256, true)
	eng.Run(500 * ms)
	if heavy.RunNs <= light.RunNs {
		t.Fatalf("heavy ran %dms, light %dms: weights ignored", heavy.RunNs/ms, light.RunNs/ms)
	}
	ratio := float64(heavy.RunNs) / float64(light.RunNs)
	if ratio < 1.5 {
		t.Fatalf("runtime ratio %.2f too close to fair for 4:1 weights", ratio)
	}
}

func TestContextSwitchCounting(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPCPU(eng, DefaultConfig())
	io := p.AddVCPU("io", 256, false)
	for i := 0; i < 5; i++ {
		eng.Schedule(int64(i)*ms, func() { io.Submit(10*us, func() {}) })
	}
	eng.Run(10 * ms)
	if p.ContextSwitches != 5 {
		t.Fatalf("context switches = %d, want 5", p.ContextSwitches)
	}
}

func TestMeanWakeDelayZeroWithoutWakes(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPCPU(eng, DefaultConfig())
	v := p.AddVCPU("idle", 256, false)
	if v.MeanWakeDelayNs() != 0 {
		t.Fatal("mean wake delay without wakes")
	}
}
