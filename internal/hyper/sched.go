// Package hyper models hypervisor CPU scheduling: the Xen credit and
// credit2 schedulers including the context-switch rate limit
// (ratelimit_us) that case study II identifies as the cause of 22x tail
// latency inflation, and a KVM-pinned mode where vCPUs own their physical
// cores.
//
// The unit simulated is one physical CPU (PCPU) with the virtual CPUs
// pinned to it, which matches the paper's experiment (two 1-vCPU VMs
// pinned to one core). An I/O-bound vCPU sleeps until packets arrive and
// runs briefly; a CPU-bound vCPU always wants the core. With the default
// 1000 microsecond rate limit, a woken I/O vCPU with higher credit must
// still wait out the remainder of the running vCPU's window — that wait is
// the scheduling delay vNetTracer's decomposition exposes between the
// Dom0 backend (vif) and the guest's frontend (eth).
package hyper

import (
	"fmt"

	"vnettracer/internal/sim"
)

// Policy selects the scheduler algorithm.
type Policy int

// Scheduler policies.
const (
	// Credit2 orders runnable vCPUs purely by remaining credit (the
	// paper: "vCPU priorities used in credit1 ... were all removed and
	// all the vCPUs were just ordered by their credit").
	Credit2 Policy = iota + 1
	// Credit1 uses the BOOST/UNDER/OVER priority classes.
	Credit1
	// Pinned models KVM with dedicated cores: a woken vCPU runs
	// immediately; there is never competition.
	Pinned
)

func (p Policy) String() string {
	switch p {
	case Credit2:
		return "credit2"
	case Credit1:
		return "credit"
	case Pinned:
		return "pinned"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Config tunes a PCPU scheduler.
type Config struct {
	Policy Policy
	// RatelimitNs is the minimum uninterrupted slice a scheduled vCPU is
	// guaranteed before preemption (Xen's ratelimit_us, default 1000us;
	// the paper's fix is setting it to 0).
	RatelimitNs int64
	// CreditInitNs is the credit a vCPU holds after a reset, scaled by
	// weight. Credits burn 1:1 with run time.
	CreditInitNs int64
}

// DefaultConfig returns Xen defaults: credit2, 1000us ratelimit.
func DefaultConfig() Config {
	return Config{
		Policy:       Credit2,
		RatelimitNs:  1000 * int64(sim.Microsecond),
		CreditInitNs: 10 * int64(sim.Millisecond),
	}
}

// priority classes for credit1.
type prio int

const (
	prioOver prio = iota
	prioUnder
	prioBoost
)

// workItem is a unit of guest work executed when the vCPU holds the core.
type workItem struct {
	costNs int64
	fn     func()
}

// VCPU is a virtual CPU pinned to one PCPU.
type VCPU struct {
	Name   string
	Weight int

	pcpu     *PCPU
	credit   int64
	runnable bool
	cpuBound bool
	boosted  bool

	queue  []workItem
	wakeAt int64
	hasWake bool

	// TotalWakeDelayNs and Wakes accumulate wake-to-run latency; the
	// traced per-packet delays come from eBPF timestamps, these are
	// ground truth for validation.
	TotalWakeDelayNs int64
	Wakes            uint64
	RunNs            int64
}

// PCPU is one physical core running pinned vCPUs under a policy.
type PCPU struct {
	eng *sim.Engine
	cfg Config

	vcpus    []*VCPU
	running  *VCPU
	runStart int64

	preemptTimer *sim.Timer

	// ContextSwitches counts dispatches, for the ablation bench.
	ContextSwitches uint64
}

// NewPCPU creates a physical core.
func NewPCPU(eng *sim.Engine, cfg Config) *PCPU {
	if cfg.CreditInitNs <= 0 {
		cfg.CreditInitNs = DefaultConfig().CreditInitNs
	}
	return &PCPU{eng: eng, cfg: cfg}
}

// SetRatelimit changes the rate limit at runtime (the paper's tuning
// experiment toggles it between 1000us and 0).
func (p *PCPU) SetRatelimit(ns int64) { p.cfg.RatelimitNs = ns }

// Config returns the scheduler configuration.
func (p *PCPU) Config() Config { return p.cfg }

// AddVCPU pins a vCPU to this core. cpuBound marks a vCPU that always
// wants the core (a spin loop guest); it becomes runnable immediately.
func (p *PCPU) AddVCPU(name string, weight int, cpuBound bool) *VCPU {
	if weight <= 0 {
		weight = 256
	}
	v := &VCPU{
		Name:     name,
		Weight:   weight,
		pcpu:     p,
		cpuBound: cpuBound,
		credit:   p.cfg.CreditInitNs * int64(weight) / 256,
	}
	p.vcpus = append(p.vcpus, v)
	if cpuBound {
		v.runnable = true
		p.eng.Schedule(0, p.dispatch)
	}
	return v
}

// Submit queues guest work on the vCPU and wakes it. fn runs once the vCPU
// has been scheduled and costNs of guest time has elapsed. This is the
// entry point the device layer uses to deliver a packet into a guest.
func (v *VCPU) Submit(costNs int64, fn func()) {
	v.queue = append(v.queue, workItem{costNs: costNs, fn: fn})
	v.pcpu.wake(v)
}

// MeanWakeDelayNs reports the average wake-to-run delay.
func (v *VCPU) MeanWakeDelayNs() int64 {
	if v.Wakes == 0 {
		return 0
	}
	return v.TotalWakeDelayNs / int64(v.Wakes)
}

// wake marks v runnable and applies the policy's preemption rules.
func (p *PCPU) wake(v *VCPU) {
	now := p.eng.Now()
	if !v.runnable {
		v.runnable = true
		v.wakeAt = now
		v.hasWake = true
		if p.cfg.Policy == Credit1 && v.credit > 0 {
			v.boosted = true
		}
	}
	if p.running == v {
		return
	}
	if p.running == nil {
		p.dispatch()
		return
	}
	if !p.preempts(v, p.running) {
		return
	}
	// The woken vCPU beats the running one, but the rate limit protects
	// the running vCPU's slice.
	earliest := p.runStart + p.cfg.RatelimitNs
	if earliest <= now {
		p.stopRunning(true)
		p.dispatch()
		return
	}
	if p.preemptTimer != nil && p.preemptTimer.Pending() {
		return // a preemption is already scheduled
	}
	p.preemptTimer = p.eng.Schedule(earliest-now, func() {
		if p.running != nil && p.bestWaiter() != nil {
			p.stopRunning(true)
			p.dispatch()
		}
	})
}

// effectiveCredit returns a vCPU's credit including the burn of any
// in-flight run slice, so preemption decisions see up-to-date balances.
func (p *PCPU) effectiveCredit(v *VCPU) int64 {
	c := v.credit
	if v == p.running {
		c -= p.eng.Now() - p.runStart
	}
	return c
}

// preempts reports whether a beats b under the policy.
func (p *PCPU) preempts(a, b *VCPU) bool {
	switch p.cfg.Policy {
	case Pinned:
		return false // each vCPU owns a core; never contended
	case Credit1:
		pa, pb := credit1Prio(a), credit1Prio(b)
		if pa != pb {
			return pa > pb
		}
		return false
	default: // Credit2
		return p.effectiveCredit(a) > p.effectiveCredit(b)
	}
}

func credit1Prio(v *VCPU) prio {
	switch {
	case v.boosted:
		return prioBoost
	case v.credit > 0:
		return prioUnder
	default:
		return prioOver
	}
}

// bestWaiter returns the runnable vCPU (excluding the running one) that
// would preempt the running vCPU, or nil.
func (p *PCPU) bestWaiter() *VCPU {
	var best *VCPU
	for _, v := range p.vcpus {
		if !v.runnable || v == p.running {
			continue
		}
		if best == nil || p.betterThan(v, best) {
			best = v
		}
	}
	if best != nil && p.running != nil && !p.preempts(best, p.running) {
		return nil
	}
	return best
}

// betterThan orders runnable vCPUs for dispatch.
func (p *PCPU) betterThan(a, b *VCPU) bool {
	if p.cfg.Policy == Credit1 {
		pa, pb := credit1Prio(a), credit1Prio(b)
		if pa != pb {
			return pa > pb
		}
	}
	return p.effectiveCredit(a) > p.effectiveCredit(b)
}

// stopRunning burns the running vCPU's credit and releases the core.
// preempted keeps a CPU-bound vCPU runnable.
func (p *PCPU) stopRunning(preempted bool) {
	v := p.running
	if v == nil {
		return
	}
	ran := p.eng.Now() - p.runStart
	v.credit -= ran
	v.RunNs += ran
	v.runnable = preempted && v.cpuBound || len(v.queue) > 0
	p.running = nil
	if p.preemptTimer != nil {
		p.preemptTimer.Cancel()
		p.preemptTimer = nil
	}
}

// dispatch picks the best runnable vCPU and runs it.
func (p *PCPU) dispatch() {
	if p.running != nil {
		return
	}
	var next *VCPU
	for _, v := range p.vcpus {
		if !v.runnable {
			continue
		}
		if next == nil || p.betterThan(v, next) {
			next = v
		}
	}
	if next == nil {
		return
	}
	p.maybeResetCredits()
	p.running = next
	p.runStart = p.eng.Now()
	p.ContextSwitches++
	next.boosted = false
	if next.hasWake {
		next.hasWake = false
		next.TotalWakeDelayNs += p.eng.Now() - next.wakeAt
		next.Wakes++
	}
	p.runVCPU(next)
}

// runVCPU executes the vCPU's pending work, or lets a CPU-bound vCPU spin
// until preempted or its credit window lapses.
func (p *PCPU) runVCPU(v *VCPU) {
	if len(v.queue) > 0 {
		item := v.queue[0]
		v.queue = v.queue[1:]
		p.eng.Schedule(item.costNs, func() {
			if p.running != v {
				// Shouldn't happen (I/O work is shorter than the rate
				// limit) but stay safe: requeue the completion.
				item.fn()
				return
			}
			item.fn()
			if len(v.queue) > 0 {
				p.runVCPU(v)
				return
			}
			// Block: I/O vCPU goes idle until the next wake.
			p.stopRunning(false)
			v.runnable = false
			p.dispatch()
		})
		return
	}
	if v.cpuBound {
		// Burn a credit slice, then re-evaluate. The slice granularity
		// bounds how stale credits get between resets.
		slice := p.cfg.CreditInitNs / 10
		if slice <= 0 {
			slice = int64(sim.Millisecond)
		}
		p.eng.Schedule(slice, func() {
			if p.running != v {
				return
			}
			p.stopRunning(true)
			p.dispatch()
		})
		return
	}
	// Nothing to do: block immediately.
	p.stopRunning(false)
	v.runnable = false
	p.dispatch()
}

// maybeResetCredits refills all credits when every runnable vCPU is
// exhausted, approximating Xen's periodic credit replenishment.
func (p *PCPU) maybeResetCredits() {
	anyPositive := false
	for _, v := range p.vcpus {
		if v.runnable && v.credit > 0 {
			anyPositive = true
			break
		}
	}
	if anyPositive {
		return
	}
	for _, v := range p.vcpus {
		v.credit = p.cfg.CreditInitNs * int64(v.Weight) / 256
	}
}
