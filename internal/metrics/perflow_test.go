package metrics

import (
	"testing"

	"vnettracer/internal/core"
)

func flowRec(sip, dip uint32, sp, dp uint16, proto uint8, length uint32, t uint64) core.Record {
	return core.Record{
		SrcIP: sip, DstIP: dip, SrcPort: sp, DstPort: dp, Proto: proto,
		Len: length, TimeNs: t, TraceID: uint32(t),
	}
}

func TestPerFlowThroughputSeparatesFlows(t *testing.T) {
	var recs []core.Record
	// Flow A: 10 packets of 1004 bytes over 1ms -> 80 Mbps.
	for i := 0; i < 10; i++ {
		recs = append(recs, flowRec(1, 2, 1000, 2000, 17, 1004, uint64(i)*111_111))
	}
	recs[9].TimeNs = 1_000_000
	// Flow B: 5 packets of 104 bytes over 1ms -> 4 Mbps.
	for i := 0; i < 5; i++ {
		recs = append(recs, flowRec(3, 4, 5000, 6000, 6, 104, uint64(i)*250_000))
	}
	recs[14].TimeNs = 1_000_000

	stats := PerFlowThroughput(recs)
	if len(stats) != 2 {
		t.Fatalf("flows = %d", len(stats))
	}
	// Sorted by bytes descending: flow A first.
	a, b := stats[0], stats[1]
	if a.Flow.SrcIP != 1 || b.Flow.SrcIP != 3 {
		t.Fatalf("order: %v %v", a.Flow, b.Flow)
	}
	if a.Packets != 10 || b.Packets != 5 {
		t.Fatalf("packets: %d %d", a.Packets, b.Packets)
	}
	if a.ThroughputBps < 79e6 || a.ThroughputBps > 81e6 {
		t.Fatalf("flow A throughput = %.0f", a.ThroughputBps)
	}
	if b.ThroughputBps < 3.9e6 || b.ThroughputBps > 4.1e6 {
		t.Fatalf("flow B throughput = %.0f", b.ThroughputBps)
	}
}

func TestPerFlowThroughputSubtractsTraceID(t *testing.T) {
	recs := []core.Record{
		flowRec(1, 2, 1, 2, 17, 104, 0),
		flowRec(1, 2, 1, 2, 17, 104, 1_000_000),
	}
	stats := PerFlowThroughput(recs)
	// 2 x (104-4) bytes over 1ms = 1.6 Mbps.
	if got := stats[0].ThroughputBps; got != 1.6e6 {
		t.Fatalf("throughput = %.0f, want 1.6e6", got)
	}
}

func TestPerFlowThroughputSinglePacket(t *testing.T) {
	stats := PerFlowThroughput([]core.Record{flowRec(1, 2, 1, 2, 17, 100, 5)})
	if len(stats) != 1 || stats[0].ThroughputBps != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestFlowKeyString(t *testing.T) {
	k := FlowKey{SrcIP: 0x0a000001, DstIP: 0xc0a80102, SrcPort: 40000, DstPort: 9000, Proto: 17}
	want := "udp 10.0.0.1:40000->192.168.1.2:9000"
	if got := k.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	k.Proto = 6
	if got := k.String(); got[:3] != "tcp" {
		t.Fatalf("tcp String() = %q", got)
	}
}

func TestInterArrivals(t *testing.T) {
	recs := []core.Record{
		{TimeNs: 300}, {TimeNs: 100}, {TimeNs: 600}, // unsorted
	}
	got := InterArrivals(recs)
	if len(got) != 2 || got[0] != 200 || got[1] != 300 {
		t.Fatalf("inter-arrivals = %v", got)
	}
	if InterArrivals(recs[:1]) != nil {
		t.Fatal("single record should yield nil")
	}
}

func TestPerFlowDeterministicOrder(t *testing.T) {
	recs := []core.Record{
		flowRec(1, 2, 1, 2, 17, 100, 0),
		flowRec(3, 4, 1, 2, 17, 100, 0),
		flowRec(5, 6, 1, 2, 17, 100, 0),
	}
	first := PerFlowThroughput(recs)
	for i := 0; i < 10; i++ {
		again := PerFlowThroughput(recs)
		for j := range first {
			if first[j].Flow != again[j].Flow {
				t.Fatal("order not deterministic")
			}
		}
	}
}
