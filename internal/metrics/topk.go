package metrics

import (
	"sort"

	"vnettracer/internal/core"
)

// TopKFlows is a mergeable heavy-hitters sketch over flows with exact
// overflow accounting. It keeps at most K resident flows with running
// packet/byte counts; when a new flow arrives at capacity, the smallest
// resident (fewest packets, then fewest bytes, then key order) is
// evicted and its mass folded into the overflow bucket. The invariants
// that make it honest:
//
//   - Totals (packets, bytes) are exact: resident + overflow always
//     equals everything observed, nothing is silently dropped.
//   - A resident count is a lower bound on the flow's true count — mass
//     the flow lost to an earlier eviction sits in overflow, never
//     misattributed to another flow (unlike space-saving sketches, no
//     count is ever inflated).
//   - With zero evictions every resident count is exact.
//
// Sketches merge associatively: merging per-collector sketches gives
// the same totals as one sketch over the union stream, and residents
// fold deterministically (sorted key order), so cluster queries can
// combine partial top-K results without shipping raw flows.
type TopKFlows struct {
	k         int
	flows     map[FlowKey]*FlowCount
	ovPackets uint64
	ovBytes   uint64
	evictions uint64
}

// FlowCount is one resident flow's running tally.
type FlowCount struct {
	Flow    FlowKey
	Packets uint64
	Bytes   uint64
}

// NewTopKFlows returns a sketch keeping at most k resident flows
// (minimum 1).
func NewTopKFlows(k int) *TopKFlows {
	if k < 1 {
		k = 1
	}
	return &TopKFlows{k: k, flows: make(map[FlowKey]*FlowCount)}
}

// K returns the sketch capacity.
func (t *TopKFlows) K() int { return t.k }

// Add observes packets/bytes for a flow. A flow already resident just
// accumulates; a new flow at capacity either evicts the smallest
// resident (if the newcomer would not immediately be the smallest,
// its first observation still lands resident) or joins after the
// eviction — the evicted flow's mass moves to overflow exactly.
func (t *TopKFlows) Add(key FlowKey, packets, bytes uint64) {
	if packets == 0 && bytes == 0 {
		return
	}
	if fc, ok := t.flows[key]; ok {
		fc.Packets += packets
		fc.Bytes += bytes
		return
	}
	if len(t.flows) >= t.k {
		t.evictSmallest()
	}
	t.flows[key] = &FlowCount{Flow: key, Packets: packets, Bytes: bytes}
}

// evictSmallest moves the smallest resident into overflow.
func (t *TopKFlows) evictSmallest() {
	var victim *FlowCount
	for _, fc := range t.flows {
		if victim == nil || countLess(fc, victim) {
			victim = fc
		}
	}
	if victim == nil {
		return
	}
	delete(t.flows, victim.Flow)
	t.ovPackets += victim.Packets
	t.ovBytes += victim.Bytes
	t.evictions++
}

// countLess orders flow tallies for eviction: fewest packets first,
// then fewest bytes, then key order for determinism.
func countLess(a, b *FlowCount) bool {
	if a.Packets != b.Packets {
		return a.Packets < b.Packets
	}
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	return flowKeyLess(a.Flow, b.Flow)
}

func flowKeyLess(a, b FlowKey) bool {
	if a.SrcIP != b.SrcIP {
		return a.SrcIP < b.SrcIP
	}
	if a.DstIP != b.DstIP {
		return a.DstIP < b.DstIP
	}
	if a.SrcPort != b.SrcPort {
		return a.SrcPort < b.SrcPort
	}
	if a.DstPort != b.DstPort {
		return a.DstPort < b.DstPort
	}
	return a.Proto < b.Proto
}

// Merge folds another sketch into this one: the other's residents are
// re-added in sorted key order (deterministic evictions), then its
// overflow bucket sums in. Totals stay exact; residency after a merge
// reflects the combined counts.
func (t *TopKFlows) Merge(other *TopKFlows) {
	if other == nil {
		return
	}
	keys := make([]FlowKey, 0, len(other.flows))
	for k := range other.flows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return flowKeyLess(keys[i], keys[j]) })
	for _, k := range keys {
		fc := other.flows[k]
		t.Add(k, fc.Packets, fc.Bytes)
	}
	t.ovPackets += other.ovPackets
	t.ovBytes += other.ovBytes
	t.evictions += other.evictions
}

// Top returns the resident flows ordered by descending packets (ties:
// descending bytes, then key order).
func (t *TopKFlows) Top() []FlowCount {
	out := make([]FlowCount, 0, len(t.flows))
	for _, fc := range t.flows {
		out = append(out, *fc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return flowKeyLess(out[i].Flow, out[j].Flow)
	})
	return out
}

// Overflow reports the mass evicted from residency: exact packet and
// byte sums plus the eviction count. Zero evictions means every
// resident count is exact.
func (t *TopKFlows) Overflow() (packets, bytes, evictions uint64) {
	return t.ovPackets, t.ovBytes, t.evictions
}

// Totals returns the exact packet and byte totals observed, resident
// plus overflow.
func (t *TopKFlows) Totals() (packets, bytes uint64) {
	for _, fc := range t.flows {
		packets += fc.Packets
		bytes += fc.Bytes
	}
	return packets + t.ovPackets, bytes + t.ovBytes
}

// TopKOf builds a sketch over one record stream, counting payload bytes
// the way the throughput metrics do (S_i minus the embedded trace ID).
func TopKOf(src RecordSource, k int) *TopKFlows {
	t := NewTopKFlows(k)
	src.Scan(func(r core.Record) bool {
		var b uint64
		if r.Len > TraceIDBytes {
			b = uint64(r.Len) - TraceIDBytes
		}
		t.Add(keyOf(r), 1, b)
		return true
	})
	return t
}
