// Package metrics computes the network performance metrics of the paper's
// Section III-D from collected trace records: per-flow throughput, latency
// between tracepoints (joined on packet ID, skew-corrected), jitter,
// packet loss, and the decomposition of end-to-end latency along a path of
// tracepoints.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"vnettracer/internal/core"
	"vnettracer/internal/tracedb"
)

// ErrNoData marks an empty input set.
var ErrNoData = errors.New("metrics: no data")

// TraceIDBytes is the size of the embedded packet ID, which the paper's
// throughput formula subtracts from each packet (S_i - S_ID).
const TraceIDBytes = 4

// RecordSource streams records one pass at a time; Scan calls fn for each
// record until fn returns false. *tracedb.Table satisfies it directly
// (and its ScanAligned can be adapted with SourceFunc), so analyses run
// against live tables without materializing a full copy.
type RecordSource interface {
	Scan(fn func(core.Record) bool)
}

// SourceFunc adapts a scan function to a RecordSource, e.g.
// SourceFunc(table.ScanAligned).
type SourceFunc func(fn func(core.Record) bool)

// Scan implements RecordSource.
func (f SourceFunc) Scan(fn func(core.Record) bool) { f(fn) }

// Records adapts an in-memory slice to a RecordSource.
type Records []core.Record

// Scan implements RecordSource.
func (rs Records) Scan(fn func(core.Record) bool) {
	for _, r := range rs {
		if !fn(r) {
			return
		}
	}
}

// ThroughputOf computes bits per second over one tracepoint's record
// stream: sum(S_i - S_ID) / (T_N - T_1), in a single pass (only the
// earliest and latest timestamps matter, not the order in between).
func ThroughputOf(src RecordSource) (float64, error) {
	var n int
	var bytes uint64
	var minT, maxT uint64
	src.Scan(func(r core.Record) bool {
		if n == 0 {
			minT, maxT = r.TimeNs, r.TimeNs
		} else {
			if r.TimeNs < minT {
				minT = r.TimeNs
			}
			if r.TimeNs > maxT {
				maxT = r.TimeNs
			}
		}
		n++
		if r.Len > TraceIDBytes {
			bytes += uint64(r.Len) - TraceIDBytes
		}
		return true
	})
	if n < 2 {
		return 0, fmt.Errorf("%w: need >= 2 records, have %d", ErrNoData, n)
	}
	if maxT == minT {
		return 0, fmt.Errorf("%w: zero time span", ErrNoData)
	}
	return float64(bytes) * 8 * 1e9 / float64(maxT-minT), nil
}

// Throughput computes throughput over an in-memory record slice.
func Throughput(recs []core.Record) (float64, error) {
	return ThroughputOf(Records(recs))
}

// LatencySample is one per-packet latency measurement between two
// tracepoints.
type LatencySample struct {
	TraceID uint32
	Seq     uint64
	Ns      int64
}

// Latencies joins two tracepoint tables on packet ID and returns per-packet
// latency from a to b: t_b - t_a (timestamps skew-aligned per table).
// Packets missing from either side are skipped (they feed the loss metric
// instead). The join is two streaming passes — one over each table — so
// it never decodes a sealed segment more than once per side.
func Latencies(a, b *tracedb.Table) []LatencySample {
	return LatenciesOf(SourceFunc(a.ScanAligned), SourceFunc(b.ScanAligned))
}

// LatenciesOf is the source-generic latency join: the same two-pass
// first-occurrence join as Latencies over any record streams — a merged
// cross-collector view (tracedb.Merged.ScanAligned), a filtered stream,
// or an in-memory slice. Callers pass already-aligned sources; each side
// is scanned exactly once.
func LatenciesOf(a, b RecordSource) []LatencySample {
	// First occurrence per trace ID on the b side.
	bFirst := make(map[uint32]uint64)
	b.Scan(func(r core.Record) bool {
		if r.TraceID != 0 {
			if _, seen := bFirst[r.TraceID]; !seen {
				bFirst[r.TraceID] = r.TimeNs
			}
		}
		return true
	})
	var out []LatencySample
	seen := make(map[uint32]struct{})
	a.Scan(func(r core.Record) bool {
		if r.TraceID == 0 {
			return true // untraced packets cannot be joined
		}
		if _, dup := seen[r.TraceID]; dup {
			return true
		}
		seen[r.TraceID] = struct{}{}
		tb, ok := bFirst[r.TraceID]
		if !ok {
			return true
		}
		out = append(out, LatencySample{
			TraceID: r.TraceID,
			Seq:     r.Seq,
			Ns:      int64(tb) - int64(r.TimeNs),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Seq != out[j].Seq {
			return out[i].Seq < out[j].Seq
		}
		return out[i].TraceID < out[j].TraceID
	})
	return out
}

// Values extracts the nanosecond latencies from samples.
func Values(samples []LatencySample) []int64 {
	out := make([]int64, len(samples))
	for i, s := range samples {
		out[i] = s.Ns
	}
	return out
}

// Jitter returns consecutive latency differences ΔT_{i+1} - ΔT_i, ordered
// by packet sequence.
func Jitter(samples []LatencySample) []int64 {
	if len(samples) < 2 {
		return nil
	}
	out := make([]int64, 0, len(samples)-1)
	for i := 1; i < len(samples); i++ {
		out = append(out, samples[i].Ns-samples[i-1].Ns)
	}
	return out
}

// JitterRange returns the minimum and maximum jitter, the form the paper
// reports ("the range of jitter ... was only (-7.2us, 9.2us)").
func JitterRange(samples []LatencySample) (minNs, maxNs int64) {
	j := Jitter(samples)
	if len(j) == 0 {
		return 0, 0
	}
	minNs, maxNs = j[0], j[0]
	for _, v := range j[1:] {
		if v < minNs {
			minNs = v
		}
		if v > maxNs {
			maxNs = v
		}
	}
	return minNs, maxNs
}

// TraceIDCounter counts the distinct packet IDs a record store holds;
// *tracedb.Table and *tracedb.Merged both satisfy it.
type TraceIDCounter interface {
	NumTraceIDs() int
}

// Loss computes packet loss between two tracepoints: N_loss = N_i - N_j
// and R_loss = N_loss / N_i, over distinct packet IDs.
func Loss(a, b *tracedb.Table) (lost int64, rate float64) {
	return LossOf(a, b)
}

// LossOf is the source-generic loss metric, usable with merged
// cross-collector views as well as single tables.
func LossOf(a, b TraceIDCounter) (lost int64, rate float64) {
	ni := int64(a.NumTraceIDs())
	nj := int64(b.NumTraceIDs())
	lost = ni - nj
	if ni > 0 {
		rate = float64(lost) / float64(ni)
	}
	return lost, rate
}

// Segment is one hop of a latency decomposition.
type Segment struct {
	From string
	To   string
	// PerPacket holds each joined packet's latency in this segment.
	PerPacket []LatencySample
}

// MeanNs returns the segment's mean latency.
func (s *Segment) MeanNs() float64 { return Mean(Values(s.PerPacket)) }

// Decompose splits end-to-end latency across consecutive tracepoint
// tables, the paper's "decomposition of end-to-end latency" (Figures 9a
// and 11).
func Decompose(stages []*tracedb.Table) ([]Segment, error) {
	if len(stages) < 2 {
		return nil, fmt.Errorf("%w: need >= 2 stages", ErrNoData)
	}
	out := make([]Segment, 0, len(stages)-1)
	for i := 1; i < len(stages); i++ {
		out = append(out, Segment{
			From:      stages[i-1].Name,
			To:        stages[i].Name,
			PerPacket: Latencies(stages[i-1], stages[i]),
		})
	}
	return out, nil
}

// Mean returns the arithmetic mean of vals, 0 when empty.
func Mean(vals []int64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += float64(v)
	}
	return sum / float64(len(vals))
}

// Percentile returns the p-th percentile (0 < p <= 100) using
// nearest-rank on a sorted copy.
func Percentile(vals []int64, p float64) int64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := make([]int64, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted))-1e-9)) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Summary bundles the latency statistics the paper's figures report.
type Summary struct {
	Count  int
	MeanNs float64
	P50Ns  int64
	P99Ns  int64
	P999Ns int64
	MaxNs  int64
}

// Summarize computes a Summary over latency values.
func Summarize(vals []int64) Summary {
	s := Summary{Count: len(vals)}
	if len(vals) == 0 {
		return s
	}
	s.MeanNs = Mean(vals)
	s.P50Ns = Percentile(vals, 50)
	s.P99Ns = Percentile(vals, 99)
	s.P999Ns = Percentile(vals, 99.9)
	s.MaxNs = Percentile(vals, 100)
	return s
}
