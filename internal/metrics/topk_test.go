package metrics

import (
	"math/rand"
	"testing"

	"vnettracer/internal/core"
)

func fk(n uint32) FlowKey {
	return FlowKey{SrcIP: n, DstIP: n + 1, SrcPort: uint16(n), DstPort: uint16(n + 1), Proto: 6}
}

// TestTopKExactWithoutEviction: under capacity every resident count is
// exact and the overflow bucket stays empty.
func TestTopKExactWithoutEviction(t *testing.T) {
	tk := NewTopKFlows(8)
	for i := uint32(1); i <= 5; i++ {
		tk.Add(fk(i), uint64(i), uint64(i*100))
		tk.Add(fk(i), uint64(i), uint64(i*100)) // resident: accumulates
	}
	top := tk.Top()
	if len(top) != 5 {
		t.Fatalf("residents = %d, want 5", len(top))
	}
	if top[0].Flow != fk(5) || top[0].Packets != 10 || top[0].Bytes != 1000 {
		t.Fatalf("top flow = %+v, want flow 5 with 10 pkts / 1000 bytes", top[0])
	}
	if p, b, e := tk.Overflow(); p != 0 || b != 0 || e != 0 {
		t.Fatalf("overflow = %d/%d/%d, want zeros", p, b, e)
	}
	wantP, wantB := uint64(2+4+6+8+10), uint64(200+400+600+800+1000)
	if p, b := tk.Totals(); p != wantP || b != wantB {
		t.Fatalf("totals = %d/%d, want %d/%d", p, b, wantP, wantB)
	}
}

// TestTopKOverflowExact: evictions move mass to the overflow bucket and
// totals stay exact — nothing observed is ever lost or inflated.
func TestTopKOverflowExact(t *testing.T) {
	tk := NewTopKFlows(2)
	tk.Add(fk(1), 10, 1000)
	tk.Add(fk(2), 5, 500)
	tk.Add(fk(3), 1, 100) // at capacity: flow 2 (smallest) evicts to overflow
	if p, b := tk.Totals(); p != 16 || b != 1600 {
		t.Fatalf("totals = %d/%d, want 16/1600", p, b)
	}
	_, _, evictions := tk.Overflow()
	if evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	top := tk.Top()
	if len(top) != 2 || top[0].Flow != fk(1) || top[0].Packets != 10 {
		t.Fatalf("heaviest flow lost residency: %+v", top)
	}
	// Resident counts are lower bounds: sum(resident) + overflow == total.
	var resP, resB uint64
	for _, fc := range top {
		resP += fc.Packets
		resB += fc.Bytes
	}
	ovP, ovB, _ := tk.Overflow()
	if resP+ovP != 16 || resB+ovB != 1600 {
		t.Fatalf("conservation broken: resident %d/%d + overflow %d/%d != 16/1600", resP, resB, ovP, ovB)
	}
}

// TestTopKMergeConservesAndOrders: merging per-collector sketches keeps
// totals exact, is order-insensitive on totals, and with enough capacity
// reproduces the exact union counts.
func TestTopKMergeConservesAndOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mkSketch := func(k int, n int) (*TopKFlows, map[FlowKey][2]uint64) {
		tk := NewTopKFlows(k)
		truth := make(map[FlowKey][2]uint64)
		for i := 0; i < n; i++ {
			key := fk(uint32(rng.Intn(12) + 1))
			p, b := uint64(rng.Intn(5)+1), uint64(rng.Intn(500)+1)
			tk.Add(key, p, b)
			v := truth[key]
			truth[key] = [2]uint64{v[0] + p, v[1] + b}
		}
		return tk, truth
	}
	a, truthA := mkSketch(4, 60)
	b, truthB := mkSketch(4, 60)
	var wantP, wantB uint64
	for _, v := range truthA {
		wantP += v[0]
		wantB += v[1]
	}
	for _, v := range truthB {
		wantP += v[0]
		wantB += v[1]
	}
	a.Merge(b)
	if p, bb := a.Totals(); p != wantP || bb != wantB {
		t.Fatalf("merged totals = %d/%d, want %d/%d", p, bb, wantP, wantB)
	}

	// Large capacity: no evictions anywhere, merge must equal the exact
	// union per flow.
	c, truthC := mkSketch(64, 80)
	d, truthD := mkSketch(64, 80)
	c.Merge(d)
	if _, _, ev := c.Overflow(); ev != 0 {
		t.Fatalf("unexpected evictions at k=64: %d", ev)
	}
	for _, fc := range c.Top() {
		want := [2]uint64{truthC[fc.Flow][0] + truthD[fc.Flow][0], truthC[fc.Flow][1] + truthD[fc.Flow][1]}
		if fc.Packets != want[0] || fc.Bytes != want[1] {
			t.Fatalf("flow %v merged to %d/%d, want %d/%d", fc.Flow, fc.Packets, fc.Bytes, want[0], want[1])
		}
	}
}

// TestTopKOf: building from a record stream counts payload bytes net of
// the embedded trace ID, like every other throughput metric here.
func TestTopKOf(t *testing.T) {
	recs := Records([]core.Record{
		{TraceID: 1, Len: 104, SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 20, Proto: 6},
		{TraceID: 2, Len: 104, SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 20, Proto: 6},
		{TraceID: 3, Len: 54, SrcIP: 3, DstIP: 4, SrcPort: 30, DstPort: 40, Proto: 17},
	})
	tk := TopKOf(recs, 4)
	top := tk.Top()
	if len(top) != 2 {
		t.Fatalf("flows = %d, want 2", len(top))
	}
	if top[0].Packets != 2 || top[0].Bytes != 200 {
		t.Fatalf("top flow = %+v, want 2 pkts / 200 bytes", top[0])
	}
	if top[1].Packets != 1 || top[1].Bytes != 50 {
		t.Fatalf("second flow = %+v, want 1 pkt / 50 bytes", top[1])
	}
}
