package metrics

import "math"

// Log2-bucket histogram analysis. In-probe aggregation ships latency
// distributions as 64-slot log2 histograms (bucket 0 holds exact zeros,
// bucket b >= 1 holds samples in [2^(b-1), 2^b)), trading per-sample
// fidelity for a constant-size frame. These helpers recover the
// percentile statistics the paper's figures report from those buckets;
// every estimate is exact to within one log2 bucket by construction.

// HistBucketBounds returns the half-open value range [lo, hi) a log2
// bucket covers. Bucket 0 is the singleton {0} (returned as [0, 1)).
func HistBucketBounds(bucket int) (lo, hi uint64) {
	if bucket <= 0 {
		return 0, 1
	}
	if bucket >= 64 {
		return 1 << 63, math.MaxUint64
	}
	return 1 << (bucket - 1), 1 << bucket
}

// HistMerge adds src's bucket counts into dst and returns dst (grown if
// src is wider). Log2 histograms are mergeable sketches: bucket-wise
// addition of per-collector histograms equals the histogram of the union
// stream, so cluster queries merge first and summarize once without any
// loss beyond the buckets' own one-log2-bucket resolution.
func HistMerge(dst, src []uint64) []uint64 {
	if len(src) > len(dst) {
		grown := make([]uint64, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// HistCount sums a histogram's sample counts.
func HistCount(buckets []uint64) uint64 {
	var n uint64
	for _, v := range buckets {
		n += v
	}
	return n
}

// HistPercentile returns the p-th percentile (0 < p <= 100) of a log2
// histogram as the inclusive upper bound of the bucket holding the
// nearest-rank sample — a conservative estimate no more than one bucket
// above the true value, matching the fidelity the encoding retains.
// Empty histograms return 0.
func HistPercentile(buckets []uint64, p float64) uint64 {
	total := HistCount(buckets)
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for b, v := range buckets {
		seen += v
		if seen >= rank {
			if b == 0 {
				return 0
			}
			_, hi := HistBucketBounds(b)
			return hi - 1
		}
	}
	return 0
}

// HistMean estimates the histogram's mean using each bucket's geometric
// midpoint (3*2^(b-2) for b >= 1, the arithmetic center of [2^(b-1), 2^b)).
func HistMean(buckets []uint64) float64 {
	total := HistCount(buckets)
	if total == 0 {
		return 0
	}
	var sum float64
	for b, v := range buckets {
		if v == 0 || b == 0 {
			continue
		}
		lo, hi := HistBucketBounds(b)
		sum += float64(v) * (float64(lo) + float64(hi)) / 2
	}
	return sum / float64(total)
}

// HistSummary bundles the percentile statistics recoverable from a log2
// histogram, mirroring Summary for exact samples.
type HistSummary struct {
	Count  uint64
	MeanNs float64
	P50Ns  uint64
	P99Ns  uint64
	P999Ns uint64
	MaxNs  uint64
}

// HistSummarize computes a HistSummary over log2 buckets.
func HistSummarize(buckets []uint64) HistSummary {
	s := HistSummary{Count: HistCount(buckets)}
	if s.Count == 0 {
		return s
	}
	s.MeanNs = HistMean(buckets)
	s.P50Ns = HistPercentile(buckets, 50)
	s.P99Ns = HistPercentile(buckets, 99)
	s.P999Ns = HistPercentile(buckets, 99.9)
	s.MaxNs = HistPercentile(buckets, 100)
	return s
}
