package metrics

import (
	"math/bits"
	"math/rand"
	"testing"
)

// histBucketOf mirrors the probe-side bucketing: bucket 0 for zero,
// bucket b = bits.Len64(v) otherwise.
func histBucketOf(v uint64, n int) int {
	b := bits.Len64(v)
	if b >= n {
		b = n - 1
	}
	return b
}

func TestHistBucketBounds(t *testing.T) {
	cases := []struct {
		bucket int
		lo, hi uint64
	}{
		{0, 0, 1}, {1, 1, 2}, {2, 2, 4}, {3, 4, 8}, {10, 512, 1024},
	}
	for _, c := range cases {
		lo, hi := HistBucketBounds(c.bucket)
		if lo != c.lo || hi != c.hi {
			t.Fatalf("bounds(%d) = [%d,%d), want [%d,%d)", c.bucket, lo, hi, c.lo, c.hi)
		}
	}
	// Every nonzero value lands inside its own bucket's bounds.
	for _, v := range []uint64{1, 2, 3, 7, 8, 1023, 1024, 1 << 40} {
		b := histBucketOf(v, 64)
		lo, hi := HistBucketBounds(b)
		if v < lo || v >= hi {
			t.Fatalf("value %d outside bucket %d bounds [%d,%d)", v, b, lo, hi)
		}
	}
}

// TestHistPercentileWithinLog2 pins the accuracy contract: for random
// sample sets, the histogram-derived percentile is >= the exact
// nearest-rank percentile and < 2x it (one log2 bucket).
func TestHistPercentileWithinLog2(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 100 + rng.Intn(2000)
		vals := make([]int64, n)
		buckets := make([]uint64, 64)
		for i := range vals {
			v := uint64(rng.Int63n(1 << 30))
			vals[i] = int64(v)
			buckets[histBucketOf(v, 64)]++
		}
		for _, p := range []float64{50, 90, 99, 99.9, 100} {
			exact := uint64(Percentile(vals, p))
			est := HistPercentile(buckets, p)
			if est < exact {
				t.Fatalf("p%.1f estimate %d below exact %d", p, est, exact)
			}
			if exact > 0 && est >= 2*exact {
				t.Fatalf("p%.1f estimate %d not within log2 of exact %d", p, est, exact)
			}
		}
	}
}

func TestHistPercentileEdges(t *testing.T) {
	if got := HistPercentile(nil, 50); got != 0 {
		t.Fatalf("empty histogram p50 = %d", got)
	}
	zeroOnly := make([]uint64, 64)
	zeroOnly[0] = 10
	if got := HistPercentile(zeroOnly, 99); got != 0 {
		t.Fatalf("all-zero-sample histogram p99 = %d", got)
	}
	// One sample in bucket 3 ([4,8)): every percentile reports 7.
	one := make([]uint64, 64)
	one[3] = 1
	for _, p := range []float64{1, 50, 100} {
		if got := HistPercentile(one, p); got != 7 {
			t.Fatalf("single-sample p%v = %d, want 7", p, got)
		}
	}
}

func TestHistSummarize(t *testing.T) {
	buckets := make([]uint64, 64)
	buckets[5] = 90 // [16,32)
	buckets[10] = 9 // [512,1024)
	buckets[20] = 1 // [524288,1048576)
	s := HistSummarize(buckets)
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P50Ns != 31 {
		t.Fatalf("p50 = %d, want 31", s.P50Ns)
	}
	if s.P99Ns != 1023 {
		t.Fatalf("p99 = %d, want 1023", s.P99Ns)
	}
	if s.MaxNs != 1048575 {
		t.Fatalf("max = %d, want 1048575", s.MaxNs)
	}
	if s.MeanNs <= 0 {
		t.Fatalf("mean = %v", s.MeanNs)
	}
	empty := HistSummarize(nil)
	if empty.Count != 0 || empty.MaxNs != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestHistMerge(t *testing.T) {
	// Merging per-collector histograms must equal histogramming the
	// union stream: bucket-wise addition, growing to the wider side.
	a := []uint64{1, 2, 3}
	b := []uint64{0, 5, 0, 7}
	got := HistMerge(append([]uint64(nil), a...), b)
	want := []uint64{1, 7, 3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged = %v, want %v", got, want)
		}
	}
	if HistCount(got) != HistCount(a)+HistCount(b) {
		t.Fatalf("count %d, want %d", HistCount(got), HistCount(a)+HistCount(b))
	}
	if HistPercentile(got, 100) != HistPercentile(b, 100) {
		t.Fatal("max percentile lost in merge")
	}
	if out := HistMerge(nil, nil); len(out) != 0 {
		t.Fatalf("nil merge = %v", out)
	}
}
