package metrics

import (
	"fmt"
	"sort"

	"vnettracer/internal/core"
)

// FlowKey identifies a flow in collected records (the record's 5-tuple).
type FlowKey struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders "proto a.b.c.d:p->a.b.c.d:p".
func (k FlowKey) String() string {
	proto := "?"
	switch k.Proto {
	case 6:
		proto = "tcp"
	case 17:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s:%d->%s:%d", proto, ip4(k.SrcIP), k.SrcPort, ip4(k.DstIP), k.DstPort)
}

func ip4(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func keyOf(r core.Record) FlowKey {
	return FlowKey{SrcIP: r.SrcIP, DstIP: r.DstIP, SrcPort: r.SrcPort, DstPort: r.DstPort, Proto: r.Proto}
}

// FlowStats summarizes one flow at a tracepoint.
type FlowStats struct {
	Flow    FlowKey
	Packets int
	Bytes   uint64
	// ThroughputBps is sum(S_i - S_ID)/(T_N - T_1) for this flow alone —
	// the paper's per-flow throughput (Section III-D, "advanced tracing
	// information, like per-flow throughput").
	ThroughputBps float64
	FirstNs       uint64
	LastNs        uint64
}

// PerFlowThroughput groups one tracepoint's records by flow and computes
// per-flow throughput. Flows with a single record have zero throughput
// (no interval).
func PerFlowThroughput(recs []core.Record) []FlowStats {
	groups := make(map[FlowKey][]core.Record)
	for _, r := range recs {
		k := keyOf(r)
		groups[k] = append(groups[k], r)
	}
	out := make([]FlowStats, 0, len(groups))
	for k, rs := range groups {
		fs := FlowStats{Flow: k, Packets: len(rs)}
		fs.FirstNs, fs.LastNs = rs[0].TimeNs, rs[0].TimeNs
		for _, r := range rs {
			if r.Len > TraceIDBytes {
				fs.Bytes += uint64(r.Len) - TraceIDBytes
			}
			if r.TimeNs < fs.FirstNs {
				fs.FirstNs = r.TimeNs
			}
			if r.TimeNs > fs.LastNs {
				fs.LastNs = r.TimeNs
			}
		}
		if span := fs.LastNs - fs.FirstNs; span > 0 {
			fs.ThroughputBps = float64(fs.Bytes) * 8 * 1e9 / float64(span)
		}
		out = append(out, fs)
	}
	// Deterministic order: by descending bytes, then by flow string.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Flow.String() < out[j].Flow.String()
	})
	return out
}

// InterArrivals returns consecutive packet arrival gaps at one tracepoint,
// sorted by timestamp — the paper's "packet arrival time" raw metric.
func InterArrivals(recs []core.Record) []int64 {
	if len(recs) < 2 {
		return nil
	}
	ts := make([]uint64, len(recs))
	for i, r := range recs {
		ts[i] = r.TimeNs
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]int64, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out = append(out, int64(ts[i]-ts[i-1]))
	}
	return out
}
