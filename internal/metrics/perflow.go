package metrics

import (
	"fmt"
	"sort"

	"vnettracer/internal/core"
)

// FlowKey identifies a flow in collected records (the record's 5-tuple).
type FlowKey struct {
	SrcIP   uint32
	DstIP   uint32
	SrcPort uint16
	DstPort uint16
	Proto   uint8
}

// String renders "proto a.b.c.d:p->a.b.c.d:p".
func (k FlowKey) String() string {
	proto := "?"
	switch k.Proto {
	case 6:
		proto = "tcp"
	case 17:
		proto = "udp"
	}
	return fmt.Sprintf("%s %s:%d->%s:%d", proto, ip4(k.SrcIP), k.SrcPort, ip4(k.DstIP), k.DstPort)
}

func ip4(v uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func keyOf(r core.Record) FlowKey {
	return FlowKey{SrcIP: r.SrcIP, DstIP: r.DstIP, SrcPort: r.SrcPort, DstPort: r.DstPort, Proto: r.Proto}
}

// FlowStats summarizes one flow at a tracepoint.
type FlowStats struct {
	Flow    FlowKey
	Packets int
	Bytes   uint64
	// ThroughputBps is sum(S_i - S_ID)/(T_N - T_1) for this flow alone —
	// the paper's per-flow throughput (Section III-D, "advanced tracing
	// information, like per-flow throughput").
	ThroughputBps float64
	FirstNs       uint64
	LastNs        uint64
}

// PerFlowThroughputOf streams one tracepoint's records, grouping by flow
// and computing per-flow throughput in a single pass — only the running
// aggregates are kept per flow, never the records themselves. Flows with a
// single record have zero throughput (no interval).
func PerFlowThroughputOf(src RecordSource) []FlowStats {
	groups := make(map[FlowKey]*FlowStats)
	src.Scan(func(r core.Record) bool {
		k := keyOf(r)
		fs, ok := groups[k]
		if !ok {
			fs = &FlowStats{Flow: k, FirstNs: r.TimeNs, LastNs: r.TimeNs}
			groups[k] = fs
		}
		fs.Packets++
		if r.Len > TraceIDBytes {
			fs.Bytes += uint64(r.Len) - TraceIDBytes
		}
		if r.TimeNs < fs.FirstNs {
			fs.FirstNs = r.TimeNs
		}
		if r.TimeNs > fs.LastNs {
			fs.LastNs = r.TimeNs
		}
		return true
	})
	out := make([]FlowStats, 0, len(groups))
	for _, fs := range groups {
		if span := fs.LastNs - fs.FirstNs; span > 0 {
			fs.ThroughputBps = float64(fs.Bytes) * 8 * 1e9 / float64(span)
		}
		out = append(out, *fs)
	}
	// Deterministic order: by descending bytes, then by flow string.
	sort.Slice(out, func(i, j int) bool {
		if out[i].Bytes != out[j].Bytes {
			return out[i].Bytes > out[j].Bytes
		}
		return out[i].Flow.String() < out[j].Flow.String()
	})
	return out
}

// PerFlowThroughput computes per-flow throughput over an in-memory slice.
func PerFlowThroughput(recs []core.Record) []FlowStats {
	return PerFlowThroughputOf(Records(recs))
}

// InterArrivalsOf returns consecutive packet arrival gaps at one
// tracepoint, sorted by timestamp — the paper's "packet arrival time" raw
// metric. Only the 8-byte timestamps are materialized from the stream, not
// full records.
func InterArrivalsOf(src RecordSource) []int64 {
	var ts []uint64
	src.Scan(func(r core.Record) bool {
		ts = append(ts, r.TimeNs)
		return true
	})
	if len(ts) < 2 {
		return nil
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]int64, 0, len(ts)-1)
	for i := 1; i < len(ts); i++ {
		out = append(out, int64(ts[i]-ts[i-1]))
	}
	return out
}

// InterArrivals returns arrival gaps over an in-memory record slice.
func InterArrivals(recs []core.Record) []int64 {
	return InterArrivalsOf(Records(recs))
}
