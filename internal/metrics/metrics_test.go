package metrics

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"vnettracer/internal/core"
	"vnettracer/internal/tracedb"
)

func table(t *testing.T, db *tracedb.DB, tpid uint32, name string, recs []core.Record) *tracedb.Table {
	t.Helper()
	tbl, err := db.CreateTable(tpid, name)
	if err != nil {
		t.Fatal(err)
	}
	db.Insert(recs)
	return tbl
}

func TestThroughputFormula(t *testing.T) {
	// 10 packets of 1004 bytes (1000 + 4-byte ID) over 1ms:
	// 10 * 1000 * 8 bits / 1e-3 s = 80 Mbps.
	var recs []core.Record
	for i := 0; i < 10; i++ {
		recs = append(recs, core.Record{TPID: 1, TraceID: uint32(i + 1), Len: 1004, TimeNs: uint64(i) * 111_111})
	}
	recs[len(recs)-1].TimeNs = 1_000_000
	bps, err := Throughput(recs)
	if err != nil {
		t.Fatal(err)
	}
	want := 80_000_000.0
	if bps < want*0.99 || bps > want*1.01 {
		t.Fatalf("throughput = %.0f, want ~%.0f", bps, want)
	}
}

func TestThroughputErrors(t *testing.T) {
	if _, err := Throughput(nil); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty: %v", err)
	}
	same := []core.Record{{TimeNs: 5}, {TimeNs: 5}}
	if _, err := Throughput(same); !errors.Is(err, ErrNoData) {
		t.Fatalf("zero span: %v", err)
	}
}

func TestThroughputUnsorted(t *testing.T) {
	recs := []core.Record{
		{Len: 104, TimeNs: 1000},
		{Len: 104, TimeNs: 0},
		{Len: 104, TimeNs: 500},
	}
	bps, err := Throughput(recs)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(3*100*8) * 1e9 / 1000
	if bps != want {
		t.Fatalf("throughput = %f, want %f", bps, want)
	}
}

func TestLatenciesJoinOnTraceID(t *testing.T) {
	db := tracedb.New()
	a := table(t, db, 1, "a", []core.Record{
		{TPID: 1, TraceID: 10, Seq: 0, TimeNs: 100},
		{TPID: 1, TraceID: 11, Seq: 1, TimeNs: 200},
		{TPID: 1, TraceID: 12, Seq: 2, TimeNs: 300}, // lost before b
	})
	b := table(t, db, 2, "b", []core.Record{
		{TPID: 2, TraceID: 10, Seq: 0, TimeNs: 150},
		{TPID: 2, TraceID: 11, Seq: 1, TimeNs: 290},
	})
	lat := Latencies(a, b)
	if len(lat) != 2 {
		t.Fatalf("samples = %d", len(lat))
	}
	if lat[0].Ns != 50 || lat[1].Ns != 90 {
		t.Fatalf("latencies = %+v", lat)
	}
}

func TestLatenciesSkipUntraced(t *testing.T) {
	db := tracedb.New()
	a := table(t, db, 1, "a", []core.Record{{TPID: 1, TraceID: 0, TimeNs: 1}})
	b := table(t, db, 2, "b", []core.Record{{TPID: 2, TraceID: 0, TimeNs: 5}})
	if got := Latencies(a, b); len(got) != 0 {
		t.Fatalf("untraced packets joined: %+v", got)
	}
}

func TestLatenciesApplySkewCorrection(t *testing.T) {
	db := tracedb.New()
	a := table(t, db, 1, "client", []core.Record{{TPID: 1, TraceID: 5, TimeNs: 1000}})
	b := table(t, db, 2, "server", []core.Record{{TPID: 2, TraceID: 5, TimeNs: 10_000}})
	// Server clock is 8000 ahead: true latency is 1000.
	db.SetSkew(2, 8000)
	lat := Latencies(a, b)
	if len(lat) != 1 || lat[0].Ns != 1000 {
		t.Fatalf("skew-corrected latency = %+v", lat)
	}
}

func TestJitterAndRange(t *testing.T) {
	samples := []LatencySample{
		{Seq: 0, Ns: 100}, {Seq: 1, Ns: 150}, {Seq: 2, Ns: 120}, {Seq: 3, Ns: 200},
	}
	j := Jitter(samples)
	want := []int64{50, -30, 80}
	if len(j) != 3 {
		t.Fatalf("jitter = %v", j)
	}
	for i := range want {
		if j[i] != want[i] {
			t.Fatalf("jitter = %v, want %v", j, want)
		}
	}
	lo, hi := JitterRange(samples)
	if lo != -30 || hi != 80 {
		t.Fatalf("range = (%d, %d)", lo, hi)
	}
}

func TestJitterEmpty(t *testing.T) {
	if Jitter(nil) != nil {
		t.Fatal("jitter of nothing")
	}
	lo, hi := JitterRange([]LatencySample{{Ns: 5}})
	if lo != 0 || hi != 0 {
		t.Fatal("single-sample range should be zero")
	}
}

func TestLoss(t *testing.T) {
	db := tracedb.New()
	a := table(t, db, 1, "a", []core.Record{
		{TPID: 1, TraceID: 1}, {TPID: 1, TraceID: 2}, {TPID: 1, TraceID: 3}, {TPID: 1, TraceID: 4},
	})
	b := table(t, db, 2, "b", []core.Record{
		{TPID: 2, TraceID: 1}, {TPID: 2, TraceID: 3},
	})
	lost, rate := Loss(a, b)
	if lost != 2 || rate != 0.5 {
		t.Fatalf("loss = %d rate = %f", lost, rate)
	}
}

func TestDecompose(t *testing.T) {
	db := tracedb.New()
	mk := func(tpid uint32, base uint64) []core.Record {
		var out []core.Record
		for i := uint32(1); i <= 3; i++ {
			out = append(out, core.Record{TPID: tpid, TraceID: i, Seq: uint64(i), TimeNs: base + uint64(i)*10})
		}
		return out
	}
	s1 := table(t, db, 1, "eth0", mk(1, 0))
	s2 := table(t, db, 2, "ovs", mk(2, 1000))
	s3 := table(t, db, 3, "eth1", mk(3, 5000))
	segs, err := Decompose([]*tracedb.Table{s1, s2, s3})
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("segments = %d", len(segs))
	}
	if segs[0].From != "eth0" || segs[0].To != "ovs" {
		t.Fatalf("seg0 = %s->%s", segs[0].From, segs[0].To)
	}
	if segs[0].MeanNs() != 1000 || segs[1].MeanNs() != 4000 {
		t.Fatalf("means = %f %f", segs[0].MeanNs(), segs[1].MeanNs())
	}
	if _, err := Decompose([]*tracedb.Table{s1}); !errors.Is(err, ErrNoData) {
		t.Fatal("single stage accepted")
	}
}

func TestPercentileNearestRank(t *testing.T) {
	vals := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	tests := []struct {
		p    float64
		want int64
	}{
		{0, 10}, {10, 10}, {50, 50}, {90, 90}, {99, 100}, {100, 100},
	}
	for _, tc := range tests {
		if got := Percentile(vals, tc.p); got != tc.want {
			t.Errorf("P%.0f = %d, want %d", tc.p, got, tc.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
}

func TestPercentileProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint8) bool {
		vals := make([]int64, int(n)+1)
		for i := range vals {
			vals[i] = rng.Int63n(1000)
		}
		sorted := append([]int64(nil), vals...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		p50 := Percentile(vals, 50)
		p99 := Percentile(vals, 99)
		// Monotone in p, bounded by min/max, and a member of the set.
		if p50 > p99 {
			return false
		}
		if p99 > sorted[len(sorted)-1] || p50 < sorted[0] {
			return false
		}
		found := false
		for _, v := range vals {
			if v == p50 {
				found = true
				break
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	vals := make([]int64, 1000)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	s := Summarize(vals)
	if s.Count != 1000 || s.MeanNs != 500.5 {
		t.Fatalf("summary = %+v", s)
	}
	if s.P50Ns != 500 || s.P99Ns != 990 || s.P999Ns != 999 || s.MaxNs != 1000 {
		t.Fatalf("percentiles = %+v", s)
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.MeanNs != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}
