package kernel

import (
	"testing"

	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

func newTestNode(t *testing.T, cfg NodeConfig) (*sim.Engine, *Node) {
	t.Helper()
	eng := sim.NewEngine(1)
	if cfg.Name == "" {
		cfg.Name = "node0"
	}
	return eng, NewNode(eng, cfg)
}

func TestCPUSerializesWork(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCPU(eng, 0)
	var done []int64
	c.Exec(100, func() { done = append(done, eng.Now()) })
	c.Exec(100, func() { done = append(done, eng.Now()) })
	eng.RunUntilIdle()
	if len(done) != 2 || done[0] != 100 || done[1] != 200 {
		t.Fatalf("completions = %v, want [100 200]", done)
	}
	if c.BusyNs() != 200 {
		t.Fatalf("BusyNs = %d", c.BusyNs())
	}
}

func TestCPUIdleDetection(t *testing.T) {
	eng := sim.NewEngine(1)
	c := NewCPU(eng, 0)
	if !c.Idle() {
		t.Fatal("fresh CPU should be idle")
	}
	c.Exec(100, func() {})
	if c.Idle() {
		t.Fatal("CPU with queued work should be busy")
	}
	eng.RunUntilIdle()
	if !c.Idle() {
		t.Fatal("CPU should be idle after work drains")
	}
}

func TestProbeRegistryAttachFireDetach(t *testing.T) {
	r := NewProbeRegistry()
	var fired int
	detach := r.Attach(SiteNetRxAction, func(ctx *ProbeCtx) int64 {
		fired++
		return 10
	})
	if got := r.Fire(&ProbeCtx{Site: SiteNetRxAction}); got != 10 {
		t.Fatalf("Fire cost = %d, want 10", got)
	}
	if got := r.Fire(&ProbeCtx{Site: SiteTCPRecvmsg}); got != 0 {
		t.Fatalf("unattached site cost = %d", got)
	}
	detach()
	if got := r.Fire(&ProbeCtx{Site: SiteNetRxAction}); got != 0 {
		t.Fatalf("after detach cost = %d", got)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if r.Fires(SiteNetRxAction) != 1 {
		t.Fatalf("Fires = %d", r.Fires(SiteNetRxAction))
	}
}

func TestProbeRegistryMultipleHandlersSumCost(t *testing.T) {
	r := NewProbeRegistry()
	r.Attach(SiteUDPRecvmsg, func(*ProbeCtx) int64 { return 5 })
	r.Attach(SiteUDPRecvmsg, func(*ProbeCtx) int64 { return 7 })
	if got := r.Fire(&ProbeCtx{Site: SiteUDPRecvmsg}); got != 12 {
		t.Fatalf("summed cost = %d, want 12", got)
	}
	if r.Attached(SiteUDPRecvmsg) != 2 {
		t.Fatalf("Attached = %d", r.Attached(SiteUDPRecvmsg))
	}
}

func TestSocketSendReceiveLoopback(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 2})
	// Loopback: egress feeds straight back to local delivery.
	n.Egress = func(p *vnet.Packet) { n.DeliverLocal(p) }

	var got *vnet.Packet
	var at int64
	_, err := n.Open(vnet.ProtoUDP, SockAddr{IP: vnet.MustParseIPv4("10.0.0.1"), Port: 9000},
		func(p *vnet.Packet) { got, at = p, eng.Now() })
	if err != nil {
		t.Fatal(err)
	}
	cli, err := n.Open(vnet.ProtoUDP, SockAddr{IP: vnet.MustParseIPv4("10.0.0.1"), Port: 40000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Send(SockAddr{IP: vnet.MustParseIPv4("10.0.0.1"), Port: 9000}, 56); err != nil {
		t.Fatal(err)
	}
	eng.RunUntilIdle()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if len(got.Payload) != 56 {
		t.Fatalf("payload = %d bytes (trace IDs disabled, nothing to trim)", len(got.Payload))
	}
	want := DefaultCosts().UDPSend + DefaultCosts().UDPRecv
	if at != want {
		t.Fatalf("delivery at %d, want %d", at, want)
	}
}

func TestSocketTraceIDTransparency(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1, TraceIDs: true})
	n.Egress = func(p *vnet.Packet) { n.DeliverLocal(p) }

	var got *vnet.Packet
	if _, err := n.Open(vnet.ProtoUDP, SockAddr{Port: 9000}, func(p *vnet.Packet) { got = p }); err != nil {
		t.Fatal(err)
	}
	cli, err := n.Open(vnet.ProtoUDP, SockAddr{IP: 1, Port: 40000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sent, err := cli.Send(SockAddr{IP: 2, Port: 9000}, 56)
	if err != nil {
		t.Fatal(err)
	}
	if sent.TraceID == 0 {
		t.Fatal("trace ID not inserted")
	}
	if len(sent.Payload) != 60 {
		t.Fatalf("in-flight payload = %d, want 60 (56 + 4-byte ID)", len(sent.Payload))
	}
	eng.RunUntilIdle()
	if got == nil {
		t.Fatal("packet not delivered")
	}
	if len(got.Payload) != 56 {
		t.Fatalf("application saw %d bytes, want 56 (ID must be stripped)", len(got.Payload))
	}
}

func TestSocketTCPTraceIDInOptions(t *testing.T) {
	_, n := newTestNode(t, NodeConfig{NumCPU: 1, TraceIDs: true})
	var captured *vnet.Packet
	n.Egress = func(p *vnet.Packet) { captured = p }
	cli, err := n.Open(vnet.ProtoTCP, SockAddr{IP: 1, Port: 40000}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Send(SockAddr{IP: 2, Port: 80}, 100); err != nil {
		t.Fatal(err)
	}
	n.Engine().RunUntilIdle()
	if captured == nil {
		t.Fatal("no egress")
	}
	opt, ok := captured.TCP.FindOption(vnet.TCPOptionTraceID)
	if !ok || len(opt.Data) != 4 {
		t.Fatalf("trace option missing: %+v", captured.TCP.Options)
	}
	if len(captured.Payload) != 100 {
		t.Fatalf("TCP payload must be untouched, got %d", len(captured.Payload))
	}
}

func TestDuplicateBindRejected(t *testing.T) {
	_, n := newTestNode(t, NodeConfig{})
	if _, err := n.Open(vnet.ProtoUDP, SockAddr{Port: 9000}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Open(vnet.ProtoUDP, SockAddr{Port: 9000}, nil); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	// Different proto is fine.
	if _, err := n.Open(vnet.ProtoTCP, SockAddr{Port: 9000}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCloseUnbinds(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{})
	n.Egress = func(p *vnet.Packet) { n.DeliverLocal(p) }
	s, err := n.Open(vnet.ProtoUDP, SockAddr{Port: 9000}, func(*vnet.Packet) {})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	cli, _ := n.Open(vnet.ProtoUDP, SockAddr{IP: 1, Port: 40001}, nil)
	cli.Send(SockAddr{IP: 2, Port: 9000}, 10)
	eng.RunUntilIdle()
	if n.DropNoSocket != 1 {
		t.Fatalf("DropNoSocket = %d, want 1", n.DropNoSocket)
	}
	if _, err := s.Send(SockAddr{}, 1); err == nil {
		t.Fatal("send on closed socket accepted")
	}
}

func TestWildcardBindReceives(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{})
	n.Egress = func(p *vnet.Packet) { n.DeliverLocal(p) }
	var got int
	if _, err := n.Open(vnet.ProtoUDP, SockAddr{IP: 0, Port: 9000}, func(*vnet.Packet) { got++ }); err != nil {
		t.Fatal(err)
	}
	cli, _ := n.Open(vnet.ProtoUDP, SockAddr{IP: 1, Port: 40000}, nil)
	cli.Send(SockAddr{IP: vnet.MustParseIPv4("172.17.0.5"), Port: 9000}, 10)
	eng.RunUntilIdle()
	if got != 1 {
		t.Fatalf("wildcard socket received %d", got)
	}
}

func TestSoftirqSteeringWithoutRPS(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 4})
	// All softirqs land on CPU 0 regardless of flow.
	for i := 0; i < 20; i++ {
		p := &vnet.Packet{
			IP:  vnet.IPv4Header{Protocol: vnet.ProtoUDP, Src: vnet.IPv4(i), Dst: 99},
			UDP: &vnet.UDPHeader{SrcPort: uint16(1000 + i), DstPort: 53},
		}
		n.SoftirqNetRX(p, nil, func(*vnet.Packet) {})
	}
	eng.RunUntilIdle()
	if n.CPUs()[0].SoftirqCount != 20 {
		t.Fatalf("cpu0 softirqs = %d, want 20", n.CPUs()[0].SoftirqCount)
	}
	for i := 1; i < 4; i++ {
		if n.CPUs()[i].SoftirqCount != 0 {
			t.Fatalf("cpu%d got softirqs without RPS", i)
		}
	}
}

func TestSoftirqSteeringWithRPSSpreadsFlows(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 4, RPS: true})
	for i := 0; i < 64; i++ {
		p := &vnet.Packet{
			IP:  vnet.IPv4Header{Protocol: vnet.ProtoUDP, Src: vnet.IPv4(i), Dst: 99},
			UDP: &vnet.UDPHeader{SrcPort: uint16(1000 + i), DstPort: 53},
		}
		n.SoftirqNetRX(p, nil, func(*vnet.Packet) {})
	}
	eng.RunUntilIdle()
	busy := 0
	for _, c := range n.CPUs() {
		if c.SoftirqCount > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("RPS spread flows across %d CPUs, want >= 2", busy)
	}
}

func TestSoftirqRPSSameFlowSameCPU(t *testing.T) {
	// The paper's key observation: one connection hashes to one CPU, so
	// RPS cannot help a single containerized flow.
	eng, n := newTestNode(t, NodeConfig{NumCPU: 8, RPS: true})
	for i := 0; i < 50; i++ {
		p := &vnet.Packet{
			IP:  vnet.IPv4Header{Protocol: vnet.ProtoTCP, Src: 1, Dst: 2},
			TCP: &vnet.TCPHeader{SrcPort: 5555, DstPort: 80},
		}
		n.SoftirqNetRX(p, nil, func(*vnet.Packet) {})
	}
	eng.RunUntilIdle()
	busy := 0
	for _, c := range n.CPUs() {
		if c.SoftirqCount > 0 {
			busy++
		}
	}
	if busy != 1 {
		t.Fatalf("single flow spread over %d CPUs, want exactly 1", busy)
	}
}

func TestSoftirqWakePenaltyOnIdleCPU(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1})
	costs := n.Costs()
	var first, second int64
	p := &vnet.Packet{IP: vnet.IPv4Header{Protocol: vnet.ProtoUDP}, UDP: &vnet.UDPHeader{}}
	n.SoftirqNetRX(p, nil, func(*vnet.Packet) { first = eng.Now() })
	n.SoftirqNetRX(p, nil, func(*vnet.Packet) { second = eng.Now() })
	eng.RunUntilIdle()
	// First softirq pays the wakeup; the second runs back to back.
	if first != costs.SoftirqBase+costs.KsoftirqdWake {
		t.Fatalf("first = %d, want %d", first, costs.SoftirqBase+costs.KsoftirqdWake)
	}
	if second != first+costs.SoftirqBase {
		t.Fatalf("second = %d, want %d (no wake penalty)", second, first+costs.SoftirqBase)
	}
}

func TestProbeCostChargedToPacketPath(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1})
	const traceCost = 700
	n.Probes.Attach(SiteNetRxAction, func(*ProbeCtx) int64 { return traceCost })
	var at int64
	p := &vnet.Packet{IP: vnet.IPv4Header{Protocol: vnet.ProtoUDP}, UDP: &vnet.UDPHeader{}}
	n.SoftirqNetRX(p, nil, func(*vnet.Packet) { at = eng.Now() })
	eng.RunUntilIdle()
	costs := n.Costs()
	want := costs.SoftirqBase + costs.KsoftirqdWake + traceCost
	if at != want {
		t.Fatalf("completion = %d, want %d (tracing cost must be physical)", at, want)
	}
}

func TestGetRPSCPUProbeFires(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 2, RPS: true})
	var cpus []int
	n.Probes.Attach(SiteGetRPSCPU, func(ctx *ProbeCtx) int64 {
		cpus = append(cpus, ctx.CPU)
		return 0
	})
	p := &vnet.Packet{IP: vnet.IPv4Header{Protocol: vnet.ProtoUDP, Src: 1}, UDP: &vnet.UDPHeader{SrcPort: 9}}
	n.SoftirqNetRX(p, nil, func(*vnet.Packet) {})
	eng.RunUntilIdle()
	if len(cpus) != 1 {
		t.Fatalf("get_rps_cpu fired %d times", len(cpus))
	}
	if cpus[0] < 0 || cpus[0] >= 2 {
		t.Fatalf("steered to CPU %d", cpus[0])
	}
}

func TestClockSkewVisibleInProbeTimestamps(t *testing.T) {
	eng := sim.NewEngine(1)
	n := NewNode(eng, NodeConfig{Name: "skewed", NumCPU: 1, ClockOffsetNs: 1000000})
	var ts int64
	n.Probes.Attach(SiteUDPRecvmsg, func(ctx *ProbeCtx) int64 {
		ts = ctx.TimeNs
		return 0
	})
	n.Egress = func(p *vnet.Packet) { n.DeliverLocal(p) }
	n.Open(vnet.ProtoUDP, SockAddr{Port: 9000}, func(*vnet.Packet) {})
	cli, _ := n.Open(vnet.ProtoUDP, SockAddr{IP: 1, Port: 40000}, nil)
	cli.Send(SockAddr{IP: 2, Port: 9000}, 10)
	eng.RunUntilIdle()
	if ts < 1000000 {
		t.Fatalf("probe timestamp %d ignores clock offset", ts)
	}
}
