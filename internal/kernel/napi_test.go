package kernel

import (
	"testing"

	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

func napiPkt(sport uint16) *vnet.Packet {
	return &vnet.Packet{
		IP:  vnet.IPv4Header{Protocol: vnet.ProtoUDP, Src: 1, Dst: 2},
		UDP: &vnet.UDPHeader{SrcPort: sport, DstPort: 53},
	}
}

func napiDev(eng *sim.Engine) *vnet.NetDev {
	return vnet.NewNetDev(eng, vnet.NetDevConfig{Name: "eth0", Ifindex: 2})
}

func TestNAPICoalescesWithinBudget(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1})
	dev := napiDev(eng)
	done := 0
	// First packet opens a poll; the next arrive while the CPU is busy
	// and coalesce: only one softirq (one net_rx_action) for the batch.
	for i := 0; i < 5; i++ {
		n.SoftirqNetRXNAPI(napiPkt(100), dev, 8, func(*vnet.Packet) { done++ })
	}
	eng.RunUntilIdle()
	if done != 5 {
		t.Fatalf("delivered %d", done)
	}
	if n.SoftirqTotal != 1 {
		t.Fatalf("softirqs = %d, want 1 (coalesced batch)", n.SoftirqTotal)
	}
}

func TestNAPIBudgetStartsNewSoftirq(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1})
	dev := napiDev(eng)
	for i := 0; i < 10; i++ {
		n.SoftirqNetRXNAPI(napiPkt(100), dev, 4, func(*vnet.Packet) {})
	}
	eng.RunUntilIdle()
	// 10 packets with budget 4: ceil(10/4) = 3 polls.
	if n.SoftirqTotal != 3 {
		t.Fatalf("softirqs = %d, want 3", n.SoftirqTotal)
	}
}

func TestNAPIIdleCPUStartsFreshPoll(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1})
	dev := napiDev(eng)
	n.SoftirqNetRXNAPI(napiPkt(100), dev, 8, func(*vnet.Packet) {})
	eng.RunUntilIdle() // batch drains, CPU idles
	n.SoftirqNetRXNAPI(napiPkt(100), dev, 8, func(*vnet.Packet) {})
	eng.RunUntilIdle()
	if n.SoftirqTotal != 2 {
		t.Fatalf("softirqs = %d, want 2 (idle gap breaks the batch)", n.SoftirqTotal)
	}
}

func TestNAPIProbeFiresPerPollNotPerPacket(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1})
	dev := napiDev(eng)
	polls := 0
	n.Probes.Attach(SiteNetRxAction, func(*ProbeCtx) int64 { polls++; return 0 })
	steers := 0
	n.Probes.Attach(SiteGetRPSCPU, func(*ProbeCtx) int64 { steers++; return 0 })
	for i := 0; i < 6; i++ {
		n.SoftirqNetRXNAPI(napiPkt(100), dev, 8, func(*vnet.Packet) {})
	}
	eng.RunUntilIdle()
	if polls != 1 {
		t.Fatalf("net_rx_action fired %d times, want 1 per poll", polls)
	}
	if steers != 6 {
		t.Fatalf("get_rps_cpu fired %d times, want once per packet", steers)
	}
}

func TestNAPIBudgetOneFallsBack(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1})
	dev := napiDev(eng)
	for i := 0; i < 3; i++ {
		n.SoftirqNetRXNAPI(napiPkt(100), dev, 1, func(*vnet.Packet) {})
	}
	eng.RunUntilIdle()
	if n.SoftirqTotal != 3 {
		t.Fatalf("softirqs = %d, want 3 (budget 1 disables batching)", n.SoftirqTotal)
	}
}

func TestSoftirqExtraCostCharged(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1})
	costs := n.Costs()
	var at int64
	n.SoftirqNetRXExtra(napiPkt(1), nil, 7000, func(*vnet.Packet) { at = eng.Now() })
	eng.RunUntilIdle()
	want := costs.SoftirqBase + costs.KsoftirqdWake + 7000
	if at != want {
		t.Fatalf("completion = %d, want %d", at, want)
	}
}

func TestBacklogDropsUnderOverload(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1, MaxBacklog: 10})
	delivered := 0
	for i := 0; i < 100; i++ {
		n.SoftirqNetRX(napiPkt(100), nil, func(*vnet.Packet) { delivered++ })
	}
	eng.RunUntilIdle()
	if n.BacklogDrops != 90 {
		t.Fatalf("BacklogDrops = %d, want 90", n.BacklogDrops)
	}
	if delivered != 10 {
		t.Fatalf("delivered = %d, want 10", delivered)
	}
}

func TestBacklogAppliesToNAPIToo(t *testing.T) {
	eng, n := newTestNode(t, NodeConfig{NumCPU: 1, MaxBacklog: 5})
	dev := napiDev(eng)
	for i := 0; i < 50; i++ {
		n.SoftirqNetRXNAPI(napiPkt(100), dev, 8, func(*vnet.Packet) {})
	}
	eng.RunUntilIdle()
	if n.BacklogDrops == 0 {
		t.Fatal("NAPI path ignored the backlog bound")
	}
}

func TestVXLANSteeredByOuterFlow(t *testing.T) {
	// Before decapsulation the kernel hashes the outer tuple; the inner
	// flow must not influence steering (the RPS limitation of case study
	// III).
	eng, n := newTestNode(t, NodeConfig{NumCPU: 8, RPS: true})
	inner1 := &vnet.Packet{IP: vnet.IPv4Header{Protocol: vnet.ProtoTCP, Src: 11, Dst: 22}, TCP: &vnet.TCPHeader{SrcPort: 1, DstPort: 2}}
	inner2 := &vnet.Packet{IP: vnet.IPv4Header{Protocol: vnet.ProtoTCP, Src: 33, Dst: 44}, TCP: &vnet.TCPHeader{SrcPort: 3, DstPort: 4}}
	mkOuter := func(inner *vnet.Packet) *vnet.Packet {
		return &vnet.Packet{
			IP:    vnet.IPv4Header{Protocol: vnet.ProtoUDP, Src: 100, Dst: 200},
			UDP:   &vnet.UDPHeader{SrcPort: 48879, DstPort: 4789},
			VXLAN: &vnet.VXLANHeader{VNI: 1},
			Inner: inner,
		}
	}
	var cpus []int
	n.Probes.Attach(SiteGetRPSCPU, func(ctx *ProbeCtx) int64 {
		cpus = append(cpus, ctx.CPU)
		return 0
	})
	n.SoftirqNetRX(mkOuter(inner1), nil, func(*vnet.Packet) {})
	n.SoftirqNetRX(mkOuter(inner2), nil, func(*vnet.Packet) {})
	eng.RunUntilIdle()
	if len(cpus) != 2 || cpus[0] != cpus[1] {
		t.Fatalf("same outer tuple steered to different CPUs: %v", cpus)
	}
}
