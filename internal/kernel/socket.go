package kernel

import (
	"fmt"

	"vnettracer/internal/vnet"
)

// SockAddr is an (IP, port) endpoint.
type SockAddr struct {
	IP   vnet.IPv4
	Port uint16
}

// Socket is an application endpoint on a node. The receive callback runs in
// simulated time after kernel receive-path costs; Send charges send-path
// costs (including trace-ID insertion when the node has it enabled) before
// the packet enters the device graph via the node's Egress.
type Socket struct {
	node   *Node
	proto  uint8
	local  SockAddr
	onRecv func(p *vnet.Packet)
	seq    uint64
	sent   uint64
	closed bool
}

// Open binds a socket. IP 0 binds the wildcard address. It returns an error
// if the (ip, port, proto) tuple is taken.
func (n *Node) Open(proto uint8, local SockAddr, onRecv func(p *vnet.Packet)) (*Socket, error) {
	if proto != vnet.ProtoTCP && proto != vnet.ProtoUDP {
		return nil, fmt.Errorf("kernel: open: unsupported protocol %d", proto)
	}
	key := sockKey{ip: local.IP, port: local.Port, proto: proto}
	if _, taken := n.sockets[key]; taken {
		return nil, fmt.Errorf("kernel: open: %s:%d/%d already bound", local.IP, local.Port, proto)
	}
	s := &Socket{node: n, proto: proto, local: local, onRecv: onRecv}
	n.sockets[key] = s
	return s, nil
}

// Close unbinds the socket.
func (s *Socket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	delete(s.node.sockets, sockKey{ip: s.local.IP, port: s.local.Port, proto: s.proto})
}

// Local returns the bound address.
func (s *Socket) Local() SockAddr { return s.local }

// Sent returns how many packets this socket has sent.
func (s *Socket) Sent() uint64 { return s.sent }

// Send transmits size zero bytes of payload to dst. See SendBytes.
func (s *Socket) Send(dst SockAddr, size int) (*vnet.Packet, error) {
	return s.SendBytes(dst, make([]byte, size))
}

// SendBytes transmits payload to dst, returning the in-flight packet
// (callers must not mutate it; the payload slice is copied). The packet
// leaves the node after the send-path cost elapses.
func (s *Socket) SendBytes(dst SockAddr, payload []byte) (*vnet.Packet, error) {
	if s.closed {
		return nil, fmt.Errorf("kernel: send on closed socket")
	}
	n := s.node
	buf := make([]byte, len(payload))
	copy(buf, payload)
	p := &vnet.Packet{
		Eth: vnet.EthernetHeader{EtherType: vnet.EtherTypeIPv4},
		IP: vnet.IPv4Header{
			TTL:      64,
			Protocol: s.proto,
			Src:      s.local.IP,
			Dst:      dst.IP,
		},
		Payload: buf,
		Seq:     s.seq,
		SentAt:  n.eng.Now(),
	}
	s.seq++
	s.sent++

	var cost int64
	var site string
	switch s.proto {
	case vnet.ProtoTCP:
		p.TCP = &vnet.TCPHeader{SrcPort: s.local.Port, DstPort: dst.Port, Flags: vnet.TCPFlagACK}
		cost = n.cfg.Costs.TCPSend
		site = SiteTCPOptionsWrite
	case vnet.ProtoUDP:
		p.UDP = &vnet.UDPHeader{SrcPort: s.local.Port, DstPort: dst.Port}
		cost = n.cfg.Costs.UDPSend
		site = SiteUDPSendSkb
	}

	// Trace-ID insertion: the paper's kernel modification writes a random
	// 32-bit ID into the TCP options (tcp_options_write) or appends it to
	// the UDP payload (__skb_put in udp_send_skb).
	if n.cfg.TraceIDs {
		id := n.rng.Uint32()
		for id == 0 {
			id = n.rng.Uint32()
		}
		switch s.proto {
		case vnet.ProtoTCP:
			if err := p.SetTCPTraceID(id); err != nil {
				return nil, fmt.Errorf("kernel: send: %w", err)
			}
		case vnet.ProtoUDP:
			if err := p.PutUDPTraceID(id); err != nil {
				return nil, fmt.Errorf("kernel: send: %w", err)
			}
			cost += n.Probes.Fire(&ProbeCtx{Site: SiteSkbPut, Pkt: p, TimeNs: n.Clock.NowNs()})
		}
		cost += n.cfg.Costs.TraceIDInsert
	}

	cost += n.Probes.Fire(&ProbeCtx{Site: site, Pkt: p, TimeNs: n.Clock.NowNs()})

	n.eng.Schedule(cost, func() {
		// kretprobe: the send function returns as the packet leaves.
		n.Probes.Fire(&ProbeCtx{Site: RetSite(site), Pkt: p, TimeNs: n.Clock.NowNs()})
		if n.Egress != nil {
			n.Egress(p)
		}
	})
	return p, nil
}
