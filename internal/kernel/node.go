package kernel

import (
	"hash/fnv"
	"math/rand"

	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

// Costs are the per-operation CPU costs of the simulated kernel, in
// nanoseconds. Defaults approximate a modern Xeon; experiments may tune
// them, but relative magnitudes (trace-ID insertion in the tens of
// nanoseconds, softirq work in the microseconds) follow the paper.
type Costs struct {
	UDPSend int64
	UDPRecv int64
	TCPSend int64
	TCPRecv int64
	// SoftirqBase is the cost of one net_rx_action invocation.
	SoftirqBase int64
	// KsoftirqdWake is the extra cost of waking ksoftirqd on an idle CPU
	// (the sleep/wakeup overhead case study III highlights).
	KsoftirqdWake int64
	// SoftirqPerPacket is the marginal cost of one packet inside an
	// already-running NAPI poll (SoftirqNetRXNAPI).
	SoftirqPerPacket int64
	// TraceIDInsert / TraceIDTrim are the paper's "tens of nanoseconds"
	// packet-ID operations.
	TraceIDInsert int64
	TraceIDTrim   int64
}

// DefaultCosts returns the baseline cost model.
func DefaultCosts() Costs {
	return Costs{
		UDPSend:          2000,
		UDPRecv:          2000,
		TCPSend:          2500,
		TCPRecv:          2500,
		SoftirqBase:      1500,
		KsoftirqdWake:    3000,
		SoftirqPerPacket: 300,
		TraceIDInsert:    40,
		TraceIDTrim:      30,
	}
}

// NodeConfig configures a simulated machine (physical host, VM, or Dom0).
type NodeConfig struct {
	Name    string
	NumCPU  int
	Costs   Costs
	// ClockOffsetNs and ClockDriftPPB set the node's CLOCK_MONOTONIC skew
	// relative to engine truth (paper Section III-B, Cristian's algorithm).
	ClockOffsetNs int64
	ClockDriftPPB int64
	// RPS enables Receive Packet Steering; otherwise every NET_RX softirq
	// lands on IRQCPU (default 0), modelling single-queue IRQ affinity.
	RPS    bool
	IRQCPU int
	// TraceIDs enables the kernel modification that embeds 32-bit trace
	// IDs into outgoing packets.
	TraceIDs bool
	// MaxBacklog bounds the per-CPU softirq input queue; packets arriving
	// at a CPU whose backlog is full are dropped, as with the kernel's
	// netdev_max_backlog. Defaults to 1000.
	MaxBacklog int
	// RecvOnCPU serializes the socket receive path (and any tracing cost
	// charged there) on the flow's steered CPU instead of treating it as
	// pure pipeline latency. Use it for nodes whose receive throughput is
	// CPU-bound (e.g. the 1-vCPU Xen VM of the paper's Figure 7(b)).
	RecvOnCPU bool
	// Seed differentiates the node's private random stream.
	Seed int64
}

// Node is one simulated machine: CPUs, a probe registry, a socket table,
// and an egress path.
type Node struct {
	Name   string
	Probes *ProbeRegistry
	Clock  *sim.Clock

	eng  *sim.Engine
	cfg  NodeConfig
	cpus []*CPU
	rng  *rand.Rand

	sockets map[sockKey]*Socket
	// napi tracks per-device NAPI poll batches for SoftirqNetRXNAPI.
	napi map[string]*napiState
	// Egress transmits a locally generated packet into the device graph;
	// topology builders assign it.
	Egress func(p *vnet.Packet)

	// Ground-truth counters (validation only; traced figures come from
	// eBPF maps).
	SoftirqTotal uint64
	DropNoSocket uint64
	BacklogDrops uint64
}

type sockKey struct {
	ip    vnet.IPv4
	port  uint16
	proto uint8
}

// NewNode creates a node bound to the engine.
func NewNode(eng *sim.Engine, cfg NodeConfig) *Node {
	if cfg.NumCPU <= 0 {
		cfg.NumCPU = 1
	}
	if cfg.MaxBacklog <= 0 {
		cfg.MaxBacklog = 1000
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	n := &Node{
		Name:    cfg.Name,
		Probes:  NewProbeRegistry(),
		Clock:   sim.NewClock(eng, cfg.ClockOffsetNs, cfg.ClockDriftPPB),
		eng:     eng,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed ^ 0x5eed)),
		sockets: make(map[sockKey]*Socket),
		napi:    make(map[string]*napiState),
	}
	for i := 0; i < cfg.NumCPU; i++ {
		n.cpus = append(n.cpus, NewCPU(eng, i))
	}
	return n
}

// Engine returns the simulation engine the node runs on.
func (n *Node) Engine() *sim.Engine { return n.eng }

// NumCPU returns the processor count.
func (n *Node) NumCPU() int { return len(n.cpus) }

// CPUs returns the node's processors (shared, not copied: callers inspect
// counters).
func (n *Node) CPUs() []*CPU { return n.cpus }

// Costs returns the node's cost model.
func (n *Node) Costs() Costs { return n.cfg.Costs }

// TraceIDsEnabled reports whether the trace-ID kernel modification is on.
func (n *Node) TraceIDsEnabled() bool { return n.cfg.TraceIDs }

// SetTraceIDs toggles the trace-ID kernel modification at runtime.
func (n *Node) SetTraceIDs(on bool) { n.cfg.TraceIDs = on }

// Rand returns the node's private random stream.
func (n *Node) Rand() *rand.Rand { return n.rng }

// steerCPU picks the CPU that will run the NET_RX softirq for p and fires
// the get_rps_cpu probe site, exactly the function case study III attaches
// to.
func (n *Node) steerCPU(p *vnet.Packet) int {
	cpu := n.steerQuiet(p)
	n.Probes.Fire(&ProbeCtx{
		Site:   SiteGetRPSCPU,
		Pkt:    p,
		CPU:    cpu,
		TimeNs: n.Clock.NowNs(),
	})
	return cpu
}

// SoftirqNetRX schedules one NET_RX softirq to process p: the packet is
// steered to a CPU, charged the softirq cost (plus a ksoftirqd wakeup on an
// idle CPU, plus any attached tracing cost), and then continues through fn.
// Every device hop in a receive path runs through here, so a deep overlay
// path raises proportionally many softirqs — the mechanism behind the
// paper's case study III.
func (n *Node) SoftirqNetRX(p *vnet.Packet, dev *vnet.NetDev, fn func(*vnet.Packet)) {
	n.SoftirqNetRXExtra(p, dev, 0, fn)
}

// SoftirqNetRXExtra is SoftirqNetRX with extraNs of additional per-packet
// CPU work charged inside the softirq — the header rewriting, security
// checks, and forwarding work that deep overlay hops perform (paper case
// study III: "additional efforts ... are needed for the packets").
func (n *Node) SoftirqNetRXExtra(p *vnet.Packet, dev *vnet.NetDev, extraNs int64, fn func(*vnet.Packet)) {
	cpuID := n.steerCPU(p)
	cpu := n.cpus[cpuID]
	if cpu.Pending() >= n.cfg.MaxBacklog {
		n.BacklogDrops++
		return
	}
	cost := n.cfg.Costs.SoftirqBase + extraNs
	if cpu.Idle() {
		cost += n.cfg.Costs.KsoftirqdWake
	}
	ctx := &ProbeCtx{
		Site:   SiteNetRxAction,
		Pkt:    p,
		CPU:    cpuID,
		TimeNs: n.Clock.NowNs(),
	}
	if dev != nil {
		ctx.DevIfindex = dev.Ifindex()
		ctx.DevName = dev.Name()
	}
	cost += n.Probes.Fire(ctx)
	cpu.SoftirqCount++
	n.SoftirqTotal++
	cpu.Exec(cost, func() { fn(p) })
}

type napiState struct {
	batch int
}

// SoftirqNetRXNAPI is SoftirqNetRX with NAPI polling semantics for NIC
// receive: a packet arriving while the steered CPU is still draining a
// previous batch for the same device joins that batch (up to budget
// packets) and pays only the per-packet poll cost — no new softirq, no
// ksoftirqd wakeup, no net_rx_action probe firing. This is the batching
// that virtual devices (veth, bridges, VXLAN) largely miss out on, which
// is why container overlay paths execute net_rx_action so much more often
// per delivered byte (paper case study III).
func (n *Node) SoftirqNetRXNAPI(p *vnet.Packet, dev *vnet.NetDev, budget int, fn func(*vnet.Packet)) {
	if budget <= 1 || dev == nil {
		n.SoftirqNetRX(p, dev, fn)
		return
	}
	cpuID := n.steerCPU(p)
	cpu := n.cpus[cpuID]
	if cpu.Pending() >= n.cfg.MaxBacklog {
		n.BacklogDrops++
		return
	}
	st, ok := n.napi[dev.Name()]
	if !ok {
		st = &napiState{}
		n.napi[dev.Name()] = st
	}
	if !cpu.Idle() && st.batch > 0 && st.batch < budget {
		// Coalesce into the running poll.
		st.batch++
		cpu.Exec(n.cfg.Costs.SoftirqPerPacket, func() { fn(p) })
		return
	}
	// Start a new poll/softirq.
	st.batch = 1
	cost := n.cfg.Costs.SoftirqBase + n.cfg.Costs.SoftirqPerPacket
	if cpu.Idle() {
		cost += n.cfg.Costs.KsoftirqdWake
	}
	ctx := &ProbeCtx{
		Site:       SiteNetRxAction,
		Pkt:        p,
		CPU:        cpuID,
		DevIfindex: dev.Ifindex(),
		DevName:    dev.Name(),
		TimeNs:     n.Clock.NowNs(),
	}
	cost += n.Probes.Fire(ctx)
	cpu.SoftirqCount++
	n.SoftirqTotal++
	cpu.Exec(cost, func() { fn(p) })
}

// DeliverLocal terminates a packet at this node's socket table. Packets
// without a matching socket are counted and dropped.
func (n *Node) DeliverLocal(p *vnet.Packet) {
	flow := p.Flow()
	s := n.lookupSocket(flow.Dst, flow.DstPort, flow.Proto)
	if s == nil {
		n.DropNoSocket++
		return
	}
	cost := n.cfg.Costs.UDPRecv
	site := SiteUDPRecvmsg
	if flow.Proto == vnet.ProtoTCP {
		cost = n.cfg.Costs.TCPRecv
		site = SiteTCPRecvmsg
	}

	// Strip the UDP trace ID before the payload reaches the application
	// (pskb_trim_rcsum, paper Section III-B), preserving transparency.
	if flow.Proto == vnet.ProtoUDP && p.TraceID != 0 {
		if _, err := p.TrimUDPTraceID(); err == nil {
			cost += n.cfg.Costs.TraceIDTrim
			cost += n.Probes.Fire(&ProbeCtx{
				Site: SitePskbTrimRcsum, Pkt: p, TimeNs: n.Clock.NowNs(),
			})
		}
	}

	cost += n.Probes.Fire(&ProbeCtx{Site: site, Pkt: p, TimeNs: n.Clock.NowNs()})
	deliver := func() {
		// kretprobe: the receive function returns here, after its cost.
		retCost := n.Probes.Fire(&ProbeCtx{Site: RetSite(site), Pkt: p, TimeNs: n.Clock.NowNs()})
		run := func() {
			if s.onRecv != nil {
				s.onRecv(p)
			}
		}
		if retCost > 0 {
			n.eng.Schedule(retCost, run)
			return
		}
		run()
	}
	if n.cfg.RecvOnCPU {
		n.cpus[n.steerQuiet(p)].Exec(cost, deliver)
		return
	}
	n.eng.Schedule(cost, deliver)
}

// steerQuiet picks the flow's CPU without firing the get_rps_cpu probe
// (used for process-context work that follows the softirq on the same
// core). RPS hashes the tuple the kernel sees at this layer: the outer
// VXLAN tuple before decapsulation — which is why steering cannot spread a
// single container connection (paper case study III).
func (n *Node) steerQuiet(p *vnet.Packet) int {
	if !n.cfg.RPS {
		return n.cfg.IRQCPU
	}
	f := p.Flow()
	h := fnv.New32a()
	var key [13]byte
	key[0] = f.Proto
	key[1], key[2], key[3], key[4] = byte(f.Src>>24), byte(f.Src>>16), byte(f.Src>>8), byte(f.Src)
	key[5], key[6], key[7], key[8] = byte(f.Dst>>24), byte(f.Dst>>16), byte(f.Dst>>8), byte(f.Dst)
	key[9], key[10] = byte(f.SrcPort>>8), byte(f.SrcPort)
	key[11], key[12] = byte(f.DstPort>>8), byte(f.DstPort)
	h.Write(key[:])
	cpu := int(h.Sum32()) % len(n.cpus)
	if cpu < 0 {
		cpu += len(n.cpus)
	}
	return cpu
}

func (n *Node) lookupSocket(ip vnet.IPv4, port uint16, proto uint8) *Socket {
	if s, ok := n.sockets[sockKey{ip: ip, port: port, proto: proto}]; ok {
		return s
	}
	// Wildcard bind.
	if s, ok := n.sockets[sockKey{ip: 0, port: port, proto: proto}]; ok {
		return s
	}
	return nil
}
