package kernel

import (
	"fmt"
	"sort"
	"sync"

	"vnettracer/internal/vnet"
)

// Well-known probe sites. These are the kernel functions the paper's trace
// scripts attach to; device-level tracepoints attach through
// vnet.NetDev.AttachHook instead.
const (
	SiteUDPSendSkb      = "udp_send_skb"
	SiteTCPOptionsWrite = "tcp_options_write"
	SiteUDPRecvmsg      = "udp_recvmsg"
	SiteTCPRecvmsg      = "tcp_recvmsg"
	SiteNetRxAction     = "net_rx_action"
	SiteGetRPSCPU       = "get_rps_cpu"
	SiteSkbPut          = "__skb_put"
	SitePskbTrimRcsum   = "pskb_trim_rcsum"
)

// RetSite derives the kretprobe site name for a kernel function: a
// kretprobe at tcp_recvmsg attaches to RetSite(SiteTCPRecvmsg). The kernel
// fires it when the function returns (e.g. after the receive path's cost
// has elapsed).
func RetSite(site string) string { return site + "%return" }

// UprobeSite derives a user-level probe site for an application symbol
// (the paper's uprobe/uretprobe surface). Workloads fire these around
// their request handling.
func UprobeSite(app, symbol string) string { return "uprobe:" + app + ":" + symbol }

// ProbeCtx is the information a probe site exposes to attached handlers;
// the tracer core serializes it into the eBPF context structure.
type ProbeCtx struct {
	// Site is the kernel function or tracepoint name.
	Site string
	// Pkt is the packet in flight; nil for packet-less sites.
	Pkt *vnet.Packet
	// CPU is the executing processor.
	CPU int
	// DevIfindex / DevName identify the device, when relevant.
	DevIfindex int
	DevName    string
	// Dir is the crossing direction for device hooks.
	Dir vnet.Direction
	// TimeNs is the node's CLOCK_MONOTONIC at fire time.
	TimeNs int64
}

// ProbeHandler observes one probe firing and returns CPU nanoseconds
// consumed; the kernel charges that to the packet's processing, making
// tracing overhead physical.
type ProbeHandler func(ctx *ProbeCtx) (costNs int64)

// ProbeRegistry holds handlers attached to kernel probe sites. It is safe
// for concurrent use: the control-plane agent attaches and detaches while
// the simulated kernel fires probes.
type ProbeRegistry struct {
	mu     sync.Mutex
	nextID int
	sites  map[string]map[int]ProbeHandler
	fires  map[string]uint64
}

// NewProbeRegistry returns an empty registry.
func NewProbeRegistry() *ProbeRegistry {
	return &ProbeRegistry{
		sites: make(map[string]map[int]ProbeHandler),
		fires: make(map[string]uint64),
	}
}

// Attach registers a handler at a site and returns a detach function.
func (r *ProbeRegistry) Attach(site string, h ProbeHandler) (detach func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := r.nextID
	r.nextID++
	m, ok := r.sites[site]
	if !ok {
		m = make(map[int]ProbeHandler)
		r.sites[site] = m
	}
	m[id] = h
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		delete(m, id)
	}
}

// Fire invokes every handler attached at ctx.Site and returns the summed
// CPU cost. Sites with no handlers cost nothing, preserving the paper's
// "no tracing, no overhead" property.
func (r *ProbeRegistry) Fire(ctx *ProbeCtx) int64 {
	r.mu.Lock()
	m := r.sites[ctx.Site]
	if len(m) == 0 {
		r.mu.Unlock()
		return 0
	}
	r.fires[ctx.Site]++
	// Copy handlers out so they run without holding the lock and in a
	// deterministic order.
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	handlers := make([]ProbeHandler, len(ids))
	for i, id := range ids {
		handlers[i] = m[id]
	}
	r.mu.Unlock()

	var cost int64
	for _, h := range handlers {
		cost += h(ctx)
	}
	return cost
}

// Fires reports how many times a site fired with at least one handler.
func (r *ProbeRegistry) Fires(site string) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fires[site]
}

// Attached reports the number of handlers at a site.
func (r *ProbeRegistry) Attached(site string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.sites[site])
}

func (c *ProbeCtx) String() string {
	return fmt.Sprintf("probe %s cpu=%d dev=%s t=%d", c.Site, c.CPU, c.DevName, c.TimeNs)
}
