// Package kernel simulates the per-node Linux kernel surface vNetTracer
// instruments: CPUs executing softirqs, NET_RX steering (IRQ affinity and
// RPS), kprobe/tracepoint attach sites on kernel functions, and the
// TCP/UDP socket send/receive paths including the paper's trace-ID
// insertion (tcp_options_write / udp_send_skb) and removal
// (pskb_trim_rcsum) points.
package kernel

import (
	"vnettracer/internal/sim"
)

// CPU is a single simulated processor: a FIFO server that executes work
// items back to back. Saturating a CPU is how the container-overlay
// bottleneck of case study III emerges.
type CPU struct {
	ID  int
	eng *sim.Engine

	busyUntil int64
	busyNs    int64 // cumulative busy time
	pending   int
	// SoftirqCount counts NET_RX softirq executions on this CPU (ground
	// truth; the traced figure comes from eBPF per-CPU maps).
	SoftirqCount uint64
}

// NewCPU creates a CPU bound to the engine.
func NewCPU(eng *sim.Engine, id int) *CPU {
	return &CPU{ID: id, eng: eng}
}

// Idle reports whether the CPU has no queued work at the current time.
func (c *CPU) Idle() bool { return c.busyUntil <= c.eng.Now() }

// BusyNs returns cumulative busy nanoseconds, for utilization accounting.
func (c *CPU) BusyNs() int64 { return c.busyNs }

// Pending returns the number of queued-but-unfinished work items, the
// analogue of the per-CPU input backlog.
func (c *CPU) Pending() int { return c.pending }

// Exec enqueues a work item costing costNs and runs fn when it completes.
// Work on one CPU serializes; the completion time is the CPU's availability
// plus cost.
func (c *CPU) Exec(costNs int64, fn func()) {
	if costNs < 0 {
		costNs = 0
	}
	now := c.eng.Now()
	start := now
	if c.busyUntil > start {
		start = c.busyUntil
	}
	done := start + costNs
	c.busyUntil = done
	c.busyNs += costNs
	c.pending++
	c.eng.Schedule(done-now, func() {
		c.pending--
		fn()
	})
}
