package overlay

import (
	"fmt"

	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

// VXLANPort is the IANA VXLAN UDP port.
const VXLANPort uint16 = 4789

// membershipKey builds the store key mapping a container IP to its VTEP.
func membershipKey(vni uint32, containerIP vnet.IPv4) string {
	return fmt.Sprintf("overlay/%d/%s", vni, containerIP)
}

// VTEP is a VXLAN tunnel endpoint: it encapsulates container frames toward
// the VTEP owning the destination container IP (resolved through the
// etcd-like store) and decapsulates arriving tunnel frames.
type VTEP struct {
	store   *Store
	vni     uint32
	localIP vnet.IPv4
	// Encapped / Decapped / Unknown count dispositions.
	Encapped uint64
	Decapped uint64
	Unknown  uint64
}

// NewVTEP creates a tunnel endpoint for the given VNI whose outer source
// address is localIP.
func NewVTEP(store *Store, vni uint32, localIP vnet.IPv4) *VTEP {
	return &VTEP{store: store, vni: vni, localIP: localIP}
}

// Register announces that containerIP lives behind this VTEP.
func (v *VTEP) Register(containerIP vnet.IPv4) {
	v.store.Put(membershipKey(v.vni, containerIP), v.localIP.String())
}

// Unregister withdraws a container.
func (v *VTEP) Unregister(containerIP vnet.IPv4) {
	v.store.Delete(membershipKey(v.vni, containerIP))
}

// Lookup resolves the VTEP address owning containerIP.
func (v *VTEP) Lookup(containerIP vnet.IPv4) (vnet.IPv4, bool) {
	val, _, ok := v.store.Get(membershipKey(v.vni, containerIP))
	if !ok {
		return 0, false
	}
	ip, err := vnet.ParseIPv4(val)
	if err != nil {
		return 0, false
	}
	return ip, true
}

// Encap wraps p for transport to the VTEP owning p's destination IP.
// Returns nil when the destination is unknown (dropped), which is also the
// NetDev.Transform contract.
func (v *VTEP) Encap(p *vnet.Packet) *vnet.Packet {
	remote, ok := v.Lookup(p.IP.Dst)
	if !ok {
		v.Unknown++
		return nil
	}
	v.Encapped++
	return &vnet.Packet{
		Eth: vnet.EthernetHeader{EtherType: vnet.EtherTypeIPv4},
		IP: vnet.IPv4Header{
			TTL:      64,
			Protocol: vnet.ProtoUDP,
			Src:      v.localIP,
			Dst:      remote,
		},
		UDP:    &vnet.UDPHeader{SrcPort: 48879, DstPort: VXLANPort},
		VXLAN:  &vnet.VXLANHeader{VNI: v.vni},
		Inner:  p,
		Seq:    p.Seq,
		SentAt: p.SentAt,
	}
}

// Decap unwraps a tunnel frame, returning the inner packet, or nil when p
// is not a VXLAN frame for this VNI.
func (v *VTEP) Decap(p *vnet.Packet) *vnet.Packet {
	if p.VXLAN == nil || p.Inner == nil || p.VXLAN.VNI != v.vni {
		v.Unknown++
		return nil
	}
	v.Decapped++
	return p.Inner
}

// Bridge is a simple L3 learning bridge (docker0/docker_gwbridge): packets
// are forwarded to the port owning the destination IP, or to the default
// uplink.
type Bridge struct {
	eng    *sim.Engine
	dev    *vnet.NetDev
	ports  map[vnet.IPv4]func(*vnet.Packet)
	uplink func(*vnet.Packet)

	// NoRoute counts packets with neither a port nor an uplink.
	NoRoute uint64
}

// NewBridge creates a bridge. procNs is the per-packet forwarding cost;
// the returned bridge's Dev is where packets enter and where trace hooks
// attach.
func NewBridge(eng *sim.Engine, name string, ifindex int, procNs int64) *Bridge {
	b := &Bridge{
		eng:   eng,
		ports: make(map[vnet.IPv4]func(*vnet.Packet)),
	}
	b.dev = vnet.NewNetDev(eng, vnet.NetDevConfig{
		Name:    name,
		Ifindex: ifindex,
		ProcNs:  func(*vnet.Packet) int64 { return procNs },
		Out:     b.route,
	})
	return b
}

// Dev returns the bridge's ingress device.
func (b *Bridge) Dev() *vnet.NetDev { return b.dev }

// AddPort binds an IP to a delivery function (a container's veth).
func (b *Bridge) AddPort(ip vnet.IPv4, out func(*vnet.Packet)) {
	b.ports[ip] = out
}

// SetUplink sets the default route (toward the VXLAN device).
func (b *Bridge) SetUplink(out func(*vnet.Packet)) { b.uplink = out }

func (b *Bridge) route(p *vnet.Packet) {
	if out, ok := b.ports[p.IP.Dst]; ok {
		out(p)
		return
	}
	if b.uplink != nil {
		b.uplink(p)
		return
	}
	b.NoRoute++
}

// VethPair creates two cross-connected devices (a veth pair): frames
// received by one emerge from the other after procNs. Names follow the
// kernel convention ("vethXXXX" / container "eth0").
type VethPair struct {
	A *vnet.NetDev
	B *vnet.NetDev
}

// NewVethPair builds the pair. aOut and bOut receive frames that exit the
// respective end; use SetOut later to rewire.
func NewVethPair(eng *sim.Engine, nameA, nameB string, ifindexA, ifindexB int, procNs int64) *VethPair {
	vp := &VethPair{}
	vp.A = vnet.NewNetDev(eng, vnet.NetDevConfig{
		Name:    nameA,
		Ifindex: ifindexA,
		ProcNs:  func(*vnet.Packet) int64 { return procNs },
	})
	vp.B = vnet.NewNetDev(eng, vnet.NetDevConfig{
		Name:    nameB,
		Ifindex: ifindexB,
		ProcNs:  func(*vnet.Packet) int64 { return procNs },
	})
	return vp
}
