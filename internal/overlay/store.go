// Package overlay models a multi-host container overlay network in the
// style of Docker's default overlay driver: VXLAN tunnel endpoints (VTEPs)
// that encapsulate container traffic, container-side bridges (docker0) and
// veth pairs, and an etcd-like replicated key-value store holding overlay
// membership (which host owns which container IP), as in the paper's case
// study III testbed.
package overlay

import (
	"strings"
	"sync"
)

// Event is a change notification from the store.
type Event struct {
	Key     string
	Value   string
	Rev     int64
	Deleted bool
}

// Store is a minimal etcd-style KV store: revisioned puts, prefix watches,
// and compare-and-swap. It is safe for concurrent use. A single Store
// instance stands in for the replicated cluster; its consistency guarantees
// (single revision order) match what the overlay control plane needs.
type Store struct {
	mu      sync.Mutex
	rev     int64
	data    map[string]entry
	watches map[int]*watch
	nextID  int
}

type entry struct {
	value string
	rev   int64
}

type watch struct {
	prefix string
	fn     func(Event)
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		data:    make(map[string]entry),
		watches: make(map[int]*watch),
	}
}

// Put stores value under key and returns the new revision.
func (s *Store) Put(key, value string) int64 {
	s.mu.Lock()
	s.rev++
	rev := s.rev
	s.data[key] = entry{value: value, rev: rev}
	fns := s.matchingWatches(key)
	s.mu.Unlock()
	for _, fn := range fns {
		fn(Event{Key: key, Value: value, Rev: rev})
	}
	return rev
}

// Get returns the value and revision for key.
func (s *Store) Get(key string) (value string, rev int64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.data[key]
	return e.value, e.rev, ok
}

// Delete removes key, reporting whether it existed.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	_, ok := s.data[key]
	if !ok {
		s.mu.Unlock()
		return false
	}
	s.rev++
	rev := s.rev
	delete(s.data, key)
	fns := s.matchingWatches(key)
	s.mu.Unlock()
	for _, fn := range fns {
		fn(Event{Key: key, Rev: rev, Deleted: true})
	}
	return true
}

// CAS updates key to newValue only if its current value is oldValue.
func (s *Store) CAS(key, oldValue, newValue string) bool {
	s.mu.Lock()
	e, ok := s.data[key]
	if !ok || e.value != oldValue {
		s.mu.Unlock()
		return false
	}
	s.rev++
	rev := s.rev
	s.data[key] = entry{value: newValue, rev: rev}
	fns := s.matchingWatches(key)
	s.mu.Unlock()
	for _, fn := range fns {
		fn(Event{Key: key, Value: newValue, Rev: rev})
	}
	return true
}

// List returns all key/value pairs under prefix.
func (s *Store) List(prefix string) map[string]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]string)
	for k, e := range s.data {
		if strings.HasPrefix(k, prefix) {
			out[k] = e.value
		}
	}
	return out
}

// Watch invokes fn for every subsequent change under prefix, returning a
// cancel function. Callbacks run synchronously with the mutation.
func (s *Store) Watch(prefix string, fn func(Event)) (cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := s.nextID
	s.nextID++
	s.watches[id] = &watch{prefix: prefix, fn: fn}
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.watches, id)
	}
}

// Rev returns the store's current revision.
func (s *Store) Rev() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rev
}

func (s *Store) matchingWatches(key string) []func(Event) {
	var fns []func(Event)
	for _, w := range s.watches {
		if strings.HasPrefix(key, w.prefix) {
			fns = append(fns, w.fn)
		}
	}
	return fns
}
