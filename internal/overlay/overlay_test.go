package overlay

import (
	"testing"

	"vnettracer/internal/sim"
	"vnettracer/internal/vnet"
)

func TestStorePutGetDelete(t *testing.T) {
	s := NewStore()
	rev1 := s.Put("a", "1")
	rev2 := s.Put("b", "2")
	if rev2 <= rev1 {
		t.Fatalf("revisions not increasing: %d %d", rev1, rev2)
	}
	v, rev, ok := s.Get("a")
	if !ok || v != "1" || rev != rev1 {
		t.Fatalf("Get(a) = %q rev=%d ok=%v", v, rev, ok)
	}
	if !s.Delete("a") {
		t.Fatal("delete existing failed")
	}
	if s.Delete("a") {
		t.Fatal("delete missing succeeded")
	}
	if _, _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestStoreCAS(t *testing.T) {
	s := NewStore()
	s.Put("k", "old")
	if s.CAS("k", "wrong", "new") {
		t.Fatal("CAS with wrong expectation succeeded")
	}
	if !s.CAS("k", "old", "new") {
		t.Fatal("CAS with right expectation failed")
	}
	v, _, _ := s.Get("k")
	if v != "new" {
		t.Fatalf("value = %q", v)
	}
	if s.CAS("missing", "x", "y") {
		t.Fatal("CAS on missing key succeeded")
	}
}

func TestStoreWatchPrefix(t *testing.T) {
	s := NewStore()
	var events []Event
	cancel := s.Watch("overlay/", func(e Event) { events = append(events, e) })
	s.Put("overlay/1/10.0.0.1", "192.168.0.1")
	s.Put("other/x", "ignored")
	s.Delete("overlay/1/10.0.0.1")
	cancel()
	s.Put("overlay/1/10.0.0.2", "unwatched")
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Value != "192.168.0.1" || events[1].Deleted != true {
		t.Fatalf("events = %+v", events)
	}
}

func TestStoreList(t *testing.T) {
	s := NewStore()
	s.Put("overlay/1/a", "x")
	s.Put("overlay/1/b", "y")
	s.Put("overlay/2/c", "z")
	got := s.List("overlay/1/")
	if len(got) != 2 || got["overlay/1/a"] != "x" {
		t.Fatalf("List = %v", got)
	}
}

func TestVTEPEncapDecapRoundTrip(t *testing.T) {
	store := NewStore()
	vtepA := NewVTEP(store, 42, vnet.MustParseIPv4("192.168.0.1"))
	vtepB := NewVTEP(store, 42, vnet.MustParseIPv4("192.168.0.2"))
	vtepB.Register(vnet.MustParseIPv4("10.0.0.9"))

	inner := &vnet.Packet{
		IP: vnet.IPv4Header{
			Protocol: vnet.ProtoUDP,
			Src:      vnet.MustParseIPv4("10.0.0.1"),
			Dst:      vnet.MustParseIPv4("10.0.0.9"),
			TTL:      64,
		},
		UDP:     &vnet.UDPHeader{SrcPort: 1000, DstPort: 9000},
		Payload: []byte("hello"),
	}
	outer := vtepA.Encap(inner)
	if outer == nil {
		t.Fatal("encap dropped a registered destination")
	}
	if outer.IP.Dst != vnet.MustParseIPv4("192.168.0.2") {
		t.Fatalf("outer dst = %s", outer.IP.Dst)
	}
	if outer.UDP.DstPort != VXLANPort {
		t.Fatalf("outer port = %d", outer.UDP.DstPort)
	}
	if outer.WireLen() != inner.WireLen()+vnet.VXLANOverhead {
		t.Fatalf("overhead: %d vs %d+%d", outer.WireLen(), inner.WireLen(), vnet.VXLANOverhead)
	}
	back := vtepB.Decap(outer)
	if back == nil || back.InnerFlow() != inner.Flow() {
		t.Fatal("decap failed")
	}
	if vtepA.Encapped != 1 || vtepB.Decapped != 1 {
		t.Fatalf("counters: %d %d", vtepA.Encapped, vtepB.Decapped)
	}
}

func TestVTEPEncapUnknownDrops(t *testing.T) {
	store := NewStore()
	v := NewVTEP(store, 42, vnet.MustParseIPv4("192.168.0.1"))
	inner := &vnet.Packet{
		IP:  vnet.IPv4Header{Protocol: vnet.ProtoUDP, Dst: vnet.MustParseIPv4("10.0.0.99")},
		UDP: &vnet.UDPHeader{},
	}
	if got := v.Encap(inner); got != nil {
		t.Fatal("encap to unknown destination should drop")
	}
	if v.Unknown != 1 {
		t.Fatalf("Unknown = %d", v.Unknown)
	}
}

func TestVTEPDecapWrongVNIDrops(t *testing.T) {
	store := NewStore()
	a := NewVTEP(store, 1, vnet.MustParseIPv4("192.168.0.1"))
	b := NewVTEP(store, 2, vnet.MustParseIPv4("192.168.0.2"))
	a.Register(vnet.MustParseIPv4("10.0.0.1")) // on VNI 1
	bWrong := NewVTEP(store, 1, vnet.MustParseIPv4("192.168.0.3"))
	bWrong.Register(vnet.MustParseIPv4("10.0.0.5"))
	inner := &vnet.Packet{
		IP:  vnet.IPv4Header{Protocol: vnet.ProtoUDP, Dst: vnet.MustParseIPv4("10.0.0.5")},
		UDP: &vnet.UDPHeader{},
	}
	outer := a.Encap(inner)
	if outer == nil {
		t.Fatal("encap failed")
	}
	if got := b.Decap(outer); got != nil {
		t.Fatal("decap accepted frame from another VNI")
	}
}

func TestVTEPUnregister(t *testing.T) {
	store := NewStore()
	v := NewVTEP(store, 7, vnet.MustParseIPv4("192.168.0.1"))
	ip := vnet.MustParseIPv4("10.0.0.3")
	v.Register(ip)
	if _, ok := v.Lookup(ip); !ok {
		t.Fatal("lookup after register failed")
	}
	v.Unregister(ip)
	if _, ok := v.Lookup(ip); ok {
		t.Fatal("lookup after unregister succeeded")
	}
}

func TestBridgeRoutesToPortOrUplink(t *testing.T) {
	eng := sim.NewEngine(1)
	b := NewBridge(eng, "docker0", 10, 500)
	var localGot, uplinkGot int
	local := vnet.MustParseIPv4("172.17.0.2")
	b.AddPort(local, func(*vnet.Packet) { localGot++ })
	b.SetUplink(func(*vnet.Packet) { uplinkGot++ })

	mk := func(dst vnet.IPv4) *vnet.Packet {
		return &vnet.Packet{
			IP:  vnet.IPv4Header{Protocol: vnet.ProtoUDP, Dst: dst},
			UDP: &vnet.UDPHeader{},
		}
	}
	b.Dev().Receive(mk(local))
	b.Dev().Receive(mk(vnet.MustParseIPv4("172.17.0.99")))
	eng.RunUntilIdle()
	if localGot != 1 || uplinkGot != 1 {
		t.Fatalf("local=%d uplink=%d", localGot, uplinkGot)
	}
}

func TestBridgeNoRouteCounted(t *testing.T) {
	eng := sim.NewEngine(1)
	b := NewBridge(eng, "docker0", 10, 0)
	b.Dev().Receive(&vnet.Packet{IP: vnet.IPv4Header{Protocol: vnet.ProtoUDP, Dst: 5}, UDP: &vnet.UDPHeader{}})
	eng.RunUntilIdle()
	if b.NoRoute != 1 {
		t.Fatalf("NoRoute = %d", b.NoRoute)
	}
}

func TestVethPairDevices(t *testing.T) {
	eng := sim.NewEngine(1)
	vp := NewVethPair(eng, "veth684a1d9", "eth0", 20, 21, 300)
	var crossed int
	vp.A.SetOut(func(p *vnet.Packet) { vp.B.Receive(p) })
	vp.B.SetOut(func(*vnet.Packet) { crossed++ })
	vp.A.Receive(&vnet.Packet{IP: vnet.IPv4Header{Protocol: vnet.ProtoUDP}, UDP: &vnet.UDPHeader{}})
	eng.RunUntilIdle()
	if crossed != 1 {
		t.Fatalf("crossed = %d", crossed)
	}
	if vp.A.Name() != "veth684a1d9" || vp.B.Ifindex() != 21 {
		t.Fatal("device identity wrong")
	}
}
