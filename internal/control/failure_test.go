package control

import (
	"encoding/json"
	"testing"

	"vnettracer/internal/core"
	"vnettracer/internal/kernel"
	"vnettracer/internal/script"
	"vnettracer/internal/sim"
	"vnettracer/internal/tracedb"
)

// TestHeartbeatDetectsCrashedAgent models the paper's "the raw data
// collector ... also acts as a heartbeat monitor to guarantee that the
// agents work properly": two agents flush periodically; one stops (crash);
// the collector's database flags it as dead.
func TestHeartbeatDetectsCrashedAgent(t *testing.T) {
	eng := sim.NewEngine(1)
	mk := func(name string) *core.Machine {
		node := kernel.NewNode(eng, kernel.NodeConfig{Name: name, NumCPU: 1})
		machine, err := core.NewMachine(node, 4096)
		if err != nil {
			t.Fatal(err)
		}
		return machine
	}
	db := NewCollector(tracedb.New())
	healthy := NewAgent("healthy", mk("healthy"), db)
	crashy := NewAgent("crashy", mk("crashy"), db)
	healthy.StartFlushing(10 * int64(sim.Millisecond))
	crashy.StartFlushing(10 * int64(sim.Millisecond))

	eng.Run(100 * int64(sim.Millisecond))
	if dead := db.DB().DeadAgents(eng.Now(), 30*int64(sim.Millisecond)); len(dead) != 0 {
		t.Fatalf("healthy phase reported dead agents: %v", dead)
	}

	// Crash one agent: its flush loop stops.
	crashy.StopFlushing()
	eng.Run(eng.Now() + 200*int64(sim.Millisecond))

	dead := db.DB().DeadAgents(eng.Now(), 30*int64(sim.Millisecond))
	if len(dead) != 1 || dead[0] != "crashy" {
		t.Fatalf("dead agents = %v, want [crashy]", dead)
	}
}

// TestControlPackageJSONStability pins the wire format the CLI documents:
// a package written as JSON must round-trip through the same encoding the
// TCP transport uses.
func TestControlPackageJSONStability(t *testing.T) {
	const wire = `{
		"install": [{
			"name": "udp-rx",
			"tp_id": 7,
			"attach": {"Kind": 1, "Site": "udp_recvmsg"},
			"filter": {"proto": 17, "dst_port": 9000, "src_ip": 167772161},
			"actions": [1, 2]
		}],
		"uninstall": ["old-script"],
		"flush_interval_ns": 100000000
	}`
	var pkg ControlPackage
	if err := json.Unmarshal([]byte(wire), &pkg); err != nil {
		t.Fatal(err)
	}
	if len(pkg.Install) != 1 || pkg.Install[0].Name != "udp-rx" {
		t.Fatalf("install = %+v", pkg.Install)
	}
	spec := pkg.Install[0]
	if spec.TPID != 7 || spec.Attach.Kind != core.AttachKProbe || spec.Attach.Site != "udp_recvmsg" {
		t.Fatalf("attach = %+v", spec.Attach)
	}
	if spec.Filter.Proto != 17 || spec.Filter.DstPort != 9000 || uint32(spec.Filter.SrcIP) != 167772161 {
		t.Fatalf("filter = %+v", spec.Filter)
	}
	if len(spec.Actions) != 2 || spec.Actions[0] != script.ActionRecord || spec.Actions[1] != script.ActionCount {
		t.Fatalf("actions = %v", spec.Actions)
	}
	if pkg.FlushIntervalNs != 100000000 || pkg.Uninstall[0] != "old-script" {
		t.Fatalf("pkg = %+v", pkg)
	}
	// Round-trip.
	out, err := json.Marshal(pkg)
	if err != nil {
		t.Fatal(err)
	}
	var back ControlPackage
	if err := json.Unmarshal(out, &back); err != nil {
		t.Fatal(err)
	}
	if back.Install[0].Filter != spec.Filter {
		t.Fatalf("round-trip filter = %+v", back.Install[0].Filter)
	}
}
