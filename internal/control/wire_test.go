package control

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"sync"
	"testing"

	"vnettracer/internal/core"
	"vnettracer/internal/tracedb"
)

func wireBatch(n int) RecordBatch {
	var recs []core.Record
	if n > 0 {
		recs = make([]core.Record, n)
	}
	for i := range recs {
		recs[i] = core.Record{
			TraceID: uint32(i + 1), TPID: uint32(i%3 + 1),
			TimeNs: uint64(1000 * i), Len: 100, CPU: uint32(i % 4),
			Seq: uint64(i), SrcIP: 0x0a000001, DstIP: 0x0a000002,
			SrcPort: 40000, DstPort: 9000, Proto: 17, Dir: 1,
		}
	}
	return RecordBatch{Agent: "agent0", AgentTimeNs: 123456789, Records: recs, RingDrops: 7}
}

// TestBatchFrameRoundTrip proves binary and JSON batch frames decode to
// identical RecordBatch values through the collector's single decode path.
func TestBatchFrameRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 64} {
		want := wireBatch(n)
		want.Seq = uint64(1000 + n)

		bin, err := EncodeBatchFrame(&want)
		if err != nil {
			t.Fatal(err)
		}
		gotBin, err := DecodeBatchFrame(bin)
		if err != nil {
			t.Fatalf("n=%d: decode binary: %v", n, err)
		}
		// Binary decode exposes the frame's record section verbatim so
		// durable sinks can log it without re-encoding; it must match a
		// fresh marshal of the decoded records.
		var wantRaw []byte
		for i := range gotBin.Records {
			wantRaw = gotBin.Records[i].Marshal(wantRaw)
		}
		if !bytes.Equal(gotBin.RawRecords, wantRaw) {
			t.Fatalf("n=%d: RawRecords = %d bytes, want %d matching a re-marshal", n, len(gotBin.RawRecords), len(wantRaw))
		}
		gotBin.RawRecords = nil // logical fields below
		if !reflect.DeepEqual(gotBin, want) {
			t.Fatalf("n=%d: binary round trip = %+v, want %+v", n, gotBin, want)
		}

		jsonBody, err := EncodeBatchFrameJSON(&want)
		if err != nil {
			t.Fatal(err)
		}
		gotJSON, err := DecodeBatchFrame(jsonBody)
		if err != nil {
			t.Fatalf("n=%d: decode JSON: %v", n, err)
		}
		if gotJSON.RawRecords != nil {
			t.Fatalf("n=%d: JSON decode set RawRecords", n)
		}
		if !reflect.DeepEqual(gotJSON, gotBin) {
			t.Fatalf("n=%d: JSON and binary decode differ: %+v vs %+v", n, gotJSON, gotBin)
		}
	}
}

// TestBatchFrameBytesPerRecord verifies the acceptance bound: a batch
// frame carries records at <= 52 bytes/record on the wire (48-byte record
// plus amortized header and length prefix).
func TestBatchFrameBytesPerRecord(t *testing.T) {
	const n = 64
	b := wireBatch(n)
	body, err := EncodeBatchFrame(&b)
	if err != nil {
		t.Fatal(err)
	}
	wire := 4 + len(body) // transport length prefix + frame body
	if perRec := float64(wire) / n; perRec > 52 {
		t.Fatalf("binary frame = %.1f bytes/record, want <= 52", perRec)
	}
	jsonBody, _ := EncodeBatchFrameJSON(&b)
	if len(jsonBody) < 3*len(body) {
		t.Fatalf("expected JSON framing to inflate records >= 3x (binary %d B, JSON %d B)", len(body), len(jsonBody))
	}
}

// TestBatchFrameVersionNegotiation covers the version-handling paths: a
// future binary version is rejected, truncated/corrupt binary frames are
// rejected, and the legacy JSON envelope is still accepted.
func TestBatchFrameVersionNegotiation(t *testing.T) {
	b := wireBatch(2)
	body, err := EncodeBatchFrame(&b)
	if err != nil {
		t.Fatal(err)
	}

	future := append([]byte(nil), body...)
	future[1] = batchWireV4 + 1
	if _, err := DecodeBatchFrame(future); err == nil {
		t.Fatal("future wire version accepted")
	}

	if _, err := DecodeBatchFrame(body[:len(body)-1]); err == nil {
		t.Fatal("truncated binary frame accepted")
	}
	if _, err := DecodeBatchFrame([]byte{batchMagic, batchWireV2}); err == nil {
		t.Fatal("header-only binary frame accepted")
	}
	if _, err := DecodeBatchFrame(nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if _, err := DecodeBatchFrame([]byte(`{"type":"control"}`)); err == nil {
		t.Fatal("non-batch JSON envelope accepted as batch")
	}

	legacy, err := EncodeBatchFrameJSON(&b)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatchFrame(legacy)
	if err != nil {
		t.Fatalf("legacy JSON rejected: %v", err)
	}
	if got.Agent != b.Agent || len(got.Records) != len(b.Records) {
		t.Fatalf("legacy decode = %+v", got)
	}
}

// encodeBatchFrameV2 reproduces the pre-Seq v2 binary layout (24-byte
// header, no sequence field) — what pre-Seq agents put on the wire.
func encodeBatchFrameV2(b *RecordBatch) []byte {
	out := make([]byte, batchHeaderSizeV2)
	out[0] = batchMagic
	out[1] = batchWireV2
	le := binary.LittleEndian
	le.PutUint16(out[2:], uint16(len(b.Agent)))
	le.PutUint64(out[4:], uint64(b.AgentTimeNs))
	le.PutUint64(out[12:], b.RingDrops)
	le.PutUint32(out[20:], uint32(len(b.Records)))
	out = append(out, b.Agent...)
	for i := range b.Records {
		out = append(out, b.Records[i].Marshal(nil)...)
	}
	return out
}

// encodeBatchFrameV3 reproduces the pre-epoch v3 binary layout (32-byte
// header: Seq but no Epoch/Degraded) — what pre-lease agents put on the
// wire.
func encodeBatchFrameV3(b *RecordBatch) []byte {
	out := make([]byte, batchHeaderSizeV3)
	out[0] = batchMagic
	out[1] = batchWireV3
	le := binary.LittleEndian
	le.PutUint16(out[2:], uint16(len(b.Agent)))
	le.PutUint64(out[4:], uint64(b.AgentTimeNs))
	le.PutUint64(out[12:], b.RingDrops)
	le.PutUint32(out[20:], uint32(len(b.Records)))
	le.PutUint64(out[24:], b.Seq)
	out = append(out, b.Agent...)
	for i := range b.Records {
		out = append(out, b.Records[i].Marshal(nil)...)
	}
	return out
}

// TestBatchFrameV2Compat pins backward compatibility: a v2 binary frame
// from a pre-Seq agent still decodes, with Seq = 0 (unsequenced) and
// Epoch = 0 (unleased), so old agents keep working against a new
// collector without negotiation.
func TestBatchFrameV2Compat(t *testing.T) {
	want := wireBatch(8)
	got, err := DecodeBatchFrame(encodeBatchFrameV2(&want))
	if err != nil {
		t.Fatalf("v2 binary frame rejected: %v", err)
	}
	if got.Seq != 0 {
		t.Fatalf("v2 frame decoded Seq = %d, want 0", got.Seq)
	}
	if got.Epoch != 0 || got.Degraded != 0 {
		t.Fatalf("v2 frame decoded Epoch/Degraded = %d/%d, want 0/0", got.Epoch, got.Degraded)
	}
	got.RawRecords = nil // decoder-only alias, absent from the literal
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v2 round trip = %+v, want %+v", got, want)
	}
	// Truncated v2 header is rejected, not sliced into records.
	if _, err := DecodeBatchFrame(encodeBatchFrameV2(&want)[:batchHeaderSizeV2-1]); err == nil {
		t.Fatal("truncated v2 frame accepted")
	}
}

// TestBatchFrameV3Compat pins backward compatibility for the pre-epoch
// layout: a v3 frame keeps its Seq but decodes Epoch = 0 (unleased) —
// the value the collector's fence treats as never-stale, so a pre-lease
// agent can never have its batches fenced.
func TestBatchFrameV3Compat(t *testing.T) {
	want := wireBatch(8)
	want.Seq = 42
	got, err := DecodeBatchFrame(encodeBatchFrameV3(&want))
	if err != nil {
		t.Fatalf("v3 binary frame rejected: %v", err)
	}
	if got.Seq != 42 {
		t.Fatalf("v3 frame decoded Seq = %d, want 42", got.Seq)
	}
	if got.Epoch != 0 || got.Degraded != 0 {
		t.Fatalf("v3 frame decoded Epoch/Degraded = %d/%d, want 0/0", got.Epoch, got.Degraded)
	}
	got.RawRecords = nil // decoder-only alias, absent from the literal
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v3 round trip = %+v, want %+v", got, want)
	}
	if _, err := DecodeBatchFrame(encodeBatchFrameV3(&want)[:batchHeaderSizeV3-1]); err == nil {
		t.Fatal("truncated v3 frame accepted")
	}
}

// TestBatchFrameV4CarriesEpoch pins the v4 additions: the encoder emits
// v4 and Epoch/Degraded round-trip; and the legacy v1 JSON envelope
// decodes as epoch 0 when the fields are absent.
func TestBatchFrameV4CarriesEpoch(t *testing.T) {
	want := wireBatch(4)
	want.Seq, want.Epoch, want.Degraded = 9, 3, 2
	body, err := EncodeBatchFrame(&want)
	if err != nil {
		t.Fatal(err)
	}
	if body[1] != batchWireV4 {
		t.Fatalf("encoder emitted wire version %d, want %d", body[1], batchWireV4)
	}
	got, err := DecodeBatchFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	got.RawRecords = nil // decoder-only alias, absent from the literal
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("v4 round trip = %+v, want %+v", got, want)
	}
	// A v1 JSON batch without epoch/degraded fields decodes as unleased.
	legacy := []byte(`{"type":"batch","batch":{"agent":"old","agent_time_ns":5,"records":null,"seq":1}}`)
	gotJSON, err := DecodeBatchFrame(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if gotJSON.Epoch != 0 || gotJSON.Degraded != 0 {
		t.Fatalf("legacy JSON decoded Epoch/Degraded = %d/%d, want 0/0", gotJSON.Epoch, gotJSON.Degraded)
	}
}

// TestTCPBinaryAndLegacySinksAgree ships the same batch over TCP with the
// v2 binary framing and the v1 JSON framing and checks the collector sees
// identical data either way.
func TestTCPBinaryAndLegacySinksAgree(t *testing.T) {
	run := func(legacy bool) (uint64, uint64, uint64, []core.Record) {
		db := tracedb.New()
		col := NewCollector(db)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := Serve(ln, nil, col)
		defer srv.Close()
		sink := NewTCPSink(srv.Addr().String())
		sink.LegacyJSON = legacy
		defer sink.Close()
		if err := sink.HandleBatch(wireBatch(16)); err != nil {
			t.Fatal(err)
		}
		batches, records, drops := col.Stats()
		tbl, ok := db.Table(1)
		if !ok {
			t.Fatal("table 1 missing")
		}
		var recs []core.Record
		tbl.Scan(func(r core.Record) bool { recs = append(recs, r); return true })
		return batches, records, drops, recs
	}
	b1, r1, d1, recs1 := run(false)
	b2, r2, d2, recs2 := run(true)
	if b1 != b2 || r1 != r2 || d1 != d2 || !reflect.DeepEqual(recs1, recs2) {
		t.Fatalf("binary (%d,%d,%d) and legacy (%d,%d,%d) transports diverge", b1, r1, d1, b2, r2, d2)
	}
}

// TestCollectorAsyncIngest checks the bounded-queue path: batches land in
// the DB after StopIngest drains, and overflow is counted, not blocking.
func TestCollectorAsyncIngest(t *testing.T) {
	db := tracedb.New()
	col := NewCollector(db)
	col.StartIngest(4, 256)
	var wg sync.WaitGroup
	const senders, perSender = 8, 50
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < perSender; i++ {
				col.HandleBatch(RecordBatch{
					Agent:       "a",
					AgentTimeNs: int64(i),
					Records:     []core.Record{{TPID: uint32(s%4 + 1), TraceID: uint32(s*perSender + i + 1)}},
				})
			}
		}(s)
	}
	wg.Wait()
	col.StopIngest()
	batches, records, _ := col.Stats()
	_, dropped := col.IngestStats()
	if batches+dropped != senders*perSender {
		t.Fatalf("batches %d + dropped %d != sent %d", batches, dropped, senders*perSender)
	}
	if records != batches {
		t.Fatalf("records = %d, want %d (one per ingested batch)", records, batches)
	}
	// After StopIngest, HandleBatch is synchronous again.
	col.HandleBatch(RecordBatch{Agent: "a", Records: []core.Record{{TPID: 9, TraceID: 1}}})
	if tbl, ok := db.Table(9); !ok || tbl.Len() != 1 {
		t.Fatal("synchronous ingest after StopIngest failed")
	}
}

// TestCollectorIngestBackpressure jams the single worker on a slow store
// and overflows the depth-1 queue: drops must be counted, never blocking
// the transport goroutine. With the worker holding at most one batch and
// the queue one more, three sends guarantee at least one drop without any
// timing assumption.
func TestCollectorIngestBackpressure(t *testing.T) {
	blocker := make(chan struct{})
	db := tracedb.New()
	col := NewCollector(db)
	inner := col.ingestFn
	col.ingestFn = func(b RecordBatch) {
		<-blocker // slow store
		inner(b)
	}
	col.StartIngest(1, 1)
	const sent = 3
	for i := 0; i < sent; i++ {
		col.HandleBatch(RecordBatch{Agent: "a", AgentTimeNs: int64(i)})
	}
	_, dropped := col.IngestStats()
	if dropped == 0 {
		t.Fatal("full queue dropped nothing")
	}
	close(blocker)
	col.StopIngest()
	batches, _, _ := col.Stats()
	_, dropped = col.IngestStats()
	if batches+dropped != sent {
		t.Fatalf("batches %d + dropped %d != sent %d", batches, dropped, sent)
	}
}

// TestConcurrentBatchesRace inserts batches from many goroutines over TCP
// and in-process simultaneously while analyses scan the tables — the
// -race regression for the record path.
func TestConcurrentBatchesRace(t *testing.T) {
	db := tracedb.New()
	col := NewCollector(db)
	col.StartIngest(4, 1024)
	defer col.StopIngest()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := Serve(ln, nil, col)
	defer srv.Close()

	var senders sync.WaitGroup
	// TCP writers.
	for w := 0; w < 2; w++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			sink := NewTCPSink(srv.Addr().String())
			defer sink.Close()
			for i := 0; i < 50; i++ {
				if err := sink.HandleBatch(wireBatch(8)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// In-process writers.
	for w := 0; w < 2; w++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			for i := 0; i < 50; i++ {
				col.HandleBatch(wireBatch(8))
			}
		}()
	}
	// Reader: scan and query while inserts run.
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, id := range db.Tables() {
				tbl, _ := db.Table(id)
				tbl.Scan(func(core.Record) bool { return true })
				tbl.Len()
				tbl.TraceIDs()
			}
		}
	}()
	senders.Wait()
	close(stop)
	<-readerDone
}
