package control

import (
	"sync"

	"vnettracer/internal/tracedb"
)

// Collector is the raw data collector on the master node: it loads record
// batches into the trace database and tracks agent liveness through the
// batch heartbeats.
//
// By default HandleBatch inserts synchronously — the right mode for the
// single-threaded simulation, where tests expect records to be queryable
// the moment Flush returns. For the distributed deployment, StartIngest
// moves DB work off the transport goroutines onto a bounded queue drained
// by worker goroutines; when the queue is full the batch is dropped and
// counted (backpressure is visible in IngestStats, and trace loss is
// already a first-class concept via ring drops).
type Collector struct {
	db   *tracedb.DB
	aggs *tracedb.AggStore

	// dur, when set, fronts ingest with the write-ahead log: fresh
	// batches and frames are logged before they apply, so a crash can
	// replay them. Nil keeps the original in-memory-only behavior.
	dur *tracedb.Durability

	mu             sync.Mutex
	batches        uint64
	records        uint64
	ringDrops      uint64
	droppedBatches uint64
	dupBatches     uint64
	dupRecords     uint64
	queue          chan RecordBatch
	wg             sync.WaitGroup

	// ingestFn is what workers run per batch; tests override it to model a
	// slow store.
	ingestFn func(RecordBatch)
}

// NewCollector creates a collector over a trace database.
func NewCollector(db *tracedb.DB) *Collector {
	return NewCollectorWith(db, tracedb.NewAggStore())
}

// NewCollectorWith creates a collector over an existing database and
// aggregate store — the recovery path, where tracedb.Recover has already
// rebuilt both from disk and the collector must serve them rather than
// start empty.
func NewCollectorWith(db *tracedb.DB, aggs *tracedb.AggStore) *Collector {
	c := &Collector{db: db, aggs: aggs}
	c.ingestFn = c.ingest
	return c
}

// SetDurability routes ingest through a durability layer: fresh record
// batches and aggregate frames append to its write-ahead log before they
// apply. Set it before traffic starts (typically right after
// tracedb.Recover); nil disables durable ingest.
func (c *Collector) SetDurability(d *tracedb.Durability) {
	c.mu.Lock()
	c.dur = d
	c.mu.Unlock()
}

// Durability returns the durability layer, nil when ingest is
// in-memory only.
func (c *Collector) Durability() *tracedb.Durability {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dur
}

// DB returns the backing trace database.
func (c *Collector) DB() *tracedb.DB { return c.db }

// Aggregates returns the aggregate store merged from in-probe aggregate
// frames, living beside the record database.
func (c *Collector) Aggregates() *tracedb.AggStore { return c.aggs }

// HandleAgg implements AggSink: it admits the frame through the
// aggregate ledger (exactly-once, epoch-fenced — the aggregate analogue
// of record-batch ingest) and merges fresh payloads into the aggregate
// store. Aggregate frames are small and pre-reduced, so ingest is always
// synchronous; there is no queue to backpressure on. Non-fenced frames
// advance the agent's liveness clock like record batches do.
func (c *Collector) HandleAgg(b AggBatch) error {
	c.mu.Lock()
	d := c.dur
	c.mu.Unlock()
	var st tracedb.BatchStatus
	if d != nil {
		st = d.AdmitAggFrame(b.Agent, b.Epoch, b.Seq, b.Scripts, b.AgentTimeNs, b.Degraded)
	} else {
		st = c.aggs.Admit(b.Agent, b.Epoch, b.Seq, b.Scripts, b.AgentTimeNs, b.Degraded)
	}
	if st != tracedb.BatchFenced {
		// Epoch-aware liveness: a frame that cleared the aggregate fence
		// can still be stale relative to the record ledger (the agent was
		// re-homed and this collector's record epoch already closed); an
		// epoch-blind heartbeat here would resurrect the stale assignment.
		c.db.HeartbeatEpoch(b.Agent, b.Epoch, b.AgentTimeNs, b.Degraded)
	}
	return nil
}

// AgentHandoff bundles the per-agent delivery state that travels when an
// agent is re-homed to another collector: the record-batch ledger and the
// aggregate-frame ledger (independent sequence spaces, same semantics).
type AgentHandoff struct {
	Records    tracedb.LedgerHandoff
	HasRecords bool
	Aggs       tracedb.LedgerHandoff
	HasAggs    bool
}

// ExportAgent snapshots an agent's delivery ledgers for handoff to a
// successor collector. In a real deployment this reads the failed
// collector's persisted ledger; here the in-memory state doubles as it.
func (c *Collector) ExportAgent(agent string) AgentHandoff {
	var h AgentHandoff
	h.Records, h.HasRecords = c.db.ExportLedger(agent)
	h.Aggs, h.HasAggs = c.aggs.ExportLedger(agent)
	return h
}

// ImportAgent installs exported ledger state at the given epoch — the
// successor collector's half of a re-homing. The imported high-water
// marks are what keep delivery exactly-once across the move: the agent's
// spool re-ships batches the failed collector already ingested (their
// acks were lost with it), and the imported ledger dedups them here.
func (c *Collector) ImportAgent(agent string, epoch uint64, h AgentHandoff) {
	if h.HasRecords {
		c.db.ImportLedger(agent, epoch, h.Records)
	}
	if h.HasAggs {
		c.aggs.ImportLedger(agent, epoch, h.Aggs)
	}
}

// FenceAgent closes both of an agent's ledgers at the new epoch — the
// old home's half of a re-homing. Stragglers still routed here (spooled
// batches from before the retarget, aggregate frames, heartbeats) are
// fenced instead of ingested or counted as liveness.
func (c *Collector) FenceAgent(agent string, epoch uint64) {
	c.db.CloseAgentEpoch(agent, epoch)
	c.aggs.CloseAgentEpoch(agent, epoch)
}

// StorageStats returns the trace database's aggregate segment-store
// accounting (resident vs spilled bytes, compression ratio, evictions).
func (c *Collector) StorageStats() tracedb.StorageStats { return c.db.StorageTotals() }

// HandleBatch implements RecordSink. With ingest workers running it
// enqueues and returns immediately (dropping the batch if the queue is
// full); otherwise it inserts inline.
func (c *Collector) HandleBatch(b RecordBatch) error {
	_, err := c.HandleBatchAck(b)
	return err
}

// HandleBatchAck implements AckingRecordSink: like HandleBatch, but the
// reply carries the ingest queue's depth and capacity at accept time —
// the backpressure signal the agent's degradation controller feeds on. A
// synchronous collector (no ingest workers) reports 0/0: inline inserts
// apply their own backpressure by blocking the transport.
func (c *Collector) HandleBatchAck(b RecordBatch) (BatchAck, error) {
	c.mu.Lock()
	q := c.queue
	if q != nil {
		// Non-blocking send under c.mu: StopIngest nils c.queue under the
		// same lock before closing the channel, so this can never send on
		// a closed channel.
		select {
		case q <- b:
		default:
			c.droppedBatches++
		}
		ack := BatchAck{QueueDepth: len(q), QueueCap: cap(q)}
		c.mu.Unlock()
		return ack, nil
	}
	c.mu.Unlock()
	c.ingest(b)
	return BatchAck{}, nil
}

// ingest loads one batch into the trace database and updates totals. The
// per-agent ledger drops batches whose sequence number was already
// ingested in the batch's epoch — the transport is at-least-once (the TCP
// client re-sends a batch after a reconnect, and the agent spool re-ships
// unacknowledged batches), so dedup here is what makes delivery
// exactly-once — and fences batches carrying a stale epoch (a zombie
// pre-restart agent process). Duplicates still count as heartbeats — the
// agent is demonstrably alive — but fenced batches do not: the zombie
// must not keep its successor's identity looking healthy.
func (c *Collector) ingest(b RecordBatch) {
	c.mu.Lock()
	d := c.dur
	c.mu.Unlock()
	var st tracedb.BatchStatus
	if d != nil {
		// Durable path: admit, WAL-append, insert as one barrier-shared
		// unit so a checkpoint never cuts between them.
		st = d.AdmitRecordBatchRaw(b.Agent, b.Epoch, b.Seq, b.Records, b.RawRecords, b.AgentTimeNs, b.Degraded)
	} else {
		st = c.db.AdmitBatch(b.Agent, b.Epoch, b.Seq, len(b.Records), b.AgentTimeNs, b.Degraded)
	}
	switch st {
	case tracedb.BatchFenced:
		return
	case tracedb.BatchDuplicate:
		c.mu.Lock()
		c.dupBatches++
		c.dupRecords += uint64(len(b.Records))
		c.mu.Unlock()
		return
	}
	if d == nil {
		c.db.Insert(b.Records)
	}
	c.mu.Lock()
	c.batches++
	c.records += uint64(len(b.Records))
	c.ringDrops += b.RingDrops
	c.mu.Unlock()
}

// StartIngest switches the collector to asynchronous ingest: HandleBatch
// enqueues onto a queue of the given depth, drained by workers goroutines.
// Calling it while ingest is already running is a no-op.
func (c *Collector) StartIngest(workers, depth int) {
	if workers < 1 {
		workers = 1
	}
	if depth < 1 {
		depth = 1
	}
	c.mu.Lock()
	if c.queue != nil {
		c.mu.Unlock()
		return
	}
	q := make(chan RecordBatch, depth)
	c.queue = q
	c.mu.Unlock()
	c.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer c.wg.Done()
			for b := range q {
				c.ingestFn(b)
			}
		}()
	}
}

// StopIngest drains the queue, stops the workers, and reverts HandleBatch
// to synchronous inserts. Every batch accepted before StopIngest is in the
// database when it returns.
func (c *Collector) StopIngest() {
	c.mu.Lock()
	q := c.queue
	c.queue = nil
	c.mu.Unlock()
	if q == nil {
		return
	}
	close(q)
	c.wg.Wait()
}

// Stats reports collector totals over ingested batches.
func (c *Collector) Stats() (batches, records, ringDrops uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches, c.records, c.ringDrops
}

// DeliveryStats reports exactly-once bookkeeping: batches/records dropped
// as duplicates (already-ingested sequence numbers re-sent by transport
// retries or spool re-ships) and batches missing across all agents —
// sequence-number gaps that are either still spooled agent-side or, if
// the agent evicted them, confirmed lost.
func (c *Collector) DeliveryStats() (dupBatches, dupRecords, missingBatches uint64) {
	for _, agent := range c.db.Agents() {
		if l, ok := c.db.Ledger(agent); ok {
			missingBatches += l.MissingBatches
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dupBatches, c.dupRecords, missingBatches
}

// FencedStats sums the epoch fence's work across agents: stale-epoch
// batches rejected (every arrival, retries included) and the record
// payload confirmed lost to fencing (counted once per batch).
func (c *Collector) FencedStats() (fencedBatches, fencedRecords uint64) {
	for _, agent := range c.db.Agents() {
		if l, ok := c.db.Ledger(agent); ok {
			fencedBatches += l.FencedBatches
			fencedRecords += l.FencedRecords
		}
	}
	return fencedBatches, fencedRecords
}

// IngestStats reports ingest backpressure: the current queue depth and the
// total batches dropped because the queue was full.
func (c *Collector) IngestStats() (queueDepth int, droppedBatches uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.queue != nil {
		queueDepth = len(c.queue)
	}
	return queueDepth, c.droppedBatches
}
