package control

import (
	"sync"

	"vnettracer/internal/tracedb"
)

// Collector is the raw data collector on the master node: it loads record
// batches into the trace database and tracks agent liveness through the
// batch heartbeats.
type Collector struct {
	db *tracedb.DB

	mu        sync.Mutex
	batches   uint64
	records   uint64
	ringDrops uint64
}

// NewCollector creates a collector over a trace database.
func NewCollector(db *tracedb.DB) *Collector {
	return &Collector{db: db}
}

// DB returns the backing trace database.
func (c *Collector) DB() *tracedb.DB { return c.db }

// HandleBatch implements RecordSink.
func (c *Collector) HandleBatch(b RecordBatch) error {
	c.db.Insert(b.Records)
	c.db.Heartbeat(b.Agent, b.AgentTimeNs)
	c.mu.Lock()
	c.batches++
	c.records += uint64(len(b.Records))
	c.ringDrops += b.RingDrops
	c.mu.Unlock()
	return nil
}

// Stats reports collector totals.
func (c *Collector) Stats() (batches, records, ringDrops uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.batches, c.records, c.ringDrops
}
